# hetsim build / CI entry points. Everything is plain `go` underneath;
# the targets only bundle the invocations CI runs.

GO ?= go

.PHONY: ci vet build test race fault-drill bench

ci: vet build race fault-drill

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Seeded fault-injection drills: every run injects deterministic faults
# (the seeds below), recovers through CRC retransmission, watchdog
# retries or host fallback, and must still verify against the bit-exact
# golden model (cmd/hetsim exits non-zero otherwise). These complement
# the fixed-seed unit tests in internal/fault, internal/spilink,
# internal/core and internal/omp, which `race` already runs.
fault-drill:
	$(GO) run ./cmd/hetsim -kernel matmul -faults seed=7,rate=0.5,max=4 -crc -watchdog 2000000 -retries 3 >/dev/null
	$(GO) run ./cmd/hetsim -kernel matmul -faults seed=7,hang=1,max=2 -watchdog 2000000 -retries 3 >/dev/null
	$(GO) run ./cmd/hetsim -kernel matmul -faults seed=7,hang=1 -watchdog 2000000 -retries 1 -fallback >/dev/null
	$(GO) run ./cmd/hetsim -kernel "svm (RBF)" -faults seed=13,rate=0.2,max=6 -crc -watchdog 2000000 -retries 2 -fallback >/dev/null
	@echo "fault drills passed"

bench:
	$(GO) test -bench=. -benchmem
