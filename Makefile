# hetsim build / CI entry points. Everything is plain `go` underneath;
# the targets only bundle the invocations CI runs.

GO ?= go

# Pre-PR 2 simulator throughput (Msimcycles/s) on the 4-core matmul;
# recorded as the baseline in BENCH_PR2.json so every bench run reports
# its speedup against the same reference point.
BENCH_BASELINE ?= 6.922

# Pre-PR 7 simulator throughput (best of 3) on the same workload,
# re-measured at the pre-PR commit because the runner drifted from the
# 13.70 recorded at PR 5 (the same HEAD now measures 11.86, with ±20%
# swings between runs minutes apart). OBS_FLOOR is the absolute
# backstop under it; obs-bench still applies the strict 1% zero-cost
# gate, block-bench uses a noise-tolerant 15% bound instead.
OBS_BASELINE ?= 11.86
OBS_FLOOR ?= 9.5

# Block-compiled execution floor (Msimcycles/s) on the pulp-4t/pulp-1t/
# m4-host kernel mix: the PR 7 acceptance bar. 40 is also >= 2.5x the
# pre-PR stepped baseline (OBS_BASELINE 13.70 -> 34.25).
BLOCK_FLOOR ?= 40

# Superblock tier gates (PR 8): per-shape superblock-over-block ratios on
# the branch/loop-dominated family, measured best-of-3 in one process so
# both sides of every ratio see the same machine state. pulp-1c is the
# branch-heavy acceptance subset (full-program trace chasing applies;
# measured 1.77x, gated at 1.5). pulp-4c is bounded by design: mem-led
# runs cannot chain because TCDM bank arbitration needs exact-cycle
# interleaving, so the tier only widens the ALU spans between memory
# ops (measured 1.28x, gated at 1.15). m4 has no I$ and one core — the
# tier is inert there by design, so it is the parity control: the chase
# loop executes identical code either way and best-of-3 measures
# 0.92–0.98x across runs (the residual spread is dispatch-boundary cost
# plus the runner's ±15% swings), gated at 0.85. The straight-line mix
# must not regress.
SUPER_1C_MIN ?= 1.5
SUPER_4C_MIN ?= 1.15
SUPER_M4_MIN ?= 0.85
SUPER_MIX_MIN ?= 0.98

.PHONY: ci vet build test race race-sweep differential block-differential fault-drill chaos-drill serve-drill batch-drill crash-drill bench bench-smoke sweep-bench obs-bench block-bench superblock-bench

ci: vet build race race-sweep differential block-differential fault-drill chaos-drill serve-drill batch-drill crash-drill bench-smoke block-bench superblock-bench

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# Race-detect the parallel sweep path specifically, including the
# non-short equivalence tests (1-vs-8 workers, warm cache) that the
# module-wide `race` leg also runs but that must never rot out of CI.
race-sweep:
	$(GO) test -race ./internal/sweep ./internal/paper

# Seeded fault-injection drills: every run injects deterministic faults
# (the seeds below), recovers through CRC retransmission, watchdog
# retries or host fallback, and must still verify against the bit-exact
# golden model (cmd/hetsim exits non-zero otherwise). These complement
# the fixed-seed unit tests in internal/fault, internal/spilink,
# internal/core and internal/omp, which `race` already runs.
fault-drill:
	$(GO) run ./cmd/hetsim -kernel matmul -faults seed=7,rate=0.5,max=4 -crc -watchdog 2000000 -retries 3 >/dev/null
	$(GO) run ./cmd/hetsim -kernel matmul -faults seed=7,hang=1,max=2 -watchdog 2000000 -retries 3 >/dev/null
	$(GO) run ./cmd/hetsim -kernel matmul -faults seed=7,hang=1 -watchdog 2000000 -retries 1 -fallback >/dev/null
	$(GO) run ./cmd/hetsim -kernel "svm (RBF)" -faults seed=13,rate=0.2,max=6 -crc -watchdog 2000000 -retries 2 -fallback >/dev/null
	@echo "fault drills passed"

# Seeded memory-fault chaos campaign (DESIGN.md §9): SEU bit-flips in
# TCDM and L2, I-cache parity errors and DMA transfer corruption on the
# reduced matmul. -chaos-drill 1 makes hetexp exit non-zero unless every
# fault class shows at least one detected-and-recovered trial and every
# trial carries a known verdict — so each detector provably fires and
# recovers in CI, and no outcome escapes classification.
chaos-drill:
	$(GO) run ./cmd/hetexp -chaos -small -no-cache -chaos-trials 6 \
		-chaos-rates 2e-3 -chaos-seed 1 -chaos-drill 1 >/dev/null
	@echo "chaos drill passed"

# Seeded soak of the simulation service (DESIGN.md §11): a client herd
# hammers hetsimd's serving layer under injected slow jobs, cache-write
# failures and mid-request cancellations, then drains. Asserts zero
# duplicated executions per key, no stuck waiters, a clean drain, and
# byte-identical remote-vs-local tables — all under the race detector,
# bounded in wall clock. Also fuzzes the job-request decoder briefly.
serve-drill:
	$(GO) test -race -count=1 -timeout 120s \
		-run 'TestServeSoak|TestRemoteEquivalence|TestLateResultAfterTimeoutIsDiscarded' \
		./internal/serve ./internal/sweep
	$(GO) test -run FuzzParseJobRequest -fuzz FuzzParseJobRequest -fuzztime 5s ./internal/paper
	@echo "serve drill passed"

# Batch soak (DESIGN.md §15): batch campaigns and singleton requests race
# over overlapping keys under injected faults — the mid-request
# cancellations cut batch streams, forcing the client's
# reconnect-and-resume path — while a stats reader polls concurrently.
# Asserts exactly-once execution per key across batches, singletons, cuts
# and resumes, plus the deterministic drain-cursor-resume and
# client-reconnect legs and batch-vs-local byte equivalence, all under
# the race detector. Also fuzzes the batch-request decoder briefly.
batch-drill:
	$(GO) test -race -count=1 -timeout 120s \
		-run 'TestBatchSoak|TestBatchDrainCursor|TestBatchClientReconnect|TestBatchDedupWithSingleton|TestRemoteEquivalence' \
		./internal/serve
	$(GO) test -run FuzzParseBatchRequest -fuzz FuzzParseBatchRequest -fuzztime 5s ./internal/paper
	@echo "batch drill passed"

# Kill-9 crash drill (DESIGN.md §14): builds the real hetexp binary,
# SIGKILLs it at CRASH_POINTS seeded points mid-sweep, resumes each
# campaign from its journal, and asserts byte-identical output, exact
# only-the-missing-jobs resume accounting, and a scrub that quarantines
# every leftover without finding corruption — under the race detector.
# Also fuzzes the journal's torn-tail recovery parser briefly.
CRASH_POINTS ?= 24
CRASH_SEED ?= 1
crash-drill:
	HETSIM_CRASH_POINTS=$(CRASH_POINTS) HETSIM_CRASH_SEED=$(CRASH_SEED) \
		$(GO) test -race -count=1 -timeout 600s -run TestCrashDrill ./internal/chaos
	$(GO) test -run FuzzJournalParse -fuzz FuzzJournalParse -fuzztime 5s ./internal/sweep
	@echo "crash drill passed ($(CRASH_POINTS) kill points)"

# Differential cycle-accuracy: the event-driven run loop must agree with
# the naive reference loop on cycles, outputs and stats for every kernel
# (also covered by `race`, but kept addressable for quick local runs).
differential:
	$(GO) test -run TestDifferentialCycleAccuracy ./internal/cluster

# Block-mode differential under the race detector: the kernel matrix in
# all four execution modes (superblock / block / stepped / reference),
# randomized programs over the fusable instruction space, the randomized
# branch/loop-dominated family that stresses superblock chaining, and
# the seeded-SEU stepped-fallback leg. Every observable must stay
# bit-identical.
block-differential:
	$(GO) test -race -count=1 \
		-run 'TestDifferentialCycleAccuracy|TestRandomizedBlockDifferential|TestRandomizedBranchyDifferential|TestBlockFaultDifferential' \
		./internal/cluster

# Full benchmark pass: regenerates every paper artifact as a benchmark and
# records the custom metrics (simulator throughput, headline numbers) in
# BENCH_PR2.json via cmd/benchreport. Format documented in EXPERIMENTS.md.
bench:
	$(GO) test -bench=. -benchmem | $(GO) run ./cmd/benchreport -o BENCH_PR2.json -before $(BENCH_BASELINE)

# One-iteration throughput smoke: catches gross simulator-speed regressions
# in CI without the cost (or the noise sensitivity) of a full bench run.
bench-smoke:
	$(GO) test -run xxx -bench=SimulatorThroughput -benchtime=1x .

# Observability cost gate: runs the plain and observed throughput
# benchmarks best-of-3 and writes BENCH_PR5.json. Fails if the obs-OFF
# simulator lost more than 1% vs the pre-PR baseline (zero-cost claim) or
# fell under the absolute floor; the report also records the obs-ON
# overhead under "obs_overhead". Bit-identical cycle counts either way
# are enforced separately by the differential tests in internal/cluster,
# internal/core and internal/paper.
obs-bench:
	$(GO) test -run xxx -bench 'SimulatorThroughput$$|SimulatorThroughputObs$$' -benchtime=2s -count=3 . \
		| $(GO) run ./cmd/benchreport -o BENCH_PR5.json -before $(OBS_BASELINE) -max-loss 0.01 -min $(OBS_FLOOR)

# Block-compiled execution gate: runs the plain, observed and block-vs-
# stepped mix benchmarks best-of-3 and writes BENCH_PR7.json. The plain
# throughput must stay within 15% of the pre-PR baseline (noise-tolerant
# variant of the obs-bench gate — the runner swings ±20% between runs)
# and above the absolute floor, and the block-mode mix throughput must
# not drop under BLOCK_FLOOR Msimcycles/s — the PR 7 headline number.
# The report records stepped/block/speedup under "block_throughput".
# Bit-identical execution is enforced separately by block-differential.
block-bench:
	$(GO) test -run xxx -bench 'SimulatorThroughput$$|SimulatorThroughputObs$$|SimulatorThroughputBlocks' -benchtime=2s -count=3 . \
		| $(GO) run ./cmd/benchreport -o BENCH_PR7.json -before $(OBS_BASELINE) -max-loss 0.15 -min $(OBS_FLOOR) -min-block $(BLOCK_FLOOR)

# Superblock chaining gate: runs the per-shape branch/loop-dominated
# benches (stepped/block/super x pulp-4c/pulp-1c/m4) plus the
# straight-line mix in one process, best-of-3 with -benchmem, and writes
# BENCH_PR8.json. The -min-ratio gates enforce the PR 8 acceptance bars
# (rationale at the SUPER_* definitions above); -max-allocs 0 enforces
# the allocation-free steady state on every branchy variant (clusters
# built and programs compiled outside the timed loop — the mix bench
# builds a cluster per RunJob, so it is not part of the audit).
# Bit-identical execution incl. the 9-class attribution is enforced
# separately by block-differential.
superblock-bench:
	$(GO) test -run xxx -bench 'SimulatorThroughputBlocks|SimulatorThroughputBranchy' -benchtime=1s -count=3 -benchmem . \
		| $(GO) run ./cmd/benchreport -o BENCH_PR8.json \
		-min-ratio 'SimulatorThroughputBranchy/super/pulp-1c:SimulatorThroughputBranchy/block/pulp-1c=$(SUPER_1C_MIN)' \
		-min-ratio 'SimulatorThroughputBranchy/super/pulp-4c:SimulatorThroughputBranchy/block/pulp-4c=$(SUPER_4C_MIN)' \
		-min-ratio 'SimulatorThroughputBranchy/super/m4:SimulatorThroughputBranchy/block/m4=$(SUPER_M4_MIN)' \
		-min-ratio 'SimulatorThroughputBlocks/super:SimulatorThroughputBlocks/block=$(SUPER_MIX_MIN)' \
		-max-allocs 'SimulatorThroughputBranchy/*=0'

# Sweep wall-clock record: times the reduced evaluation cold at -j1, cold
# at -j4 and on a warm run cache, and writes BENCH_PR3.json. The -warm-max
# gate enforces the PR3 acceptance bar: a warm rerun must cost under 5% of
# the cold serial one.
sweep-bench:
	$(GO) test -run xxx -bench=SweepWallclock -benchtime=1x . | $(GO) run ./cmd/benchreport -o BENCH_PR3.json -warm-max 0.05
