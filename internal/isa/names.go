package isa

var opByName = func() map[string]Op {
	m := make(map[string]Op, NumOps)
	for op := Op(0); op < Op(NumOps); op++ {
		m[op.String()] = op
	}
	return m
}()

// OpByName resolves a mnemonic to its opcode.
func OpByName(name string) (Op, bool) {
	op, ok := opByName[name]
	return op, ok
}
