package isa

import "fmt"

// Binary encoding: fixed 32-bit words, little-endian in memory.
//
//	[31:24] major opcode
//	[23:19] rd   (FmtR/I/IH/LP; base register ra for FmtS)
//	[18:14] ra   (source rb for FmtS)
//	[13:9]  rb   (FmtR)
//	[13:0]  imm14 (FmtI/S/LP; sign- or zero-extended per opcode)
//	[15:0]  imm16 (FmtIH)
//	[23:0]  imm24 (FmtB, signed word offset relative to the next instruction)
//
// The encoding exists so that the program image offloaded over the SPI link
// is a real byte stream (Table I binary sizes, Fig. 5b offload cost). The
// simulator pre-decodes the text segment once and interprets []Inst.

const (
	imm14Mask = (1 << 14) - 1
	imm16Mask = (1 << 16) - 1
	imm24Mask = (1 << 24) - 1
	// Imm14Min/Max bound the signed 14-bit immediate field.
	Imm14Min = -(1 << 13)
	Imm14Max = (1 << 13) - 1
	// Imm24Min/Max bound the signed 24-bit branch offset field.
	Imm24Min = -(1 << 23)
	Imm24Max = (1 << 23) - 1
)

// zeroExtImm reports whether the opcode's imm14 field is zero-extended
// (logical immediates and shift amounts) rather than sign-extended.
func zeroExtImm(op Op) bool {
	switch op {
	case ANDI, ORI, XORI, SLLI, SRLI, SRAI, MFSPR, TRAP, LPSETUP, SFLTUI, SFGEUI:
		return true
	}
	return false
}

// Encode packs the instruction into its 32-bit word. It returns an error if
// an operand does not fit its field.
func Encode(in Inst) (uint32, error) {
	if !in.Op.Valid() {
		return 0, fmt.Errorf("isa: invalid opcode %d", in.Op)
	}
	if in.Rd >= NumRegs || in.Ra >= NumRegs || in.Rb >= NumRegs {
		return 0, fmt.Errorf("isa: register out of range in %v", in)
	}
	w := uint32(in.Op) << 24
	switch in.Op.Format() {
	case FmtN:
	case FmtR, FmtJR:
		w |= uint32(in.Rd)<<19 | uint32(in.Ra)<<14 | uint32(in.Rb)<<9
	case FmtI, FmtLP:
		if err := checkImm14(in); err != nil {
			return 0, err
		}
		w |= uint32(in.Rd)<<19 | uint32(in.Ra)<<14 | uint32(in.Imm)&imm14Mask
	case FmtS:
		if err := checkImm14(in); err != nil {
			return 0, err
		}
		// Stores carry base in the rd field and source in the ra field.
		w |= uint32(in.Ra)<<19 | uint32(in.Rb)<<14 | uint32(in.Imm)&imm14Mask
	case FmtIH:
		if in.Imm < 0 || in.Imm > imm16Mask {
			return 0, fmt.Errorf("isa: imm16 out of range in %v", in)
		}
		w |= uint32(in.Rd)<<19 | uint32(in.Imm)&imm16Mask
	case FmtB:
		if in.Imm < Imm24Min || in.Imm > Imm24Max {
			return 0, fmt.Errorf("isa: imm24 out of range in %v", in)
		}
		w |= uint32(in.Imm) & imm24Mask
	}
	return w, nil
}

func checkImm14(in Inst) error {
	if zeroExtImm(in.Op) {
		if in.Imm < 0 || in.Imm > imm14Mask {
			return fmt.Errorf("isa: unsigned imm14 out of range in %v", in)
		}
		return nil
	}
	if in.Imm < Imm14Min || in.Imm > Imm14Max {
		return fmt.Errorf("isa: signed imm14 out of range in %v", in)
	}
	return nil
}

// Decode unpacks a 32-bit instruction word.
func Decode(w uint32) (Inst, error) {
	op := Op(w >> 24)
	if !op.Valid() {
		return Inst{}, fmt.Errorf("isa: invalid opcode byte 0x%02x", w>>24)
	}
	in := Inst{Op: op}
	switch op.Format() {
	case FmtN:
	case FmtR, FmtJR:
		in.Rd = Reg(w >> 19 & 31)
		in.Ra = Reg(w >> 14 & 31)
		in.Rb = Reg(w >> 9 & 31)
	case FmtI, FmtLP:
		in.Rd = Reg(w >> 19 & 31)
		in.Ra = Reg(w >> 14 & 31)
		in.Imm = extractImm14(op, w)
	case FmtS:
		in.Ra = Reg(w >> 19 & 31)
		in.Rb = Reg(w >> 14 & 31)
		in.Imm = extractImm14(op, w)
	case FmtIH:
		in.Rd = Reg(w >> 19 & 31)
		in.Imm = int32(w & imm16Mask)
	case FmtB:
		v := int32(w&imm24Mask) << 8 >> 8 // sign-extend 24 bits
		in.Imm = v
	}
	return in, nil
}

func extractImm14(op Op, w uint32) int32 {
	v := int32(w & imm14Mask)
	if !zeroExtImm(op) {
		v = v << 18 >> 18 // sign-extend 14 bits
	}
	return v
}

// EncodeProgram encodes a sequence of instructions as little-endian bytes.
func EncodeProgram(insts []Inst) ([]byte, error) {
	out := make([]byte, 4*len(insts))
	for i, in := range insts {
		w, err := Encode(in)
		if err != nil {
			return nil, fmt.Errorf("instruction %d: %w", i, err)
		}
		out[4*i] = byte(w)
		out[4*i+1] = byte(w >> 8)
		out[4*i+2] = byte(w >> 16)
		out[4*i+3] = byte(w >> 24)
	}
	return out, nil
}

// DecodeProgram decodes little-endian instruction bytes. len(b) must be a
// multiple of 4.
func DecodeProgram(b []byte) ([]Inst, error) {
	if len(b)%4 != 0 {
		return nil, fmt.Errorf("isa: text length %d not a multiple of 4", len(b))
	}
	out := make([]Inst, len(b)/4)
	for i := range out {
		w := uint32(b[4*i]) | uint32(b[4*i+1])<<8 | uint32(b[4*i+2])<<16 | uint32(b[4*i+3])<<24
		in, err := Decode(w)
		if err != nil {
			return nil, fmt.Errorf("word %d: %w", i, err)
		}
		out[i] = in
	}
	return out, nil
}
