// Package isa defines the instruction set executed by the simulated cores.
//
// The ISA is a 32-bit load/store RISC modelled on the OpenRISC 1000 subset
// implemented by the OR10N core used in the PULP3 cluster (Gautschi et al.,
// VLSI-SoC'15), including the extensions the DATE'16 paper credits for its
// architectural speedup:
//
//   - register-register multiply-accumulate (MAC)
//   - pseudo-SIMD "infra-word" vector operations on char (4x8) and
//     short (2x16) data, including accumulating dot products
//   - two zero-overhead hardware loops
//   - post-incrementing load/store addressing
//   - unaligned load/store support
//
// The same ISA, with different feature sets and cycle-cost tables, models
// the ARM Cortex-M3/M4 hosts (which have their own strengths: single-cycle
// 32x32+64->64 MAC on the M4, post-increment addressing) and the "plain
// RISC" configuration of footnote 1 in the paper, which is used to count
// the RISC operations of Table I.
package isa

import "fmt"

// Reg is a general-purpose register index (0..31). R0 is hardwired to zero.
type Reg uint8

// Register ABI (OpenRISC-flavoured calling convention).
const (
	R0 Reg = iota // hardwired zero
	SP            // r1: stack pointer
	FP            // r2: frame pointer (unused by generated code)
	A0            // r3..r8: arguments / caller-saved
	A1
	A2
	A3
	A4
	A5
	LR  // r9: link register
	R10 // r10: thread-local (core id cache by convention)
	RV  // r11: return value
	T0  // r12..r18: temporaries
	T1
	T2
	T3
	T4
	T5
	T6
	S0 // r19..r28: callee-saved
	S1
	S2
	S3
	S4
	S5
	S6
	S7
	S8
	S9
	T7 // r29..r31: extra temporaries
	T8
	T9
)

// NumRegs is the size of the register file.
const NumRegs = 32

// Format describes how an instruction's operands are encoded.
type Format uint8

const (
	FmtR  Format = iota // rd, ra, rb
	FmtI                // rd, ra, imm14 (sign- or zero-extended per op)
	FmtIH               // rd, imm16 (MOVHI)
	FmtS                // ra (base), rb (src), imm14 (stores)
	FmtB                // imm24 word offset (branches, jumps)
	FmtJR               // rd (link, JALR only), ra (target)
	FmtN                // no operands
	FmtLP               // rd=loop index, ra=count, imm14=body length
)

// Op is an opcode.
type Op uint8

// Opcode space. The numeric values are the encoding's 8-bit major opcode.
const (
	NOP Op = iota
	// Control flow.
	J    // pc-relative jump
	JAL  // jump and link (LR)
	JR   // jump register
	JALR // jump register and link (rd)
	BF   // branch if flag set
	BNF  // branch if flag clear
	TRAP // halt with code imm (tests / assertions)
	WFE  // wait for event (sleep until event latch set)

	// Flag-setting compares, register-register.
	SFEQ
	SFNE
	SFLTS
	SFLES
	SFGTS
	SFGES
	SFLTU
	SFLEU
	SFGTU
	SFGEU
	// Flag-setting compares, register-immediate.
	SFEQI
	SFNEI
	SFLTSI
	SFLESI
	SFGTSI
	SFGESI
	SFLTUI
	SFGEUI

	// ALU register-register.
	ADD
	SUB
	AND
	OR
	XOR
	SLL
	SRL
	SRA
	MUL
	DIV
	DIVU
	MIN  // extension: MinMax
	MAX  // extension: MinMax
	MINU // extension: MinMax
	MAXU // extension: MinMax
	MAC  // extension: MacRR — rd += ra*rb (32-bit)
	MSU  // extension: MacRR — rd -= ra*rb (32-bit)
	SEXTB
	SEXTH

	// ALU register-immediate.
	ADDI
	ANDI
	ORI
	XORI
	SLLI
	SRLI
	SRAI
	MOVHI // rd = imm16 << 16
	ORIL  // rd = rd | imm16 (pairs with MOVHI to build 32-bit constants)

	// 64-bit accumulator MAC (feature Mac64; models M3/M4 SMLAL/UMLAL).
	MACS   // acc += sext64(ra) * sext64(rb)
	MACU   // acc += zext64(ra) * zext64(rb)
	MACCLR // acc = 0
	MACRDL // rd = acc[31:0]
	MACRDH // rd = acc[63:32]

	// Pseudo-SIMD (feature SIMD).
	DOTP4B // rd += sum_{i<4} a.b[i]*b.b[i] (signed bytes)
	DOTP2H // rd += sum_{i<2} a.h[i]*b.h[i] (signed halves)
	ADD4B
	SUB4B
	ADD2H
	SUB2H
	SRA2H // per-lane arithmetic shift right by rb[3:0]

	// Loads.
	LBZ // load byte zero-extended
	LBS // load byte sign-extended
	LHZ
	LHS
	LW
	// Post-incrementing loads (feature PostIncr): addr = ra; ra += imm.
	LBZP
	LBSP
	LHZP
	LHSP
	LWP

	// Stores.
	SB
	SH
	SW
	// Post-incrementing stores.
	SBP
	SHP
	SWP

	// Hardware loops (feature HWLoop).
	LPSETUP // loop rd∈{0,1}: count = ra, body = next imm instructions

	// System.
	MFSPR // rd = SPR[imm]

	numOps // sentinel
)

// NumOps is the number of defined opcodes.
const NumOps = int(numOps)

// Special-purpose register numbers for MFSPR.
const (
	SprCoreID  = 0 // id of this core within the cluster
	SprNumCore = 1 // number of cores in the cluster
	SprCycleLo = 2 // low 32 bits of the cluster cycle counter
	SprCycleHi = 3 // high 32 bits of the cluster cycle counter
)

type opInfo struct {
	name string
	fmt  Format
}

var opTable = [numOps]opInfo{
	NOP:  {"nop", FmtN},
	J:    {"j", FmtB},
	JAL:  {"jal", FmtB},
	JR:   {"jr", FmtJR},
	JALR: {"jalr", FmtJR},
	BF:   {"bf", FmtB},
	BNF:  {"bnf", FmtB},
	TRAP: {"trap", FmtI},
	WFE:  {"wfe", FmtN},

	SFEQ:  {"sfeq", FmtR},
	SFNE:  {"sfne", FmtR},
	SFLTS: {"sflts", FmtR},
	SFLES: {"sfles", FmtR},
	SFGTS: {"sfgts", FmtR},
	SFGES: {"sfges", FmtR},
	SFLTU: {"sfltu", FmtR},
	SFLEU: {"sfleu", FmtR},
	SFGTU: {"sfgtu", FmtR},
	SFGEU: {"sfgeu", FmtR},

	SFEQI:  {"sfeqi", FmtI},
	SFNEI:  {"sfnei", FmtI},
	SFLTSI: {"sfltsi", FmtI},
	SFLESI: {"sflesi", FmtI},
	SFGTSI: {"sfgtsi", FmtI},
	SFGESI: {"sfgesi", FmtI},
	SFLTUI: {"sfltui", FmtI},
	SFGEUI: {"sfgeui", FmtI},

	ADD:   {"add", FmtR},
	SUB:   {"sub", FmtR},
	AND:   {"and", FmtR},
	OR:    {"or", FmtR},
	XOR:   {"xor", FmtR},
	SLL:   {"sll", FmtR},
	SRL:   {"srl", FmtR},
	SRA:   {"sra", FmtR},
	MUL:   {"mul", FmtR},
	DIV:   {"div", FmtR},
	DIVU:  {"divu", FmtR},
	MIN:   {"min", FmtR},
	MAX:   {"max", FmtR},
	MINU:  {"minu", FmtR},
	MAXU:  {"maxu", FmtR},
	MAC:   {"mac", FmtR},
	MSU:   {"msu", FmtR},
	SEXTB: {"sextb", FmtR},
	SEXTH: {"sexth", FmtR},

	ADDI:  {"addi", FmtI},
	ANDI:  {"andi", FmtI},
	ORI:   {"ori", FmtI},
	XORI:  {"xori", FmtI},
	SLLI:  {"slli", FmtI},
	SRLI:  {"srli", FmtI},
	SRAI:  {"srai", FmtI},
	MOVHI: {"movhi", FmtIH},
	ORIL:  {"oril", FmtIH},

	MACS:   {"macs", FmtR},
	MACU:   {"macu", FmtR},
	MACCLR: {"macclr", FmtN},
	MACRDL: {"macrdl", FmtR},
	MACRDH: {"macrdh", FmtR},

	DOTP4B: {"dotp4b", FmtR},
	DOTP2H: {"dotp2h", FmtR},
	ADD4B:  {"add4b", FmtR},
	SUB4B:  {"sub4b", FmtR},
	ADD2H:  {"add2h", FmtR},
	SUB2H:  {"sub2h", FmtR},
	SRA2H:  {"sra2h", FmtR},

	LBZ:  {"lbz", FmtI},
	LBS:  {"lbs", FmtI},
	LHZ:  {"lhz", FmtI},
	LHS:  {"lhs", FmtI},
	LW:   {"lw", FmtI},
	LBZP: {"lbzp", FmtI},
	LBSP: {"lbsp", FmtI},
	LHZP: {"lhzp", FmtI},
	LHSP: {"lhsp", FmtI},
	LWP:  {"lwp", FmtI},

	SB:  {"sb", FmtS},
	SH:  {"sh", FmtS},
	SW:  {"sw", FmtS},
	SBP: {"sbp", FmtS},
	SHP: {"shp", FmtS},
	SWP: {"swp", FmtS},

	LPSETUP: {"lp.setup", FmtLP},

	MFSPR: {"mfspr", FmtI},
}

// String returns the mnemonic of the opcode.
func (o Op) String() string {
	if int(o) < len(opTable) && opTable[o].name != "" {
		return opTable[o].name
	}
	return fmt.Sprintf("op%d", uint8(o))
}

// Format returns the encoding format of the opcode.
func (o Op) Format() Format {
	if int(o) >= len(opTable) {
		return FmtN
	}
	return opTable[o].fmt
}

// Valid reports whether o is a defined opcode.
func (o Op) Valid() bool { return o < numOps }

// IsLoad reports whether the opcode reads data memory.
func (o Op) IsLoad() bool { return o >= LBZ && o <= LWP }

// IsStore reports whether the opcode writes data memory.
func (o Op) IsStore() bool { return o >= SB && o <= SWP }

// IsPostIncr reports whether the opcode uses post-increment addressing.
func (o Op) IsPostIncr() bool {
	return (o >= LBZP && o <= LWP) || (o >= SBP && o <= SWP)
}

// MemSize returns the access width in bytes for load/store opcodes (0 for
// non-memory opcodes).
func (o Op) MemSize() uint8 {
	switch o {
	case LBZ, LBS, LBZP, LBSP, SB, SBP:
		return 1
	case LHZ, LHS, LHZP, LHSP, SH, SHP:
		return 2
	case LW, LWP, SW, SWP:
		return 4
	}
	return 0
}

// IsBranch reports whether the opcode is a PC-relative conditional branch.
func (o Op) IsBranch() bool { return o == BF || o == BNF }

// IsCompare reports whether the opcode sets the flag.
func (o Op) IsCompare() bool { return o >= SFEQ && o <= SFGEUI }

// Inst is a decoded instruction.
type Inst struct {
	Op  Op
	Rd  Reg
	Ra  Reg
	Rb  Reg
	Imm int32
}

// String disassembles the instruction (without symbol resolution).
func (in Inst) String() string {
	switch in.Op.Format() {
	case FmtN:
		return in.Op.String()
	case FmtR:
		switch in.Op {
		case SEXTB, SEXTH, MACRDL, MACRDH:
			return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Ra)
		case MACS, MACU:
			return fmt.Sprintf("%s r%d, r%d", in.Op, in.Ra, in.Rb)
		case SFEQ, SFNE, SFLTS, SFLES, SFGTS, SFGES, SFLTU, SFLEU, SFGTU, SFGEU:
			return fmt.Sprintf("%s r%d, r%d", in.Op, in.Ra, in.Rb)
		}
		return fmt.Sprintf("%s r%d, r%d, r%d", in.Op, in.Rd, in.Ra, in.Rb)
	case FmtI:
		if in.Op.IsLoad() {
			return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rd, in.Imm, in.Ra)
		}
		if in.Op.IsCompare() || in.Op == TRAP || in.Op == MFSPR {
			if in.Op == TRAP {
				return fmt.Sprintf("%s %d", in.Op, in.Imm)
			}
			if in.Op == MFSPR {
				return fmt.Sprintf("%s r%d, %d", in.Op, in.Rd, in.Imm)
			}
			return fmt.Sprintf("%s r%d, %d", in.Op, in.Ra, in.Imm)
		}
		return fmt.Sprintf("%s r%d, r%d, %d", in.Op, in.Rd, in.Ra, in.Imm)
	case FmtIH:
		return fmt.Sprintf("%s r%d, 0x%x", in.Op, in.Rd, uint16(in.Imm))
	case FmtS:
		return fmt.Sprintf("%s r%d, %d(r%d)", in.Op, in.Rb, in.Imm, in.Ra)
	case FmtB:
		return fmt.Sprintf("%s %+d", in.Op, in.Imm)
	case FmtJR:
		if in.Op == JALR {
			return fmt.Sprintf("%s r%d, r%d", in.Op, in.Rd, in.Ra)
		}
		return fmt.Sprintf("%s r%d", in.Op, in.Ra)
	case FmtLP:
		return fmt.Sprintf("%s %d, r%d, %d", in.Op, in.Rd, in.Ra, in.Imm)
	}
	return in.Op.String()
}
