package isa

import "fmt"

// Features is the set of optional ISA capabilities of a target core. The
// code generator in internal/kernels queries these to decide which
// instruction sequence to emit (e.g. SIMD dot-product loop vs. scalar loop),
// which is exactly how the paper's portable-C benchmarks specialize per
// target through compiler flags.
type Features struct {
	HWLoop    bool // zero-overhead hardware loops (OR10N)
	SIMD      bool // pseudo-SIMD char/short vector ops (OR10N)
	MacRR     bool // single register-register 32-bit MAC (OR10N, M3/M4 MLA)
	Mac64     bool // 64-bit accumulator MAC (M3/M4 SMLAL/UMLAL)
	PostIncr  bool // post-increment addressing (OR10N; ARM has it too)
	Unaligned bool // unaligned load/store support (OR10N)
	MinMax    bool // single-cycle min/max (OR10N extension)
}

// Timing holds the per-target cycle-cost deltas relative to the 1-cycle
// baseline of a simple in-order pipeline. Memory-system effects (TCDM bank
// conflicts, I-cache misses) are modelled separately by the cluster; these
// numbers cover only what the core pipeline itself adds.
type Timing struct {
	LoadUse     int // extra cycles when the next instruction uses a load result
	BranchTaken int // pipeline refill after a taken branch
	Jump        int // penalty of unconditional J/JAL/JR/JALR
	Mul         int // total cycles of MUL
	Mac         int // total cycles of MAC/MSU (if MacRR)
	Mac64       int // total cycles of MACS/MACU (if Mac64)
	Div         int // total cycles of DIV/DIVU
	WakeUp      int // cycles from event arrival to first instruction
}

// Target couples a feature set with its timing model.
type Target struct {
	Name string
	Feat Features
	Time Timing
}

func (t Target) String() string { return t.Name }

// The four target configurations used throughout the reproduction.
var (
	// PULPFull is the OR10N core with every microarchitectural extension
	// enabled: the accelerator configuration of the paper. Single-cycle
	// TCDM gives loads with no load-use penalty (4-stage pipeline with the
	// memory access resolved before use), 1-cycle MAC and SIMD dot product,
	// hardware loops, and a short branch shadow.
	PULPFull = Target{
		Name: "pulp-or10n",
		Feat: Features{HWLoop: true, SIMD: true, MacRR: true, PostIncr: true, Unaligned: true, MinMax: true},
		Time: Timing{LoadUse: 0, BranchTaken: 1, Jump: 1, Mul: 1, Mac: 1, Div: 32, WakeUp: 2},
	}

	// PULPPlain is the footnote-1 configuration: "all microarchitectural
	// improvements deactivated ... essentially equal to the OpenRISC 1000
	// ISA ... a very simple 5-stage pipeline and a reduced instruction set,
	// comparable to that of the original MIPS". It defines the RISC-op
	// count of Table I: RISC ops = instructions retired on this core.
	PULPPlain = Target{
		Name: "pulp-plain",
		Feat: Features{},
		Time: Timing{LoadUse: 1, BranchTaken: 2, Jump: 2, Mul: 5, Div: 34, WakeUp: 2},
	}

	// CortexM3 models the ARM Cortex-M3 hosts: Thumb-2 with post-increment
	// addressing and a 2-cycle MLA, a 3..7-cycle long multiply (we use 5),
	// 2-cycle taken branches, and a load-use bubble that compilers mostly
	// schedule around (pipelined back-to-back loads are 1 cycle each).
	CortexM3 = Target{
		Name: "cortex-m3",
		Feat: Features{MacRR: true, Mac64: true, PostIncr: true, Unaligned: true},
		Time: Timing{LoadUse: 1, BranchTaken: 2, Jump: 2, Mul: 1, Mac: 2, Mac64: 5, Div: 8, WakeUp: 8},
	}

	// CortexM4 is the M3 plus the DSP extension's single-cycle MAC and
	// single-cycle long MAC (SMLAL), as on the STM32-L476/F407/F446.
	CortexM4 = Target{
		Name: "cortex-m4",
		Feat: Features{MacRR: true, Mac64: true, PostIncr: true, Unaligned: true},
		Time: Timing{LoadUse: 1, BranchTaken: 2, Jump: 2, Mul: 1, Mac: 1, Mac64: 1, Div: 6, WakeUp: 8},
	}
)

// Targets lists every defined target by name.
var Targets = map[string]Target{
	PULPFull.Name:  PULPFull,
	PULPPlain.Name: PULPPlain,
	CortexM3.Name:  CortexM3,
	CortexM4.Name:  CortexM4,
}

// TargetByName looks up a target configuration.
func TargetByName(name string) (Target, error) {
	t, ok := Targets[name]
	if !ok {
		return Target{}, fmt.Errorf("isa: unknown target %q", name)
	}
	return t, nil
}

// Supports reports whether the target can execute the opcode. The simulator
// refuses (traps) instructions outside the target's feature set, which is
// how tests guarantee the code generator honoured the feature flags.
func (t Target) Supports(op Op) bool {
	f := t.Feat
	switch op {
	case MAC, MSU:
		return f.MacRR
	case MACS, MACU, MACCLR, MACRDL, MACRDH:
		return f.Mac64
	case DOTP4B, DOTP2H, ADD4B, SUB4B, ADD2H, SUB2H, SRA2H:
		return f.SIMD
	case MIN, MAX, MINU, MAXU:
		return f.MinMax
	case LPSETUP:
		return f.HWLoop
	case LBZP, LBSP, LHZP, LHSP, LWP, SBP, SHP, SWP:
		return f.PostIncr
	}
	return true
}

// OpCycles returns the number of cycles the core pipeline spends on op,
// excluding memory-system stalls and branch penalties (those depend on
// runtime state). Minimum 1.
func (t Target) OpCycles(op Op) int {
	switch op {
	case MUL:
		return t.Time.Mul
	case MAC, MSU:
		return t.Time.Mac
	case MACS, MACU:
		return t.Time.Mac64
	case DIV, DIVU:
		return t.Time.Div
	}
	return 1
}
