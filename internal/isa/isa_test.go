package isa

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestOpTableComplete(t *testing.T) {
	for op := Op(0); op < Op(NumOps); op++ {
		if op.String() == "" || strings.HasPrefix(op.String(), "op") {
			t.Errorf("opcode %d has no mnemonic", op)
		}
	}
}

func TestMemClassifiers(t *testing.T) {
	cases := []struct {
		op            Op
		load, store   bool
		postIncr      bool
		size          uint8
		wantSignedExt bool
	}{
		{LBZ, true, false, false, 1, false},
		{LBS, true, false, false, 1, true},
		{LHSP, true, false, true, 2, true},
		{LW, true, false, false, 4, false},
		{LWP, true, false, true, 4, false},
		{SB, false, true, false, 1, false},
		{SWP, false, true, true, 4, false},
		{ADD, false, false, false, 0, false},
		{DOTP4B, false, false, false, 0, false},
	}
	for _, c := range cases {
		if c.op.IsLoad() != c.load {
			t.Errorf("%v IsLoad = %v", c.op, c.op.IsLoad())
		}
		if c.op.IsStore() != c.store {
			t.Errorf("%v IsStore = %v", c.op, c.op.IsStore())
		}
		if c.op.IsPostIncr() != c.postIncr {
			t.Errorf("%v IsPostIncr = %v", c.op, c.op.IsPostIncr())
		}
		if c.op.MemSize() != c.size {
			t.Errorf("%v MemSize = %d, want %d", c.op, c.op.MemSize(), c.size)
		}
	}
}

func TestCompareClassifier(t *testing.T) {
	for _, op := range []Op{SFEQ, SFNE, SFLTS, SFGEU, SFEQI, SFGEUI} {
		if !op.IsCompare() {
			t.Errorf("%v should be a compare", op)
		}
	}
	for _, op := range []Op{ADD, BF, LW, MFSPR} {
		if op.IsCompare() {
			t.Errorf("%v should not be a compare", op)
		}
	}
}

// randInst builds a random but encodable instruction for the roundtrip test.
func randInst(r *rand.Rand) Inst {
	op := Op(r.Intn(NumOps))
	in := Inst{Op: op}
	switch op.Format() {
	case FmtR, FmtJR:
		in.Rd = Reg(r.Intn(32))
		in.Ra = Reg(r.Intn(32))
		in.Rb = Reg(r.Intn(32))
	case FmtI, FmtLP:
		in.Rd = Reg(r.Intn(32))
		in.Ra = Reg(r.Intn(32))
		if zeroExtImm(op) {
			in.Imm = int32(r.Intn(imm14Mask + 1))
		} else {
			in.Imm = int32(r.Intn(Imm14Max-Imm14Min+1)) + Imm14Min
		}
	case FmtS:
		in.Ra = Reg(r.Intn(32))
		in.Rb = Reg(r.Intn(32))
		in.Imm = int32(r.Intn(Imm14Max-Imm14Min+1)) + Imm14Min
	case FmtIH:
		in.Rd = Reg(r.Intn(32))
		in.Imm = int32(r.Intn(imm16Mask + 1))
	case FmtB:
		in.Imm = int32(r.Intn(Imm24Max-Imm24Min+1)) + Imm24Min
	}
	return in
}

func TestEncodeDecodeRoundtripProperty(t *testing.T) {
	cfg := &quick.Config{
		MaxCount: 5000,
		Values: func(vals []reflect.Value, r *rand.Rand) {
			vals[0] = reflect.ValueOf(randInst(r))
		},
	}
	prop := func(in Inst) bool {
		w, err := Encode(in)
		if err != nil {
			t.Logf("encode %v: %v", in, err)
			return false
		}
		got, err := Decode(w)
		if err != nil {
			t.Logf("decode %v: %v", in, err)
			return false
		}
		return got == in
	}
	if err := quick.Check(prop, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRangeErrors(t *testing.T) {
	bad := []Inst{
		{Op: ADDI, Rd: A0, Ra: A1, Imm: Imm14Max + 1},
		{Op: ADDI, Rd: A0, Ra: A1, Imm: Imm14Min - 1},
		{Op: ANDI, Rd: A0, Ra: A1, Imm: -1},
		{Op: MOVHI, Rd: A0, Imm: 1 << 16},
		{Op: BF, Imm: Imm24Max + 1},
		{Op: Op(NumOps), Rd: A0},
	}
	for _, in := range bad {
		if _, err := Encode(in); err == nil {
			t.Errorf("Encode(%v) should fail", in)
		}
	}
}

func TestDecodeInvalidOpcode(t *testing.T) {
	if _, err := Decode(0xff000000); err == nil {
		t.Fatal("decoding invalid opcode byte should fail")
	}
}

func TestEncodeDecodeProgram(t *testing.T) {
	prog := []Inst{
		{Op: MOVHI, Rd: A0, Imm: 0x1000},
		{Op: ORI, Rd: A0, Ra: A0, Imm: 0x234},
		{Op: LW, Rd: A1, Ra: A0, Imm: 4},
		{Op: ADD, Rd: RV, Ra: A1, Rb: A0},
		{Op: SW, Ra: A0, Rb: RV, Imm: 8},
		{Op: BNF, Imm: -5},
		{Op: JR, Ra: LR},
	}
	b, err := EncodeProgram(prog)
	if err != nil {
		t.Fatal(err)
	}
	if len(b) != 4*len(prog) {
		t.Fatalf("len = %d", len(b))
	}
	back, err := DecodeProgram(b)
	if err != nil {
		t.Fatal(err)
	}
	for i := range prog {
		if back[i] != prog[i] {
			t.Errorf("inst %d: got %v want %v", i, back[i], prog[i])
		}
	}
	if _, err := DecodeProgram(b[:5]); err == nil {
		t.Error("odd-length program should fail to decode")
	}
}

func TestTargetSupports(t *testing.T) {
	if PULPFull.Supports(MACS) {
		t.Error("OR10N must not support the 64-bit accumulator MAC (that is the M-profile advantage hog exploits)")
	}
	if !CortexM4.Supports(MACS) || !CortexM3.Supports(MACS) {
		t.Error("M profiles must support 64-bit MAC")
	}
	if CortexM4.Supports(DOTP4B) || CortexM4.Supports(LPSETUP) {
		t.Error("M profiles must not support SIMD or hardware loops")
	}
	if PULPPlain.Supports(MAC) || PULPPlain.Supports(LWP) || PULPPlain.Supports(MIN) {
		t.Error("plain-RISC profile must reject all extensions")
	}
	for _, op := range []Op{ADD, LW, SW, BF, MUL, DIV, MFSPR, WFE} {
		for _, tg := range Targets {
			if !tg.Supports(op) {
				t.Errorf("%s must support baseline op %v", tg.Name, op)
			}
		}
	}
}

func TestOpCycles(t *testing.T) {
	if c := PULPFull.OpCycles(MAC); c != 1 {
		t.Errorf("OR10N MAC cycles = %d, want 1", c)
	}
	if c := CortexM3.OpCycles(MACS); c != 5 {
		t.Errorf("M3 long-MAC cycles = %d, want 5", c)
	}
	if c := CortexM4.OpCycles(MACS); c != 1 {
		t.Errorf("M4 long-MAC cycles = %d, want 1", c)
	}
	if c := PULPFull.OpCycles(DIV); c != 32 {
		t.Errorf("OR10N DIV cycles = %d, want 32", c)
	}
	if c := PULPPlain.OpCycles(MUL); c != 5 {
		t.Errorf("plain MUL cycles = %d, want 5", c)
	}
	if c := CortexM4.OpCycles(ADD); c != 1 {
		t.Errorf("ADD cycles = %d, want 1", c)
	}
}

func TestTargetByName(t *testing.T) {
	tg, err := TargetByName("pulp-or10n")
	if err != nil || tg.Name != "pulp-or10n" {
		t.Fatalf("TargetByName: %v %v", tg, err)
	}
	if _, err := TargetByName("z80"); err == nil {
		t.Fatal("unknown target should fail")
	}
}

func TestInstStringSmoke(t *testing.T) {
	// Every opcode must disassemble to something containing its mnemonic.
	r := rand.New(rand.NewSource(1))
	for op := Op(0); op < Op(NumOps); op++ {
		in := randInst(r)
		in.Op = op
		s := in.String()
		if !strings.Contains(s, op.String()) {
			t.Errorf("String of %v = %q lacks mnemonic", op, s)
		}
	}
}
