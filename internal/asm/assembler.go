package asm

import (
	"fmt"
	"strconv"
	"strings"

	"hetsim/internal/isa"
)

// Assemble translates assembly text into a linked Program. The syntax is a
// line-oriented subset matching the disassembler's output:
//
//	label:                     ; define a code label
//	    add  r3, r4, r5        ; FmtR
//	    addi r3, r4, -12       ; FmtI
//	    lw   r3, 8(r4)         ; loads
//	    sw   r5, 0(r4)         ; stores: src, off(base)
//	    movhi r3, 0x1000
//	    bf   loop              ; branches take labels
//	    lp.setup 0, r5, end    ; HW loop: index, count reg, end label
//	    li   r3, 0x12345678    ; pseudo: load 32-bit constant
//	    la   r3, table         ; pseudo: load symbol address
//	    mov  r3, r4            ; pseudo
//	    ret                    ; pseudo: jr lr
//	.word  name v0 v1 ...      ; data directives
//	.half  name v0 v1 ...
//	.byte  name v0 v1 ...
//	.space name n
//
// Comments start with ';' or '#'. Register operands accept both rN and the
// ABI names (sp, lr, a0..a5, rv, t0.., s0..).
func Assemble(name, src string, l Layout) (*Program, error) {
	b := NewBuilder(name)
	for lineno, raw := range strings.Split(src, "\n") {
		line := stripComment(raw)
		if line == "" {
			continue
		}
		if err := asmLine(b, line); err != nil {
			return nil, fmt.Errorf("asm: line %d: %w", lineno+1, err)
		}
	}
	return b.Build(l)
}

func stripComment(s string) string {
	if i := strings.IndexAny(s, ";#"); i >= 0 {
		s = s[:i]
	}
	return strings.TrimSpace(s)
}

var abiRegs = map[string]isa.Reg{
	"sp": isa.SP, "fp": isa.FP, "lr": isa.LR, "rv": isa.RV,
	"a0": isa.A0, "a1": isa.A1, "a2": isa.A2, "a3": isa.A3, "a4": isa.A4, "a5": isa.A5,
	"t0": isa.T0, "t1": isa.T1, "t2": isa.T2, "t3": isa.T3, "t4": isa.T4, "t5": isa.T5, "t6": isa.T6,
	"t7": isa.T7, "t8": isa.T8, "t9": isa.T9,
	"s0": isa.S0, "s1": isa.S1, "s2": isa.S2, "s3": isa.S3, "s4": isa.S4,
	"s5": isa.S5, "s6": isa.S6, "s7": isa.S7, "s8": isa.S8, "s9": isa.S9,
}

func parseReg(s string) (isa.Reg, error) {
	s = strings.ToLower(strings.TrimSpace(s))
	if r, ok := abiRegs[s]; ok {
		return r, nil
	}
	if strings.HasPrefix(s, "r") {
		n, err := strconv.Atoi(s[1:])
		if err == nil && n >= 0 && n < isa.NumRegs {
			return isa.Reg(n), nil
		}
	}
	return 0, fmt.Errorf("bad register %q", s)
}

func parseImm(s string) (int32, error) {
	v, err := strconv.ParseInt(strings.TrimSpace(s), 0, 64)
	if err != nil {
		return 0, fmt.Errorf("bad immediate %q", s)
	}
	if v < -(1<<31) || v > (1<<32)-1 {
		return 0, fmt.Errorf("immediate %q out of 32-bit range", s)
	}
	return int32(uint32(v)), nil
}

// parseMem parses "off(rN)".
func parseMem(s string) (isa.Reg, int32, error) {
	s = strings.TrimSpace(s)
	open := strings.IndexByte(s, '(')
	if open < 0 || !strings.HasSuffix(s, ")") {
		return 0, 0, fmt.Errorf("bad memory operand %q", s)
	}
	off := int32(0)
	if open > 0 {
		v, err := parseImm(s[:open])
		if err != nil {
			return 0, 0, err
		}
		off = v
	}
	base, err := parseReg(s[open+1 : len(s)-1])
	return base, off, err
}

func splitOperands(s string) []string {
	if strings.TrimSpace(s) == "" {
		return nil
	}
	parts := strings.Split(s, ",")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	return parts
}

func asmLine(b *Builder, line string) error {
	// Labels (possibly followed by an instruction on the same line).
	for {
		i := strings.IndexByte(line, ':')
		if i < 0 {
			break
		}
		lbl := strings.TrimSpace(line[:i])
		if lbl == "" || strings.ContainsAny(lbl, " \t(") {
			break // ':' belongs to something else
		}
		b.Label(lbl)
		line = strings.TrimSpace(line[i+1:])
		if line == "" {
			return b.Err()
		}
	}

	if strings.HasPrefix(line, ".") {
		return asmDirective(b, line)
	}

	mn := line
	rest := ""
	if i := strings.IndexAny(line, " \t"); i >= 0 {
		mn, rest = line[:i], strings.TrimSpace(line[i+1:])
	}
	mn = strings.ToLower(mn)
	ops := splitOperands(rest)

	// Pseudo-instructions first.
	switch mn {
	case "li", "la", "mov":
		if len(ops) != 2 {
			return fmt.Errorf("%s needs 2 operands", mn)
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		switch mn {
		case "mov":
			ra, err := parseReg(ops[1])
			if err != nil {
				return err
			}
			b.MOV(rd, ra)
		case "li":
			imm, err := parseImm(ops[1])
			if err != nil {
				return err
			}
			b.LI(rd, imm)
		case "la":
			b.LA(rd, ops[1])
		}
		return b.Err()
	case "ret":
		b.Ret()
		return b.Err()
	case "call":
		if len(ops) != 1 {
			return fmt.Errorf("call needs a label")
		}
		b.JAL(ops[0])
		return b.Err()
	}

	op, ok := isa.OpByName(mn)
	if !ok {
		return fmt.Errorf("unknown mnemonic %q", mn)
	}
	return asmOp(b, op, ops)
}

func asmOp(b *Builder, op isa.Op, ops []string) error {
	need := func(n int) error {
		if len(ops) != n {
			return fmt.Errorf("%v needs %d operands, got %d", op, n, len(ops))
		}
		return nil
	}
	switch op.Format() {
	case isa.FmtN:
		if err := need(0); err != nil {
			return err
		}
		b.I(isa.Inst{Op: op})

	case isa.FmtR:
		switch op {
		case isa.SEXTB, isa.SEXTH, isa.MACRDL, isa.MACRDH:
			if err := need(2); err != nil {
				return err
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			ra, err := parseReg(ops[1])
			if err != nil {
				return err
			}
			b.I(isa.Inst{Op: op, Rd: rd, Ra: ra})
		case isa.MACS, isa.MACU:
			if err := need(2); err != nil {
				return err
			}
			ra, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			rb, err := parseReg(ops[1])
			if err != nil {
				return err
			}
			b.I(isa.Inst{Op: op, Ra: ra, Rb: rb})
		default:
			if op.IsCompare() {
				if err := need(2); err != nil {
					return err
				}
				ra, err := parseReg(ops[0])
				if err != nil {
					return err
				}
				rb, err := parseReg(ops[1])
				if err != nil {
					return err
				}
				b.SF(op, ra, rb)
				return b.Err()
			}
			if err := need(3); err != nil {
				return err
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			ra, err := parseReg(ops[1])
			if err != nil {
				return err
			}
			rb, err := parseReg(ops[2])
			if err != nil {
				return err
			}
			b.I(isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb})
		}

	case isa.FmtI:
		switch {
		case op.IsLoad():
			if err := need(2); err != nil {
				return err
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			base, off, err := parseMem(ops[1])
			if err != nil {
				return err
			}
			b.Load(op, rd, base, off)
		case op == isa.TRAP:
			if err := need(1); err != nil {
				return err
			}
			imm, err := parseImm(ops[0])
			if err != nil {
				return err
			}
			b.TRAP(imm)
		case op == isa.MFSPR:
			if err := need(2); err != nil {
				return err
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			imm, err := parseImm(ops[1])
			if err != nil {
				return err
			}
			b.MFSPR(rd, imm)
		case op.IsCompare():
			if err := need(2); err != nil {
				return err
			}
			ra, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			imm, err := parseImm(ops[1])
			if err != nil {
				return err
			}
			b.SFI(op, ra, imm)
		default:
			if err := need(3); err != nil {
				return err
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			ra, err := parseReg(ops[1])
			if err != nil {
				return err
			}
			imm, err := parseImm(ops[2])
			if err != nil {
				return err
			}
			b.I(isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: imm})
		}

	case isa.FmtIH:
		if err := need(2); err != nil {
			return err
		}
		rd, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		imm, err := parseImm(ops[1])
		if err != nil {
			return err
		}
		b.I(isa.Inst{Op: op, Rd: rd, Imm: imm})

	case isa.FmtS:
		if err := need(2); err != nil {
			return err
		}
		src, err := parseReg(ops[0])
		if err != nil {
			return err
		}
		base, off, err := parseMem(ops[1])
		if err != nil {
			return err
		}
		b.Store(op, base, src, off)

	case isa.FmtB:
		if err := need(1); err != nil {
			return err
		}
		switch op {
		case isa.J:
			b.J(ops[0])
		case isa.JAL:
			b.JAL(ops[0])
		case isa.BF:
			b.BF(ops[0])
		case isa.BNF:
			b.BNF(ops[0])
		}

	case isa.FmtJR:
		if op == isa.JALR {
			if err := need(2); err != nil {
				return err
			}
			rd, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			ra, err := parseReg(ops[1])
			if err != nil {
				return err
			}
			b.JALR(rd, ra)
		} else {
			if err := need(1); err != nil {
				return err
			}
			ra, err := parseReg(ops[0])
			if err != nil {
				return err
			}
			b.JR(ra)
		}

	case isa.FmtLP:
		if err := need(3); err != nil {
			return err
		}
		idx, err := parseImm(ops[0])
		if err != nil {
			return err
		}
		cnt, err := parseReg(ops[1])
		if err != nil {
			return err
		}
		b.LPSetup(int(idx), cnt, ops[2])
	}
	return b.Err()
}

func asmDirective(b *Builder, line string) error {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return fmt.Errorf("directive %q needs a symbol name", fields[0])
	}
	dir, name := fields[0], fields[1]
	vals := fields[2:]
	switch dir {
	case ".word":
		out := make([]int32, len(vals))
		for i, v := range vals {
			x, err := parseImm(v)
			if err != nil {
				return err
			}
			out[i] = x
		}
		b.Words(name, out)
	case ".half":
		out := make([]int16, len(vals))
		for i, v := range vals {
			x, err := parseImm(v)
			if err != nil {
				return err
			}
			out[i] = int16(x)
		}
		b.Halves(name, out)
	case ".byte":
		out := make([]int8, len(vals))
		for i, v := range vals {
			x, err := parseImm(v)
			if err != nil {
				return err
			}
			out[i] = int8(x)
		}
		b.Bytes8(name, out)
	case ".space":
		if len(vals) != 1 {
			return fmt.Errorf(".space needs a size")
		}
		n, err := parseImm(vals[0])
		if err != nil {
			return err
		}
		if n < 0 {
			return fmt.Errorf(".space size must be non-negative")
		}
		b.Space(name, uint32(n), 4)
	default:
		return fmt.Errorf("unknown directive %q", dir)
	}
	return b.Err()
}
