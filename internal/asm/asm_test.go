package asm

import (
	"bytes"
	"strings"
	"testing"

	"hetsim/internal/hw"
	"hetsim/internal/isa"
)

func TestBuilderBranchRelocation(t *testing.T) {
	b := NewBuilder("t")
	b.Label("start")
	b.ADDI(isa.A0, isa.R0, 1) // 0
	b.J("end")                // 1
	b.NOP()                   // 2
	b.Label("end")
	b.BNF("start") // 3
	p, err := b.Build(Layout{})
	if err != nil {
		t.Fatal(err)
	}
	if p.Text[1].Imm != 1 { // from pc=1, target 3 => (3-1-1) = 1
		t.Errorf("J offset = %d, want 1", p.Text[1].Imm)
	}
	if p.Text[3].Imm != -4 { // from pc=3, target 0 => (0-3-1) = -4
		t.Errorf("BNF offset = %d, want -4", p.Text[3].Imm)
	}
}

func TestBuilderLPRelocation(t *testing.T) {
	b := NewBuilder("t")
	b.LI(isa.T0, 10)
	b.LPSetup(0, isa.T0, "body_end")
	b.ADDI(isa.A0, isa.A0, 1)
	b.ADDI(isa.A1, isa.A1, 2)
	b.Label("body_end")
	b.Ret()
	p, err := b.Build(Layout{})
	if err != nil {
		t.Fatal(err)
	}
	var lp isa.Inst
	for _, in := range p.Text {
		if in.Op == isa.LPSETUP {
			lp = in
		}
	}
	if lp.Op != isa.LPSETUP || lp.Imm != 2 {
		t.Fatalf("LPSETUP body length = %d, want 2 (%v)", lp.Imm, lp)
	}
}

func TestBuilderEmptyHWLoopRejected(t *testing.T) {
	b := NewBuilder("t")
	b.LI(isa.T0, 4)
	b.LPSetup(0, isa.T0, "end")
	b.Label("end")
	b.Ret()
	if _, err := b.Build(Layout{}); err == nil {
		t.Fatal("empty hardware-loop body must be rejected")
	}
}

func TestBuilderDataLayoutAndLA(t *testing.T) {
	b := NewBuilder("t")
	b.Words("tbl", []int32{1, 2, 3})
	b.Halves("h", []int16{-1, 5})
	b.Space("buf", 100, 8)
	b.LA(isa.A0, "tbl")
	b.LA(isa.A1, "buf")
	b.Ret()
	p, err := b.Build(Layout{})
	if err != nil {
		t.Fatal(err)
	}
	tbl := p.MustSym("tbl")
	if tbl != hw.DataVMABase {
		t.Errorf("tbl at %#x, want %#x", tbl, hw.DataVMABase)
	}
	h := p.MustSym("h")
	if h != tbl+12 {
		t.Errorf("h at %#x, want %#x", h, tbl+12)
	}
	buf := p.MustSym("buf")
	if buf%8 != 0 || buf < h+4 {
		t.Errorf("buf at %#x not aligned after h", buf)
	}
	heap := p.MustSym("__heap")
	if heap < buf+100 || heap%16 != 0 {
		t.Errorf("__heap = %#x, want aligned beyond buf+100=%#x", heap, buf+100)
	}
	if got := p.MustSym("__data_len"); got != 16 {
		t.Errorf("__data_len = %d, want 16", got)
	}
	// LA pairs must materialize the symbol address.
	if p.Text[0].Op != isa.MOVHI || uint32(p.Text[0].Imm) != tbl>>16 {
		t.Errorf("LA hi wrong: %v", p.Text[0])
	}
	if p.Text[1].Op != isa.ORIL || uint32(p.Text[1].Imm) != tbl&0xffff {
		t.Errorf("LA lo wrong: %v", p.Text[1])
	}
}

func TestBuilderDuplicateSymbol(t *testing.T) {
	b := NewBuilder("t")
	b.Label("x")
	b.Ret()
	b.Words("x", []int32{1})
	if _, err := b.Build(Layout{}); err == nil {
		t.Fatal("duplicate symbol must fail the build")
	}
}

func TestBuilderUndefinedSymbol(t *testing.T) {
	b := NewBuilder("t")
	b.J("nowhere")
	if _, err := b.Build(Layout{}); err == nil {
		t.Fatal("undefined symbol must fail the build")
	}
}

func TestLIShortAndLong(t *testing.T) {
	b := NewBuilder("t")
	b.LI(isa.A0, 100)        // 1 inst
	b.LI(isa.A1, 0x12340000) // movhi only
	b.LI(isa.A2, 0x12345678) // movhi+oril
	b.Ret()
	p, err := b.Build(Layout{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.Text) != 5 {
		t.Fatalf("text length = %d, want 5", len(p.Text))
	}
	if p.Text[0].Op != isa.ADDI || p.Text[1].Op != isa.MOVHI || p.Text[2].Op != isa.MOVHI || p.Text[3].Op != isa.ORIL {
		t.Errorf("unexpected LI lowering: %v", p.Text)
	}
}

func TestImageRoundtrip(t *testing.T) {
	b := NewBuilder("round")
	b.Words("tbl", []int32{0x01020304, -5})
	b.LA(isa.A0, "tbl")
	b.LW(isa.A1, isa.A0, 0)
	b.Label("spin")
	b.J("spin")
	p, err := b.Build(Layout{})
	if err != nil {
		t.Fatal(err)
	}
	img, err := p.Image()
	if err != nil {
		t.Fatal(err)
	}
	if p.Size() != len(img) {
		t.Errorf("Size() = %d, len(Image) = %d", p.Size(), len(img))
	}
	q, err := ParseImage(img)
	if err != nil {
		t.Fatal(err)
	}
	if q.Entry != p.Entry || q.TextBase != p.TextBase || q.DataLMA != p.DataLMA || q.DataVMA != p.DataVMA {
		t.Errorf("header mismatch: %+v vs %+v", q, p)
	}
	if len(q.Text) != len(p.Text) {
		t.Fatalf("text length mismatch")
	}
	for i := range p.Text {
		if q.Text[i] != p.Text[i] {
			t.Errorf("inst %d: %v != %v", i, q.Text[i], p.Text[i])
		}
	}
	if string(q.Data) != string(p.Data) {
		t.Errorf("data mismatch")
	}
	// Corruptions.
	if _, err := ParseImage(img[:10]); err == nil {
		t.Error("truncated image must fail")
	}
	bad := append([]byte(nil), img...)
	bad[0] = 'X'
	if _, err := ParseImage(bad); err == nil {
		t.Error("bad magic must fail")
	}
}

func TestValidateFeatureLeak(t *testing.T) {
	b := NewBuilder("t")
	b.DOTP4B(isa.A0, isa.A1, isa.A2)
	b.Ret()
	p, err := b.Build(Layout{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(isa.PULPFull); err != nil {
		t.Errorf("OR10N must accept SIMD: %v", err)
	}
	if err := p.Validate(isa.CortexM4); err == nil {
		t.Error("Cortex-M must reject SIMD")
	}
	if err := p.Validate(isa.PULPPlain); err == nil {
		t.Error("plain RISC must reject SIMD")
	}
}

func TestAssembleBasic(t *testing.T) {
	src := `
; a tiny program
start:
    li   a0, 0x10000000
    addi a1, r0, 3
loop:
    lw   a2, 0(a0)
    add  a3, a3, a2
    addi a0, a0, 4
    addi a1, a1, -1
    sfeqi a1, 0
    bnf loop
    sw   a3, 0(a0)
    trap 0
.word tbl 1 2 3
.space buf 64
`
	p, err := Assemble("basic", src, Layout{})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := p.Sym("loop"); err != nil {
		t.Error(err)
	}
	if _, err := p.Sym("tbl"); err != nil {
		t.Error(err)
	}
	// BNF must point back to loop.
	var found bool
	for i, in := range p.Text {
		if in.Op == isa.BNF {
			tgt := p.TextBase + uint32(i)*4 + 4 + uint32(in.Imm)*4
			if tgt != p.MustSym("loop") {
				t.Errorf("bnf target %#x, want %#x", tgt, p.MustSym("loop"))
			}
			found = true
		}
	}
	if !found {
		t.Fatal("no BNF found")
	}
}

func TestAssembleAllFormats(t *testing.T) {
	src := `
e:
    nop
    mac  a0, a1, a2
    dotp4b a0, a1, a2
    macs a1, a2
    macrdl a3, r0
    sexth a4, a5
    sfltu a1, a2
    sfgtsi a1, 7
    movhi a0, 0x1c00
    oril  a0, 0x100
    lbs  a1, -1(a0)
    sbp  a1, 1(a0)
    lp.setup 1, a2, lend
    addi a3, a3, 1
lend:
    mfspr t0, 0
    jalr lr, t0
    jal e
    wfe
    ret
`
	p, err := Assemble("fmts", src, Layout{})
	if err != nil {
		t.Fatal(err)
	}
	if err := p.Validate(isa.PULPFull); err == nil {
		t.Log("note: program mixes M-profile and PULP ops by design")
	}
	// Round-trip through the disassembler: every mnemonic must appear.
	dis := p.Disassemble()
	for _, mn := range []string{"mac", "dotp4b", "macs", "sfltu", "lp.setup", "wfe", "jalr"} {
		if !strings.Contains(dis, mn) {
			t.Errorf("disassembly lacks %q:\n%s", mn, dis)
		}
	}
}

func TestAssembleErrors(t *testing.T) {
	bad := []string{
		"frobnicate r1, r2",
		"add r1, r2",
		"addi r1, r2, bogus",
		"lw r1, r2",
		"add r99, r1, r2",
		".word",
		".space buf -1",
		"lp.setup 3, r5, end\nend:",
	}
	for _, src := range bad {
		if _, err := Assemble("bad", src, Layout{}); err == nil {
			t.Errorf("Assemble(%q) should fail", src)
		}
	}
}

func TestAssemblerBuilderEquivalence(t *testing.T) {
	// The same program written both ways must produce identical text.
	src := `
start:
    li  t0, 16
    lp.setup 0, t0, end
    lwp a1, 4(a0)
end:
    ret
`
	p1, err := Assemble("eq", src, Layout{})
	if err != nil {
		t.Fatal(err)
	}
	b := NewBuilder("eq")
	b.Label("start")
	b.LI(isa.T0, 16)
	b.LPSetup(0, isa.T0, "end")
	b.Load(isa.LWP, isa.A1, isa.A0, 4)
	b.Label("end")
	b.Ret()
	p2, err := b.Build(Layout{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p1.Text) != len(p2.Text) {
		t.Fatalf("lengths differ: %d vs %d", len(p1.Text), len(p2.Text))
	}
	for i := range p1.Text {
		if p1.Text[i] != p2.Text[i] {
			t.Errorf("inst %d: %v vs %v", i, p1.Text[i], p2.Text[i])
		}
	}
}

// TestAsmSourceRoundtrip: Assemble(p.AsmSource()) must reproduce the text
// and data image of builder-produced programs.
func TestAsmSourceRoundtrip(t *testing.T) {
	b := NewBuilder("round2")
	b.Words("tbl", []int32{5, -6, 7})
	b.Space("scratch", 24, 8)
	b.Label("_start")
	b.LA(isa.A0, "tbl")
	b.LI(isa.T0, 3)
	b.Label("loop")
	b.LPSetup(0, isa.T0, "lend")
	b.Load(isa.LWP, isa.A1, isa.A0, 4)
	b.Label("lend")
	b.SFI(isa.SFEQI, isa.A1, 7)
	b.BNF("loop")
	b.JAL("fn")
	b.TRAP(0)
	b.Label("fn")
	b.MACS(isa.A1, isa.A2)
	b.MACRDL(isa.A3)
	b.Store(isa.SHP, isa.A0, isa.A3, 2)
	b.Ret()
	p1, err := b.Build(Layout{})
	if err != nil {
		t.Fatal(err)
	}
	src := p1.AsmSource()
	p2, err := Assemble("round2", src, Layout{})
	if err != nil {
		t.Fatalf("reassembling generated source: %v\nsource:\n%s", err, src)
	}
	if len(p1.Text) != len(p2.Text) {
		t.Fatalf("text length %d vs %d\nsource:\n%s", len(p1.Text), len(p2.Text), src)
	}
	for i := range p1.Text {
		if p1.Text[i] != p2.Text[i] {
			t.Errorf("inst %d: %v vs %v", i, p1.Text[i], p2.Text[i])
		}
	}
	if !bytes.Equal(p1.Data, p2.Data) {
		t.Errorf("data image differs:\n%v\n%v", p1.Data, p2.Data)
	}
	if p1.MustSym("tbl") != p2.MustSym("tbl") || p1.MustSym("scratch") != p2.MustSym("scratch") {
		t.Error("data symbol addresses differ")
	}
	if p1.MustSym("__heap") != p2.MustSym("__heap") {
		t.Error("heap differs")
	}
}
