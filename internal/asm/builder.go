// Package asm provides the code-generation layer of the reproduction: a
// programmatic instruction builder with labels and relocations (used by the
// kernel generators in internal/kernels and by the device runtime emitter),
// a binary program image format (the byte stream that is offloaded over the
// SPI link), and a small text assembler/disassembler for tooling and tests.
package asm

import (
	"fmt"

	"hetsim/internal/hw"
	"hetsim/internal/isa"
)

type relKind uint8

const (
	relNone   relKind = iota
	relBranch         // imm24 = sym - (pc+1), word offset
	relLP             // imm14 = sym - (pc+1), hardware-loop body length
	relHi             // imm16 = sym >> 16
	relLo             // imm16 = sym & 0xffff
)

type pending struct {
	inst isa.Inst
	kind relKind
	sym  string
}

type dataSym struct {
	name  string
	align uint32
	init  []byte // nil for bss
	size  uint32
}

// Builder assembles a program in two passes: Emit* calls record
// instructions and relocations; Build resolves symbols and produces an
// executable Program.
type Builder struct {
	name  string
	insts []pending
	// label -> instruction index
	labels map[string]int
	data   []dataSym
	seen   map[string]bool
	uniq   int
	err    error
}

// NewBuilder returns an empty Builder for a program with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{name: name, labels: make(map[string]int), seen: make(map[string]bool)}
}

// Err returns the first error recorded during emission, if any. Emission
// errors (duplicate labels, bad operands) are sticky and also returned by
// Build, so call sites can chain emissions without per-call checks.
func (b *Builder) Err() error { return b.err }

func (b *Builder) fail(format string, args ...interface{}) {
	if b.err == nil {
		b.err = fmt.Errorf("asm[%s]: %s", b.name, fmt.Sprintf(format, args...))
	}
}

// PC returns the index of the next instruction to be emitted.
func (b *Builder) PC() int { return len(b.insts) }

// Label defines a code label at the current position.
func (b *Builder) Label(name string) {
	if b.seen[name] {
		b.fail("duplicate symbol %q", name)
		return
	}
	b.seen[name] = true
	b.labels[name] = len(b.insts)
}

// Uniq returns a builder-unique label name for structured-control helpers
// (loops, clamps, parallel regions).
func (b *Builder) Uniq(prefix string) string {
	b.uniq++
	return fmt.Sprintf(".%s_%d", prefix, b.uniq)
}

func (b *Builder) emit(in isa.Inst) {
	b.insts = append(b.insts, pending{inst: in})
}

func (b *Builder) emitRel(in isa.Inst, kind relKind, sym string) {
	b.insts = append(b.insts, pending{inst: in, kind: kind, sym: sym})
}

// --- Data section -----------------------------------------------------

// Data places initialized bytes in the data section under a symbol.
func (b *Builder) Data(name string, content []byte, align uint32) {
	if b.seen[name] {
		b.fail("duplicate symbol %q", name)
		return
	}
	if align == 0 {
		align = 4
	}
	b.seen[name] = true
	cp := make([]byte, len(content))
	copy(cp, content)
	b.data = append(b.data, dataSym{name: name, align: align, init: cp, size: uint32(len(cp))})
}

// Words places initialized 32-bit little-endian words in the data section.
func (b *Builder) Words(name string, words []int32) {
	buf := make([]byte, 4*len(words))
	for i, w := range words {
		u := uint32(w)
		buf[4*i], buf[4*i+1], buf[4*i+2], buf[4*i+3] = byte(u), byte(u>>8), byte(u>>16), byte(u>>24)
	}
	b.Data(name, buf, 4)
}

// Halves places initialized 16-bit little-endian values in the data section.
func (b *Builder) Halves(name string, vals []int16) {
	buf := make([]byte, 2*len(vals))
	for i, v := range vals {
		u := uint16(v)
		buf[2*i], buf[2*i+1] = byte(u), byte(u>>8)
	}
	b.Data(name, buf, 4)
}

// Bytes8 places initialized signed bytes in the data section.
func (b *Builder) Bytes8(name string, vals []int8) {
	buf := make([]byte, len(vals))
	for i, v := range vals {
		buf[i] = byte(v)
	}
	b.Data(name, buf, 4)
}

// Space reserves n zero/scratch bytes (BSS). The bytes are not part of the
// serialized image; the runtime provides them in TCDM but does not zero
// them, so generated code must not rely on initial contents.
func (b *Builder) Space(name string, n uint32, align uint32) {
	if b.seen[name] {
		b.fail("duplicate symbol %q", name)
		return
	}
	if align == 0 {
		align = 4
	}
	b.seen[name] = true
	b.data = append(b.data, dataSym{name: name, align: align, size: n})
}

// --- Raw emission ------------------------------------------------------

// I emits a raw instruction without relocation.
func (b *Builder) I(in isa.Inst) { b.emit(in) }

// --- ALU wrappers -------------------------------------------------------

func (b *Builder) r3(op isa.Op, rd, ra, rb isa.Reg) { b.emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb}) }
func (b *Builder) ri(op isa.Op, rd, ra isa.Reg, imm int32) {
	b.emit(isa.Inst{Op: op, Rd: rd, Ra: ra, Imm: imm})
}

// ADD emits rd = ra + rb.
func (b *Builder) ADD(rd, ra, rb isa.Reg) { b.r3(isa.ADD, rd, ra, rb) }

// SUB emits rd = ra - rb.
func (b *Builder) SUB(rd, ra, rb isa.Reg) { b.r3(isa.SUB, rd, ra, rb) }

// AND emits rd = ra & rb.
func (b *Builder) AND(rd, ra, rb isa.Reg) { b.r3(isa.AND, rd, ra, rb) }

// OR emits rd = ra | rb.
func (b *Builder) OR(rd, ra, rb isa.Reg) { b.r3(isa.OR, rd, ra, rb) }

// XOR emits rd = ra ^ rb.
func (b *Builder) XOR(rd, ra, rb isa.Reg) { b.r3(isa.XOR, rd, ra, rb) }

// SLL emits rd = ra << rb.
func (b *Builder) SLL(rd, ra, rb isa.Reg) { b.r3(isa.SLL, rd, ra, rb) }

// SRL emits rd = ra >> rb (logical).
func (b *Builder) SRL(rd, ra, rb isa.Reg) { b.r3(isa.SRL, rd, ra, rb) }

// SRA emits rd = ra >> rb (arithmetic).
func (b *Builder) SRA(rd, ra, rb isa.Reg) { b.r3(isa.SRA, rd, ra, rb) }

// MUL emits rd = ra * rb (low 32 bits).
func (b *Builder) MUL(rd, ra, rb isa.Reg) { b.r3(isa.MUL, rd, ra, rb) }

// DIV emits rd = ra / rb (signed).
func (b *Builder) DIV(rd, ra, rb isa.Reg) { b.r3(isa.DIV, rd, ra, rb) }

// DIVU emits rd = ra / rb (unsigned).
func (b *Builder) DIVU(rd, ra, rb isa.Reg) { b.r3(isa.DIVU, rd, ra, rb) }

// MIN emits rd = min(ra, rb) (signed; OR10N extension).
func (b *Builder) MIN(rd, ra, rb isa.Reg) { b.r3(isa.MIN, rd, ra, rb) }

// MAX emits rd = max(ra, rb) (signed; OR10N extension).
func (b *Builder) MAX(rd, ra, rb isa.Reg) { b.r3(isa.MAX, rd, ra, rb) }

// MAC emits rd += ra * rb (OR10N register-register MAC, or ARM MLA).
func (b *Builder) MAC(rd, ra, rb isa.Reg) { b.r3(isa.MAC, rd, ra, rb) }

// MSU emits rd -= ra * rb.
func (b *Builder) MSU(rd, ra, rb isa.Reg) { b.r3(isa.MSU, rd, ra, rb) }

// SEXTB emits rd = sign-extend byte of ra.
func (b *Builder) SEXTB(rd, ra isa.Reg) { b.r3(isa.SEXTB, rd, ra, 0) }

// SEXTH emits rd = sign-extend half of ra.
func (b *Builder) SEXTH(rd, ra isa.Reg) { b.r3(isa.SEXTH, rd, ra, 0) }

// MACS emits acc += sext64(ra)*sext64(rb) (M-profile SMLAL).
func (b *Builder) MACS(ra, rb isa.Reg) { b.r3(isa.MACS, 0, ra, rb) }

// MACU emits acc += zext64(ra)*zext64(rb) (M-profile UMLAL).
func (b *Builder) MACU(ra, rb isa.Reg) { b.r3(isa.MACU, 0, ra, rb) }

// MACCLR clears the 64-bit accumulator.
func (b *Builder) MACCLR() { b.emit(isa.Inst{Op: isa.MACCLR}) }

// MACRDL emits rd = acc[31:0].
func (b *Builder) MACRDL(rd isa.Reg) { b.r3(isa.MACRDL, rd, 0, 0) }

// MACRDH emits rd = acc[63:32].
func (b *Builder) MACRDH(rd isa.Reg) { b.r3(isa.MACRDH, rd, 0, 0) }

// DOTP4B emits rd += dot product of the four signed bytes of ra and rb.
func (b *Builder) DOTP4B(rd, ra, rb isa.Reg) { b.r3(isa.DOTP4B, rd, ra, rb) }

// DOTP2H emits rd += dot product of the two signed halves of ra and rb.
func (b *Builder) DOTP2H(rd, ra, rb isa.Reg) { b.r3(isa.DOTP2H, rd, ra, rb) }

// ADD4B emits per-byte addition.
func (b *Builder) ADD4B(rd, ra, rb isa.Reg) { b.r3(isa.ADD4B, rd, ra, rb) }

// SUB4B emits per-byte subtraction.
func (b *Builder) SUB4B(rd, ra, rb isa.Reg) { b.r3(isa.SUB4B, rd, ra, rb) }

// ADD2H emits per-half addition.
func (b *Builder) ADD2H(rd, ra, rb isa.Reg) { b.r3(isa.ADD2H, rd, ra, rb) }

// SUB2H emits per-half subtraction.
func (b *Builder) SUB2H(rd, ra, rb isa.Reg) { b.r3(isa.SUB2H, rd, ra, rb) }

// SRA2H emits per-half arithmetic shift right by rb[3:0].
func (b *Builder) SRA2H(rd, ra, rb isa.Reg) { b.r3(isa.SRA2H, rd, ra, rb) }

// ADDI emits rd = ra + imm.
func (b *Builder) ADDI(rd, ra isa.Reg, imm int32) { b.ri(isa.ADDI, rd, ra, imm) }

// ANDI emits rd = ra & imm (zero-extended).
func (b *Builder) ANDI(rd, ra isa.Reg, imm int32) { b.ri(isa.ANDI, rd, ra, imm) }

// ORI emits rd = ra | imm (zero-extended).
func (b *Builder) ORI(rd, ra isa.Reg, imm int32) { b.ri(isa.ORI, rd, ra, imm) }

// XORI emits rd = ra ^ imm (zero-extended).
func (b *Builder) XORI(rd, ra isa.Reg, imm int32) { b.ri(isa.XORI, rd, ra, imm) }

// SLLI emits rd = ra << imm.
func (b *Builder) SLLI(rd, ra isa.Reg, imm int32) { b.ri(isa.SLLI, rd, ra, imm) }

// SRLI emits rd = ra >> imm (logical).
func (b *Builder) SRLI(rd, ra isa.Reg, imm int32) { b.ri(isa.SRLI, rd, ra, imm) }

// SRAI emits rd = ra >> imm (arithmetic).
func (b *Builder) SRAI(rd, ra isa.Reg, imm int32) { b.ri(isa.SRAI, rd, ra, imm) }

// MOVHI emits rd = imm16 << 16.
func (b *Builder) MOVHI(rd isa.Reg, imm16 int32) { b.emit(isa.Inst{Op: isa.MOVHI, Rd: rd, Imm: imm16}) }

// MOV emits rd = ra.
func (b *Builder) MOV(rd, ra isa.Reg) { b.r3(isa.ADD, rd, ra, isa.R0) }

// --- Compares ------------------------------------------------------------

// SF emits a register-register flag compare.
func (b *Builder) SF(op isa.Op, ra, rb isa.Reg) { b.emit(isa.Inst{Op: op, Ra: ra, Rb: rb}) }

// SFI emits a register-immediate flag compare.
func (b *Builder) SFI(op isa.Op, ra isa.Reg, imm int32) {
	b.emit(isa.Inst{Op: op, Ra: ra, Imm: imm})
}

// --- Memory ----------------------------------------------------------------

// Load emits a load of the given opcode: rd = mem[ra+imm] (or post-increment
// rd = mem[ra]; ra += imm for the P variants).
func (b *Builder) Load(op isa.Op, rd, ra isa.Reg, imm int32) {
	if !op.IsLoad() {
		b.fail("%v is not a load", op)
		return
	}
	b.ri(op, rd, ra, imm)
}

// Store emits a store: mem[base+imm] = src (or post-increment for the P
// variants: mem[base] = src; base += imm).
func (b *Builder) Store(op isa.Op, base, src isa.Reg, imm int32) {
	if !op.IsStore() {
		b.fail("%v is not a store", op)
		return
	}
	b.emit(isa.Inst{Op: op, Ra: base, Rb: src, Imm: imm})
}

// LW emits rd = mem32[ra+imm].
func (b *Builder) LW(rd, ra isa.Reg, imm int32) { b.Load(isa.LW, rd, ra, imm) }

// SW emits mem32[base+imm] = src.
func (b *Builder) SW(base, src isa.Reg, imm int32) { b.Store(isa.SW, base, src, imm) }

// --- Control flow ------------------------------------------------------------

// J emits an unconditional jump to a label.
func (b *Builder) J(label string) { b.emitRel(isa.Inst{Op: isa.J}, relBranch, label) }

// JAL emits a call to a label (link in LR).
func (b *Builder) JAL(label string) { b.emitRel(isa.Inst{Op: isa.JAL}, relBranch, label) }

// JR emits an indirect jump to ra.
func (b *Builder) JR(ra isa.Reg) { b.emit(isa.Inst{Op: isa.JR, Ra: ra}) }

// JALR emits an indirect call to ra, linking in rd.
func (b *Builder) JALR(rd, ra isa.Reg) { b.emit(isa.Inst{Op: isa.JALR, Rd: rd, Ra: ra}) }

// Ret emits a return (jr lr).
func (b *Builder) Ret() { b.JR(isa.LR) }

// BF emits a branch to label if the flag is set.
func (b *Builder) BF(label string) { b.emitRel(isa.Inst{Op: isa.BF}, relBranch, label) }

// BNF emits a branch to label if the flag is clear.
func (b *Builder) BNF(label string) { b.emitRel(isa.Inst{Op: isa.BNF}, relBranch, label) }

// TRAP emits a halt with the given code (used by tests and assertions).
func (b *Builder) TRAP(code int32) { b.emit(isa.Inst{Op: isa.TRAP, Imm: code}) }

// WFE emits a wait-for-event.
func (b *Builder) WFE() { b.emit(isa.Inst{Op: isa.WFE}) }

// NOP emits a no-op.
func (b *Builder) NOP() { b.emit(isa.Inst{Op: isa.NOP}) }

// MFSPR emits rd = SPR[spr].
func (b *Builder) MFSPR(rd isa.Reg, spr int32) { b.ri(isa.MFSPR, rd, 0, spr) }

// LPSetup emits a hardware loop: loop index idx (0 or 1), iteration count in
// countReg, body extending to (but not including) endLabel. The body starts
// at the next instruction.
func (b *Builder) LPSetup(idx int, countReg isa.Reg, endLabel string) {
	if idx != 0 && idx != 1 {
		b.fail("hardware loop index %d out of range", idx)
		return
	}
	b.emitRel(isa.Inst{Op: isa.LPSETUP, Rd: isa.Reg(idx), Ra: countReg}, relLP, endLabel)
}

// --- Pseudo-instructions ------------------------------------------------------

// LI loads a 32-bit constant, using the shortest sequence (1 or 2 words).
func (b *Builder) LI(rd isa.Reg, imm int32) {
	if imm >= isa.Imm14Min && imm <= isa.Imm14Max {
		b.ADDI(rd, isa.R0, imm)
		return
	}
	b.MOVHI(rd, int32(uint32(imm)>>16))
	if lo := int32(uint32(imm) & 0xffff); lo != 0 {
		b.emit(isa.Inst{Op: isa.ORIL, Rd: rd, Imm: lo})
	}
}

// LA loads the address of a symbol (code label, data symbol, or builtin
// layout symbol). Always two instructions so code size is target-stable.
func (b *Builder) LA(rd isa.Reg, sym string) {
	b.emitRel(isa.Inst{Op: isa.MOVHI, Rd: rd}, relHi, sym)
	b.emitRel(isa.Inst{Op: isa.ORIL, Rd: rd}, relLo, sym)
}

// --- Build ---------------------------------------------------------------------

// Layout controls where Build places the program.
type Layout struct {
	TextBase uint32 // default hw.TextBase
	DataVMA  uint32 // runtime address of the data image; default hw.DataVMABase
	TCDMSize uint32 // for __stack_top; default hw.DefaultTCDMSize
}

func (l *Layout) defaults() {
	if l.TextBase == 0 {
		l.TextBase = hw.TextBase
	}
	if l.DataVMA == 0 {
		l.DataVMA = hw.DataVMABase
	}
	if l.TCDMSize == 0 {
		l.TCDMSize = hw.DefaultTCDMSize
	}
}

func align(v, a uint32) uint32 {
	if a == 0 {
		return v
	}
	return (v + a - 1) &^ (a - 1)
}

// Build resolves labels and relocations and returns the linked program.
// Builtin symbols defined for generated code:
//
//	__data_lma   L2 load address of the initialized data image
//	__data_vma   TCDM runtime address of the data image
//	__data_len   initialized data length in bytes
//	__heap       first free TCDM byte after data+bss (I/O buffers go here)
//	__stack_top  top of TCDM (core 0 stack base)
func (b *Builder) Build(l Layout) (*Program, error) {
	if b.err != nil {
		return nil, b.err
	}
	l.defaults()

	// Lay out data symbols: initialized first (so the image is contiguous),
	// then bss.
	syms := make(map[string]uint32, len(b.labels)+len(b.data)+8)
	var image []byte
	off := uint32(0)
	for _, d := range b.data {
		if d.init == nil {
			continue
		}
		off = align(off, d.align)
		for uint32(len(image)) < off {
			image = append(image, 0)
		}
		syms[d.name] = l.DataVMA + off
		image = append(image, d.init...)
		off += d.size
	}
	dataLen := uint32(len(image))
	bssOff := align(dataLen, 8)
	for _, d := range b.data {
		if d.init != nil {
			continue
		}
		bssOff = align(bssOff, d.align)
		syms[d.name] = l.DataVMA + bssOff
		bssOff += d.size
	}
	bssEnd := align(bssOff, 16)

	textLen := uint32(len(b.insts)) * 4
	dataLMA := align(l.TextBase+textLen, 16)

	// Code labels.
	for name, idx := range b.labels {
		if _, dup := syms[name]; dup {
			return nil, fmt.Errorf("asm[%s]: symbol %q defined as both code and data", b.name, name)
		}
		syms[name] = l.TextBase + uint32(idx)*4
	}
	// Builtin layout symbols.
	syms["__data_lma"] = dataLMA
	syms["__data_vma"] = l.DataVMA
	syms["__data_len"] = dataLen
	syms["__heap"] = l.DataVMA + bssEnd
	syms["__stack_top"] = hw.TCDMBase + l.TCDMSize

	// Resolve relocations.
	text := make([]isa.Inst, len(b.insts))
	for i, p := range b.insts {
		in := p.inst
		if p.kind != relNone {
			v, ok := syms[p.sym]
			if !ok {
				return nil, fmt.Errorf("asm[%s]: undefined symbol %q at instruction %d", b.name, p.sym, i)
			}
			switch p.kind {
			case relBranch, relLP:
				here := l.TextBase + uint32(i)*4
				delta := (int64(v) - int64(here) - 4) / 4
				if p.kind == relLP && delta < 1 {
					return nil, fmt.Errorf("asm[%s]: hardware loop at %d has empty body", b.name, i)
				}
				in.Imm = int32(delta)
			case relHi:
				in.Imm = int32(v >> 16)
			case relLo:
				in.Imm = int32(v & 0xffff)
			}
		}
		if _, err := isa.Encode(in); err != nil {
			return nil, fmt.Errorf("asm[%s]: instruction %d (%v): %w", b.name, i, in, err)
		}
		text[i] = in
	}

	return &Program{
		Name:     b.name,
		Entry:    l.TextBase,
		TextBase: l.TextBase,
		Text:     text,
		DataLMA:  dataLMA,
		DataVMA:  l.DataVMA,
		Data:     image,
		BSSLen:   bssEnd - dataLen,
		Symbols:  syms,
	}, nil
}
