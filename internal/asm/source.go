package asm

import (
	"fmt"
	"sort"
	"strings"

	"hetsim/internal/isa"
)

// AsmSource renders the program as assembler-compatible source text:
// Assemble(p.AsmSource()) reproduces the same text section and data image
// (the round-trip property verified in the tests). Branch targets without
// a symbol get synthetic `L_<addr>` labels; data symbols are re-emitted as
// `.byte`/`.space` directives sized from the symbol layout.
//
// This is what `hetasm` prints when asked for reusable source, and it
// doubles as a cross-check that the disassembler, the assembler and the
// builder agree on the instruction syntax.
func (p *Program) AsmSource() string {
	textEnd := p.TextBase + uint32(4*len(p.Text))

	// Collect label names per text address: named symbols first.
	labels := make(map[uint32]string)
	var names []string
	for n := range p.Symbols {
		names = append(names, n)
	}
	sort.Strings(names) // deterministic choice among aliases
	for _, n := range names {
		a := p.Symbols[n]
		if strings.HasPrefix(n, "__data") || n == "__heap" || n == "__stack_top" {
			continue
		}
		if a >= p.TextBase && a < textEnd {
			if _, dup := labels[a]; !dup {
				labels[a] = n
			}
		}
	}
	// Synthetic labels for unnamed branch/loop targets.
	for i, in := range p.Text {
		addr := p.TextBase + uint32(i)*4
		var tgt uint32
		switch {
		case in.Op == isa.BF || in.Op == isa.BNF || in.Op == isa.J || in.Op == isa.JAL:
			tgt = uint32(int64(addr) + 4 + int64(in.Imm)*4)
		case in.Op == isa.LPSETUP:
			tgt = addr + 4 + uint32(in.Imm)*4
		default:
			continue
		}
		if _, ok := labels[tgt]; !ok {
			labels[tgt] = fmt.Sprintf("L_%08x", tgt)
		}
	}

	var sb strings.Builder
	for i, in := range p.Text {
		addr := p.TextBase + uint32(i)*4
		if l, ok := labels[addr]; ok {
			fmt.Fprintf(&sb, "%s:\n", l)
		}
		switch {
		case in.Op == isa.BF || in.Op == isa.BNF || in.Op == isa.J || in.Op == isa.JAL:
			tgt := uint32(int64(addr) + 4 + int64(in.Imm)*4)
			fmt.Fprintf(&sb, "    %s %s\n", in.Op, labels[tgt])
		case in.Op == isa.LPSETUP:
			tgt := addr + 4 + uint32(in.Imm)*4
			fmt.Fprintf(&sb, "    lp.setup %d, r%d, %s\n", in.Rd, in.Ra, labels[tgt])
		default:
			fmt.Fprintf(&sb, "    %v\n", in)
		}
	}

	// Data section: named symbols in [DataVMA, DataVMA+len(Data)) become
	// .byte runs; symbols beyond the image (BSS) become .space, sized by
	// the gap to the next symbol (or the heap).
	type dsym struct {
		name string
		addr uint32
	}
	var dsyms []dsym
	heap := p.Symbols["__heap"]
	for _, n := range names {
		a := p.Symbols[n]
		if strings.HasPrefix(n, "__") || (a >= p.TextBase && a < textEnd) {
			continue
		}
		if a >= p.DataVMA && a < heap {
			dsyms = append(dsyms, dsym{n, a})
		}
	}
	sort.Slice(dsyms, func(i, j int) bool { return dsyms[i].addr < dsyms[j].addr })
	dataEnd := p.DataVMA + uint32(len(p.Data))
	for i, d := range dsyms {
		end := heap
		if i+1 < len(dsyms) {
			end = dsyms[i+1].addr
		}
		if d.addr < dataEnd { // initialized
			if end > dataEnd {
				end = dataEnd
			}
			fmt.Fprintf(&sb, ".byte %s", d.name)
			for a := d.addr; a < end; a++ {
				fmt.Fprintf(&sb, " %d", int8(p.Data[a-p.DataVMA]))
			}
			sb.WriteByte('\n')
		} else { // bss
			fmt.Fprintf(&sb, ".space %s %d\n", d.name, end-d.addr)
		}
	}
	return sb.String()
}
