package asm

import (
	"encoding/binary"
	"fmt"
	"sort"
	"strings"

	"hetsim/internal/isa"
)

// Program is a linked, loadable program: the artifact a host offloads to
// the accelerator. Text is kept pre-decoded for the simulator; Image
// serializes the binary exactly as it crosses the SPI link.
type Program struct {
	Name     string
	Entry    uint32
	TextBase uint32
	Text     []isa.Inst
	DataLMA  uint32 // load address of the data image (in L2, after text)
	DataVMA  uint32 // runtime address (in TCDM, copied by crt0)
	Data     []byte
	BSSLen   uint32
	Symbols  map[string]uint32
}

// Sym returns the value of a symbol, or an error naming it.
func (p *Program) Sym(name string) (uint32, error) {
	v, ok := p.Symbols[name]
	if !ok {
		return 0, fmt.Errorf("asm: program %q has no symbol %q", p.Name, name)
	}
	return v, nil
}

// MustSym is Sym for symbols the build itself guarantees (builtin layout
// symbols); it panics on absence, which indicates a bug, not bad input.
func (p *Program) MustSym(name string) uint32 {
	v, err := p.Sym(name)
	if err != nil {
		panic(err)
	}
	return v
}

// Size returns the serialized binary size in bytes — the "Binary Size"
// column of Table I and the offload payload of Fig. 5b.
func (p *Program) Size() int { return imageHeaderLen + 4*len(p.Text) + len(p.Data) }

// Validate checks that every instruction is executable by the target. This
// is how tests prove the kernel generators honour feature flags (e.g. no
// SIMD leaks into a Cortex-M build).
func (p *Program) Validate(t isa.Target) error {
	for i, in := range p.Text {
		if !t.Supports(in.Op) {
			return fmt.Errorf("asm: %s+%d: %v not supported by target %s", p.Name, i, in, t.Name)
		}
	}
	return nil
}

// Image header layout (little-endian):
//
//	0  magic "PBIN"
//	4  version (u16) | flags (u16, reserved)
//	8  entry
//	12 text base
//	16 text length (bytes)
//	20 data LMA
//	24 data VMA
//	28 data length (bytes)
//	32 bss length (bytes)
const (
	imageMagic     = "PBIN"
	imageVersion   = 1
	imageHeaderLen = 36
)

// Image serializes the program to the byte stream offloaded over SPI.
func (p *Program) Image() ([]byte, error) {
	text, err := isa.EncodeProgram(p.Text)
	if err != nil {
		return nil, fmt.Errorf("asm: encoding %q: %w", p.Name, err)
	}
	out := make([]byte, imageHeaderLen, imageHeaderLen+len(text)+len(p.Data))
	copy(out, imageMagic)
	binary.LittleEndian.PutUint16(out[4:], imageVersion)
	binary.LittleEndian.PutUint32(out[8:], p.Entry)
	binary.LittleEndian.PutUint32(out[12:], p.TextBase)
	binary.LittleEndian.PutUint32(out[16:], uint32(len(text)))
	binary.LittleEndian.PutUint32(out[20:], p.DataLMA)
	binary.LittleEndian.PutUint32(out[24:], p.DataVMA)
	binary.LittleEndian.PutUint32(out[28:], uint32(len(p.Data)))
	binary.LittleEndian.PutUint32(out[32:], p.BSSLen)
	out = append(out, text...)
	out = append(out, p.Data...)
	return out, nil
}

// ParseImage deserializes a binary image produced by Image. Symbols are not
// part of the wire format and are left nil.
func ParseImage(b []byte) (*Program, error) {
	if len(b) < imageHeaderLen || string(b[:4]) != imageMagic {
		return nil, fmt.Errorf("asm: not a PBIN image")
	}
	if v := binary.LittleEndian.Uint16(b[4:]); v != imageVersion {
		return nil, fmt.Errorf("asm: unsupported PBIN version %d", v)
	}
	textLen := binary.LittleEndian.Uint32(b[16:])
	dataLen := binary.LittleEndian.Uint32(b[28:])
	if uint32(len(b)) != imageHeaderLen+textLen+dataLen {
		return nil, fmt.Errorf("asm: truncated PBIN image: have %d bytes, header says %d",
			len(b), imageHeaderLen+textLen+dataLen)
	}
	text, err := isa.DecodeProgram(b[imageHeaderLen : imageHeaderLen+textLen])
	if err != nil {
		return nil, err
	}
	data := make([]byte, dataLen)
	copy(data, b[imageHeaderLen+textLen:])
	return &Program{
		Name:     "image",
		Entry:    binary.LittleEndian.Uint32(b[8:]),
		TextBase: binary.LittleEndian.Uint32(b[12:]),
		Text:     text,
		DataLMA:  binary.LittleEndian.Uint32(b[20:]),
		DataVMA:  binary.LittleEndian.Uint32(b[24:]),
		Data:     data,
		BSSLen:   binary.LittleEndian.Uint32(b[32:]),
	}, nil
}

// Disassemble renders the text section with addresses and symbolized branch
// targets, one instruction per line.
func (p *Program) Disassemble() string {
	// Invert the symbol table for labels that fall inside the text.
	byAddr := make(map[uint32][]string)
	for name, v := range p.Symbols {
		if strings.HasPrefix(name, "__") {
			continue
		}
		byAddr[v] = append(byAddr[v], name)
	}
	for _, names := range byAddr {
		sort.Strings(names)
	}
	var sb strings.Builder
	for i, in := range p.Text {
		addr := p.TextBase + uint32(i)*4
		for _, name := range byAddr[addr] {
			fmt.Fprintf(&sb, "%s:\n", name)
		}
		fmt.Fprintf(&sb, "  %08x:  %v", addr, in)
		if in.Op == isa.BF || in.Op == isa.BNF || in.Op == isa.J || in.Op == isa.JAL {
			tgt := addr + 4 + uint32(in.Imm)*4
			if names := byAddr[tgt]; len(names) > 0 {
				fmt.Fprintf(&sb, "  <%s>", names[0])
			} else {
				fmt.Fprintf(&sb, "  <%08x>", tgt)
			}
		}
		sb.WriteByte('\n')
	}
	return sb.String()
}
