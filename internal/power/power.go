// Package power implements the energy model of Section IV-A of the paper:
//
//	P_d = f_clk * sum_i ( chi_i,state * rho_i,state )
//
// where chi are per-component activity ratios measured by the simulator's
// performance counters and rho are dynamic power densities derived from
// post-layout analysis of the PULP3 chip. We re-derive the densities from
// the paper's published anchors: the cluster burns ~1.48 mW running matmul
// on 4 cores at the 0.6 V operating point (~50 MHz), leakage is a small
// fraction there, and f_max(V) spans roughly 4..450 MHz over 0.5..1.0 V.
// Densities scale as (V/Vref)^2 and leakage as (V/Vref)^3.
//
// The MCU side is a table of commercial parts at datasheet typical run
// currents (the devices of Fig. 3), plus the sleep current used while the
// host waits for the accelerator's end-of-computation event.
package power

import (
	"fmt"
	"math"

	"hetsim/internal/cluster"
	"hetsim/internal/isa"
)

// VRef is the reference voltage of the density calibration.
const VRef = 0.6

// PULP dynamic power densities at VRef, in watts per hertz (i.e. J/cycle).
// Calibrated so that the matmul activity profile at 0.6 V / 50 MHz totals
// ~1.48 mW including leakage.
const (
	RhoCoreRun  = 4.4e-12 // per core, executing or stalled
	RhoCoreIdle = 0.5e-12 // per core, clock-gated in WFE
	RhoICache   = 3.2e-12 // shared I$, scaled by fraction of cores running
	RhoTCDM     = 2.6e-12 // per TCDM access per cycle
	RhoDMA      = 2.0e-12 // DMA engine while busy
	RhoSoC      = 2.6e-12 // always-on SoC logic (interconnect, FLL, QSPI)
)

// LeakRefW is the cluster+SoC leakage at VRef.
const LeakRefW = 0.12e-3

// OpPoint is a PULP voltage/frequency operating point.
type OpPoint struct {
	VDD  float64 // volts
	FMax float64 // Hz
}

// OpPoints are the characterized points, 0.5 V to 1.0 V in 100 mV steps
// (the range of the paper's post-layout analysis).
var OpPoints = []OpPoint{
	{0.5, 4e6}, // near-threshold frequency cliff
	{0.6, 50e6},
	{0.7, 120e6},
	{0.8, 220e6},
	{0.9, 330e6},
	{1.0, 450e6},
}

// FMaxAt interpolates the maximum frequency at a voltage between the
// characterized points (the "simple polynomial interpolation model" of the
// paper; piecewise-linear between adjacent points).
func FMaxAt(v float64) float64 {
	if v <= OpPoints[0].VDD {
		return OpPoints[0].FMax
	}
	last := OpPoints[len(OpPoints)-1]
	if v >= last.VDD {
		return last.FMax
	}
	for i := 1; i < len(OpPoints); i++ {
		if v <= OpPoints[i].VDD {
			a, b := OpPoints[i-1], OpPoints[i]
			t := (v - a.VDD) / (b.VDD - a.VDD)
			return a.FMax + t*(b.FMax-a.FMax)
		}
	}
	return last.FMax
}

// Activity is the set of chi ratios of the power model, extracted from the
// cluster's performance counters over a run.
type Activity struct {
	CoreRun  float64 // summed over cores: fraction of cycles active+stalled
	CoreIdle float64 // summed over cores: fraction of cycles asleep
	TCDM     float64 // TCDM accesses per cycle
	DMA      float64 // fraction of cycles the DMA moved data
}

// ActivityOf derives the chi ratios from collected cluster statistics.
func ActivityOf(s cluster.Stats) Activity {
	if s.Cycles == 0 {
		return Activity{}
	}
	cyc := float64(s.Cycles)
	var a Activity
	for _, c := range s.Cores {
		a.CoreRun += float64(c.Active+c.Stall) / cyc
		a.CoreIdle += float64(c.Sleep) / cyc
	}
	a.TCDM = float64(s.TCDMAccess) / cyc
	a.DMA = float64(s.DMABusy) / cyc
	return a
}

// IdleActivity is the accelerator parked in WFE (all cores clock-gated).
func IdleActivity(cores int) Activity {
	return Activity{CoreIdle: float64(cores)}
}

// scale returns the dynamic density scaling factor at voltage v.
func scale(v float64) float64 { s := v / VRef; return s * s }

// LeakW returns the leakage power at voltage v.
func LeakW(v float64) float64 { s := v / VRef; return LeakRefW * s * s * s }

// DensityWPerHz returns the total effective dynamic density (J/cycle) of
// the cluster for an activity profile at voltage v.
func DensityWPerHz(v float64, a Activity) float64 {
	d := a.CoreRun*RhoCoreRun +
		a.CoreIdle*RhoCoreIdle +
		a.CoreRun/4*RhoICache + // I$ activity tracks running cores
		a.TCDM*RhoTCDM +
		a.DMA*RhoDMA +
		RhoSoC
	return d * scale(v)
}

// PULPPowerW evaluates the paper's power model: dynamic power at frequency
// f plus leakage, for an activity profile at voltage v.
func PULPPowerW(v, f float64, a Activity) float64 {
	return f*DensityWPerHz(v, a) + LeakW(v)
}

// BestOp finds the operating point (voltage and frequency) that maximizes
// the PULP clock frequency within the power budget for the given activity,
// mirroring the envelope exploration of Fig. 5a: at each voltage the
// frequency is capped both by f_max(V) and by the budget; the best
// voltage wins. Returns ok=false if even the lowest point cannot fit.
func BestOp(budgetW float64, a Activity) (v, f float64, ok bool) {
	const steps = 50
	lo, hi := OpPoints[0].VDD, OpPoints[len(OpPoints)-1].VDD
	for i := 0; i <= steps; i++ {
		vv := lo + (hi-lo)*float64(i)/steps
		leak := LeakW(vv)
		if leak >= budgetW {
			continue
		}
		ff := (budgetW - leak) / DensityWPerHz(vv, a)
		if fm := FMaxAt(vv); ff > fm {
			ff = fm
		}
		if ff > f {
			v, f, ok = vv, ff, true
		}
	}
	return v, f, ok
}

// --- Commercial MCUs ---------------------------------------------------------

// MCUModel is a commercial microcontroller from the paper's comparison set
// with its datasheet typical run characteristics.
type MCUModel struct {
	Name     string
	Core     string     // marketing core name
	Target   isa.Target // simulation profile
	FMax     float64    // Hz
	RunWHz   float64    // run power per Hz (W/Hz), typical, at 3.3 V
	SleepW   float64    // deep-sleep power while waiting for the EOC GPIO
	CyclePen float64    // cycle-count penalty vs the profile (MSP430: 16-bit datapath)
}

// The devices of Fig. 3, with run currents from the cited datasheets
// (typical values at 3.3 V; W/Hz = mA/MHz * 3.3 / 1e6 scaled).
var (
	STM32L476 = MCUModel{Name: "STM32-L476", Core: "Cortex-M4", Target: isa.CortexM4,
		FMax: 80e6, RunWHz: 0.33e-9, SleepW: 0.01e-3}
	STM32F407 = MCUModel{Name: "STM32F407", Core: "Cortex-M4", Target: isa.CortexM4,
		FMax: 168e6, RunWHz: 0.71e-9, SleepW: 0.30e-3}
	STM32F446 = MCUModel{Name: "STM32F446", Core: "Cortex-M4", Target: isa.CortexM4,
		FMax: 180e6, RunWHz: 0.66e-9, SleepW: 0.20e-3}
	NXPLPC1800 = MCUModel{Name: "NXP LPC1800", Core: "Cortex-M3", Target: isa.CortexM3,
		FMax: 180e6, RunWHz: 0.83e-9, SleepW: 0.25e-3}
	EFM32GG = MCUModel{Name: "EFM32 Giant Gecko", Core: "Cortex-M3", Target: isa.CortexM3,
		FMax: 48e6, RunWHz: 0.66e-9, SleepW: 0.003e-3}
	MSP430 = MCUModel{Name: "TI MSP430", Core: "MSP430 (16-bit)", Target: isa.CortexM3,
		FMax: 25e6, RunWHz: 0.76e-9, SleepW: 0.002e-3, CyclePen: 1.4}
	AmbiqApollo = MCUModel{Name: "Ambiq Apollo", Core: "Cortex-M4", Target: isa.CortexM4,
		FMax: 24e6, RunWHz: 0.115e-9, SleepW: 0.0005e-3}
)

// AllMCUs is the Fig. 3 comparison set.
var AllMCUs = []MCUModel{STM32L476, STM32F407, STM32F446, NXPLPC1800, EFM32GG, MSP430, AmbiqApollo}

// RunPowerW returns the MCU's active power at frequency f.
func (m MCUModel) RunPowerW(f float64) float64 { return m.RunWHz * f }

// Cycles applies the model's cycle penalty to a simulated cycle count.
func (m MCUModel) Cycles(simCycles uint64) float64 {
	p := m.CyclePen
	if p == 0 {
		p = 1
	}
	return float64(simCycles) * p
}

// MCUByName finds a model by name.
func MCUByName(name string) (MCUModel, error) {
	for _, m := range AllMCUs {
		if m.Name == name {
			return m, nil
		}
	}
	return MCUModel{}, fmt.Errorf("power: unknown MCU %q", name)
}

// --- SPI link -----------------------------------------------------------------

// SPIEnergyPerBit is the pad+driver energy of one transferred bit over the
// board-level link (both ends), dominated by the pad capacitance at 3.3 V.
const SPIEnergyPerBit = 25e-12 // J

// SPIPowerW returns the link power while clocking at fSPI with the given
// lane count.
func SPIPowerW(fSPI float64, lanes int) float64 {
	return fSPI * float64(lanes) * SPIEnergyPerBit
}

// --- Energy bookkeeping ---------------------------------------------------------

// Energy accumulates energy per consumer over a composed timeline.
type Energy struct {
	MCUJ    float64
	PULPJ   float64
	SPIJ    float64
	SensorJ float64
}

// TotalJ sums all consumers.
func (e Energy) TotalJ() float64 { return e.MCUJ + e.PULPJ + e.SPIJ + e.SensorJ }

// Add accumulates another energy record.
func (e *Energy) Add(o Energy) {
	e.MCUJ += o.MCUJ
	e.PULPJ += o.PULPJ
	e.SPIJ += o.SPIJ
	e.SensorJ += o.SensorJ
}

// EfficiencyGOPSW converts operations and energy into GOPS/W (== ops/nJ).
func EfficiencyGOPSW(ops float64, seconds float64, watts float64) float64 {
	if watts <= 0 || seconds <= 0 {
		return 0
	}
	return ops / seconds / watts / 1e9
}

// Round3 trims a float for stable textual reports.
func Round3(v float64) float64 {
	if v == 0 {
		return 0
	}
	mag := math.Pow(10, math.Floor(math.Log10(math.Abs(v)))-2)
	return math.Round(v/mag) * mag
}
