package power

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hetsim/internal/cluster"
	"hetsim/internal/cpu"
)

// matmulActivity approximates the measured chi profile of the 4-core
// matmul: all cores busy, ~1.4 TCDM accesses per cycle, DMA negligible.
func matmulActivity() Activity {
	return Activity{CoreRun: 4, TCDM: 1.43, DMA: 0.01}
}

func TestCalibrationAnchor(t *testing.T) {
	// The paper's anchor: PULP running matmul at the 0.6 V point (~50 MHz)
	// burns about 1.48 mW.
	p := PULPPowerW(0.6, 50e6, matmulActivity())
	if p < 1.25e-3 || p > 1.7e-3 {
		t.Fatalf("matmul power at 0.6V/50MHz = %.3f mW, want ~1.48", p*1e3)
	}
}

func TestL476BaselineIsTenMilliwatts(t *testing.T) {
	// The Fig. 5 baseline: the STM32-L476 at 32 MHz consumes ~10 mW, which
	// is why 10 mW is the envelope.
	p := STM32L476.RunPowerW(32e6)
	if p < 9.5e-3 || p > 11.5e-3 {
		t.Fatalf("L476 @ 32 MHz = %.2f mW, want ~10.6", p*1e3)
	}
}

func TestFMaxInterpolation(t *testing.T) {
	if f := FMaxAt(0.4); f != OpPoints[0].FMax {
		t.Errorf("below range: %v", f)
	}
	if f := FMaxAt(1.2); f != OpPoints[len(OpPoints)-1].FMax {
		t.Errorf("above range: %v", f)
	}
	for _, op := range OpPoints {
		if f := FMaxAt(op.VDD); f != op.FMax {
			t.Errorf("FMaxAt(%v) = %v, want %v", op.VDD, f, op.FMax)
		}
	}
	// Monotone non-decreasing (property).
	prop := func(a, b float64) bool {
		if a > b {
			a, b = b, a
		}
		return FMaxAt(a) <= FMaxAt(b)
	}
	cfg := &quick.Config{MaxCount: 2000, Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(0.4 + r.Float64()*0.8)
		v[1] = reflect.ValueOf(0.4 + r.Float64()*0.8)
	}}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestPowerMonotoneInVoltageAndFrequency(t *testing.T) {
	a := matmulActivity()
	prop := func(v1, v2, f1, f2 float64) bool {
		if v1 > v2 {
			v1, v2 = v2, v1
		}
		if f1 > f2 {
			f1, f2 = f2, f1
		}
		return PULPPowerW(v1, f1, a) <= PULPPowerW(v2, f2, a)+1e-15
	}
	cfg := &quick.Config{MaxCount: 2000, Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(0.5 + r.Float64()*0.5)
		v[1] = reflect.ValueOf(0.5 + r.Float64()*0.5)
		v[2] = reflect.ValueOf(1e6 + r.Float64()*449e6)
		v[3] = reflect.ValueOf(1e6 + r.Float64()*449e6)
	}}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestIdleMuchCheaperThanRun(t *testing.T) {
	run := PULPPowerW(0.8, 200e6, matmulActivity())
	idle := PULPPowerW(0.8, 200e6, IdleActivity(4))
	if idle >= run/3 {
		t.Fatalf("idle %.3f mW not well below run %.3f mW", idle*1e3, run*1e3)
	}
}

func TestBestOpEnvelope(t *testing.T) {
	a := matmulActivity()
	// The Fig. 5a sweet spot: with the MCU at 1 MHz, ~9+ mW are left for
	// PULP, which should clock well above 150 MHz.
	v, f, ok := BestOp(9.3e-3, a)
	if !ok {
		t.Fatal("9.3 mW must be feasible")
	}
	if f < 150e6 {
		t.Errorf("budget 9.3 mW gives only %.1f MHz at %.2f V", f/1e6, v)
	}
	if got := PULPPowerW(v, f, a); got > 9.3e-3*1.001 {
		t.Errorf("solution exceeds budget: %.3f mW", got*1e3)
	}
	// ~1.4 mW (MCU at 26 MHz) still buys tens of MHz.
	_, f2, ok := BestOp(1.4e-3, a)
	if !ok || f2 < 20e6 || f2 > 120e6 {
		t.Errorf("budget 1.4 mW gives %.1f MHz, want tens of MHz", f2/1e6)
	}
	// Infeasible budget.
	if _, _, ok := BestOp(1e-6, a); ok {
		t.Error("1 uW cannot power the cluster")
	}
}

func TestBestOpMonotoneInBudget(t *testing.T) {
	a := matmulActivity()
	prop := func(b1, b2 float64) bool {
		if b1 > b2 {
			b1, b2 = b2, b1
		}
		_, f1, ok1 := BestOp(b1, a)
		_, f2, ok2 := BestOp(b2, a)
		if !ok1 {
			return true
		}
		return ok2 && f2 >= f1-1
	}
	cfg := &quick.Config{MaxCount: 500, Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(0.2e-3 + r.Float64()*15e-3)
		v[1] = reflect.ValueOf(0.2e-3 + r.Float64()*15e-3)
	}}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestActivityOf(t *testing.T) {
	s := cluster.Stats{
		Cycles: 1000,
		Cores: []cpu.Stats{
			{Active: 800, Stall: 100, Sleep: 100},
			{Active: 400, Stall: 0, Sleep: 600},
		},
		DMABusy:    250,
		TCDMAccess: 1500,
	}
	a := ActivityOf(s)
	if a.CoreRun != 1.3 || a.CoreIdle != 0.7 {
		t.Errorf("core chi = %v/%v", a.CoreRun, a.CoreIdle)
	}
	if a.TCDM != 1.5 || a.DMA != 0.25 {
		t.Errorf("tcdm/dma chi = %v/%v", a.TCDM, a.DMA)
	}
	if got := ActivityOf(cluster.Stats{}); got != (Activity{}) {
		t.Errorf("empty stats must give zero activity")
	}
}

func TestMCUTable(t *testing.T) {
	if len(AllMCUs) != 7 {
		t.Fatalf("Fig. 3 compares 7 MCUs, table has %d", len(AllMCUs))
	}
	for _, m := range AllMCUs {
		if m.RunWHz <= 0 || m.FMax <= 0 {
			t.Errorf("%s has invalid characteristics", m.Name)
		}
		// The Apollo is the efficiency outlier of Fig. 3.
		if m.Name != "Ambiq Apollo" && m.RunWHz < 2*AmbiqApollo.RunWHz {
			t.Errorf("%s (%.2f nW/Hz) should be far less efficient than the Apollo", m.Name, m.RunWHz*1e9)
		}
	}
	if _, err := MCUByName("STM32-L476"); err != nil {
		t.Error(err)
	}
	if _, err := MCUByName("Z80"); err == nil {
		t.Error("unknown MCU must fail")
	}
	if c := MSP430.Cycles(1000); c != 1400 {
		t.Errorf("MSP430 cycle penalty: %v", c)
	}
	if c := STM32L476.Cycles(1000); c != 1000 {
		t.Errorf("L476 cycle penalty: %v", c)
	}
}

func TestEnergyAccounting(t *testing.T) {
	var e Energy
	e.Add(Energy{MCUJ: 1, PULPJ: 2, SPIJ: 3})
	e.Add(Energy{MCUJ: 0.5})
	if e.TotalJ() != 6.5 {
		t.Fatalf("total = %v", e.TotalJ())
	}
	if g := EfficiencyGOPSW(1e9, 1, 1); g != 1 {
		t.Errorf("1 Gop in 1 s at 1 W should be 1 GOPS/W, got %v", g)
	}
	if g := EfficiencyGOPSW(1e9, 1, 0); g != 0 {
		t.Errorf("zero power guard failed: %v", g)
	}
}
