// Package omp is the host-side programming model of the paper: an OpenMP
// v4.0-flavoured offload API. The paper outlines accelerated regions with
// `#pragma omp target` plus `map` clauses; this package expresses the same
// contract in Go — a target region is a device binary plus data-movement
// clauses — and lowers it onto the core.System offload machinery, hiding
// the link protocol, the descriptor layout and the GPIO handshake exactly
// as the paper's runtime hides them behind the pragma.
//
//	dev := omp.NewDevice(sys)
//	res, err := dev.Target(prog,
//	    omp.MapTo(input),          // map(to: ...)
//	    omp.MapFrom(outputBytes),  // map(from: ...)
//	    omp.NumThreads(4),
//	    omp.Args(n, shift),
//	)
package omp

import (
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/core"
	"hetsim/internal/fault"
	"hetsim/internal/loader"
)

// Device is an offload target (the PULP accelerator of a System).
type Device struct {
	sys *core.System
}

// NewDevice wraps a heterogeneous system as an OpenMP device.
func NewDevice(sys *core.System) *Device { return &Device{sys: sys} }

// Clause configures a target region.
type Clause func(*regionCfg) error

type regionCfg struct {
	job  loader.Job
	opts core.Options
}

// MapTo declares host data copied to the device before the region runs
// (OpenMP `map(to: ...)`).
func MapTo(data []byte) Clause {
	return func(c *regionCfg) error {
		c.job.In = data
		return nil
	}
}

// MapFrom declares a device output buffer of n bytes copied back to the
// host after the region (OpenMP `map(from: ...)`).
func MapFrom(n uint32) Clause {
	return func(c *regionCfg) error {
		c.job.OutLen = n
		return nil
	}
}

// NumThreads sets the team size of the device-side parallel regions.
func NumThreads(n int) Clause {
	return func(c *regionCfg) error {
		if n < 1 || n > 16 {
			return fmt.Errorf("omp: num_threads(%d) out of range", n)
		}
		c.job.Threads = uint32(n)
		return nil
	}
}

// Args passes up to four scalar firstprivate arguments to the region.
func Args(args ...uint32) Clause {
	return func(c *regionCfg) error {
		if len(args) > 4 {
			return fmt.Errorf("omp: at most 4 scalar args, got %d", len(args))
		}
		copy(c.job.Args[:], args)
		return nil
	}
}

// Iterations repeats the region on fresh data n times per offload (the
// amortization axis of Fig. 5b).
func Iterations(n int) Clause {
	return func(c *regionCfg) error {
		if n < 1 {
			return fmt.Errorf("omp: iterations must be positive")
		}
		c.opts.Iterations = n
		c.job.Iters = 1
		return nil
	}
}

// DoubleBuffer overlaps data transfers with computation.
func DoubleBuffer() Clause {
	return func(c *regionCfg) error {
		c.opts.DoubleBuffer = true
		return nil
	}
}

// FromSensor feeds the mapped-to input from a sensor each iteration
// instead of from host memory (see internal/sensor and core.SensorFeed).
func FromSensor(feed *core.SensorFeed) Clause {
	return func(c *regionCfg) error {
		if feed == nil {
			return fmt.Errorf("omp: nil sensor feed")
		}
		c.opts.Sensor = feed
		return nil
	}
}

// Timeout bounds each offload attempt's wait for end-of-computation, in
// accelerator cycles (the EOC watchdog of the resilient runtime).
func Timeout(cycles uint64) Clause {
	return func(c *regionCfg) error {
		if cycles == 0 {
			return fmt.Errorf("omp: timeout must be positive")
		}
		c.opts.WatchdogCycles = cycles
		return nil
	}
}

// Retries allows n recovery attempts after a watchdog trip: the first
// re-raises fetch-enable, later ones fully reload the device over the
// link, each after an exponentially growing backoff.
func Retries(n int) Clause {
	return func(c *regionCfg) error {
		if n < 0 || n > 16 {
			return fmt.Errorf("omp: retries(%d) out of [0, 16]", n)
		}
		c.opts.Retries = n
		return nil
	}
}

// Backoff sets the host-side wait before the first retry in seconds
// (doubles per subsequent retry; default core.DefaultBackoffBase).
func Backoff(base float64) Clause {
	return func(c *regionCfg) error {
		if base <= 0 {
			return fmt.Errorf("omp: backoff base %v must be positive", base)
		}
		c.opts.BackoffBase = base
		return nil
	}
}

// HostFallback degrades the region to native host execution of prog when
// accelerator recovery is exhausted, instead of failing the Target call.
func HostFallback(prog *asm.Program) Clause {
	return func(c *regionCfg) error {
		if prog == nil {
			return fmt.Errorf("omp: nil fallback program")
		}
		c.opts.HostFallback = prog
		return nil
	}
}

// VerifyDescriptor reads the job descriptor back after writing it and
// rewrites on mismatch, catching device-memory corruption the link CRC
// cannot see.
func VerifyDescriptor() Clause {
	return func(c *regionCfg) error {
		c.opts.VerifyDescriptor = true
		return nil
	}
}

// Inject attaches a deterministic fault injector to the region (testing
// and resilience evaluation; see internal/fault).
func Inject(in *fault.Injector) Clause {
	return func(c *regionCfg) error {
		c.opts.Faults = in
		return nil
	}
}

// Result is the outcome of a target region.
type Result struct {
	Out    []byte
	Report *core.Report
}

// Target offloads a region: the device binary plus its clauses. It blocks
// until the device signals end-of-computation and the mapped-from data is
// back on the host (the synchronous semantics of `#pragma omp target`).
func (d *Device) Target(prog *asm.Program, clauses ...Clause) (*Result, error) {
	cfg := regionCfg{job: loader.Job{Prog: prog, Iters: 1}}
	for _, cl := range clauses {
		if err := cl(&cfg); err != nil {
			return nil, err
		}
	}
	out, rep, err := d.sys.Offload(cfg.job, cfg.opts)
	if err != nil {
		return nil, err
	}
	return &Result{Out: out, Report: rep}, nil
}
