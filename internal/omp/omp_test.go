package omp_test

import (
	"bytes"
	"testing"

	"hetsim/internal/core"
	"hetsim/internal/devrt"
	"hetsim/internal/fault"
	"hetsim/internal/isa"
	"hetsim/internal/kernels"
	"hetsim/internal/omp"
	"hetsim/internal/power"
)

func device(t *testing.T) *omp.Device {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Host: power.STM32L476, HostFreqHz: 16e6, Lanes: 4,
		AccVdd: 0.8, AccFreqHz: 200e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return omp.NewDevice(sys)
}

func TestTargetRegionEndToEnd(t *testing.T) {
	dev := device(t)
	k := kernels.MatMulShort(16)
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Input(11)
	args := k.Args()
	res, err := dev.Target(prog,
		omp.MapTo(in),
		omp.MapFrom(k.OutLen()),
		omp.NumThreads(4),
		omp.Args(args[0], args[1]),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Out, k.Golden(in)) {
		t.Fatal("target region output differs from golden")
	}
	if res.Report.Activity.CoreRun <= 1 {
		t.Errorf("4-thread region should keep several cores busy: %+v", res.Report.Activity)
	}
}

func TestTargetSingleThreadClause(t *testing.T) {
	dev := device(t)
	k := kernels.MatMulChar(16)
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Input(12)
	res, err := dev.Target(prog, omp.MapTo(in), omp.MapFrom(k.OutLen()), omp.NumThreads(1))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Out, k.Golden(in)) {
		t.Fatal("single-thread region output differs from golden")
	}
}

func TestTargetIterationsAndDoubleBuffer(t *testing.T) {
	dev := device(t)
	k := kernels.MatMulChar(16)
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Input(13)
	res, err := dev.Target(prog, omp.MapTo(in), omp.MapFrom(k.OutLen()),
		omp.Iterations(32), omp.DoubleBuffer())
	if err != nil {
		t.Fatal(err)
	}
	if res.Report.Iterations != 32 || !res.Report.DoubleBuffer {
		t.Fatalf("clauses not applied: %+v", res.Report)
	}
}

func TestClauseValidation(t *testing.T) {
	dev := device(t)
	k := kernels.MatMulChar(16)
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]omp.Clause{
		{omp.NumThreads(0)},
		{omp.NumThreads(99)},
		{omp.Args(1, 2, 3, 4, 5)},
		{omp.Iterations(0)},
	}
	for i, cls := range cases {
		if _, err := dev.Target(prog, cls...); err == nil {
			t.Errorf("clause set %d should fail", i)
		}
	}
}

func TestFromSensorClause(t *testing.T) {
	dev := device(t)
	k := kernels.MatMulChar(16)
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dev.Target(prog, omp.FromSensor(nil)); err == nil {
		t.Error("nil sensor feed must be rejected")
	}
	in := k.Input(3)
	res, err := dev.Target(prog,
		omp.MapTo(in), omp.MapFrom(k.OutLen()), omp.NumThreads(2),
		omp.FromSensor(&core.SensorFeed{AcquireTime: 1e-3, SampleEnergyJ: 1e-6, ViaLink: true}),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Out, k.Golden(in)) {
		t.Fatal("sensor-fed region output mismatch")
	}
	if res.Report.Energy.SensorJ != 1e-6 {
		t.Errorf("sensor energy %v", res.Report.Energy.SensorJ)
	}
	if res.Report.InTime < 1e-3 {
		t.Errorf("acquisition time not charged: %v", res.Report.InTime)
	}
}

func TestResilienceClauses(t *testing.T) {
	// The resilience clauses lower onto the core options: a persistently
	// hanging accelerator trips the Timeout watchdog, burns the Retries
	// budget and lands on the HostFallback build, still producing golden
	// output.
	dev := device(t)
	k := kernels.MatMulChar(16)
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	hostProg, err := k.Build(isa.CortexM4, devrt.Host)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Input(14)
	res, err := dev.Target(prog,
		omp.MapTo(in), omp.MapFrom(k.OutLen()),
		omp.Timeout(2_000_000),
		omp.Retries(1),
		omp.Backoff(50e-6),
		omp.VerifyDescriptor(),
		omp.HostFallback(hostProg),
		omp.Inject(fault.New(fault.Config{Seed: 9, EOCHangRate: 1})),
	)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Out, k.Golden(in)) {
		t.Fatal("fallback region output differs from golden")
	}
	if !res.Report.FallbackUsed || res.Report.Retries != 1 || res.Report.WatchdogTrips != 2 {
		t.Fatalf("resilience clauses not applied: %+v", res.Report)
	}
}

func TestResilienceClauseValidation(t *testing.T) {
	dev := device(t)
	k := kernels.MatMulChar(16)
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	cases := [][]omp.Clause{
		{omp.Timeout(0)},
		{omp.Retries(-1)},
		{omp.Retries(17)},
		{omp.Backoff(0)},
		{omp.Backoff(-1)},
		{omp.HostFallback(nil)},
	}
	for i, cls := range cases {
		if _, err := dev.Target(prog, cls...); err == nil {
			t.Errorf("clause set %d should fail", i)
		}
	}
}
