package hwsync

import (
	"math/bits"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestBarrierLastArriverWakesAll(t *testing.T) {
	e := New(4)
	for core := 0; core < 3; core++ {
		wake, last := e.Arrive(core, 4)
		if last || wake != 0 {
			t.Fatalf("core %d should sleep at the barrier", core)
		}
	}
	if e.SleepMask() != 0b0111 {
		t.Fatalf("sleep mask %04b", e.SleepMask())
	}
	wake, last := e.Arrive(3, 4)
	if !last {
		t.Fatal("4th arrival must complete the barrier")
	}
	if wake != 0b0111 {
		t.Fatalf("wake mask %04b", wake)
	}
	if e.SleepMask() != 0 {
		t.Fatal("barrier sleepers not cleared")
	}
	if e.Barriers != 1 {
		t.Fatalf("barrier count %d", e.Barriers)
	}
}

func TestBarrierTeamOfOne(t *testing.T) {
	e := New(4)
	if _, last := e.Arrive(0, 1); !last {
		t.Fatal("team of one completes immediately")
	}
}

func TestBarrierReusable(t *testing.T) {
	e := New(2)
	for round := 0; round < 5; round++ {
		if _, last := e.Arrive(0, 2); last {
			t.Fatalf("round %d: first arriver completed", round)
		}
		if wake, last := e.Arrive(1, 2); !last || wake != 0b01 {
			t.Fatalf("round %d: second arriver did not complete (wake %04b)", round, wake)
		}
	}
	if e.Barriers != 5 {
		t.Fatalf("barrier count %d", e.Barriers)
	}
}

func TestEventLatchSemantics(t *testing.T) {
	e := New(4)
	// Send to an awake core: latch; its next WFE returns immediately.
	if wake := e.Send(0b0010); wake != 0 {
		t.Fatalf("no one was asleep: %04b", wake)
	}
	if e.WFE(1) {
		t.Fatal("latched event must satisfy WFE without sleeping")
	}
	// Second WFE with no event: sleeps.
	if !e.WFE(1) {
		t.Fatal("WFE without latch must sleep")
	}
	// Send while asleep: wake, latch consumed.
	if wake := e.Send(0b0010); wake != 0b0010 {
		t.Fatalf("wake mask %04b", wake)
	}
	if !e.WFE(1) {
		t.Fatal("latch must have been consumed by the wake")
	}
}

func TestSendMasksMultipleCores(t *testing.T) {
	e := New(4)
	e.WFE(1)
	e.WFE(2)
	e.WFE(3)
	if wake := e.Send(0b1110); wake != 0b1110 {
		t.Fatalf("wake %04b", wake)
	}
}

func TestMutex(t *testing.T) {
	e := New(4)
	if !e.TryLock(0) {
		t.Fatal("free mutex must lock")
	}
	if e.TryLock(1) || e.TryLock(0) {
		t.Fatal("held mutex must deny everyone, including the owner")
	}
	e.Unlock()
	if !e.TryLock(1) {
		t.Fatal("released mutex must lock again")
	}
}

// Property: arrivals in any order complete exactly once per round and wake
// exactly the sleepers.
func TestBarrierPermutationProperty(t *testing.T) {
	prop := func(perm []int) bool {
		n := len(perm)
		e := New(n)
		woken := 0
		for i, core := range perm {
			wake, last := e.Arrive(core, n)
			if i < n-1 {
				if last || wake != 0 {
					return false
				}
			} else {
				if !last || bits.OnesCount32(wake) != n-1 || wake&(1<<uint(core)) != 0 {
					return false
				}
				woken = bits.OnesCount32(wake)
			}
		}
		return woken == n-1 && e.SleepMask() == 0
	}
	cfg := &quick.Config{MaxCount: 200, Values: func(v []reflect.Value, r *rand.Rand) {
		n := 2 + r.Intn(7)
		v[0] = reflect.ValueOf(r.Perm(n))
	}}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}
