// Package hwsync models the PULP cluster's hardware synchronizer (event
// unit): the block that lets cores arrive at a barrier and be put to sleep
// and woken "in just a few cycles" (Section III-B of the paper), plus an
// event latch per core (for WFE-based dispatch) and a hardware mutex.
//
// The unit is a pure state machine; the cluster translates its outputs
// (wake masks) into core wake-ups with the target's wake-up latency. That
// latency, together with the dispatch cost of the device runtime, is what
// produces the measured ~6% OpenMP overhead of Fig. 4.
//
// All per-core state is kept in bitmasks (the cluster caps out at 32
// cores), so barrier completion and event sends are allocation-free — they
// run once per barrier in the simulator's hot loop.
package hwsync

import "hetsim/internal/obs"

// EventUnit is the cluster's hardware synchronizer.
type EventUnit struct {
	n int

	latch       uint32 // per-core event latch (set by Send)
	sleepingEvt uint32 // cores asleep in WFE
	sleepingBar uint32 // cores asleep at the barrier

	barrierArrived int
	barrierTeam    int
	barrierStart   uint64 // cycle of the first arrival (timeline span)

	mutexHeld  bool
	mutexOwner int

	// TL, when non-nil, receives one timeline span per completed barrier
	// (first arrival to release) on the sync track; Now is the cluster
	// clock (set by the cluster at construction). Nil TL costs one
	// compare per barrier event — never per cycle.
	TL  *obs.ClusterTL
	Now *uint64

	// Stats.
	Barriers uint64
	Sends    uint64
}

// New builds an event unit for n cores (n <= 32).
func New(n int) *EventUnit {
	if n < 0 || n > 32 {
		panic("hwsync: event unit supports at most 32 cores")
	}
	return &EventUnit{n: n}
}

// Reset clears all synchronization state — event latches, sleep tracking,
// a half-full barrier, a held mutex — as a cluster soft reset between
// offload attempts. The Barriers/Sends statistics are kept.
func (e *EventUnit) Reset() {
	e.latch = 0
	e.sleepingEvt = 0
	e.sleepingBar = 0
	e.barrierArrived = 0
	e.barrierTeam = 0
	e.barrierStart = 0
	e.mutexHeld = false
	e.mutexOwner = 0
}

// Arrive registers core's arrival at a barrier with the given team size.
// If the core completes the barrier, it returns the bitmask of cores to
// wake (the other participants; the arriving core itself never slept). If
// not, last is false and the arriving core must be put to sleep by the
// caller.
func (e *EventUnit) Arrive(core, team int) (wake uint32, last bool) {
	if team <= 1 {
		return 0, true
	}
	if e.barrierTeam == 0 {
		e.barrierTeam = team
		if e.TL != nil && e.Now != nil {
			e.barrierStart = *e.Now
		}
	}
	e.barrierArrived++
	if e.barrierArrived < e.barrierTeam {
		e.sleepingBar |= 1 << uint(core)
		return 0, false
	}
	// Barrier complete: wake everyone who slept on it.
	e.Barriers++
	e.barrierArrived = 0
	e.barrierTeam = 0
	wake = e.sleepingBar
	e.sleepingBar = 0
	if e.TL != nil && e.Now != nil {
		if *e.Now > e.barrierStart {
			e.TL.Span(obs.TidSync, "barrier", "sync", e.barrierStart, *e.Now, nil)
		} else {
			e.TL.Instant(obs.TidSync, "barrier", "sync", *e.Now, nil)
		}
	}
	return wake, true
}

// Send sets the event latch of every core in mask, returning the bitmask
// of cores that were asleep in WFE and must now be woken (their latch is
// consumed by the wake, mirroring the PULP event unit's sticky event
// buffer).
func (e *EventUnit) Send(mask uint32) (wake uint32) {
	e.Sends++
	wake = mask & e.sleepingEvt
	e.sleepingEvt &^= wake
	e.latch |= mask &^ wake
	return wake
}

// WFE is called when a core executes a wait-for-event. If the core's latch
// is set it is consumed and the core continues; otherwise the core must
// sleep (sleep=true) until a Send targets it.
func (e *EventUnit) WFE(core int) (sleep bool) {
	bit := uint32(1) << uint(core)
	if e.latch&bit != 0 {
		e.latch &^= bit
		return false
	}
	e.sleepingEvt |= bit
	return true
}

// TryLock attempts to take the hardware mutex for core. The cluster retries
// a denied attempt every cycle, modelling the single-cycle spin of the
// hardware test-and-set register.
func (e *EventUnit) TryLock(core int) bool {
	if e.mutexHeld {
		return false
	}
	e.mutexHeld = true
	e.mutexOwner = core
	return true
}

// Unlock releases the hardware mutex.
func (e *EventUnit) Unlock() {
	e.mutexHeld = false
}

// SleepMask returns the bitmask of sleeping cores (EvtStatus register).
func (e *EventUnit) SleepMask() uint32 {
	return e.sleepingEvt | e.sleepingBar
}
