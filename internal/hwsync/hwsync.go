// Package hwsync models the PULP cluster's hardware synchronizer (event
// unit): the block that lets cores arrive at a barrier and be put to sleep
// and woken "in just a few cycles" (Section III-B of the paper), plus an
// event latch per core (for WFE-based dispatch) and a hardware mutex.
//
// The unit is a pure state machine; the cluster translates its outputs
// (wake lists) into core wake-ups with the target's wake-up latency. That
// latency, together with the dispatch cost of the device runtime, is what
// produces the measured ~6% OpenMP overhead of Fig. 4.
package hwsync

// EventUnit is the cluster's hardware synchronizer.
type EventUnit struct {
	n int

	latch       []bool // per-core event latch (set by Send)
	sleepingEvt []bool // core is asleep in WFE
	sleepingBar []bool // core is asleep at the barrier

	barrierArrived int
	barrierTeam    int

	mutexHeld  bool
	mutexOwner int

	// Stats.
	Barriers uint64
	Sends    uint64
}

// New builds an event unit for n cores.
func New(n int) *EventUnit {
	return &EventUnit{
		n:           n,
		latch:       make([]bool, n),
		sleepingEvt: make([]bool, n),
		sleepingBar: make([]bool, n),
	}
}

// Reset clears all synchronization state — event latches, sleep tracking,
// a half-full barrier, a held mutex — as a cluster soft reset between
// offload attempts. The Barriers/Sends statistics are kept.
func (e *EventUnit) Reset() {
	for i := 0; i < e.n; i++ {
		e.latch[i] = false
		e.sleepingEvt[i] = false
		e.sleepingBar[i] = false
	}
	e.barrierArrived = 0
	e.barrierTeam = 0
	e.mutexHeld = false
	e.mutexOwner = 0
}

// Arrive registers core's arrival at a barrier with the given team size.
// If the core completes the barrier, it returns the list of cores to wake
// (the other participants; the arriving core itself never slept). If not,
// ok is false and the arriving core must be put to sleep by the caller.
func (e *EventUnit) Arrive(core, team int) (wake []int, last bool) {
	if team <= 1 {
		return nil, true
	}
	if e.barrierTeam == 0 {
		e.barrierTeam = team
	}
	e.barrierArrived++
	if e.barrierArrived < e.barrierTeam {
		e.sleepingBar[core] = true
		return nil, false
	}
	// Barrier complete: wake everyone who slept on it.
	e.Barriers++
	e.barrierArrived = 0
	e.barrierTeam = 0
	for i := 0; i < e.n; i++ {
		if e.sleepingBar[i] {
			e.sleepingBar[i] = false
			wake = append(wake, i)
		}
	}
	return wake, true
}

// Send sets the event latch of every core in mask, returning the cores that
// were asleep in WFE and must now be woken (their latch is consumed by the
// wake, mirroring the PULP event unit's sticky event buffer).
func (e *EventUnit) Send(mask uint32) (wake []int) {
	e.Sends++
	for i := 0; i < e.n; i++ {
		if mask&(1<<uint(i)) == 0 {
			continue
		}
		if e.sleepingEvt[i] {
			e.sleepingEvt[i] = false
			wake = append(wake, i)
		} else {
			e.latch[i] = true
		}
	}
	return wake
}

// WFE is called when a core executes a wait-for-event. If the core's latch
// is set it is consumed and the core continues; otherwise the core must
// sleep (sleep=true) until a Send targets it.
func (e *EventUnit) WFE(core int) (sleep bool) {
	if e.latch[core] {
		e.latch[core] = false
		return false
	}
	e.sleepingEvt[core] = true
	return true
}

// TryLock attempts to take the hardware mutex for core. The cluster retries
// a denied attempt every cycle, modelling the single-cycle spin of the
// hardware test-and-set register.
func (e *EventUnit) TryLock(core int) bool {
	if e.mutexHeld {
		return false
	}
	e.mutexHeld = true
	e.mutexOwner = core
	return true
}

// Unlock releases the hardware mutex.
func (e *EventUnit) Unlock() {
	e.mutexHeld = false
}

// SleepMask returns the bitmask of sleeping cores (EvtStatus register).
func (e *EventUnit) SleepMask() uint32 {
	var m uint32
	for i := 0; i < e.n; i++ {
		if e.sleepingEvt[i] || e.sleepingBar[i] {
			m |= 1 << uint(i)
		}
	}
	return m
}
