package mcu

import (
	"bytes"
	"testing"

	"hetsim/internal/devrt"
	"hetsim/internal/isa"
	"hetsim/internal/kernels"
	"hetsim/internal/loader"
	"hetsim/internal/power"
)

func TestNewValidatesFrequency(t *testing.T) {
	if _, err := New(power.STM32L476, 80e6); err != nil {
		t.Fatal(err)
	}
	if _, err := New(power.STM32L476, 81e6); err == nil {
		t.Error("above-fmax frequency must be rejected")
	}
	if _, err := New(power.STM32L476, 0); err == nil {
		t.Error("zero frequency must be rejected")
	}
}

func TestClockAndPowerDerivation(t *testing.T) {
	h, err := New(power.STM32L476, 16e6)
	if err != nil {
		t.Fatal(err)
	}
	if h.SPIClock() != 8e6 {
		t.Errorf("SPI clock %v", h.SPIClock())
	}
	if got := h.RunPowerW(); got != power.STM32L476.RunPowerW(16e6) {
		t.Errorf("run power %v", got)
	}
	if got := h.Seconds(16_000_000); got != 1.0 {
		t.Errorf("16M cycles at 16MHz = %v s", got)
	}
}

func TestMSP430CyclePenaltyInSeconds(t *testing.T) {
	h, err := New(power.MSP430, 25e6)
	if err != nil {
		t.Fatal(err)
	}
	// 1.4x penalty: 25M simulated cycles take 1.4 s at 25 MHz.
	if got := h.Seconds(25_000_000); got != 1.4 {
		t.Errorf("penalized seconds %v", got)
	}
}

func TestRunBaselineMatchesGolden(t *testing.T) {
	h, err := New(power.STM32L476, 32e6)
	if err != nil {
		t.Fatal(err)
	}
	k := kernels.MatMulChar(16)
	prog, err := k.Build(isa.CortexM4, devrt.Host)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Input(9)
	res, err := h.RunBaseline(loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Args: k.Args()}, 0)
	if err == nil {
		t.Fatal("maxCycles=0 must fail fast (no budget)")
	}
	res, err = h.RunBaseline(loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Args: k.Args()}, 1e9)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(res.Out, k.Golden(in)) {
		t.Fatal("baseline output mismatch")
	}
	if res.Seconds <= 0 || res.EnergyJ <= 0 {
		t.Fatal("no time/energy accounted")
	}
}
