// Package mcu models the host microcontroller of the heterogeneous pair: a
// commercial Cortex-M-class device (by default the STM32-L476 of the
// paper's prototype) at a chosen clock frequency. The host executes
// benchmark kernels natively through the M-profile core model (the MCU
// baseline of every comparison) and drives the SPI link and the GPIO
// handshake when offloading.
package mcu

import (
	"fmt"

	"hetsim/internal/cluster"
	"hetsim/internal/devrt"
	"hetsim/internal/loader"
	"hetsim/internal/power"
)

// Host is a host MCU instance.
type Host struct {
	Model  power.MCUModel
	FreqHz float64
}

// New builds a host; freq must not exceed the device's maximum.
func New(model power.MCUModel, freqHz float64) (*Host, error) {
	if freqHz <= 0 || freqHz > model.FMax {
		return nil, fmt.Errorf("mcu: %s cannot run at %.1f MHz (max %.1f)",
			model.Name, freqHz/1e6, model.FMax/1e6)
	}
	return &Host{Model: model, FreqHz: freqHz}, nil
}

// SPIClock returns the SPI peripheral clock (half the core clock, as on
// the STM32 SPI/QSPI prescaler).
func (h *Host) SPIClock() float64 { return h.FreqHz / 2 }

// RunPowerW is the active power at the configured frequency.
func (h *Host) RunPowerW() float64 { return h.Model.RunPowerW(h.FreqHz) }

// Seconds converts host cycles (after the model's cycle penalty) to time.
func (h *Host) Seconds(simCycles uint64) float64 {
	return h.Model.Cycles(simCycles) / h.FreqHz
}

// BaselineResult is a native (non-offloaded) kernel execution on the host.
type BaselineResult struct {
	Out     []byte
	Cycles  float64 // penalized cycles
	Seconds float64
	EnergyJ float64
}

// RunBaseline executes the job natively on the MCU: the same kernel binary
// built for the host profile, single core, data in local SRAM. This is the
// reference every speedup in the paper is measured against.
func (h *Host) RunBaseline(job loader.Job, maxCycles uint64) (*BaselineResult, error) {
	cfg := cluster.MCUConfig(h.Model.Target)
	job.Threads = 1
	res, err := cluster.RunJob(cfg, devrt.Host, job, maxCycles)
	if err != nil {
		return nil, fmt.Errorf("mcu: baseline on %s: %w", h.Model.Name, err)
	}
	cyc := h.Model.Cycles(res.Cycles)
	sec := cyc / h.FreqHz
	return &BaselineResult{
		Out:     res.Out,
		Cycles:  cyc,
		Seconds: sec,
		EnergyJ: sec * h.RunPowerW(),
	}, nil
}
