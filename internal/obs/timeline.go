package obs

import (
	"encoding/json"
	"fmt"
	"io"
	"sort"
)

// Timeline track layout (DESIGN.md §10). Pids separate the two sides of
// the system; tids are tracks within a side. Perfetto sorts tracks by
// tid, so the layout below reads top-to-bottom as host protocol → link →
// events → cores → DMA → sync.
const (
	PidHost  = 1 // host MCU: protocol phases, SPI link, runtime events
	PidAccel = 2 // PULP cluster: cores, DMA channels, barrier unit

	TidPhases = 1 // host offload protocol phases
	TidLink   = 2 // SPI bursts (incl. retransmissions)
	TidEvents = 3 // watchdog trips, retries, fallback (instants)

	TidCore0  = 10 // accelerator core n is track TidCore0+n
	TidDMA0   = 40 // DMA channel n is track TidDMA0+n
	TidSync   = 60 // barrier/event unit
	TidICache = 61 // shared I$ refill engine
)

// tev is one Chrome trace-event. Field names follow the trace-event
// format: ph "X" = complete (ts+dur), "i" = instant, "M" = metadata.
// All timestamps are microseconds.
type tev struct {
	Name string         `json:"name"`
	Cat  string         `json:"cat,omitempty"`
	Ph   string         `json:"ph"`
	Ts   float64        `json:"ts"`
	Dur  *float64       `json:"dur,omitempty"`
	Pid  int            `json:"pid"`
	Tid  int            `json:"tid"`
	S    string         `json:"s,omitempty"` // instant scope ("t" = thread)
	Args map[string]any `json:"args,omitempty"`
}

// Timeline collects trace events and writes them as Chrome trace-event
// JSON ({"traceEvents": [...]}), loadable in Perfetto. It is not
// goroutine-safe: one timeline belongs to one offload run.
type Timeline struct {
	evs  []tev
	meta []tev // process/thread name metadata, emitted first
}

// NewTimeline returns an empty timeline.
func NewTimeline() *Timeline { return &Timeline{} }

// NameProcess labels a pid in the trace viewer.
func (t *Timeline) NameProcess(pid int, name string) {
	t.meta = append(t.meta, tev{Name: "process_name", Ph: "M", Pid: pid,
		Args: map[string]any{"name": name}})
}

// NameThread labels a (pid, tid) track in the trace viewer.
func (t *Timeline) NameThread(pid, tid int, name string) {
	t.meta = append(t.meta, tev{Name: "thread_name", Ph: "M", Pid: pid, Tid: tid,
		Args: map[string]any{"name": name}})
}

// Span records a complete event [tsUS, tsUS+durUS] on track (pid, tid).
func (t *Timeline) Span(pid, tid int, name, cat string, tsUS, durUS float64, args map[string]any) {
	if durUS < 0 {
		durUS = 0
	}
	d := durUS
	t.evs = append(t.evs, tev{Name: name, Cat: cat, Ph: "X", Ts: tsUS, Dur: &d,
		Pid: pid, Tid: tid, Args: args})
}

// Instant records a zero-duration marker on track (pid, tid).
func (t *Timeline) Instant(pid, tid int, name, cat string, tsUS float64, args map[string]any) {
	t.evs = append(t.evs, tev{Name: name, Cat: cat, Ph: "i", Ts: tsUS,
		Pid: pid, Tid: tid, S: "t", Args: args})
}

// Events returns the number of recorded events (metadata excluded).
func (t *Timeline) Events() int { return len(t.evs) }

// Export writes the timeline as Chrome trace-event JSON. Events are
// emitted metadata first, then sorted by (ts, pid, tid) with a stable
// sort so insertion order breaks ties deterministically.
func (t *Timeline) Export(w io.Writer) error {
	all := make([]tev, 0, len(t.meta)+len(t.evs))
	all = append(all, t.meta...)
	body := make([]tev, len(t.evs))
	copy(body, t.evs)
	sort.SliceStable(body, func(i, j int) bool {
		if body[i].Ts != body[j].Ts {
			return body[i].Ts < body[j].Ts
		}
		if body[i].Pid != body[j].Pid {
			return body[i].Pid < body[j].Pid
		}
		return body[i].Tid < body[j].Tid
	})
	all = append(all, body...)
	enc := json.NewEncoder(w)
	return enc.Encode(struct {
		TraceEvents     []tev  `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}{TraceEvents: all, DisplayTimeUnit: "ms"})
}

// CSpan is one cycle-domain span recorded inside the cluster, before the
// cycle→wall-time anchoring is known. End == Start encodes an instant.
type CSpan struct {
	Tid   int
	Name  string
	Cat   string
	Start uint64
	End   uint64
	Args  map[string]any
}

// ClusterTL collects cycle-domain spans during a cluster run. The
// accelerator-side components (cpu, dma, hwsync, mem, cluster) append to
// it in cluster-cycle units; after each run the offload runtime drains it
// into the wall-clock Timeline with the anchoring of that attempt
// (DrainInto). A nil *ClusterTL disables recording at every hook site.
type ClusterTL struct {
	Spans []CSpan
}

// Span records a cycle-domain complete span on track tid.
func (r *ClusterTL) Span(tid int, name, cat string, start, end uint64, args map[string]any) {
	r.Spans = append(r.Spans, CSpan{Tid: tid, Name: name, Cat: cat,
		Start: start, End: end, Args: args})
}

// Instant records a cycle-domain marker on track tid.
func (r *ClusterTL) Instant(tid int, name, cat string, at uint64, args map[string]any) {
	r.Spans = append(r.Spans, CSpan{Tid: tid, Name: name, Cat: cat,
		Start: at, End: at, Args: args})
}

// DrainInto converts the recorded cycle-domain spans to wall-clock events
// under pid, mapping cluster cycle X to baseUS + (X-baseCycle)*usPerCycle,
// and clears the recorder for the next attempt.
func (r *ClusterTL) DrainInto(tl *Timeline, pid int, baseCycle uint64, baseUS, usPerCycle float64) {
	for _, s := range r.Spans {
		ts := baseUS + float64(s.Start-baseCycle)*usPerCycle
		if s.End == s.Start {
			tl.Instant(pid, s.Tid, s.Name, s.Cat, ts, s.Args)
			continue
		}
		tl.Span(pid, s.Tid, s.Name, s.Cat, ts, float64(s.End-s.Start)*usPerCycle, s.Args)
	}
	r.Spans = r.Spans[:0]
}

// Observer bundles the two observability halves for cluster attachment.
// Attr must be non-nil (cluster.AttachObs normalizes); TL may be nil for
// attribution-only observation.
type Observer struct {
	Attr *Attribution
	TL   *ClusterTL
}

// KB formats a byte count for span args.
func KB(n int) string {
	if n >= 1024 && n%1024 == 0 {
		return fmt.Sprintf("%d KiB", n/1024)
	}
	return fmt.Sprintf("%d B", n)
}
