// Package obs is the cycle-attributed observability layer (DESIGN.md §10).
//
// It has two independent halves, both optional and both zero-cost when
// detached:
//
//   - Attribution: every simulated cycle of every core is classified into
//     exactly one Class (issue, load-use hazard, TCDM bank conflict, I$
//     miss refill, extra memory latency, barrier/event wait, sleep, DMA
//     wait, halted). The counters are plain per-core uint64 arrays touched
//     only by the simulation goroutine that owns the cluster — lock-free
//     by construction — and the invariant "sum over classes == cluster
//     cycles" holds exactly for every core, including cycles credited in
//     bulk by the idle fast-forward (cpu.Core.CreditIdle).
//
//   - Timeline: an offload-level span timeline (host protocol phases, SPI
//     bursts including retransmissions, DMA transfers, per-core
//     run/stall/sleep spans, watchdog and retry events) exported as Chrome
//     trace-event JSON, loadable in Perfetto or chrome://tracing.
//
// The package deliberately imports nothing from the rest of the simulator
// so every layer (cpu, mem, dma, hwsync, cluster, spilink, core) can hook
// into it without cycles. Hooks follow the fault-injector idiom: a nil
// pointer means disabled, and every hot-path site guards with a single
// nil check.
package obs

import "fmt"

// Class is the attribution bucket a simulated core cycle falls into.
// Exactly one class is charged per core per cycle; DESIGN.md §10 defines
// the precedence when several conditions hold at once.
type Class uint8

const (
	// Issue: the core issued an instruction this cycle, or is completing
	// the trailing cycles of a multi-cycle ALU op (mul, div, ...).
	Issue Class = iota
	// LoadUse: single-cycle load-use hazard bubble.
	LoadUse
	// Conflict: parked on a TCDM bank conflict (arbitration denied).
	Conflict
	// ICache: stalled waiting for an instruction-cache miss refill.
	ICache
	// ExtMem: extra latency of a non-TCDM data access (L2/peripheral
	// wait states, or the second bank cycle of an unaligned access).
	ExtMem
	// Sync: barrier/event synchronization — asleep at a barrier, spinning
	// on a contended hardware mutex, or paying the wake-up latency after
	// a barrier release.
	Sync
	// Sleep: asleep in WFE waiting for an event (the OpenMP slave idle
	// loop), or paying the wake-up latency after an event arrival.
	Sleep
	// DMAWait: issuing a DMA status poll while the DMA engine is busy
	// (the dma_wait spin loop of the device runtime).
	DMAWait
	// Halted: cycles after the core halted (trap or clean exit) while the
	// rest of the cluster keeps running. Charging these keeps the per-core
	// class sum exactly equal to the cluster cycle count.
	Halted

	NumClasses = iota
)

var classNames = [NumClasses]string{
	"issue", "load-use", "conflict", "icache", "extmem",
	"sync", "sleep", "dma-wait", "halted",
}

func (c Class) String() string {
	if int(c) < len(classNames) {
		return classNames[c]
	}
	return fmt.Sprintf("class(%d)", uint8(c))
}

// ClassNames lists all attribution classes in charge order (the order of
// the Class constants), for table headers.
func ClassNames() [NumClasses]string { return classNames }

// CoreObs holds the per-core attribution counters. It is embedded in
// Attribution and handed to cpu.Core as a nilable pointer; all methods
// are called with the receiver known non-nil from the hot path.
type CoreObs struct {
	// C counts cycles per class. Exported (and JSON-tagged) so
	// attributions survive the sweep run cache round-trip.
	C [NumClasses]uint64 `json:"c"`

	// dmaPoll marks that the instruction currently completing its memory
	// access was a DMA status poll that observed a busy engine; the issue
	// cycle is then charged to DMAWait instead of Issue. One-shot.
	dmaPoll bool

	// TL, when non-nil, receives cycle-domain spans for this core's
	// track (I$ refill stalls, wake-up latency). Tid is the timeline
	// track the spans land on.
	TL  *ClusterTL `json:"-"`
	Tid int        `json:"-"`
}

// Tick charges one cycle to class cl.
func (o *CoreObs) Tick(cl Class) { o.C[cl]++ }

// Credit charges n cycles to class cl (idle fast-forward bulk credit).
func (o *CoreObs) Credit(cl Class, n uint64) { o.C[cl] += n }

// MarkDMAPoll flags the in-flight memory access as a DMA-busy status
// poll; consumed by the next TickIssueMem.
func (o *CoreObs) MarkDMAPoll() { o.dmaPoll = true }

// TickIssueMem charges the issue cycle of a completed memory access:
// DMAWait if the access was a busy-DMA status poll, Issue otherwise.
func (o *CoreObs) TickIssueMem() {
	if o.dmaPoll {
		o.dmaPoll = false
		o.C[DMAWait]++
		return
	}
	o.C[Issue]++
}

// Total is the sum over all classes — exactly the number of cluster
// cycles this core was attributed.
func (o *CoreObs) Total() uint64 {
	var t uint64
	for _, v := range o.C {
		t += v
	}
	return t
}

// Attribution accumulates per-core cycle attribution for one cluster (or
// across several sequential runs of rebuilt clusters, e.g. watchdog
// retries: attach the same Attribution to each and the counters add up).
type Attribution struct {
	Cores []CoreObs `json:"cores"`
}

// NewAttribution returns an Attribution sized for n cores.
func NewAttribution(n int) *Attribution {
	return &Attribution{Cores: make([]CoreObs, n)}
}

// Ensure grows the attribution to cover at least n cores.
func (a *Attribution) Ensure(n int) {
	for len(a.Cores) < n {
		a.Cores = append(a.Cores, CoreObs{})
	}
}

// Sum returns the cluster-wide per-class totals.
func (a *Attribution) Sum() [NumClasses]uint64 {
	var s [NumClasses]uint64
	for i := range a.Cores {
		for c, v := range a.Cores[i].C {
			s[c] += v
		}
	}
	return s
}

// Total returns the total attributed core-cycles (sum over cores and
// classes). For a single clean run this equals cores × cluster cycles.
func (a *Attribution) Total() uint64 {
	var t uint64
	for i := range a.Cores {
		t += a.Cores[i].Total()
	}
	return t
}
