package obs

import (
	"bytes"
	"encoding/json"
	"testing"
)

func TestAttributionSums(t *testing.T) {
	a := NewAttribution(2)
	a.Cores[0].Tick(Issue)
	a.Cores[0].Tick(Issue)
	a.Cores[0].Credit(Sleep, 10)
	a.Cores[1].Tick(Conflict)
	a.Cores[1].MarkDMAPoll()
	a.Cores[1].TickIssueMem() // consumes the poll mark -> DMAWait
	a.Cores[1].TickIssueMem() // plain memory issue -> Issue

	if got := a.Cores[0].Total(); got != 12 {
		t.Fatalf("core0 total = %d, want 12", got)
	}
	s := a.Sum()
	if s[Issue] != 3 || s[Sleep] != 10 || s[Conflict] != 1 || s[DMAWait] != 1 {
		t.Fatalf("sum = %v", s)
	}
	if a.Total() != 15 {
		t.Fatalf("total = %d, want 15", a.Total())
	}

	// JSON round-trip must preserve counters (run-cache requirement).
	b, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	var back Attribution
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if back.Total() != a.Total() || back.Sum() != s {
		t.Fatalf("round-trip mismatch: %v vs %v", back.Sum(), s)
	}
}

func TestClassNames(t *testing.T) {
	seen := map[string]bool{}
	for c := Class(0); c < NumClasses; c++ {
		n := c.String()
		if n == "" || seen[n] {
			t.Fatalf("class %d has empty or duplicate name %q", c, n)
		}
		seen[n] = true
	}
}

// TestTimelineExport checks that the emitted JSON is a valid Chrome
// trace-event document: a traceEvents array whose entries carry ph, ts,
// pid and tid, with metadata records first.
func TestTimelineExport(t *testing.T) {
	tl := NewTimeline()
	tl.NameProcess(PidHost, "host")
	tl.NameThread(PidHost, TidPhases, "phases")
	tl.Span(PidHost, TidPhases, "write input", "phase", 10, 5, map[string]any{"bytes": 64})
	tl.Instant(PidHost, TidEvents, "watchdog trip", "recovery", 12, nil)
	tl.Span(PidAccel, TidCore0, "run", "run", 11, 3, nil)

	var buf bytes.Buffer
	if err := tl.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string   `json:"name"`
			Ph   string   `json:"ph"`
			Ts   *float64 `json:"ts"`
			Dur  *float64 `json:"dur"`
			Pid  *int     `json:"pid"`
			Tid  *int     `json:"tid"`
		} `json:"traceEvents"`
		DisplayTimeUnit string `json:"displayTimeUnit"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("export is not valid JSON: %v\n%s", err, buf.String())
	}
	if len(doc.TraceEvents) != 5 {
		t.Fatalf("got %d events, want 5", len(doc.TraceEvents))
	}
	if doc.TraceEvents[0].Ph != "M" || doc.TraceEvents[1].Ph != "M" {
		t.Fatalf("metadata records must come first: %+v", doc.TraceEvents[:2])
	}
	for i, e := range doc.TraceEvents {
		if e.Ph == "" || e.Pid == nil || e.Ts == nil {
			t.Fatalf("event %d missing required fields: %+v", i, e)
		}
		if e.Ph == "X" && (e.Dur == nil || *e.Dur < 0) {
			t.Fatalf("complete event %d missing/negative dur: %+v", i, e)
		}
	}
	// Body events sorted by ts.
	last := -1.0
	for _, e := range doc.TraceEvents[2:] {
		if *e.Ts < last {
			t.Fatalf("events not time-sorted")
		}
		last = *e.Ts
	}
}

func TestClusterTLDrain(t *testing.T) {
	var rec ClusterTL
	rec.Span(TidCore0, "sleep", "sleep", 100, 150, nil)
	rec.Instant(TidSync, "send", "sync", 120, nil)

	tl := NewTimeline()
	// Anchor: cycle 100 == 7.0 us, 0.01 us per cycle (100 MHz).
	rec.DrainInto(tl, PidAccel, 100, 7.0, 0.01)
	if len(rec.Spans) != 0 {
		t.Fatalf("drain must clear the recorder")
	}
	if tl.Events() != 2 {
		t.Fatalf("got %d events, want 2", tl.Events())
	}
	var buf bytes.Buffer
	if err := tl.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Ts  float64  `json:"ts"`
			Dur *float64 `json:"dur"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatal(err)
	}
	if doc.TraceEvents[0].Ts != 7.0 || *doc.TraceEvents[0].Dur != 0.5 {
		t.Fatalf("span anchored wrong: %+v", doc.TraceEvents[0])
	}
	if doc.TraceEvents[1].Ts != 7.2 {
		t.Fatalf("instant anchored wrong: %+v", doc.TraceEvents[1])
	}
}
