// Package trace provides execution tracing for the simulated cluster: a
// per-core instruction trace in a readable one-line-per-retirement format,
// plus cluster-level events (barriers, DMA transfers, EOC). It is the
// debugging companion of cmd/hetsim's -trace flag and of kernel
// development with cmd/hetasm.
//
// Tracing hooks into the cpu.Core observer callback; with no tracer
// attached the simulator pays nothing.
package trace

import (
	"fmt"
	"io"
	"sync"

	"hetsim/internal/isa"
)

// Event is one traced occurrence.
type Event struct {
	Cycle uint64
	Core  int
	Kind  Kind
	PC    uint32
	Inst  isa.Inst
	Note  string
}

// Kind classifies trace events.
type Kind uint8

const (
	// KindRetire is an instruction retirement.
	KindRetire Kind = iota
	// KindSleep is a core going to sleep (WFE or barrier).
	KindSleep
	// KindWake is a core waking up.
	KindWake
	// KindNote is a free-form cluster event (DMA start, EOC, ...).
	KindNote
)

func (k Kind) String() string {
	switch k {
	case KindRetire:
		return "retire"
	case KindSleep:
		return "sleep"
	case KindWake:
		return "wake"
	case KindNote:
		return "note"
	}
	return "?"
}

// Tracer collects events. It is safe for use from a single simulation
// goroutine; Flush may be called from anywhere.
type Tracer struct {
	mu      sync.Mutex
	w       io.Writer
	n       uint64
	max     uint64
	dropped uint64

	// Filter limits the trace to one core (-1 = all).
	CoreFilter int
}

// New builds a tracer writing formatted events to w, stopping after max
// events (0 = unlimited).
func New(w io.Writer, max uint64) *Tracer {
	return &Tracer{w: w, max: max, CoreFilter: -1}
}

// Emit records one event.
func (t *Tracer) Emit(e Event) {
	if t == nil {
		return
	}
	if t.CoreFilter >= 0 && e.Core != t.CoreFilter && e.Kind != KindNote {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.max > 0 && t.n >= t.max {
		// Past the cap the tracer never writes, but it must keep counting:
		// a truncated trace that also loses the count of what it dropped
		// would read as "nothing else happened".
		t.dropped++
		return
	}
	t.n++
	var err error
	switch e.Kind {
	case KindRetire:
		_, err = fmt.Fprintf(t.w, "%10d c%d  %08x  %v\n", e.Cycle, e.Core, e.PC, e.Inst)
	case KindNote:
		_, err = fmt.Fprintf(t.w, "%10d --  %s\n", e.Cycle, e.Note)
	default:
		_, err = fmt.Fprintf(t.w, "%10d c%d  %s %s\n", e.Cycle, e.Core, e.Kind, e.Note)
	}
	if err != nil {
		// A failing sink must not kill the simulation, but fault/retry
		// evidence silently vanishing is worse than a lossy trace: count
		// the event as dropped so Dropped() can surface the loss.
		t.dropped++
	}
	if t.max > 0 && t.n == t.max {
		fmt.Fprintf(t.w, "... trace truncated after %d events ...\n", t.max)
	}
}

// Count returns the number of events emitted so far.
func (t *Tracer) Count() uint64 {
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.n
}

// Dropped returns the number of events that were not written to the sink:
// emits past the truncation cap plus events whose formatted output failed
// to write. A non-zero value means the trace on disk is incomplete and
// should not be trusted as evidence of what did not happen.
func (t *Tracer) Dropped() uint64 {
	if t == nil {
		return 0
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	return t.dropped
}
