package trace_test

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"hetsim/internal/asm"
	"hetsim/internal/cluster"
	"hetsim/internal/isa"
	"hetsim/internal/trace"
)

func TestTracerCapturesRetirements(t *testing.T) {
	p, err := asm.Assemble("t", `
    mfspr a0, 0
    sfeqi a0, 0
    bnf park
    addi a1, r0, 7
    trap 0
park:
    wfe
    j park
`, asm.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	var sb strings.Builder
	tr := trace.New(&sb, 0)
	cl := cluster.New(cluster.PULPConfig())
	if err := cl.LoadProgram(p, true); err != nil {
		t.Fatal(err)
	}
	cl.AttachTracer(tr)
	cl.Start(p.Entry)
	if _, err := cl.Run(100_000); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"mfspr", "sfeqi", "addi", "c0", "c3"} {
		if !strings.Contains(out, want) {
			t.Errorf("trace lacks %q", want)
		}
	}
	if tr.Count() == 0 {
		t.Fatal("no events")
	}
}

func TestTracerTruncation(t *testing.T) {
	var sb strings.Builder
	tr := trace.New(&sb, 3)
	for i := 0; i < 10; i++ {
		tr.Emit(trace.Event{Cycle: uint64(i), Kind: trace.KindRetire, Inst: isa.Inst{Op: isa.NOP}})
	}
	if tr.Count() != 3 {
		t.Fatalf("count = %d", tr.Count())
	}
	// Post-cap emits must never write, but must keep counting into
	// Dropped(): Count+Dropped always equals the events offered.
	if tr.Dropped() != 7 {
		t.Fatalf("Dropped = %d, want 7", tr.Dropped())
	}
	if got := tr.Count() + tr.Dropped(); got != 10 {
		t.Fatalf("Count+Dropped = %d, want 10", got)
	}
	out := sb.String()
	if !strings.Contains(out, "truncated") {
		t.Error("no truncation marker")
	}
	if strings.Count(out, "\n") != 4 { // 3 events + the truncation marker
		t.Errorf("post-cap emits leaked into the sink:\n%s", out)
	}
}

func TestTracerCoreFilter(t *testing.T) {
	var sb strings.Builder
	tr := trace.New(&sb, 0)
	tr.CoreFilter = 2
	tr.Emit(trace.Event{Core: 1, Kind: trace.KindRetire, Inst: isa.Inst{Op: isa.NOP}})
	tr.Emit(trace.Event{Core: 2, Kind: trace.KindRetire, Inst: isa.Inst{Op: isa.ADD}})
	tr.Emit(trace.Event{Core: 0, Kind: trace.KindNote, Note: "EOC"}) // notes pass the filter
	if strings.Contains(sb.String(), "nop") || !strings.Contains(sb.String(), "add") {
		t.Errorf("core filter failed:\n%s", sb.String())
	}
	if !strings.Contains(sb.String(), "EOC") {
		t.Error("notes should pass the core filter")
	}
}

func TestNilTracerIsSafe(t *testing.T) {
	var tr *trace.Tracer
	tr.Emit(trace.Event{Kind: trace.KindNote, Note: "x"}) // must not panic
}

func TestKindStrings(t *testing.T) {
	for k, want := range map[trace.Kind]string{
		trace.KindRetire: "retire", trace.KindSleep: "sleep",
		trace.KindWake: "wake", trace.KindNote: "note",
	} {
		if k.String() != want {
			t.Errorf("%v", k)
		}
	}
}

// failAfter fails every write after the first n.
type failAfter struct {
	n      int
	writes int
}

func (w *failAfter) Write(p []byte) (int, error) {
	w.writes++
	if w.writes > w.n {
		return 0, errors.New("sink full")
	}
	return len(p), nil
}

func TestTracerCountsDroppedEvents(t *testing.T) {
	tr := trace.New(&failAfter{n: 2}, 0)
	for i := 0; i < 5; i++ {
		tr.Emit(trace.Event{Cycle: uint64(i), Kind: trace.KindNote, Note: "evt"})
	}
	if tr.Count() != 5 {
		t.Errorf("Count = %d, want 5", tr.Count())
	}
	if tr.Dropped() != 3 {
		t.Errorf("Dropped = %d, want 3", tr.Dropped())
	}
	// A healthy sink drops nothing.
	ok := trace.New(&bytes.Buffer{}, 0)
	ok.Emit(trace.Event{Kind: trace.KindNote, Note: "fine"})
	if ok.Dropped() != 0 {
		t.Errorf("healthy sink dropped %d", ok.Dropped())
	}
	// Nil tracer stays inert.
	var nilTr *trace.Tracer
	if nilTr.Dropped() != 0 {
		t.Error("nil tracer dropped events")
	}
}
