package dma

import (
	"strings"
	"testing"

	"hetsim/internal/hw"
)

// fakeMem is a flat memory with a programmable per-cycle TCDM claim budget.
type fakeMem struct {
	words     map[uint32]uint32
	tcdmLo    uint32
	tcdmHi    uint32
	claimsMax int
	claims    int
}

func newFakeMem() *fakeMem {
	return &fakeMem{
		words:     make(map[uint32]uint32),
		tcdmLo:    hw.TCDMBase,
		tcdmHi:    hw.TCDMBase + hw.DefaultTCDMSize,
		claimsMax: 1 << 30,
	}
}

func (m *fakeMem) IsTCDM(addr uint32) bool { return addr >= m.tcdmLo && addr < m.tcdmHi }

func (m *fakeMem) ClaimTCDM(addr uint32) bool {
	if m.claims >= m.claimsMax {
		return false
	}
	m.claims++
	return true
}

func (m *fakeMem) ReadWord(addr uint32) (uint32, error) {
	return m.words[addr], nil
}

func (m *fakeMem) WriteWord(addr uint32, v uint32) error {
	m.words[addr] = v
	return nil
}

func (m *fakeMem) cycle() { m.claims = 0 }

func run(e *Engine, m *fakeMem, maxCycles int) int {
	for c := 0; c < maxCycles; c++ {
		if !e.Busy() {
			return c
		}
		m.cycle()
		e.Step()
	}
	return maxCycles
}

func TestTransferMovesOneWordPerCycle(t *testing.T) {
	m := newFakeMem()
	e := New(m)
	for i := uint32(0); i < 16; i++ {
		m.words[hw.L2Base+4*i] = 0x100 + i
	}
	if err := e.Start(0, hw.L2Base, hw.TCDMBase, 64); err != nil {
		t.Fatal(err)
	}
	cycles := run(e, m, 1000)
	if cycles != 16 {
		t.Errorf("16-word transfer took %d cycles", cycles)
	}
	for i := uint32(0); i < 16; i++ {
		if m.words[hw.TCDMBase+4*i] != 0x100+i {
			t.Errorf("word %d not copied", i)
		}
	}
	if e.Beats != 16 || e.BusyCycles != 16 {
		t.Errorf("stats: beats=%d busy=%d", e.Beats, e.BusyCycles)
	}
}

func TestArbitrationStallsBeats(t *testing.T) {
	m := newFakeMem()
	m.claimsMax = 0 // TCDM never grants
	e := New(m)
	if err := e.Start(0, hw.L2Base, hw.TCDMBase, 8); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		e.Step()
	}
	if e.Beats != 0 {
		t.Fatalf("beats despite denied claims: %d", e.Beats)
	}
	if e.BusyCycles != 10 {
		t.Fatalf("busy cycles should count stalled attempts: %d", e.BusyCycles)
	}
	m.claimsMax = 1 << 30
	if c := run(e, m, 100); c != 2 {
		t.Fatalf("remaining transfer took %d cycles", c)
	}
}

func TestChannelsRoundRobin(t *testing.T) {
	m := newFakeMem()
	e := New(m)
	if err := e.Start(0, hw.L2Base, hw.TCDMBase, 8); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(1, hw.L2Base+0x100, hw.TCDMBase+0x100, 8); err != nil {
		t.Fatal(err)
	}
	if e.BusyMask() != 0b11 {
		t.Fatalf("busy mask %b", e.BusyMask())
	}
	// One word per cycle total: 4 words take 4 cycles regardless of channel
	// count; channel 0 completes before channel 1 starts (priority order,
	// rr pointer advances on completion).
	if c := run(e, m, 100); c != 4 {
		t.Fatalf("two 2-word transfers took %d cycles", c)
	}
}

func TestRegisterInterface(t *testing.T) {
	m := newFakeMem()
	e := New(m)
	m.words[hw.L2Base] = 42
	if err := e.WriteReg(hw.DMASrc, hw.L2Base); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteReg(hw.DMADst, hw.TCDMBase); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteReg(hw.DMALen, 4); err != nil {
		t.Fatal(err)
	}
	if err := e.WriteReg(hw.DMAStart, 2); err != nil {
		t.Fatal(err)
	}
	if v, _ := e.ReadReg(hw.DMAStatus); v != 0b100 {
		t.Fatalf("status %b", v)
	}
	if v, _ := e.ReadReg(hw.DMASrc); v != hw.L2Base {
		t.Errorf("src readback %#x", v)
	}
	run(e, m, 10)
	if m.words[hw.TCDMBase] != 42 {
		t.Error("register-programmed transfer did not execute")
	}
	if err := e.WriteReg(0x40, 0); err == nil {
		t.Error("unknown register write must fail")
	}
	if _, err := e.ReadReg(0x40); err == nil {
		t.Error("unknown register read must fail")
	}
}

func TestStartValidation(t *testing.T) {
	e := New(newFakeMem())
	cases := []struct {
		ch            int
		src, dst, ln  uint32
		wantSubstring string
	}{
		{-1, 0, 0, 4, "invalid channel"},
		{hw.NumDMAChannels, 0, 0, 4, "invalid channel"},
		{0, 1, 0, 4, "unaligned"},
		{0, 0, 2, 4, "unaligned"},
		{0, 0, 0, 3, "unaligned"},
	}
	for _, c := range cases {
		err := e.Start(c.ch, c.src, c.dst, c.ln)
		if err == nil || !strings.Contains(err.Error(), c.wantSubstring) {
			t.Errorf("Start(%d,%#x,%#x,%d): %v", c.ch, c.src, c.dst, c.ln, err)
		}
	}
	// Zero-length transfers complete immediately.
	if err := e.Start(0, 0, 0, 0); err != nil || e.Busy() {
		t.Error("zero-length start should be a no-op")
	}
	// Double start on a busy channel.
	if err := e.Start(1, hw.L2Base, hw.TCDMBase, 8); err != nil {
		t.Fatal(err)
	}
	if err := e.Start(1, hw.L2Base, hw.TCDMBase, 8); err == nil {
		t.Error("busy channel must reject Start")
	}
}

func TestWriteRegStartInvalidChannel(t *testing.T) {
	e := New(newFakeMem())
	if err := e.WriteReg(hw.DMAStart, hw.NumDMAChannels); err == nil {
		t.Error("start of out-of-range channel must fail")
	}
}
