package dma

import (
	"math/bits"
	"testing"

	"hetsim/internal/fault"
	"hetsim/internal/hw"
)

// TestTransferCorruption checks the in-flight SEU model: with a rate-1
// injector every transferred word lands with exactly one flipped bit and
// is counted; detaching the injector restores clean transfers.
func TestTransferCorruption(t *testing.T) {
	m := newFakeMem()
	e := New(m)
	e.Inject = fault.New(fault.Config{Seed: 4, DMACorruptRate: 1})
	for i := uint32(0); i < 8; i++ {
		m.words[hw.L2Base+4*i] = 0xa5a5a5a5
	}
	if err := e.Start(0, hw.L2Base, hw.TCDMBase, 32); err != nil {
		t.Fatal(err)
	}
	run(e, m, 1000)
	for i := uint32(0); i < 8; i++ {
		got := m.words[hw.TCDMBase+4*i]
		if n := bits.OnesCount32(got ^ 0xa5a5a5a5); n != 1 {
			t.Fatalf("word %d: %d bits flipped, want 1 (%#x)", i, n, got)
		}
	}
	if e.Corrupted != 8 {
		t.Fatalf("Corrupted = %d, want 8", e.Corrupted)
	}

	// Reset keeps the injector (like the counters) but a zero-rate one
	// must leave the data untouched.
	e.Reset()
	e.Inject = fault.New(fault.Config{Seed: 4})
	if err := e.Start(0, hw.L2Base, hw.TCDMBase+0x100, 32); err != nil {
		t.Fatal(err)
	}
	run(e, m, 1000)
	for i := uint32(0); i < 8; i++ {
		if got := m.words[hw.TCDMBase+0x100+4*i]; got != 0xa5a5a5a5 {
			t.Fatalf("zero-rate transfer corrupted word %d: %#x", i, got)
		}
	}
	if e.Corrupted != 8 {
		t.Fatalf("zero-rate transfer advanced Corrupted to %d", e.Corrupted)
	}
}
