// Package dma models the PULP cluster's lightweight multi-channel DMA
// (Rossi et al., CF'14): word-granular transfers between L2 and the TCDM
// with a direct connection to the TCDM banks (so DMA traffic competes with
// core accesses at bank granularity), moving one word per cycle.
package dma

import (
	"fmt"

	"hetsim/internal/fault"
	"hetsim/internal/hw"
	"hetsim/internal/obs"
)

// Memory is the subset of the memory system the DMA needs: direct word
// moves plus TCDM bank arbitration for the L1 side of each beat.
type Memory interface {
	// ClaimTCDM arbitrates one TCDM access at addr for this cycle.
	ClaimTCDM(addr uint32) bool
	// ReadWord / WriteWord move data; addr may be in TCDM or L2.
	ReadWord(addr uint32) (uint32, error)
	WriteWord(addr uint32, v uint32) error
	// IsTCDM reports whether addr falls in the TCDM.
	IsTCDM(addr uint32) bool
}

type channel struct {
	src, dst uint32
	length   uint32
	pos      uint32
	busy     bool
	start    uint64 // cycle the transfer was launched (timeline span)
}

// Engine is the DMA controller.
type Engine struct {
	mem  Memory
	ch   [hw.NumDMAChannels]channel
	rr   int // round-robin pointer across busy channels
	busy int // busy-channel count (fast path for the per-cycle Step)

	// Programming latches (written via the register interface, committed
	// by a write to DMAStart).
	src, dst, length uint32

	// Inject, when set, rolls one in-flight bit-flip per beat
	// (fault.DMACorrupt): the lightweight DMA has no ECC, so a corrupted
	// beat lands silently. Nil costs one compare per beat. Wiring, not
	// transfer state: Reset keeps it, like the activity counters.
	Inject *fault.Injector

	// TL, when non-nil, receives one timeline span per completed transfer
	// on the channel's track; Now is the cluster clock it is stamped with
	// (set by the cluster at construction). Wiring like Inject: Reset
	// keeps it, nil costs one compare per transfer boundary.
	TL  *obs.ClusterTL
	Now *uint64

	// BusyCycles counts cycles in which the engine moved (or tried to
	// move) data; feeds the chi_dma term of the power model.
	BusyCycles uint64
	// Beats counts words actually moved.
	Beats uint64
	// Corrupted counts beats that landed with an injected bit-flip.
	Corrupted uint64
	// Err records the first transfer error (bad address/alignment).
	Err error
}

// New builds a DMA engine over the given memory system.
func New(mem Memory) *Engine { return &Engine{mem: mem} }

// Reset aborts all in-flight transfers and clears the programming latches
// and error state (a cluster soft reset between offload attempts). The
// activity counters are kept: aborted transfers still consumed cycles.
func (e *Engine) Reset() {
	e.ch = [hw.NumDMAChannels]channel{}
	e.rr = 0
	e.busy = 0
	e.src, e.dst, e.length = 0, 0, 0
	e.Err = nil
}

// WriteReg handles a store to a DMA register (offset from hw.DMABase).
func (e *Engine) WriteReg(off uint32, v uint32) error {
	switch off {
	case hw.DMASrc:
		e.src = v
	case hw.DMADst:
		e.dst = v
	case hw.DMALen:
		e.length = v
	case hw.DMAStart:
		if v >= hw.NumDMAChannels {
			return fmt.Errorf("dma: start of invalid channel %d", v)
		}
		return e.Start(int(v), e.src, e.dst, e.length)
	default:
		return fmt.Errorf("dma: write to unknown register %#x", off)
	}
	return nil
}

// ReadReg handles a load from a DMA register.
func (e *Engine) ReadReg(off uint32) (uint32, error) {
	switch off {
	case hw.DMAStatus:
		return e.BusyMask(), nil
	case hw.DMASrc:
		return e.src, nil
	case hw.DMADst:
		return e.dst, nil
	case hw.DMALen:
		return e.length, nil
	}
	return 0, fmt.Errorf("dma: read of unknown register %#x", off)
}

// Start programs and launches a channel. Transfers must be word-aligned
// and word-granular, as on the real lightweight DMA.
func (e *Engine) Start(ch int, src, dst, length uint32) error {
	if ch < 0 || ch >= hw.NumDMAChannels {
		return fmt.Errorf("dma: invalid channel %d", ch)
	}
	if e.ch[ch].busy {
		return fmt.Errorf("dma: channel %d already busy", ch)
	}
	if src%4 != 0 || dst%4 != 0 || length%4 != 0 {
		return fmt.Errorf("dma: unaligned transfer src=%#x dst=%#x len=%d", src, dst, length)
	}
	if length == 0 {
		return nil
	}
	e.ch[ch] = channel{src: src, dst: dst, length: length, busy: true}
	if e.TL != nil && e.Now != nil {
		e.ch[ch].start = *e.Now
	}
	e.busy++
	return nil
}

// BusyMask returns the bitmask of busy channels (DMAStatus register).
func (e *Engine) BusyMask() uint32 {
	var m uint32
	for i := range e.ch {
		if e.ch[i].busy {
			m |= 1 << uint(i)
		}
	}
	return m
}

// Busy reports whether any channel is active. It is O(1) (the engine
// tracks its busy-channel count), since the cluster's run loop consults it
// every cycle.
func (e *Engine) Busy() bool { return e.busy > 0 }

// Step advances the engine by one cycle: it picks the next busy channel
// round-robin and moves one word if the TCDM bank arbitration allows it.
func (e *Engine) Step() {
	if e.busy == 0 || e.Err != nil {
		return
	}
	// Pick the next busy channel.
	idx := -1
	for i := 0; i < hw.NumDMAChannels; i++ {
		c := (e.rr + i) % hw.NumDMAChannels
		if e.ch[c].busy {
			idx = c
			break
		}
	}
	if idx < 0 {
		return
	}
	e.BusyCycles++
	c := &e.ch[idx]
	src := c.src + c.pos
	dst := c.dst + c.pos

	// Claim the TCDM side(s) of this beat; on denial, retry next cycle.
	if e.mem.IsTCDM(src) && !e.mem.ClaimTCDM(src) {
		return
	}
	if e.mem.IsTCDM(dst) && !e.mem.ClaimTCDM(dst) {
		return
	}
	v, err := e.mem.ReadWord(src)
	if err == nil {
		if e.Inject != nil {
			if mask := e.Inject.SEUMask(fault.DMACorrupt, 32); mask != 0 {
				v ^= mask
				e.Corrupted++
			}
		}
		err = e.mem.WriteWord(dst, v)
	}
	if err != nil {
		e.Err = fmt.Errorf("dma: channel %d at +%#x: %w", idx, c.pos, err)
		c.busy = false
		e.busy--
		return
	}
	e.Beats++
	c.pos += 4
	if c.pos >= c.length {
		c.busy = false
		e.busy--
		e.rr = (idx + 1) % hw.NumDMAChannels
		if e.TL != nil && e.Now != nil {
			// Completion cycle is the current beat's cycle + 1 (the word
			// lands at the end of this cycle).
			e.TL.Span(obs.TidDMA0+idx, fmt.Sprintf("xfer %s", obs.KB(int(c.length))),
				"dma", c.start, *e.Now+1, map[string]any{"bytes": c.length, "src": c.src, "dst": c.dst})
		}
	}
}
