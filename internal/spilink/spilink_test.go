package spilink

import (
	"bytes"
	"testing"

	"hetsim/internal/mem"
)

func TestByteRate(t *testing.T) {
	spi := Config{Lanes: 1, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 4096}
	if got := spi.ByteRate(); got != 1e6 {
		t.Errorf("SPI @8MHz = %v B/s, want 1e6", got)
	}
	qspi := Config{Lanes: 4, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 4096}
	if got := qspi.ByteRate(); got != 4e6 {
		t.Errorf("QSPI @8MHz = %v B/s, want 4e6", got)
	}
}

func TestFramingOverhead(t *testing.T) {
	c := Config{Lanes: 1, ClockHz: 1e6, CmdBytes: 9, MaxBurst: 100}
	if got := c.wireBytes(0); got != 0 {
		t.Errorf("empty transfer: %d", got)
	}
	if got := c.wireBytes(100); got != 109 {
		t.Errorf("one burst: %d, want 109", got)
	}
	if got := c.wireBytes(101); got != 101+2*9 {
		t.Errorf("two bursts: %d, want 119", got)
	}
	// Time scales with wire bytes.
	t1 := c.TransferTime(100)
	t2 := c.TransferTime(200)
	if !(t2 > t1 && t1 > 0) {
		t.Errorf("times not increasing: %v %v", t1, t2)
	}
	// QSPI is 4x faster than SPI at the same clock.
	spi := Config{Lanes: 1, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 4096}
	qspi := Config{Lanes: 4, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 4096}
	r := spi.TransferTime(4096) / qspi.TransferTime(4096)
	if r < 3.9 || r > 4.1 {
		t.Errorf("SPI/QSPI time ratio = %.2f, want ~4", r)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	l2 := mem.NewSRAM(0x1C000000, 64*1024)
	link := New(DefaultConfig(16e6))
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	tw, err := link.Write(l2, 0x1C000400, payload)
	if err != nil || tw <= 0 {
		t.Fatalf("write: %v %v", tw, err)
	}
	got, tr, err := link.Read(l2, 0x1C000400, 1000)
	if err != nil || tr <= 0 {
		t.Fatalf("read: %v %v", tr, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across the link")
	}
	if link.TxBytes != 1000 || link.RxBytes != 1000 || link.Transactions != 2 {
		t.Errorf("stats: %+v", link)
	}
	if link.EnergyJ <= 0 || link.BusySeconds <= 0 {
		t.Errorf("no energy/time recorded")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	l2 := mem.NewSRAM(0x1C000000, 1024)
	link := New(DefaultConfig(16e6))
	if _, err := link.Write(l2, 0x1C000400, make([]byte, 2048)); err == nil {
		t.Error("overflowing write must fail")
	}
	if _, _, err := link.Read(l2, 0x1C000000, 4096); err == nil {
		t.Error("overflowing read must fail")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig(16e6)
	if c.Lanes != 4 {
		t.Error("the evaluation uses the QSPI interface")
	}
	if c.ClockHz != 8e6 {
		t.Errorf("SPI clock should be half the MCU clock, got %v", c.ClockHz)
	}
}
