package spilink

import (
	"bytes"
	"errors"
	"testing"

	"hetsim/internal/fault"
	"hetsim/internal/mem"
)

func TestByteRate(t *testing.T) {
	spi := Config{Lanes: 1, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 4096}
	if got := spi.ByteRate(); got != 1e6 {
		t.Errorf("SPI @8MHz = %v B/s, want 1e6", got)
	}
	qspi := Config{Lanes: 4, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 4096}
	if got := qspi.ByteRate(); got != 4e6 {
		t.Errorf("QSPI @8MHz = %v B/s, want 4e6", got)
	}
}

func TestFramingOverhead(t *testing.T) {
	c := Config{Lanes: 1, ClockHz: 1e6, CmdBytes: 9, MaxBurst: 100}
	if got := c.wireBytes(0); got != 0 {
		t.Errorf("empty transfer: %d", got)
	}
	if got := c.wireBytes(100); got != 109 {
		t.Errorf("one burst: %d, want 109", got)
	}
	if got := c.wireBytes(101); got != 101+2*9 {
		t.Errorf("two bursts: %d, want 119", got)
	}
	// Time scales with wire bytes.
	t1 := c.TransferTime(100)
	t2 := c.TransferTime(200)
	if !(t2 > t1 && t1 > 0) {
		t.Errorf("times not increasing: %v %v", t1, t2)
	}
	// QSPI is 4x faster than SPI at the same clock.
	spi := Config{Lanes: 1, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 4096}
	qspi := Config{Lanes: 4, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 4096}
	r := spi.TransferTime(4096) / qspi.TransferTime(4096)
	if r < 3.9 || r > 4.1 {
		t.Errorf("SPI/QSPI time ratio = %.2f, want ~4", r)
	}
}

func TestWriteReadRoundtrip(t *testing.T) {
	l2 := mem.NewSRAM(0x1C000000, 64*1024)
	link := New(DefaultConfig(16e6))
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i * 7)
	}
	tw, err := link.Write(l2, 0x1C000400, payload)
	if err != nil || tw <= 0 {
		t.Fatalf("write: %v %v", tw, err)
	}
	got, tr, err := link.Read(l2, 0x1C000400, 1000)
	if err != nil || tr <= 0 {
		t.Fatalf("read: %v %v", tr, err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("payload corrupted across the link")
	}
	if link.TxBytes != 1000 || link.RxBytes != 1000 || link.Transactions != 2 {
		t.Errorf("stats: %+v", link)
	}
	if link.EnergyJ <= 0 || link.BusySeconds <= 0 {
		t.Errorf("no energy/time recorded")
	}
}

func TestOutOfRangeAccess(t *testing.T) {
	l2 := mem.NewSRAM(0x1C000000, 1024)
	link := New(DefaultConfig(16e6))
	if _, err := link.Write(l2, 0x1C000400, make([]byte, 2048)); err == nil {
		t.Error("overflowing write must fail")
	}
	if _, _, err := link.Read(l2, 0x1C000000, 4096); err == nil {
		t.Error("overflowing read must fail")
	}
}

func TestDefaultConfigMatchesPaper(t *testing.T) {
	c := DefaultConfig(16e6)
	if c.Lanes != 4 {
		t.Error("the evaluation uses the QSPI interface")
	}
	if c.ClockHz != 8e6 {
		t.Errorf("SPI clock should be half the MCU clock, got %v", c.ClockHz)
	}
}

func TestBurstSplittingEdgeCases(t *testing.T) {
	c := Config{Lanes: 1, ClockHz: 1e6, CmdBytes: 9, MaxBurst: 256}
	cases := []struct{ payload, wire int }{
		{0, 0},                 // nothing on the wire
		{255, 255 + 9},         // one partial burst
		{256, 256 + 9},         // exactly MaxBurst: still one burst
		{257, 257 + 2*9},       // MaxBurst+1: a second burst for one byte
		{512, 512 + 2*9},       // exactly two bursts
		{3 * 256, 3*256 + 3*9}, // exact multiple
		{3*256 + 1, 3*256 + 1 + 4*9},
	}
	for _, tc := range cases {
		if got := c.wireBytes(tc.payload); got != tc.wire {
			t.Errorf("wireBytes(%d) = %d, want %d", tc.payload, got, tc.wire)
		}
	}
	// With CRC framing every burst pays 4 more trailer bytes.
	crc := c
	crc.CRC = true
	if got := crc.wireBytes(257); got != 257+2*(9+4) {
		t.Errorf("CRC wireBytes(257) = %d, want %d", got, 257+2*(9+4))
	}
	if got := crc.wireBytes(0); got != 0 {
		t.Errorf("CRC wireBytes(0) = %d, want 0", got)
	}
}

func TestCountersConsistentAcrossWriteRead(t *testing.T) {
	l2 := mem.NewSRAM(0x1C000000, 64*1024)
	link := New(Config{Lanes: 1, ClockHz: 1e6, CmdBytes: 9, MaxBurst: 256})
	sizes := []int{0, 1, 255, 256, 257, 1024}
	var wantTx uint64
	var wantBusy, wantE float64
	for i, n := range sizes {
		payload := make([]byte, n)
		for j := range payload {
			payload[j] = byte(i + j)
		}
		tw, err := link.Write(l2, 0x1C000000, payload)
		if err != nil {
			t.Fatalf("write %d bytes: %v", n, err)
		}
		wantTx += uint64(n)
		wantBusy += link.Cfg.TransferTime(n)
		wantE += link.Cfg.TransferEnergy(n)
		if n > 0 && tw <= 0 {
			t.Errorf("write of %d bytes took no time", n)
		}
		got, tr, err := link.Read(l2, 0x1C000000, uint32(n))
		if err != nil {
			t.Fatalf("read %d bytes: %v", n, err)
		}
		if !bytes.Equal(got, payload) {
			t.Fatalf("roundtrip of %d bytes corrupted", n)
		}
		wantBusy += link.Cfg.TransferTime(n)
		wantE += link.Cfg.TransferEnergy(n)
		_ = tr
	}
	if link.TxBytes != wantTx || link.RxBytes != wantTx {
		t.Errorf("payload counters: tx=%d rx=%d, want %d", link.TxBytes, link.RxBytes, wantTx)
	}
	if link.Transactions != uint64(2*len(sizes)) {
		t.Errorf("transactions = %d, want %d", link.Transactions, 2*len(sizes))
	}
	// BusySeconds and EnergyJ must equal the per-transfer framing math
	// exactly (accumulated in the same order the link accumulates).
	if link.BusySeconds != wantBusy {
		t.Errorf("BusySeconds = %v, want %v", link.BusySeconds, wantBusy)
	}
	if link.EnergyJ != wantE {
		t.Errorf("EnergyJ = %v, want %v", link.EnergyJ, wantE)
	}
}

func TestNewNormalizesConfig(t *testing.T) {
	l := New(Config{Lanes: 4, ClockHz: 8e6, CmdBytes: -3})
	if l.Cfg.MaxBurst != DefaultMaxBurst {
		t.Errorf("MaxBurst default = %d, want %d", l.Cfg.MaxBurst, DefaultMaxBurst)
	}
	if l.Cfg.CmdBytes != 0 {
		t.Errorf("negative CmdBytes not clamped: %d", l.Cfg.CmdBytes)
	}
	if l.Cfg.MaxRetransmits != DefaultMaxRetransmits {
		t.Errorf("MaxRetransmits default = %d, want %d", l.Cfg.MaxRetransmits, DefaultMaxRetransmits)
	}
}

func TestCRCRecoversCorruptedWrite(t *testing.T) {
	l2 := mem.NewSRAM(0x1C000000, 64*1024)
	link := New(Config{Lanes: 4, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 256, CRC: true})
	link.Inject = fault.New(fault.Config{Seed: 11, LinkCorruptRate: 1, MaxFaults: 3})
	payload := make([]byte, 1000)
	for i := range payload {
		payload[i] = byte(i)
	}
	tw, err := link.Write(l2, 0x1C000100, payload)
	if err != nil {
		t.Fatal(err)
	}
	if got := l2.ReadBytes(0x1C000100, 1000); !bytes.Equal(got, payload) {
		t.Fatal("CRC framing did not protect the payload")
	}
	if link.Retransmits != 3 || link.CRCErrors != 3 {
		t.Errorf("retransmits=%d crcErrors=%d, want 3", link.Retransmits, link.CRCErrors)
	}
	if link.RetransmittedBytes == 0 {
		t.Error("no retransmitted bytes recorded")
	}
	// The repeats must cost real time/energy versus a clean transfer.
	if clean := link.Cfg.TransferTime(1000); tw <= clean {
		t.Errorf("faulty transfer time %v not above clean %v", tw, clean)
	}
	if link.SilentFaults != 0 {
		t.Errorf("silent faults under CRC: %d", link.SilentFaults)
	}
}

func TestCRCRecoversDroppedRead(t *testing.T) {
	l2 := mem.NewSRAM(0x1C000000, 64*1024)
	link := New(Config{Lanes: 4, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 128, CRC: true})
	payload := make([]byte, 512)
	for i := range payload {
		payload[i] = byte(255 - i%251)
	}
	if _, err := link.Write(l2, 0x1C000200, payload); err != nil {
		t.Fatal(err)
	}
	link.Inject = fault.New(fault.Config{Seed: 5, LinkDropRate: 0.5, MaxFaults: 4})
	got, _, err := link.Read(l2, 0x1C000200, 512)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, payload) {
		t.Fatal("dropped response bursts not recovered")
	}
	if link.DroppedBursts == 0 || link.Retransmits == 0 {
		t.Errorf("drop counters: dropped=%d retransmits=%d", link.DroppedBursts, link.Retransmits)
	}
}

func TestWithoutCRCFaultsAreSilent(t *testing.T) {
	l2 := mem.NewSRAM(0x1C000000, 64*1024)
	link := New(Config{Lanes: 4, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 256})
	link.Inject = fault.New(fault.Config{Seed: 2, LinkCorruptRate: 1, MaxFaults: 1})
	payload := make([]byte, 300)
	for i := range payload {
		payload[i] = 0xA5
	}
	if _, err := link.Write(l2, 0x1C000300, payload); err != nil {
		t.Fatal(err)
	}
	if got := l2.ReadBytes(0x1C000300, 300); bytes.Equal(got, payload) {
		t.Fatal("injected corruption vanished without CRC framing")
	}
	if link.SilentFaults != 1 || link.Retransmits != 0 {
		t.Errorf("silent=%d retransmits=%d, want 1/0", link.SilentFaults, link.Retransmits)
	}
}

func TestRetransmissionLimitSurfacesTypedError(t *testing.T) {
	l2 := mem.NewSRAM(0x1C000000, 64*1024)
	link := New(Config{Lanes: 4, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 256, CRC: true, MaxRetransmits: 2})
	link.Inject = fault.New(fault.Config{Seed: 1, LinkCorruptRate: 1})
	_, err := link.Write(l2, 0x1C000000, make([]byte, 64))
	if !errors.Is(err, ErrLinkCRC) {
		t.Fatalf("want ErrLinkCRC, got %v", err)
	}
	// The wasted attempts are still charged.
	if link.BusySeconds <= 0 || link.EnergyJ <= 0 {
		t.Error("failed transfer cost nothing")
	}
	if link.TxBytes != 0 {
		t.Errorf("failed write counted %d payload bytes", link.TxBytes)
	}

	drop := New(Config{Lanes: 4, ClockHz: 8e6, CmdBytes: 9, MaxBurst: 256, CRC: true, MaxRetransmits: 2})
	drop.Inject = fault.New(fault.Config{Seed: 1, LinkDropRate: 1})
	if _, _, err := drop.Read(l2, 0x1C000000, 64); !errors.Is(err, ErrLinkDropped) {
		t.Fatalf("want ErrLinkDropped, got %v", err)
	}
}

func TestCleanPathUnchangedByInjectorPresence(t *testing.T) {
	// An attached but never-firing injector must not change time, energy
	// or counters versus the plain link (zero-cost abstraction).
	run := func(inject bool) *Link {
		l2 := mem.NewSRAM(0x1C000000, 64*1024)
		link := New(DefaultConfig(16e6))
		if inject {
			link.Inject = fault.New(fault.Config{Seed: 99})
		}
		payload := make([]byte, 5000)
		if _, err := link.Write(l2, 0x1C000000, payload); err != nil {
			t.Fatal(err)
		}
		if _, _, err := link.Read(l2, 0x1C000000, 5000); err != nil {
			t.Fatal(err)
		}
		return link
	}
	plain, injected := run(false), run(true)
	if plain.BusySeconds != injected.BusySeconds || plain.EnergyJ != injected.EnergyJ ||
		plain.TxBytes != injected.TxBytes || plain.Transactions != injected.Transactions {
		t.Errorf("injector presence changed clean-run accounting:\nplain    %+v\ninjected %+v", plain, injected)
	}
}
