// Package spilink models the host-accelerator coupling link of the paper:
// a SPI (1 data lane) or QSPI (4 lanes) connection whose clock is derived
// from the host MCU clock, carrying a simple framed protocol (command,
// address, length, payload) into the accelerator's L2 through the QSPI
// slave port, plus the two GPIO event wires (fetch-enable toward the
// accelerator, end-of-computation toward the host).
//
// The model is transaction-level: every byte that crosses the link is
// really moved (into the simulated L2), and the time/energy are computed
// from the clock, lane count and framing overhead. This is the layer whose
// throughput produces the amortization curves and the bandwidth plateau of
// Fig. 5b.
package spilink

import (
	"fmt"

	"hetsim/internal/mem"
	"hetsim/internal/power"
)

// Config describes the physical link configuration.
type Config struct {
	Lanes   int     // 1 = SPI, 4 = QSPI
	ClockHz float64 // SPI clock (typically MCU clock / 2)
	// CmdBytes is the framing overhead per burst: command byte, 32-bit
	// address, 32-bit length.
	CmdBytes int
	// MaxBurst is the largest payload per transaction; longer transfers
	// split into bursts, each paying the framing overhead.
	MaxBurst int
}

// DefaultConfig returns the QSPI configuration used by the paper's
// evaluation (QSPI interface of the STM32-L476), clocked at half the MCU
// clock.
func DefaultConfig(mcuClockHz float64) Config {
	return Config{Lanes: 4, ClockHz: mcuClockHz / 2, CmdBytes: 9, MaxBurst: 4096}
}

// ByteRate returns the payload byte rate of the link in bytes/second.
func (c Config) ByteRate() float64 {
	return c.ClockHz * float64(c.Lanes) / 8
}

// wireBytes returns the total bytes on the wire for a payload of n bytes,
// including per-burst framing.
func (c Config) wireBytes(n int) int {
	if n == 0 {
		return 0
	}
	burst := c.MaxBurst
	if burst <= 0 {
		burst = 4096
	}
	bursts := (n + burst - 1) / burst
	return n + bursts*c.CmdBytes
}

// TransferTime returns the wall-clock seconds needed to move an n-byte
// payload across the link.
func (c Config) TransferTime(n int) float64 {
	return float64(c.wireBytes(n)) / c.ByteRate()
}

// TransferEnergy returns the link energy of an n-byte payload.
func (c Config) TransferEnergy(n int) float64 {
	return float64(c.wireBytes(n)*8) * power.SPIEnergyPerBit
}

// Link is a stateful link instance bound to the accelerator's L2: Write and
// Read actually move the bytes (the same bytes the device runtime later
// consumes), and the counters feed the reports.
type Link struct {
	Cfg Config

	// Stats.
	TxBytes      uint64 // payload bytes host -> accelerator
	RxBytes      uint64 // payload bytes accelerator -> host
	Transactions uint64
	BusySeconds  float64
	EnergyJ      float64
}

// New builds a link with the given configuration.
func New(cfg Config) *Link { return &Link{Cfg: cfg} }

// Write moves a payload into accelerator memory through the QSPI slave,
// returning the transfer time.
func (l *Link) Write(dst *mem.SRAM, addr uint32, data []byte) (float64, error) {
	if err := dst.WriteBytes(addr, data); err != nil {
		return 0, fmt.Errorf("spilink: %w", err)
	}
	t := l.Cfg.TransferTime(len(data))
	l.TxBytes += uint64(len(data))
	l.Transactions++
	l.BusySeconds += t
	l.EnergyJ += l.Cfg.TransferEnergy(len(data))
	return t, nil
}

// Read moves a payload out of accelerator memory, returning the data and
// the transfer time.
func (l *Link) Read(src *mem.SRAM, addr uint32, n uint32) ([]byte, float64, error) {
	if !src.Contains(addr, n) {
		return nil, 0, fmt.Errorf("spilink: read of %d bytes at %#x outside accelerator memory", n, addr)
	}
	data := src.ReadBytes(addr, n)
	t := l.Cfg.TransferTime(len(data))
	l.RxBytes += uint64(len(data))
	l.Transactions++
	l.BusySeconds += t
	l.EnergyJ += l.Cfg.TransferEnergy(len(data))
	return data, t, nil
}
