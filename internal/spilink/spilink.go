// Package spilink models the host-accelerator coupling link of the paper:
// a SPI (1 data lane) or QSPI (4 lanes) connection whose clock is derived
// from the host MCU clock, carrying a simple framed protocol (command,
// address, length, payload) into the accelerator's L2 through the QSPI
// slave port, plus the two GPIO event wires (fetch-enable toward the
// accelerator, end-of-computation toward the host).
//
// The model is transaction-level: every byte that crosses the link is
// really moved (into the simulated L2), and the time/energy are computed
// from the clock, lane count and framing overhead. This is the layer whose
// throughput produces the amortization curves and the bandwidth plateau of
// Fig. 5b.
//
// For resilience the link optionally frames every burst with a CRC-32
// trailer (Config.CRC): a corrupted or lost burst is detected and
// retransmitted up to Config.MaxRetransmits times, and both the trailer
// and every repeated burst cost real wire bytes, so the protection shows
// up in TransferTime/TransferEnergy and in the Link counters. Without CRC
// framing an injected fault (see internal/fault) is silent: flipped bits
// land in L2 and lost bursts leave stale memory — exactly the failure the
// framing exists to catch.
package spilink

import (
	"errors"
	"fmt"
	"hash/crc32"

	"hetsim/internal/fault"
	"hetsim/internal/mem"
	"hetsim/internal/obs"
	"hetsim/internal/power"
)

// DefaultMaxBurst is the largest payload per transaction when Config does
// not say otherwise (the QSPI page size of the prototype).
const DefaultMaxBurst = 4096

// DefaultMaxRetransmits bounds per-burst recovery attempts under CRC
// framing when Config does not say otherwise.
const DefaultMaxRetransmits = 8

// crcBytes is the size of the per-burst CRC-32 trailer.
const crcBytes = 4

// Typed link failures, matchable with errors.Is.
var (
	// ErrLinkCRC: a burst kept failing its CRC check beyond the
	// retransmission limit.
	ErrLinkCRC = errors.New("spilink: CRC mismatch persists past retransmission limit")
	// ErrLinkDropped: a burst (or its response) kept vanishing beyond the
	// retransmission limit.
	ErrLinkDropped = errors.New("spilink: burst lost past retransmission limit")
)

// Config describes the physical link configuration.
type Config struct {
	Lanes   int     // 1 = SPI, 4 = QSPI
	ClockHz float64 // SPI clock (typically MCU clock / 2)
	// CmdBytes is the framing overhead per burst: command byte, 32-bit
	// address, 32-bit length.
	CmdBytes int
	// MaxBurst is the largest payload per transaction; longer transfers
	// split into bursts, each paying the framing overhead. 0 selects
	// DefaultMaxBurst.
	MaxBurst int

	// CRC appends a CRC-32 trailer to every burst, enabling corruption and
	// loss detection with bounded retransmission. The 4 trailer bytes per
	// burst and every retransmitted burst are charged as wire bytes.
	CRC bool
	// MaxRetransmits bounds per-burst recovery attempts when CRC framing
	// is on (0 selects DefaultMaxRetransmits).
	MaxRetransmits int
}

// DefaultConfig returns the QSPI configuration used by the paper's
// evaluation (QSPI interface of the STM32-L476), clocked at half the MCU
// clock.
func DefaultConfig(mcuClockHz float64) Config {
	return Config{Lanes: 4, ClockHz: mcuClockHz / 2, CmdBytes: 9, MaxBurst: DefaultMaxBurst}
}

// ByteRate returns the payload byte rate of the link in bytes/second.
func (c Config) ByteRate() float64 {
	return c.ClockHz * float64(c.Lanes) / 8
}

// burstSize returns the effective per-transaction payload limit.
func (c Config) burstSize() int {
	if c.MaxBurst > 0 {
		return c.MaxBurst
	}
	return DefaultMaxBurst
}

// burstOverhead returns the framing bytes each burst pays on the wire.
func (c Config) burstOverhead() int {
	if c.CRC {
		return c.CmdBytes + crcBytes
	}
	return c.CmdBytes
}

// maxRetransmits returns the effective per-burst recovery bound.
func (c Config) maxRetransmits() int {
	if c.MaxRetransmits > 0 {
		return c.MaxRetransmits
	}
	return DefaultMaxRetransmits
}

// wireBytes returns the total bytes on the wire for a payload of n bytes,
// including per-burst framing (and the CRC trailer when enabled).
func (c Config) wireBytes(n int) int {
	if n == 0 {
		return 0
	}
	burst := c.burstSize()
	bursts := (n + burst - 1) / burst
	return n + bursts*c.burstOverhead()
}

// TransferTime returns the wall-clock seconds needed to move an n-byte
// payload across the link (fault-free).
func (c Config) TransferTime(n int) float64 {
	return float64(c.wireBytes(n)) / c.ByteRate()
}

// TransferEnergy returns the link energy of an n-byte payload (fault-free).
func (c Config) TransferEnergy(n int) float64 {
	return float64(c.wireBytes(n)*8) * power.SPIEnergyPerBit
}

// Link is a stateful link instance bound to the accelerator's L2: Write and
// Read actually move the bytes (the same bytes the device runtime later
// consumes), and the counters feed the reports.
type Link struct {
	Cfg Config

	// Inject, when non-nil, corrupts or drops individual burst attempts
	// (deterministic fault injection; see internal/fault). Nil costs
	// nothing.
	Inject *fault.Injector

	// TL, when non-nil, receives one wall-clock span per burst attempt on
	// track (TLPid, TLTid); retransmitted attempts carry category "retx" so
	// the repeats are visible in the viewer. The cursor is the wall-clock
	// position of the next burst, advanced by each attempt's wire time; the
	// offload runtime seeks it to the host clock before each link-driven
	// phase (TLSeek). Nil costs one compare per burst attempt.
	TL           *obs.Timeline
	TLPid, TLTid int
	tlCursor     float64 // seconds

	// Stats.
	TxBytes      uint64 // payload bytes host -> accelerator
	RxBytes      uint64 // payload bytes accelerator -> host
	Transactions uint64
	BusySeconds  float64
	EnergyJ      float64

	// Resilience stats.
	Retransmits        uint64 // burst attempts repeated after detection
	RetransmittedBytes uint64 // wire bytes spent on those repeats
	CRCErrors          uint64 // bursts detected corrupt by the CRC check
	DroppedBursts      uint64 // bursts detected lost (response timeout)
	SilentFaults       uint64 // injected faults that went undetected (no CRC)
}

// New builds a link, normalizing the configuration (unset MaxBurst and
// MaxRetransmits take their defaults, negative CmdBytes is clamped).
func New(cfg Config) *Link {
	if cfg.MaxBurst <= 0 {
		cfg.MaxBurst = DefaultMaxBurst
	}
	if cfg.CmdBytes < 0 {
		cfg.CmdBytes = 0
	}
	if cfg.MaxRetransmits <= 0 {
		cfg.MaxRetransmits = DefaultMaxRetransmits
	}
	return &Link{Cfg: cfg}
}

// TLSeek positions the timeline burst cursor (seconds on the wall clock)
// for subsequent transfers.
func (l *Link) TLSeek(t float64) { l.tlCursor = t }

// tlBurst emits one burst-attempt span and advances the cursor by its
// wire time. Callers guard on l.TL != nil.
func (l *Link) tlBurst(name, cat string, wire int) {
	t := float64(wire) / l.Cfg.ByteRate()
	l.TL.Span(l.TLPid, l.TLTid, name, cat, l.tlCursor*1e6, t*1e6,
		map[string]any{"wire_bytes": wire})
	l.tlCursor += t
}

// account charges one completed transfer to the counters and returns its
// wall-clock time.
func (l *Link) account(wire int) float64 {
	t := float64(wire) / l.Cfg.ByteRate()
	l.Transactions++
	l.BusySeconds += t
	l.EnergyJ += float64(wire*8) * power.SPIEnergyPerBit
	return t
}

// Write moves a payload into accelerator memory through the QSPI slave,
// returning the transfer time. Under CRC framing a corrupted or dropped
// burst is retransmitted (bounded by Cfg.MaxRetransmits); without it the
// fault lands in memory undetected.
func (l *Link) Write(dst *mem.SRAM, addr uint32, data []byte) (float64, error) {
	if l.Inject == nil && !l.Cfg.CRC {
		// Fast path: the exact happy-path cost model.
		if err := dst.WriteBytes(addr, data); err != nil {
			return 0, fmt.Errorf("spilink: %w", err)
		}
		l.TxBytes += uint64(len(data))
		if l.TL != nil {
			l.tlBurst("tx "+obs.KB(len(data)), "spi", l.Cfg.wireBytes(len(data)))
		}
		return l.account(l.Cfg.wireBytes(len(data))), nil
	}
	if !dst.Contains(addr, uint32(len(data))) {
		return 0, fmt.Errorf("spilink: write of %d bytes at %#x outside accelerator memory", len(data), addr)
	}
	wire, err := l.moveBursts(len(data), "tx", func(off, n int) error {
		chunk := data[off : off+n]
		switch l.Inject.LinkBurst() {
		case fault.BurstCorrupt:
			// The burst arrives with a flipped bit. The slave recomputes
			// the CRC-32 of what it received and compares it against the
			// trailer sent with the burst.
			bad := append([]byte(nil), chunk...)
			l.Inject.CorruptBit(bad)
			if l.Cfg.CRC && crc32.ChecksumIEEE(bad) != crc32.ChecksumIEEE(chunk) {
				// Detected: the slave NAKs, nothing reaches memory.
				l.CRCErrors++
				return errBurstCorrupt
			}
			// Undetectable: the flipped bits land in device memory.
			l.SilentFaults++
			return dst.WriteBytes(addr+uint32(off), bad)
		case fault.BurstDrop:
			if l.Cfg.CRC {
				// No ack within the burst window: the host times out and
				// resends.
				l.DroppedBursts++
				return errBurstDrop
			}
			// Undetectable: the memory keeps whatever it held before.
			l.SilentFaults++
			return nil
		}
		return dst.WriteBytes(addr+uint32(off), chunk)
	})
	if err != nil {
		// The wasted traffic still happened; charge it before failing.
		l.account(wire)
		return 0, fmt.Errorf("spilink: write at %#x: %w", addr, err)
	}
	l.TxBytes += uint64(len(data))
	return l.account(wire), nil
}

// Read moves a payload out of accelerator memory, returning the data and
// the transfer time. Under CRC framing a corrupted or dropped response
// burst is re-read; without it the host consumes whatever arrived.
func (l *Link) Read(src *mem.SRAM, addr uint32, n uint32) ([]byte, float64, error) {
	if !src.Contains(addr, n) {
		return nil, 0, fmt.Errorf("spilink: read of %d bytes at %#x outside accelerator memory", n, addr)
	}
	if l.Inject == nil && !l.Cfg.CRC {
		// Fast path: nothing on the wire can mutate the payload, so hand
		// out the accelerator memory directly (SRAM.Bytes, zero-copy).
		// The slice is read-only and valid until the next device write.
		data := src.Bytes(addr, n)
		l.RxBytes += uint64(len(data))
		if l.TL != nil {
			l.tlBurst("rx "+obs.KB(len(data)), "spi", l.Cfg.wireBytes(len(data)))
		}
		return data, l.account(l.Cfg.wireBytes(len(data))), nil
	}
	data := src.ReadBytes(addr, n)
	wire, err := l.moveBursts(len(data), "rx", func(off, n int) error {
		chunk := data[off : off+n]
		switch l.Inject.LinkBurst() {
		case fault.BurstCorrupt:
			// The response burst arrives with a flipped bit; the host
			// checks the trailer CRC against what it received.
			want := crc32.ChecksumIEEE(chunk)
			l.Inject.CorruptBit(chunk)
			if l.Cfg.CRC && crc32.ChecksumIEEE(chunk) != want {
				// Detected: restore is not needed — the host discards the
				// burst and re-reads, and the next attempt re-fetches from
				// memory.
				copy(chunk, src.Bytes(addr+uint32(off), uint32(n)))
				l.CRCErrors++
				return errBurstCorrupt
			}
			l.SilentFaults++
		case fault.BurstDrop:
			if l.Cfg.CRC {
				l.DroppedBursts++
				return errBurstDrop
			}
			// Undetectable: the host's receive buffer keeps its reset
			// state for this burst.
			l.SilentFaults++
			for i := range chunk {
				chunk[i] = 0
			}
		}
		return nil
	})
	if err != nil {
		l.account(wire)
		return nil, 0, fmt.Errorf("spilink: read at %#x: %w", addr, err)
	}
	l.RxBytes += uint64(len(data))
	return data, l.account(wire), nil
}

// Detected-bad burst attempts inside moveBursts.
var (
	errBurstCorrupt = errors.New("burst CRC rejected")
	errBurstDrop    = errors.New("burst lost")
)

// moveBursts drives the burst loop shared by Write and Read: it splits an
// n-byte payload, invokes move for every burst attempt, and retries
// detected-bad attempts while the retransmission budget lasts. It returns
// the total wire bytes consumed, including repeats. dir labels the burst
// spans on the timeline ("tx"/"rx").
func (l *Link) moveBursts(n int, dir string, move func(off, n int) error) (wire int, err error) {
	if n == 0 {
		return 0, nil
	}
	burst := l.Cfg.burstSize()
	over := l.Cfg.burstOverhead()
	for off := 0; off < n; off += burst {
		size := burst
		if off+size > n {
			size = n - off
		}
		for attempt := 0; ; attempt++ {
			wire += size + over
			if l.TL != nil {
				// The attempt's wire time is spent whether or not the burst
				// lands; retransmits get their own category.
				if attempt > 0 {
					l.tlBurst(dir+" retransmit", "retx", size+over)
				} else {
					l.tlBurst(dir+" burst", "spi", size+over)
				}
			}
			err := move(off, size)
			if err == nil {
				break
			}
			bad := errors.Is(err, errBurstCorrupt)
			if !bad && !errors.Is(err, errBurstDrop) {
				return wire, err
			}
			if attempt >= l.Cfg.maxRetransmits() {
				if bad {
					return wire, ErrLinkCRC
				}
				return wire, ErrLinkDropped
			}
			l.Retransmits++
			l.RetransmittedBytes += uint64(size + over)
		}
	}
	return wire, nil
}
