// Package fault is a deterministic, seeded fault injector for the
// heterogeneous system: it decides — reproducibly, from a single seed —
// when a link burst arrives corrupted or not at all, when the accelerator
// wedges and never raises end-of-computation, and when the job descriptor
// is clobbered after landing in L2.
//
// The injector is consulted by internal/spilink (per burst attempt) and by
// internal/core (per offload attempt); with a nil *Injector every decision
// method is a no-op, so clean runs pay nothing. All randomness comes from a
// splitmix64 stream owned by the injector, so a given seed and call
// sequence always injects the same faults — the property the resilience
// tests and the `make ci` seed sweep rely on.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Class enumerates the injectable fault classes.
type Class int

const (
	// LinkCorrupt: a link burst arrives with flipped bits.
	LinkCorrupt Class = iota
	// LinkDrop: a link burst (or its response) never arrives.
	LinkDrop
	// EOCHang: the accelerator runs but never raises end-of-computation
	// (a stuck EOC wire or a wedged device).
	EOCHang
	// DescCorrupt: the job descriptor is corrupted in L2 after the write
	// (a memory fault the link CRC cannot see).
	DescCorrupt

	numClasses
)

func (c Class) String() string {
	switch c {
	case LinkCorrupt:
		return "link-corrupt"
	case LinkDrop:
		return "link-drop"
	case EOCHang:
		return "eoc-hang"
	case DescCorrupt:
		return "desc-corrupt"
	}
	return "?"
}

// Outcome is the fate of one link burst attempt.
type Outcome int

const (
	// BurstOK: the burst arrives intact.
	BurstOK Outcome = iota
	// BurstCorrupt: the burst arrives with flipped bits.
	BurstCorrupt
	// BurstDrop: the burst never arrives.
	BurstDrop
)

// Config sets the per-decision fault probabilities. All rates are in
// [0, 1]; a zero Config injects nothing.
type Config struct {
	Seed uint64

	LinkCorruptRate float64 // per burst attempt
	LinkDropRate    float64 // per burst attempt
	EOCHangRate     float64 // per offload attempt
	DescCorruptRate float64 // per descriptor write

	// MaxFaults bounds the total number of injected faults (0 = no bound),
	// so tests can express "the first k decisions fail, then the hardware
	// heals" and recovery paths terminate deterministically.
	MaxFaults int
}

func (c Config) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"corrupt", c.LinkCorruptRate},
		{"drop", c.LinkDropRate},
		{"hang", c.EOCHangRate},
		{"desc", c.DescCorruptRate},
	} {
		if r.v < 0 || r.v > 1 {
			return fmt.Errorf("fault: %s rate %v out of [0, 1]", r.name, r.v)
		}
	}
	if c.MaxFaults < 0 {
		return fmt.Errorf("fault: negative fault bound %d", c.MaxFaults)
	}
	return nil
}

// Injector is a seeded fault source. The zero value and the nil pointer
// inject nothing; build one with New. Not safe for concurrent use — it is
// consulted from the single simulation goroutine.
type Injector struct {
	cfg      Config
	state    uint64
	injected [numClasses]int
}

// New builds an injector. Invalid rates panic: fault configs come from
// test code or from ParseSpec, which validates first.
func New(cfg Config) *Injector {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Injector{cfg: cfg, state: cfg.Seed}
}

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unit returns a float in [0, 1).
func (in *Injector) unit() float64 { return float64(in.next()>>11) / (1 << 53) }

// roll decides one fault of class c at the given rate and records it.
func (in *Injector) roll(rate float64, c Class) bool {
	if in == nil || rate <= 0 {
		return false
	}
	if in.cfg.MaxFaults > 0 && in.Injected() >= in.cfg.MaxFaults {
		return false
	}
	if in.unit() >= rate {
		return false
	}
	in.injected[c]++
	return true
}

// LinkBurst decides the fate of one burst attempt on the link.
func (in *Injector) LinkBurst() Outcome {
	if in == nil {
		return BurstOK
	}
	if in.roll(in.cfg.LinkCorruptRate, LinkCorrupt) {
		return BurstCorrupt
	}
	if in.roll(in.cfg.LinkDropRate, LinkDrop) {
		return BurstDrop
	}
	return BurstOK
}

// EOCHang decides whether this offload attempt's end-of-computation never
// reaches the host.
func (in *Injector) EOCHang() bool {
	return in != nil && in.roll(in.cfg.EOCHangRate, EOCHang)
}

// DescCorrupt decides whether the descriptor just written is clobbered in
// device memory.
func (in *Injector) DescCorrupt() bool {
	return in != nil && in.roll(in.cfg.DescCorruptRate, DescCorrupt)
}

// CorruptBit flips one deterministically chosen bit of data in place.
func (in *Injector) CorruptBit(data []byte) {
	if in == nil || len(data) == 0 {
		return
	}
	r := in.next()
	data[r%uint64(len(data))] ^= 1 << ((r >> 32) % 8)
}

// Injected returns the total number of faults injected so far.
func (in *Injector) Injected() int {
	if in == nil {
		return 0
	}
	n := 0
	for _, c := range in.injected {
		n += c
	}
	return n
}

// Count returns how many faults of one class were injected.
func (in *Injector) Count(c Class) int {
	if in == nil || c < 0 || c >= numClasses {
		return 0
	}
	return in.injected[c]
}

// String summarizes the injected faults ("3 faults: link-corrupt=2 eoc-hang=1").
func (in *Injector) String() string {
	if in == nil {
		return "no injector"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d faults:", in.Injected())
	for c := Class(0); c < numClasses; c++ {
		if in.injected[c] > 0 {
			fmt.Fprintf(&b, " %s=%d", c, in.injected[c])
		}
	}
	return b.String()
}

// ParseSpec parses a command-line fault specification of the form
// "seed=3,rate=0.2" — comma-separated key=value pairs. Keys:
//
//	seed    PRNG seed (uint)
//	rate    shorthand: sets all four class rates at once
//	corrupt link bit-flip rate per burst
//	drop    lost-burst rate per burst
//	hang    EOC-hang rate per offload attempt
//	desc    descriptor-corruption rate per descriptor write
//	max     total fault bound (0 = unlimited)
//
// Specific class keys override the shorthand regardless of order.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	type override struct {
		set bool
		v   float64
	}
	var corrupt, drop, hang, desc override
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("fault: malformed field %q (want key=value)", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return Config{}, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			cfg.Seed = n
		case "max":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Config{}, fmt.Errorf("fault: bad max %q: %v", v, err)
			}
			cfg.MaxFaults = n
		case "rate", "corrupt", "drop", "hang", "desc":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Config{}, fmt.Errorf("fault: bad %s %q: %v", k, v, err)
			}
			switch k {
			case "rate":
				cfg.LinkCorruptRate = f
				cfg.LinkDropRate = f
				cfg.EOCHangRate = f
				cfg.DescCorruptRate = f
			case "corrupt":
				corrupt = override{true, f}
			case "drop":
				drop = override{true, f}
			case "hang":
				hang = override{true, f}
			case "desc":
				desc = override{true, f}
			}
		default:
			return Config{}, fmt.Errorf("fault: unknown key %q", k)
		}
	}
	if corrupt.set {
		cfg.LinkCorruptRate = corrupt.v
	}
	if drop.set {
		cfg.LinkDropRate = drop.v
	}
	if hang.set {
		cfg.EOCHangRate = hang.v
	}
	if desc.set {
		cfg.DescCorruptRate = desc.v
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
