// Package fault is a deterministic, seeded fault injector for the
// heterogeneous system: it decides — reproducibly, from a single seed —
// when a link burst arrives corrupted or not at all, when the accelerator
// wedges and never raises end-of-computation, and when the job descriptor
// is clobbered after landing in L2.
//
// The injector is consulted by internal/spilink (per burst attempt) and by
// internal/core (per offload attempt); with a nil *Injector every decision
// method is a no-op, so clean runs pay nothing. All randomness comes from a
// splitmix64 stream owned by the injector, so a given seed and call
// sequence always injects the same faults — the property the resilience
// tests and the `make ci` seed sweep rely on.
package fault

import (
	"fmt"
	"strconv"
	"strings"
)

// Class enumerates the injectable fault classes.
type Class int

const (
	// LinkCorrupt: a link burst arrives with flipped bits.
	LinkCorrupt Class = iota
	// LinkDrop: a link burst (or its response) never arrives.
	LinkDrop
	// EOCHang: the accelerator runs but never raises end-of-computation
	// (a stuck EOC wire or a wedged device).
	EOCHang
	// DescCorrupt: the job descriptor is corrupted in L2 after the write
	// (a memory fault the link CRC cannot see).
	DescCorrupt
	// TCDMFlip: a single-event upset flips one bit of a word as it is
	// written into the TCDM (core store, DMA beat or loader word).
	TCDMFlip
	// L2Flip: the same SEU model for the SoC L2 memory.
	L2Flip
	// ICacheParity: an instruction-cache line fails its parity check on a
	// hit. Parity errors are always *detected*: the line is invalidated and
	// refilled from L2, so the fault costs a refill penalty, never wrong
	// execution.
	ICacheParity
	// DMACorrupt: one bit of a DMA beat flips in flight between L2 and the
	// TCDM (the lightweight DMA has no ECC, so this lands silently).
	DMACorrupt

	numClasses
)

func (c Class) String() string {
	switch c {
	case LinkCorrupt:
		return "link-corrupt"
	case LinkDrop:
		return "link-drop"
	case EOCHang:
		return "eoc-hang"
	case DescCorrupt:
		return "desc-corrupt"
	case TCDMFlip:
		return "tcdm-flip"
	case L2Flip:
		return "l2-flip"
	case ICacheParity:
		return "icache-parity"
	case DMACorrupt:
		return "dma-corrupt"
	}
	return "?"
}

// MemClasses lists the memory-level fault classes, the campaign axis of
// the chaos engine (internal/chaos). Link and protocol classes
// (LinkCorrupt, LinkDrop, EOCHang, DescCorrupt) are covered by the PR 1
// resilience drills.
var MemClasses = []Class{TCDMFlip, L2Flip, ICacheParity, DMACorrupt}

// ParseClass parses a class name as printed by Class.String, accepting
// the short spec-key aliases used by ParseSpec ("tcdm", "l2", "parity",
// "dma") as well.
func ParseClass(s string) (Class, error) {
	switch s {
	case "tcdm":
		return TCDMFlip, nil
	case "l2":
		return L2Flip, nil
	case "parity":
		return ICacheParity, nil
	case "dma":
		return DMACorrupt, nil
	case "corrupt":
		return LinkCorrupt, nil
	case "drop":
		return LinkDrop, nil
	case "hang":
		return EOCHang, nil
	case "desc":
		return DescCorrupt, nil
	}
	for c := Class(0); c < numClasses; c++ {
		if c.String() == s {
			return c, nil
		}
	}
	return 0, fmt.Errorf("fault: unknown fault class %q", s)
}

// Outcome is the fate of one link burst attempt.
type Outcome int

const (
	// BurstOK: the burst arrives intact.
	BurstOK Outcome = iota
	// BurstCorrupt: the burst arrives with flipped bits.
	BurstCorrupt
	// BurstDrop: the burst never arrives.
	BurstDrop
)

// Config sets the per-decision fault probabilities. All rates are in
// [0, 1]; a zero Config injects nothing.
type Config struct {
	Seed uint64

	LinkCorruptRate float64 // per burst attempt
	LinkDropRate    float64 // per burst attempt
	EOCHangRate     float64 // per offload attempt
	DescCorruptRate float64 // per descriptor write

	// Memory-level fault rates (SEU model). Flip rates roll once per word
	// written — the upset strikes the cell as the write lands — and the
	// parity rate rolls once per I-cache fetch hit.
	TCDMFlipRate   float64 // per TCDM word write
	L2FlipRate     float64 // per L2 word write
	ParityRate     float64 // per I-cache fetch hit
	DMACorruptRate float64 // per DMA beat

	// MaxFaults bounds the total number of injected faults (0 = no bound),
	// so tests can express "the first k decisions fail, then the hardware
	// heals" and recovery paths terminate deterministically.
	MaxFaults int
}

// Rate returns the configured rate of one class.
func (c Config) Rate(cl Class) float64 {
	switch cl {
	case LinkCorrupt:
		return c.LinkCorruptRate
	case LinkDrop:
		return c.LinkDropRate
	case EOCHang:
		return c.EOCHangRate
	case DescCorrupt:
		return c.DescCorruptRate
	case TCDMFlip:
		return c.TCDMFlipRate
	case L2Flip:
		return c.L2FlipRate
	case ICacheParity:
		return c.ParityRate
	case DMACorrupt:
		return c.DMACorruptRate
	}
	return 0
}

// SetRate sets the rate of one class, the programmatic counterpart of the
// per-class ParseSpec keys (the chaos engine builds one single-class
// config per trial this way).
func (c *Config) SetRate(cl Class, r float64) {
	switch cl {
	case LinkCorrupt:
		c.LinkCorruptRate = r
	case LinkDrop:
		c.LinkDropRate = r
	case EOCHang:
		c.EOCHangRate = r
	case DescCorrupt:
		c.DescCorruptRate = r
	case TCDMFlip:
		c.TCDMFlipRate = r
	case L2Flip:
		c.L2FlipRate = r
	case ICacheParity:
		c.ParityRate = r
	case DMACorrupt:
		c.DMACorruptRate = r
	}
}

func (c Config) validate() error {
	for _, r := range []struct {
		name string
		v    float64
	}{
		{"corrupt", c.LinkCorruptRate},
		{"drop", c.LinkDropRate},
		{"hang", c.EOCHangRate},
		{"desc", c.DescCorruptRate},
		{"tcdm", c.TCDMFlipRate},
		{"l2", c.L2FlipRate},
		{"parity", c.ParityRate},
		{"dma", c.DMACorruptRate},
	} {
		// The inverted form also rejects NaN, which passes both `< 0`
		// and `> 1` and would otherwise sail through ParseFloat("NaN").
		if !(r.v >= 0 && r.v <= 1) {
			return fmt.Errorf("fault: %s rate %v out of [0, 1]", r.name, r.v)
		}
	}
	if c.MaxFaults < 0 {
		return fmt.Errorf("fault: negative fault bound %d", c.MaxFaults)
	}
	return nil
}

// Injector is a seeded fault source. The zero value and the nil pointer
// inject nothing; build one with New. Not safe for concurrent use — it is
// consulted from the single simulation goroutine.
type Injector struct {
	cfg      Config
	state    uint64
	injected [numClasses]int
}

// New builds an injector. Invalid rates panic: fault configs come from
// test code or from ParseSpec, which validates first.
func New(cfg Config) *Injector {
	if err := cfg.validate(); err != nil {
		panic(err)
	}
	return &Injector{cfg: cfg, state: cfg.Seed}
}

// next advances the splitmix64 stream.
func (in *Injector) next() uint64 {
	in.state += 0x9E3779B97F4A7C15
	z := in.state
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return z ^ (z >> 31)
}

// unit returns a float in [0, 1).
func (in *Injector) unit() float64 { return float64(in.next()>>11) / (1 << 53) }

// roll decides one fault of class c at the given rate and records it.
func (in *Injector) roll(rate float64, c Class) bool {
	if in == nil || rate <= 0 {
		return false
	}
	if in.cfg.MaxFaults > 0 && in.Injected() >= in.cfg.MaxFaults {
		return false
	}
	if in.unit() >= rate {
		return false
	}
	in.injected[c]++
	return true
}

// LinkBurst decides the fate of one burst attempt on the link.
func (in *Injector) LinkBurst() Outcome {
	if in == nil {
		return BurstOK
	}
	if in.roll(in.cfg.LinkCorruptRate, LinkCorrupt) {
		return BurstCorrupt
	}
	if in.roll(in.cfg.LinkDropRate, LinkDrop) {
		return BurstDrop
	}
	return BurstOK
}

// EOCHang decides whether this offload attempt's end-of-computation never
// reaches the host.
func (in *Injector) EOCHang() bool {
	return in != nil && in.roll(in.cfg.EOCHangRate, EOCHang)
}

// DescCorrupt decides whether the descriptor just written is clobbered in
// device memory.
func (in *Injector) DescCorrupt() bool {
	return in != nil && in.roll(in.cfg.DescCorruptRate, DescCorrupt)
}

// SEUMask rolls one memory-level fault of class c for a value that is
// `bits` wide (8, 16 or 32) and returns an XOR mask with exactly one bit
// set when the upset strikes, 0 otherwise. The caller applies the mask to
// the word being written (TCDMFlip, L2Flip) or moved (DMACorrupt); a nil
// injector or a zero rate returns 0 without touching the PRNG stream.
func (in *Injector) SEUMask(c Class, bits uint32) uint32 {
	if in == nil {
		return 0
	}
	if !in.roll(in.cfg.Rate(c), c) {
		return 0
	}
	return 1 << (in.next() % uint64(bits))
}

// ParityHit decides whether this I-cache fetch hit sees a parity error
// (detected: the line is invalidated and refilled).
func (in *Injector) ParityHit() bool {
	return in != nil && in.roll(in.cfg.ParityRate, ICacheParity)
}

// CorruptBit flips one deterministically chosen bit of data in place.
func (in *Injector) CorruptBit(data []byte) {
	if in == nil || len(data) == 0 {
		return
	}
	r := in.next()
	data[r%uint64(len(data))] ^= 1 << ((r >> 32) % 8)
}

// Injected returns the total number of faults injected so far.
func (in *Injector) Injected() int {
	if in == nil {
		return 0
	}
	n := 0
	for _, c := range in.injected {
		n += c
	}
	return n
}

// Count returns how many faults of one class were injected.
func (in *Injector) Count(c Class) int {
	if in == nil || c < 0 || c >= numClasses {
		return 0
	}
	return in.injected[c]
}

// String summarizes the injected faults ("3 faults: link-corrupt=2 eoc-hang=1").
func (in *Injector) String() string {
	if in == nil {
		return "no injector"
	}
	var b strings.Builder
	fmt.Fprintf(&b, "%d faults:", in.Injected())
	for c := Class(0); c < numClasses; c++ {
		if in.injected[c] > 0 {
			fmt.Fprintf(&b, " %s=%d", c, in.injected[c])
		}
	}
	return b.String()
}

// DeriveSeed mixes parts into base through the same splitmix64 stream the
// injector uses, yielding a deterministic per-trial seed from a campaign
// seed plus coordinates (kernel index, fault class, rate bits, trial
// number). Unlike a plain XOR it separates trials that differ in a single
// low bit.
func DeriveSeed(base uint64, parts ...uint64) uint64 {
	s := Injector{state: base}
	out := s.next()
	for _, p := range parts {
		// Feed the mixed previous output back in so the fold is
		// position-sensitive: a plain state += p would make (…,1,0)
		// and (…,0,1) collide (addition commutes under splitmix).
		s.state = out ^ p
		out = s.next()
	}
	return out
}

// ParseSpec parses a command-line fault specification of the form
// "seed=3,rate=0.2" — comma-separated key=value pairs. Keys:
//
//	seed    PRNG seed (uint)
//	rate    shorthand: sets the four link/protocol class rates at once
//	        (corrupt, drop, hang, desc — NOT the memory classes, which
//	        would silently corrupt outputs and have their own keys)
//	corrupt link bit-flip rate per burst
//	drop    lost-burst rate per burst
//	hang    EOC-hang rate per offload attempt
//	desc    descriptor-corruption rate per descriptor write
//	tcdm    SEU bit-flip rate per TCDM word write
//	l2      SEU bit-flip rate per L2 word write
//	parity  I-cache parity-error rate per fetch hit
//	dma     DMA beat corruption rate per word moved
//	max     total fault bound (0 = unlimited)
//
// Specific class keys override the shorthand regardless of order.
func ParseSpec(spec string) (Config, error) {
	var cfg Config
	type override struct {
		set bool
		v   float64
	}
	var corrupt, drop, hang, desc override
	for _, field := range strings.Split(spec, ",") {
		field = strings.TrimSpace(field)
		if field == "" {
			continue
		}
		k, v, ok := strings.Cut(field, "=")
		if !ok {
			return Config{}, fmt.Errorf("fault: malformed field %q (want key=value)", field)
		}
		switch k {
		case "seed":
			n, err := strconv.ParseUint(v, 0, 64)
			if err != nil {
				return Config{}, fmt.Errorf("fault: bad seed %q: %v", v, err)
			}
			cfg.Seed = n
		case "max":
			n, err := strconv.Atoi(v)
			if err != nil {
				return Config{}, fmt.Errorf("fault: bad max %q: %v", v, err)
			}
			cfg.MaxFaults = n
		case "rate", "corrupt", "drop", "hang", "desc", "tcdm", "l2", "parity", "dma":
			f, err := strconv.ParseFloat(v, 64)
			if err != nil {
				return Config{}, fmt.Errorf("fault: bad %s %q: %v", k, v, err)
			}
			switch k {
			case "rate":
				cfg.LinkCorruptRate = f
				cfg.LinkDropRate = f
				cfg.EOCHangRate = f
				cfg.DescCorruptRate = f
			case "corrupt":
				corrupt = override{true, f}
			case "drop":
				drop = override{true, f}
			case "hang":
				hang = override{true, f}
			case "desc":
				desc = override{true, f}
			case "tcdm":
				cfg.TCDMFlipRate = f
			case "l2":
				cfg.L2FlipRate = f
			case "parity":
				cfg.ParityRate = f
			case "dma":
				cfg.DMACorruptRate = f
			}
		default:
			return Config{}, fmt.Errorf("fault: unknown key %q", k)
		}
	}
	if corrupt.set {
		cfg.LinkCorruptRate = corrupt.v
	}
	if drop.set {
		cfg.LinkDropRate = drop.v
	}
	if hang.set {
		cfg.EOCHangRate = hang.v
	}
	if desc.set {
		cfg.DescCorruptRate = desc.v
	}
	if err := cfg.validate(); err != nil {
		return Config{}, err
	}
	return cfg, nil
}
