package fault

import (
	"math"
	"strings"
	"testing"
)

func TestParseSpecMemoryKeys(t *testing.T) {
	cfg, err := ParseSpec("seed=7,tcdm=0.01,l2=0.02,parity=0.03,dma=0.04")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 7 || cfg.TCDMFlipRate != 0.01 || cfg.L2FlipRate != 0.02 ||
		cfg.ParityRate != 0.03 || cfg.DMACorruptRate != 0.04 {
		t.Fatalf("memory keys not applied: %+v", cfg)
	}
	// The rate shorthand covers the link/protocol classes only: a
	// memory class riding along must keep its own value, and the
	// shorthand must not arm the memory classes.
	cfg, err = ParseSpec("rate=0.5,tcdm=0.1")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.TCDMFlipRate != 0.1 || cfg.L2FlipRate != 0 || cfg.ParityRate != 0 || cfg.DMACorruptRate != 0 {
		t.Fatalf("rate shorthand leaked into memory classes: %+v", cfg)
	}
	if cfg.LinkCorruptRate != 0.5 {
		t.Fatalf("rate shorthand lost: %+v", cfg)
	}
}

func TestParseSpecRejectsMalformed(t *testing.T) {
	for _, bad := range []string{
		"tcdm=", "tcdm=x", "tcdm=-0.1", "tcdm=1.5", "tcdm=NaN", "tcdm=Inf",
		"l2=nope", "parity=2", "dma=-1", "dma=1e999",
		"tcdm", "memory=0.1", "TCDM=0.1",
	} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q should not parse", bad)
		}
	}
}

func TestParseClass(t *testing.T) {
	cases := map[string]Class{
		"tcdm": TCDMFlip, "tcdm-flip": TCDMFlip,
		"l2": L2Flip, "l2-flip": L2Flip,
		"parity": ICacheParity, "icache-parity": ICacheParity,
		"dma": DMACorrupt, "dma-corrupt": DMACorrupt,
		"corrupt": LinkCorrupt, "hang": EOCHang,
	}
	for s, want := range cases {
		got, err := ParseClass(s)
		if err != nil || got != want {
			t.Errorf("ParseClass(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseClass("bogus"); err == nil {
		t.Error("ParseClass should reject unknown names")
	}
}

func TestSEUMask(t *testing.T) {
	var nilInj *Injector
	if nilInj.SEUMask(TCDMFlip, 32) != 0 {
		t.Fatal("nil injector must never flip")
	}
	cfg := Config{Seed: 3, TCDMFlipRate: 1}
	in := New(cfg)
	for i := 0; i < 100; i++ {
		m := in.SEUMask(TCDMFlip, 32)
		if m == 0 || m&(m-1) != 0 {
			t.Fatalf("mask %#x is not a single bit", m)
		}
	}
	if in.SEUMask(L2Flip, 32) != 0 {
		t.Fatal("unarmed class must not flip")
	}
	// Tail-byte strikes stay within the byte.
	for i := 0; i < 100; i++ {
		if m := in.SEUMask(TCDMFlip, 8); m == 0 || m > 0x80 {
			t.Fatalf("8-bit mask %#x out of range", m)
		}
	}
	if got := in.Count(TCDMFlip); got != 200 {
		t.Fatalf("Count(TCDMFlip) = %d, want 200", got)
	}
}

func TestSEUMaskDeterministic(t *testing.T) {
	run := func() []uint32 {
		in := New(Config{Seed: 11, L2FlipRate: 0.3})
		out := make([]uint32, 64)
		for i := range out {
			out[i] = in.SEUMask(L2Flip, 32)
		}
		return out
	}
	a, b := run(), run()
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("seeded SEU stream diverged at %d: %#x vs %#x", i, a[i], b[i])
		}
	}
}

func TestParityHit(t *testing.T) {
	var nilInj *Injector
	if nilInj.ParityHit() {
		t.Fatal("nil injector must never report parity")
	}
	in := New(Config{Seed: 1, ParityRate: 1})
	if !in.ParityHit() {
		t.Fatal("rate-1 parity must fire")
	}
	in = New(Config{Seed: 1})
	for i := 0; i < 100; i++ {
		if in.ParityHit() {
			t.Fatal("rate-0 parity must never fire")
		}
	}
}

func TestDeriveSeed(t *testing.T) {
	a := DeriveSeed(1, 0, 0, 0)
	if a != DeriveSeed(1, 0, 0, 0) {
		t.Fatal("DeriveSeed is not deterministic")
	}
	seen := map[uint64]bool{a: true}
	for _, parts := range [][]uint64{
		{0, 0, 0, 1}, {0, 0, 1, 0}, {0, 1, 0, 0}, {1, 0, 0, 0},
		{2, 3, 4, 5}, {5, 4, 3, 2},
	} {
		s := DeriveSeed(1, parts...)
		if seen[s] {
			t.Fatalf("seed collision for parts %v", parts)
		}
		seen[s] = true
	}
	if DeriveSeed(1, 7) == DeriveSeed(2, 7) {
		t.Fatal("base seed must matter")
	}
}

// FuzzParseSpec drives the spec grammar with arbitrary input: parsing
// must never panic, and an accepted spec must describe a valid config —
// every rate in [0, 1] (NaN must be rejected, not smuggled in) and a
// round-trip through the parsed values accepted again.
func FuzzParseSpec(f *testing.F) {
	for _, seed := range []string{
		"", "seed=3,rate=0.01", "tcdm=0.1,l2=0.2,parity=0.3,dma=0.4",
		"rate=1,max=10", "hang=1,desc=0.5", "seed=,rate=", "tcdm=NaN",
		"rate=1e-300", ",,,", "a=b=c", "tcdm=+0.5", "rate=0x1p-4",
	} {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, spec string) {
		cfg, err := ParseSpec(spec)
		if err != nil {
			return
		}
		for _, r := range []float64{
			cfg.LinkCorruptRate, cfg.LinkDropRate, cfg.EOCHangRate, cfg.DescCorruptRate,
			cfg.TCDMFlipRate, cfg.L2FlipRate, cfg.ParityRate, cfg.DMACorruptRate,
		} {
			if math.IsNaN(r) || r < 0 || r > 1 {
				t.Fatalf("spec %q accepted with out-of-range rate %v", spec, r)
			}
		}
		if cfg.MaxFaults < 0 {
			t.Fatalf("spec %q accepted with negative max %d", spec, cfg.MaxFaults)
		}
		// An accepted spec must also construct: New validates too.
		in := New(cfg)
		if in == nil {
			t.Fatalf("spec %q parsed but did not construct", spec)
		}
		if strings.Contains(spec, "\x00") && spec != "" {
			// no constraint — just exercise odd bytes through String()
			_ = in.String()
		}
	})
}
