package fault

import "testing"

func TestNilInjectorIsInert(t *testing.T) {
	var in *Injector
	if in.LinkBurst() != BurstOK || in.EOCHang() || in.DescCorrupt() {
		t.Fatal("nil injector must never inject")
	}
	in.CorruptBit(nil) // must not panic
	if in.Injected() != 0 || in.Count(LinkCorrupt) != 0 {
		t.Fatal("nil injector has no counts")
	}
	if in.String() != "no injector" {
		t.Fatalf("nil String = %q", in.String())
	}
}

func TestZeroRatesInjectNothing(t *testing.T) {
	in := New(Config{Seed: 42})
	for i := 0; i < 1000; i++ {
		if in.LinkBurst() != BurstOK || in.EOCHang() || in.DescCorrupt() {
			t.Fatal("zero-rate injector fired")
		}
	}
	if in.Injected() != 0 {
		t.Fatalf("injected %d faults at rate 0", in.Injected())
	}
}

func TestSeededDeterminism(t *testing.T) {
	cfg := Config{Seed: 7, LinkCorruptRate: 0.3, LinkDropRate: 0.1, EOCHangRate: 0.5, DescCorruptRate: 0.2}
	run := func() []Outcome {
		in := New(cfg)
		var seq []Outcome
		for i := 0; i < 200; i++ {
			seq = append(seq, in.LinkBurst())
			if in.EOCHang() {
				seq = append(seq, Outcome(100))
			}
			if in.DescCorrupt() {
				seq = append(seq, Outcome(200))
			}
		}
		return seq
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("sequence lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %v vs %v", i, a[i], b[i])
		}
	}
	// A different seed must (for these rates) give a different sequence.
	other := New(Config{Seed: 8, LinkCorruptRate: 0.3, LinkDropRate: 0.1, EOCHangRate: 0.5, DescCorruptRate: 0.2})
	var c []Outcome
	for i := 0; i < 200; i++ {
		c = append(c, other.LinkBurst())
		if other.EOCHang() {
			c = append(c, Outcome(100))
		}
		if other.DescCorrupt() {
			c = append(c, Outcome(200))
		}
	}
	same := len(a) == len(c)
	if same {
		for i := range a {
			if a[i] != c[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("seeds 7 and 8 produced identical fault streams")
	}
}

func TestRatesRoughlyHold(t *testing.T) {
	in := New(Config{Seed: 1, LinkCorruptRate: 0.25})
	const n = 20000
	hits := 0
	for i := 0; i < n; i++ {
		if in.LinkBurst() == BurstCorrupt {
			hits++
		}
	}
	got := float64(hits) / n
	if got < 0.22 || got > 0.28 {
		t.Fatalf("corrupt rate %.3f, want ~0.25", got)
	}
	if in.Count(LinkCorrupt) != hits {
		t.Fatalf("Count=%d, hits=%d", in.Count(LinkCorrupt), hits)
	}
}

func TestMaxFaultsBound(t *testing.T) {
	in := New(Config{Seed: 3, LinkCorruptRate: 1, MaxFaults: 4})
	faults := 0
	for i := 0; i < 100; i++ {
		if in.LinkBurst() != BurstOK {
			faults++
		}
	}
	if faults != 4 || in.Injected() != 4 {
		t.Fatalf("injected %d/%d faults, want exactly 4", faults, in.Injected())
	}
}

func TestCorruptBitFlipsExactlyOneBit(t *testing.T) {
	in := New(Config{Seed: 9})
	data := make([]byte, 64)
	orig := append([]byte(nil), data...)
	in.CorruptBit(data)
	diff := 0
	for i := range data {
		for b := 0; b < 8; b++ {
			if (data[i]^orig[i])&(1<<b) != 0 {
				diff++
			}
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits flipped, want 1", diff)
	}
}

func TestParseSpec(t *testing.T) {
	cfg, err := ParseSpec("seed=3,rate=0.2")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Seed != 3 || cfg.LinkCorruptRate != 0.2 || cfg.LinkDropRate != 0.2 ||
		cfg.EOCHangRate != 0.2 || cfg.DescCorruptRate != 0.2 {
		t.Fatalf("rate shorthand not applied: %+v", cfg)
	}
	// Specific keys override the shorthand, regardless of order.
	cfg, err = ParseSpec("hang=1,rate=0.1,seed=5,max=2")
	if err != nil {
		t.Fatal(err)
	}
	if cfg.EOCHangRate != 1 || cfg.LinkCorruptRate != 0.1 || cfg.MaxFaults != 2 || cfg.Seed != 5 {
		t.Fatalf("override parse: %+v", cfg)
	}
	for _, bad := range []string{"rate", "rate=x", "seed=-1", "unknown=1", "rate=1.5", "max=-2"} {
		if _, err := ParseSpec(bad); err == nil {
			t.Errorf("spec %q should not parse", bad)
		}
	}
	// Empty spec is a valid no-fault config.
	if cfg, err := ParseSpec(""); err != nil || cfg != (Config{}) {
		t.Errorf("empty spec: %+v, %v", cfg, err)
	}
}
