// Package prof wires Go's runtime profilers into the command-line tools.
// The simulator is a pure-CPU workload, so a pprof capture of a real run
// (rather than the micro benchmark) is the first artifact to look at when
// throughput regresses; every cmd exposes it behind -cpuprofile and
// -memprofile flags through this package.
package prof

import (
	"context"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"
)

// Label runs f under a pprof "phase" label so its samples are separable in
// -cpuprofile output (e.g. block compilation vs simulation proper:
// `pprof -tagfocus phase=block-compile`). Free when no profile is active.
func Label(name string, f func()) {
	pprof.Do(context.Background(), pprof.Labels("phase", name), func(context.Context) {
		f()
	})
}

// Start begins the profiles selected by the (possibly empty) file paths
// and returns a stop function that must run before the process exits:
// it flushes the CPU profile and captures the heap profile. An empty path
// disables that profile; Start with both paths empty returns a no-op stop.
// The stop function is idempotent, so error paths can call it
// unconditionally before exiting without breaking the normal-exit call.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("prof: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("prof: starting CPU profile: %w", err)
		}
	}
	var once sync.Once
	var stopErr error
	stop = func() error {
		once.Do(func() { stopErr = flush(cpuFile, memPath) })
		return stopErr
	}
	return stop, nil
}

// flush ends the CPU profile and captures the heap profile.
func flush(cpuFile *os.File, memPath string) error {
	if cpuFile != nil {
		pprof.StopCPUProfile()
		if err := cpuFile.Close(); err != nil {
			return fmt.Errorf("prof: %w", err)
		}
	}
	if memPath != "" {
		f, err := os.Create(memPath)
		if err != nil {
			return fmt.Errorf("prof: %w", err)
		}
		defer f.Close()
		runtime.GC() // settle live objects so the heap profile is stable
		if err := pprof.WriteHeapProfile(f); err != nil {
			return fmt.Errorf("prof: writing heap profile: %w", err)
		}
	}
	return nil
}
