// Package core implements the paper's primary contribution: the
// heterogeneous accelerator model coupling a commercial MCU host with the
// PULP parallel accelerator over a low-power SPI/QSPI link.
//
// A System bundles the three hardware pieces — host MCU (internal/mcu),
// link (internal/spilink) and accelerator cluster (internal/cluster) at a
// chosen voltage/frequency operating point — and implements the offload
// protocol of Section III:
//
//  1. the host parses the kernel's binary image and writes text, data and
//     the job descriptor into the accelerator L2 over the link;
//  2. per iteration, the host streams the input buffer into L2, raises the
//     fetch-enable GPIO, and sleeps;
//  3. the device runtime stages data into the TCDM by DMA, runs the kernel
//     on the OpenMP team, stages the output back and raises EOC;
//  4. the host wakes on the EOC GPIO and reads the output back.
//
// Every payload byte really crosses the simulated link and the kernel
// really executes on the cycle-accurate cluster, so the returned output is
// checked against golden models in the tests; time and energy are composed
// from the same measured phases, including the double-buffered pipeline of
// Fig. 5b where transfers overlap computation.
//
// On top of the happy path the runtime is resilient: an EOC watchdog
// bounds how long the host waits for the accelerator, failed attempts are
// retried with exponential backoff (first a fresh fetch-enable edge, then
// a full reload over the link), the descriptor can be write-verified, and
// a host-fallback degrades gracefully to native MCU execution when the
// accelerator persistently fails. Combined with CRC link framing
// (internal/spilink) and the deterministic fault injector
// (internal/fault), every recovery action has a visible time/energy price
// in the Report. With all resilience options off and no injector attached
// the runtime is byte- and float-identical to the plain protocol.
package core

import (
	"bytes"
	"errors"
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/cluster"
	"hetsim/internal/fault"
	"hetsim/internal/hw"
	"hetsim/internal/kernels"
	"hetsim/internal/loader"
	"hetsim/internal/mcu"
	"hetsim/internal/obs"
	"hetsim/internal/power"
	"hetsim/internal/spilink"
	"hetsim/internal/trace"
)

// Typed offload failures, matchable with errors.Is. The link-level
// sentinels are re-exported so callers need only this package.
var (
	// ErrLinkCRC: a link burst kept failing its CRC check beyond the
	// retransmission limit.
	ErrLinkCRC = spilink.ErrLinkCRC
	// ErrLinkDropped: a link burst kept vanishing beyond the
	// retransmission limit.
	ErrLinkDropped = spilink.ErrLinkDropped
	// ErrEOCTimeout: one attempt ended without a usable end-of-computation
	// signal before the watchdog expired.
	ErrEOCTimeout = errors.New("core: end-of-computation watchdog expired")
	// ErrDeviceHang: the accelerator stayed unresponsive after every
	// configured retry, including full reloads.
	ErrDeviceHang = errors.New("core: accelerator unresponsive, recovery exhausted")
	// ErrDescriptorCorrupt: the job descriptor read back from device
	// memory kept mismatching what was written.
	ErrDescriptorCorrupt = errors.New("core: job descriptor corrupt in device memory")
)

// Config selects the three components of a heterogeneous system.
type Config struct {
	Host       power.MCUModel
	HostFreqHz float64

	// Lanes is the link width: 1 (plain SPI wires of the prototype) or 4
	// (the QSPI interface used for the Fig. 5b evaluation).
	Lanes int

	// LinkClockHz decouples the SPI clock from the MCU clock (0 keeps the
	// prototype behaviour, MCU clock / 2). Section V proposes exactly this:
	// "a low-power, high-throughput SPI link that is not tied to the MCU
	// core frequency".
	LinkClockHz float64

	// LinkCRC enables per-burst CRC-32 framing on the link: corruption and
	// loss are detected and retransmitted, at the price of 4 trailer bytes
	// per burst (see internal/spilink).
	LinkCRC bool

	// Accelerator operating point. AccFreqHz must not exceed the maximum
	// frequency of AccVdd.
	AccVdd    float64
	AccFreqHz float64

	// AccCluster overrides the accelerator cluster shape (default:
	// cluster.PULPConfig).
	AccCluster *cluster.Config
}

// System is an instantiated host+link+accelerator pair.
type System struct {
	Host   *mcu.Host
	Link   *spilink.Link
	AccCfg cluster.Config
	Vdd    float64
	FAcc   float64
}

// NewSystem validates the configuration and builds the system.
func NewSystem(cfg Config) (*System, error) {
	host, err := mcu.New(cfg.Host, cfg.HostFreqHz)
	if err != nil {
		return nil, err
	}
	if cfg.Lanes != 1 && cfg.Lanes != 4 {
		return nil, fmt.Errorf("core: link must have 1 or 4 lanes, got %d", cfg.Lanes)
	}
	if fm := power.FMaxAt(cfg.AccVdd); cfg.AccFreqHz <= 0 || cfg.AccFreqHz > fm {
		return nil, fmt.Errorf("core: accelerator frequency %.1f MHz exceeds f_max %.1f MHz at %.2f V",
			cfg.AccFreqHz/1e6, fm/1e6, cfg.AccVdd)
	}
	linkClock := cfg.LinkClockHz
	if linkClock == 0 {
		linkClock = host.SPIClock()
	}
	if linkClock < 0 || linkClock > 50e6 {
		return nil, fmt.Errorf("core: link clock %.1f MHz out of range (0..50]", linkClock/1e6)
	}
	// MaxBurst is left unset: spilink.New fills in spilink.DefaultMaxBurst.
	lcfg := spilink.Config{Lanes: cfg.Lanes, ClockHz: linkClock, CmdBytes: 9, CRC: cfg.LinkCRC}
	acc := cluster.PULPConfig()
	if cfg.AccCluster != nil {
		acc = *cfg.AccCluster
	}
	return &System{
		Host:   host,
		Link:   spilink.New(lcfg),
		AccCfg: acc,
		Vdd:    cfg.AccVdd,
		FAcc:   cfg.AccFreqHz,
	}, nil
}

// DefaultBackoffBase is the host-side wait before the first retry when
// Options.BackoffBase is unset (doubles per subsequent retry).
const DefaultBackoffBase = 100e-6 // seconds

// Options tunes one offload.
type Options struct {
	// Iterations is the number of benchmark iterations per offload (each
	// with its own input/output transfer), the x axis of Fig. 5b.
	Iterations int
	// DoubleBuffer overlaps the data transfer of iteration i+1 with the
	// computation of iteration i (the rightmost plot of Fig. 5b).
	DoubleBuffer bool
	// MaxCycles bounds the accelerator simulation (default 2e9).
	MaxCycles uint64
	// Sensor, when set, feeds the input buffer from a sensor instead of
	// from host memory (see internal/sensor). With ViaLink the sample
	// still crosses the SPI link after acquisition (the Figure 1 model);
	// without, it lands in accelerator L2 over a dedicated interface (the
	// Section V variant) and the link carries only control traffic.
	Sensor *SensorFeed

	// HostTaskFraction models the Section V scenario of "an additional,
	// separate task performed on the host at the same time": the fraction
	// of host cycles (0..0.9) consumed by that task. Link-driving phases
	// stretch by 1/(1-f), and the host never sleeps (it runs its task
	// while the accelerator computes), which raises the MCU energy.
	HostTaskFraction float64

	// --- Resilience. The zero value of every field below keeps the plain
	// --- happy-path protocol at zero extra cost.

	// WatchdogCycles bounds each attempt's wait for EOC, in accelerator
	// cycles (the host arms a timer when it raises fetch-enable). 0
	// disables the watchdog: the wait is bounded only by MaxCycles.
	WatchdogCycles uint64
	// Retries is how many times a failed attempt is recovered: the first
	// retry re-raises fetch-enable on the loaded state, every later one
	// reloads binary, descriptor and input over the link first.
	Retries int
	// BackoffBase is the host-side wait before retry k (BackoffBase·2^k
	// seconds, 0 = DefaultBackoffBase).
	BackoffBase float64
	// VerifyDescriptor reads the descriptor back after writing it and
	// rewrites on mismatch (up to Retries times), catching corruption the
	// link CRC cannot see. Costs one descriptor-sized read per check.
	VerifyDescriptor bool
	// HostFallback is the host-ISA build of the same kernel; when set,
	// exhausted recovery degrades gracefully to native MCU execution via
	// the Baseline path instead of failing the offload.
	HostFallback *asm.Program

	// Faults injects deterministic faults into the link and the offload
	// protocol for this offload (nil = clean hardware).
	Faults *fault.Injector
	// Tracer, when set, is attached to the cluster and additionally
	// receives offload-level fault/recovery events as KindNote.
	Tracer *trace.Tracer

	// Obs, when set, accumulates the per-core cycle attribution of every
	// cluster run of this offload (across retry attempts; see internal/obs).
	// Nil keeps the cluster's zero-cost fast paths.
	Obs *obs.Attribution
	// Timeline, when set, receives the offload-level span timeline: host
	// protocol phases, SPI bursts (incl. retransmissions), recovery events,
	// and the accelerator-side spans (core run/sleep, DMA transfers,
	// barriers, I$ refills) anchored to the wall clock of each attempt.
	// Timeline.Export writes Chrome trace-event JSON loadable in Perfetto.
	// The timeline shows the measured first iteration; further iterations
	// and the HostTaskFraction stretch are composed analytically into the
	// Report and marked with a summary instant, not expanded span by span.
	Timeline *obs.Timeline
}

// SensorFeed describes the per-iteration input acquisition path.
type SensorFeed struct {
	AcquireTime   float64 // seconds to move one sample over the sensor bus
	SampleEnergyJ float64 // acquisition energy per sample
	ViaLink       bool    // true: sensor -> MCU -> SPI; false: sensor -> L2
}

// Report is the full accounting of one offload.
type Report struct {
	// Sizes.
	BinaryBytes int
	InBytes     int
	OutBytes    int

	// Phase durations (seconds).
	BinTime     float64 // binary image + descriptor over the link
	InTime      float64 // one iteration's input transfer (incl. trigger)
	OutTime     float64 // one iteration's output transfer (incl. wake)
	ComputeTime float64 // one iteration on the accelerator

	Iterations   int
	DoubleBuffer bool

	TotalTime float64 // whole offload, all iterations (incl. recovery)
	IdealTime float64 // Iterations * ComputeTime (the Fig. 5b ideal)
	// Efficiency = IdealTime / TotalTime, the y axis of Fig. 5b.
	Efficiency float64

	ComputeCycles uint64
	Activity      power.Activity
	Energy        power.Energy

	// Power levels for reference (W).
	AccPowerW  float64 // accelerator while computing
	HostPowerW float64 // host while driving the link
	LinkPowerW float64 // link while clocking

	// Resilience accounting. All zero on a clean run.
	Retries            int     // recovery attempts actually performed
	WatchdogTrips      int     // attempts that ended without a usable EOC
	Retransmits        uint64  // link bursts repeated under CRC framing
	RetransmittedBytes uint64  // wire bytes spent on those repeats
	DescRewrites       int     // descriptor write-verify mismatches recovered
	FallbackUsed       bool    // the job ran on the host Baseline path
	RecoveryTime       float64 // seconds added by watchdog waits, backoff and reloads
	RecoveryEnergyJ    float64 // energy added by the same

	// Memory-fault accounting (see cluster.AttachFaults). Counters come
	// from the cluster of the final attempt; a full-reload retry rebuilds
	// the cluster, so faults absorbed by earlier attempts show up in the
	// injector's own Count(), not here.
	ParityErrors uint64 // detected I-cache parity errors (refill recovered)
	MemFlips     uint64 // SEU bit-flips landed in TCDM/L2 words
	DMACorrupted uint64 // DMA beats corrupted in flight
}

// gpioCycles is the cost of a GPIO edge plus interrupt entry on the host
// (fetch-enable trigger, EOC wake).
const gpioCycles = 20

// Offload runs one offload of the job and returns the device's output
// bytes plus the full time/energy report. With Options resilience fields
// set it survives link corruption, descriptor corruption and accelerator
// hangs up to the configured budgets, falling back to native host
// execution when HostFallback is provided.
func (s *System) Offload(job loader.Job, opts Options) ([]byte, *Report, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 2_000_000_000
	}
	if job.Threads == 0 {
		job.Threads = uint32(s.AccCfg.Cores)
	}
	if opts.HostTaskFraction < 0 || opts.HostTaskFraction > 0.9 {
		return nil, nil, fmt.Errorf("core: host task fraction %v out of [0, 0.9]", opts.HostTaskFraction)
	}
	if opts.Retries < 0 || opts.Retries > 16 {
		return nil, nil, fmt.Errorf("core: retries %d out of [0, 16]", opts.Retries)
	}
	if opts.BackoffBase < 0 {
		return nil, nil, fmt.Errorf("core: negative backoff base %v", opts.BackoffBase)
	}
	if opts.BackoffBase == 0 {
		opts.BackoffBase = DefaultBackoffBase
	}
	if opts.WatchdogCycles == 0 || opts.WatchdogCycles > opts.MaxCycles {
		opts.WatchdogCycles = opts.MaxCycles
	}
	if job.StackCores == 0 {
		job.StackCores = s.AccCfg.Cores
	}
	lay, err := loader.Plan(job, s.AccCfg.TCDMSize, s.AccCfg.L2Size)
	if err != nil {
		return nil, nil, err
	}

	// Serialize the binary and re-parse it: the byte stream on the link is
	// all the accelerator side ever sees.
	image, err := job.Prog.Image()
	if err != nil {
		return nil, nil, err
	}
	parsed, err := asm.ParseImage(image)
	if err != nil {
		return nil, nil, err
	}

	r := &offloadRun{sys: s, job: job, opts: opts, lay: lay, image: image, parsed: parsed}
	return r.run()
}

// offloadRun carries the state of one Offload call: the measured phase
// times/energies, the recovery ledger and the live cluster.
type offloadRun struct {
	sys    *System
	job    loader.Job
	opts   Options
	lay    loader.Layout
	image  []byte
	parsed *asm.Program
	acc    *cluster.Cluster

	// Happy-path phase measurements (seconds / joules on the link).
	tBin, eBin float64
	tIn, eIn   float64

	// Recovery ledger.
	recActive    float64 // host driving the link or GPIO during recovery
	recSleep     float64 // host asleep: watchdog waits and backoff
	recAccActive float64 // accelerator busy during failed attempts
	recLinkE     float64 // link energy spent on recovery transfers
	trips        int
	retries      int
	descRewrites int

	// Observability. tl is the wall-clock timeline (nil unless
	// Options.Timeline is set), ctl the cycle-domain span recorder drained
	// after each cluster run, clk the host wall clock in seconds. eLink0
	// snapshots the link energy meter at offload start: the fallback path
	// reports the meter delta, which stays correct when a transfer dies
	// mid-phase and the per-phase snapshots never see its energy.
	tl     *obs.Timeline
	ctl    *obs.ClusterTL
	clk    float64
	eLink0 float64
}

// hostSpan emits one host-side phase span on the protocol track and
// advances the host clock by its duration.
func (r *offloadRun) hostSpan(name, cat string, dur float64, args map[string]any) {
	if r.tl != nil {
		r.tl.Span(obs.PidHost, obs.TidPhases, name, cat, r.clk*1e6, dur*1e6, args)
	}
	r.clk += dur
}

// hostEvent drops an instant marker on the runtime-events track at the
// current host clock.
func (r *offloadRun) hostEvent(name string, args map[string]any) {
	if r.tl != nil {
		r.tl.Instant(obs.PidHost, obs.TidEvents, name, "recover", r.clk*1e6, args)
	}
}

// linkSeek aligns the link's burst cursor with the host clock before a
// link-driven phase.
func (r *offloadRun) linkSeek() {
	if r.tl != nil {
		r.sys.Link.TLSeek(r.clk)
	}
}

// nameTracks emits the process/thread metadata for the timeline's track
// layout (see internal/obs).
func (r *offloadRun) nameTracks() {
	s := r.sys
	r.tl.NameProcess(obs.PidHost, "host MCU ("+s.Host.Model.Name+")")
	r.tl.NameProcess(obs.PidAccel, fmt.Sprintf("PULP cluster (%d cores)", s.AccCfg.Cores))
	r.tl.NameThread(obs.PidHost, obs.TidPhases, "offload protocol")
	r.tl.NameThread(obs.PidHost, obs.TidLink, "SPI link")
	r.tl.NameThread(obs.PidHost, obs.TidEvents, "runtime events")
	for i := 0; i < s.AccCfg.Cores; i++ {
		r.tl.NameThread(obs.PidAccel, obs.TidCore0+i, fmt.Sprintf("core %d", i))
	}
	for i := 0; i < hw.NumDMAChannels; i++ {
		r.tl.NameThread(obs.PidAccel, obs.TidDMA0+i, fmt.Sprintf("dma ch %d", i))
	}
	r.tl.NameThread(obs.PidAccel, obs.TidSync, "barrier unit")
	r.tl.NameThread(obs.PidAccel, obs.TidICache, "icache refill")
}

// note emits an offload-level event into the attached tracer.
func (r *offloadRun) note(format string, args ...interface{}) {
	if r.opts.Tracer == nil {
		return
	}
	var cycle uint64
	if r.acc != nil {
		cycle = r.acc.Now()
	}
	r.opts.Tracer.Emit(trace.Event{Cycle: cycle, Kind: trace.KindNote,
		Note: "offload: " + fmt.Sprintf(format, args...)})
}

func (r *offloadRun) run() ([]byte, *Report, error) {
	s := r.sys

	// The injector rides on the link for the duration of this offload.
	prevInject := s.Link.Inject
	s.Link.Inject = r.opts.Faults
	defer func() { s.Link.Inject = prevInject }()
	retrans0 := s.Link.Retransmits
	retransB0 := s.Link.RetransmittedBytes
	r.eLink0 = s.Link.EnergyJ

	if r.opts.Timeline != nil {
		r.tl = r.opts.Timeline
		r.ctl = &obs.ClusterTL{}
		r.nameTracks()
		prevTL := s.Link.TL
		s.Link.TL, s.Link.TLPid, s.Link.TLTid = r.tl, obs.PidHost, obs.TidLink
		defer func() { s.Link.TL = prevTL }()
	}

	if err := r.buildCluster(); err != nil {
		return nil, nil, err
	}
	r.linkSeek()
	tBin, eBin, err := r.loadImage()
	if err != nil {
		return r.fail(err, retrans0, retransB0)
	}
	r.tBin, r.eBin = tBin, eBin
	r.hostSpan("load image+descriptor", "phase", tBin, map[string]any{"bytes": len(r.image)})
	r.linkSeek()
	tIn, eIn, err := r.writeInput()
	if err != nil {
		return r.fail(err, retrans0, retransB0)
	}
	r.tIn, r.eIn = tIn, eIn
	r.hostSpan("write input", "phase", tIn, map[string]any{"bytes": len(r.job.In)})

	res, err := r.attempts()
	if err != nil {
		return r.fail(err, retrans0, retransB0)
	}

	stats := r.acc.CollectStats()
	act := power.ActivityOf(stats)
	tComp := float64(res.Cycles) / s.FAcc

	// Output transfer + EOC wake.
	var out []byte
	tOut := float64(gpioCycles) / s.Host.FreqHz
	eOut := 0.0
	if r.job.OutLen > 0 {
		r.linkSeek()
		e0 := s.Link.EnergyJ
		data, t, err := s.Link.Read(r.acc.L2, r.lay.OutLMA, r.job.OutLen)
		if err != nil {
			return r.fail(err, retrans0, retransB0)
		}
		out = data
		tOut += t
		eOut = s.Link.EnergyJ - e0
	}
	r.hostSpan("read output", "phase", tOut, map[string]any{"bytes": r.job.OutLen})
	if r.tl != nil && r.opts.Iterations > 1 {
		r.tl.Instant(obs.PidHost, obs.TidPhases,
			fmt.Sprintf("x%d iterations (first shown)", r.opts.Iterations), "phase", r.clk*1e6, nil)
	}

	tBin, tIn = r.tBin, r.tIn
	// A concurrent host task steals cycles from every host-driven phase.
	if f := r.opts.HostTaskFraction; f > 0 {
		stretch := 1 / (1 - f)
		tBin *= stretch
		tIn *= stretch
		tOut *= stretch
		r.recActive *= stretch
	}

	// Timeline composition over the iterations, plus the recovery ledger.
	n := float64(r.opts.Iterations)
	var total float64
	if r.opts.DoubleBuffer {
		steady := tComp
		if xfer := tIn + tOut; xfer > steady {
			steady = xfer
		}
		total = tBin + tIn + (n-1)*steady + tComp + tOut
	} else {
		total = tBin + n*(tIn+tComp+tOut)
	}
	recT := r.recActive + r.recSleep
	total += recT
	ideal := n * tComp

	// Energy composition. The link energies are measured per phase from
	// the link's own meter (so CRC trailers and retransmissions are
	// priced), then scaled over the iterations like the timeline.
	xferTime := tBin + n*(tIn+tOut) + r.recActive
	computeTime := n*tComp + r.recAccActive
	accRun := power.PULPPowerW(s.Vdd, s.FAcc, act)
	accIdle := power.PULPPowerW(s.Vdd, s.FAcc, power.IdleActivity(s.AccCfg.Cores))
	idleTime := total - computeTime
	if idleTime < 0 {
		idleTime = 0
	}
	mcuJ := s.Host.RunPowerW()*xferTime + s.Host.Model.SleepW*(total-xferTime)
	if r.opts.HostTaskFraction > 0 {
		// The host runs its own task whenever it is not driving the link.
		mcuJ = s.Host.RunPowerW() * total
	}
	en := power.Energy{
		SPIJ:  r.eBin + n*(r.eIn+eOut) + r.recLinkE,
		MCUJ:  mcuJ,
		PULPJ: accRun*computeTime + accIdle*idleTime,
	}
	if r.opts.Sensor != nil {
		en.SensorJ = n * r.opts.Sensor.SampleEnergyJ
	}
	recE := 0.0
	if recT > 0 {
		recIdle := recT - r.recAccActive
		if recIdle < 0 {
			recIdle = 0
		}
		recE = r.recLinkE +
			s.Host.RunPowerW()*r.recActive + s.Host.Model.SleepW*r.recSleep +
			accRun*r.recAccActive + accIdle*recIdle
	}

	rep := &Report{
		BinaryBytes:        len(r.image),
		InBytes:            len(r.job.In),
		OutBytes:           int(r.job.OutLen),
		BinTime:            tBin,
		InTime:             tIn,
		OutTime:            tOut,
		ComputeTime:        tComp,
		Iterations:         r.opts.Iterations,
		DoubleBuffer:       r.opts.DoubleBuffer,
		TotalTime:          total,
		IdealTime:          ideal,
		Efficiency:         ideal / total,
		ComputeCycles:      res.Cycles,
		Activity:           act,
		Energy:             en,
		AccPowerW:          accRun,
		HostPowerW:         s.Host.RunPowerW(),
		LinkPowerW:         power.SPIPowerW(s.Link.Cfg.ClockHz, s.Link.Cfg.Lanes),
		Retries:            r.retries,
		WatchdogTrips:      r.trips,
		Retransmits:        s.Link.Retransmits - retrans0,
		RetransmittedBytes: s.Link.RetransmittedBytes - retransB0,
		DescRewrites:       r.descRewrites,
		RecoveryTime:       recT,
		RecoveryEnergyJ:    recE,
		ParityErrors:       stats.ICParity,
		MemFlips:           stats.TCDMFlips + stats.L2Flips,
		DMACorrupted:       stats.DMACorrupted,
	}
	return out, rep, nil
}

// buildCluster builds (or rebuilds, on a full reload) the accelerator and
// installs the parsed program. The fault injector attaches before the
// program lands so the load itself is exposed to memory faults.
func (r *offloadRun) buildCluster() error {
	acc := cluster.New(r.sys.AccCfg)
	acc.AttachFaults(r.opts.Faults)
	// The predecoded text and block table come from the per-process memo:
	// repeat offloads, retries and parallel sweep workers running the same
	// image share one compilation (LoadCompiled decides per cluster whether
	// the block table is actually installed — faults or a tracer strip it).
	comp, err := kernels.Compiled(r.parsed, r.sys.AccCfg.Target)
	if err != nil {
		return err
	}
	if err := acc.LoadCompiled(r.parsed, false, comp); err != nil {
		return err
	}
	acc.AttachTracer(r.opts.Tracer)
	if r.opts.Obs != nil || r.ctl != nil {
		// Attribution accumulates across full-reload rebuilds; the span
		// recorder is drained (with the attempt's wall-clock anchor) after
		// every cluster run.
		acc.AttachObs(&obs.Observer{Attr: r.opts.Obs, TL: r.ctl})
	}
	r.acc = acc
	return nil
}

// loadImage performs the host-side loader protocol: text, data and the
// job descriptor over the link, with optional write-verify of the
// descriptor. Returns the phase time and link energy.
func (r *offloadRun) loadImage() (t, e float64, err error) {
	s := r.sys
	e0 := s.Link.EnergyJ
	textBytes := r.image[36 : 36+4*len(r.parsed.Text)]
	t, err = s.Link.Write(r.acc.L2, r.parsed.TextBase, textBytes)
	if err != nil {
		return 0, 0, err
	}
	if len(r.parsed.Data) > 0 {
		td, err := s.Link.Write(r.acc.L2, r.parsed.DataLMA, r.parsed.Data)
		if err != nil {
			return 0, 0, err
		}
		t += td
	}
	tDesc, err := r.writeDescriptor()
	if err != nil {
		return 0, 0, err
	}
	t += tDesc
	return t, s.Link.EnergyJ - e0, nil
}

// writeDescriptor writes the hw.Desc block, applies any injected
// descriptor corruption (a device-memory fault the link CRC cannot see),
// and — when write-verify is on — reads it back and rewrites on mismatch.
func (r *offloadRun) writeDescriptor() (t float64, err error) {
	s := r.sys
	desc := loader.Descriptor(r.job, r.lay)
	for rewrite := 0; ; rewrite++ {
		tw, err := s.Link.Write(r.acc.L2, hw.DescBase, desc)
		if err != nil {
			return t, err
		}
		t += tw
		if r.opts.Faults.DescCorrupt() {
			raw := r.acc.L2.ReadBytes(hw.DescBase, hw.DescSize)
			r.opts.Faults.CorruptBit(raw)
			if err := r.acc.L2.WriteBytes(hw.DescBase, raw); err != nil {
				return t, err
			}
			r.note("injected descriptor corruption in L2")
		}
		if !r.opts.VerifyDescriptor {
			return t, nil
		}
		back, tr, err := s.Link.Read(r.acc.L2, hw.DescBase, hw.DescSize)
		if err != nil {
			return t, err
		}
		t += tr
		if bytes.Equal(back, desc) {
			return t, nil
		}
		r.note("descriptor readback mismatch (rewrite %d)", rewrite+1)
		if rewrite >= r.opts.Retries {
			return t, fmt.Errorf("%w after %d rewrite(s)", ErrDescriptorCorrupt, rewrite)
		}
		r.descRewrites++
	}
}

// writeInput stages one iteration's input (host memory or sensor) and
// the fetch-enable trigger. Returns the phase time and link energy.
func (r *offloadRun) writeInput() (t, e float64, err error) {
	s := r.sys
	t = float64(gpioCycles) / s.Host.FreqHz
	inViaLink := true
	if r.opts.Sensor != nil {
		t += r.opts.Sensor.AcquireTime
		inViaLink = r.opts.Sensor.ViaLink
	}
	if len(r.job.In) > 0 {
		if inViaLink {
			e0 := s.Link.EnergyJ
			tw, err := s.Link.Write(r.acc.L2, r.lay.InLMA, r.job.In)
			if err != nil {
				return 0, 0, err
			}
			t += tw
			e = s.Link.EnergyJ - e0
		} else if err := r.acc.L2.WriteBytes(r.lay.InLMA, r.job.In); err != nil {
			return 0, 0, err
		}
	}
	return t, e, nil
}

// attempts drives the retry state machine: run under the watchdog, then
// back off and re-trigger, then back off and fully reload, until the
// budget is exhausted.
func (r *offloadRun) attempts() (cluster.RunResult, error) {
	s := r.sys
	maxAttempts := 1 + r.opts.Retries
	var res cluster.RunResult
	var cause error
	for attempt := 0; attempt < maxAttempts; attempt++ {
		if attempt > 0 {
			r.retries++
			backoff := r.opts.BackoffBase * float64(uint64(1)<<uint(attempt-1))
			r.recSleep += backoff
			r.hostSpan(fmt.Sprintf("backoff %d", attempt), "recover", backoff, nil)
			if attempt == 1 {
				// First retry: the cheapest plausible recovery, a fresh
				// fetch-enable edge on the already-loaded state.
				r.recActive += float64(gpioCycles) / s.Host.FreqHz
				r.hostEvent("retry: re-raise fetch-enable", nil)
				r.note("retry %d: re-raising fetch-enable after %.2f ms backoff", attempt, backoff*1e3)
			} else {
				// Later retries assume device state is lost: rebuild the
				// cluster and replay the whole load protocol.
				r.note("retry %d: full reload after %.2f ms backoff", attempt, backoff*1e3)
				if err := r.buildCluster(); err != nil {
					return res, err
				}
				r.linkSeek()
				trl, el, err := r.loadImage()
				if err != nil {
					return res, err
				}
				r.hostSpan("reload image+descriptor", "recover", trl, nil)
				r.linkSeek()
				ti, ei, err := r.writeInput()
				if err != nil {
					return res, err
				}
				r.hostSpan("rewrite input", "recover", ti, nil)
				r.recActive += trl + ti
				r.recLinkE += el + ei
			}
		}
		hang := r.opts.Faults.EOCHang()
		r.acc.SuppressEOC = hang
		if hang {
			r.note("injecting EOC hang for attempt %d", attempt+1)
		}
		r.acc.Start(r.parsed.Entry)
		c0 := r.acc.Now()
		base := r.clk
		var err error
		res, err = r.acc.Run(r.opts.WatchdogCycles)
		ran := float64(r.acc.Now()-c0) / s.FAcc
		if r.ctl != nil {
			// Anchor this attempt's accelerator spans: cluster cycle c0 maps
			// to the host clock at fetch-enable.
			r.ctl.DrainInto(r.tl, obs.PidAccel, c0, base*1e6, 1e6/s.FAcc)
		}
		if err == nil && res.EOC && res.EOCValue == 1 {
			r.hostSpan(fmt.Sprintf("compute (attempt %d)", attempt+1), "phase", ran,
				map[string]any{"cycles": res.Cycles})
			if attempt > 0 {
				r.note("attempt %d completed after %d watchdog trip(s)", attempt+1, r.trips)
			}
			return res, nil
		}
		r.trips++
		switch {
		case err != nil:
			cause = fmt.Errorf("%w: %v", ErrEOCTimeout, err)
		case res.Halted:
			cause = fmt.Errorf("%w: device halted (trap %d) without EOC", ErrEOCTimeout, res.TrapCode)
		default:
			cause = fmt.Errorf("%w: EOC value %d", ErrEOCTimeout, res.EOCValue)
		}
		// The host cannot see why the device wedged; it sleeps out the
		// full watchdog window. The device was only active until the
		// simulator saw it stop.
		wait := float64(r.opts.WatchdogCycles) / s.FAcc
		active := float64(res.Cycles) / s.FAcc
		if active > wait {
			wait = active
		}
		r.recSleep += wait
		r.recAccActive += active
		r.hostSpan("watchdog wait", "recover", wait, nil)
		r.hostEvent(fmt.Sprintf("watchdog trip %d", r.trips),
			map[string]any{"attempt": attempt + 1, "cause": cause.Error()})
		r.note("watchdog trip %d on attempt %d: %v", r.trips, attempt+1, cause)
	}
	return res, fmt.Errorf("%w after %d attempt(s), %d watchdog trip(s); last: %w",
		ErrDeviceHang, maxAttempts, r.trips, cause)
}

// fail ends the offload: with a HostFallback program it degrades to
// native MCU execution (the accelerator-less path of Fig. 1), otherwise
// it surfaces the typed error.
func (r *offloadRun) fail(cause error, retrans0, retransB0 uint64) ([]byte, *Report, error) {
	s := r.sys
	if r.opts.HostFallback == nil {
		return nil, nil, fmt.Errorf("core: offloaded %s: %w", r.job.Prog.Name, cause)
	}
	r.note("falling back to host execution: %v", cause)
	r.hostEvent("fallback to host execution", map[string]any{"cause": cause.Error()})
	fjob := r.job
	fjob.Prog = r.opts.HostFallback
	base, err := s.Baseline(fjob, r.opts.MaxCycles)
	if err != nil {
		return nil, nil, fmt.Errorf("core: offloaded %s: %w; host fallback also failed: %v",
			r.job.Prog.Name, cause, err)
	}

	// Everything spent on the accelerator path was wasted; the useful work
	// is n native iterations.
	n := float64(r.opts.Iterations)
	wasted := r.tBin + r.tIn + r.recActive + r.recSleep
	total := wasted + n*base.Seconds
	ideal := n * base.Seconds
	accIdle := power.PULPPowerW(s.Vdd, s.FAcc, power.IdleActivity(s.AccCfg.Cores))
	// Link energy is the meter delta for this offload, not the sum of the
	// per-phase snapshots: a transfer that dies mid-phase has already
	// charged the meter for every wire byte it moved (spilink accounts
	// failed bursts too), but the phase reports zero energy to its caller,
	// so composing eBin+eIn+recLinkE undercounts exactly the failed phase.
	linkE := s.Link.EnergyJ - r.eLink0
	wastedE := linkE +
		s.Host.RunPowerW()*(r.tBin+r.tIn+r.recActive) + s.Host.Model.SleepW*r.recSleep +
		accIdle*wasted
	en := power.Energy{
		SPIJ:  linkE,
		MCUJ:  s.Host.RunPowerW()*(r.tBin+r.tIn+r.recActive) + s.Host.Model.SleepW*r.recSleep + n*base.EnergyJ,
		PULPJ: accIdle * wasted,
	}
	r.hostSpan(fmt.Sprintf("host execution x%d", r.opts.Iterations), "fallback", n*base.Seconds, nil)
	if r.opts.Sensor != nil {
		en.SensorJ = n * r.opts.Sensor.SampleEnergyJ
	}
	rep := &Report{
		BinaryBytes:        len(r.image),
		InBytes:            len(r.job.In),
		OutBytes:           int(r.job.OutLen),
		BinTime:            r.tBin,
		InTime:             r.tIn,
		ComputeTime:        base.Seconds,
		Iterations:         r.opts.Iterations,
		DoubleBuffer:       r.opts.DoubleBuffer,
		TotalTime:          total,
		IdealTime:          ideal,
		Efficiency:         ideal / total,
		ComputeCycles:      uint64(base.Cycles),
		Energy:             en,
		AccPowerW:          accIdle,
		HostPowerW:         s.Host.RunPowerW(),
		LinkPowerW:         power.SPIPowerW(s.Link.Cfg.ClockHz, s.Link.Cfg.Lanes),
		Retries:            r.retries,
		WatchdogTrips:      r.trips,
		Retransmits:        s.Link.Retransmits - retrans0,
		RetransmittedBytes: s.Link.RetransmittedBytes - retransB0,
		DescRewrites:       r.descRewrites,
		FallbackUsed:       true,
		RecoveryTime:       wasted,
		RecoveryEnergyJ:    wastedE,
	}
	return base.Out, rep, nil
}

// Baseline runs the job natively on the host MCU for comparison.
func (s *System) Baseline(job loader.Job, maxCycles uint64) (*mcu.BaselineResult, error) {
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}
	return s.Host.RunBaseline(job, maxCycles)
}

// TotalComputePowerW is the system power while the accelerator computes
// and the host sleeps — the quantity constrained to 10 mW in Fig. 5a.
func (s *System) TotalComputePowerW(act power.Activity) float64 {
	return power.PULPPowerW(s.Vdd, s.FAcc, act) + s.Host.Model.SleepW
}
