// Package core implements the paper's primary contribution: the
// heterogeneous accelerator model coupling a commercial MCU host with the
// PULP parallel accelerator over a low-power SPI/QSPI link.
//
// A System bundles the three hardware pieces — host MCU (internal/mcu),
// link (internal/spilink) and accelerator cluster (internal/cluster) at a
// chosen voltage/frequency operating point — and implements the offload
// protocol of Section III:
//
//  1. the host parses the kernel's binary image and writes text, data and
//     the job descriptor into the accelerator L2 over the link;
//  2. per iteration, the host streams the input buffer into L2, raises the
//     fetch-enable GPIO, and sleeps;
//  3. the device runtime stages data into the TCDM by DMA, runs the kernel
//     on the OpenMP team, stages the output back and raises EOC;
//  4. the host wakes on the EOC GPIO and reads the output back.
//
// Every payload byte really crosses the simulated link and the kernel
// really executes on the cycle-accurate cluster, so the returned output is
// checked against golden models in the tests; time and energy are composed
// from the same measured phases, including the double-buffered pipeline of
// Fig. 5b where transfers overlap computation.
package core

import (
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/cluster"
	"hetsim/internal/hw"
	"hetsim/internal/loader"
	"hetsim/internal/mcu"
	"hetsim/internal/power"
	"hetsim/internal/spilink"
)

// Config selects the three components of a heterogeneous system.
type Config struct {
	Host       power.MCUModel
	HostFreqHz float64

	// Lanes is the link width: 1 (plain SPI wires of the prototype) or 4
	// (the QSPI interface used for the Fig. 5b evaluation).
	Lanes int

	// LinkClockHz decouples the SPI clock from the MCU clock (0 keeps the
	// prototype behaviour, MCU clock / 2). Section V proposes exactly this:
	// "a low-power, high-throughput SPI link that is not tied to the MCU
	// core frequency".
	LinkClockHz float64

	// Accelerator operating point. AccFreqHz must not exceed the maximum
	// frequency of AccVdd.
	AccVdd    float64
	AccFreqHz float64

	// AccCluster overrides the accelerator cluster shape (default:
	// cluster.PULPConfig).
	AccCluster *cluster.Config
}

// System is an instantiated host+link+accelerator pair.
type System struct {
	Host   *mcu.Host
	Link   *spilink.Link
	AccCfg cluster.Config
	Vdd    float64
	FAcc   float64
}

// NewSystem validates the configuration and builds the system.
func NewSystem(cfg Config) (*System, error) {
	host, err := mcu.New(cfg.Host, cfg.HostFreqHz)
	if err != nil {
		return nil, err
	}
	if cfg.Lanes != 1 && cfg.Lanes != 4 {
		return nil, fmt.Errorf("core: link must have 1 or 4 lanes, got %d", cfg.Lanes)
	}
	if fm := power.FMaxAt(cfg.AccVdd); cfg.AccFreqHz <= 0 || cfg.AccFreqHz > fm {
		return nil, fmt.Errorf("core: accelerator frequency %.1f MHz exceeds f_max %.1f MHz at %.2f V",
			cfg.AccFreqHz/1e6, fm/1e6, cfg.AccVdd)
	}
	linkClock := cfg.LinkClockHz
	if linkClock == 0 {
		linkClock = host.SPIClock()
	}
	if linkClock < 0 || linkClock > 50e6 {
		return nil, fmt.Errorf("core: link clock %.1f MHz out of range (0..50]", linkClock/1e6)
	}
	lcfg := spilink.Config{Lanes: cfg.Lanes, ClockHz: linkClock, CmdBytes: 9, MaxBurst: 4096}
	acc := cluster.PULPConfig()
	if cfg.AccCluster != nil {
		acc = *cfg.AccCluster
	}
	return &System{
		Host:   host,
		Link:   spilink.New(lcfg),
		AccCfg: acc,
		Vdd:    cfg.AccVdd,
		FAcc:   cfg.AccFreqHz,
	}, nil
}

// Options tunes one offload.
type Options struct {
	// Iterations is the number of benchmark iterations per offload (each
	// with its own input/output transfer), the x axis of Fig. 5b.
	Iterations int
	// DoubleBuffer overlaps the data transfer of iteration i+1 with the
	// computation of iteration i (the rightmost plot of Fig. 5b).
	DoubleBuffer bool
	// MaxCycles bounds the accelerator simulation (default 2e9).
	MaxCycles uint64
	// Sensor, when set, feeds the input buffer from a sensor instead of
	// from host memory (see internal/sensor). With ViaLink the sample
	// still crosses the SPI link after acquisition (the Figure 1 model);
	// without, it lands in accelerator L2 over a dedicated interface (the
	// Section V variant) and the link carries only control traffic.
	Sensor *SensorFeed

	// HostTaskFraction models the Section V scenario of "an additional,
	// separate task performed on the host at the same time": the fraction
	// of host cycles (0..0.9) consumed by that task. Link-driving phases
	// stretch by 1/(1-f), and the host never sleeps (it runs its task
	// while the accelerator computes), which raises the MCU energy.
	HostTaskFraction float64
}

// SensorFeed describes the per-iteration input acquisition path.
type SensorFeed struct {
	AcquireTime   float64 // seconds to move one sample over the sensor bus
	SampleEnergyJ float64 // acquisition energy per sample
	ViaLink       bool    // true: sensor -> MCU -> SPI; false: sensor -> L2
}

// Report is the full accounting of one offload.
type Report struct {
	// Sizes.
	BinaryBytes int
	InBytes     int
	OutBytes    int

	// Phase durations (seconds).
	BinTime     float64 // binary image + descriptor over the link
	InTime      float64 // one iteration's input transfer (incl. trigger)
	OutTime     float64 // one iteration's output transfer (incl. wake)
	ComputeTime float64 // one iteration on the accelerator

	Iterations   int
	DoubleBuffer bool

	TotalTime float64 // whole offload, all iterations
	IdealTime float64 // Iterations * ComputeTime (the Fig. 5b ideal)
	// Efficiency = IdealTime / TotalTime, the y axis of Fig. 5b.
	Efficiency float64

	ComputeCycles uint64
	Activity      power.Activity
	Energy        power.Energy

	// Power levels for reference (W).
	AccPowerW  float64 // accelerator while computing
	HostPowerW float64 // host while driving the link
	LinkPowerW float64 // link while clocking
}

// gpioCycles is the cost of a GPIO edge plus interrupt entry on the host
// (fetch-enable trigger, EOC wake).
const gpioCycles = 20

// Offload runs one offload of the job and returns the device's output
// bytes plus the full time/energy report.
func (s *System) Offload(job loader.Job, opts Options) ([]byte, *Report, error) {
	if opts.Iterations <= 0 {
		opts.Iterations = 1
	}
	if opts.MaxCycles == 0 {
		opts.MaxCycles = 2_000_000_000
	}
	if job.Threads == 0 {
		job.Threads = uint32(s.AccCfg.Cores)
	}
	if opts.HostTaskFraction < 0 || opts.HostTaskFraction > 0.9 {
		return nil, nil, fmt.Errorf("core: host task fraction %v out of [0, 0.9]", opts.HostTaskFraction)
	}
	if job.StackCores == 0 {
		job.StackCores = s.AccCfg.Cores
	}
	lay, err := loader.Plan(job, s.AccCfg.TCDMSize, s.AccCfg.L2Size)
	if err != nil {
		return nil, nil, err
	}

	// Serialize the binary and re-parse it: the byte stream on the link is
	// all the accelerator side ever sees.
	image, err := job.Prog.Image()
	if err != nil {
		return nil, nil, err
	}
	parsed, err := asm.ParseImage(image)
	if err != nil {
		return nil, nil, err
	}

	acc := cluster.New(s.AccCfg)
	if err := acc.LoadProgram(parsed, false); err != nil {
		return nil, nil, err
	}

	// Host-side loader: text+data+descriptor over the link.
	textBytes := image[36 : 36+4*len(parsed.Text)]
	tBin, err := s.Link.Write(acc.L2, parsed.TextBase, textBytes)
	if err != nil {
		return nil, nil, err
	}
	if len(parsed.Data) > 0 {
		t, err := s.Link.Write(acc.L2, parsed.DataLMA, parsed.Data)
		if err != nil {
			return nil, nil, err
		}
		tBin += t
	}
	t, err := s.Link.Write(acc.L2, hw.DescBase, loader.Descriptor(job, lay))
	if err != nil {
		return nil, nil, err
	}
	tBin += t

	// One iteration's input transfer + fetch-enable trigger. A sensor feed
	// adds its acquisition time; the direct-to-L2 wiring bypasses the link.
	tIn := float64(gpioCycles) / s.Host.FreqHz
	inViaLink := true
	if opts.Sensor != nil {
		tIn += opts.Sensor.AcquireTime
		inViaLink = opts.Sensor.ViaLink
	}
	if len(job.In) > 0 {
		if inViaLink {
			t, err := s.Link.Write(acc.L2, lay.InLMA, job.In)
			if err != nil {
				return nil, nil, err
			}
			tIn += t
		} else if err := acc.L2.WriteBytes(lay.InLMA, job.In); err != nil {
			return nil, nil, err
		}
	}

	// Run the accelerator (functionally: once; the timeline scales it).
	acc.Start(parsed.Entry)
	res, err := acc.Run(opts.MaxCycles)
	if err != nil {
		return nil, nil, fmt.Errorf("core: offloaded %s: %w", job.Prog.Name, err)
	}
	if !res.EOC || res.EOCValue != 1 {
		return nil, nil, fmt.Errorf("core: offloaded %s did not complete: %+v", job.Prog.Name, res)
	}
	stats := acc.CollectStats()
	act := power.ActivityOf(stats)
	tComp := float64(res.Cycles) / s.FAcc

	// Output transfer + EOC wake.
	var out []byte
	tOut := float64(gpioCycles) / s.Host.FreqHz
	if job.OutLen > 0 {
		data, t, err := s.Link.Read(acc.L2, lay.OutLMA, job.OutLen)
		if err != nil {
			return nil, nil, err
		}
		out = data
		tOut += t
	}

	// A concurrent host task steals cycles from every host-driven phase.
	if f := opts.HostTaskFraction; f > 0 {
		stretch := 1 / (1 - f)
		tBin *= stretch
		tIn *= stretch
		tOut *= stretch
	}

	// Timeline composition over the iterations.
	n := float64(opts.Iterations)
	var total float64
	if opts.DoubleBuffer {
		steady := tComp
		if xfer := tIn + tOut; xfer > steady {
			steady = xfer
		}
		total = tBin + tIn + (n-1)*steady + tComp + tOut
	} else {
		total = tBin + n*(tIn+tComp+tOut)
	}
	ideal := n * tComp

	// Energy composition.
	linkCfg := s.Link.Cfg
	eIn := linkCfg.TransferEnergy(len(job.In))
	if !inViaLink {
		eIn = 0
	}
	eOut := linkCfg.TransferEnergy(int(job.OutLen))
	eBin := linkCfg.TransferEnergy(len(image) + int(hw.DescSize))
	xferTime := tBin + n*(tIn+tOut)
	computeTime := n * tComp
	accRun := power.PULPPowerW(s.Vdd, s.FAcc, act)
	accIdle := power.PULPPowerW(s.Vdd, s.FAcc, power.IdleActivity(s.AccCfg.Cores))
	idleTime := total - computeTime
	if idleTime < 0 {
		idleTime = 0
	}
	mcuJ := s.Host.RunPowerW()*xferTime + s.Host.Model.SleepW*(total-xferTime)
	if opts.HostTaskFraction > 0 {
		// The host runs its own task whenever it is not driving the link.
		mcuJ = s.Host.RunPowerW() * total
	}
	en := power.Energy{
		SPIJ:  eBin + n*(eIn+eOut),
		MCUJ:  mcuJ,
		PULPJ: accRun*computeTime + accIdle*idleTime,
	}
	if opts.Sensor != nil {
		en.SensorJ = n * opts.Sensor.SampleEnergyJ
	}

	rep := &Report{
		BinaryBytes:   len(image),
		InBytes:       len(job.In),
		OutBytes:      int(job.OutLen),
		BinTime:       tBin,
		InTime:        tIn,
		OutTime:       tOut,
		ComputeTime:   tComp,
		Iterations:    opts.Iterations,
		DoubleBuffer:  opts.DoubleBuffer,
		TotalTime:     total,
		IdealTime:     ideal,
		Efficiency:    ideal / total,
		ComputeCycles: res.Cycles,
		Activity:      act,
		Energy:        en,
		AccPowerW:     accRun,
		HostPowerW:    s.Host.RunPowerW(),
		LinkPowerW:    power.SPIPowerW(linkCfg.ClockHz, linkCfg.Lanes),
	}
	return out, rep, nil
}

// Baseline runs the job natively on the host MCU for comparison.
func (s *System) Baseline(job loader.Job, maxCycles uint64) (*mcu.BaselineResult, error) {
	if maxCycles == 0 {
		maxCycles = 2_000_000_000
	}
	return s.Host.RunBaseline(job, maxCycles)
}

// TotalComputePowerW is the system power while the accelerator computes
// and the host sleeps — the quantity constrained to 10 mW in Fig. 5a.
func (s *System) TotalComputePowerW(act power.Activity) float64 {
	return power.PULPPowerW(s.Vdd, s.FAcc, act) + s.Host.Model.SleepW
}
