package core_test

import (
	"bytes"
	"encoding/json"
	"math"
	"reflect"
	"strings"
	"testing"

	"hetsim/internal/core"
	"hetsim/internal/fault"
	"hetsim/internal/kernels"
	"hetsim/internal/obs"
	"hetsim/internal/power"
)

// obsSystem builds a system with an optional CRC-framed link (the
// testSystem helper has no CRC knob).
func obsSystem(t *testing.T, crc bool) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Host:       power.STM32L476,
		HostFreqHz: 16e6,
		Lanes:      4,
		LinkCRC:    crc,
		AccVdd:     0.8,
		AccFreqHz:  200e6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

// TestOffloadEnergyComposition pins the SPI energy composition of both
// offload outcomes against the link's own meter, table-driven over
// iteration counts:
//
//   - success: SPIJ = eBin + n*(eIn+eOut) + recovery, i.e. the metered
//     first iteration plus (n-1) analytic input/output transfers;
//   - fallback: SPIJ = the exact meter delta of the offload.
//
// The fallback rows are the regression for the fallback-energy bug: the
// old composition summed the per-phase snapshots (eBin + eIn + recLinkE),
// which is zero when the load dies mid-phase — loadImage returns (0, 0,
// err) on a link failure even though the link already charged its meter
// for every wire byte (failed bursts are accounted before the error
// returns). The mid-load rows metered >0 J but reported 0 J before the
// fix.
func TestOffloadEnergyComposition(t *testing.T) {
	k := kernels.MatMulChar(16)
	cases := []struct {
		name     string
		iters    int
		crc      bool
		fallback bool
		opts     func(t *testing.T) core.Options
	}{
		{"clean/n=1", 1, false, false,
			func(t *testing.T) core.Options { return core.Options{} }},
		{"clean/n=4", 4, false, false,
			func(t *testing.T) core.Options { return core.Options{} }},
		{"hang-fallback/n=1", 1, false, true,
			func(t *testing.T) core.Options {
				return core.Options{
					WatchdogCycles: 2_000_000,
					Retries:        1,
					HostFallback:   hostBuild(t, k),
					Faults:         fault.New(fault.Config{Seed: 9, EOCHangRate: 1}),
				}
			}},
		{"midload-fallback/n=1", 1, true, true,
			func(t *testing.T) core.Options {
				return core.Options{
					HostFallback: hostBuild(t, k),
					Faults:       fault.New(fault.Config{Seed: 11, LinkDropRate: 1}),
				}
			}},
		{"midload-fallback/n=4", 4, true, true,
			func(t *testing.T) core.Options {
				return core.Options{
					HostFallback: hostBuild(t, k),
					Faults:       fault.New(fault.Config{Seed: 13, LinkDropRate: 1}),
				}
			}},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			sys := obsSystem(t, c.crc)
			job, want := kernelJob(t, k, 3)
			opts := c.opts(t)
			opts.Iterations = c.iters
			e0 := sys.Link.EnergyJ
			out, rep, err := sys.Offload(job, opts)
			if err != nil {
				t.Fatalf("offload: %v", err)
			}
			delta := sys.Link.EnergyJ - e0
			expect := delta
			if c.fallback {
				if !rep.FallbackUsed {
					t.Fatalf("expected host fallback, got %+v", rep)
				}
				if strings.HasPrefix(c.name, "midload") && delta <= 0 {
					t.Fatal("mid-load failure metered no link energy; regression setup broken")
				}
			} else {
				if !bytes.Equal(out, want) {
					t.Fatal("clean offload output differs from golden")
				}
				// Iterations 2..n are composed analytically from the
				// fault-free transfer model.
				expect += float64(c.iters-1) *
					(sys.Link.Cfg.TransferEnergy(rep.InBytes) + sys.Link.Cfg.TransferEnergy(rep.OutBytes))
			}
			if diff := math.Abs(rep.Energy.SPIJ - expect); diff > 1e-12*math.Max(expect, 1e-12) {
				t.Fatalf("SPIJ %v != expected composition %v (meter delta %v, diff %v)",
					rep.Energy.SPIJ, expect, delta, diff)
			}
		})
	}
}

// TestOffloadObservabilityDifferential proves attaching the full observer
// (attribution + timeline) to an offload changes nothing in the report or
// the output.
func TestOffloadObservabilityDifferential(t *testing.T) {
	k := kernels.MatMulChar(16)
	job, want := kernelJob(t, k, 7)

	plain := testSystem(t, 16e6)
	outP, repP, err := plain.Offload(job, core.Options{Iterations: 2})
	if err != nil {
		t.Fatal(err)
	}

	observed := testSystem(t, 16e6)
	at := obs.NewAttribution(0)
	tl := obs.NewTimeline()
	outO, repO, err := observed.Offload(job, core.Options{Iterations: 2, Obs: at, Timeline: tl})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outP, want) || !bytes.Equal(outO, want) {
		t.Fatal("output differs from golden")
	}
	if !reflect.DeepEqual(repP, repO) {
		t.Fatalf("observed report diverged:\n%+v\nvs\n%+v", repO, repP)
	}
	// Attribution exactness at the offload level: every observed core
	// accounts exactly the compute cycles of the (single, clean) run.
	for i := range at.Cores {
		if got := at.Cores[i].Total(); got != repO.ComputeCycles {
			t.Errorf("core %d attribution sum %d != compute cycles %d",
				i, got, repO.ComputeCycles)
		}
	}
	if tl.Events() == 0 {
		t.Fatal("timeline recorded no events")
	}
}

// TestOffloadTimelineExport runs a resilient offload (one transient EOC
// hang, then success) with the timeline attached and checks the exported
// Chrome trace JSON: parseable, metadata first, and carrying the host
// protocol phases, SPI bursts, recovery events and accelerator core spans.
func TestOffloadTimelineExport(t *testing.T) {
	sys := testSystem(t, 16e6)
	k := kernels.MatMulChar(16)
	job, want := kernelJob(t, k, 2)
	tl := obs.NewTimeline()
	out, _, err := sys.Offload(job, core.Options{
		WatchdogCycles: 2_000_000,
		Retries:        2,
		Timeline:       tl,
		Faults:         fault.New(fault.Config{Seed: 4, EOCHangRate: 1, MaxFaults: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("offload output differs from golden")
	}

	var buf bytes.Buffer
	if err := tl.Export(&buf); err != nil {
		t.Fatal(err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string  `json:"name"`
			Cat  string  `json:"cat"`
			Ph   string  `json:"ph"`
			Ts   float64 `json:"ts"`
			Pid  int     `json:"pid"`
			Tid  int     `json:"tid"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(buf.Bytes(), &doc); err != nil {
		t.Fatalf("exported timeline is not valid JSON: %v", err)
	}
	if len(doc.TraceEvents) == 0 {
		t.Fatal("empty timeline")
	}
	seen := map[string]bool{}
	meta := true
	for _, ev := range doc.TraceEvents {
		if ev.Ph == "M" {
			if !meta {
				t.Fatal("metadata event after body events")
			}
			continue
		}
		meta = false
		switch {
		case ev.Name == "load image+descriptor",
			ev.Name == "write input",
			ev.Name == "read output":
			seen["phase"] = true
		case strings.HasPrefix(ev.Name, "compute (attempt"):
			seen["compute"] = true
		case ev.Cat == "spi":
			seen["spi"] = true
		case ev.Cat == "recover":
			seen["recover"] = true
		case ev.Cat == "run" && ev.Pid == obs.PidAccel:
			seen["run"] = true
		case ev.Cat == "dma" && ev.Pid == obs.PidAccel:
			seen["dma"] = true
		}
		if ev.Ts < 0 {
			t.Fatalf("negative timestamp on %q", ev.Name)
		}
	}
	for _, k := range []string{"phase", "compute", "spi", "recover", "run", "dma"} {
		if !seen[k] {
			t.Errorf("timeline missing %s events", k)
		}
	}
}
