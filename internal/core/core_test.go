package core_test

import (
	"bytes"
	"errors"
	"reflect"
	"strings"
	"testing"

	"hetsim/internal/asm"
	"hetsim/internal/core"
	"hetsim/internal/devrt"
	"hetsim/internal/fault"
	"hetsim/internal/isa"
	"hetsim/internal/kernels"
	"hetsim/internal/loader"
	"hetsim/internal/power"
	"hetsim/internal/trace"
)

func testSystem(t *testing.T, mcuHz float64) *core.System {
	t.Helper()
	return testSystemOp(t, mcuHz, 0.8, 200e6)
}

func testSystemOp(t *testing.T, mcuHz, vdd, accHz float64) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Host:       power.STM32L476,
		HostFreqHz: mcuHz,
		Lanes:      4,
		AccVdd:     vdd,
		AccFreqHz:  accHz,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func kernelJob(t *testing.T, k *kernels.Instance, seed uint64) (loader.Job, []byte) {
	t.Helper()
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Input(seed)
	job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Threads: 4, Args: k.Args()}
	return job, k.Golden(in)
}

func TestOffloadEndToEndMatchesGolden(t *testing.T) {
	sys := testSystem(t, 16e6)
	for _, k := range []*kernels.Instance{kernels.MatMulChar(16), kernels.SVM(kernels.SVMRBF, 16, 8, 6)} {
		job, want := kernelJob(t, k, 9)
		out, rep, err := sys.Offload(job, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("%s: offloaded output differs from golden", k.Name)
		}
		if rep.ComputeCycles == 0 || rep.ComputeTime <= 0 || rep.BinTime <= 0 {
			t.Fatalf("%s: degenerate report %+v", k.Name, rep)
		}
		if rep.Efficiency <= 0 || rep.Efficiency > 1 {
			t.Fatalf("%s: efficiency %v out of range", k.Name, rep.Efficiency)
		}
		if rep.Energy.TotalJ() <= 0 {
			t.Fatalf("%s: no energy accounted", k.Name)
		}
	}
}

func TestOffloadAmortization(t *testing.T) {
	// Efficiency must be monotone non-decreasing in iterations per offload
	// and approach a limit; double buffering must not hurt.
	sys := testSystem(t, 16e6)
	k := kernels.MatMulChar(32)
	job, _ := kernelJob(t, k, 2)
	prev := 0.0
	for _, n := range []int{1, 4, 16, 64} {
		_, rep, err := sys.Offload(job, core.Options{Iterations: n})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Efficiency+1e-12 < prev {
			t.Fatalf("efficiency decreased at n=%d: %v -> %v", n, prev, rep.Efficiency)
		}
		prev = rep.Efficiency
	}
	_, plain, err := sys.Offload(job, core.Options{Iterations: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, db, err := sys.Offload(job, core.Options{Iterations: 64, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if db.Efficiency < plain.Efficiency {
		t.Fatalf("double buffering hurt: %v < %v", db.Efficiency, plain.Efficiency)
	}
	if db.TotalTime > plain.TotalTime {
		t.Fatalf("double buffering slower: %v > %v", db.TotalTime, plain.TotalTime)
	}
}

func TestBaselineMatchesGoldenAndIsSlower(t *testing.T) {
	sys := testSystem(t, 32e6)
	k := kernels.MatMulChar(32)
	prog, err := k.Build(isa.CortexM4, devrt.Host)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Input(4)
	base, err := sys.Baseline(loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Args: k.Args()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base.Out, k.Golden(in)) {
		t.Fatal("baseline output differs from golden")
	}
	// Offloaded compute at 200 MHz / 4 cores must beat the 32 MHz MCU.
	job, _ := kernelJob(t, k, 4)
	_, rep, err := sys.Offload(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := base.Seconds / rep.ComputeTime
	if speedup < 10 {
		t.Fatalf("accelerated speedup = %.1f, expected >> 10", speedup)
	}
}

func TestSlowLinkPlateau(t *testing.T) {
	// With a very slow MCU (hence slow SPI), efficiency should plateau well
	// below 1 even with double buffering — the Fig. 5b bandwidth limit.
	// Accelerator operating points follow the 10 mW envelope: a slow MCU
	// leaves a big PULP budget (fast accelerator, even slower relative
	// link), a 26 MHz MCU leaves ~1.4 mW (slow accelerator).
	slow := testSystemOp(t, 2e6, 0.8, 220e6)
	fast := testSystemOp(t, 26e6, 0.6, 45e6)
	k := kernels.MatMulChar(64)
	job, _ := kernelJob(t, k, 3)
	_, repSlow, err := slow.Offload(job, core.Options{Iterations: 256, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	_, repFast, err := fast.Offload(job, core.Options{Iterations: 256, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if repSlow.Efficiency >= repFast.Efficiency {
		t.Fatalf("slow link (%v) should be less efficient than fast (%v)",
			repSlow.Efficiency, repFast.Efficiency)
	}
	if repFast.Efficiency < 0.5 {
		t.Errorf("fast-link efficiency at 256 iterations = %v, expected to approach 1", repFast.Efficiency)
	}
}

func TestNewSystemValidation(t *testing.T) {
	bad := []core.Config{
		{Host: power.STM32L476, HostFreqHz: 500e6, Lanes: 4, AccVdd: 0.8, AccFreqHz: 100e6}, // over MCU fmax
		{Host: power.STM32L476, HostFreqHz: 16e6, Lanes: 2, AccVdd: 0.8, AccFreqHz: 100e6},  // bad lanes
		{Host: power.STM32L476, HostFreqHz: 16e6, Lanes: 4, AccVdd: 0.6, AccFreqHz: 400e6},  // over acc fmax
	}
	for i, cfg := range bad {
		if _, err := core.NewSystem(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestTotalComputePower(t *testing.T) {
	sys := testSystem(t, 16e6)
	p := sys.TotalComputePowerW(power.Activity{CoreRun: 4, TCDM: 1.4})
	if p <= 0 || p > 20e-3 {
		t.Fatalf("implausible compute power %v W", p)
	}
}

func TestHostTaskFraction(t *testing.T) {
	sys := testSystem(t, 16e6)
	k := kernels.MatMulChar(32)
	job, _ := kernelJob(t, k, 6)
	_, idle, err := sys.Offload(job, core.Options{Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, busy, err := sys.Offload(job, core.Options{Iterations: 8, HostTaskFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if busy.TotalTime <= idle.TotalTime {
		t.Errorf("a concurrent host task must slow the offload: %v vs %v",
			busy.TotalTime, idle.TotalTime)
	}
	if busy.Energy.MCUJ <= idle.Energy.MCUJ {
		t.Errorf("a busy host must burn more energy: %v vs %v",
			busy.Energy.MCUJ, idle.Energy.MCUJ)
	}
	// The accelerator-side compute is unaffected.
	if busy.ComputeCycles != idle.ComputeCycles {
		t.Error("host task must not change accelerator cycles")
	}
	if _, _, err := sys.Offload(job, core.Options{HostTaskFraction: 0.95}); err == nil {
		t.Error("fraction above 0.9 must be rejected")
	}
}

// hostBuild compiles the host-ISA fallback variant of a kernel.
func hostBuild(t *testing.T, k *kernels.Instance) *asm.Program {
	t.Helper()
	prog, err := k.Build(isa.CortexM4, devrt.Host)
	if err != nil {
		t.Fatal(err)
	}
	return prog
}

func TestOffloadEnergyMatchesLinkMeter(t *testing.T) {
	// Satellite regression for the link-energy bug: Energy.SPIJ must equal
	// what the link itself metered (the 36-byte image header never crosses
	// the wire), not TransferEnergy(len(image)+DescSize).
	sys := testSystem(t, 16e6)
	k := kernels.MatMulChar(16)
	job, _ := kernelJob(t, k, 9)
	_, rep, err := sys.Offload(job, core.Options{Iterations: 1})
	if err != nil {
		t.Fatal(err)
	}
	metered := sys.Link.EnergyJ
	if diff := rep.Energy.SPIJ - metered; diff > 1e-15 || diff < -1e-15 {
		t.Fatalf("SPIJ %v != link meter %v (diff %v)", rep.Energy.SPIJ, metered, diff)
	}
	// The old formula charged the image header too; it must overestimate.
	old := sys.Link.Cfg.TransferEnergy(rep.BinaryBytes+0x40) +
		sys.Link.Cfg.TransferEnergy(rep.InBytes) +
		sys.Link.Cfg.TransferEnergy(rep.OutBytes)
	if rep.Energy.SPIJ >= old {
		t.Fatalf("SPIJ %v should be below the header-counting formula %v", rep.Energy.SPIJ, old)
	}
	// And the meter must agree with the link's own byte counters (every
	// payload here fits in one burst, so bursts == transactions).
	wire := sys.Link.TxBytes + sys.Link.RxBytes + sys.Link.Transactions*uint64(sys.Link.Cfg.CmdBytes)
	if want := float64(wire*8) * 25e-12; metered < want*(1-1e-12) || metered > want*(1+1e-12) {
		t.Fatalf("link meter %v inconsistent with wire bytes %d (%v)", metered, wire, want)
	}
}

func TestResilienceOptionsAreZeroCostWhenIdle(t *testing.T) {
	// Watchdog, retry budget and an attached never-firing injector must not
	// change a single reported number on a clean run.
	k := kernels.MatMulChar(16)
	job, want := kernelJob(t, k, 5)
	plain := testSystem(t, 16e6)
	outP, repP, err := plain.Offload(job, core.Options{Iterations: 4})
	if err != nil {
		t.Fatal(err)
	}
	armed := testSystem(t, 16e6)
	outA, repA, err := armed.Offload(job, core.Options{
		Iterations:     4,
		WatchdogCycles: 5_000_000,
		Retries:        3,
		Faults:         fault.New(fault.Config{Seed: 1}), // all rates zero
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(outP, want) || !bytes.Equal(outA, want) {
		t.Fatal("output differs from golden")
	}
	if !reflect.DeepEqual(repP, repA) {
		t.Fatalf("armed-but-idle resilience changed the report:\nplain %+v\narmed %+v", repP, repA)
	}
	if repA.Retries != 0 || repA.WatchdogTrips != 0 || repA.RecoveryTime != 0 || repA.RecoveryEnergyJ != 0 {
		t.Fatalf("clean run shows recovery: %+v", repA)
	}
}

func TestOffloadCRCRecoversLinkFaults(t *testing.T) {
	// With CRC framing, injected burst corruption is retransmitted and the
	// offload completes with the correct output; the repeats are priced.
	mk := func(crc bool) *core.System {
		sys, err := core.NewSystem(core.Config{
			Host: power.STM32L476, HostFreqHz: 16e6, Lanes: 4,
			AccVdd: 0.8, AccFreqHz: 200e6, LinkCRC: crc,
		})
		if err != nil {
			t.Fatal(err)
		}
		return sys
	}
	k := kernels.MatMulChar(16)
	job, want := kernelJob(t, k, 7)
	clean := mk(true)
	_, repClean, err := clean.Offload(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	noisy := mk(true)
	out, rep, err := noisy.Offload(job, core.Options{
		Faults: fault.New(fault.Config{Seed: 21, LinkCorruptRate: 1, MaxFaults: 5}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("CRC recovery produced wrong output")
	}
	if rep.Retransmits != 5 || rep.RetransmittedBytes == 0 {
		t.Fatalf("retransmissions invisible: %+v", rep)
	}
	if rep.TotalTime <= repClean.TotalTime || rep.Energy.SPIJ <= repClean.Energy.SPIJ {
		t.Fatalf("retransmissions must cost time and energy: %v/%v vs clean %v/%v",
			rep.TotalTime, rep.Energy.SPIJ, repClean.TotalTime, repClean.Energy.SPIJ)
	}
	if noisy.Link.Retransmits != 5 {
		t.Fatalf("link counter %d", noisy.Link.Retransmits)
	}
}

func TestOffloadWatchdogRetriesTransientHang(t *testing.T) {
	// One injected EOC hang: the watchdog trips, the host re-raises
	// fetch-enable, and the second attempt produces the correct output.
	sys := testSystem(t, 16e6)
	k := kernels.MatMulChar(16)
	job, want := kernelJob(t, k, 3)
	out, rep, err := sys.Offload(job, core.Options{
		WatchdogCycles: 2_000_000,
		Retries:        2,
		Faults:         fault.New(fault.Config{Seed: 4, EOCHangRate: 1, MaxFaults: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("retried offload produced wrong output")
	}
	if rep.WatchdogTrips != 1 || rep.Retries != 1 || rep.FallbackUsed {
		t.Fatalf("unexpected recovery ledger: %+v", rep)
	}
	if rep.RecoveryTime <= 0 || rep.RecoveryEnergyJ <= 0 {
		t.Fatalf("recovery must cost time and energy: %+v", rep)
	}
	if rep.TotalTime <= rep.IdealTime+rep.RecoveryTime-1e-12 {
		t.Fatalf("recovery time not in the timeline: total %v ideal %v rec %v",
			rep.TotalTime, rep.IdealTime, rep.RecoveryTime)
	}
}

func TestOffloadFullReloadRecovers(t *testing.T) {
	// Two consecutive hangs force the second-retry path: full reload of
	// binary, descriptor and input over the link before the third attempt.
	sys := testSystem(t, 16e6)
	k := kernels.MatMulChar(16)
	job, want := kernelJob(t, k, 8)
	out, rep, err := sys.Offload(job, core.Options{
		WatchdogCycles: 2_000_000,
		Retries:        3,
		Faults:         fault.New(fault.Config{Seed: 6, EOCHangRate: 1, MaxFaults: 2}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("reloaded offload produced wrong output")
	}
	if rep.WatchdogTrips != 2 || rep.Retries != 2 {
		t.Fatalf("unexpected recovery ledger: %+v", rep)
	}
	// The reload replays the load protocol over the link, so its energy
	// shows up in SPIJ beyond a clean run's.
	clean := testSystem(t, 16e6)
	_, repClean, err := clean.Offload(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Energy.SPIJ <= repClean.Energy.SPIJ {
		t.Fatalf("reload traffic invisible in SPIJ: %v vs %v", rep.Energy.SPIJ, repClean.Energy.SPIJ)
	}
}

func TestOffloadHostFallback(t *testing.T) {
	// A persistent hang exhausts the retries; with a host-ISA build
	// attached, the runtime degrades to native MCU execution and still
	// returns the correct result.
	sys := testSystem(t, 16e6)
	k := kernels.MatMulChar(16)
	job, want := kernelJob(t, k, 2)
	out, rep, err := sys.Offload(job, core.Options{
		WatchdogCycles: 2_000_000,
		Retries:        1,
		HostFallback:   hostBuild(t, k),
		Faults:         fault.New(fault.Config{Seed: 9, EOCHangRate: 1}),
	})
	if err != nil {
		t.Fatalf("fallback should absorb the failure: %v", err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("host fallback produced wrong output")
	}
	if !rep.FallbackUsed || rep.WatchdogTrips != 2 || rep.Retries != 1 {
		t.Fatalf("unexpected fallback ledger: %+v", rep)
	}
	if rep.RecoveryTime <= 0 || rep.RecoveryEnergyJ <= 0 || rep.Efficiency >= 1 {
		t.Fatalf("wasted accelerator work must be priced: %+v", rep)
	}
}

func TestOffloadDescriptorVerifyRecovers(t *testing.T) {
	// Descriptor corruption is a device-memory fault the link CRC cannot
	// see; write-verify readback catches it and rewrites.
	sys := testSystem(t, 16e6)
	k := kernels.MatMulChar(16)
	job, want := kernelJob(t, k, 1)
	out, rep, err := sys.Offload(job, core.Options{
		VerifyDescriptor: true,
		Retries:          2,
		Faults:           fault.New(fault.Config{Seed: 13, DescCorruptRate: 1, MaxFaults: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(out, want) {
		t.Fatal("rewritten descriptor produced wrong output")
	}
	if rep.DescRewrites != 1 {
		t.Fatalf("DescRewrites = %d, want 1", rep.DescRewrites)
	}
}

func TestOffloadErrorTaxonomy(t *testing.T) {
	// Every injected fault class maps to its typed error under errors.Is
	// once recovery is exhausted (no fallback attached).
	k := kernels.MatMulChar(16)
	cases := []struct {
		name string
		crc  bool
		opts core.Options
		want []error
	}{
		{
			name: "link corruption beyond retransmission limit",
			crc:  true,
			opts: core.Options{Faults: fault.New(fault.Config{Seed: 2, LinkCorruptRate: 1})},
			want: []error{core.ErrLinkCRC},
		},
		{
			name: "link drops beyond retransmission limit",
			crc:  true,
			opts: core.Options{Faults: fault.New(fault.Config{Seed: 3, LinkDropRate: 1})},
			want: []error{core.ErrLinkDropped},
		},
		{
			name: "persistent accelerator hang",
			opts: core.Options{
				WatchdogCycles: 2_000_000, Retries: 1,
				Faults: fault.New(fault.Config{Seed: 5, EOCHangRate: 1}),
			},
			want: []error{core.ErrDeviceHang, core.ErrEOCTimeout},
		},
		{
			name: "persistent descriptor corruption",
			opts: core.Options{
				VerifyDescriptor: true, Retries: 1,
				Faults: fault.New(fault.Config{Seed: 7, DescCorruptRate: 1}),
			},
			want: []error{core.ErrDescriptorCorrupt},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			sys, err := core.NewSystem(core.Config{
				Host: power.STM32L476, HostFreqHz: 16e6, Lanes: 4,
				AccVdd: 0.8, AccFreqHz: 200e6, LinkCRC: tc.crc,
			})
			if err != nil {
				t.Fatal(err)
			}
			job, _ := kernelJob(t, k, 1)
			_, _, err = sys.Offload(job, tc.opts)
			if err == nil {
				t.Fatal("offload should fail")
			}
			for _, want := range tc.want {
				if !errors.Is(err, want) {
					t.Errorf("error %v does not match %v", err, want)
				}
			}
		})
	}
}

func TestOffloadWithoutCRCLinkFaultsAreSilent(t *testing.T) {
	// Without CRC framing, injected corruption is undetectable at the link
	// layer: the offload either produces wrong bytes or wedges the device.
	// This documents WHY the framing exists.
	sys, err := core.NewSystem(core.Config{
		Host: power.STM32L476, HostFreqHz: 16e6, Lanes: 4,
		AccVdd: 0.8, AccFreqHz: 200e6, // LinkCRC off
	})
	if err != nil {
		t.Fatal(err)
	}
	k := kernels.MatMulChar(16)
	job, want := kernelJob(t, k, 6)
	out, _, err := sys.Offload(job, core.Options{
		WatchdogCycles: 2_000_000,
		Faults:         fault.New(fault.Config{Seed: 17, LinkCorruptRate: 0.3, MaxFaults: 8}),
	})
	if err == nil && bytes.Equal(out, want) {
		t.Fatal("corrupting the unprotected link should not yield a clean golden run")
	}
	if sys.Link.SilentFaults == 0 {
		t.Fatalf("expected silent faults on the unprotected link, counters: %+v", sys.Link)
	}
}

func TestOffloadFaultTracer(t *testing.T) {
	// Recovery actions must leave evidence in the trace.
	var sb strings.Builder
	sys := testSystem(t, 16e6)
	k := kernels.MatMulChar(16)
	job, _ := kernelJob(t, k, 3)
	_, _, err := sys.Offload(job, core.Options{
		WatchdogCycles: 2_000_000,
		Retries:        2,
		Tracer:         trace.New(&sb, 0),
		Faults:         fault.New(fault.Config{Seed: 4, EOCHangRate: 1, MaxFaults: 1}),
	})
	if err != nil {
		t.Fatal(err)
	}
	for _, wantS := range []string{"offload: injecting EOC hang", "watchdog trip", "re-raising fetch-enable"} {
		if !strings.Contains(sb.String(), wantS) {
			t.Errorf("trace lacks %q", wantS)
		}
	}
}
