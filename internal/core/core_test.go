package core_test

import (
	"bytes"
	"testing"

	"hetsim/internal/core"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
	"hetsim/internal/kernels"
	"hetsim/internal/loader"
	"hetsim/internal/power"
)

func testSystem(t *testing.T, mcuHz float64) *core.System {
	t.Helper()
	return testSystemOp(t, mcuHz, 0.8, 200e6)
}

func testSystemOp(t *testing.T, mcuHz, vdd, accHz float64) *core.System {
	t.Helper()
	sys, err := core.NewSystem(core.Config{
		Host:       power.STM32L476,
		HostFreqHz: mcuHz,
		Lanes:      4,
		AccVdd:     vdd,
		AccFreqHz:  accHz,
	})
	if err != nil {
		t.Fatal(err)
	}
	return sys
}

func kernelJob(t *testing.T, k *kernels.Instance, seed uint64) (loader.Job, []byte) {
	t.Helper()
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Input(seed)
	job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Threads: 4, Args: k.Args()}
	return job, k.Golden(in)
}

func TestOffloadEndToEndMatchesGolden(t *testing.T) {
	sys := testSystem(t, 16e6)
	for _, k := range []*kernels.Instance{kernels.MatMulChar(16), kernels.SVM(kernels.SVMRBF, 16, 8, 6)} {
		job, want := kernelJob(t, k, 9)
		out, rep, err := sys.Offload(job, core.Options{})
		if err != nil {
			t.Fatalf("%s: %v", k.Name, err)
		}
		if !bytes.Equal(out, want) {
			t.Fatalf("%s: offloaded output differs from golden", k.Name)
		}
		if rep.ComputeCycles == 0 || rep.ComputeTime <= 0 || rep.BinTime <= 0 {
			t.Fatalf("%s: degenerate report %+v", k.Name, rep)
		}
		if rep.Efficiency <= 0 || rep.Efficiency > 1 {
			t.Fatalf("%s: efficiency %v out of range", k.Name, rep.Efficiency)
		}
		if rep.Energy.TotalJ() <= 0 {
			t.Fatalf("%s: no energy accounted", k.Name)
		}
	}
}

func TestOffloadAmortization(t *testing.T) {
	// Efficiency must be monotone non-decreasing in iterations per offload
	// and approach a limit; double buffering must not hurt.
	sys := testSystem(t, 16e6)
	k := kernels.MatMulChar(32)
	job, _ := kernelJob(t, k, 2)
	prev := 0.0
	for _, n := range []int{1, 4, 16, 64} {
		_, rep, err := sys.Offload(job, core.Options{Iterations: n})
		if err != nil {
			t.Fatal(err)
		}
		if rep.Efficiency+1e-12 < prev {
			t.Fatalf("efficiency decreased at n=%d: %v -> %v", n, prev, rep.Efficiency)
		}
		prev = rep.Efficiency
	}
	_, plain, err := sys.Offload(job, core.Options{Iterations: 64})
	if err != nil {
		t.Fatal(err)
	}
	_, db, err := sys.Offload(job, core.Options{Iterations: 64, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if db.Efficiency < plain.Efficiency {
		t.Fatalf("double buffering hurt: %v < %v", db.Efficiency, plain.Efficiency)
	}
	if db.TotalTime > plain.TotalTime {
		t.Fatalf("double buffering slower: %v > %v", db.TotalTime, plain.TotalTime)
	}
}

func TestBaselineMatchesGoldenAndIsSlower(t *testing.T) {
	sys := testSystem(t, 32e6)
	k := kernels.MatMulChar(32)
	prog, err := k.Build(isa.CortexM4, devrt.Host)
	if err != nil {
		t.Fatal(err)
	}
	in := k.Input(4)
	base, err := sys.Baseline(loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Args: k.Args()}, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(base.Out, k.Golden(in)) {
		t.Fatal("baseline output differs from golden")
	}
	// Offloaded compute at 200 MHz / 4 cores must beat the 32 MHz MCU.
	job, _ := kernelJob(t, k, 4)
	_, rep, err := sys.Offload(job, core.Options{})
	if err != nil {
		t.Fatal(err)
	}
	speedup := base.Seconds / rep.ComputeTime
	if speedup < 10 {
		t.Fatalf("accelerated speedup = %.1f, expected >> 10", speedup)
	}
}

func TestSlowLinkPlateau(t *testing.T) {
	// With a very slow MCU (hence slow SPI), efficiency should plateau well
	// below 1 even with double buffering — the Fig. 5b bandwidth limit.
	// Accelerator operating points follow the 10 mW envelope: a slow MCU
	// leaves a big PULP budget (fast accelerator, even slower relative
	// link), a 26 MHz MCU leaves ~1.4 mW (slow accelerator).
	slow := testSystemOp(t, 2e6, 0.8, 220e6)
	fast := testSystemOp(t, 26e6, 0.6, 45e6)
	k := kernels.MatMulChar(64)
	job, _ := kernelJob(t, k, 3)
	_, repSlow, err := slow.Offload(job, core.Options{Iterations: 256, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	_, repFast, err := fast.Offload(job, core.Options{Iterations: 256, DoubleBuffer: true})
	if err != nil {
		t.Fatal(err)
	}
	if repSlow.Efficiency >= repFast.Efficiency {
		t.Fatalf("slow link (%v) should be less efficient than fast (%v)",
			repSlow.Efficiency, repFast.Efficiency)
	}
	if repFast.Efficiency < 0.5 {
		t.Errorf("fast-link efficiency at 256 iterations = %v, expected to approach 1", repFast.Efficiency)
	}
}

func TestNewSystemValidation(t *testing.T) {
	bad := []core.Config{
		{Host: power.STM32L476, HostFreqHz: 500e6, Lanes: 4, AccVdd: 0.8, AccFreqHz: 100e6}, // over MCU fmax
		{Host: power.STM32L476, HostFreqHz: 16e6, Lanes: 2, AccVdd: 0.8, AccFreqHz: 100e6},  // bad lanes
		{Host: power.STM32L476, HostFreqHz: 16e6, Lanes: 4, AccVdd: 0.6, AccFreqHz: 400e6},  // over acc fmax
	}
	for i, cfg := range bad {
		if _, err := core.NewSystem(cfg); err == nil {
			t.Errorf("config %d should be rejected", i)
		}
	}
}

func TestTotalComputePower(t *testing.T) {
	sys := testSystem(t, 16e6)
	p := sys.TotalComputePowerW(power.Activity{CoreRun: 4, TCDM: 1.4})
	if p <= 0 || p > 20e-3 {
		t.Fatalf("implausible compute power %v W", p)
	}
}

func TestHostTaskFraction(t *testing.T) {
	sys := testSystem(t, 16e6)
	k := kernels.MatMulChar(32)
	job, _ := kernelJob(t, k, 6)
	_, idle, err := sys.Offload(job, core.Options{Iterations: 8})
	if err != nil {
		t.Fatal(err)
	}
	_, busy, err := sys.Offload(job, core.Options{Iterations: 8, HostTaskFraction: 0.5})
	if err != nil {
		t.Fatal(err)
	}
	if busy.TotalTime <= idle.TotalTime {
		t.Errorf("a concurrent host task must slow the offload: %v vs %v",
			busy.TotalTime, idle.TotalTime)
	}
	if busy.Energy.MCUJ <= idle.Energy.MCUJ {
		t.Errorf("a busy host must burn more energy: %v vs %v",
			busy.Energy.MCUJ, idle.Energy.MCUJ)
	}
	// The accelerator-side compute is unaffected.
	if busy.ComputeCycles != idle.ComputeCycles {
		t.Error("host task must not change accelerator cycles")
	}
	if _, _, err := sys.Offload(job, core.Options{HostTaskFraction: 0.95}); err == nil {
		t.Error("fraction above 0.9 must be rejected")
	}
}
