package kernels

import (
	"encoding/binary"
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
)

// FIR is an extension kernel beyond the paper's Table I suite, covering
// the compressed-sensing / biosignal filtering workloads the paper's
// introduction motivates: a T-tap Q15 FIR filter over an N-sample window,
//
//	y[i] = sum_k (h[k] * x[i+k]) >> 15
//
// Like the other fixed-point kernels it needs a per-product shift, so it
// exercises the same "no multiply-shift-add" regime as svm/cnn — and it
// demonstrates how downstream users add their own kernels: a code
// generator over the shared emitters, a golden model, an input generator.

type firParams struct {
	n    int32 // output samples
	taps int32
}

// FIR returns a Q15 FIR filter instance (n outputs, t taps).
func FIR(n, t int) *Instance {
	p := firParams{n: int32(n), taps: int32(t)}
	if t%4 != 0 || t <= 0 || n <= 0 {
		panic(fmt.Sprintf("kernels: fir taps %d must be a positive multiple of 4", t))
	}
	coeffs := firCoeffs(p)
	return &Instance{
		Name:       "fir",
		Field:      "signal processing",
		Desc:       fmt.Sprintf("%d-tap Q15 FIR filter (extension kernel)", t),
		ParamDesc:  fmt.Sprintf("N=%d T=%d", n, t),
		MaxThreads: 4,
		outLen:     uint32(2 * p.n),
		args:       [4]uint32{uint32(n), uint32(t)},
		build: func(tgt isa.Target, mode devrt.Mode) (*asm.Program, error) {
			return buildFIR(tgt, mode, p, coeffs)
		},
		genInput: func(seed uint64) []byte { return firInput(p, seed) },
		golden:   func(in []byte) []byte { return firGolden(p, coeffs, in) },
	}
}

// firCoeffs generates a deterministic low-pass-ish tap set bounded so the
// Q15 accumulation cannot overflow 32 bits.
func firCoeffs(p firParams) []int16 {
	rng := newRNG(0x666972) // "fir"
	h := make([]int16, p.taps)
	for i := range h {
		h[i] = rng.i16(4000)
	}
	return h
}

func firInput(p firParams, seed uint64) []byte {
	rng := newRNG(seed ^ 0x736967) // "sig"
	total := p.n + p.taps
	out := make([]byte, 2*total)
	for i := int32(0); i < total; i++ {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(rng.i16(30000)))
	}
	return out
}

func firGolden(p firParams, h []int16, in []byte) []byte {
	x := make([]int32, p.n+p.taps)
	for i := range x {
		x[i] = int32(int16(binary.LittleEndian.Uint16(in[2*i:])))
	}
	out := make([]byte, 2*p.n)
	for i := int32(0); i < p.n; i++ {
		var acc int32
		for k := int32(0); k < p.taps; k++ {
			acc += (int32(h[k]) * x[i+k]) >> 15
		}
		binary.LittleEndian.PutUint16(out[2*i:], uint16(int16(acc)))
	}
	return out
}

func buildFIR(t isa.Target, mode devrt.Mode, p firParams, h []int16) (*asm.Program, error) {
	b := asm.NewBuilder("fir")
	devrt.EmitCRT0(b, mode)
	b.Halves("fir_h", h)

	b.Label("main")
	devrt.EmitPrologue(b)
	devrt.EmitParallel(b, "fir_body")
	devrt.EmitEpilogue(b)

	// Parallel body: output samples [lo,hi) for this core.
	b.Label("fir_body")
	devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2, isa.S3)
	emitGlob(b, globCtx{base: isa.A0, in: isa.A1, out: isa.A2})
	devrt.EmitChunk(b, p.n, isa.S2 /*lo*/, isa.T4 /*hi*/)
	b.SUB(isa.S2, isa.T4, isa.S2) // count
	b.SUB(isa.T5, isa.T4, isa.S2) // lo
	// S0 = x + lo*2 (window start advances one sample per output)
	b.SLLI(isa.T6, isa.T5, 1)
	b.ADD(isa.S0, isa.A1, isa.T6)
	// S1 = y + lo*2
	b.ADD(isa.S1, isa.A2, isa.T6)
	b.LA(isa.S3, "fir_h")
	noWork := b.Uniq("fir_none")
	b.SFI(isa.SFLESI, isa.S2, 0)
	b.BF(noWork)
	loop := b.Uniq("fir_out")
	b.Label(loop)
	b.MOV(isa.A3, isa.S3) // taps
	b.MOV(isa.A4, isa.S0) // window
	b.LI(isa.T6, 0)
	emitDotFixed(b, t, dotRegs{acc: isa.T6, aPtr: isa.A3, bPtr: isa.A4,
		cnt: isa.T7, x: isa.T8, y: isa.T9}, p.taps, 15, 0)
	emitStoreInc(b, t, isa.SH, isa.S1, isa.T6, 2)
	b.ADDI(isa.S0, isa.S0, 2)
	b.ADDI(isa.S2, isa.S2, -1)
	b.SFI(isa.SFGTSI, isa.S2, 0)
	b.BF(loop)
	b.Label(noWork)
	devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2, isa.S3)

	return b.Build(asm.Layout{})
}

// ExtraSuite returns the extension kernels that go beyond Table I.
func ExtraSuite() []*Instance {
	return []*Instance{FIR(2048, 32), DWT(2048, 4)}
}
