package kernels

import (
	"encoding/binary"
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/devrt"
	"hetsim/internal/fixed"
	"hetsim/internal/isa"
)

// Matrix multiplication, the paper's "quasi-ideal case for both
// parallelization and microarchitectural optimizations". Input layout is
// A (row-major) followed by B-transposed (row-major), so both operands of
// every dot product stream contiguously — the layout a tuned portable-C
// benchmark would pick, and the one that lets OR10N use its word loads and
// 4/2-way dot products.
//
// C[i][j] = clamp( (sum_k A[i][k]*BT[j][k]) >> shift )
// (fixed variant: per-product >>Q15 instead of a final shift).

type mmKind int

const (
	mmChar mmKind = iota
	mmShort
	mmFixed
)

type mmParams struct {
	kind  mmKind
	n     int32
	shift int32
}

func (p mmParams) elemSize() int32 {
	if p.kind == mmChar {
		return 1
	}
	return 2
}

// MatMulChar returns the char matmul instance (Table I row 1).
func MatMulChar(n int) *Instance {
	return newMatMul(mmParams{kind: mmChar, n: int32(n), shift: 6},
		"matmul", "Matrix multiplication on char data")
}

// MatMulShort returns the short matmul instance (Table I row 2).
func MatMulShort(n int) *Instance {
	return newMatMul(mmParams{kind: mmShort, n: int32(n), shift: 7},
		"matmul (short)", "Matrix multiplication on short data")
}

// MatMulFixed returns the Q15 fixed-point matmul instance (Table I row 3).
func MatMulFixed(n int) *Instance {
	return newMatMul(mmParams{kind: mmFixed, n: int32(n), shift: 15},
		"matmul (fixed)", "Matrix multiplication on 16-bit fixed-point data")
}

func newMatMul(p mmParams, name, desc string) *Instance {
	if p.n%4 != 0 {
		panic(fmt.Sprintf("kernels: matmul size %d must be a multiple of 4", p.n))
	}
	esz := p.elemSize()
	return &Instance{
		Name:       name,
		Field:      "linear algebra",
		Desc:       desc,
		ParamDesc:  fmt.Sprintf("%dx%d", p.n, p.n),
		MaxThreads: 4,
		outLen:     uint32(p.n * p.n * esz),
		args:       [4]uint32{uint32(p.n), uint32(p.shift)},
		build: func(t isa.Target, mode devrt.Mode) (*asm.Program, error) {
			return buildMatMul(t, mode, p)
		},
		genInput: func(seed uint64) []byte { return mmInput(p, seed) },
		golden:   func(in []byte) []byte { return mmGolden(p, in) },
	}
}

func mmInput(p mmParams, seed uint64) []byte {
	rng := newRNG(seed ^ 0x6d6d) // "mm"
	n := int(p.n)
	out := make([]byte, 2*n*n*int(p.elemSize()))
	switch p.kind {
	case mmChar:
		for i := range out {
			out[i] = byte(rng.i8(127))
		}
	case mmShort:
		for i := 0; i < 2*n*n; i++ {
			binary.LittleEndian.PutUint16(out[2*i:], uint16(rng.i16(2000)))
		}
	case mmFixed:
		for i := 0; i < 2*n*n; i++ {
			binary.LittleEndian.PutUint16(out[2*i:], uint16(rng.i16(32000)))
		}
	}
	return out
}

func mmGolden(p mmParams, in []byte) []byte {
	n := int(p.n)
	switch p.kind {
	case mmChar:
		a := in[:n*n]
		bt := in[n*n:]
		out := make([]byte, n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var sum int32
				for k := 0; k < n; k++ {
					sum += int32(int8(a[i*n+k])) * int32(int8(bt[j*n+k]))
				}
				out[i*n+j] = byte(int8(fixed.Clamp8(sum >> uint(p.shift))))
			}
		}
		return out
	case mmShort, mmFixed:
		rd := func(buf []byte, idx int) int32 {
			return int32(int16(binary.LittleEndian.Uint16(buf[2*idx:])))
		}
		a := in[:2*n*n]
		bt := in[2*n*n:]
		out := make([]byte, 2*n*n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				var sum int32
				for k := 0; k < n; k++ {
					prod := rd(a, i*n+k) * rd(bt, j*n+k)
					if p.kind == mmFixed {
						sum += prod >> uint(p.shift)
					} else {
						sum += prod
					}
				}
				if p.kind == mmShort {
					sum >>= uint(p.shift)
				}
				binary.LittleEndian.PutUint16(out[2*(i*n+j):], uint16(int16(fixed.Clamp16(sum))))
			}
		}
		return out
	}
	return nil
}

func buildMatMul(t isa.Target, mode devrt.Mode, p mmParams) (*asm.Program, error) {
	b := asm.NewBuilder("matmul")
	devrt.EmitCRT0(b, mode)

	b.Label("main")
	devrt.EmitPrologue(b)
	devrt.EmitParallel(b, "mm_body")
	devrt.EmitEpilogue(b)

	esz := p.elemSize()
	n := p.n

	// Parallel body: rows [lo,hi) of C for this core. Each core starts its
	// column sweep at a core-specific rotation j0 = id*n/4 so that the four
	// cores stream different rows of the shared BT matrix: without the
	// skew, all cores read the same word-interleaved bank sequence in
	// lockstep and the TCDM serializes them (the classic banked-scratchpad
	// pitfall the PULP demo kernels avoid the same way).
	b.Label("mm_body")
	devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7)
	emitGlob(b, globCtx{base: isa.A0, in: isa.A1, out: isa.A2})
	devrt.EmitChunk(b, n, isa.S3 /*lo*/, isa.T4 /*hi*/)
	b.SUB(isa.S3, isa.T4, isa.S3) // rows to do
	hiReg := isa.T4
	loRecover := isa.T5
	// Recompute lo = hi - rows (chunk clobbered T regs; S3 now holds count).
	b.SUB(loRecover, hiReg, isa.S3)
	// S0 = A + lo*n*esz ; S2 = C + lo*n*osz ; S1 = BT base + lo-independent
	b.LI(isa.T6, n*esz)
	b.MUL(isa.T7, loRecover, isa.T6)
	b.ADD(isa.S0, isa.A1, isa.T7)
	b.ADD(isa.S2, isa.A2, isa.T7) // same row pitch for output (esz == osz)
	b.LI(isa.T8, n*n*esz)
	b.ADD(isa.S1, isa.A1, isa.T8)
	// S4 = j0 (elements); S5 = j0*n*esz (BT offset); S6 = j0*esz (C offset)
	// j0 = (id * n/4) mod n so the skew stays in range for any team size.
	b.MFSPR(isa.T5, isa.SprCoreID)
	b.LI(isa.T6, n/4)
	b.MUL(isa.S4, isa.T5, isa.T6)
	b.LI(isa.T6, n)
	b.DIVU(isa.T7, isa.S4, isa.T6)
	b.MUL(isa.T7, isa.T7, isa.T6)
	b.SUB(isa.S4, isa.S4, isa.T7)
	b.LI(isa.T6, n*esz)
	b.MUL(isa.S5, isa.S4, isa.T6)
	b.LI(isa.T6, esz)
	b.MUL(isa.S6, isa.S4, isa.T6)

	noRows := b.Uniq("mm_norows")
	b.SFI(isa.SFLESI, isa.S3, 0)
	b.BF(noRows)

	emitCol := func(loopIdx int) {
		b.MOV(isa.A3, isa.S0) // a = row start
		b.LI(isa.T6, 0)       // acc
		r := dotRegs{acc: isa.T6, aPtr: isa.A3, bPtr: isa.A4, cnt: isa.T7, x: isa.T8, y: isa.T9}
		switch p.kind {
		case mmChar:
			emitDotChar(b, t, r, n, loopIdx)
		case mmShort:
			emitDotShort(b, t, r, n, loopIdx)
		case mmFixed:
			emitDotFixed(b, t, r, n, p.shift, loopIdx)
		}
		if p.kind != mmFixed {
			b.SRAI(isa.T6, isa.T6, p.shift)
		}
		if p.kind == mmChar {
			emitClamp(b, t, isa.T6, isa.T7, -128, 127)
			emitStoreInc(b, t, isa.SB, isa.S7, isa.T6, 1)
		} else {
			emitClamp(b, t, isa.T6, isa.T7, -32768, 32767)
			emitStoreInc(b, t, isa.SH, isa.S7, isa.T6, 2)
		}
	}

	rowLoop := b.Uniq("mm_row")
	b.Label(rowLoop)
	// Segment 1: columns j0..n-1.
	b.ADD(isa.A4, isa.S1, isa.S5) // bt = BT + j0 rows
	b.ADD(isa.S7, isa.S2, isa.S6) // C cursor at column j0
	b.LI(isa.A5, n)
	b.SUB(isa.A5, isa.A5, isa.S4)
	devrt.EmitLoop(b, t, isa.A5, 1, 1, func(int) { emitCol(0) })
	// Segment 2: columns 0..j0-1 (skipped when j0 == 0).
	seg2Done := b.Uniq("mm_seg2")
	b.SFI(isa.SFEQI, isa.S4, 0)
	b.BF(seg2Done)
	b.MOV(isa.A4, isa.S1)
	b.MOV(isa.S7, isa.S2)
	b.MOV(isa.A5, isa.S4)
	devrt.EmitLoop(b, t, isa.A5, 1, 1, func(int) { emitCol(0) })
	b.Label(seg2Done)
	b.ADDI(isa.S0, isa.S0, n*esz)
	b.ADDI(isa.S2, isa.S2, n*esz)
	b.ADDI(isa.S3, isa.S3, -1)
	b.SFI(isa.SFGTSI, isa.S3, 0)
	b.BF(rowLoop)
	b.Label(noRows)
	devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7)

	return b.Build(asm.Layout{})
}
