package kernels

import (
	"encoding/binary"
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/devrt"
	"hetsim/internal/fixed"
	"hetsim/internal/isa"
)

// Convolutional Neural Network inference in the style of the CConvNet
// library the paper extends (Table I rows 8-9): a LeNet-like topology on
// Q15 fixed-point data —
//
//	conv1 5x5 (1 -> M1 maps) + activation
//	avg-pool 2x2
//	conv2 5x5 (M1 -> M2 maps) + activation
//	avg-pool 2x2
//	fully-connected -> 10 scores (int32)
//
// The exact variant shifts every product back to Q15 and applies a tanh
// lookup table — the fixed-point regime that cannot use MAC or SIMD. The
// "approx" variant mirrors the paper's approximated CNN: Q12 weights with
// raw accumulation (one shift per output instead of per product) and a
// linear clamp activation — which both removes work (fewer RISC ops) and
// re-enables the 2-way SIMD dot product on OR10N.

type cnnParams struct {
	approx bool
	w      int32 // input image is w x w
	m1, m2 int32 // feature maps per conv layer
	out1   int32 // conv1 output edge (w-4)
	p1     int32 // pooled (out1/2)
	out2   int32 // conv2 output edge (p1-4)
	p2     int32 // pooled (out2/2)
	nOut   int32 // fc outputs
}

const (
	cnnQ       = 15
	cnnQApprox = 12
	cnnActClip = 16384 // +-0.5 in Q15, the approx linear activation bound
)

func cnnTanhLUT() *fixed.LUT { return fixed.NewTanhLUT(fixed.Q15, fixed.Q15, 4.0, 6) }

// CNN returns the paper-sized CNN (32x32 input, 4+8 maps, 10 classes).
func CNN(approx bool) *Instance { return CNNSized(approx, 32, 4, 8) }

// CNNSized returns a CNN instance with custom geometry (for fast tests).
func CNNSized(approx bool, w, m1, m2 int) *Instance {
	p := cnnParams{approx: approx, w: int32(w), m1: int32(m1), m2: int32(m2), nOut: 10}
	p.out1 = p.w - 4
	p.p1 = p.out1 / 2
	p.out2 = p.p1 - 4
	p.p2 = p.out2 / 2
	if p.out1%2 != 0 || p.out2 <= 0 || p.out2%2 != 0 {
		panic(fmt.Sprintf("kernels: cnn geometry does not pool evenly from %d", w))
	}
	name := "cnn"
	desc := "Convolutional Neural Network"
	if approx {
		name = "cnn (approx)"
		desc = "Convolutional Neural Network (approximated)"
	}
	model := cnnModel(p)
	return &Instance{
		Name:       name,
		Field:      "learning / vision",
		Desc:       desc,
		ParamDesc:  fmt.Sprintf("%dx%d, %d+%d maps", w, w, m1, m2),
		MaxThreads: 4,
		outLen:     uint32(4 * p.nOut),
		args:       [4]uint32{uint32(w), uint32(m1), uint32(m2)},
		build: func(t isa.Target, mode devrt.Mode) (*asm.Program, error) {
			return buildCNN(t, mode, p, model)
		},
		genInput: func(seed uint64) []byte { return cnnInput(p, seed) },
		golden:   func(in []byte) []byte { return cnnGolden(p, model, in) },
	}
}

type cnnModelData struct {
	w1  []int16 // m1 x 25
	b1  []int32
	w2  []int16 // m2 x m1 x 25
	b2  []int32
	wfc []int16 // nOut x (m2*p2*p2)
	bfc []int32
	lut *fixed.LUT
}

func cnnModel(p cnnParams) cnnModelData {
	rng := newRNG(0x636e6e) // "cnn"
	wBound := int32(8192)   // 0.25 in Q15
	fcBound := int32(8192)
	if p.approx {
		wBound = 1024 // 0.25 in Q12
		fcBound = 512
	}
	m := cnnModelData{lut: cnnTanhLUT()}
	m.w1 = make([]int16, p.m1*25)
	for i := range m.w1 {
		m.w1[i] = rng.i16(wBound)
	}
	m.b1 = make([]int32, p.m1)
	for i := range m.b1 {
		m.b1[i] = rng.i32(2000)
	}
	m.w2 = make([]int16, p.m2*p.m1*25)
	for i := range m.w2 {
		m.w2[i] = rng.i16(wBound)
	}
	m.b2 = make([]int32, p.m2)
	for i := range m.b2 {
		m.b2[i] = rng.i32(2000)
	}
	m.wfc = make([]int16, p.nOut*p.m2*p.p2*p.p2)
	for i := range m.wfc {
		m.wfc[i] = rng.i16(fcBound)
	}
	m.bfc = make([]int32, p.nOut)
	for i := range m.bfc {
		m.bfc[i] = rng.i32(2000)
	}
	return m
}

func cnnInput(p cnnParams, seed uint64) []byte {
	rng := newRNG(seed ^ 0x696d67) // "img"
	out := make([]byte, 2*p.w*p.w)
	for i := int32(0); i < p.w*p.w; i++ {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(rng.i16(32000)))
	}
	return out
}

// --- golden model -------------------------------------------------------

func (p cnnParams) act(m cnnModelData, acc int32) int32 {
	if p.approx {
		v := acc >> cnnQApprox
		if v > cnnActClip {
			v = cnnActClip
		}
		if v < -cnnActClip {
			v = -cnnActClip
		}
		return v
	}
	return m.lut.EvalOdd(acc)
}

func cnnGolden(p cnnParams, m cnnModelData, in []byte) []byte {
	img := make([]int32, p.w*p.w)
	for i := range img {
		img[i] = int32(int16(binary.LittleEndian.Uint16(in[2*i:])))
	}
	prod := func(w, x int32) int32 {
		if p.approx {
			return w * x
		}
		return (w * x) >> cnnQ
	}
	conv := func(src []int32, srcW, inMaps int32, wgt []int16, bias []int32, outMaps, outW int32) []int32 {
		dst := make([]int32, outMaps*outW*outW)
		for om := int32(0); om < outMaps; om++ {
			for r := int32(0); r < outW; r++ {
				for c := int32(0); c < outW; c++ {
					acc := bias[om]
					for im := int32(0); im < inMaps; im++ {
						for kr := int32(0); kr < 5; kr++ {
							for kc := int32(0); kc < 5; kc++ {
								x := src[im*srcW*srcW+(r+kr)*srcW+(c+kc)]
								w := int32(wgt[om*inMaps*25+im*25+kr*5+kc])
								acc += prod(w, x)
							}
						}
					}
					dst[om*outW*outW+r*outW+c] = p.act(m, acc)
				}
			}
		}
		return dst
	}
	pool := func(src []int32, maps, srcW int32) []int32 {
		oW := srcW / 2
		dst := make([]int32, maps*oW*oW)
		for mi := int32(0); mi < maps; mi++ {
			for r := int32(0); r < oW; r++ {
				for c := int32(0); c < oW; c++ {
					s := src[mi*srcW*srcW+(2*r)*srcW+2*c] +
						src[mi*srcW*srcW+(2*r)*srcW+2*c+1] +
						src[mi*srcW*srcW+(2*r+1)*srcW+2*c] +
						src[mi*srcW*srcW+(2*r+1)*srcW+2*c+1]
					dst[mi*oW*oW+r*oW+c] = s >> 2
				}
			}
		}
		return dst
	}
	f1 := conv(img, p.w, 1, m.w1, m.b1, p.m1, p.out1)
	q1 := pool(f1, p.m1, p.out1)
	f2 := conv(q1, p.p1, p.m1, m.w2, m.b2, p.m2, p.out2)
	q2 := pool(f2, p.m2, p.out2)
	// Fully connected.
	out := make([]byte, 4*p.nOut)
	nIn := p.m2 * p.p2 * p.p2
	for o := int32(0); o < p.nOut; o++ {
		acc := m.bfc[o]
		for i := int32(0); i < nIn; i++ {
			acc += prod(int32(m.wfc[o*nIn+i]), q2[i])
		}
		if p.approx {
			acc >>= cnnQApprox
		}
		binary.LittleEndian.PutUint32(out[4*o:], uint32(acc))
	}
	return out
}

// --- device code ---------------------------------------------------------

func buildCNN(t isa.Target, mode devrt.Mode, p cnnParams, m cnnModelData) (*asm.Program, error) {
	b := asm.NewBuilder("cnn")
	devrt.EmitCRT0(b, mode)

	b.Halves("cnn_w1", m.w1)
	b.Words("cnn_b1", m.b1)
	b.Halves("cnn_w2", m.w2)
	b.Words("cnn_b2", m.b2)
	b.Halves("cnn_wfc", m.wfc)
	b.Words("cnn_bfc", m.bfc)
	if !p.approx {
		b.Data("cnn_tanh", m.lut.Bytes(), 4)
	}
	b.Space("cnn_f1", uint32(2*p.m1*p.out1*p.out1), 4)
	b.Space("cnn_p1", uint32(2*p.m1*p.p1*p.p1), 4)
	b.Space("cnn_f2", uint32(2*p.m2*p.out2*p.out2), 4)
	b.Space("cnn_p2", uint32(2*p.m2*p.p2*p.p2), 4)

	b.Label("main")
	devrt.EmitPrologue(b)
	devrt.EmitParallel(b, "cnn_conv1")
	devrt.EmitParallel(b, "cnn_pool1")
	devrt.EmitParallel(b, "cnn_conv2")
	devrt.EmitParallel(b, "cnn_pool2")
	devrt.EmitParallel(b, "cnn_fc")
	devrt.EmitEpilogue(b)

	// Activation helper emitted inline after each conv output.
	emitAct := func(acc isa.Reg) {
		if p.approx {
			b.SRAI(acc, acc, cnnQApprox)
			emitClamp(b, t, acc, isa.T9, -cnnActClip, cnnActClip)
			return
		}
		// tanh via odd-symmetric LUT: sign-split around emitLUTEval.
		neg := b.Uniq("act_neg")
		join := b.Uniq("act_join")
		b.SFI(isa.SFLTSI, acc, 0)
		b.BF(neg)
		emitLUTEval(b, t, acc, isa.S7, isa.T7, isa.T8, isa.T9, m.lut.Span, int32(m.lut.LogStep))
		b.J(join)
		b.Label(neg)
		b.SUB(acc, isa.R0, acc)
		emitLUTEval(b, t, acc, isa.S7, isa.T7, isa.T8, isa.T9, m.lut.Span, int32(m.lut.LogStep))
		b.SUB(acc, isa.R0, acc)
		b.Label(join)
	}

	// emitConv emits one conv-layer body: work items are (map, row) pairs,
	// flattened and chunked across the team.
	emitConv := func(label string, src string, srcIsInput bool, srcW, inMaps int32,
		wSym, bSym, dstSym string, outMaps, outW int32) {
		b.Label(label)
		devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7)
		emitGlob(b, globCtx{base: isa.A0, in: isa.A1, out: isa.A2})
		if !srcIsInput {
			b.LA(isa.A1, src)
		}
		if !p.approx {
			b.LA(isa.S7, "cnn_tanh")
		}
		total := outMaps * outW
		devrt.EmitChunk(b, total, isa.S0 /*lo*/, isa.S2 /*hi*/)
		noWork := b.Uniq(label + "_none")
		b.SF(isa.SFGES, isa.S0, isa.S2)
		b.BF(noWork)
		rowLoop := b.Uniq(label + "_row")
		b.Label(rowLoop)
		// m = w / outW ; r = w % outW
		b.LI(isa.T5, outW)
		b.DIVU(isa.T6, isa.S0, isa.T5) // m
		b.MUL(isa.T7, isa.T6, isa.T5)
		b.SUB(isa.T7, isa.S0, isa.T7) // r
		// S3 = weight base for map m; S4 = bias value
		b.LA(isa.S3, wSym)
		b.LI(isa.T8, inMaps*25*2)
		b.MUL(isa.T9, isa.T6, isa.T8)
		b.ADD(isa.S3, isa.S3, isa.T9)
		b.LA(isa.S4, bSym)
		b.SLLI(isa.T9, isa.T6, 2)
		b.ADD(isa.S4, isa.S4, isa.T9)
		b.LW(isa.S4, isa.S4, 0)
		// A3 = src + r*srcW*2 (sliding window base; +2 per column)
		b.LI(isa.T8, srcW*2)
		b.MUL(isa.T9, isa.T7, isa.T8)
		b.ADD(isa.A3, isa.A1, isa.T9)
		// S1 = dst + (m*outW*outW + r*outW)*2
		b.LA(isa.S1, dstSym)
		b.LI(isa.T8, outW*outW*2)
		b.MUL(isa.T9, isa.T6, isa.T8)
		b.ADD(isa.S1, isa.S1, isa.T9)
		b.LI(isa.T8, outW*2)
		b.MUL(isa.T9, isa.T7, isa.T8)
		b.ADD(isa.S1, isa.S1, isa.T9)

		b.LI(isa.A5, outW) // column counter
		devrt.EmitLoop(b, t, isa.A5, 1, 1, func(int) {
			b.MOV(isa.T6, isa.S4) // acc = bias
			for im := int32(0); im < inMaps; im++ {
				for kr := int32(0); kr < 5; kr++ {
					xOff := (im*srcW*srcW + kr*srcW) * 2
					wOff := (im*25 + kr*5) * 2
					if p.approx && t.Feat.SIMD {
						// Two dotp2h pairs + one scalar tap per row.
						// x loads may be unaligned: OR10N supports that.
						b.LW(isa.T7, isa.A3, xOff)
						b.LW(isa.T8, isa.S3, wOff)
						b.DOTP2H(isa.T6, isa.T7, isa.T8)
						b.LW(isa.T7, isa.A3, xOff+4)
						b.LW(isa.T8, isa.S3, wOff+4)
						b.DOTP2H(isa.T6, isa.T7, isa.T8)
						b.Load(isa.LHS, isa.T7, isa.A3, xOff+8)
						b.Load(isa.LHS, isa.T8, isa.S3, wOff+8)
						if t.Feat.MacRR {
							b.MAC(isa.T6, isa.T7, isa.T8)
						} else {
							b.MUL(isa.T7, isa.T7, isa.T8)
							b.ADD(isa.T6, isa.T6, isa.T7)
						}
						continue
					}
					for kc := int32(0); kc < 5; kc++ {
						b.Load(isa.LHS, isa.T7, isa.A3, xOff+kc*2)
						b.Load(isa.LHS, isa.T8, isa.S3, wOff+kc*2)
						if p.approx && t.Feat.MacRR {
							b.MAC(isa.T6, isa.T7, isa.T8)
						} else {
							b.MUL(isa.T7, isa.T7, isa.T8)
							if !p.approx {
								b.SRAI(isa.T7, isa.T7, cnnQ)
							}
							b.ADD(isa.T6, isa.T6, isa.T7)
						}
					}
				}
			}
			emitAct(isa.T6)
			emitStoreInc(b, t, isa.SH, isa.S1, isa.T6, 2)
			b.ADDI(isa.A3, isa.A3, 2)
		})
		b.ADDI(isa.S0, isa.S0, 1)
		b.SF(isa.SFLTS, isa.S0, isa.S2)
		b.BF(rowLoop)
		b.Label(noWork)
		devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7)
	}

	emitConv("cnn_conv1", "", true, p.w, 1, "cnn_w1", "cnn_b1", "cnn_f1", p.m1, p.out1)
	emitConv("cnn_conv2", "cnn_p1", false, p.p1, p.m1, "cnn_w2", "cnn_b2", "cnn_f2", p.m2, p.out2)

	// emitPool emits an average-pool body over (map, row) work items.
	emitPool := func(label, srcSym, dstSym string, maps, srcW int32) {
		oW := srcW / 2
		b.Label(label)
		devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2)
		total := maps * oW
		devrt.EmitChunk(b, total, isa.S0, isa.S2)
		noWork := b.Uniq(label + "_none")
		b.SF(isa.SFGES, isa.S0, isa.S2)
		b.BF(noWork)
		rowLoop := b.Uniq(label + "_row")
		b.Label(rowLoop)
		// m = w / oW ; r = w % oW
		b.LI(isa.T5, oW)
		b.DIVU(isa.T6, isa.S0, isa.T5)
		b.MUL(isa.T7, isa.T6, isa.T5)
		b.SUB(isa.T7, isa.S0, isa.T7)
		// A3 = src + (m*srcW*srcW + 2r*srcW)*2 ; S1 = dst + (m*oW*oW + r*oW)*2
		b.LA(isa.A3, srcSym)
		b.LI(isa.T8, srcW*srcW*2)
		b.MUL(isa.T9, isa.T6, isa.T8)
		b.ADD(isa.A3, isa.A3, isa.T9)
		b.LI(isa.T8, srcW*4)
		b.MUL(isa.T9, isa.T7, isa.T8)
		b.ADD(isa.A3, isa.A3, isa.T9)
		b.LA(isa.S1, dstSym)
		b.LI(isa.T8, oW*oW*2)
		b.MUL(isa.T9, isa.T6, isa.T8)
		b.ADD(isa.S1, isa.S1, isa.T9)
		b.LI(isa.T8, oW*2)
		b.MUL(isa.T9, isa.T7, isa.T8)
		b.ADD(isa.S1, isa.S1, isa.T9)
		b.LI(isa.A5, oW)
		devrt.EmitLoop(b, t, isa.A5, 1, 1, func(int) {
			b.Load(isa.LHS, isa.T6, isa.A3, 0)
			b.Load(isa.LHS, isa.T7, isa.A3, 2)
			b.ADD(isa.T6, isa.T6, isa.T7)
			b.Load(isa.LHS, isa.T7, isa.A3, srcW*2)
			b.ADD(isa.T6, isa.T6, isa.T7)
			b.Load(isa.LHS, isa.T7, isa.A3, srcW*2+2)
			b.ADD(isa.T6, isa.T6, isa.T7)
			b.SRAI(isa.T6, isa.T6, 2)
			emitStoreInc(b, t, isa.SH, isa.S1, isa.T6, 2)
			b.ADDI(isa.A3, isa.A3, 4)
		})
		b.ADDI(isa.S0, isa.S0, 1)
		b.SF(isa.SFLTS, isa.S0, isa.S2)
		b.BF(rowLoop)
		b.Label(noWork)
		devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2)
	}

	emitPool("cnn_pool1", "cnn_f1", "cnn_p1", p.m1, p.out1)
	emitPool("cnn_pool2", "cnn_f2", "cnn_p2", p.m2, p.out2)

	// Fully-connected body: outputs chunked across the team.
	nIn := p.m2 * p.p2 * p.p2
	b.Label("cnn_fc")
	devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2, isa.S3)
	emitGlob(b, globCtx{base: isa.A0, out: isa.A2})
	devrt.EmitChunk(b, p.nOut, isa.S0, isa.S2)
	fcNone := b.Uniq("fc_none")
	b.SF(isa.SFGES, isa.S0, isa.S2)
	b.BF(fcNone)
	// S1 = out + lo*4 ; S3 = wfc + lo*nIn*2
	b.SLLI(isa.T5, isa.S0, 2)
	b.ADD(isa.S1, isa.A2, isa.T5)
	b.LA(isa.S3, "cnn_wfc")
	b.LI(isa.T5, nIn*2)
	b.MUL(isa.T6, isa.S0, isa.T5)
	b.ADD(isa.S3, isa.S3, isa.T6)
	fcLoop := b.Uniq("fc_loop")
	b.Label(fcLoop)
	// acc = bfc[o]
	b.LA(isa.T5, "cnn_bfc")
	b.SLLI(isa.T6, isa.S0, 2)
	b.ADD(isa.T5, isa.T5, isa.T6)
	b.LW(isa.T6, isa.T5, 0)
	b.LA(isa.A4, "cnn_p2")
	r := dotRegs{acc: isa.T6, aPtr: isa.S3, bPtr: isa.A4, cnt: isa.T7, x: isa.T8, y: isa.T9}
	if p.approx {
		if nIn%2 == 0 {
			emitDotShort(b, t, r, nIn, 0) // raw accumulation, SIMD-capable
		} else {
			emitDotFixed(b, t, r, nIn, 0, 0) // q=0: raw products
		}
		b.SRAI(isa.T6, isa.T6, cnnQApprox)
	} else {
		emitDotFixed(b, t, r, nIn, cnnQ, 0)
	}
	emitStoreInc(b, t, isa.SW, isa.S1, isa.T6, 4)
	b.ADDI(isa.S0, isa.S0, 1)
	b.SF(isa.SFLTS, isa.S0, isa.S2)
	b.BF(fcLoop)
	b.Label(fcNone)
	devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2, isa.S3)

	return b.Build(asm.Layout{})
}
