package kernels

import (
	"fmt"
	"sync"

	"hetsim/internal/asm"
	"hetsim/internal/cpu"
	"hetsim/internal/isa"
)

// compileCache memoizes block-compiled programs per process, keyed by the
// program's image hash plus the full target spec (the same discipline as
// buildKey: timing and feature ablations change predecode metadata and
// block spans, so they must never alias). Compiled images are immutable —
// cores only ever read them — so one *cpu.Compiled is shared across all
// clusters, sweep workers and repeat runs of the same image.
var compileCache sync.Map // key string -> *compileEntry

// compileEntry is the cache slot: LoadOrStore claims the key, the once
// runs the compilation single-flight, so under a parallel sweep each
// distinct image compiles exactly once (TestCompiledSharedOnce pins the
// cpu.BlockCompiles counter on this).
type compileEntry struct {
	once sync.Once
	comp *cpu.Compiled
}

// Compiled returns the shared predecoded text and block run table of a
// program for a target, compiling on first use.
func Compiled(p *asm.Program, t isa.Target) (*cpu.Compiled, error) {
	h, err := HashProgram(p)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("%s|%s%+v%+v", h, t.Name, t.Feat, t.Time)
	e, _ := compileCache.LoadOrStore(key, &compileEntry{})
	entry := e.(*compileEntry)
	entry.once.Do(func() { entry.comp = cpu.Compile(p.Text, t) })
	return entry.comp, nil
}
