package kernels

import (
	"fmt"
	"sync"
	"sync/atomic"

	"hetsim/internal/asm"
	"hetsim/internal/cpu"
	"hetsim/internal/isa"
)

// compileCache memoizes block-compiled programs per process, keyed by the
// program's image hash plus the full target spec (the same discipline as
// buildKey: timing and feature ablations change predecode metadata and
// block spans, so they must never alias). Compiled images are immutable —
// cores only ever read them — so one *cpu.Compiled is shared across all
// clusters, sweep workers and repeat runs of the same image.
var compileCache sync.Map // key string -> *compileEntry

// compileEntry is the cache slot: LoadOrStore claims the key, the once
// runs the compilation single-flight, so under a parallel sweep each
// distinct image compiles exactly once (TestCompiledSharedOnce pins the
// cpu.BlockCompiles counter on this).
type compileEntry struct {
	once sync.Once
	comp *cpu.Compiled
}

// compiledHits / compiledMisses count memo outcomes: a miss claims a fresh
// cache slot (and pays a compilation), a hit reuses one another caller
// already claimed. Surfaced through CompileStats for hetsimd /v1/stats and
// hetexp's final stats line.
var (
	compiledHits   atomic.Uint64
	compiledMisses atomic.Uint64
)

// CompileStats reports the process-wide compile-tier counters: basic-block
// table compilations, superblock formations (hot-edge threshold crossings
// inside the executors), and the Compiled memo hit/miss split.
func CompileStats() (blockCompiles, superCompiles, memoHits, memoMisses uint64) {
	return cpu.BlockCompiles.Load(), cpu.SuperCompiles.Load(),
		compiledHits.Load(), compiledMisses.Load()
}

// Compiled returns the shared predecoded text and block run table of a
// program for a target, compiling on first use. The memo key carries
// cpu.CompileVersion so cached tables from an older builder layout can
// never alias a newer one across the format change.
func Compiled(p *asm.Program, t isa.Target) (*cpu.Compiled, error) {
	h, err := HashProgram(p)
	if err != nil {
		return nil, err
	}
	key := fmt.Sprintf("v%d|%s|%s%+v%+v", cpu.CompileVersion, h, t.Name, t.Feat, t.Time)
	e, loaded := compileCache.LoadOrStore(key, &compileEntry{})
	if loaded {
		compiledHits.Add(1)
	} else {
		compiledMisses.Add(1)
	}
	entry := e.(*compileEntry)
	entry.once.Do(func() { entry.comp = cpu.Compile(p.Text, t) })
	return entry.comp, nil
}
