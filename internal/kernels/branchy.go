package kernels

import (
	"fmt"
	"math/rand"

	"hetsim/internal/asm"
	"hetsim/internal/hw"
	"hetsim/internal/isa"
)

// BranchyOpts selects which control-flow features a generated branchy
// program may use. Both must stay off for targets without the matching
// hardware (HWLoop: PULP only; Barriers: needs the cluster event unit).
type BranchyOpts struct {
	HWLoop   bool // nested LPSETUP hardware loops
	Barriers bool // barrier-separated per-core phases (solo windows)
	// Scale multiplies every loop trip count (0 and 1 mean unscaled).
	// The differentials use the short mix — correctness does not need
	// trip volume — while the throughput benches scale trips up so the
	// cycle budget is dominated by hot loop iterations, the regime the
	// paper's kernel inner loops (conv/matmul/FFT) actually run in.
	Scale int32
}

// BranchyProgram generates a terminating branch/loop-dominated program —
// the adversarial counterpart of the straight-line-heavy randomized family
// in the block differentials. It stresses exactly what superblock chaining
// compiles: counted backward-branch loops whose back edge turns hot,
// taken-branch chains inside loop bodies, nested hardware loops, and (with
// Barriers) per-core skewed phases that park early finishers at a barrier
// so the last core runs inside a solo window. Memory traffic is sparse,
// aligned, and confined to the first 4 KiB of TCDM; every loop trip count
// comes from an immediate, never from memory, so the program halts even on
// a dirty TCDM image (benches reuse one cluster across runs).
//
// Register map: r1 TCDM base, r2..r9 random data, r10/r12 loop counters,
// r11 core ID, r13 scratch, r14 barrier address, r15 team size.
func BranchyProgram(seed int64, o BranchyOpts) *asm.Program {
	r := rand.New(rand.NewSource(seed))
	var text []isa.Inst
	emit := func(op isa.Op, rd, ra, rb isa.Reg, imm int32) {
		text = append(text, isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb, Imm: imm})
	}
	reg := func() isa.Reg { return isa.Reg(2 + r.Intn(8)) } // r2..r9
	scale := o.Scale
	if scale < 1 {
		scale = 1
	}
	trips := func(t int32) int32 { return t * scale }

	alu := func() {
		switch r.Intn(3) {
		case 0:
			ops := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.MUL}
			emit(ops[r.Intn(len(ops))], reg(), reg(), reg(), 0)
		case 1:
			ops := []isa.Op{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI}
			emit(ops[r.Intn(len(ops))], reg(), reg(), 0, r.Int31n(1<<12))
		default:
			ops := []isa.Op{isa.SLLI, isa.SRLI, isa.SRAI}
			emit(ops[r.Intn(len(ops))], reg(), reg(), 0, r.Int31n(32))
		}
	}
	loadStore := func() {
		if r.Intn(2) == 0 {
			off := r.Int31n(1024) * 4
			emit(isa.LW, reg(), 1, 0, off)
		} else {
			off := r.Int31n(1024) * 4
			emit(isa.SW, 0, 1, reg(), off)
		}
	}
	// countedLoop emits `r10 = trips(+id*skew); body; r10--; bnf back`:
	// the backward branch is taken trips-1 times, so its edge counter
	// crosses the hot threshold and the loop body chains into a trace.
	countedLoop := func(trips int32, skew int32, body func()) {
		emit(isa.MOVHI, 10, 0, 0, 0)
		emit(isa.ORIL, 10, 0, 0, trips)
		if skew > 0 { // per-core trip skew: r10 += coreID*skew
			emit(isa.MOVHI, 13, 0, 0, 0)
			emit(isa.ORIL, 13, 0, 0, skew)
			emit(isa.MUL, 13, 11, 13, 0)
			emit(isa.ADD, 10, 10, 13, 0)
		}
		top := int32(len(text))
		body()
		emit(isa.ADDI, 10, 10, 0, -1)
		emit(isa.SFEQI, 0, 10, 0, 0)
		// BF/BNF target = pc + 4 + imm*4: branch back to the loop top.
		emit(isa.BNF, 0, 0, 0, top-int32(len(text))-1)
	}

	// Prologue: TCDM base, random data registers, core ID, barrier regs.
	emit(isa.MOVHI, 1, 0, 0, int32(hw.TCDMBase>>16))
	emit(isa.ORIL, 1, 0, 0, int32(hw.TCDMBase&0xffff))
	for i := isa.Reg(2); i <= 9; i++ {
		emit(isa.MOVHI, i, 0, 0, r.Int31n(1<<16))
		emit(isa.ORIL, i, 0, 0, r.Int31n(1<<16))
	}
	emit(isa.MFSPR, 11, 0, 0, isa.SprCoreID)
	if o.Barriers {
		emit(isa.MOVHI, 14, 0, 0, int32((hw.EvtBase+hw.EvtBarrierArrive)>>16))
		emit(isa.ORIL, 14, 0, 0, int32((hw.EvtBase+hw.EvtBarrierArrive)&0xffff))
		emit(isa.MFSPR, 15, 0, 0, isa.SprNumCore)
	}

	for n := 6 + r.Intn(8); n > 0; n-- {
		switch pick := r.Intn(10); {
		case pick < 4: // hot backward-branch loop, plain body
			body := 1 + r.Intn(5)
			countedLoop(trips(12+r.Int31n(28)), 0, func() {
				for i := 0; i < body; i++ {
					if r.Intn(6) == 0 {
						loadStore()
					} else {
						alu()
					}
				}
			})
		case pick < 6: // loop body carrying a taken-branch chain
			links := 1 + r.Intn(3)
			countedLoop(trips(12+r.Int31n(20)), 0, func() {
				for i := 0; i < links; i++ {
					rr := reg()
					emit(isa.SFEQ, 0, rr, rr, 0) // always true
					k := int32(1 + r.Intn(2))
					emit(isa.BF, 0, 0, 0, k)
					for ; k > 0; k-- {
						alu()
					}
					alu()
				}
			})
		case pick < 8: // nested hardware loops (PULP targets only)
			if !o.HWLoop {
				alu()
				continue
			}
			inner := 1 + r.Intn(3)
			tail := 1 + r.Intn(2)
			emit(isa.MOVHI, 10, 0, 0, 0)
			emit(isa.ORIL, 10, 0, 0, trips(2+r.Int31n(5)))
			emit(isa.MOVHI, 12, 0, 0, 0)
			emit(isa.ORIL, 12, 0, 0, trips(2+r.Int31n(5)))
			// Outer body = inner LPSETUP + inner body + tail, so the inner
			// loop ends strictly before the outer loop end.
			emit(isa.LPSETUP, 0, 10, 0, int32(1+inner+tail))
			emit(isa.LPSETUP, 1, 12, 0, int32(inner))
			for i := 0; i < inner; i++ {
				alu()
			}
			for i := 0; i < tail; i++ {
				alu()
			}
		case pick < 9 && o.Barriers: // barrier-separated solo-window phase
			// Per-core skewed trip counts: low-ID cores finish first,
			// arrive, and sleep; the last core runs its loop tail as the
			// only active agent — a solo window bounded by the barrier.
			countedLoop(trips(8+r.Int31n(12)), trips(6+r.Int31n(10)), func() {
				for i := 0; i < 1+r.Intn(3); i++ {
					alu()
				}
			})
			emit(isa.SW, 0, 14, 15, 0)
		default:
			if r.Intn(2) == 0 {
				loadStore()
			} else {
				alu()
			}
		}
	}
	if o.Barriers { // close with a full barrier so no core outruns TRAP
		emit(isa.SW, 0, 14, 15, 0)
	}
	emit(isa.TRAP, 0, 0, 0, 0)
	return &asm.Program{
		Name:     fmt.Sprintf("branchy-%d", seed),
		Entry:    hw.TextBase,
		TextBase: hw.TextBase,
		Text:     text,
	}
}
