package kernels

import (
	"encoding/binary"
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
)

// DWT is the second extension kernel: a multi-level Haar discrete wavelet
// transform over Q15 samples, the workhorse of the compressed-sensing
// acquisition schemes the paper's introduction cites for biomedical nodes.
// Per level, N samples become N/2 approximation and N/2 detail
// coefficients:
//
//	a[i] = (x[2i] + x[2i+1]) >> 1
//	d[i] = (x[2i] - x[2i+1]) >> 1
//
// and the transform recurses on the approximation half. The butterflies
// are add/sub/shift only — no multiplies — so the kernel isolates the
// load/store and loop machinery of the targets (post-increment streaming
// and hardware loops) from the MAC story the other kernels tell.
//
// Parallelization: within a level, output indices are chunked across the
// team; levels are separated by implicit region barriers.

type dwtParams struct {
	n      int32 // input samples (power of two)
	levels int32
}

// DWT returns a Haar wavelet transform instance over n Q15 samples.
func DWT(n, levels int) *Instance {
	p := dwtParams{n: int32(n), levels: int32(levels)}
	if n <= 0 || n&(n-1) != 0 {
		panic(fmt.Sprintf("kernels: dwt size %d must be a power of two", n))
	}
	if levels < 1 || n>>uint(levels) < 4 {
		panic(fmt.Sprintf("kernels: dwt levels %d too deep for %d samples", levels, n))
	}
	return &Instance{
		Name:       "dwt",
		Field:      "signal processing",
		Desc:       fmt.Sprintf("%d-level Haar wavelet transform (extension kernel)", levels),
		ParamDesc:  fmt.Sprintf("N=%d L=%d", n, levels),
		MaxThreads: 4,
		outLen:     uint32(2 * p.n),
		args:       [4]uint32{uint32(n), uint32(levels)},
		build: func(tgt isa.Target, mode devrt.Mode) (*asm.Program, error) {
			return buildDWT(tgt, mode, p)
		},
		genInput: func(seed uint64) []byte { return dwtInput(p, seed) },
		golden:   func(in []byte) []byte { return dwtGolden(p, in) },
	}
}

func dwtInput(p dwtParams, seed uint64) []byte {
	rng := newRNG(seed ^ 0x647774) // "dwt"
	out := make([]byte, 2*p.n)
	for i := int32(0); i < p.n; i++ {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(rng.i16(30000)))
	}
	return out
}

func dwtGolden(p dwtParams, in []byte) []byte {
	x := make([]int32, p.n)
	for i := range x {
		x[i] = int32(int16(binary.LittleEndian.Uint16(in[2*i:])))
	}
	tmp := make([]int32, p.n)
	span := p.n
	for l := int32(0); l < p.levels; l++ {
		half := span / 2
		for i := int32(0); i < half; i++ {
			tmp[i] = (x[2*i] + x[2*i+1]) >> 1
			tmp[half+i] = (x[2*i] - x[2*i+1]) >> 1
		}
		copy(x[:span], tmp[:span])
		span = half
	}
	out := make([]byte, 2*p.n)
	for i, v := range x {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(int16(v)))
	}
	return out
}

func buildDWT(t isa.Target, mode devrt.Mode, p dwtParams) (*asm.Program, error) {
	b := asm.NewBuilder("dwt")
	devrt.EmitCRT0(b, mode)
	b.Space("dwt_tmp", uint32(2*p.n), 4)

	b.Label("main")
	devrt.EmitPrologue(b)
	// Each level is one parallel region (barrier-separated); the butterfly
	// body reads the level's span from GlobArg2, which the master updates
	// between regions, and the copy-back body mirrors the golden model.
	span := p.n
	for l := int32(0); l < p.levels; l++ {
		b.LA(isa.T0, "__glob")
		b.LI(isa.T1, span)
		b.SW(isa.T0, isa.T1, devrt.GlobArg2)
		devrt.EmitParallel(b, "dwt_level")
		devrt.EmitParallel(b, "dwt_copy")
		span /= 2
	}
	// The result lives in the input buffer; copy it to the output buffer.
	devrt.EmitParallel(b, "dwt_out")
	devrt.EmitEpilogue(b)

	// Butterfly body: indices [lo,hi) of the current half-span.
	b.Label("dwt_level")
	devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2, isa.S3)
	emitGlob(b, globCtx{base: isa.A0, in: isa.A1})
	b.LW(isa.T5, isa.A0, devrt.GlobArg2) // span
	b.SRLI(isa.S3, isa.T5, 1)            // half
	// Chunk [lo,hi) over half, computed from threads at runtime.
	b.MFSPR(isa.T0, isa.SprCoreID)
	b.LW(isa.T1, isa.A0, devrt.GlobThreads)
	b.ADD(isa.T2, isa.S3, isa.T1)
	b.ADDI(isa.T2, isa.T2, -1)
	b.DIVU(isa.T2, isa.T2, isa.T1) // chunk
	b.MUL(isa.S0, isa.T2, isa.T0)  // lo
	b.ADD(isa.S1, isa.S0, isa.T2)  // hi
	clamp := b.Uniq("dwt_clamp")
	b.SF(isa.SFLES, isa.S1, isa.S3)
	b.BF(clamp)
	b.MOV(isa.S1, isa.S3)
	b.Label(clamp)
	done := b.Uniq("dwt_done")
	b.SF(isa.SFGES, isa.S0, isa.S1)
	b.BF(done)
	// Pointers: x at in + 4*lo bytes (pairs), a at tmp + 2*lo, d at tmp + 2*(half+lo).
	b.LA(isa.S2, "dwt_tmp")
	b.SLLI(isa.T3, isa.S0, 2)
	b.ADD(isa.A1, isa.A1, isa.T3) // x pair ptr
	b.SLLI(isa.T3, isa.S0, 1)
	b.ADD(isa.S2, isa.S2, isa.T3) // a ptr
	b.LA(isa.T4, "dwt_tmp")
	b.ADD(isa.T4, isa.T4, isa.T3)
	b.SLLI(isa.T3, isa.S3, 1)
	b.ADD(isa.T4, isa.T4, isa.T3) // d ptr
	b.SUB(isa.S1, isa.S1, isa.S0) // count
	loop := b.Uniq("dwt_bfly")
	b.Label(loop)
	emitLoadInc(b, t, isa.LHS, isa.T5, isa.A1, 2) // x[2i]
	emitLoadInc(b, t, isa.LHS, isa.T6, isa.A1, 2) // x[2i+1]
	b.ADD(isa.T7, isa.T5, isa.T6)
	b.SRAI(isa.T7, isa.T7, 1)
	emitStoreInc(b, t, isa.SH, isa.S2, isa.T7, 2)
	b.SUB(isa.T7, isa.T5, isa.T6)
	b.SRAI(isa.T7, isa.T7, 1)
	emitStoreInc(b, t, isa.SH, isa.T4, isa.T7, 2)
	b.ADDI(isa.S1, isa.S1, -1)
	b.SFI(isa.SFGTSI, isa.S1, 0)
	b.BF(loop)
	b.Label(done)
	devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2, isa.S3)

	// Copy-back body: tmp[lo,hi) -> in[lo,hi) over the full span.
	b.Label("dwt_copy")
	devrt.EmitPrologue(b, isa.S0, isa.S1)
	emitGlob(b, globCtx{base: isa.A0, in: isa.A1})
	b.LW(isa.T5, isa.A0, devrt.GlobArg2) // span (elements)
	b.MFSPR(isa.T0, isa.SprCoreID)
	b.LW(isa.T1, isa.A0, devrt.GlobThreads)
	b.ADD(isa.T2, isa.T5, isa.T1)
	b.ADDI(isa.T2, isa.T2, -1)
	b.DIVU(isa.T2, isa.T2, isa.T1)
	b.MUL(isa.S0, isa.T2, isa.T0) // lo
	b.ADD(isa.S1, isa.S0, isa.T2) // hi
	cclamp := b.Uniq("dwc_clamp")
	b.SF(isa.SFLES, isa.S1, isa.T5)
	b.BF(cclamp)
	b.MOV(isa.S1, isa.T5)
	b.Label(cclamp)
	cdone := b.Uniq("dwc_done")
	b.SF(isa.SFGES, isa.S0, isa.S1)
	b.BF(cdone)
	b.LA(isa.A2, "dwt_tmp")
	b.SLLI(isa.T3, isa.S0, 1)
	b.ADD(isa.A2, isa.A2, isa.T3)
	b.ADD(isa.A1, isa.A1, isa.T3)
	b.SUB(isa.S1, isa.S1, isa.S0)
	cloop := b.Uniq("dwc_loop")
	b.Label(cloop)
	emitLoadInc(b, t, isa.LHS, isa.T6, isa.A2, 2)
	emitStoreInc(b, t, isa.SH, isa.A1, isa.T6, 2)
	b.ADDI(isa.S1, isa.S1, -1)
	b.SFI(isa.SFGTSI, isa.S1, 0)
	b.BF(cloop)
	b.Label(cdone)
	devrt.EmitEpilogue(b, isa.S0, isa.S1)

	// Final copy: in -> out over all n elements.
	b.Label("dwt_out")
	devrt.EmitPrologue(b, isa.S0, isa.S1)
	emitGlob(b, globCtx{base: isa.A0, in: isa.A1, out: isa.A2})
	devrt.EmitChunk(b, p.n, isa.S0, isa.S1)
	odone := b.Uniq("dwo_done")
	b.SF(isa.SFGES, isa.S0, isa.S1)
	b.BF(odone)
	b.SLLI(isa.T3, isa.S0, 1)
	b.ADD(isa.A1, isa.A1, isa.T3)
	b.ADD(isa.A2, isa.A2, isa.T3)
	b.SUB(isa.S1, isa.S1, isa.S0)
	oloop := b.Uniq("dwo_loop")
	b.Label(oloop)
	emitLoadInc(b, t, isa.LHS, isa.T6, isa.A1, 2)
	emitStoreInc(b, t, isa.SH, isa.A2, isa.T6, 2)
	b.ADDI(isa.S1, isa.S1, -1)
	b.SFI(isa.SFGTSI, isa.S1, 0)
	b.BF(oloop)
	b.Label(odone)
	devrt.EmitEpilogue(b, isa.S0, isa.S1)

	return b.Build(asm.Layout{})
}
