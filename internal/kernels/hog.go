package kernels

import (
	"encoding/binary"
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/devrt"
	"hetsim/internal/fixed"
	"hetsim/internal/isa"
)

// Histogram of Oriented Gradients feature descriptor (Table I row 10), in
// the spirit of the VLFeat implementation the paper ports: 8x8-pixel
// cells, 9 unsigned orientation bins, 2x2-cell blocks with L2
// normalization. As in the paper, the kernel works on 32-bit fixed-point
// data whose dynamic range forces 64-bit intermediates: the Q16 magnitude
// x bilinear-weight products and the block-energy accumulation both go
// through the 64-bit MAC chain — single-cycle on the Cortex-M4 (SMLAL),
// software-emulated on OR10N, which is why hog is the one benchmark with
// an architectural slowdown in Fig. 4.
//
// Pipeline (all phases OpenMP-parallel):
//
//	zero:   clear the cell histograms
//	cells:  per pixel: central-difference gradient, magnitude by integer
//	        sqrt, orientation bin by a tan-table comparison network,
//	        Q16 x-bilinear vote into the two neighbouring cell columns
//	blocks: per 2x2 block: 64-bit energy = sum h^2, n = sqrt(e>>24)+1,
//	        output h/n for the 36 block values
type hogParams struct {
	w, h   int32
	cw, ch int32 // cells
	bw, bh int32 // blocks
}

const (
	hogCell = 8
	hogBins = 9
	hogMagQ = 14 // magnitude fixed-point format for the votes
)

// hogTan is tan(20k degrees) in Q13 for k=1..8 (the bin boundary network).
var hogTan = [9]int32{0,
	2981,   // tan 20
	6873,   // tan 40
	14189,  // tan 60
	46461,  // tan 80
	-46461, // tan 100
	-14189, // tan 120
	-6873,  // tan 140
	-2981,  // tan 160
}

// HOG returns a hog instance over a w x h 8-bit image.
func HOG(w, h int) *Instance {
	p := hogParams{w: int32(w), h: int32(h)}
	if w%hogCell != 0 || h%hogCell != 0 || w < 2*hogCell || h < 2*hogCell {
		panic(fmt.Sprintf("kernels: hog image %dx%d must be a multiple of %d and at least two cells", w, h, hogCell))
	}
	p.cw, p.ch = p.w/hogCell, p.h/hogCell
	p.bw, p.bh = p.cw-1, p.ch-1
	return &Instance{
		Name:       "hog",
		Field:      "vision",
		Desc:       "Histogram of Oriented Gradients feature descriptor",
		ParamDesc:  fmt.Sprintf("%dx%d, %dx%d cells", w, h, p.cw, p.ch),
		MaxThreads: 4,
		outLen:     uint32(4 * p.bw * p.bh * 4 * hogBins),
		args:       [4]uint32{uint32(w), uint32(h)},
		build: func(t isa.Target, mode devrt.Mode) (*asm.Program, error) {
			return buildHOG(t, mode, p)
		},
		genInput: func(seed uint64) []byte { return hogInput(p, seed) },
		golden:   func(in []byte) []byte { return hogGolden(p, in) },
	}
}

func hogInput(p hogParams, seed uint64) []byte {
	rng := newRNG(seed ^ 0x686f67) // "hog"
	out := make([]byte, p.w*p.h)
	// Smooth-ish synthetic image: low-frequency ramps plus noise, so
	// gradients cover all orientations.
	for r := int32(0); r < p.h; r++ {
		for c := int32(0); c < p.w; c++ {
			v := 128 + 64*int32((r*5)/p.h) - 48*int32((c*3)/p.w) + rng.i32(40)
			if v < 0 {
				v = 0
			}
			if v > 255 {
				v = 255
			}
			out[r*p.w+c] = byte(v)
		}
	}
	return out
}

// hogBin is the orientation-bin comparison network; the device code is an
// instruction-level transcription (same tan table, same tie behaviour).
func hogBin(gx, gy int32) int32 {
	if gy < 0 {
		gx, gy = -gx, -gy
	}
	bin := int32(0)
	for k := 1; k <= 4; k++ {
		if gx <= 0 || gy<<13 >= gx*hogTan[k] {
			bin++
		}
	}
	for k := 5; k <= 8; k++ {
		if gx < 0 && gy<<13 <= gx*hogTan[k] {
			bin++
		}
	}
	return bin
}

func hogGolden(p hogParams, in []byte) []byte {
	hist := make([]int32, p.cw*p.ch*hogBins)
	for r := int32(1); r < p.h-1; r++ {
		cr := r / hogCell
		rowHist := hist[cr*p.cw*hogBins:]
		for c := int32(1); c < p.w-1; c++ {
			gx := int32(in[r*p.w+c+1]) - int32(in[r*p.w+c-1])
			gy := int32(in[(r+1)*p.w+c]) - int32(in[(r-1)*p.w+c])
			mag := int32(fixed.ISqrt32(uint32(gx*gx + gy*gy)))
			bin := hogBin(gx, gy)
			magq := mag << hogMagQ
			cx := c >> 3
			t := 2*(c&7) + 1
			var nb, wN int32
			if t < 8 {
				nb = cx - 1
				wN = (8 - t) << 12
			} else {
				nb = cx + 1
				wN = (t - 8) << 12
			}
			wS := (1 << 16) - wN
			rowHist[cx*hogBins+bin] += int32((int64(magq) * int64(wS)) >> 16)
			if nb >= 0 && nb < p.cw {
				rowHist[nb*hogBins+bin] += int32((int64(magq) * int64(wN)) >> 16)
			}
		}
	}
	out := make([]byte, 4*p.bw*p.bh*4*hogBins)
	oi := 0
	for br := int32(0); br < p.bh; br++ {
		for bc := int32(0); bc < p.bw; bc++ {
			base := (br*p.cw + bc) * hogBins
			cells := [4]int32{base, base + hogBins, base + p.cw*hogBins, base + (p.cw+1)*hogBins}
			var e int64
			for _, cb := range cells {
				for j := int32(0); j < hogBins; j++ {
					h := int64(hist[cb+j])
					e += h * h
				}
			}
			e32 := uint32(uint64(e) >> 24)
			n := int32(fixed.ISqrt32(e32)) + 1
			for _, cb := range cells {
				for j := int32(0); j < hogBins; j++ {
					binary.LittleEndian.PutUint32(out[4*oi:], uint32(hist[cb+j]/n))
					oi++
				}
			}
		}
	}
	return out
}

// --- device code ---------------------------------------------------------

func buildHOG(t isa.Target, mode devrt.Mode, p hogParams) (*asm.Program, error) {
	b := asm.NewBuilder("hog")
	devrt.EmitCRT0(b, mode)

	histWords := p.cw * p.ch * hogBins
	b.Space("hog_hist", uint32(4*histWords), 4)

	b.Label("main")
	devrt.EmitPrologue(b)
	devrt.EmitParallel(b, "hog_zero")
	devrt.EmitParallel(b, "hog_cells")
	devrt.EmitParallel(b, "hog_blocks")
	devrt.EmitEpilogue(b)

	// ---- zero the histograms ----
	b.Label("hog_zero")
	devrt.EmitPrologue(b, isa.S0, isa.S1)
	devrt.EmitChunk(b, histWords, isa.S0, isa.S1)
	b.SUB(isa.S1, isa.S1, isa.S0) // count
	zDone := b.Uniq("hz_done")
	b.SFI(isa.SFLESI, isa.S1, 0)
	b.BF(zDone)
	b.LA(isa.A3, "hog_hist")
	b.SLLI(isa.T5, isa.S0, 2)
	b.ADD(isa.A3, isa.A3, isa.T5)
	zLoop := b.Uniq("hz_loop")
	b.Label(zLoop)
	emitStoreInc(b, t, isa.SW, isa.A3, isa.R0, 4)
	b.ADDI(isa.S1, isa.S1, -1)
	b.SFI(isa.SFGTSI, isa.S1, 0)
	b.BF(zLoop)
	b.Label(zDone)
	devrt.EmitEpilogue(b, isa.S0, isa.S1)

	// ---- gradient + cell votes ----
	// S0=cr S1=img S2=crHi S3=rowHist S4=r S5=rEnd S6=c S7=bin S8=magq
	b.Label("hog_cells")
	devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7, isa.S8)
	emitGlob(b, globCtx{base: isa.A0, in: isa.A1})
	b.MOV(isa.S1, isa.A1)
	devrt.EmitChunk(b, p.ch, isa.S0, isa.S2)
	cDone := b.Uniq("hc_done")
	b.SF(isa.SFGES, isa.S0, isa.S2)
	b.BF(cDone)
	crLoop := b.Uniq("hc_cr")
	b.Label(crLoop)
	// rowHist = hist + cr*cw*bins*4
	b.LA(isa.S3, "hog_hist")
	b.LI(isa.T5, p.cw*hogBins*4)
	b.MUL(isa.T6, isa.S0, isa.T5)
	b.ADD(isa.S3, isa.S3, isa.T6)
	// r in [max(8*cr,1), min(8*cr+8, h-1))
	b.SLLI(isa.S4, isa.S0, 3)
	rOK := b.Uniq("hc_r0")
	b.SFI(isa.SFNEI, isa.S4, 0)
	b.BF(rOK)
	b.LI(isa.S4, 1)
	b.Label(rOK)
	b.SLLI(isa.S5, isa.S0, 3)
	b.ADDI(isa.S5, isa.S5, 8)
	b.LI(isa.T5, p.h-1)
	rOK2 := b.Uniq("hc_rh")
	b.SF(isa.SFLES, isa.S5, isa.T5)
	b.BF(rOK2)
	b.MOV(isa.S5, isa.T5)
	b.Label(rOK2)
	crNext := b.Uniq("hc_crnext")
	b.SF(isa.SFGES, isa.S4, isa.S5)
	b.BF(crNext)

	rowLoop := b.Uniq("hc_row")
	b.Label(rowLoop)
	// A3 = img + r*w + 1 (pointer to p[r][c])
	b.LI(isa.T5, p.w)
	b.MUL(isa.T6, isa.S4, isa.T5)
	b.ADD(isa.A3, isa.S1, isa.T6)
	b.ADDI(isa.A3, isa.A3, 1)
	b.LI(isa.S6, 1)

	colLoop := b.Uniq("hc_col")
	b.Label(colLoop)
	// gx = p[r][c+1] - p[r][c-1]; gy = p[r+1][c] - p[r-1][c]
	b.Load(isa.LBZ, isa.T7, isa.A3, 1)
	b.Load(isa.LBZ, isa.T8, isa.A3, -1)
	b.SUB(isa.A4, isa.T7, isa.T8)
	b.Load(isa.LBZ, isa.T7, isa.A3, p.w)
	b.Load(isa.LBZ, isa.T8, isa.A3, -p.w)
	b.SUB(isa.A5, isa.T7, isa.T8)
	// mag2 into A0 (sqrt argument)
	b.MUL(isa.T7, isa.A4, isa.A4)
	b.MUL(isa.T8, isa.A5, isa.A5)
	b.ADD(isa.A0, isa.T7, isa.T8)
	// Orientation bin network -> S7. Clobbers T7-T9, A4, A5.
	b.LI(isa.S7, 0)
	flip := b.Uniq("hb_flip")
	b.SFI(isa.SFGESI, isa.A5, 0)
	b.BF(flip)
	b.SUB(isa.A4, isa.R0, isa.A4)
	b.SUB(isa.A5, isa.R0, isa.A5)
	b.Label(flip)
	b.SLLI(isa.T9, isa.A5, 13) // gy<<13
	for k := 1; k <= 4; k++ {
		hit := b.Uniq("hb_hit")
		next := b.Uniq("hb_next")
		b.SFI(isa.SFLESI, isa.A4, 0)
		b.BF(hit)
		b.LI(isa.T7, hogTan[k])
		b.MUL(isa.T7, isa.A4, isa.T7)
		b.SF(isa.SFGES, isa.T9, isa.T7)
		b.BNF(next)
		b.Label(hit)
		b.ADDI(isa.S7, isa.S7, 1)
		b.Label(next)
	}
	for k := 5; k <= 8; k++ {
		next := b.Uniq("hb_next2")
		b.SFI(isa.SFGESI, isa.A4, 0)
		b.BF(next)
		b.LI(isa.T7, hogTan[k])
		b.MUL(isa.T7, isa.A4, isa.T7)
		b.SF(isa.SFGTS, isa.T9, isa.T7)
		b.BF(next)
		b.ADDI(isa.S7, isa.S7, 1)
		b.Label(next)
	}
	// magnitude
	b.JAL("__sqrt32")
	b.SLLI(isa.S8, isa.RV, hogMagQ)
	// cx, bilinear weights
	b.SRLI(isa.T7, isa.S6, 3) // cx
	b.ANDI(isa.T8, isa.S6, 7)
	b.SLLI(isa.T8, isa.T8, 1)
	b.ADDI(isa.T8, isa.T8, 1) // t = 2*xc+1
	left := b.Uniq("hw_left")
	wjoin := b.Uniq("hw_join")
	b.SFI(isa.SFLTSI, isa.T8, 8)
	b.BF(left)
	b.ADDI(isa.A4, isa.T7, 1) // nb = cx+1
	b.ADDI(isa.T9, isa.T8, -8)
	b.SLLI(isa.T9, isa.T9, 12) // wN
	b.J(wjoin)
	b.Label(left)
	b.ADDI(isa.A4, isa.T7, -1)
	b.LI(isa.T9, 8)
	b.SUB(isa.T9, isa.T9, isa.T8)
	b.SLLI(isa.T9, isa.T9, 12)
	b.Label(wjoin)
	// wS (A5) = 65536 - wN
	b.MOVHI(isa.A1, 1)
	b.SUB(isa.A5, isa.A1, isa.T9)
	// self vote: ptr A1 = rowHist + cx*36 + bin*4
	b.SLLI(isa.A1, isa.T7, 5)
	b.SLLI(isa.T8, isa.T7, 2)
	b.ADD(isa.A1, isa.A1, isa.T8)
	b.ADD(isa.A1, isa.A1, isa.S3)
	b.SLLI(isa.T8, isa.S7, 2)
	b.ADD(isa.A1, isa.A1, isa.T8)
	acc := devrt.Acc64{T: t, Lo: isa.T5, Hi: isa.T6, Tmp: [5]isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4}}
	devrt.EmitMulFixQ(b, t, isa.T7, isa.S8, isa.A5, 16, acc)
	b.LW(isa.T8, isa.A1, 0)
	b.ADD(isa.T8, isa.T8, isa.T7)
	b.SW(isa.A1, isa.T8, 0)
	// neighbour vote if 0 <= nb < cw
	nbSkip := b.Uniq("hw_nbskip")
	b.SFI(isa.SFLTSI, isa.A4, 0)
	b.BF(nbSkip)
	b.SFI(isa.SFGESI, isa.A4, p.cw)
	b.BF(nbSkip)
	b.SLLI(isa.A1, isa.A4, 5)
	b.SLLI(isa.T8, isa.A4, 2)
	b.ADD(isa.A1, isa.A1, isa.T8)
	b.ADD(isa.A1, isa.A1, isa.S3)
	b.SLLI(isa.T8, isa.S7, 2)
	b.ADD(isa.A1, isa.A1, isa.T8)
	devrt.EmitMulFixQ(b, t, isa.T7, isa.S8, isa.T9, 16, acc)
	b.LW(isa.T8, isa.A1, 0)
	b.ADD(isa.T8, isa.T8, isa.T7)
	b.SW(isa.A1, isa.T8, 0)
	b.Label(nbSkip)
	// next column
	b.ADDI(isa.A3, isa.A3, 1)
	b.ADDI(isa.S6, isa.S6, 1)
	b.SFI(isa.SFLTSI, isa.S6, p.w-1)
	b.BF(colLoop)
	// next row
	b.ADDI(isa.S4, isa.S4, 1)
	b.SF(isa.SFLTS, isa.S4, isa.S5)
	b.BF(rowLoop)
	b.Label(crNext)
	b.ADDI(isa.S0, isa.S0, 1)
	b.SF(isa.SFLTS, isa.S0, isa.S2)
	b.BF(crLoop)
	b.Label(cDone)
	devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7, isa.S8)

	// ---- block normalization ----
	// S0=br S1=out S2=brHi S3=blockCellBase S4=bc S5/S6=acc64 S7=n S8=outPtr
	b.Label("hog_blocks")
	devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7, isa.S8)
	emitGlob(b, globCtx{base: isa.A0, out: isa.A2})
	b.MOV(isa.S1, isa.A2)
	devrt.EmitChunk(b, p.bh, isa.S0, isa.S2)
	bDone := b.Uniq("hb_done")
	b.SF(isa.SFGES, isa.S0, isa.S2)
	b.BF(bDone)
	cellOffs := [4]int32{0, hogBins * 4, p.cw * hogBins * 4, (p.cw + 1) * hogBins * 4}
	brLoop := b.Uniq("hb_br")
	b.Label(brLoop)
	// S3 = hist + br*cw*36 ; S8 = out + br*bw*36words*4
	b.LA(isa.S3, "hog_hist")
	b.LI(isa.T5, p.cw*hogBins*4)
	b.MUL(isa.T6, isa.S0, isa.T5)
	b.ADD(isa.S3, isa.S3, isa.T6)
	b.LI(isa.T5, p.bw*4*hogBins*4)
	b.MUL(isa.T6, isa.S0, isa.T5)
	b.ADD(isa.S8, isa.S1, isa.T6)
	b.LI(isa.S4, 0) // bc
	bcLoop := b.Uniq("hb_bc")
	b.Label(bcLoop)
	blockAcc := devrt.Acc64{T: t, Lo: isa.S5, Hi: isa.S6, Tmp: [5]isa.Reg{isa.T0, isa.T1, isa.T2, isa.T3, isa.T4}}
	blockAcc.Clear(b)
	// base cell ptr A5 = S3 + bc*36
	b.SLLI(isa.A5, isa.S4, 5)
	b.SLLI(isa.T5, isa.S4, 2)
	b.ADD(isa.A5, isa.A5, isa.T5)
	b.ADD(isa.A5, isa.A5, isa.S3)
	for _, off := range cellOffs {
		b.ADDI(isa.A3, isa.A5, off)
		b.LI(isa.T9, hogBins)
		devrt.EmitLoop(b, t, isa.T9, 0, 1, func(int) {
			emitLoadInc(b, t, isa.LW, isa.A4, isa.A3, 4)
			blockAcc.Mac(b, isa.A4, isa.A4)
		})
	}
	blockAcc.Read(b, isa.S5, isa.S6)
	b.SRLI(isa.T5, isa.S5, 24)
	b.SLLI(isa.T6, isa.S6, 8)
	b.OR(isa.A0, isa.T5, isa.T6)
	b.JAL("__sqrt32")
	b.ADDI(isa.S7, isa.RV, 1)
	// divide and store the 36 values
	for _, off := range cellOffs {
		b.ADDI(isa.A3, isa.A5, off)
		b.LI(isa.T9, hogBins)
		devrt.EmitLoop(b, t, isa.T9, 0, 1, func(int) {
			emitLoadInc(b, t, isa.LW, isa.A4, isa.A3, 4)
			b.DIV(isa.A4, isa.A4, isa.S7)
			emitStoreInc(b, t, isa.SW, isa.S8, isa.A4, 4)
		})
	}
	b.ADDI(isa.S4, isa.S4, 1)
	b.SFI(isa.SFLTSI, isa.S4, p.bw)
	b.BF(bcLoop)
	b.ADDI(isa.S0, isa.S0, 1)
	b.SF(isa.SFLTS, isa.S0, isa.S2)
	b.BF(brLoop)
	b.Label(bDone)
	devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7, isa.S8)

	devrt.EmitSqrt32Fn(b)

	return b.Build(asm.Layout{})
}
