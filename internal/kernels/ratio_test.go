package kernels

import (
	"testing"

	"hetsim/internal/devrt"
	"hetsim/internal/isa"
)

// TestPaperRatios checks the Fig. 4 bands at the paper's full sizes (the
// small-suite shape tests live in internal/paper): integer kernels clearly
// above the fixed-point family, hog below 1x, parallel speedups near ideal.
func TestPaperRatios(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size suite")
	}
	bands := map[string][2]float64{ // arch-vs-M4 [lo, hi]
		"matmul":         {3.0, 5.0},
		"matmul (short)": {1.8, 2.8},
		"matmul (fixed)": {1.2, 1.8},
		"strassen":       {3.0, 5.0},
		"svm (linear)":   {1.2, 1.8},
		"svm (poly)":     {1.2, 1.8},
		"svm (RBF)":      {1.2, 1.8},
		"cnn":            {1.0, 1.6},
		"cnn (approx)":   {1.4, 2.4},
		"hog":            {0.7, 1.0},
	}
	for _, k := range PaperSuite() {
		pulp1 := checkKernel(t, k, isa.PULPFull, devrt.Accel, 1, 1)
		pulp2 := checkKernel(t, k, isa.PULPFull, devrt.Accel, 2, 1)
		pulp4 := checkKernel(t, k, isa.PULPFull, devrt.Accel, 4, 1)
		m4 := checkKernel(t, k, isa.CortexM4, devrt.Host, 1, 1)
		m3 := checkKernel(t, k, isa.CortexM3, devrt.Host, 1, 1)
		plain := checkKernel(t, k, isa.PULPPlain, devrt.Host, 1, 1)
		archM4 := float64(m4.Cycles) / float64(pulp1.Cycles)
		archM3 := float64(m3.Cycles) / float64(pulp1.Cycles)
		par2 := float64(pulp1.Cycles) / float64(pulp2.Cycles)
		par4 := float64(pulp1.Cycles) / float64(pulp4.Cycles)
		t.Logf("%-16s riscops=%8d pulp1=%8d arch(m4)=%.2f arch(m3)=%.2f par2=%.2f par4=%.2f ops/cyc4=%.2f",
			k.Name, plain.Stats.Retired(), pulp1.Cycles, archM4, archM3, par2, par4,
			float64(plain.Stats.Retired())/float64(pulp4.Cycles))
		if b, ok := bands[k.Name]; ok {
			if archM4 < b[0] || archM4 > b[1] {
				t.Errorf("%s: arch speedup vs M4 = %.2f outside band [%v, %v]",
					k.Name, archM4, b[0], b[1])
			}
		}
		if archM3 < archM4*0.95 {
			t.Errorf("%s: M3 should not beat M4 (%.2f vs %.2f)", k.Name, archM3, archM4)
		}
		if par2 < 1.8 || par2 > 2.05 || par4 < 3.3 || par4 > 4.05 {
			t.Errorf("%s: parallel speedups out of band: x2=%.2f x4=%.2f", k.Name, par2, par4)
		}
	}
}
