package kernels

import (
	"hetsim/internal/asm"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
)

// This file holds the target-aware emitter idioms shared by the kernels:
// streaming loads/stores (post-increment where the target has it), clamps
// (min/max where available), and the three dot-product inner loops that
// dominate matmul/strassen/svm/cnn.

// emitLoadInc emits rd = mem[ptr]; ptr += step, using post-increment
// addressing when the target supports it.
func emitLoadInc(b *asm.Builder, t isa.Target, op isa.Op, rd, ptr isa.Reg, step int32) {
	if t.Feat.PostIncr {
		b.Load(postIncLoad(op), rd, ptr, step)
		return
	}
	b.Load(op, rd, ptr, 0)
	b.ADDI(ptr, ptr, step)
}

// emitStoreInc emits mem[ptr] = src; ptr += step.
func emitStoreInc(b *asm.Builder, t isa.Target, op isa.Op, ptr, src isa.Reg, step int32) {
	if t.Feat.PostIncr {
		b.Store(postIncStore(op), ptr, src, step)
		return
	}
	b.Store(op, ptr, src, 0)
	b.ADDI(ptr, ptr, step)
}

func postIncLoad(op isa.Op) isa.Op {
	switch op {
	case isa.LBZ:
		return isa.LBZP
	case isa.LBS:
		return isa.LBSP
	case isa.LHZ:
		return isa.LHZP
	case isa.LHS:
		return isa.LHSP
	case isa.LW:
		return isa.LWP
	}
	return op
}

func postIncStore(op isa.Op) isa.Op {
	switch op {
	case isa.SB:
		return isa.SBP
	case isa.SH:
		return isa.SHP
	case isa.SW:
		return isa.SWP
	}
	return op
}

// emitClamp saturates reg to [lo, hi] using single-cycle MIN/MAX on OR10N
// or the compare-and-branch idiom on M profiles. tmp is clobbered.
func emitClamp(b *asm.Builder, t isa.Target, reg, tmp isa.Reg, lo, hi int32) {
	if t.Feat.MinMax {
		b.LI(tmp, hi)
		b.MIN(reg, reg, tmp)
		b.LI(tmp, lo)
		b.MAX(reg, reg, tmp)
		return
	}
	// Bounds may exceed the 14-bit immediate range: compare via a register.
	b.LI(tmp, hi)
	okHi := b.Uniq("cl_hi")
	b.SF(isa.SFLES, reg, tmp)
	b.BF(okHi)
	b.MOV(reg, tmp)
	b.Label(okHi)
	b.LI(tmp, lo)
	okLo := b.Uniq("cl_lo")
	b.SF(isa.SFGES, reg, tmp)
	b.BF(okLo)
	b.MOV(reg, tmp)
	b.Label(okLo)
}

// dotRegs is the scratch bundle of the dot-product emitters. cnt, x, y are
// clobbered; acc accumulates (caller zeroes it).
type dotRegs struct {
	acc  isa.Reg
	aPtr isa.Reg // advanced by the element count times element size
	bPtr isa.Reg
	cnt  isa.Reg
	x, y isa.Reg
}

// emitDotChar emits acc += sum_{k<n} a[k]*b[k] over signed bytes.
// On SIMD targets this is the 4-way dotp4b stream (n must be a multiple of
// 4); with a register-register MAC it is the byte-stream MAC loop
// (unrolled where there are no hardware loops); otherwise mul+add.
func emitDotChar(b *asm.Builder, t isa.Target, r dotRegs, n int32, loopIdx int) {
	switch {
	case t.Feat.SIMD:
		// Vectorized form as the era's auto-vectorizer emits it: plain
		// word loads with explicit pointer increments. (Hand-written
		// assembly would fuse the increments into post-increment loads;
		// the paper's portable-C methodology forbids that, and its 2-2.5x
		// integer speedups match this conservative code shape.)
		b.LI(r.cnt, n/4)
		devrt.EmitLoop(b, t, r.cnt, loopIdx, 1, func(int) {
			b.LW(r.x, r.aPtr, 0)
			b.LW(r.y, r.bPtr, 0)
			b.DOTP4B(r.acc, r.x, r.y)
			b.ADDI(r.aPtr, r.aPtr, 4)
			b.ADDI(r.bPtr, r.bPtr, 4)
		})
	case t.Feat.MacRR:
		b.LI(r.cnt, n)
		devrt.EmitLoop(b, t, r.cnt, loopIdx, 4, func(int) {
			emitLoadInc(b, t, isa.LBS, r.x, r.aPtr, 1)
			emitLoadInc(b, t, isa.LBS, r.y, r.bPtr, 1)
			b.MAC(r.acc, r.x, r.y)
		})
	default:
		b.LI(r.cnt, n)
		devrt.EmitLoop(b, t, r.cnt, loopIdx, 1, func(int) {
			emitLoadInc(b, t, isa.LBS, r.x, r.aPtr, 1)
			emitLoadInc(b, t, isa.LBS, r.y, r.bPtr, 1)
			b.MUL(r.x, r.x, r.y)
			b.ADD(r.acc, r.acc, r.x)
		})
	}
}

// emitDotShort emits acc += sum_{k<n} a[k]*b[k] over signed halfwords
// (2-way dotp2h on SIMD targets; n must be even there).
func emitDotShort(b *asm.Builder, t isa.Target, r dotRegs, n int32, loopIdx int) {
	switch {
	case t.Feat.SIMD:
		// Same conservative auto-vectorized shape as emitDotChar.
		b.LI(r.cnt, n/2)
		devrt.EmitLoop(b, t, r.cnt, loopIdx, 1, func(int) {
			b.LW(r.x, r.aPtr, 0)
			b.LW(r.y, r.bPtr, 0)
			b.DOTP2H(r.acc, r.x, r.y)
			b.ADDI(r.aPtr, r.aPtr, 4)
			b.ADDI(r.bPtr, r.bPtr, 4)
		})
	case t.Feat.MacRR:
		b.LI(r.cnt, n)
		devrt.EmitLoop(b, t, r.cnt, loopIdx, 4, func(int) {
			emitLoadInc(b, t, isa.LHS, r.x, r.aPtr, 2)
			emitLoadInc(b, t, isa.LHS, r.y, r.bPtr, 2)
			b.MAC(r.acc, r.x, r.y)
		})
	default:
		b.LI(r.cnt, n)
		devrt.EmitLoop(b, t, r.cnt, loopIdx, 1, func(int) {
			emitLoadInc(b, t, isa.LHS, r.x, r.aPtr, 2)
			emitLoadInc(b, t, isa.LHS, r.y, r.bPtr, 2)
			b.MUL(r.x, r.x, r.y)
			b.ADD(r.acc, r.acc, r.x)
		})
	}
}

// emitDotFixed emits acc += sum_{k<n} (a[k]*b[k] >> q) over Q-format
// halfwords. The per-product shift keeps the 32-bit accumulator in range —
// and it is exactly why fixed-point kernels cannot use the MAC or the SIMD
// dot product ("no multiply-shift-add operation", Section IV-B): every
// target runs the same mul/shift/add stream, differing only in load and
// loop costs.
func emitDotFixed(b *asm.Builder, t isa.Target, r dotRegs, n int32, q int32, loopIdx int) {
	b.LI(r.cnt, n)
	unroll := 1
	if !t.Feat.HWLoop {
		unroll = 4
	}
	devrt.EmitLoop(b, t, r.cnt, loopIdx, unroll, func(int) {
		emitLoadInc(b, t, isa.LHS, r.x, r.aPtr, 2)
		emitLoadInc(b, t, isa.LHS, r.y, r.bPtr, 2)
		b.MUL(r.x, r.x, r.y)
		b.SRAI(r.x, r.x, q)
		b.ADD(r.acc, r.acc, r.x)
	})
}

// emitSqDiffFixed emits acc += sum_{k<n} ((a[k]-b[k])^2 >> q), the squared
// Euclidean distance loop of the RBF kernel.
func emitSqDiffFixed(b *asm.Builder, t isa.Target, r dotRegs, n int32, q int32, loopIdx int) {
	b.LI(r.cnt, n)
	unroll := 1
	if !t.Feat.HWLoop {
		unroll = 4
	}
	devrt.EmitLoop(b, t, r.cnt, loopIdx, unroll, func(int) {
		emitLoadInc(b, t, isa.LHS, r.x, r.aPtr, 2)
		emitLoadInc(b, t, isa.LHS, r.y, r.bPtr, 2)
		b.SUB(r.x, r.x, r.y)
		b.MUL(r.x, r.x, r.x)
		b.SRAI(r.x, r.x, q)
		b.ADD(r.acc, r.acc, r.x)
	})
}

// emitGlobLoads loads the standard kernel context: base points at __glob
// afterwards, and each requested field is loaded into its register.
type globCtx struct {
	base    isa.Reg
	in      isa.Reg // 0 = skip
	out     isa.Reg
	threads isa.Reg
}

func emitGlob(b *asm.Builder, g globCtx) {
	b.LA(g.base, "__glob")
	if g.in != 0 {
		b.LW(g.in, g.base, devrt.GlobIn)
	}
	if g.out != 0 {
		b.LW(g.out, g.base, devrt.GlobOut)
	}
	if g.threads != 0 {
		b.LW(g.threads, g.base, devrt.GlobThreads)
	}
}

// emitLUTEval emits the piecewise-linear LUT evaluation matching
// fixed.LUT.Eval: idx = x>>logStep (clamped to [0, span)), then linear
// interpolation between knots. x is clobbered and receives the result.
// tblPtr must hold the table base address.
func emitLUTEval(b *asm.Builder, t isa.Target, x, tblPtr, t1, t2, t3 isa.Reg, span int32, logStep int32) {
	// Clamp below at 0.
	pos := b.Uniq("lut_pos")
	b.SFI(isa.SFGESI, x, 0)
	b.BF(pos)
	b.LI(x, 0)
	b.Label(pos)
	// Clamp above: x >= span -> last entry.
	inr := b.Uniq("lut_in")
	done := b.Uniq("lut_done")
	b.LI(t1, span)
	b.SF(isa.SFLTS, x, t1)
	b.BF(inr)
	b.LI(t1, span>>logStep)
	b.SLLI(t1, t1, 2)
	b.ADD(t1, t1, tblPtr)
	b.LW(x, t1, 0)
	b.J(done)
	b.Label(inr)
	// idx = x >> logStep; frac = x & (step-1)
	b.SRLI(t1, x, logStep)
	b.SLLI(t2, t1, logStep)
	b.SUB(t2, x, t2) // frac
	b.SLLI(t1, t1, 2)
	b.ADD(t1, t1, tblPtr)
	b.LW(t3, t1, 0) // v0
	b.LW(t1, t1, 4) // v1
	b.SUB(t1, t1, t3)
	b.MUL(t1, t1, t2)
	b.SRAI(t1, t1, logStep)
	b.ADD(x, t3, t1)
	b.Label(done)
}
