package kernels

import (
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/devrt"
	"hetsim/internal/fixed"
	"hetsim/internal/isa"
)

// Strassen's fast matrix multiplication on char data (Table I row 4): one
// level of the recursion, seven half-size products plus the quadrant
// add/sub phases. Inputs are bounded to +-63 so the operand sums still fit
// in int8, which lets the preparation phases use the 4-way SIMD byte
// adds and the products use the 4-way dot product — making strassen the
// most accelerator-friendly benchmark of the suite (it tops Fig. 5a).
//
// Input layout is A followed by B-transposed, like matmul. With BT stored,
// the B-side quadrant (i,j) of the textbook formulas becomes BT quadrant
// (j,i), and every product is a plain row-by-row dot.

type strParams struct {
	n, n2 int32
	shift int32
}

type quadOp struct {
	q1, q2 int32 // quadrant index 0..3 (row-major); q2 = -1 for copy
	sub    bool
}

type strProduct struct {
	a quadOp // on A
	b quadOp // on BT (already transposed indices)
}

// quadrant index helpers: 0=11, 1=12, 2=21, 3=22 (row-major).
const (
	q11 = 0
	q12 = 1
	q21 = 2
	q22 = 3
)

// strProducts lists M1..M7. B-side quadrants are given in BT coordinates:
// textbook B(i,j) appears here as BT quadrant (j,i).
var strProducts = [7]strProduct{
	{a: quadOp{q11, q22, false}, b: quadOp{q11, q22, false}}, // M1=(A11+A22)(B11+B22)
	{a: quadOp{q21, q22, false}, b: quadOp{q11, -1, false}},  // M2=(A21+A22)B11
	{a: quadOp{q11, -1, false}, b: quadOp{q21, q22, true}},   // M3=A11(B12-B22) -> BT21-BT22
	{a: quadOp{q22, -1, false}, b: quadOp{q12, q11, true}},   // M4=A22(B21-B11) -> BT12-BT11
	{a: quadOp{q11, q12, false}, b: quadOp{q22, -1, false}},  // M5=(A11+A12)B22
	{a: quadOp{q21, q11, true}, b: quadOp{q11, q21, false}},  // M6=(A21-A11)(B11+B12) -> BT11+BT21
	{a: quadOp{q12, q22, true}, b: quadOp{q12, q22, false}},  // M7=(A12-A22)(B21+B22) -> BT12+BT22
}

// Strassen returns the one-level Strassen instance for an n x n char
// matrix (n divisible by 8).
func Strassen(n int) *Instance {
	p := strParams{n: int32(n), n2: int32(n) / 2, shift: 8}
	if n%8 != 0 || n < 8 {
		panic(fmt.Sprintf("kernels: strassen size %d must be a multiple of 8", n))
	}
	return &Instance{
		Name:       "strassen",
		Field:      "linear algebra",
		Desc:       "Strassen algorithm for fast matrix multiplication",
		ParamDesc:  fmt.Sprintf("%dx%d", n, n),
		MaxThreads: 4,
		outLen:     uint32(p.n * p.n),
		args:       [4]uint32{uint32(p.n), uint32(p.shift)},
		build: func(t isa.Target, mode devrt.Mode) (*asm.Program, error) {
			return buildStrassen(t, mode, p)
		},
		genInput: func(seed uint64) []byte { return strInput(p, seed) },
		golden:   func(in []byte) []byte { return strGolden(p, in) },
	}
}

func strInput(p strParams, seed uint64) []byte {
	rng := newRNG(seed ^ 0x737472) // "str"
	out := make([]byte, 2*p.n*p.n)
	for i := range out {
		out[i] = byte(rng.i8(63))
	}
	return out
}

func strGolden(p strParams, in []byte) []byte {
	n, n2 := int(p.n), int(p.n2)
	a := in[:n*n]
	bt := in[n*n:]
	quad := func(m []byte, q int32) func(r, c int) int32 {
		qr, qc := int(q)/2, int(q)%2
		return func(r, c int) int32 {
			return int32(int8(m[(qr*n2+r)*n+qc*n2+c]))
		}
	}
	prep := func(m []byte, op quadOp) []int32 {
		out := make([]int32, n2*n2)
		g1 := quad(m, op.q1)
		var g2 func(r, c int) int32
		if op.q2 >= 0 {
			g2 = quad(m, op.q2)
		}
		for r := 0; r < n2; r++ {
			for c := 0; c < n2; c++ {
				v := g1(r, c)
				if g2 != nil {
					if op.sub {
						v -= g2(r, c)
					} else {
						v += g2(r, c)
					}
				}
				// Device stores the operand as int8 (wrapping like add4b);
				// inputs are bounded so no wrap occurs, but mirror anyway.
				out[r*n2+c] = int32(int8(v))
			}
		}
		return out
	}
	var m [7][]int32
	for i, pr := range strProducts {
		ta := prep(a, pr.a)
		tb := prep(bt, pr.b)
		mi := make([]int32, n2*n2)
		for r := 0; r < n2; r++ {
			for c := 0; c < n2; c++ {
				var sum int32
				for k := 0; k < n2; k++ {
					sum += ta[r*n2+k] * tb[c*n2+k]
				}
				mi[r*n2+c] = sum
			}
		}
		m[i] = mi
	}
	out := make([]byte, n*n)
	store := func(q int32, r, c int, v int32) {
		qr, qc := int(q)/2, int(q)%2
		out[(qr*n2+r)*n+qc*n2+c] = byte(int8(fixed.Clamp8(v >> uint(p.shift))))
	}
	for r := 0; r < n2; r++ {
		for c := 0; c < n2; c++ {
			i := r*n2 + c
			store(q11, r, c, m[0][i]+m[3][i]-m[4][i]+m[6][i])
			store(q12, r, c, m[2][i]+m[4][i])
			store(q21, r, c, m[1][i]+m[3][i])
			store(q22, r, c, m[0][i]-m[1][i]+m[2][i]+m[5][i])
		}
	}
	return out
}

// --- device code -----------------------------------------------------------

func buildStrassen(t isa.Target, mode devrt.Mode, p strParams) (*asm.Program, error) {
	b := asm.NewBuilder("strassen")
	devrt.EmitCRT0(b, mode)

	n, n2 := p.n, p.n2
	b.Space("str_ta", uint32(n2*n2), 4)
	b.Space("str_tb", uint32(n2*n2), 4)
	b.Space("str_m", uint32(7*n2*n2*4), 4)
	b.Space("str_args", 4, 4) // dstM pointer for the shared product body

	b.Label("main")
	devrt.EmitPrologue(b, isa.S0, isa.S1)
	for i := 0; i < 7; i++ {
		devrt.EmitParallel(b, fmt.Sprintf("str_prep%d", i))
		// Publish M_i as the product destination, then run the product.
		b.LA(isa.T5, "str_args")
		b.LA(isa.T6, "str_m")
		b.LI(isa.T7, int32(i)*n2*n2*4)
		b.ADD(isa.T6, isa.T6, isa.T7)
		b.SW(isa.T5, isa.T6, 0)
		devrt.EmitParallel(b, "str_mm")
	}
	devrt.EmitParallel(b, "str_combine")
	devrt.EmitEpilogue(b, isa.S0, isa.S1)

	// quadBase emits: dst = srcBase + (qr*n2*n + qc*n2) + r*n for quadrant q
	// and row register rReg (srcBase and rReg preserved).
	quadBase := func(dst, srcBase, rReg isa.Reg, q int32) {
		qr, qc := q/2, q%2
		b.LI(isa.T8, n)
		b.MUL(dst, rReg, isa.T8)
		b.ADD(dst, dst, srcBase)
		if off := qr*n2*n + qc*n2; off != 0 {
			b.LI(isa.T8, off)
			b.ADD(dst, dst, isa.T8)
		}
	}

	// emitPrepSide emits the row loop filling dst (contiguous n2 bytes per
	// row) from one or two quadrant rows of src. Row index in S4.
	emitPrepSide := func(dstSym isa.Reg, srcBase isa.Reg, op quadOp) {
		quadBase(isa.A3, srcBase, isa.S4, op.q1)
		if op.q2 >= 0 {
			quadBase(isa.A4, srcBase, isa.S4, op.q2)
		}
		if op.q2 < 0 {
			// Copy one quadrant row, word-wise (rows are 4-aligned).
			b.LI(isa.T5, n2/4)
			devrt.EmitLoop(b, t, isa.T5, 0, 1, func(int) {
				emitLoadInc(b, t, isa.LW, isa.T6, isa.A3, 4)
				emitStoreInc(b, t, isa.SW, dstSym, isa.T6, 4)
			})
			return
		}
		if t.Feat.SIMD {
			b.LI(isa.T5, n2/4)
			devrt.EmitLoop(b, t, isa.T5, 0, 1, func(int) {
				emitLoadInc(b, t, isa.LW, isa.T6, isa.A3, 4)
				emitLoadInc(b, t, isa.LW, isa.T7, isa.A4, 4)
				if op.sub {
					b.SUB4B(isa.T6, isa.T6, isa.T7)
				} else {
					b.ADD4B(isa.T6, isa.T6, isa.T7)
				}
				emitStoreInc(b, t, isa.SW, dstSym, isa.T6, 4)
			})
			return
		}
		b.LI(isa.T5, n2)
		unroll := 1
		if !t.Feat.HWLoop {
			unroll = 4
		}
		devrt.EmitLoop(b, t, isa.T5, 0, unroll, func(int) {
			emitLoadInc(b, t, isa.LBS, isa.T6, isa.A3, 1)
			emitLoadInc(b, t, isa.LBS, isa.T7, isa.A4, 1)
			if op.sub {
				b.SUB(isa.T6, isa.T6, isa.T7)
			} else {
				b.ADD(isa.T6, isa.T6, isa.T7)
			}
			emitStoreInc(b, t, isa.SB, dstSym, isa.T6, 1)
		})
	}

	// The 7 preparation bodies: rows of TA/TB chunked across the team.
	for i, pr := range strProducts {
		b.Label(fmt.Sprintf("str_prep%d", i))
		devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5)
		emitGlob(b, globCtx{base: isa.A0, in: isa.A1})
		b.MOV(isa.S0, isa.A1) // A base
		b.LI(isa.T5, n*n)
		b.ADD(isa.S1, isa.A1, isa.T5) // BT base
		devrt.EmitChunk(b, n2, isa.S4, isa.S5)
		done := b.Uniq("sp_done")
		b.SF(isa.SFGES, isa.S4, isa.S5)
		b.BF(done)
		// S2 = TA + lo*n2 ; S3 = TB + lo*n2 (contiguous row pitch)
		b.LA(isa.S2, "str_ta")
		b.LA(isa.S3, "str_tb")
		b.LI(isa.T5, n2)
		b.MUL(isa.T6, isa.S4, isa.T5)
		b.ADD(isa.S2, isa.S2, isa.T6)
		b.ADD(isa.S3, isa.S3, isa.T6)
		row := b.Uniq("sp_row")
		b.Label(row)
		emitPrepSide(isa.S2, isa.S0, pr.a)
		emitPrepSide(isa.S3, isa.S1, pr.b)
		b.ADDI(isa.S4, isa.S4, 1)
		b.SF(isa.SFLTS, isa.S4, isa.S5)
		b.BF(row)
		b.Label(done)
		devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5)
	}

	// Shared product body: M = TA x TB^T (char dot products, int32 out).
	b.Label("str_mm")
	devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2, isa.S3)
	devrt.EmitChunk(b, n2, isa.S3, isa.T4)
	b.SUB(isa.S3, isa.T4, isa.S3)
	b.SUB(isa.T5, isa.T4, isa.S3) // lo
	b.LA(isa.S0, "str_ta")
	b.LI(isa.T6, n2)
	b.MUL(isa.T7, isa.T5, isa.T6)
	b.ADD(isa.S0, isa.S0, isa.T7) // TA row
	b.LA(isa.S1, "str_tb")
	b.LA(isa.S2, "str_args")
	b.LW(isa.S2, isa.S2, 0) // M base
	b.SLLI(isa.T7, isa.T7, 2)
	b.ADD(isa.S2, isa.S2, isa.T7) // M write ptr (int32 pitch)
	mmDone := b.Uniq("smm_done")
	b.SFI(isa.SFLESI, isa.S3, 0)
	b.BF(mmDone)
	mmRow := b.Uniq("smm_row")
	b.Label(mmRow)
	b.MOV(isa.A4, isa.S1)
	b.LI(isa.A5, n2)
	devrt.EmitLoop(b, t, isa.A5, 1, 1, func(int) {
		b.MOV(isa.A3, isa.S0)
		b.LI(isa.T6, 0)
		emitDotChar(b, t, dotRegs{acc: isa.T6, aPtr: isa.A3, bPtr: isa.A4, cnt: isa.T7, x: isa.T8, y: isa.T9}, n2, 0)
		emitStoreInc(b, t, isa.SW, isa.S2, isa.T6, 4)
	})
	b.ADDI(isa.S0, isa.S0, n2)
	b.ADDI(isa.S3, isa.S3, -1)
	b.SFI(isa.SFGTSI, isa.S3, 0)
	b.BF(mmRow)
	b.Label(mmDone)
	devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2, isa.S3)

	// Combine body: rows of the half-size index space chunked; each row
	// produces one row of each C quadrant.
	type combo struct {
		quad  int32
		terms []int32 // M indices
		signs []int32
	}
	combos := []combo{
		{q11, []int32{0, 3, 4, 6}, []int32{1, 1, -1, 1}},
		{q12, []int32{2, 4}, []int32{1, 1}},
		{q21, []int32{1, 3}, []int32{1, 1}},
		{q22, []int32{0, 1, 2, 5}, []int32{1, -1, 1, 1}},
	}
	b.Label("str_combine")
	devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5)
	emitGlob(b, globCtx{base: isa.A0, out: isa.A2})
	b.MOV(isa.S0, isa.A2) // C base
	b.LA(isa.S1, "str_m")
	devrt.EmitChunk(b, n2, isa.S4, isa.S5)
	cbDone := b.Uniq("scb_done")
	b.SF(isa.SFGES, isa.S4, isa.S5)
	b.BF(cbDone)
	cbRow := b.Uniq("scb_row")
	b.Label(cbRow)
	for _, cb := range combos {
		// Term pointers: A3..A5, S2 as needed (max 4 terms).
		ptrRegs := []isa.Reg{isa.A3, isa.A4, isa.A5, isa.S2}
		for ti, mi := range cb.terms {
			b.LI(isa.T5, mi*n2*n2*4)
			b.ADD(ptrRegs[ti], isa.S1, isa.T5)
			b.LI(isa.T5, n2*4)
			b.MUL(isa.T6, isa.S4, isa.T5)
			b.ADD(ptrRegs[ti], ptrRegs[ti], isa.T6)
		}
		// Output pointer S3 = C + (qr*n2+r)*n + qc*n2
		quadBase(isa.S3, isa.S0, isa.S4, cb.quad)
		b.LI(isa.T5, n2)
		devrt.EmitLoop(b, t, isa.T5, 1, 1, func(int) {
			emitLoadInc(b, t, isa.LW, isa.T6, ptrRegs[0], 4)
			for ti := 1; ti < len(cb.terms); ti++ {
				emitLoadInc(b, t, isa.LW, isa.T7, ptrRegs[ti], 4)
				if cb.signs[ti] < 0 {
					b.SUB(isa.T6, isa.T6, isa.T7)
				} else {
					b.ADD(isa.T6, isa.T6, isa.T7)
				}
			}
			b.SRAI(isa.T6, isa.T6, p.shift)
			emitClamp(b, t, isa.T6, isa.T7, -128, 127)
			emitStoreInc(b, t, isa.SB, isa.S3, isa.T6, 1)
		})
	}
	b.ADDI(isa.S4, isa.S4, 1)
	b.SF(isa.SFLTS, isa.S4, isa.S5)
	b.BF(cbRow)
	b.Label(cbDone)
	devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5)

	return b.Build(asm.Layout{})
}
