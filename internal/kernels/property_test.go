package kernels

import (
	"bytes"
	"testing"

	"hetsim/internal/asm"
	"hetsim/internal/cluster"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
	"hetsim/internal/loader"
)

// Cross-cutting properties every kernel in the suite must satisfy.

func TestSuiteSecondSeedGolden(t *testing.T) {
	// The golden equivalence must hold for more than the default seed: run
	// the full small suite against a second input set on the accelerator.
	for _, k := range SmallSuite() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			checkKernel(t, k, isa.PULPFull, devrt.Accel, 4, 0xBEEF)
		})
	}
}

func TestSuiteBinaryDeterminism(t *testing.T) {
	// Building the same kernel twice must produce identical images: the
	// EXPERIMENTS.md binary sizes and the SPI byte streams are stable.
	for _, k := range SmallSuite() {
		p1, err := k.Build(isa.PULPFull, devrt.Accel)
		if err != nil {
			t.Fatal(err)
		}
		p2, err := k.Build(isa.PULPFull, devrt.Accel)
		if err != nil {
			t.Fatal(err)
		}
		i1, err := p1.Image()
		if err != nil {
			t.Fatal(err)
		}
		i2, err := p2.Image()
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(i1, i2) {
			t.Errorf("%s: binary image not deterministic", k.Name)
		}
	}
}

func TestSuiteTargetIsolation(t *testing.T) {
	// Every kernel must build for every target without feature leaks, and
	// the four builds must genuinely differ where features matter.
	for _, k := range SmallSuite() {
		var sizes []int
		for _, tgt := range []isa.Target{isa.PULPFull, isa.PULPPlain, isa.CortexM3, isa.CortexM4} {
			p, err := k.Build(tgt, devrt.Host)
			if err != nil {
				t.Fatalf("%s/%s: %v", k.Name, tgt.Name, err)
			}
			if err := p.Validate(tgt); err != nil {
				t.Fatalf("%s/%s: feature leak: %v", k.Name, tgt.Name, err)
			}
			sizes = append(sizes, len(p.Text))
		}
		// The plain-RISC build must not be smaller than the full build
		// (it replaces every extension with longer sequences).
		if sizes[1] < sizes[0] {
			t.Errorf("%s: plain build (%d) smaller than full build (%d)",
				k.Name, sizes[1], sizes[0])
		}
	}
}

func TestSuiteGoldenLengthMatchesOutLen(t *testing.T) {
	for _, k := range SmallSuite() {
		in := k.Input(1)
		if got := len(k.Golden(in)); got != int(k.OutLen()) {
			t.Errorf("%s: golden length %d, OutLen %d", k.Name, got, k.OutLen())
		}
	}
}

func TestSuiteTableOneMetadata(t *testing.T) {
	fields := map[string]bool{"linear algebra": true, "learning / vision": true, "vision": true}
	for _, k := range PaperSuite() {
		if !fields[k.Field] {
			t.Errorf("%s: unexpected field %q", k.Name, k.Field)
		}
		if k.Desc == "" || k.ParamDesc == "" || k.MaxThreads < 1 {
			t.Errorf("%s: incomplete metadata", k.Name)
		}
	}
}

// The accelerator result must be independent of the team size — a strong
// check that chunking covers the index space exactly once for any split.
func TestSuiteThreadCountInvariance(t *testing.T) {
	for _, k := range SmallSuite() {
		k := k
		t.Run(k.Name, func(t *testing.T) {
			t.Parallel()
			in := k.Input(3)
			want := k.Golden(in)
			for threads := uint32(1); threads <= 4; threads++ {
				prog, err := k.Build(isa.PULPFull, devrt.Accel)
				if err != nil {
					t.Fatal(err)
				}
				res := runOnce(t, prog, k, in, threads)
				if !bytes.Equal(res, want) {
					t.Fatalf("threads=%d: output differs", threads)
				}
			}
		})
	}
}

// runOnce is a light helper for invariance checks: run the pre-built
// program once on the accelerator with the given team size.
func runOnce(t *testing.T, prog *asm.Program, k *Instance, in []byte, threads uint32) []byte {
	t.Helper()
	cfg := cluster.PULPConfig()
	job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Threads: threads, Args: k.Args()}
	res, err := cluster.RunJob(cfg, devrt.Accel, job, 2_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	return res.Out
}

// TestKernelAsmSourceRoundtrip reassembles a real kernel's generated
// source and checks the text reproduces exactly — the assembler, the
// disassembler and the code generators agree end-to-end.
func TestKernelAsmSourceRoundtrip(t *testing.T) {
	for _, k := range []*Instance{MatMulChar(16), FIR(64, 16)} {
		p1, err := k.Build(isa.PULPFull, devrt.Accel)
		if err != nil {
			t.Fatal(err)
		}
		src := p1.AsmSource()
		p2, err := asm.Assemble(k.Name, src, asm.Layout{})
		if err != nil {
			t.Fatalf("%s: reassembly failed: %v", k.Name, err)
		}
		if len(p1.Text) != len(p2.Text) {
			t.Fatalf("%s: text %d vs %d instructions", k.Name, len(p1.Text), len(p2.Text))
		}
		for i := range p1.Text {
			if p1.Text[i] != p2.Text[i] {
				t.Fatalf("%s: instruction %d differs: %v vs %v", k.Name, i, p1.Text[i], p2.Text[i])
			}
		}
		if !bytes.Equal(p1.Data, p2.Data) {
			t.Fatalf("%s: data image differs", k.Name)
		}
	}
}
