package kernels

import (
	"sync"
	"testing"

	"hetsim/internal/cpu"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
)

// TestCompiledSharedOnce pins the per-process memo contract: eight
// goroutines racing for the same (image, target) pair trigger exactly one
// block compilation and all receive the same *cpu.Compiled, while a
// different target of the same image compiles separately. This is the
// property that keeps a -j8 sweep from re-predecoding every job.
func TestCompiledSharedOnce(t *testing.T) {
	k := MatMulChar(16)
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatalf("build: %v", err)
	}

	before := cpu.BlockCompiles.Load()
	comps := make([]*cpu.Compiled, 8)
	var wg sync.WaitGroup
	for i := range comps {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c, err := Compiled(prog, isa.PULPFull)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			comps[i] = c
		}(i)
	}
	wg.Wait()
	if got := cpu.BlockCompiles.Load() - before; got != 1 {
		t.Errorf("8 concurrent Compiled calls ran %d compilations, want 1", got)
	}
	for i, c := range comps {
		if c == nil || c != comps[0] {
			t.Fatalf("goroutine %d got a different Compiled pointer", i)
		}
	}

	// A different target spec must not alias: timing/feature ablations
	// change predecode metadata and block spans.
	other, err := Compiled(prog, isa.CortexM4)
	if err != nil {
		t.Fatalf("m4 compile: %v", err)
	}
	if other == comps[0] {
		t.Errorf("PULPFull and CortexM4 compilations aliased one cache entry")
	}
	if got := cpu.BlockCompiles.Load() - before; got != 2 {
		t.Errorf("second target ran %d total compilations, want 2", got)
	}
}
