package kernels

import (
	"bytes"
	"testing"

	"hetsim/internal/cluster"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
	"hetsim/internal/loader"
)

// checkKernel builds the kernel for the target, runs it on the matching
// cluster configuration and compares the output buffer with the golden
// model byte-for-byte.
func checkKernel(t *testing.T, k *Instance, tgt isa.Target, mode devrt.Mode, threads uint32, seed uint64) *cluster.JobResult {
	t.Helper()
	prog, err := k.Build(tgt, mode)
	if err != nil {
		t.Fatalf("%s/%s: %v", k.Name, tgt.Name, err)
	}
	var cfg cluster.Config
	if mode == devrt.Accel {
		cfg = cluster.PULPConfig()
		cfg.Target = tgt
	} else {
		cfg = cluster.MCUConfig(tgt)
	}
	in := k.Input(seed)
	job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Threads: threads, Args: k.Args()}
	res, err := cluster.RunJob(cfg, mode, job, 2_000_000_000)
	if err != nil {
		t.Fatalf("%s/%s/%s/t%d: %v", k.Name, tgt.Name, mode, threads, err)
	}
	want := k.Golden(in)
	if len(want) != len(res.Out) {
		t.Fatalf("%s: golden length %d vs output length %d", k.Name, len(want), len(res.Out))
	}
	if !bytes.Equal(want, res.Out) {
		idx := -1
		for i := range want {
			if want[i] != res.Out[i] {
				idx = i
				break
			}
		}
		t.Fatalf("%s/%s/%s/t%d: output mismatch at byte %d: got %#x want %#x",
			k.Name, tgt.Name, mode, threads, idx, res.Out[idx], want[idx])
	}
	return res
}

// matrix of (target, mode, threads) every kernel must pass.
type runCfg struct {
	tgt     isa.Target
	mode    devrt.Mode
	threads uint32
}

func allConfigs() []runCfg {
	return []runCfg{
		{isa.PULPFull, devrt.Accel, 4},
		{isa.PULPFull, devrt.Accel, 3},
		{isa.PULPFull, devrt.Accel, 2},
		{isa.PULPFull, devrt.Accel, 1},
		{isa.CortexM4, devrt.Host, 1},
		{isa.CortexM3, devrt.Host, 1},
		{isa.PULPPlain, devrt.Host, 1},
	}
}

func testKernelAllTargets(t *testing.T, k *Instance) {
	t.Helper()
	for _, c := range allConfigs() {
		c := c
		t.Run(c.tgt.Name+"/"+c.mode.String()+"/"+string(rune('0'+c.threads)), func(t *testing.T) {
			checkKernel(t, k, c.tgt, c.mode, c.threads, 1)
		})
	}
}

func TestMatMulCharGolden(t *testing.T)  { testKernelAllTargets(t, MatMulChar(16)) }
func TestMatMulShortGolden(t *testing.T) { testKernelAllTargets(t, MatMulShort(16)) }
func TestMatMulFixedGolden(t *testing.T) { testKernelAllTargets(t, MatMulFixed(16)) }

// Different seeds must produce different inputs but stable outputs.
func TestInputDeterminism(t *testing.T) {
	k := MatMulChar(16)
	a := k.Input(1)
	b := k.Input(1)
	c := k.Input(2)
	if !bytes.Equal(a, b) {
		t.Fatal("same seed must give identical input")
	}
	if bytes.Equal(a, c) {
		t.Fatal("different seeds should differ")
	}
}

// The OR10N build must be architecturally faster than the M4 build on the
// integer matmuls (Fig. 4's premise), single-core, same work.
func TestMatMulArchAdvantage(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle comparison needs the larger instance")
	}
	k := MatMulChar(32)
	pulp := checkKernel(t, k, isa.PULPFull, devrt.Accel, 1, 3)
	m4 := checkKernel(t, k, isa.CortexM4, devrt.Host, 1, 3)
	ratio := float64(m4.Cycles) / float64(pulp.Cycles)
	if ratio < 1.5 {
		t.Errorf("char matmul arch speedup = %.2f (m4=%d pulp=%d), expected > 1.5",
			ratio, m4.Cycles, pulp.Cycles)
	}
}

func TestMatMulParallelScaling(t *testing.T) {
	if testing.Short() {
		t.Skip("cycle comparison needs the larger instance")
	}
	k := MatMulShort(32)
	c1 := checkKernel(t, k, isa.PULPFull, devrt.Accel, 1, 5)
	c4 := checkKernel(t, k, isa.PULPFull, devrt.Accel, 4, 5)
	sp := float64(c1.Cycles) / float64(c4.Cycles)
	if sp < 2.5 || sp > 4.05 {
		t.Errorf("4-core speedup = %.2f (1c=%d 4c=%d), expected in (2.5, 4.05]",
			sp, c1.Cycles, c4.Cycles)
	}
}

func TestStrassenGolden(t *testing.T)  { testKernelAllTargets(t, Strassen(16)) }
func TestSVMLinearGolden(t *testing.T) { testKernelAllTargets(t, SVM(SVMLinear, 16, 8, 6)) }
func TestSVMPolyGolden(t *testing.T)   { testKernelAllTargets(t, SVM(SVMPoly, 16, 8, 6)) }
func TestSVMRBFGolden(t *testing.T)    { testKernelAllTargets(t, SVM(SVMRBF, 16, 8, 6)) }
func TestCNNGolden(t *testing.T)       { testKernelAllTargets(t, CNNSized(false, 16, 2, 4)) }
func TestCNNApproxGolden(t *testing.T) { testKernelAllTargets(t, CNNSized(true, 16, 2, 4)) }
func TestHOGGolden(t *testing.T)       { testKernelAllTargets(t, HOG(32, 32)) }

func TestFIRGolden(t *testing.T) { testKernelAllTargets(t, FIR(128, 16)) }

func TestExtraSuite(t *testing.T) {
	for _, k := range ExtraSuite() {
		if k.Name == "" || k.OutLen() == 0 {
			t.Errorf("degenerate extra kernel %+v", k)
		}
	}
}

func TestDWTGolden(t *testing.T) { testKernelAllTargets(t, DWT(128, 3)) }
