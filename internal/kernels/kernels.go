// Package kernels implements the ten benchmark kernels of Table I —
// matmul (char/short/16-bit fixed), strassen, svm (linear/poly/RBF), cnn,
// cnn (approx) and hog — as target-aware code generators plus bit-exact Go
// golden models and deterministic input generators.
//
// Every kernel is written once against the feature-querying emitters of
// internal/devrt and this package; building it for a different isa.Target
// produces a different instruction stream (SIMD dot products vs scalar
// loops, hardware loops vs compare-and-branch with unrolling, 1-cycle
// 64-bit MAC vs the software decomposition). This mirrors how the paper
// compiles one portable-C source per benchmark for each platform, and it
// is what makes the architectural-speedup comparison of Fig. 4 meaningful.
package kernels

import (
	"fmt"
	"sync"

	"hetsim/internal/asm"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
)

// Instance is a fully parameterized benchmark kernel.
type Instance struct {
	// Name as it appears in Table I, e.g. "matmul (short)".
	Name string
	// Field is the application domain column of Table I.
	Field string
	// Desc is the description column of Table I.
	Desc string
	// ParamDesc summarizes the concrete sizes, e.g. "64x64".
	ParamDesc string

	// MaxThreads caps the useful team size (all paper kernels scale to 4).
	MaxThreads int

	build    func(t isa.Target, mode devrt.Mode) (*asm.Program, error)
	genInput func(seed uint64) []byte
	golden   func(in []byte) []byte
	outLen   uint32
	args     [4]uint32
}

// buildCache memoizes emitted programs per process. Code generation is a
// pure function of the instance parameters, the target and the runtime
// mode (TestProgramHashStable pins this down), and built programs are
// never mutated — every consumer treats them as read-only images — so
// identical requests can share one *asm.Program. The sweep producers
// re-emit every program to compute content keys; without the memo that
// emission dominates a warm-cache evaluation run.
var buildCache sync.Map // buildKey string -> *asm.Program

// buildKey pins down everything code generation depends on: the kernel's
// constructor parameters (name + ParamDesc encode them; args/outLen guard
// against aliases) and the full target spec, not just its name, so an
// ablated variant can never alias the full configuration.
func (k *Instance) buildKey(t isa.Target, mode devrt.Mode) string {
	return fmt.Sprintf("%s|%s|%x|%d|%s%+v%+v|%d",
		k.Name, k.ParamDesc, k.args, k.outLen, t.Name, t.Feat, t.Time, mode)
}

// Build generates and links the kernel binary for a target and runtime
// mode, and verifies that no unsupported instruction leaked through.
// Repeated builds of the same (kernel, target, mode) return one shared,
// read-only program.
func (k *Instance) Build(t isa.Target, mode devrt.Mode) (*asm.Program, error) {
	key := k.buildKey(t, mode)
	if p, ok := buildCache.Load(key); ok {
		return p.(*asm.Program), nil
	}
	p, err := k.build(t, mode)
	if err != nil {
		return nil, fmt.Errorf("kernels: building %s for %s: %w", k.Name, t.Name, err)
	}
	if err := p.Validate(t); err != nil {
		return nil, err
	}
	actual, _ := buildCache.LoadOrStore(key, p)
	return actual.(*asm.Program), nil
}

// Input generates the deterministic input buffer for the given seed.
func (k *Instance) Input(seed uint64) []byte { return k.genInput(seed) }

// Golden computes the expected output for an input buffer, using exactly
// the device's integer arithmetic.
func (k *Instance) Golden(in []byte) []byte { return k.golden(in) }

// OutLen is the output buffer size in bytes.
func (k *Instance) OutLen() uint32 { return k.outLen }

// Args returns the kernel's scalar descriptor arguments.
func (k *Instance) Args() [4]uint32 { return k.args }

// xorshift64 is the deterministic generator for benchmark inputs; it is
// spelled out here (rather than math/rand) so inputs are stable across Go
// releases — golden outputs in EXPERIMENTS.md depend on them.
type xorshift64 uint64

func newRNG(seed uint64) *xorshift64 {
	x := xorshift64(seed*2685821657736338717 + 1442695040888963407)
	return &x
}

func (x *xorshift64) next() uint64 {
	v := uint64(*x)
	v ^= v << 13
	v ^= v >> 7
	v ^= v << 17
	*x = xorshift64(v)
	return v
}

// i8 returns a signed sample in [-bound, bound].
func (x *xorshift64) i8(bound int32) int8 {
	return int8(x.i32(bound))
}

// i16 returns a signed sample in [-bound, bound].
func (x *xorshift64) i16(bound int32) int16 {
	return int16(x.i32(bound))
}

// i32 returns a signed sample in [-bound, bound].
func (x *xorshift64) i32(bound int32) int32 {
	if bound == 0 {
		return 0
	}
	span := uint64(2*bound + 1)
	return int32(x.next()%span) - bound
}

// PaperSuite returns the ten kernels of Table I at the paper's sizes.
func PaperSuite() []*Instance {
	return []*Instance{
		MatMulChar(64),
		MatMulShort(64),
		MatMulFixed(64),
		Strassen(64),
		SVM(SVMLinear, 64, 40, 54),
		SVM(SVMPoly, 64, 40, 54),
		SVM(SVMRBF, 64, 40, 54),
		CNN(false),
		CNN(true),
		HOG(128, 128),
	}
}

// SmallSuite returns reduced-size instances of every kernel for fast
// functional testing.
func SmallSuite() []*Instance {
	return []*Instance{
		MatMulChar(16),
		MatMulShort(16),
		MatMulFixed(16),
		Strassen(16),
		SVM(SVMLinear, 16, 8, 6),
		SVM(SVMPoly, 16, 8, 6),
		SVM(SVMRBF, 16, 8, 6),
		CNNSized(false, 16, 2, 4),
		CNNSized(true, 16, 2, 4),
		HOG(32, 32),
	}
}

// ByName finds a kernel in the paper suite by its Table I name.
func ByName(name string) (*Instance, error) {
	for _, k := range PaperSuite() {
		if k.Name == name {
			return k, nil
		}
	}
	return nil, fmt.Errorf("kernels: unknown kernel %q", name)
}
