package kernels

import (
	"testing"

	"hetsim/internal/devrt"
	"hetsim/internal/isa"
)

// TestProgramHashStable checks that repeated builds of the same kernel
// hash identically (the property run-cache keys rely on) and that
// different targets or runtime modes produce different hashes.
func TestProgramHashStable(t *testing.T) {
	k := MatMulChar(16)
	h1, err := k.ProgramHash(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	h2, err := k.ProgramHash(isa.PULPFull, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	if h1 != h2 {
		t.Fatalf("hash not stable across builds: %s vs %s", h1, h2)
	}
	if len(h1) != 64 {
		t.Fatalf("want a sha256 hex digest, got %q", h1)
	}

	hM4, err := k.ProgramHash(isa.CortexM4, devrt.Host)
	if err != nil {
		t.Fatal(err)
	}
	if hM4 == h1 {
		t.Fatal("different target/mode must change the program hash")
	}

	ablated := isa.PULPFull
	ablated.Name += "-SIMD"
	ablated.Feat.SIMD = false
	hAbl, err := k.ProgramHash(ablated, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	if hAbl == h1 {
		t.Fatal("ablating a used feature must change the program hash")
	}
}
