package kernels

import (
	"crypto/sha256"
	"encoding/hex"

	"hetsim/internal/asm"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
)

// HashProgram fingerprints an emitted program by its serialized binary
// image (header, encoded text, data) — exactly the bytes the device
// loader would receive. Two programs hash equal iff the device cannot
// tell them apart, which is what makes the hash safe to use in run-cache
// keys: any code-generator change that alters the instruction stream
// changes the hash, while refactors that emit identical code do not.
func HashProgram(p *asm.Program) (string, error) {
	img, err := p.Image()
	if err != nil {
		return "", err
	}
	sum := sha256.Sum256(img)
	return hex.EncodeToString(sum[:]), nil
}

// ProgramHash builds the kernel for a (target, mode) pair and returns the
// image hash. Kernel code generation is deterministic, so the hash is
// stable across processes and Go releases for an unchanged generator.
func (k *Instance) ProgramHash(t isa.Target, mode devrt.Mode) (string, error) {
	p, err := k.Build(t, mode)
	if err != nil {
		return "", err
	}
	return HashProgram(p)
}
