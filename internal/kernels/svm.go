package kernels

import (
	"encoding/binary"
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/devrt"
	"hetsim/internal/fixed"
	"hetsim/internal/isa"
)

// Support Vector Machine classification, a C port of the libsvm decision
// function on Q15 fixed-point data (Table I rows 5-7). For each test
// vector z the kernel evaluates
//
//	score(z) = bias + sum_i alpha[i] * K(sv_i, z)
//
// with K one of:
//
//	linear: K = (sv.z)            (Q15 dot, normalized by the dimension)
//	poly:   K = (gamma*lin + c)^3 (Q15 powers)
//	RBF:    K = exp(-gamma*||sv-z||^2) via the piecewise-linear LUT
//
// The support vectors, alphas and the exp table live in the binary's data
// section (they are the trained model), the test vectors are the input
// buffer, and the scores are the output. All arithmetic is 32-bit with
// per-product Q15 shifts, so none of the OR10N MAC/SIMD shortcuts apply —
// which is exactly the fixed-point regime of Fig. 4.

// SVMKind selects the kernel function.
type SVMKind int

const (
	SVMLinear SVMKind = iota
	SVMPoly
	SVMRBF
)

func (k SVMKind) String() string {
	switch k {
	case SVMLinear:
		return "linear"
	case SVMPoly:
		return "poly"
	case SVMRBF:
		return "RBF"
	}
	return "?"
}

const (
	svmGamma = 16384 // 0.5 in Q15
	svmCoef0 = 8192  // 0.25 in Q15
	svmBias  = 3277  // ~0.1 in Q15
	svmQ     = 15
	svmLUTQ  = 14 // output format of the exp table
)

type svmParams struct {
	kind SVMKind
	d    int32 // feature dimension (multiple of 4)
	nsv  int32 // support vectors
	nt   int32 // test vectors
	logD int32
}

func svmLUT() *fixed.LUT {
	return fixed.NewExpNegLUT(fixed.Q15, svmLUTQ, 8.0, 6)
}

// SVM builds an SVM kernel instance.
func SVM(kind SVMKind, d, nsv, nt int) *Instance {
	p := svmParams{kind: kind, d: int32(d), nsv: int32(nsv), nt: int32(nt)}
	if d%4 != 0 || d <= 0 {
		panic("kernels: svm dimension must be a positive multiple of 4")
	}
	for v := int32(1); v < p.d; v <<= 1 {
		p.logD++
	}
	model := svmModel(p)
	return &Instance{
		Name:       fmt.Sprintf("svm (%s)", kind),
		Field:      "learning / vision",
		Desc:       fmt.Sprintf("Support Vector Machine classifier (%s kernel)", kind),
		ParamDesc:  fmt.Sprintf("D=%d NSV=%d NT=%d", d, nsv, nt),
		MaxThreads: 4,
		outLen:     uint32(4 * p.nt),
		args:       [4]uint32{uint32(d), uint32(nsv), uint32(nt)},
		build: func(t isa.Target, mode devrt.Mode) (*asm.Program, error) {
			return buildSVM(t, mode, p, model)
		},
		genInput: func(seed uint64) []byte { return svmInput(p, seed) },
		golden:   func(in []byte) []byte { return svmGolden(p, model, in) },
	}
}

type svmModelData struct {
	sv    []int16 // nsv x d, Q15
	alpha []int16 // nsv, Q15
	lut   *fixed.LUT
}

// svmModel generates the deterministic "trained" model embedded in the
// binary (random support vectors with alternating-sign alphas — the
// operation mix, not the decision quality, is what the benchmark measures).
func svmModel(p svmParams) svmModelData {
	rng := newRNG(uint64(p.kind)<<32 ^ 0x53564d) // "SVM"
	m := svmModelData{
		sv:    make([]int16, p.nsv*p.d),
		alpha: make([]int16, p.nsv),
		lut:   svmLUT(),
	}
	for i := range m.sv {
		m.sv[i] = rng.i16(16000)
	}
	for i := range m.alpha {
		a := rng.i16(30000)
		if i%2 == 0 && a < 0 {
			a = -a
		}
		m.alpha[i] = a
	}
	return m
}

func svmInput(p svmParams, seed uint64) []byte {
	rng := newRNG(seed ^ 0x7376) // "sv"
	out := make([]byte, 2*p.nt*p.d)
	for i := int32(0); i < p.nt*p.d; i++ {
		binary.LittleEndian.PutUint16(out[2*i:], uint16(rng.i16(16000)))
	}
	return out
}

// svmKernelEval is the golden K(sv_i, z) evaluation; the device code is an
// instruction-level transcription of the same arithmetic.
func svmKernelEval(p svmParams, m svmModelData, sv []int16, z []int16) int32 {
	switch p.kind {
	case SVMLinear, SVMPoly:
		var dot int32
		for k := range sv {
			dot += int32(sv[k]) * int32(z[k]) >> svmQ
		}
		lin := dot >> uint(p.logD)
		if p.kind == SVMLinear {
			return lin
		}
		t := (svmGamma*lin)>>svmQ + svmCoef0
		t2 := (t * t) >> svmQ
		return (t2 * t) >> svmQ
	case SVMRBF:
		var d2 int32
		for k := range sv {
			df := int32(sv[k]) - int32(z[k])
			d2 += (df * df) >> svmQ
		}
		arg := (svmGamma * d2) >> svmQ
		return m.lut.Eval(arg)
	}
	return 0
}

func svmGolden(p svmParams, m svmModelData, in []byte) []byte {
	out := make([]byte, 4*p.nt)
	z := make([]int16, p.d)
	for t := int32(0); t < p.nt; t++ {
		for k := int32(0); k < p.d; k++ {
			z[k] = int16(binary.LittleEndian.Uint16(in[2*(t*p.d+k):]))
		}
		score := int32(svmBias)
		for i := int32(0); i < p.nsv; i++ {
			kv := svmKernelEval(p, m, m.sv[i*p.d:(i+1)*p.d], z)
			shift := uint(svmQ)
			if p.kind == SVMRBF {
				shift = svmLUTQ
			}
			score += (int32(m.alpha[i]) * kv) >> shift
		}
		binary.LittleEndian.PutUint32(out[4*t:], uint32(score))
	}
	return out
}

func buildSVM(t isa.Target, mode devrt.Mode, p svmParams, m svmModelData) (*asm.Program, error) {
	b := asm.NewBuilder("svm_" + p.kind.String())
	devrt.EmitCRT0(b, mode)

	b.Halves("svm_sv", m.sv)
	b.Halves("svm_alpha", m.alpha)
	if p.kind == SVMRBF {
		b.Data("svm_explut", m.lut.Bytes(), 4)
	}

	b.Label("main")
	devrt.EmitPrologue(b)
	devrt.EmitParallel(b, "svm_body")
	devrt.EmitEpilogue(b)

	// Parallel body: test vectors [lo,hi) for this core.
	b.Label("svm_body")
	devrt.EmitPrologue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7)
	emitGlob(b, globCtx{base: isa.A0, in: isa.A1, out: isa.A2})
	devrt.EmitChunk(b, p.nt, isa.S2 /*lo*/, isa.T4 /*hi*/)
	b.SUB(isa.S2, isa.T4, isa.S2) // count
	b.SUB(isa.T5, isa.T4, isa.S2) // lo
	// S0 = z ptr, S1 = out ptr
	b.LI(isa.T6, 2*p.d)
	b.MUL(isa.T7, isa.T5, isa.T6)
	b.ADD(isa.S0, isa.A1, isa.T7)
	b.SLLI(isa.T7, isa.T5, 2)
	b.ADD(isa.S1, isa.A2, isa.T7)
	b.LA(isa.S3, "svm_sv")
	b.LA(isa.S4, "svm_alpha")
	if p.kind == SVMRBF {
		b.LA(isa.S7, "svm_explut")
	}

	noWork := b.Uniq("svm_none")
	b.SFI(isa.SFLESI, isa.S2, 0)
	b.BF(noWork)

	tvLoop := b.Uniq("svm_tv")
	b.Label(tvLoop)
	b.LI(isa.S5, svmBias) // score
	b.MOV(isa.A3, isa.S3) // sv ptr walks all SVs
	b.MOV(isa.A5, isa.S4) // alpha ptr
	b.LI(isa.S6, p.nsv)   // sv counter
	devrt.EmitLoop(b, t, isa.S6, 1, 1, func(int) {
		b.MOV(isa.A4, isa.S0) // z ptr resets per SV
		b.LI(isa.T6, 0)
		r := dotRegs{acc: isa.T6, aPtr: isa.A3, bPtr: isa.A4, cnt: isa.T7, x: isa.T8, y: isa.T9}
		shift := int32(svmQ)
		switch p.kind {
		case SVMLinear, SVMPoly:
			emitDotFixed(b, t, r, p.d, svmQ, 0)
			b.SRAI(isa.T6, isa.T6, p.logD)
			if p.kind == SVMPoly {
				// t = (gamma*lin)>>15 + c; K = ((t*t)>>15 * t)>>15
				b.LI(isa.T7, svmGamma)
				b.MUL(isa.T6, isa.T6, isa.T7)
				b.SRAI(isa.T6, isa.T6, svmQ)
				b.LI(isa.T7, svmCoef0)
				b.ADD(isa.T6, isa.T6, isa.T7)
				b.MUL(isa.T7, isa.T6, isa.T6)
				b.SRAI(isa.T7, isa.T7, svmQ)
				b.MUL(isa.T6, isa.T7, isa.T6)
				b.SRAI(isa.T6, isa.T6, svmQ)
			}
		case SVMRBF:
			emitSqDiffFixed(b, t, r, p.d, svmQ, 0)
			b.LI(isa.T7, svmGamma)
			b.MUL(isa.T6, isa.T6, isa.T7)
			b.SRAI(isa.T6, isa.T6, svmQ)
			emitLUTEval(b, t, isa.T6, isa.S7, isa.T7, isa.T8, isa.T9,
				m.lut.Span, int32(m.lut.LogStep))
			shift = svmLUTQ
		}
		// score += (alpha * K) >> shift
		emitLoadInc(b, t, isa.LHS, isa.T7, isa.A5, 2)
		b.MUL(isa.T6, isa.T6, isa.T7)
		b.SRAI(isa.T6, isa.T6, shift)
		b.ADD(isa.S5, isa.S5, isa.T6)
	})
	emitStoreInc(b, t, isa.SW, isa.S1, isa.S5, 4)
	b.LI(isa.T6, 2*p.d)
	b.ADD(isa.S0, isa.S0, isa.T6)
	b.ADDI(isa.S2, isa.S2, -1)
	b.SFI(isa.SFGTSI, isa.S2, 0)
	b.BF(tvLoop)
	b.Label(noWork)
	devrt.EmitEpilogue(b, isa.S0, isa.S1, isa.S2, isa.S3, isa.S4, isa.S5, isa.S6, isa.S7)

	return b.Build(asm.Layout{})
}
