package chaos

import (
	"bytes"
	"context"
	"errors"
	"strings"
	"testing"

	"hetsim/internal/fault"
	"hetsim/internal/kernels"
	"hetsim/internal/sweep"
)

// smallCampaign is a fast, fault-heavy campaign used across the tests:
// the reduced matmul with rates high enough that every verdict class has
// a chance to appear within a few trials.
func smallCampaign(t *testing.T) Campaign {
	t.Helper()
	k, err := kernels.ByName("matmul")
	if err != nil {
		t.Fatal(err)
	}
	small := kernels.SmallSuite()
	for _, c := range small {
		if c.Name == "matmul" {
			k = c
		}
	}
	return Campaign{
		Kernels: []*kernels.Instance{k},
		Classes: fault.MemClasses,
		Rates:   []float64{1e-3},
		Trials:  4,
		Seed:    1,
	}
}

// TestCampaignDeterministic is the tentpole acceptance check: the same
// campaign spec renders a byte-identical report at any worker count.
func TestCampaignDeterministic(t *testing.T) {
	render := func(workers int) []byte {
		rep, err := smallCampaign(t).Run(sweep.New(sweep.Config{Workers: workers}))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		Render(&buf, rep)
		return buf.Bytes()
	}
	serial := render(1)
	parallel := render(8)
	if !bytes.Equal(serial, parallel) {
		t.Fatalf("report differs between -j 1 and -j 8:\n--- j1 ---\n%s--- j8 ---\n%s", serial, parallel)
	}
}

// TestAllTrialsClassified checks the taxonomy is total: every trial of a
// fault-heavy campaign carries a known verdict, faulted trials are never
// labelled clean, and clean trials never report faults.
func TestAllTrialsClassified(t *testing.T) {
	c := smallCampaign(t)
	c.Trials = 6
	rep, err := c.Run(sweep.New(sweep.Config{Workers: 4}))
	if err != nil {
		t.Fatal(err)
	}
	known := map[Verdict]bool{}
	for _, v := range Verdicts {
		known[v] = true
	}
	total, faulted := 0, 0
	for _, cell := range rep.Cells {
		if len(cell.Trials) != c.Trials {
			t.Fatalf("cell %s/%s has %d trials, want %d", cell.Kernel, cell.Class, len(cell.Trials), c.Trials)
		}
		for i, tr := range cell.Trials {
			total++
			if !known[tr.Verdict] {
				t.Fatalf("trial %d in %s has unknown verdict %q", i, cell.Class, tr.Verdict)
			}
			if tr.Injected > 0 {
				faulted++
				if tr.Verdict == VerdictClean {
					t.Fatalf("trial %d in %s injected %d faults but is classified clean", i, cell.Class, tr.Injected)
				}
			} else if tr.Verdict != VerdictClean {
				t.Fatalf("trial %d in %s injected nothing but is %q", i, cell.Class, tr.Verdict)
			}
		}
	}
	if want := len(c.Classes) * len(c.Rates) * c.Trials; total != want {
		t.Fatalf("classified %d trials, want %d", total, want)
	}
	if faulted == 0 {
		t.Fatal("campaign injected no faults at rate 1e-3; the test exercises nothing")
	}
}

// TestZeroRateCampaignIsAllClean pins the nil-behaviour contract: a rate-0
// campaign must classify every trial clean with correct output and no
// recovery overhead.
func TestZeroRateCampaignIsAllClean(t *testing.T) {
	c := smallCampaign(t)
	c.Rates = []float64{0}
	c.Trials = 2
	rep, err := c.Run(sweep.New(sweep.Config{Workers: 2}))
	if err != nil {
		t.Fatal(err)
	}
	for _, cell := range rep.Cells {
		for _, tr := range cell.Trials {
			if tr.Verdict != VerdictClean || !tr.OutputOK || tr.Injected != 0 ||
				tr.RecoveryCycles != 0 || tr.RecoveryEnergyJ != 0 {
				t.Fatalf("rate-0 trial not pristine: %+v", tr)
			}
		}
	}
}

// TestCancelledCampaignReturnsPartial checks the SIGINT contract: a
// cancelled engine yields the completed prefix marked Partial plus the
// cancellation error, and the renderer flags it.
func TestCancelledCampaignReturnsPartial(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	eng := sweep.New(sweep.Config{Workers: 2, Context: ctx})
	rep, err := smallCampaign(t).Run(eng)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || !rep.Partial {
		t.Fatalf("cancelled campaign must return a partial report, got %+v", rep)
	}
	var buf bytes.Buffer
	Render(&buf, rep)
	if !strings.Contains(buf.String(), "PARTIAL") {
		t.Fatal("rendered partial report is not marked PARTIAL")
	}
	if err := rep.Drill(0); err == nil {
		t.Fatal("Drill must reject a partial report")
	}
}

// TestCampaignCacheRoundTrip checks that trials memoized in the run cache
// reproduce the fresh report byte for byte.
func TestCampaignCacheRoundTrip(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	run := func() []byte {
		rep, err := smallCampaign(t).Run(sweep.New(sweep.Config{Workers: 4, Cache: cache}))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		Render(&buf, rep)
		return buf.Bytes()
	}
	cold := run()
	warm := run()
	if !bytes.Equal(cold, warm) {
		t.Fatal("warm-cache report differs from the fresh one")
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Fatalf("second campaign hit the cache 0 times: %+v", st)
	}
}

func TestDrill(t *testing.T) {
	mk := func(class string, verdicts ...Verdict) Cell {
		cell := Cell{Kernel: "k", Class: class, Rate: 1e-3}
		for _, v := range verdicts {
			cell.Trials = append(cell.Trials, Trial{Verdict: v})
		}
		return cell
	}
	rep := &Report{Cells: []Cell{
		mk("tcdm-flip", VerdictClean, VerdictDetected),
		mk("l2-flip", VerdictDetected, VerdictRecov),
	}}
	if err := rep.Drill(1); err != nil {
		t.Fatalf("healthy report failed the drill: %v", err)
	}
	if err := rep.Drill(2); err == nil {
		t.Fatal("drill must fail when a class is short of detections")
	}
	rep.Cells = append(rep.Cells, mk("dma-corrupt", Verdict("???")))
	if err := rep.Drill(0); err == nil || !strings.Contains(err.Error(), "unclassified") {
		t.Fatalf("drill must reject unclassified trials, got %v", err)
	}
}

func TestCampaignRejectsBadSpecs(t *testing.T) {
	eng := sweep.New(sweep.Config{})
	if _, err := (Campaign{}).Run(eng); err == nil {
		t.Fatal("empty campaign must be rejected")
	}
	c := smallCampaign(t)
	c.Rates = []float64{1.5}
	if _, err := c.Run(eng); err == nil {
		t.Fatal("out-of-range rate must be rejected")
	}
}
