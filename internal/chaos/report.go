package chaos

import (
	"fmt"
	"io"
)

// tally aggregates the verdicts of a set of trials.
type tally struct {
	n                                 int
	clean, recov, detected, sdc, hang int
	hangOK                            int // hang-fallback trials whose fallback output was still correct
	recCycles, recJ                   float64
	recN                              int // trials that paid any recovery overhead
	injected                          int
}

func (t *tally) add(trials []Trial) {
	for _, tr := range trials {
		t.n++
		t.injected += tr.Injected
		switch tr.Verdict {
		case VerdictClean:
			t.clean++
		case VerdictRecov:
			t.recov++
		case VerdictDetected:
			t.detected++
		case VerdictSDC:
			t.sdc++
		case VerdictHang:
			t.hang++
			if tr.OutputOK {
				t.hangOK++
			}
		}
		if tr.RecoveryCycles > 0 || tr.RecoveryEnergyJ > 0 {
			t.recN++
			t.recCycles += tr.RecoveryCycles
			t.recJ += tr.RecoveryEnergyJ
		}
	}
}

// faulted counts trials in which at least the classifier saw a fault
// effect — everything that is not clean.
func (t *tally) faulted() int { return t.n - t.clean }

// coverage is the recovery coverage: of the faulted trials, the fraction
// that still ended with a correct output (masked, detected-and-retried,
// or rescued by the host fallback). SDC and failed fallbacks are the
// complement.
func (t *tally) coverage() float64 {
	f := t.faulted()
	if f == 0 {
		return 1
	}
	return float64(t.recov+t.detected+t.hangOK) / float64(f)
}

// sdcRate is silent corruptions over all trials.
func (t *tally) sdcRate() float64 {
	if t.n == 0 {
		return 0
	}
	return float64(t.sdc) / float64(t.n)
}

func (t *tally) meanRecCycles() float64 {
	if t.recN == 0 {
		return 0
	}
	return t.recCycles / float64(t.recN)
}

func (t *tally) meanRecJ() float64 {
	if t.recN == 0 {
		return 0
	}
	return t.recJ / float64(t.recN)
}

// Render writes the deterministic reliability report: one row per
// (kernel, class, rate) cell in campaign order, then a per-class rollup
// and the campaign totals. Same campaign spec, same report bytes — at
// any worker count, cached or fresh.
func Render(w io.Writer, rep *Report) {
	fmt.Fprintf(w, "chaos campaign: seed=%d trials/cell=%d cells=%d",
		rep.Seed, rep.TrialsPerCell, len(rep.Cells))
	if rep.Partial {
		fmt.Fprintf(w, " [PARTIAL: interrupted, completed prefix only]")
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "%-12s %-14s %9s %6s %6s %6s %6s %5s %5s %8s %10s %10s\n",
		"Kernel", "Class", "Rate", "clean", "recov", "det", "sdc", "hang", "inj", "cover%", "rec-cyc", "rec-J")
	classOrder := []string{}
	perClass := map[string]*tally{}
	var total tally
	for _, cell := range rep.Cells {
		var t tally
		t.add(cell.Trials)
		fmt.Fprintf(w, "%-12s %-14s %9g %6d %6d %6d %6d %5d %5d %7.1f%% %10.0f %10.3g\n",
			cell.Kernel, cell.Class, cell.Rate,
			t.clean, t.recov, t.detected, t.sdc, t.hang, t.injected,
			t.coverage()*100, t.meanRecCycles(), t.meanRecJ())
		pc := perClass[cell.Class]
		if pc == nil {
			pc = &tally{}
			perClass[cell.Class] = pc
			classOrder = append(classOrder, cell.Class)
		}
		pc.add(cell.Trials)
		total.add(cell.Trials)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "per-class rollup:\n")
	for _, cl := range classOrder {
		t := perClass[cl]
		fmt.Fprintf(w, "  %-14s trials=%-4d faulted=%-4d coverage=%5.1f%% sdc=%5.1f%% detected=%d masked=%d fallback-saved=%d\n",
			cl, t.n, t.faulted(), t.coverage()*100, t.sdcRate()*100,
			t.detected, t.recov, t.hangOK)
	}
	fmt.Fprintln(w)
	fmt.Fprintf(w, "campaign: trials=%d faulted=%d recovery-coverage=%.1f%% sdc-rate=%.2f%%\n",
		total.n, total.faulted(), total.coverage()*100, total.sdcRate()*100)
	fmt.Fprintf(w, "mean recovery overhead (over %d recovering trials): %.0f acc-cycles, %.3g J\n",
		total.recN, total.meanRecCycles(), total.meanRecJ())
}

// Drill validates a short seeded campaign as a CI gate: the campaign must
// have completed (not partial), every trial must carry a known verdict,
// and every fault class must show at least min detected-and-recovered
// trials — proof that each detector actually fires and recovers, not just
// that nothing crashed.
func (rep *Report) Drill(min int) error {
	if rep.Partial {
		return fmt.Errorf("chaos drill: campaign is partial")
	}
	known := map[Verdict]bool{}
	for _, v := range Verdicts {
		known[v] = true
	}
	detected := map[string]int{}
	classes := []string{}
	for _, cell := range rep.Cells {
		if _, ok := detected[cell.Class]; !ok {
			detected[cell.Class] = 0
			classes = append(classes, cell.Class)
		}
		for i, tr := range cell.Trials {
			if !known[tr.Verdict] {
				return fmt.Errorf("chaos drill: unclassified trial %d in cell %s/%s/%g (verdict %q)",
					i, cell.Kernel, cell.Class, cell.Rate, tr.Verdict)
			}
			if tr.Verdict == VerdictDetected {
				detected[cell.Class]++
			}
		}
	}
	for _, cl := range classes {
		if detected[cl] < min {
			return fmt.Errorf("chaos drill: class %s: %d detected-and-recovered trials, want >= %d",
				cl, detected[cl], min)
		}
	}
	return nil
}
