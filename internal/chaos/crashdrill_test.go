package chaos

import (
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"testing"
)

// TestCrashDrill builds the real hetexp binary and runs the kill-9 drill
// against it. Plain `go test` drills a handful of seeded points to stay
// fast in the tier-1 suite; `make crash-drill` raises the count to the
// full 24 via HETSIM_CRASH_POINTS.
func TestCrashDrill(t *testing.T) {
	if testing.Short() {
		t.Skip("crash drill re-execs hetexp; skipped under -short")
	}
	scratch := t.TempDir()
	bin := filepath.Join(scratch, "hetexp")
	build := exec.Command("go", "build", "-o", bin, "hetsim/cmd/hetexp")
	if out, err := build.CombinedOutput(); err != nil {
		t.Fatalf("building hetexp: %v\n%s", err, out)
	}

	points := 6
	if s := os.Getenv("HETSIM_CRASH_POINTS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("bad HETSIM_CRASH_POINTS %q", s)
		}
		points = n
	}
	var seed uint64 = 1
	if s := os.Getenv("HETSIM_CRASH_SEED"); s != "" {
		n, err := strconv.ParseUint(s, 10, 64)
		if err != nil {
			t.Fatalf("bad HETSIM_CRASH_SEED %q", s)
		}
		seed = n
	}

	d := &CrashDrill{
		Hetexp:  bin,
		Scratch: scratch,
		Points:  points,
		Seed:    seed,
		Log:     testWriter{t},
	}
	rep, err := d.Run()
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Trials) != points {
		t.Fatalf("completed %d/%d trials", len(rep.Trials), points)
	}
	t.Logf("crash drill: %d/%d trials killed mid-campaign (%d jobs each)",
		rep.Partial(), points, rep.Jobs)
}

// testWriter routes drill progress into the test log.
type testWriter struct{ t *testing.T }

func (w testWriter) Write(p []byte) (int, error) {
	w.t.Logf("%s", p)
	return len(p), nil
}

// TestParseProgress pins the drill's contract with hetexp's progress line.
func TestParseProgress(t *testing.T) {
	cases := []struct {
		line string
		n    int
		ok   bool
	}{
		{"sweep: 12/60 jobs (3 cached)", 12, true},
		{"\rsweep: 1/60 jobs (0 cached)", 1, true},
		{"sweep: 60 jobs, 60 simulated, 0 served from cache", 0, false},
		{"journal: 60 job(s) replayed on resume, 0 appended this run (j)", 0, false},
		{"measuring kernel suite (each kernel on 6 configurations, 4 workers)...", 0, false},
		{"", 0, false},
	}
	for _, c := range cases {
		n, ok := parseProgress(c.line)
		if n != c.n || ok != c.ok {
			t.Errorf("parseProgress(%q) = %d,%v want %d,%v", c.line, n, ok, c.n, c.ok)
		}
	}
}
