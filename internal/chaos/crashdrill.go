package chaos

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"strconv"
	"strings"
	"time"

	"hetsim/internal/sweep"
)

// CrashDrill is the process-level half of the durability story: it re-execs
// the real hetexp binary on the small suite, SIGKILLs it at seeded points
// mid-sweep — no cleanup, no signal handler, the exact failure -resume
// exists for — and then resumes the campaign in a fresh process. For every
// kill point it asserts the three crash-safety invariants end to end:
//
//  1. The resumed run's stdout is byte-identical to an uninterrupted run.
//  2. Only journal-uncommitted jobs are re-simulated: the resume executes
//     exactly Jobs − journaled-records simulations and replays the rest.
//  3. Scrubbing the battered cache finds zero unquarantined corrupt
//     entries (leftover temp files are quarantined, never served), and a
//     second scrub comes back clean.
//
// Kills are triggered on progress thresholds, not wall-clock timers: the
// drill watches the child's own "sweep: N/M jobs" stderr counter and kills
// when a seeded threshold is crossed, so the drill lands mid-sweep
// regardless of how fast the host simulates.
type CrashDrill struct {
	// Hetexp is the path to a built hetexp binary (the drill re-execs it;
	// it never shells out to the Go toolchain itself).
	Hetexp string
	// Scratch is the drill's working directory (one subdirectory per
	// trial; caller owns cleanup).
	Scratch string
	// Points is how many seeded SIGKILL points to drill (<= 0 selects 24).
	Points int
	// Seed feeds the kill-point stream (0 is a valid seed).
	Seed uint64
	// Workers is the child's -j (<= 0 selects 4 — parallel workers keep
	// the kill window racing against concurrent journal appends).
	Workers int
	// Log, when set, receives per-trial progress lines.
	Log io.Writer
}

// CrashTrial records one kill-and-resume cycle.
type CrashTrial struct {
	Threshold int  // progress count the kill was armed for
	Progress  int  // last progress observed when the kill was sent
	Killed    bool // false when the child finished before the kill landed
	Journaled int  // committed journal records the resume inherited
	TornBytes int  // torn journal tail discarded by the resume
	Executed  int  // simulations the resume actually ran
	Tmp       int  // leftover temp files quarantined after the resume
}

// CrashReport summarizes a drill.
type CrashReport struct {
	Jobs   int // jobs per campaign (from the golden run)
	Trials []CrashTrial
}

// Partial counts trials whose kill landed strictly mid-campaign — some
// but not all jobs journaled — the cases that exercise real recovery.
func (r *CrashReport) Partial() int {
	n := 0
	for _, t := range r.Trials {
		if t.Journaled > 0 && t.Journaled < r.Jobs {
			n++
		}
	}
	return n
}

// runStats mirrors hetexp's -stats-json schema (the drill's contract with
// the binary it drives).
type runStats struct {
	Sweep   sweep.Stats         `json:"sweep"`
	Cache   *sweep.CacheStats   `json:"cache"`
	Journal *sweep.JournalStats `json:"journal"`
}

// Run executes the drill and fails fast on the first violated invariant.
func (d *CrashDrill) Run() (*CrashReport, error) {
	points := d.Points
	if points <= 0 {
		points = 24
	}
	logf := func(format string, args ...any) {
		if d.Log != nil {
			fmt.Fprintf(d.Log, format, args...)
		}
	}

	// Golden run: one uninterrupted campaign in a pristine directory — the
	// byte-identity reference every resumed trial is compared against.
	goldenDir := filepath.Join(d.Scratch, "golden")
	golden, gst, _, _, err := d.exec(goldenDir, 0)
	if err != nil {
		return nil, fmt.Errorf("crash drill: golden run: %w", err)
	}
	jobs := gst.Sweep.Jobs
	if jobs < 2 || gst.Sweep.Executed != jobs {
		return nil, fmt.Errorf("crash drill: golden run stats %+v unusable (want >= 2 cold jobs)", gst.Sweep)
	}
	logf("crash drill: golden run: %d jobs, %d output bytes\n", jobs, len(golden))

	rep := &CrashReport{Jobs: jobs}
	rng := d.Seed
	for i := 0; i < points; i++ {
		// Seeded threshold in [1, jobs-1]: always after the first possible
		// commit, always before the campaign can be complete.
		threshold := 1 + int(splitmix(&rng)%uint64(jobs-1))
		dir := filepath.Join(d.Scratch, fmt.Sprintf("trial-%02d", i))
		_, _, progress, killed, err := d.exec(dir, threshold)
		if killed {
			if err == nil {
				return rep, fmt.Errorf("crash drill: trial %d: SIGKILLed child exited cleanly", i)
			}
		} else if err != nil {
			return rep, fmt.Errorf("crash drill: trial %d: uninterrupted child failed: %w", i, err)
		}

		journal := filepath.Join(dir, "journal")
		records, torn, err := sweep.InspectJournal(journal)
		if err != nil {
			return rep, fmt.Errorf("crash drill: trial %d: inspecting journal: %w", i, err)
		}
		if records > jobs {
			return rep, fmt.Errorf("crash drill: trial %d: journal holds %d records for %d jobs", i, records, jobs)
		}

		out, st, _, _, err := d.exec(dir, 0) // resume: same dir, no kill
		if err != nil {
			return rep, fmt.Errorf("crash drill: trial %d: resume failed: %w", i, err)
		}
		// Invariant 1: byte-identical output.
		if !bytes.Equal(out, golden) {
			return rep, fmt.Errorf("crash drill: trial %d: resumed output differs from golden (%d vs %d bytes)",
				i, len(out), len(golden))
		}
		// Invariant 2: exact resume accounting — every journaled job is
		// replayed, every other job is re-simulated, and nothing is served
		// by the (journal-shadowed) cache.
		if st.Sweep.JournalHits != records || st.Sweep.Executed != jobs-records || st.Sweep.CacheHits != 0 {
			return rep, fmt.Errorf("crash drill: trial %d: resume stats %+v, want %d replayed + %d executed (journal had %d records)",
				i, st.Sweep, records, jobs-records, records)
		}
		// Invariant 3: scrub the battered cache. Leftover temp files from
		// the killed writer are quarantined; nothing is corrupt, and a
		// second pass finds a clean store.
		cache, err := sweep.Open(filepath.Join(dir, "cache"))
		if err != nil {
			return rep, fmt.Errorf("crash drill: trial %d: %w", i, err)
		}
		sr, err := cache.Scrub()
		if err != nil {
			return rep, fmt.Errorf("crash drill: trial %d: scrub: %w", i, err)
		}
		if sr.Corrupt != 0 || sr.IOErrors != 0 {
			return rep, fmt.Errorf("crash drill: trial %d: scrub found damage: %s", i, sr)
		}
		if sr2, err := cache.Scrub(); err != nil || !sr2.Clean() {
			return rep, fmt.Errorf("crash drill: trial %d: second scrub not clean: %s (%v)", i, sr2, err)
		}

		rep.Trials = append(rep.Trials, CrashTrial{
			Threshold: threshold, Progress: progress, Killed: killed,
			Journaled: records, TornBytes: torn,
			Executed: st.Sweep.Executed, Tmp: sr.TmpFiles,
		})
		logf("crash drill: trial %02d: kill@%d (saw %d, killed=%v) -> %d journaled (%d torn bytes), %d re-simulated, %d tmp quarantined\n",
			i, threshold, progress, killed, records, torn, st.Sweep.Executed, sr.TmpFiles)
		os.RemoveAll(dir) // keep the scratch footprint bounded
	}
	if rep.Partial() == 0 {
		return rep, fmt.Errorf("crash drill: no trial was killed mid-campaign (%d trials) — the drill exercised nothing", points)
	}
	return rep, nil
}

// exec runs one hetexp campaign rooted at dir (cache, journal and stats
// live inside it). killAt > 0 arms a SIGKILL for the moment the child's
// progress counter reaches it; killAt <= 0 runs to completion and returns
// the parsed -stats-json.
func (d *CrashDrill) exec(dir string, killAt int) (stdout []byte, st *runStats, progress int, killed bool, err error) {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, 0, false, err
	}
	workers := d.Workers
	if workers <= 0 {
		workers = 4
	}
	statsPath := filepath.Join(dir, "stats.json")
	cmd := exec.Command(d.Hetexp,
		"-small", "-exp", "table1",
		"-j", strconv.Itoa(workers),
		"-cache-dir", filepath.Join(dir, "cache"),
		"-resume", filepath.Join(dir, "journal"),
		"-stats-json", statsPath,
	)
	var out bytes.Buffer
	cmd.Stdout = &out
	stderr, err := cmd.StderrPipe()
	if err != nil {
		return nil, nil, 0, false, err
	}
	if err := cmd.Start(); err != nil {
		return nil, nil, 0, false, err
	}
	// Watchdog: a wedged child must fail the drill, not hang it.
	watchdog := time.AfterFunc(2*time.Minute, func() { cmd.Process.Kill() })
	defer watchdog.Stop()

	// The child repaints its progress line with \r; split on both
	// terminators so every repaint is one token.
	sc := bufio.NewScanner(stderr)
	sc.Split(splitProgress)
	for sc.Scan() {
		if n, ok := parseProgress(sc.Text()); ok {
			progress = n
			if killAt > 0 && !killed && n >= killAt {
				cmd.Process.Kill() // SIGKILL: no handler, no cleanup, no flush
				killed = true
			}
		}
	}
	werr := cmd.Wait()
	if killed {
		return out.Bytes(), nil, progress, true, fmt.Errorf("killed at %d/%d: %w", progress, killAt, werr)
	}
	if werr != nil {
		return out.Bytes(), nil, progress, false, werr
	}
	b, err := os.ReadFile(statsPath)
	if err != nil {
		return nil, nil, progress, false, fmt.Errorf("reading %s: %w", statsPath, err)
	}
	st = &runStats{}
	if err := json.Unmarshal(b, st); err != nil {
		return nil, nil, progress, false, fmt.Errorf("decoding %s: %w", statsPath, err)
	}
	return out.Bytes(), st, progress, false, nil
}

// splitProgress tokenizes on \n and \r, so carriage-return repaints of
// the progress line arrive as separate tokens.
func splitProgress(data []byte, atEOF bool) (advance int, token []byte, err error) {
	if i := bytes.IndexAny(data, "\r\n"); i >= 0 {
		return i + 1, data[:i], nil
	}
	if atEOF && len(data) > 0 {
		return len(data), data, nil
	}
	return 0, nil, nil
}

// parseProgress extracts N from a "sweep: N/M jobs" repaint. The final
// summary line ("sweep: 60 jobs, ...") has no slash and is ignored.
func parseProgress(line string) (int, bool) {
	const prefix = "sweep: "
	i := strings.Index(line, prefix)
	if i < 0 {
		return 0, false
	}
	rest := line[i+len(prefix):]
	slash := strings.IndexByte(rest, '/')
	if slash <= 0 {
		return 0, false
	}
	n, err := strconv.Atoi(rest[:slash])
	if err != nil || n < 0 {
		return 0, false
	}
	return n, true
}

// splitmix advances a splitmix64 state (the repo's seeded-stream idiom).
func splitmix(s *uint64) uint64 {
	*s += 0x9e3779b97f4a7c15
	z := *s
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}
