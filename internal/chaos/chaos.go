// Package chaos is the memory-fault campaign engine: it fans seeded
// fault-injection campaigns — kernels × fault classes × rates × N trials
// — through the internal/sweep worker pool, runs every trial as a full
// offload on the resilient runtime (internal/core), classifies each
// trial's outcome against the kernel's golden output, and renders a
// deterministic reliability report (recovery coverage, silent-data-
// corruption rate, mean recovery overhead in cycles and joules).
//
// Determinism is the load-bearing property: every trial owns a private
// injector whose seed derives from (campaign seed, kernel, class, rate,
// trial index) alone, so the same campaign spec produces a byte-identical
// report at any worker count and on a warm run cache. Trials are
// individually cacheable sweep jobs — the fault knobs are part of the
// content key — so re-rendering a campaign after an interrupt re-simulates
// only what is missing.
//
// Trial taxonomy (every trial lands in exactly one class):
//
//	clean            no fault fired; output matches golden
//	recovered        faults fired but were absorbed benignly (flip hit a
//	                 dead word); output matches with no recovery action
//	detected-retried a detector fired (CRC, watchdog, descriptor verify,
//	                 I$ parity, end-to-end acceptance check) and recovery
//	                 delivered a correct output on the accelerator
//	sdc              the offload reported success but the output checksum
//	                 differs from golden — silent data corruption
//	hang-fallback    recovery was exhausted: the job ran on the host
//	                 fallback path (or failed outright; see Trial.Err)
//
// The end-to-end acceptance check models an application-level output
// checksum: when a trial's output mismatches golden and E2ERetries allows,
// the whole offload is retried under the same (still advancing) fault
// stream, and the wasted attempt is billed as recovery overhead. Without
// it, corrupted outputs count as SDC — never as clean paper numbers.
package chaos

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"math"

	"hetsim/internal/core"
	"hetsim/internal/devrt"
	"hetsim/internal/fault"
	"hetsim/internal/isa"
	"hetsim/internal/kernels"
	"hetsim/internal/loader"
	"hetsim/internal/power"
	"hetsim/internal/sweep"
)

// Campaign specifies one chaos run. The zero value of every optional
// field selects the documented default.
type Campaign struct {
	Kernels []*kernels.Instance // required: the kernels under test
	Classes []fault.Class       // fault classes to campaign (default fault.MemClasses)
	Rates   []float64           // per-decision fault rates (default 1e-5, 1e-4)
	Trials  int                 // trials per (kernel, class, rate) cell (default 8)
	Seed    uint64              // campaign seed (default 1)
	// MaxFaults bounds each trial's injector (0 = unlimited).
	MaxFaults int
	// InputSeed seeds the kernel input generator (default 1, the paper's).
	InputSeed uint64

	// System under test (defaults: STM32-L476 @ 16 MHz, QSPI, 0.8 V /
	// 200 MHz accelerator).
	Host       power.MCUModel
	HostFreqHz float64
	Lanes      int
	AccVdd     float64
	AccFreqHz  float64

	// Resilience armament of the offload runtime. CRC framing and
	// descriptor write-verify are always on — a chaos campaign measures
	// the armed runtime; the disarmed one is PR 1's silent-fault study.
	WatchdogCycles uint64 // per-attempt EOC watchdog (default 2e6 cycles)
	Retries        int    // offload retry budget (default 2)
	// E2ERetries is the application-level acceptance-check budget: how
	// many times a trial whose output fails the golden checksum re-runs
	// the whole offload (default 1; negative disables the check so every
	// corrupted output counts as SDC).
	E2ERetries int
	MaxCycles  uint64 // per-attempt simulation bound (default 2e8)
}

// withDefaults fills unset fields and validates the campaign by probing
// the system configuration once.
func (c Campaign) withDefaults() (Campaign, error) {
	if len(c.Kernels) == 0 {
		return c, fmt.Errorf("chaos: campaign has no kernels")
	}
	if len(c.Classes) == 0 {
		c.Classes = fault.MemClasses
	}
	if len(c.Rates) == 0 {
		c.Rates = []float64{1e-5, 1e-4}
	}
	for _, r := range c.Rates {
		if !(r >= 0 && r <= 1) {
			return c, fmt.Errorf("chaos: rate %v out of [0, 1]", r)
		}
	}
	if c.Trials <= 0 {
		c.Trials = 8
	}
	if c.Seed == 0 {
		c.Seed = 1
	}
	if c.InputSeed == 0 {
		c.InputSeed = 1
	}
	if c.Host.Name == "" {
		host, err := power.MCUByName("STM32-L476")
		if err != nil {
			return c, err
		}
		c.Host = host
	}
	if c.HostFreqHz == 0 {
		c.HostFreqHz = 16e6
	}
	if c.Lanes == 0 {
		c.Lanes = 4
	}
	if c.AccVdd == 0 {
		c.AccVdd = 0.8
	}
	if c.AccFreqHz == 0 {
		c.AccFreqHz = 200e6
	}
	if c.WatchdogCycles == 0 {
		c.WatchdogCycles = 2_000_000
	}
	if c.Retries == 0 {
		c.Retries = 2
	}
	if c.E2ERetries == 0 {
		c.E2ERetries = 1
	}
	if c.MaxCycles == 0 {
		c.MaxCycles = 200_000_000
	}
	if _, err := core.NewSystem(c.sysConfig()); err != nil {
		return c, fmt.Errorf("chaos: invalid system: %w", err)
	}
	return c, nil
}

func (c *Campaign) sysConfig() core.Config {
	return core.Config{
		Host: c.Host, HostFreqHz: c.HostFreqHz, Lanes: c.Lanes,
		AccVdd: c.AccVdd, AccFreqHz: c.AccFreqHz, LinkCRC: true,
	}
}

// Verdict is the classification of one trial (see the package comment).
type Verdict string

const (
	VerdictClean    Verdict = "clean"
	VerdictRecov    Verdict = "recovered"
	VerdictDetected Verdict = "detected-retried"
	VerdictSDC      Verdict = "sdc"
	VerdictHang     Verdict = "hang-fallback"
)

// Verdicts lists every classification, in report order.
var Verdicts = []Verdict{VerdictClean, VerdictRecov, VerdictDetected, VerdictSDC, VerdictHang}

// Trial is the cacheable outcome of one fault-injection trial.
type Trial struct {
	Verdict  Verdict
	Injected int  // faults the injector fired across all attempts
	OutputOK bool // final delivered output matched golden

	// Recovery machinery engaged, summed over e2e attempts.
	Retries       int
	WatchdogTrips int
	Retransmits   uint64
	DescRewrites  int
	ParityErrors  int // injected parity upsets (each detected by design)
	E2ERetries    int // whole-offload retries forced by the acceptance check
	Fallback      bool

	// Recovery overhead: everything beyond a fault-free offload, in
	// accelerator cycles and joules (failed e2e attempts billed in full).
	RecoveryCycles  float64
	RecoveryEnergyJ float64

	Err string // terminal error or recovered panic, when any
}

// checksum fingerprints an output buffer for golden comparison.
func checksum(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// trialSeed derives the private injector seed of one trial from the
// campaign coordinates, and nothing else — the anchor of report
// determinism at any worker count.
func trialSeed(seed uint64, kernel int, class fault.Class, rate float64, trial int) uint64 {
	return fault.DeriveSeed(seed, uint64(kernel), uint64(class), math.Float64bits(rate), uint64(trial))
}

// runTrial executes one trial: up to 1+E2ERetries full offloads under a
// single advancing fault stream, classified against the golden checksum.
// A panic anywhere inside the simulator is recovered into a hang-fallback
// verdict so one pathological trial cannot kill the campaign.
func (c *Campaign) runTrial(job loader.Job, hostProg loader.Job, golden string, seed uint64, class fault.Class, rate float64) (t Trial) {
	defer func() {
		if p := recover(); p != nil {
			t.Verdict = VerdictHang
			t.OutputOK = false
			t.Err = fmt.Sprintf("panic: %v", p)
		}
	}()
	fcfg := fault.Config{Seed: seed, MaxFaults: c.MaxFaults}
	fcfg.SetRate(class, rate)
	inj := fault.New(fcfg)

	var recT, recE float64
	maxAttempts := 1 + c.E2ERetries
	if maxAttempts < 1 {
		maxAttempts = 1 // negative E2ERetries: acceptance check disabled
	}
	for attempt := 0; attempt < maxAttempts; attempt++ {
		sys, err := core.NewSystem(c.sysConfig())
		if err != nil {
			t.Verdict = VerdictHang
			t.Err = err.Error()
			break
		}
		out, rep, err := sys.Offload(job, core.Options{
			Iterations:       1,
			MaxCycles:        c.MaxCycles,
			WatchdogCycles:   c.WatchdogCycles,
			Retries:          c.Retries,
			VerifyDescriptor: true,
			HostFallback:     hostProg.Prog,
			Faults:           inj,
		})
		if err != nil {
			// Recovery and fallback both exhausted.
			t.Verdict = VerdictHang
			t.Err = err.Error()
			break
		}
		t.Retries += rep.Retries
		t.WatchdogTrips += rep.WatchdogTrips
		t.Retransmits += rep.Retransmits
		t.DescRewrites += rep.DescRewrites
		recT += rep.RecoveryTime
		recE += rep.RecoveryEnergyJ
		ok := checksum(out) == golden
		if rep.FallbackUsed {
			t.Verdict = VerdictHang
			t.Fallback = true
			t.OutputOK = ok
			break
		}
		if ok {
			t.OutputOK = true
			break
		}
		if attempt+1 >= maxAttempts {
			t.Verdict = VerdictSDC
			break
		}
		// Acceptance check caught a corrupted output: the whole attempt
		// was overhead; retry under the same fault stream.
		t.E2ERetries++
		recT += rep.TotalTime
		recE += rep.Energy.TotalJ()
	}
	t.Injected = inj.Injected()
	t.ParityErrors = inj.Count(fault.ICacheParity)
	if t.Verdict == "" {
		// The accelerator delivered a correct output.
		detected := t.Retries > 0 || t.WatchdogTrips > 0 || t.Retransmits > 0 ||
			t.DescRewrites > 0 || t.E2ERetries > 0 || t.ParityErrors > 0
		switch {
		case t.Injected == 0:
			t.Verdict = VerdictClean
		case detected:
			t.Verdict = VerdictDetected
		default:
			t.Verdict = VerdictRecov
		}
	}
	t.RecoveryCycles = recT * c.AccFreqHz
	t.RecoveryEnergyJ = recE
	return t
}

// Cell is one (kernel, class, rate) point of the campaign grid with its
// classified trials, in trial order.
type Cell struct {
	Kernel string
	Class  string
	Rate   float64
	Trials []Trial
}

// Report is a completed (or interrupted) campaign.
type Report struct {
	Seed          uint64
	TrialsPerCell int
	Cells         []Cell
	// Partial marks an interrupted campaign: Cells holds the completed
	// prefix in campaign order, everything after the interrupt is absent.
	Partial bool
}

// Run executes the campaign on the engine's worker pool. Each trial is
// one cacheable sweep job; cells are scheduled in campaign order, so an
// interrupt (the engine's context) yields a report whose Cells are the
// completed prefix, returned alongside the cancellation error. Any other
// error also returns the partial report.
func (c Campaign) Run(eng *sweep.Engine) (*Report, error) {
	c, err := c.withDefaults()
	if err != nil {
		return nil, err
	}
	rep := &Report{Seed: c.Seed, TrialsPerCell: c.Trials}
	for ki, k := range c.Kernels {
		in := k.Input(c.InputSeed)
		golden := checksum(k.Golden(in))
		accProg, err := k.Build(isa.PULPFull, devrt.Accel)
		if err != nil {
			return rep, err
		}
		hostProg, err := k.Build(c.Host.Target, devrt.Host)
		if err != nil {
			return rep, err
		}
		accHash, err := kernels.HashProgram(accProg)
		if err != nil {
			return rep, err
		}
		hostHash, err := kernels.HashProgram(hostProg)
		if err != nil {
			return rep, err
		}
		job := loader.Job{Prog: accProg, In: in, OutLen: k.OutLen(), Iters: 1, Args: k.Args()}
		fallback := loader.Job{Prog: hostProg}
		for _, class := range c.Classes {
			for _, rate := range c.Rates {
				if err := eng.Context().Err(); err != nil {
					rep.Partial = true
					return rep, err
				}
				jobs := make([]sweep.Job[Trial], c.Trials)
				for ti := 0; ti < c.Trials; ti++ {
					seed := trialSeed(c.Seed, ki, class, rate, ti)
					class, rate := class, rate
					jobs[ti] = sweep.Job[Trial]{
						Key: c.trialKey(k, in, accHash, hostHash, class, rate, ti, seed),
						Run: func() (Trial, error) {
							return c.runTrial(job, fallback, golden, seed, class, rate), nil
						},
					}
				}
				trials, err := sweep.Run(eng, jobs)
				if err != nil {
					rep.Partial = true
					return rep, err
				}
				rep.Cells = append(rep.Cells, Cell{Kernel: k.Name, Class: class.String(), Rate: rate, Trials: trials})
			}
		}
	}
	return rep, nil
}

// trialKey pins down everything a trial's outcome depends on: programs,
// input, the full system shape, the resilience armament, and the fault
// coordinates — so the run cache can never serve a stale trial for a
// changed campaign, and a repeated campaign is pure cache hits.
func (c *Campaign) trialKey(k *kernels.Instance, in []byte, accHash, hostHash string, class fault.Class, rate float64, trial int, seed uint64) string {
	return fmt.Sprintf("chaos|kernel=%s(%s)|in=%s|outlen=%d|args=%x|acc=%s|fb=%s|host=%s@%g|lanes=%d|vdd=%g|facc=%g|wd=%d|retries=%d|e2e=%d|max=%d|maxfaults=%d|class=%s|rate=%g|trial=%d|seed=%d",
		k.Name, k.ParamDesc, checksum(in), k.OutLen(), k.Args(), accHash, hostHash,
		c.Host.Name, c.HostFreqHz, c.Lanes, c.AccVdd, c.AccFreqHz,
		c.WatchdogCycles, c.Retries, c.E2ERetries, c.MaxCycles, c.MaxFaults,
		class, rate, trial, seed)
}
