// Package sensor models the data source of the paper's Figure 1: "the
// typical purpose of an IoT node is to elaborate data coming from a
// sensor". A Sensor produces fixed-size samples (frames, signal windows)
// at a configurable rate over a dedicated interface (DCMI/I2S-class).
//
// Two wirings are modelled, matching Section III (baseline) and the
// Section V variant:
//
//   - HostPath: the sensor streams into MCU RAM; the MCU forwards each
//     sample to the accelerator over the SPI link (the baseline model —
//     the sample crosses two interfaces).
//   - DirectPath: "bring data from the sensor directly to the internal
//     memory of the accelerator" — a dedicated sensor-to-L2 interface
//     removes the sample from the SPI link entirely, at the cost of a more
//     expensive board design.
//
// The Path abstraction returns the per-sample transfer time and energy
// each wiring adds to an offload, which internal/core composes into the
// pipeline timeline.
package sensor

import "fmt"

// Sensor is a periodic data source.
type Sensor struct {
	Name        string
	SampleBytes int
	RateHz      float64 // sample production rate
	// IfaceByteRate is the throughput of the sensor's own interface
	// (bytes/second); a DCMI-class camera port is far faster than SPI.
	IfaceByteRate float64
	// IfaceEnergyPerByte is the transfer energy on the sensor interface.
	IfaceEnergyPerByte float64
	// ActiveW is the sensor's own acquisition power (charged per sample
	// period regardless of wiring).
	ActiveW float64
}

// QVGACamera is an 8-bit grayscale imager cropped to the hog kernel's
// 128x128 input, streaming over a parallel camera interface.
func QVGACamera() Sensor {
	return Sensor{
		Name:               "camera-128x128",
		SampleBytes:        128 * 128,
		RateHz:             30,
		IfaceByteRate:      8e6,
		IfaceEnergyPerByte: 1e-9,
		ActiveW:            1.2e-3,
	}
}

// BioADC is a multi-channel biosignal front end producing Q15 windows
// matching the svm kernel's input.
func BioADC(windowBytes int) Sensor {
	return Sensor{
		Name:               "bio-adc",
		SampleBytes:        windowBytes,
		RateHz:             8,
		IfaceByteRate:      1e6,
		IfaceEnergyPerByte: 0.5e-9,
		ActiveW:            0.15e-3,
	}
}

// Path is the wiring between sensor, host and accelerator.
type Path int

const (
	// HostPath: sensor -> MCU RAM -> SPI link -> accelerator L2.
	HostPath Path = iota
	// DirectPath: sensor -> accelerator L2 (dedicated interface).
	DirectPath
)

func (p Path) String() string {
	if p == DirectPath {
		return "direct"
	}
	return "host"
}

// AcquireTime returns the time to move one sample over the sensor's own
// interface (paid on both paths; on HostPath it lands in MCU RAM, on
// DirectPath in accelerator L2).
func (s Sensor) AcquireTime() float64 {
	if s.IfaceByteRate <= 0 {
		return 0
	}
	return float64(s.SampleBytes) / s.IfaceByteRate
}

// AcquireEnergy returns the interface energy of one sample.
func (s Sensor) AcquireEnergy() float64 {
	return float64(s.SampleBytes) * s.IfaceEnergyPerByte
}

// SampleEnergy returns the acquisition energy of one sample period (sensor
// active power over one period plus interface energy).
func (s Sensor) SampleEnergy() float64 {
	if s.RateHz <= 0 {
		return s.AcquireEnergy()
	}
	return s.ActiveW/s.RateHz + s.AcquireEnergy()
}

// Validate checks the sensor's parameters.
func (s Sensor) Validate() error {
	if s.SampleBytes <= 0 {
		return fmt.Errorf("sensor %s: sample size must be positive", s.Name)
	}
	if s.IfaceByteRate <= 0 {
		return fmt.Errorf("sensor %s: interface rate must be positive", s.Name)
	}
	return nil
}

// Feed converts the sensor+wiring into the core offload option.
// (Returned as the anonymous field bundle to avoid an import cycle; the
// caller passes it to core.Options.Sensor.)
func (s Sensor) Feed(p Path) (acquireTime, sampleEnergyJ float64, viaLink bool) {
	return s.AcquireTime(), s.SampleEnergy(), p == HostPath
}
