package sensor

import (
	"math"
	"testing"
)

func TestCameraParameters(t *testing.T) {
	c := QVGACamera()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if c.SampleBytes != 128*128 {
		t.Errorf("frame size %d", c.SampleBytes)
	}
	// 16 kB over 8 MB/s = 2.048 ms per frame.
	if got := c.AcquireTime(); math.Abs(got-2.048e-3) > 1e-6 {
		t.Errorf("acquire time %v", got)
	}
	if c.AcquireEnergy() <= 0 || c.SampleEnergy() <= c.AcquireEnergy() {
		t.Error("sample energy must include active power over the period")
	}
}

func TestBioADC(t *testing.T) {
	b := BioADC(6912)
	if err := b.Validate(); err != nil {
		t.Fatal(err)
	}
	if b.AcquireTime() <= 0 {
		t.Error("acquire time")
	}
}

func TestValidate(t *testing.T) {
	if err := (Sensor{Name: "x", SampleBytes: 0, IfaceByteRate: 1}).Validate(); err == nil {
		t.Error("zero sample size must fail")
	}
	if err := (Sensor{Name: "x", SampleBytes: 1, IfaceByteRate: 0}).Validate(); err == nil {
		t.Error("zero interface rate must fail")
	}
}

func TestFeedWiring(t *testing.T) {
	c := QVGACamera()
	at, ej, via := c.Feed(HostPath)
	if !via || at != c.AcquireTime() || ej != c.SampleEnergy() {
		t.Error("host path feed wrong")
	}
	_, _, via = c.Feed(DirectPath)
	if via {
		t.Error("direct path must bypass the link")
	}
	if HostPath.String() != "host" || DirectPath.String() != "direct" {
		t.Error("path names")
	}
}

func TestZeroRateSensor(t *testing.T) {
	s := Sensor{Name: "s", SampleBytes: 100, IfaceByteRate: 1e6, ActiveW: 1}
	// RateHz == 0: SampleEnergy falls back to interface energy only.
	if s.SampleEnergy() != s.AcquireEnergy() {
		t.Error("zero-rate sensor energy fallback")
	}
}
