// Package serve is the hardened simulation-as-a-service layer: a
// long-running HTTP/JSON front-end (cmd/hetsimd) over the sweep engine
// and the content-addressed run cache, built so that a million clients
// asking for the same sweep point cost one simulation.
//
// The robustness envelope, every piece exercised under injected failure
// (fault.go, the soak drill):
//
//   - Single-flight dedup: concurrent requests for the same content key
//     coalesce onto one in-flight simulation (sweep.Flight); waiters
//     share the result or the typed error.
//   - Backpressure: a bounded admission queue and per-tenant token
//     buckets + in-flight quotas answer 429 with Retry-After instead of
//     melting down.
//   - Deadline propagation: a client deadline bounds how long its
//     request waits — never the shared simulation other waiters ride on.
//   - Bounded retry: transient failures (cache writes, injected faults)
//     re-attempt with seeded, jittered exponential backoff; the sweep
//     taxonomy's terminal errors (*sweep.PanicError, sweep.ErrJobTimeout,
//     cancelled contexts) never retry.
//   - Graceful drain: Drain stops admission (readiness flips to 503),
//     lets in-flight jobs finish and land in the fsynced cache — the
//     checkpoint — then reports. A wedged drain is bounded by its
//     context; cmd/hetsimd force-exits on a second signal.
package serve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"context"

	"hetsim/internal/kernels"
	"hetsim/internal/paper"
	"hetsim/internal/sweep"
)

// State is the drain state machine: Serving → Draining → Stopped.
type State int32

const (
	StateServing State = iota
	StateDraining
	StateStopped
)

func (s State) String() string {
	switch s {
	case StateServing:
		return "serving"
	case StateDraining:
		return "draining"
	case StateStopped:
		return "stopped"
	}
	return "?"
}

// Config shapes a Server.
type Config struct {
	// Build resolves a job spec into the sweep job it names (key +
	// runner). Nil selects paper.BuildSpecJob — the paper sweep; tests
	// and drills substitute instrumented builders.
	Build func(spec paper.JobSpec) (sweep.Job[json.RawMessage], error)
	// Cache persists results across requests and restarts (nil disables
	// persistence; dedup still works for concurrent requests).
	Cache *sweep.Cache
	// Workers bounds concurrently executing simulations (<= 0 selects
	// runtime.GOMAXPROCS(0)).
	Workers int
	// Queue bounds admitted requests — running plus waiting, dedup
	// waiters included. Beyond it the server answers 429 + Retry-After.
	// <= 0 selects 8× Workers.
	Queue int
	// JobTimeout bounds each simulation (sweep.Config.JobTimeout);
	// a job that exceeds it fails terminally for every waiter.
	JobTimeout time.Duration
	// Retry bounds transient-failure re-attempts (zero value selects
	// DefaultRetryPolicy; Max < 0 disables retry).
	Retry RetryPolicy
	// RatePerSec and Burst parameterize the per-tenant token buckets
	// (RatePerSec <= 0 disables rate limiting).
	RatePerSec float64
	Burst      int
	// TenantQuota caps in-flight requests per tenant (<= 0 disables).
	TenantQuota int
	// Heartbeat is the keepalive cadence of an idle /v1/batch stream:
	// when no job completes for this long, a heartbeat record goes out so
	// proxies and load balancers see a live connection (<= 0 selects 10s).
	Heartbeat time.Duration
	// Seed feeds the backoff jitter stream (0 is a valid seed).
	Seed uint64
	// Faults injects service-level failures for drills (nil = none).
	Faults *Faults
	// Scrub, when set, is the startup cache-scrub report (cmd/hetsimd
	// runs sweep.Cache.Scrub before serving); it is republished verbatim
	// in Stats so operators can see what the last boot quarantined.
	Scrub *sweep.ScrubReport
}

// Stats is a snapshot of the server's counters.
type Stats struct {
	State         string `json:"state"`
	Requests      uint64 `json:"requests"`
	RejectedQueue uint64 `json:"rejected_queue"`
	RejectedRate  uint64 `json:"rejected_rate"`
	RejectedQuota uint64 `json:"rejected_quota"`
	RejectedDrain uint64 `json:"rejected_drain"`
	BadRequests   uint64 `json:"bad_requests"`
	Deduped       uint64 `json:"deduped"` // requests coalesced onto another request's flight
	Leads         uint64 `json:"leads"`   // flights led (distinct in-flight keys)
	CacheHits     uint64 `json:"cache_hits"`
	Executed      uint64 `json:"executed"` // simulations actually run
	ExecRetries   uint64 `json:"exec_retries"`
	PutRetries    uint64 `json:"put_retries"`
	PutFailures   uint64 `json:"put_failures"` // puts that failed even after retry
	Failed        uint64 `json:"failed"`
	Expired       uint64 `json:"expired"` // waits abandoned on deadline/cancel
	// HedgedRequests counts submissions carrying the client's hedge
	// marker (Client.HedgeAfter backups). Hedges ride the single-flight
	// dedup, so this measures tail-latency pressure, not extra work.
	HedgedRequests uint64 `json:"hedged_requests"`

	// Batch counters (/v1/batch): accepted batch submissions, the jobs
	// they carried, how those jobs resolved, how many streams were cut
	// with a resumable cursor (drain, deadline or client disconnect), and
	// the keepalive records written. These are a multi-word group updated
	// together per batch; handlers mutate them and Stats snapshots them
	// under the same mutex, so /v1/stats never reports a torn view (a
	// batch whose jobs are counted but whose completions are not).
	BatchRequests   uint64 `json:"batch_requests"`
	BatchJobs       uint64 `json:"batch_jobs"`
	BatchCompleted  uint64 `json:"batch_completed"`
	BatchFailed     uint64 `json:"batch_failed"`
	BatchCursorCuts uint64 `json:"batch_cursor_cuts"`
	BatchHeartbeats uint64 `json:"batch_heartbeats"`
	// Scrub is the startup cache-scrub report (absent when the server
	// booted without one).
	Scrub *sweep.ScrubReport `json:"scrub,omitempty"`

	// Compile-tier counters (process-wide, DESIGN.md §12–13): how much
	// of the served simulation work ran compiled. BlockCompiles and
	// SuperblockCompiles count basic-block table builds and superblock
	// formations in the CPU model; the memo counters split kernels.Compiled
	// lookups into reused vs freshly built tables, so a cache-busting
	// client mix shows up as a miss surge here before it shows up as
	// latency.
	BlockCompiles      uint64 `json:"block_compiles"`
	SuperblockCompiles uint64 `json:"superblock_compiles"`
	CompileMemoHits    uint64 `json:"compile_memo_hits"`
	CompileMemoMisses  uint64 `json:"compile_memo_misses"`
}

// Server is the simulation service. Create with New, mount Handler on an
// http.Server, stop with Drain.
type Server struct {
	cfg    Config
	eng    *sweep.Engine
	flight sweep.Flight[flightVal]
	limits *limiter
	retry  *retrier
	sem    chan struct{}
	queued atomic.Int64
	state  atomic.Int32
	wg     sync.WaitGroup

	// drained is closed the moment Drain begins, broadcasting the cut to
	// every in-flight batch stream (they stop claiming, finish in-flight
	// jobs, and end with a cursor record).
	drained   chan struct{}
	drainOnce sync.Once

	// bmu guards the batch counter group: the fields are multi-word and
	// meaningful only together, so both the handlers that mutate them and
	// the Stats snapshot that reads them take this mutex — an atomic-per-
	// field discipline would hand /v1/stats torn batch accounting.
	bmu   sync.Mutex
	batch batchCounters

	requests      atomic.Uint64
	rejectedQueue atomic.Uint64
	rejectedRate  atomic.Uint64
	rejectedQuota atomic.Uint64
	rejectedDrain atomic.Uint64
	badRequests   atomic.Uint64
	deduped       atomic.Uint64
	cacheHits     atomic.Uint64
	executed      atomic.Uint64
	execRetries   atomic.Uint64
	putRetries    atomic.Uint64
	putFailures   atomic.Uint64
	failed        atomic.Uint64
	expired       atomic.Uint64
	hedgedReqs    atomic.Uint64
}

// flightVal is what a flight publishes to its waiters.
type flightVal struct {
	raw    json.RawMessage
	cached bool
}

// batchCounters is the multi-word /v1/batch accounting group (see
// Server.bmu for the locking discipline).
type batchCounters struct {
	requests   uint64
	jobs       uint64
	completed  uint64
	failed     uint64
	cursorCuts uint64
	heartbeats uint64
}

// errInjectedCacheWrite marks a fault-hook cache-write failure; it is
// transient by classification, which is the point.
var errInjectedCacheWrite = errors.New("serve: injected cache write failure")

// New builds a server. The zero-value knobs of cfg select production
// defaults (see Config).
func New(cfg Config) *Server {
	if cfg.Build == nil {
		cfg.Build = paper.BuildSpecJob
	}
	if cfg.Workers <= 0 {
		cfg.Workers = runtime.GOMAXPROCS(0)
	}
	if cfg.Queue <= 0 {
		cfg.Queue = 8 * cfg.Workers
	}
	if cfg.Retry == (RetryPolicy{}) {
		cfg.Retry = DefaultRetryPolicy()
	}
	if cfg.Retry.Max < 0 {
		cfg.Retry.Max = 0
	}
	if cfg.Burst <= 0 {
		cfg.Burst = int(math.Max(1, cfg.RatePerSec))
	}
	if cfg.Heartbeat <= 0 {
		cfg.Heartbeat = 10 * time.Second
	}
	s := &Server{
		cfg:     cfg,
		eng:     sweep.New(sweep.Config{Workers: cfg.Workers, JobTimeout: cfg.JobTimeout}),
		limits:  newLimiter(cfg.RatePerSec, cfg.Burst, cfg.TenantQuota),
		retry:   newRetrier(cfg.Retry, cfg.Seed),
		sem:     make(chan struct{}, cfg.Workers),
		drained: make(chan struct{}),
	}
	return s
}

// State reports where the drain state machine stands.
func (s *Server) State() State { return State(s.state.Load()) }

// Stats snapshots the counters. The single-word counters are atomics;
// the batch group is multi-word and is snapshotted under the same mutex
// the batch handlers mutate it under, so its fields are mutually
// consistent even mid-load.
func (s *Server) Stats() Stats {
	fs := s.flight.Stats()
	bc, sc, mh, mm := kernels.CompileStats()
	s.bmu.Lock()
	bt := s.batch
	s.bmu.Unlock()
	return Stats{
		State:          s.State().String(),
		Requests:       s.requests.Load(),
		RejectedQueue:  s.rejectedQueue.Load(),
		RejectedRate:   s.rejectedRate.Load(),
		RejectedQuota:  s.rejectedQuota.Load(),
		RejectedDrain:  s.rejectedDrain.Load(),
		BadRequests:    s.badRequests.Load(),
		Deduped:        s.deduped.Load(),
		Leads:          fs.Leads,
		CacheHits:      s.cacheHits.Load(),
		Executed:       s.executed.Load(),
		ExecRetries:    s.execRetries.Load(),
		PutRetries:     s.putRetries.Load(),
		PutFailures:    s.putFailures.Load(),
		Failed:         s.failed.Load(),
		Expired:        s.expired.Load(),
		HedgedRequests: s.hedgedReqs.Load(),

		BatchRequests:   bt.requests,
		BatchJobs:       bt.jobs,
		BatchCompleted:  bt.completed,
		BatchFailed:     bt.failed,
		BatchCursorCuts: bt.cursorCuts,
		BatchHeartbeats: bt.heartbeats,

		Scrub: s.cfg.Scrub,

		BlockCompiles:      bc,
		SuperblockCompiles: sc,
		CompileMemoHits:    mh,
		CompileMemoMisses:  mm,
	}
}

// Handler returns the service's HTTP surface:
//
//	POST /v1/jobs   submit a keyed job (paper.JobRequest → paper.JobResponse)
//	POST /v1/batch  submit a whole campaign (paper.BatchRequest → streamed
//	                NDJSON paper.BatchRecords: per-job completions as they
//	                land, heartbeats, a cursor when cut, a terminal summary)
//	GET  /v1/stats  counters snapshot
//	GET  /healthz   liveness  (200 while the process runs)
//	GET  /readyz    readiness (200 serving, 503 draining/stopped)
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/v1/jobs", s.handleJob)
	mux.HandleFunc("/v1/batch", s.handleBatch)
	mux.HandleFunc("/v1/stats", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, http.StatusOK, s.Stats())
	})
	mux.HandleFunc("/healthz", func(w http.ResponseWriter, r *http.Request) {
		w.WriteHeader(http.StatusOK)
		io.WriteString(w, "ok\n")
	})
	mux.HandleFunc("/readyz", func(w http.ResponseWriter, r *http.Request) {
		if s.State() == StateServing {
			w.WriteHeader(http.StatusOK)
			io.WriteString(w, "ready\n")
			return
		}
		w.Header().Set("Retry-After", "1")
		w.WriteHeader(http.StatusServiceUnavailable)
		io.WriteString(w, s.State().String()+"\n")
	})
	return mux
}

// Drain executes the shutdown state machine: flip to draining (readiness
// and new submissions start answering 503), wait for every admitted
// request — including detached-waiter flights, which run on their
// leader's request — to finish and checkpoint into the fsynced cache,
// then report Stopped. The context bounds the wait; on expiry the server
// is still marked stopped (nothing new is admitted) and the error says
// what was abandoned.
func (s *Server) Drain(ctx context.Context) error {
	s.state.CompareAndSwap(int32(StateServing), int32(StateDraining))
	// Broadcast the cut to in-flight batch streams after the state flip:
	// they stop claiming new jobs, finish (and cache) what is in flight,
	// and end their stream with a resumable cursor.
	s.drainOnce.Do(func() { close(s.drained) })
	done := make(chan struct{})
	go func() {
		s.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		s.state.Store(int32(StateStopped))
		return nil
	case <-ctx.Done():
		s.state.Store(int32(StateStopped))
		return fmt.Errorf("serve: drain abandoned %d queued request(s): %w", s.queued.Load(), ctx.Err())
	}
}

// maxBodyBytes bounds a request body at the HTTP layer (the codec
// enforces its own tighter limit).
const maxBodyBytes = 1 << 20

func (s *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Header.Get(HedgedHeader) != "" {
		s.hedgedReqs.Add(1)
	}
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, paper.JobResponse{Error: "POST only"})
		return
	}
	// Track before the state check: every request Drain could observe
	// mid-flight is inside the group (rejections release it promptly).
	s.wg.Add(1)
	defer s.wg.Done()
	if s.State() != StateServing {
		s.rejectedDrain.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			paper.JobResponse{Error: "server is " + s.State().String(), Retryable: true})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, paper.JobResponse{Error: "reading request: " + err.Error()})
		return
	}
	req, err := paper.ParseJobRequest(body)
	if err != nil {
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, paper.JobResponse{Error: err.Error()})
		return
	}
	tenant := req.Tenant
	if tenant == "" {
		tenant = "anon"
	}
	if wait, ok := s.limits.admit(tenant); !ok {
		if wait > 0 {
			s.rejectedRate.Add(1)
		} else {
			s.rejectedQuota.Add(1)
		}
		w.Header().Set("Retry-After", retryAfter(wait))
		writeJSON(w, http.StatusTooManyRequests,
			paper.JobResponse{Error: "tenant over rate limit or quota", Retryable: true})
		return
	}
	defer s.limits.release(tenant)
	if n := s.queued.Add(1); n > int64(s.cfg.Queue) {
		s.queued.Add(-1)
		s.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			paper.JobResponse{Error: "admission queue full", Retryable: true})
		return
	}
	defer s.queued.Add(-1)

	// Deadline propagation: the client's budget bounds its wait (and an
	// injected cancellation drills the same path); the simulation itself
	// is never cancelled — other waiters may be riding on it.
	ctx := r.Context()
	if req.TimeoutMS > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer cancel()
	}
	if d, ok := s.cfg.Faults.CancelRequest(); ok {
		var cancel context.CancelFunc
		ctx, cancel = context.WithCancel(ctx)
		t := time.AfterFunc(d, cancel)
		defer t.Stop()
		defer cancel()
	}

	resp, code := s.execute(ctx, req.Spec)
	writeJSON(w, code, resp)
}

// execute resolves the spec and runs it through the single-flight layer.
func (s *Server) execute(ctx context.Context, spec paper.JobSpec) (paper.JobResponse, int) {
	job, err := s.cfg.Build(spec)
	if err != nil {
		s.badRequests.Add(1)
		return paper.JobResponse{Error: err.Error()}, http.StatusBadRequest
	}
	v, err, shared := s.flight.Do(ctx, job.Key, func() (flightVal, error) {
		return s.lead(job)
	})
	if shared {
		s.deduped.Add(1)
	}
	if err != nil {
		if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
			// The wait was abandoned, not the simulation: a re-submission
			// will find the flight, or the cache entry it left behind.
			s.expired.Add(1)
			return paper.JobResponse{Key: job.Key, Error: err.Error(), Retryable: true},
				http.StatusGatewayTimeout
		}
		s.failed.Add(1)
		return paper.JobResponse{Key: job.Key, Error: err.Error(), Retryable: Retryable(err)},
			http.StatusInternalServerError
	}
	return paper.JobResponse{Key: job.Key, Cached: v.cached, Shared: shared, Result: v.raw},
		http.StatusOK
}

// lead runs one deduplicated execution: worker slot, cache read, the
// simulation itself under the transient-retry budget, then the cache
// write under the same budget (an ultimately failed write is non-fatal —
// the result is still served, persistence is what degraded). Leaders run
// on their caller's stack and always ride to completion, so a drain that
// waits out the handlers has waited out every simulation.
func (s *Server) lead(job sweep.Job[json.RawMessage]) (flightVal, error) {
	s.sem <- struct{}{}
	defer func() { <-s.sem }()
	if s.cfg.Cache != nil {
		var raw json.RawMessage
		if s.cfg.Cache.Get(job.Key, &raw) {
			s.cacheHits.Add(1)
			return flightVal{raw: raw, cached: true}, nil
		}
	}
	if d := s.cfg.Faults.SlowJob(); d > 0 {
		time.Sleep(d)
	}
	var raw json.RawMessage
	err := s.retry.do(context.Background(), func() error {
		rs, err := sweep.Run(s.eng, []sweep.Job[json.RawMessage]{job})
		if err != nil {
			return err
		}
		raw = rs[0]
		return nil
	}, func() { s.execRetries.Add(1) })
	if err != nil {
		return flightVal{}, err
	}
	s.executed.Add(1)
	if s.cfg.Cache != nil {
		perr := s.retry.do(context.Background(), func() error {
			if s.cfg.Faults.CacheWriteFail(job.Key) {
				return errInjectedCacheWrite
			}
			return s.cfg.Cache.Put(job.Key, raw)
		}, func() { s.putRetries.Add(1) })
		if perr != nil {
			s.putFailures.Add(1)
		}
	}
	return flightVal{raw: raw}, nil
}

// retryAfter renders a wait as a Retry-After header value (whole
// seconds, minimum 1 — the header has no sub-second form).
func retryAfter(d time.Duration) string {
	secs := int(math.Ceil(d.Seconds()))
	if secs < 1 {
		secs = 1
	}
	return fmt.Sprintf("%d", secs)
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	b, err := json.Marshal(v)
	if err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	w.Write(b)
}
