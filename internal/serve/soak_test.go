package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"hetsim/internal/paper"
	"hetsim/internal/sweep"
)

// TestServeSoak is the seeded chaos drill of the serving layer (`make
// serve-drill`): a herd of clients hammers a small key space through the
// retrying Client while the fault hook injects slow jobs, cache-write
// failures and mid-request cancellations. The assertions are the
// service's core promises under that weather:
//
//   - zero duplicated executions per key (dedup + cache, even with the
//     first two cache writes of every key failing),
//   - every client either gets the right bytes or a typed terminal error
//     (here: none are terminal, so all succeed),
//   - no stuck waiters (the test itself would time out),
//   - a clean drain afterwards, with readiness down.
func TestServeSoak(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 20
	var mu sync.Mutex
	execs := make(map[string]int)
	build := func(spec paper.JobSpec) (sweep.Job[json.RawMessage], error) {
		key := "soak|" + spec.Kernel
		payload := json.RawMessage(fmt.Sprintf(`{"kernel":%q,"cycles":%d}`, spec.Kernel, len(spec.Kernel)))
		return sweep.Job[json.RawMessage]{Key: key, Run: func() (json.RawMessage, error) {
			mu.Lock()
			execs[key]++
			mu.Unlock()
			return payload, nil
		}}, nil
	}
	srv := New(Config{
		Build: build, Cache: cache, Workers: 4, Queue: 256,
		Retry: RetryPolicy{Max: 3, Base: time.Millisecond, Cap: 10 * time.Millisecond},
		Faults: &Faults{
			Seed:      11,
			SlowEvery: 5, SlowDelay: 2 * time.Millisecond,
			CacheFailFirst: 2,   // every key's first two writes fail; retry budget covers them
			CancelRate:     0.2, // a fifth of all requests lose their wait mid-flight
			CancelAfter:    time.Millisecond,
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	client := &Client{BaseURL: ts.URL, Tenant: "soak", MaxAttempts: 20, MaxWait: 50 * time.Millisecond}
	const (
		clients = 8
		reqs    = 30
	)
	errc := make(chan error, clients)
	for c := 0; c < clients; c++ {
		go func(c int) {
			ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
			defer cancel()
			for i := 0; i < reqs; i++ {
				kernel := fmt.Sprintf("k%02d", (c*reqs+i*7)%keys)
				raw, err := client.RunSpec(ctx, paper.JobSpec{Kernel: kernel, Seed: 1, Config: "plain"})
				if err != nil {
					errc <- fmt.Errorf("client %d req %d (%s): %w", c, i, kernel, err)
					return
				}
				want := fmt.Sprintf(`{"kernel":%q,"cycles":%d}`, kernel, len(kernel))
				if string(raw) != want {
					errc <- fmt.Errorf("client %d req %d: got %s, want %s", c, i, raw, want)
					return
				}
			}
			errc <- nil
		}(c)
	}
	for c := 0; c < clients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}

	// Core soak assertion: under dedup + cache, every key simulated once.
	mu.Lock()
	for key, n := range execs {
		if n != 1 {
			t.Errorf("key %s executed %d times, want 1", key, n)
		}
	}
	nKeys := len(execs)
	mu.Unlock()
	st := srv.Stats()
	if nKeys == 0 || st.Executed != uint64(nKeys) {
		t.Fatalf("executed %d for %d keys; stats = %+v", st.Executed, nKeys, st)
	}
	// The deterministic fault fired: every key's first two cache writes
	// failed and were retried, and none ultimately failed. (The
	// probabilistic faults — slow jobs, injected cancellations — are
	// exercised too, but their observable counts depend on interleaving;
	// TestServeInjectedCancel pins the cancel path deterministically.)
	if st.PutRetries < uint64(2*nKeys) || st.PutFailures != 0 {
		t.Errorf("cache-write fault path unexercised or fatal: %+v", st)
	}
	t.Logf("soak stats: %+v", st)

	// Clean drain: nothing in flight, readiness down afterwards.
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain after soak: %v", err)
	}
	if srv.State() != StateStopped {
		t.Fatalf("state after drain = %v", srv.State())
	}
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("readyz after drain: %d", resp.StatusCode)
	}
	if cs := cache.Stats(); cs.WriteFails != 0 {
		t.Fatalf("real cache writes failed during the soak: %+v", cs)
	}
}

// TestBatchSoak is the batch chaos drill (`make batch-drill`): batch
// campaigns and singleton requests hammer the same overlapping key space
// while the fault hook injects slow jobs, cache-write failures and
// mid-request cancellations — the cancellations cut batch streams
// mid-flight, forcing RunBatch's reconnect-and-resume path. A stats
// reader polls concurrently to put the batch counter discipline under
// the race detector. The promises under that weather:
//
//   - exactly-once execution per key across every batch and singleton,
//     even when a cut batch is resumed,
//   - every campaign eventually completes with the right bytes,
//   - a clean drain afterwards, with readiness down.
func TestBatchSoak(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	const keys = 20
	var mu sync.Mutex
	execs := make(map[string]int)
	build := func(spec paper.JobSpec) (sweep.Job[json.RawMessage], error) {
		key := "bsoak|" + spec.Kernel
		payload := json.RawMessage(fmt.Sprintf(`{"kernel":%q,"cycles":%d}`, spec.Kernel, len(spec.Kernel)))
		return sweep.Job[json.RawMessage]{Key: key, Run: func() (json.RawMessage, error) {
			mu.Lock()
			execs[key]++
			mu.Unlock()
			return payload, nil
		}}, nil
	}
	srv := New(Config{
		Build: build, Cache: cache, Workers: 4, Queue: 256,
		Retry: RetryPolicy{Max: 4, Base: time.Millisecond, Cap: 10 * time.Millisecond},
		Faults: &Faults{
			Seed:      7,
			SlowEvery: 5, SlowDelay: 2 * time.Millisecond,
			CacheFailFirst: 2,
			CancelRate:     0.2, // cuts singletons AND whole batch streams
			CancelAfter:    time.Millisecond,
		},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL, Tenant: "bsoak", MaxAttempts: 40, MaxWait: 50 * time.Millisecond}

	// Concurrent stats reader: the batch counter group is multi-word and
	// mutex-guarded; polling it while streams update it is what puts the
	// torn-snapshot fix under the race detector.
	stop := make(chan struct{})
	var readers sync.WaitGroup
	readers.Add(1)
	go func() {
		defer readers.Done()
		for {
			select {
			case <-stop:
				return
			default:
				st := srv.Stats()
				if st.BatchCompleted > st.BatchJobs {
					t.Errorf("torn batch snapshot: %+v", st)
					return
				}
				time.Sleep(time.Millisecond)
			}
		}
	}()

	const (
		batchClients   = 4
		campaigns      = 8
		pointsPerBatch = 8
		soloClients    = 4
		soloReqs       = 20
	)
	errc := make(chan error, batchClients+soloClients)
	for c := 0; c < batchClients; c++ {
		go func(c int) {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for i := 0; i < campaigns; i++ {
				specs := make([]paper.JobSpec, pointsPerBatch)
				for j := range specs {
					// Stride keeps keys unique within a batch while the
					// subsets overlap heavily across clients and campaigns.
					specs[j] = paper.JobSpec{
						Kernel: fmt.Sprintf("k%02d", (c*5+i*7+j*3)%keys),
						Seed:   1, Config: "plain",
					}
				}
				raws, err := client.RunBatch(ctx, specs)
				if err != nil {
					errc <- fmt.Errorf("batch client %d campaign %d: %w", c, i, err)
					return
				}
				for j, raw := range raws {
					want := fmt.Sprintf(`{"kernel":%q,"cycles":%d}`, specs[j].Kernel, len(specs[j].Kernel))
					if string(raw) != want {
						errc <- fmt.Errorf("batch client %d campaign %d point %d: got %s, want %s", c, i, j, raw, want)
						return
					}
				}
			}
			errc <- nil
		}(c)
	}
	for c := 0; c < soloClients; c++ {
		go func(c int) {
			ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
			defer cancel()
			for i := 0; i < soloReqs; i++ {
				kernel := fmt.Sprintf("k%02d", (c*soloReqs+i*11)%keys)
				raw, err := client.RunSpec(ctx, paper.JobSpec{Kernel: kernel, Seed: 1, Config: "plain"})
				if err != nil {
					errc <- fmt.Errorf("solo client %d req %d (%s): %w", c, i, kernel, err)
					return
				}
				want := fmt.Sprintf(`{"kernel":%q,"cycles":%d}`, kernel, len(kernel))
				if string(raw) != want {
					errc <- fmt.Errorf("solo client %d req %d: got %s, want %s", c, i, raw, want)
					return
				}
			}
			errc <- nil
		}(c)
	}
	for c := 0; c < batchClients+soloClients; c++ {
		if err := <-errc; err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	readers.Wait()

	// Core promise: every key simulated exactly once across all batches,
	// singletons, cuts and resumes.
	mu.Lock()
	for key, n := range execs {
		if n != 1 {
			t.Errorf("key %s executed %d times, want 1", key, n)
		}
	}
	nKeys := len(execs)
	mu.Unlock()
	st := srv.Stats()
	if nKeys == 0 || st.Executed != uint64(nKeys) {
		t.Fatalf("executed %d for %d keys; stats = %+v", st.Executed, nKeys, st)
	}
	if st.BatchRequests < batchClients*campaigns {
		t.Errorf("batch requests %d < %d campaigns submitted", st.BatchRequests, batchClients*campaigns)
	}
	if st.BatchFailed != 0 {
		t.Errorf("batch points failed terminally under transient-only faults: %+v", st)
	}
	// Reconnects and cursor cuts are probabilistic (the seeded fault
	// stream is drawn in request-arrival order), so they are logged, not
	// asserted; TestBatchDrainCursor pins the cut path deterministically.
	t.Logf("batch soak: %+v, client reconnects %d", st, client.Reconnects())

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatalf("drain after batch soak: %v", err)
	}
	if srv.State() != StateStopped {
		t.Fatalf("state after drain = %v", srv.State())
	}
	resp, err := ts.Client().Get(ts.URL + "/readyz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != 503 {
		t.Fatalf("readyz after drain: %d", resp.StatusCode)
	}
	if cs := cache.Stats(); cs.WriteFails != 0 {
		t.Fatalf("real cache writes failed during the batch soak: %+v", cs)
	}
}
