package serve

import (
	"sync"
	"time"
)

// Faults is the service-level fault injector — the chaos discipline of
// internal/fault turned inward on the serving layer itself. It decides,
// deterministically where the drill needs determinism and from a seeded
// splitmix64 stream where a rate is enough, when a simulation runs slow,
// when a cache write fails, and when a request's context is cancelled
// mid-flight. A nil *Faults is a no-op on every decision, so a clean
// server pays nothing.
type Faults struct {
	// Seed feeds the splitmix64 stream behind the rate-based decisions.
	Seed uint64
	// SlowEvery makes every Nth led execution sleep SlowDelay before the
	// simulation (0 disables) — the knob behind queue-pressure, deadline
	// and dedup-under-latency drills.
	SlowEvery int
	SlowDelay time.Duration
	// CacheFailFirst fails the first N cache-write attempts of every key
	// (0 disables). Deterministic per key, so a put retry budget > N
	// provably exercises the retry path and still always persists —
	// which is what lets the soak assert zero duplicated executions.
	CacheFailFirst int
	// CacheFailRate additionally fails cache-write attempts at this rate
	// from the seeded stream (0 disables).
	CacheFailRate float64
	// CancelRate cancels a request's wait mid-flight at this rate (0
	// disables): the waiter gets a cancellation error; the simulation it
	// was waiting on is never cancelled and still lands in the cache.
	CancelRate float64
	// CancelAfter delays an injected cancellation (default: immediate).
	CancelAfter time.Duration

	mu       sync.Mutex
	rng      uint64
	seeded   bool
	execs    int
	putFails map[string]int
}

// next advances the splitmix64 stream (the internal/fault generator).
func (f *Faults) next() uint64 {
	if !f.seeded {
		f.rng = f.Seed
		f.seeded = true
	}
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// roll draws a uniform [0,1) decision from the stream.
func (f *Faults) roll() float64 {
	return float64(f.next()>>11) / float64(1<<53)
}

// SlowJob reports how long the next led execution should stall (0 = run
// at full speed).
func (f *Faults) SlowJob() time.Duration {
	if f == nil || f.SlowEvery <= 0 {
		return 0
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	f.execs++
	if f.execs%f.SlowEvery == 0 {
		return f.SlowDelay
	}
	return 0
}

// CacheWriteFail reports whether this cache-write attempt for key should
// fail.
func (f *Faults) CacheWriteFail(key string) bool {
	if f == nil {
		return false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.CacheFailFirst > 0 {
		if f.putFails == nil {
			f.putFails = make(map[string]int)
		}
		if f.putFails[key] < f.CacheFailFirst {
			f.putFails[key]++
			return true
		}
	}
	return f.CacheFailRate > 0 && f.roll() < f.CacheFailRate
}

// CancelRequest reports whether this request's wait should be cancelled
// mid-flight, and after how long.
func (f *Faults) CancelRequest() (time.Duration, bool) {
	if f == nil || f.CancelRate <= 0 {
		return 0, false
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.roll() < f.CancelRate {
		return f.CancelAfter, true
	}
	return 0, false
}
