package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetsim/internal/kernels"
	"hetsim/internal/paper"
	"hetsim/internal/sweep"
)

// batchBody builds an explicit-spec batch request over the named kernels
// (testBuild keys them "test|<kernel>").
func batchBody(t *testing.T, tenant string, names ...string) string {
	t.Helper()
	specs := make([]paper.JobSpec, len(names))
	for i, n := range names {
		specs[i] = paper.JobSpec{Kernel: n, Seed: 1, Config: "plain"}
	}
	b, err := json.Marshal(paper.BatchRequest{Tenant: tenant, Specs: specs})
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// postBatch submits a batch and fully consumes the response: on 200 the
// decoded NDJSON records, otherwise the JSON refusal.
func postBatch(t *testing.T, ts *httptest.Server, payload string) (int, http.Header, []paper.BatchRecord, paper.JobResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/batch", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		var jr paper.JobResponse
		if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
			t.Fatalf("undecodable batch refusal (status %d): %v", resp.StatusCode, err)
		}
		return resp.StatusCode, resp.Header, nil, jr
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("batch stream Content-Type = %q", ct)
	}
	var recs []paper.BatchRecord
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	for sc.Scan() {
		if len(bytes.TrimSpace(sc.Bytes())) == 0 {
			continue
		}
		var rec paper.BatchRecord
		if err := json.Unmarshal(sc.Bytes(), &rec); err != nil {
			t.Fatalf("undecodable batch record %q: %v", sc.Text(), err)
		}
		recs = append(recs, rec)
	}
	if err := sc.Err(); err != nil {
		t.Fatalf("batch stream: %v", err)
	}
	return resp.StatusCode, resp.Header, recs, paper.JobResponse{}
}

// lastSummary asserts the stream's terminal record is a summary and
// returns it.
func lastSummary(t *testing.T, recs []paper.BatchRecord) *paper.BatchSummary {
	t.Helper()
	if len(recs) == 0 {
		t.Fatal("empty batch stream")
	}
	last := recs[len(recs)-1]
	if last.Type != paper.BatchTypeSummary || last.Summary == nil {
		t.Fatalf("stream did not end with a summary: %+v", last)
	}
	return last.Summary
}

// TestBatchStream pins the happy path: one submission, one job record
// per point in completion order, a terminal summary whose accounting
// adds up, and a second (warm) submission served from the cache without
// re-execution.
func TestBatchStream(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	build := testBuild(map[string]func() (json.RawMessage, error){
		"k1": func() (json.RawMessage, error) { execs.Add(1); return json.RawMessage(`{"v":1}`), nil },
		"k2": func() (json.RawMessage, error) { execs.Add(1); return json.RawMessage(`{"v":2}`), nil },
		"k3": func() (json.RawMessage, error) { execs.Add(1); return json.RawMessage(`{"v":3}`), nil },
	})
	srv := New(Config{Build: build, Cache: cache, Workers: 2, Queue: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, recs, _ := postBatch(t, ts, batchBody(t, "lab", "k1", "k2", "k3"))
	if code != http.StatusOK {
		t.Fatalf("batch: code %d", code)
	}
	got := map[int]string{}
	for _, rec := range recs[:len(recs)-1] {
		if rec.Type != paper.BatchTypeJob || rec.Job == nil {
			t.Fatalf("unexpected mid-stream record: %+v", rec)
		}
		if rec.Job.Error != "" {
			t.Fatalf("job %d failed: %s", rec.Job.Index, rec.Job.Error)
		}
		got[rec.Job.Index] = string(rec.Job.Result)
	}
	want := map[int]string{0: `{"v":1}`, 1: `{"v":2}`, 2: `{"v":3}`}
	if len(got) != 3 {
		t.Fatalf("job records = %v", got)
	}
	for i, w := range want {
		if got[i] != w {
			t.Fatalf("job %d result = %s, want %s", i, got[i], w)
		}
	}
	sum := lastSummary(t, recs)
	if sum.Jobs != 3 || sum.Completed != 3 || sum.Failed != 0 || sum.Pending != 0 || sum.Executed != 3 {
		t.Fatalf("cold summary = %+v", sum)
	}
	if execs.Load() != 3 {
		t.Fatalf("executed %d, want 3", execs.Load())
	}

	// Warm pass: same campaign, zero simulations.
	_, _, recs2, _ := postBatch(t, ts, batchBody(t, "lab", "k1", "k2", "k3"))
	sum2 := lastSummary(t, recs2)
	if sum2.Completed != 3 || sum2.Cached != 3 || sum2.Executed != 0 {
		t.Fatalf("warm summary = %+v", sum2)
	}
	if execs.Load() != 3 {
		t.Fatalf("warm pass re-executed: %d", execs.Load())
	}
	st := srv.Stats()
	if st.BatchRequests != 2 || st.BatchJobs != 6 || st.BatchCompleted != 6 ||
		st.BatchFailed != 0 || st.BatchCursorCuts != 0 {
		t.Fatalf("batch stats = %+v", st)
	}
}

// TestBatchSuiteExpansion: a suite-form submission expands server-side
// into exactly the specs paper.SuiteSpecs produces — same points, same
// matrix order by index.
func TestBatchSuiteExpansion(t *testing.T) {
	var mu sync.Mutex
	seen := make(map[string]int)
	build := func(spec paper.JobSpec) (sweep.Job[json.RawMessage], error) {
		key := fmt.Sprintf("suite|%s|%s|%v|%d|%v", spec.Kernel, spec.Config, spec.Small, spec.Seed, spec.Observe)
		return sweep.Job[json.RawMessage]{Key: key, Run: func() (json.RawMessage, error) {
			mu.Lock()
			seen[key]++
			mu.Unlock()
			return json.RawMessage(`{}`), nil
		}}, nil
	}
	srv := New(Config{Build: build, Workers: 4, Queue: 512})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, recs, _ := postBatch(t, ts, `{"suite":"table1","small":true}`)
	if code != http.StatusOK {
		t.Fatalf("suite batch: code %d", code)
	}
	wantSpecs, err := paper.SuiteSpecs("table1", true, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(kernels.SmallSuite()) * len(paper.SpecConfigs()); len(wantSpecs) != n {
		t.Fatalf("SuiteSpecs produced %d specs, want %d", len(wantSpecs), n)
	}
	sum := lastSummary(t, recs)
	if sum.Jobs != len(wantSpecs) || sum.Completed != len(wantSpecs) {
		t.Fatalf("summary = %+v, want %d jobs", sum, len(wantSpecs))
	}
	// Every expanded point keys exactly like the client-side expansion,
	// and each executed once.
	for i, spec := range wantSpecs {
		key := fmt.Sprintf("suite|%s|%s|%v|%d|%v", spec.Kernel, spec.Config, spec.Small, spec.Seed, spec.Observe)
		mu.Lock()
		n := seen[key]
		mu.Unlock()
		if n != 1 {
			t.Fatalf("spec %d (%s) executed %d times", i, key, n)
		}
	}
}

// TestBatchValidation pins the refusal envelope: everything wrong with a
// batch is a diagnosable pre-stream status, never a torn stream.
func TestBatchValidation(t *testing.T) {
	srv := New(Config{Build: testBuild(nil), Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	cases := []struct {
		name string
		body string
		want int
	}{
		{"garbage", `{{{`, http.StatusBadRequest},
		{"empty", `{}`, http.StatusBadRequest},
		{"both forms", `{"suite":"table1","specs":[{"kernel":"k","seed":1,"config":"plain"}]}`, http.StatusBadRequest},
		{"unknown suite", `{"suite":"nope"}`, http.StatusBadRequest},
		{"bad spec", `{"specs":[{"kernel":"k","seed":1,"config":"warp"}]}`, http.StatusBadRequest},
	}
	for _, tc := range cases {
		code, _, _, jr := postBatch(t, ts, tc.body)
		if code != tc.want {
			t.Errorf("%s: code %d, want %d (%+v)", tc.name, code, tc.want, jr)
		}
	}
	// A spec the builder rejects names its index.
	code, _, _, jr := postBatch(t, ts, batchBody(t, "", "ok", "reject-me"))
	if code != http.StatusBadRequest || !strings.Contains(jr.Error, "batch spec 1") {
		t.Fatalf("builder rejection: code=%d resp=%+v", code, jr)
	}
	// Method discipline.
	resp, err := http.Get(ts.URL + "/v1/batch")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/batch: code %d", resp.StatusCode)
	}
}

// TestBatchQuotaWholeBatch: admission charges the full job list against
// the tenant quota — a batch that does not fit is refused whole, and
// releases its charge when it completes.
func TestBatchQuotaWholeBatch(t *testing.T) {
	srv := New(Config{Build: testBuild(nil), Workers: 2, Queue: 16, TenantQuota: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, hdr, _, jr := postBatch(t, ts, batchBody(t, "lab", "a", "b", "c"))
	if code != http.StatusTooManyRequests || !jr.Retryable || hdr.Get("Retry-After") == "" {
		t.Fatalf("over-quota batch: code=%d resp=%+v", code, jr)
	}
	if st := srv.Stats(); st.RejectedQuota != 1 {
		t.Fatalf("stats = %+v", st)
	}
	// A fitting batch is admitted, and its release leaves the quota clean.
	for i := 0; i < 2; i++ {
		code, _, recs, _ := postBatch(t, ts, batchBody(t, "lab", "a", "b"))
		if code != http.StatusOK || lastSummary(t, recs).Completed != 2 {
			t.Fatalf("fitting batch round %d: code %d", i, code)
		}
	}
}

// TestLimiterBatchAdmission pins admitN's two-sided policy: the quota is
// strict all-or-nothing, while the rate bucket admits on one available
// token and overdrafts — so a batch larger than the burst is never
// refused forever, but the tenant pays for it in wait afterwards.
func TestLimiterBatchAdmission(t *testing.T) {
	l := newLimiter(1, 2, 10)
	clock := time.Unix(2000, 0)
	l.now = func() time.Time { return clock }

	// Burst 2, batch of 5: admitted (>= 1 token), bucket goes to -3.
	if _, ok := l.admitN("a", 5); !ok {
		t.Fatal("overdraft batch refused")
	}
	// The next admission must wait out the overdraft: (1 - (-3))/rate = 4s.
	wait, ok := l.admit("a")
	if ok || wait < 3500*time.Millisecond || wait > 4500*time.Millisecond {
		t.Fatalf("post-overdraft admit: ok=%v wait=%v", ok, wait)
	}
	// After the wait the bucket has recovered exactly one token.
	clock = clock.Add(4 * time.Second)
	if _, ok := l.admit("a"); !ok {
		t.Fatal("admit after overdraft recovery refused")
	}
	l.releaseN("a", 6)

	// Quota is strict: 10-slot quota, 6 in flight, batch of 5 refused
	// whole with wait 0 (retry when slots free), batch of 4 fits. The
	// hour-long refill isolates the quota side from the rate bucket.
	clock = clock.Add(time.Hour)
	if _, ok := l.admitN("a", 6); !ok {
		t.Fatal("6-slot batch refused")
	}
	wait, ok = l.admitN("a", 5)
	if ok || wait != 0 {
		t.Fatalf("over-quota batch: ok=%v wait=%v", ok, wait)
	}
	clock = clock.Add(time.Hour)
	if _, ok := l.admitN("a", 4); !ok {
		t.Fatal("fitting 4-slot batch refused")
	}
	l.releaseN("a", 10)
	clock = clock.Add(time.Hour)
	if _, ok := l.admitN("a", 10); !ok {
		t.Fatal("full-quota batch after release refused")
	}
}

// TestBatchDedupWithSingleton: a batch point and a concurrent singleton
// request for the same key coalesce onto one simulation — the batch path
// rides the same single-flight layer, so exactly-once holds across the
// two submission forms.
func TestBatchDedupWithSingleton(t *testing.T) {
	gate := make(chan struct{})
	leading := make(chan struct{})
	var execs atomic.Int64
	build := testBuild(map[string]func() (json.RawMessage, error){
		"slow": func() (json.RawMessage, error) {
			execs.Add(1)
			close(leading)
			<-gate
			return json.RawMessage(`{"ok":true}`), nil
		},
	})
	srv := New(Config{Build: build, Workers: 2, Queue: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	recsCh := make(chan []paper.BatchRecord, 1)
	go func() {
		_, _, recs, _ := postBatch(t, ts, batchBody(t, "", "slow"))
		recsCh <- recs
	}()
	<-leading // the batch leads the flight
	done := make(chan paper.JobResponse, 1)
	go func() {
		_, _, jr := postJob(t, ts, body("slow", "", 0))
		done <- jr
	}()
	waitFor(t, "singleton to coalesce onto the batch's flight", func() bool {
		return srv.flight.Stats().Shared == 1
	})
	close(gate)
	jr := <-done
	if !jr.Shared || string(jr.Result) != `{"ok":true}` {
		t.Fatalf("singleton waiter: %+v", jr)
	}
	recs := <-recsCh
	if sum := lastSummary(t, recs); sum.Completed != 1 || sum.Executed != 1 {
		t.Fatalf("batch summary = %+v", sum)
	}
	if execs.Load() != 1 {
		t.Fatalf("shared key executed %d times", execs.Load())
	}
}

// TestBatchDrainCursor is the drain-semantics drill: a drain begun
// mid-batch lets the in-flight point finish (and land in the cache),
// never claims the rest, and ends the stream with a cursor naming
// exactly the unfinished keys. Re-submitting the same campaign against a
// fresh server over the same cache re-executes exactly the cursor's jobs
// — the completed ones are cache hits.
func TestBatchDrainCursor(t *testing.T) {
	dir := t.TempDir()
	cache, err := sweep.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	leading := make(chan struct{})
	var execs atomic.Int64
	runs := map[string]func() (json.RawMessage, error){
		"fast": func() (json.RawMessage, error) { execs.Add(1); return json.RawMessage(`{"v":0}`), nil },
		"slow": func() (json.RawMessage, error) {
			execs.Add(1)
			close(leading)
			<-gate
			return json.RawMessage(`{"v":1}`), nil
		},
		"never": func() (json.RawMessage, error) { execs.Add(1); return json.RawMessage(`{"v":2}`), nil },
	}
	srv := New(Config{Build: testBuild(runs), Cache: cache, Workers: 1, Queue: 16})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	recsCh := make(chan []paper.BatchRecord, 1)
	go func() {
		// Workers:1 claims in index order: fast completes, slow blocks,
		// never stays unclaimed when the drain lands.
		_, _, recs, _ := postBatch(t, ts, batchBody(t, "", "fast", "slow", "never"))
		recsCh <- recs
	}()
	<-leading
	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitFor(t, "drain to start", func() bool { return srv.State() == StateDraining })
	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain with a batch in flight: %v", err)
	}
	recs := <-recsCh

	// The stream: fast and slow completed, a cursor names "never", the
	// summary balances and reports the server draining.
	var cursor []string
	completed := map[string]bool{}
	for _, rec := range recs {
		switch rec.Type {
		case paper.BatchTypeJob:
			if rec.Job.Error != "" {
				t.Fatalf("job record with error: %+v", rec.Job)
			}
			completed[rec.Job.Key] = true
		case paper.BatchTypeCursor:
			cursor = rec.Pending
		}
	}
	if !completed["test|fast"] || !completed["test|slow"] || len(completed) != 2 {
		t.Fatalf("completed = %v", completed)
	}
	if len(cursor) != 1 || cursor[0] != "test|never" {
		t.Fatalf("cursor = %v, want [test|never]", cursor)
	}
	sum := lastSummary(t, recs)
	if sum.Jobs != 3 || sum.Completed != 2 || sum.Pending != 1 || sum.State != "draining" {
		t.Fatalf("summary = %+v", sum)
	}
	if st := srv.Stats(); st.BatchCursorCuts != 1 || st.BatchCompleted != 2 {
		t.Fatalf("stats = %+v", st)
	}
	if execs.Load() != 2 {
		t.Fatalf("cut batch executed %d points, want 2", execs.Load())
	}

	// Resume against a fresh server over the same cache: the whole
	// campaign re-submitted costs exactly the cursor's one simulation.
	cache2, err := sweep.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	srv2 := New(Config{Build: testBuild(runs), Cache: cache2, Workers: 1, Queue: 16})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	code, _, recs2, _ := postBatch(t, ts2, batchBody(t, "", "fast", "slow", "never"))
	if code != http.StatusOK {
		t.Fatalf("resume batch: code %d", code)
	}
	sum2 := lastSummary(t, recs2)
	if sum2.Completed != 3 || sum2.Cached != 2 || sum2.Executed != 1 || sum2.Pending != 0 {
		t.Fatalf("resume summary = %+v", sum2)
	}
	if st := srv2.Stats(); st.CacheHits != 2 || st.Executed != 1 {
		t.Fatalf("resume stats = %+v", st)
	}
	if execs.Load() != 3 {
		t.Fatalf("resume executed %d total, want 3 (exactly the missing point)", execs.Load())
	}
}

// cutWriter aborts the connection after cutAt body writes — a proxy
// dying mid-stream, as seen by the client.
type cutWriter struct {
	http.ResponseWriter
	writes, cutAt int
}

func (c *cutWriter) Write(p []byte) (int, error) {
	c.writes++
	if c.writes > c.cutAt {
		panic(http.ErrAbortHandler)
	}
	return c.ResponseWriter.Write(p)
}

func (c *cutWriter) Flush() {
	if f, ok := c.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// TestBatchClientReconnect: a connection killed after two job records is
// resumed by RunBatch — one reconnect, only the incomplete points
// re-submitted, every key still executed exactly once.
func TestBatchClientReconnect(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var mu sync.Mutex
	execs := make(map[string]int)
	build := func(spec paper.JobSpec) (sweep.Job[json.RawMessage], error) {
		key := "test|" + spec.Kernel
		payload := json.RawMessage(fmt.Sprintf(`{"kernel":%q}`, spec.Kernel))
		return sweep.Job[json.RawMessage]{Key: key, Run: func() (json.RawMessage, error) {
			mu.Lock()
			execs[key]++
			mu.Unlock()
			return payload, nil
		}}, nil
	}
	srv := New(Config{Build: build, Cache: cache, Workers: 4, Queue: 64})
	inner := srv.Handler()
	var cutDone atomic.Bool
	ts := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path == "/v1/batch" && cutDone.CompareAndSwap(false, true) {
			w = &cutWriter{ResponseWriter: w, cutAt: 2}
		}
		inner.ServeHTTP(w, r)
	}))
	defer ts.Close()

	specs := make([]paper.JobSpec, 4)
	for i := range specs {
		specs[i] = paper.JobSpec{Kernel: fmt.Sprintf("r%d", i), Seed: 1, Config: "plain"}
	}
	c := &Client{BaseURL: ts.URL, Tenant: "cut", MaxWait: 50 * time.Millisecond}
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	raws, err := c.RunBatch(ctx, specs)
	if err != nil {
		t.Fatal(err)
	}
	for i, raw := range raws {
		want := fmt.Sprintf(`{"kernel":%q}`, specs[i].Kernel)
		if string(raw) != want {
			t.Fatalf("result %d = %s, want %s", i, raw, want)
		}
	}
	if c.Reconnects() == 0 {
		t.Fatal("cut stream resumed without a counted reconnect")
	}
	mu.Lock()
	for key, n := range execs {
		if n != 1 {
			t.Errorf("key %s executed %d times across the cut", key, n)
		}
	}
	mu.Unlock()
	if st := srv.Stats(); st.BatchRequests < 2 {
		t.Fatalf("expected a re-submission: %+v", st)
	}
}

// TestBatchHeartbeat: an idle stream (one slow point) carries keepalive
// records at the configured cadence.
func TestBatchHeartbeat(t *testing.T) {
	build := testBuild(map[string]func() (json.RawMessage, error){
		"slow": func() (json.RawMessage, error) {
			time.Sleep(120 * time.Millisecond)
			return json.RawMessage(`{}`), nil
		},
	})
	srv := New(Config{Build: build, Workers: 1, Heartbeat: 15 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, recs, _ := postBatch(t, ts, batchBody(t, "", "slow"))
	if code != http.StatusOK {
		t.Fatalf("batch: code %d", code)
	}
	beats := 0
	for _, rec := range recs {
		if rec.Type == paper.BatchTypeHeartbeat {
			beats++
		}
	}
	if beats == 0 {
		t.Fatal("no heartbeat on an idle stream")
	}
	if sum := lastSummary(t, recs); sum.Completed != 1 {
		t.Fatalf("summary = %+v", sum)
	}
	if st := srv.Stats(); st.BatchHeartbeats == 0 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestBatchRetryableFailureRecord: a point that exhausts the server's
// transient-retry budget is reported retryable and left to the cursor;
// a terminal point is reported final and counted failed.
func TestBatchFailureTaxonomy(t *testing.T) {
	build := testBuild(map[string]func() (json.RawMessage, error){
		"flaky": func() (json.RawMessage, error) { return nil, fmt.Errorf("transient hiccup") },
	})
	srv := New(Config{Build: build, Workers: 1, Retry: RetryPolicy{Max: 1, Base: time.Millisecond, Cap: time.Millisecond}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	_, _, recs, _ := postBatch(t, ts, batchBody(t, "", "flaky"))
	var jobRec *paper.BatchJob
	var cursor []string
	for _, rec := range recs {
		switch rec.Type {
		case paper.BatchTypeJob:
			jobRec = rec.Job
		case paper.BatchTypeCursor:
			cursor = rec.Pending
		}
	}
	if jobRec == nil || !jobRec.Retryable || jobRec.Error == "" {
		t.Fatalf("retryable failure record = %+v", jobRec)
	}
	if len(cursor) != 1 || cursor[0] != "test|flaky" {
		t.Fatalf("cursor = %v", cursor)
	}
	sum := lastSummary(t, recs)
	if sum.Completed != 0 || sum.Failed != 0 || sum.Pending != 1 {
		t.Fatalf("summary = %+v", sum)
	}

	// Terminal: a job timeout fails the point for good.
	srv2 := New(Config{Build: testBuild(map[string]func() (json.RawMessage, error){
		"stuck": func() (json.RawMessage, error) {
			time.Sleep(200 * time.Millisecond)
			return json.RawMessage(`{}`), nil
		},
	}), Workers: 1, JobTimeout: 10 * time.Millisecond})
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	_, _, recs2, _ := postBatch(t, ts2, batchBody(t, "", "stuck"))
	sum2 := lastSummary(t, recs2)
	if sum2.Failed != 1 || sum2.Pending != 0 || sum2.Completed != 0 {
		t.Fatalf("terminal summary = %+v", sum2)
	}
	var term *paper.BatchJob
	for _, rec := range recs2 {
		if rec.Type == paper.BatchTypeJob {
			term = rec.Job
		}
	}
	if term == nil || term.Retryable || term.Error == "" {
		t.Fatalf("terminal record = %+v", term)
	}
}
