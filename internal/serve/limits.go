package serve

import (
	"sync"
	"time"
)

// limiter is the per-tenant admission policy: a token bucket (sustained
// rate + burst) plus an in-flight quota. Buckets are created lazily per
// tenant and refill continuously; a drained bucket yields the wait until
// the next token, which the server surfaces as Retry-After.
type limiter struct {
	rate  float64 // tokens per second; <= 0 disables rate limiting
	burst float64 // bucket capacity
	quota int     // max in-flight requests per tenant; <= 0 disables

	mu      sync.Mutex
	buckets map[string]*bucket
	now     func() time.Time // test seam
}

type bucket struct {
	tokens   float64
	last     time.Time
	inflight int
}

func newLimiter(rate float64, burst, quota int) *limiter {
	b := float64(burst)
	if b < 1 {
		b = 1
	}
	return &limiter{rate: rate, burst: b, quota: quota,
		buckets: make(map[string]*bucket), now: time.Now}
}

// admit charges one token and one in-flight slot to the tenant. On
// success the caller must release(). On refusal it returns the wait
// after which a retry can succeed (0 when only the quota blocks —
// retry once in-flight work completes).
func (l *limiter) admit(tenant string) (retryAfter time.Duration, ok bool) {
	return l.admitN(tenant, 1)
}

// admitN charges n in-flight slots and n rate tokens to the tenant as
// one all-or-nothing decision: a batch counts as its whole job list, so
// packaging points into one request never sidesteps a tenant's budget.
// The in-flight quota is strict — a batch that cannot fit is refused
// whole (wait 0: retry once in-flight work completes). The rate bucket
// instead admits on at least one available token and lets the charge
// drive it negative: a bucket whose burst can never hold n tokens would
// otherwise refuse the batch forever, while the overdraft pushes the
// tenant's next admission out by the full n/rate — the long-run rate
// holds exactly. On success the caller must releaseN(tenant, n).
func (l *limiter) admitN(tenant string, n int) (retryAfter time.Duration, ok bool) {
	if l == nil {
		return 0, true
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	b := l.buckets[tenant]
	if b == nil {
		b = &bucket{tokens: l.burst, last: l.now()}
		l.buckets[tenant] = b
	}
	if l.quota > 0 && b.inflight+n > l.quota {
		return 0, false
	}
	if l.rate > 0 {
		now := l.now()
		b.tokens += now.Sub(b.last).Seconds() * l.rate
		if b.tokens > l.burst {
			b.tokens = l.burst
		}
		b.last = now
		if b.tokens < 1 {
			return time.Duration((1 - b.tokens) / l.rate * float64(time.Second)), false
		}
		b.tokens -= float64(n)
	}
	b.inflight += n
	return 0, true
}

// release returns the tenant's in-flight slot.
func (l *limiter) release(tenant string) { l.releaseN(tenant, 1) }

// releaseN returns n of the tenant's in-flight slots.
func (l *limiter) releaseN(tenant string, n int) {
	if l == nil {
		return
	}
	l.mu.Lock()
	defer l.mu.Unlock()
	if b := l.buckets[tenant]; b != nil {
		b.inflight -= n
		if b.inflight < 0 {
			b.inflight = 0
		}
	}
}
