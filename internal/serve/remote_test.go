package serve

import (
	"bytes"
	"context"
	"net/http/httptest"
	"testing"
	"time"

	"hetsim/internal/kernels"
	"hetsim/internal/paper"
	"hetsim/internal/sweep"
)

// renderTables renders every artifact `hetexp -remote` can produce from
// a measurement set, for byte comparison.
func renderTables(t *testing.T, m *paper.Measurements) []byte {
	t.Helper()
	var buf bytes.Buffer
	paper.RenderTable1(&buf, m.Table1())
	pts, err := m.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	paper.RenderFigure3(&buf, pts)
	paper.RenderFigure4(&buf, m.Figure4())
	paper.RenderFigure5a(&buf, m.Figure5a())
	return buf.Bytes()
}

// TestRemoteEquivalence is the acceptance drill for `hetexp -remote`:
// the paper sweep measured through a real hetsimd stack — HTTP client,
// wire codec, single-flight server, run cache — renders byte-identical
// tables to local execution, against a cold server cache and again
// against a warm one.
func TestRemoteEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("measures the reduced suite three times")
	}
	suite := kernels.SmallSuite()[:2]
	local, err := paper.MeasureWith(sweep.New(sweep.Config{}), suite)
	if err != nil {
		t.Fatal(err)
	}
	want := renderTables(t, local)

	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	srv := New(Config{Cache: cache, Workers: 4, Queue: 64})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	client := &Client{BaseURL: ts.URL, Tenant: "equiv"}
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	defer cancel()

	cold, err := paper.MeasureRemote(ctx, client.RunSpec, suite, true, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderTables(t, cold); !bytes.Equal(got, want) {
		t.Fatalf("cold remote tables differ from local:\n%s\nvs\n%s", got, want)
	}
	st := srv.Stats()
	if st.Executed == 0 {
		t.Fatalf("cold pass executed nothing: %+v", st)
	}

	warm, err := paper.MeasureRemote(ctx, client.RunSpec, suite, true, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderTables(t, warm); !bytes.Equal(got, want) {
		t.Fatalf("warm remote tables differ from local:\n%s\nvs\n%s", got, want)
	}
	st2 := srv.Stats()
	if st2.Executed != st.Executed {
		t.Fatalf("warm pass re-executed: %d -> %d simulations", st.Executed, st2.Executed)
	}
	if st2.CacheHits == 0 {
		t.Fatalf("warm pass missed the cache: %+v", st2)
	}

	// Batch leg: the same campaign as one streamed /v1/batch submission
	// per pass — still byte-identical against cold and warm cache, but a
	// whole campaign now costs one HTTP request instead of one per point.
	bcache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	bsrv := New(Config{Cache: bcache, Workers: 4, Queue: 64})
	bts := httptest.NewServer(bsrv.Handler())
	defer bts.Close()
	bclient := &Client{BaseURL: bts.URL, Tenant: "equiv"}

	coldB, err := paper.MeasureRemoteBatch(ctx, bclient.RunBatch, suite, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderTables(t, coldB); !bytes.Equal(got, want) {
		t.Fatalf("cold batch tables differ from local:\n%s\nvs\n%s", got, want)
	}
	warmB, err := paper.MeasureRemoteBatch(ctx, bclient.RunBatch, suite, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if got := renderTables(t, warmB); !bytes.Equal(got, want) {
		t.Fatalf("warm batch tables differ from local:\n%s\nvs\n%s", got, want)
	}
	bst := bsrv.Stats()
	points := uint64(len(suite) * len(paper.SpecConfigs()))
	if bst.Requests != 2 || bst.BatchRequests != 2 {
		t.Fatalf("two batch campaigns cost %d HTTP requests (%d batches), want 2: %+v",
			bst.Requests, bst.BatchRequests, bst)
	}
	if bclient.Reconnects() != 0 {
		t.Fatalf("clean streams needed %d reconnects", bclient.Reconnects())
	}
	if bst.Executed != points || bst.CacheHits != points ||
		bst.BatchJobs != 2*points || bst.BatchCompleted != 2*points {
		t.Fatalf("batch accounting: %+v (want %d executed, %d cached)", bst, points, points)
	}
	// The per-point server ran the identical campaign: its request count
	// is the old cost, one per point per pass.
	if st2.Requests != 2*points {
		t.Fatalf("per-point passes cost %d requests, want %d", st2.Requests, 2*points)
	}
}
