package serve

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"hetsim/internal/paper"
)

// Client is the HTTP client side of the service: it submits keyed job
// specs, honors the server's backpressure (429/503 + Retry-After become
// bounded waits, not errors), re-submits retryable failures, and
// propagates its context's deadline to the server. Its zero value plus a
// BaseURL is usable; Client.RunSpec is a paper.SpecRunner, which is how
// `hetexp -remote` plugs a server under paper.MeasureRemote.
type Client struct {
	// BaseURL roots the service, e.g. "http://127.0.0.1:9966".
	BaseURL string
	// Tenant attributes requests for rate limiting (empty = anonymous).
	Tenant string
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds submissions per job, backpressure waits
	// included (<= 0 selects 10).
	MaxAttempts int
	// MaxWait caps a single Retry-After or backoff wait (<= 0: 5s).
	MaxWait time.Duration
	// HedgeAfter, when > 0, launches one backup submission for any
	// request still unanswered after this long, and takes whichever
	// answer lands first. Safe against double work by construction: the
	// server's single-flight layer coalesces the backup onto the
	// primary's in-flight simulation, so a hedge costs one extra HTTP
	// round trip, never a second simulation. Backups carry the
	// HedgedHeader so the server can count them. Zero disables hedging.
	HedgeAfter time.Duration

	hedges atomic.Uint64
}

// HedgedHeader marks a backup (hedged) submission, letting the server
// report how much of its traffic is hedges (Stats.HedgedRequests).
const HedgedHeader = "X-Hetsim-Hedged"

// Hedges reports how many backup submissions this client has launched.
func (c *Client) Hedges() uint64 { return c.hedges.Load() }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// RunSpec submits one measurement point and returns the raw result
// bytes. It retries backpressure answers and retryable failures with
// bounded waits; a terminal failure (bad spec, panicked or timed-out
// simulation) or an exhausted budget returns an error.
func (c *Client) RunSpec(ctx context.Context, spec paper.JobSpec) (json.RawMessage, error) {
	attempts := c.MaxAttempts
	if attempts <= 0 {
		attempts = 10
	}
	maxWait := c.MaxWait
	if maxWait <= 0 {
		maxWait = 5 * time.Second
	}
	var lastErr error
	for n := 0; n < attempts; n++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		raw, wait, err := c.submitHedged(ctx, spec)
		if err == nil {
			return raw, nil
		}
		lastErr = err
		if wait < 0 { // terminal
			return nil, err
		}
		if wait == 0 { // transport or retryable failure: backoff
			wait = time.Duration(50*(n+1)) * time.Millisecond
		}
		if wait > maxWait {
			wait = maxWait
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("serve: job not accepted after %d attempts: %w", attempts, lastErr)
}

// submitHedged performs one logical submission, hedged: the primary
// round trip starts immediately, and if it is still unanswered after
// HedgeAfter a single backup is launched; the first success wins. When
// both legs fail, the retryable error is preferred over the terminal one
// (ties go to whichever landed first) so RunSpec's loop keeps the better
// guidance. The losing leg is left to finish on the shared context —
// cancelling it could tear down the winner's transport connection.
func (c *Client) submitHedged(ctx context.Context, spec paper.JobSpec) (json.RawMessage, time.Duration, error) {
	if c.HedgeAfter <= 0 {
		return c.submit(ctx, spec, false)
	}
	type outcome struct {
		raw  json.RawMessage
		wait time.Duration
		err  error
	}
	ch := make(chan outcome, 2) // buffered: the losing leg must never block
	launch := func(hedged bool) {
		go func() {
			raw, wait, err := c.submit(ctx, spec, hedged)
			ch <- outcome{raw, wait, err}
		}()
	}
	launch(false)
	timer := time.NewTimer(c.HedgeAfter)
	defer timer.Stop()
	hedged := false
	var first *outcome
	for {
		select {
		case o := <-ch:
			if o.err == nil {
				return o.raw, 0, nil
			}
			if !hedged || first != nil {
				// Sole outstanding leg failed (no backup launched, or this
				// is the second failure): pick the better error.
				if first != nil && first.wait >= 0 && o.wait < 0 {
					return first.raw, first.wait, first.err
				}
				return o.raw, o.wait, o.err
			}
			first = &o // backup still in flight: give it its chance
		case <-timer.C:
			if !hedged {
				hedged = true
				c.hedges.Add(1)
				launch(true)
			}
		case <-ctx.Done():
			return nil, -1, ctx.Err()
		}
	}
}

// submit performs one round trip. wait tells RunSpec how to continue on
// error: < 0 terminal, 0 retry after default backoff, > 0 retry after
// the server-requested wait. hedged marks the request as a backup.
func (c *Client) submit(ctx context.Context, spec paper.JobSpec, hedged bool) (raw json.RawMessage, wait time.Duration, err error) {
	jreq := paper.JobRequest{Tenant: c.Tenant, Spec: spec}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		jreq.TimeoutMS = ms
	}
	body, err := json.Marshal(jreq)
	if err != nil {
		return nil, -1, err
	}
	url := strings.TrimSuffix(c.BaseURL, "/") + "/v1/jobs"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, -1, err
	}
	req.Header.Set("Content-Type", "application/json")
	if hedged {
		req.Header.Set(HedgedHeader, "1")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, -1, ctx.Err()
		}
		return nil, 0, err // transport errors are worth a retry
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, 0, err
	}
	var jresp paper.JobResponse
	if err := json.Unmarshal(b, &jresp); err != nil {
		return nil, -1, fmt.Errorf("serve: undecodable response (status %d): %w", resp.StatusCode, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return jresp.Result, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable:
		return nil, retryAfterWait(resp), fmt.Errorf("serve: backpressure (%d): %s", resp.StatusCode, jresp.Error)
	case jresp.Retryable:
		return nil, 0, fmt.Errorf("serve: retryable failure (%d): %s", resp.StatusCode, jresp.Error)
	default:
		return nil, -1, fmt.Errorf("serve: job failed (%d): %s", resp.StatusCode, jresp.Error)
	}
}

// retryAfterWait parses the Retry-After header (seconds form).
func retryAfterWait(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 1 {
		return time.Second
	}
	return time.Duration(secs) * time.Second
}
