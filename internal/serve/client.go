package serve

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptrace"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"hetsim/internal/paper"
)

// Client is the HTTP client side of the service: it submits keyed job
// specs, honors the server's backpressure (429/503 + Retry-After become
// bounded waits, not errors), re-submits retryable failures, and
// propagates its context's deadline to the server. Its zero value plus a
// BaseURL is usable; Client.RunSpec is a paper.SpecRunner, which is how
// `hetexp -remote` plugs a server under paper.MeasureRemote.
type Client struct {
	// BaseURL roots the service, e.g. "http://127.0.0.1:9966".
	BaseURL string
	// Tenant attributes requests for rate limiting (empty = anonymous).
	Tenant string
	// HTTP is the transport (nil = http.DefaultClient).
	HTTP *http.Client
	// MaxAttempts bounds submissions per job, backpressure waits
	// included (<= 0 selects 10).
	MaxAttempts int
	// MaxWait caps a single Retry-After or backoff wait (<= 0: 5s).
	MaxWait time.Duration
	// HedgeAfter, when > 0, launches one backup submission for any
	// request still unanswered after this long, and takes whichever
	// answer lands first. Safe against double work by construction: the
	// server's single-flight layer coalesces the backup onto the
	// primary's in-flight simulation, so a hedge costs one extra HTTP
	// round trip, never a second simulation. Backups carry the
	// HedgedHeader so the server can count them. Zero disables hedging.
	HedgeAfter time.Duration

	hedges     atomic.Uint64
	reconnects atomic.Uint64
}

// HedgedHeader marks a backup (hedged) submission, letting the server
// report how much of its traffic is hedges (Stats.HedgedRequests).
const HedgedHeader = "X-Hetsim-Hedged"

// Hedges reports how many backup submissions this client actually wrote
// to the wire. A backup whose request was cancelled before its bytes
// left the transport is not counted, so this number reconciles with the
// server's Stats.HedgedRequests instead of over-reporting hedged
// traffic.
func (c *Client) Hedges() uint64 { return c.hedges.Load() }

// Reconnects reports how many times RunBatch re-submitted the incomplete
// remainder of a campaign after a cut or broken stream.
func (c *Client) Reconnects() uint64 { return c.reconnects.Load() }

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

func (c *Client) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 10
}

func (c *Client) maxWait() time.Duration {
	if c.MaxWait > 0 {
		return c.MaxWait
	}
	return 5 * time.Second
}

// RunSpec submits one measurement point and returns the raw result
// bytes. It retries backpressure answers and retryable failures with
// bounded waits; a terminal failure (bad spec, panicked or timed-out
// simulation) or an exhausted budget returns an error.
func (c *Client) RunSpec(ctx context.Context, spec paper.JobSpec) (json.RawMessage, error) {
	attempts := c.maxAttempts()
	maxWait := c.maxWait()
	var lastErr error
	for n := 0; n < attempts; n++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		raw, wait, err := c.submitHedged(ctx, spec)
		if err == nil {
			return raw, nil
		}
		lastErr = err
		if wait < 0 { // terminal
			return nil, err
		}
		if wait == 0 { // transport or retryable failure: backoff
			wait = time.Duration(50*(n+1)) * time.Millisecond
		}
		if wait > maxWait {
			wait = maxWait
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("serve: job not accepted after %d attempts: %w", attempts, lastErr)
}

// submitHedged performs one logical submission, hedged: the primary
// round trip starts immediately, and if it is still unanswered after
// HedgeAfter a single backup is launched; the first success wins. When
// both legs fail, the retryable error is preferred over the terminal one
// (ties go to whichever landed first) so RunSpec's loop keeps the better
// guidance. The losing leg is left to finish on the shared context —
// cancelling it could tear down the winner's transport connection.
func (c *Client) submitHedged(ctx context.Context, spec paper.JobSpec) (json.RawMessage, time.Duration, error) {
	if c.HedgeAfter <= 0 {
		return c.submit(ctx, spec, false)
	}
	type outcome struct {
		raw  json.RawMessage
		wait time.Duration
		err  error
	}
	ch := make(chan outcome, 2) // buffered: the losing leg must never block
	launch := func(hedged bool) {
		go func() {
			raw, wait, err := c.submit(ctx, spec, hedged)
			ch <- outcome{raw, wait, err}
		}()
	}
	launch(false)
	timer := time.NewTimer(c.HedgeAfter)
	defer timer.Stop()
	hedged := false
	var first *outcome
	for {
		select {
		case o := <-ch:
			if o.err == nil {
				return o.raw, 0, nil
			}
			if !hedged || first != nil {
				// Sole outstanding leg failed (no backup launched, or this
				// is the second failure): pick the better error.
				if first != nil && first.wait >= 0 && o.wait < 0 {
					return first.raw, first.wait, first.err
				}
				return o.raw, o.wait, o.err
			}
			first = &o // backup still in flight: give it its chance
		case <-timer.C:
			if !hedged {
				hedged = true
				// The counter is incremented by the wire trace in submit,
				// not here: a backup cancelled before its bytes left the
				// transport never reached the server and must not be
				// reported as hedged traffic.
				launch(true)
			}
		case <-ctx.Done():
			return nil, -1, ctx.Err()
		}
	}
}

// submit performs one round trip. wait tells RunSpec how to continue on
// error: < 0 terminal, 0 retry after default backoff, > 0 retry after
// the server-requested wait. hedged marks the request as a backup.
func (c *Client) submit(ctx context.Context, spec paper.JobSpec, hedged bool) (raw json.RawMessage, wait time.Duration, err error) {
	jreq := paper.JobRequest{Tenant: c.Tenant, Spec: spec}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		jreq.TimeoutMS = ms
	}
	body, err := json.Marshal(jreq)
	if err != nil {
		return nil, -1, err
	}
	url := strings.TrimSuffix(c.BaseURL, "/") + "/v1/jobs"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return nil, -1, err
	}
	req.Header.Set("Content-Type", "application/json")
	if hedged {
		req.Header.Set(HedgedHeader, "1")
		// Count the hedge only once its request was actually written to
		// the wire: WroteRequest fires per write attempt (the transport
		// may rewrite on a dead connection), hence the Once, and a leg
		// that errored before or during the write never counts — keeping
		// Hedges() reconciled with the server's HedgedRequests.
		var once sync.Once
		req = req.WithContext(httptrace.WithClientTrace(req.Context(), &httptrace.ClientTrace{
			WroteRequest: func(info httptrace.WroteRequestInfo) {
				if info.Err == nil {
					once.Do(func() { c.hedges.Add(1) })
				}
			},
		}))
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, -1, ctx.Err()
		}
		return nil, 0, err // transport errors are worth a retry
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
	if err != nil {
		return nil, 0, err
	}
	var jresp paper.JobResponse
	if err := json.Unmarshal(b, &jresp); err != nil {
		return nil, -1, fmt.Errorf("serve: undecodable response (status %d): %w", resp.StatusCode, err)
	}
	switch {
	case resp.StatusCode == http.StatusOK:
		return jresp.Result, 0, nil
	case resp.StatusCode == http.StatusTooManyRequests ||
		resp.StatusCode == http.StatusServiceUnavailable:
		return nil, retryAfterWait(resp, c.maxWait(), time.Now()),
			fmt.Errorf("serve: backpressure (%d): %s", resp.StatusCode, jresp.Error)
	case jresp.Retryable:
		return nil, 0, fmt.Errorf("serve: retryable failure (%d): %s", resp.StatusCode, jresp.Error)
	default:
		return nil, -1, fmt.Errorf("serve: job failed (%d): %s", resp.StatusCode, jresp.Error)
	}
}

// RunBatch runs a whole campaign through one streamed /v1/batch
// submission and returns the raw results indexed like specs (it is a
// paper.BatchRunner — how `hetexp -remote` folds a remote sweep). It
// consumes per-job completion records as the server lands them, and on
// any cut — server drain cursor, broken connection, request deadline on
// the server side — reconnects and re-submits only the still-incomplete
// points: the completed remainder is already in the server's cache, so a
// resume costs one round trip plus the missing work. Forward progress
// refreshes the attempt budget (MaxAttempts bounds *consecutive*
// attempts without a single completion); a terminal per-point failure
// aborts the whole batch.
func (c *Client) RunBatch(ctx context.Context, specs []paper.JobSpec) ([]json.RawMessage, error) {
	if len(specs) == 0 {
		return nil, nil
	}
	attempts := c.maxAttempts()
	maxWait := c.maxWait()
	results := make([]json.RawMessage, len(specs))
	done := make([]bool, len(specs))
	remaining := len(specs)
	var lastErr error
	for n, first := 0, true; n < attempts; n++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		idx := make([]int, 0, remaining)
		for i, d := range done {
			if !d {
				idx = append(idx, i)
			}
		}
		if !first {
			c.reconnects.Add(1)
		}
		first = false
		progressed, wait, err := c.streamBatch(ctx, idx, specs, results, done)
		remaining -= progressed
		if remaining == 0 {
			return results, nil
		}
		lastErr = err
		if wait < 0 { // terminal
			return nil, err
		}
		if progressed > 0 {
			// Forward progress: the next submission is strictly smaller, so
			// refresh the budget — it bounds stalls, not total round trips.
			n = -1
		}
		if wait == 0 {
			wait = time.Duration(50*(n+2)) * time.Millisecond
		}
		if wait > maxWait {
			wait = maxWait
		}
		t := time.NewTimer(wait)
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return nil, ctx.Err()
		}
	}
	return nil, fmt.Errorf("serve: batch incomplete after %d attempts without progress (%d of %d points missing): %w",
		attempts, remaining, len(specs), lastErr)
}

// streamBatch performs one /v1/batch round trip over the incomplete
// points (idx indexes specs), filling results/done as job records land.
// progressed counts points newly completed on this connection; wait has
// submit's semantics: < 0 terminal, 0 retry after default backoff, > 0
// retry after the server-requested wait.
func (c *Client) streamBatch(ctx context.Context, idx []int, specs []paper.JobSpec,
	results []json.RawMessage, done []bool) (progressed int, wait time.Duration, err error) {
	sub := make([]paper.JobSpec, len(idx))
	for i, j := range idx {
		sub[i] = specs[j]
	}
	breq := paper.BatchRequest{Tenant: c.Tenant, Specs: sub}
	if dl, ok := ctx.Deadline(); ok {
		ms := time.Until(dl).Milliseconds()
		if ms < 1 {
			ms = 1
		}
		breq.TimeoutMS = ms
	}
	body, err := json.Marshal(breq)
	if err != nil {
		return 0, -1, err
	}
	url := strings.TrimSuffix(c.BaseURL, "/") + "/v1/batch"
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, url, bytes.NewReader(body))
	if err != nil {
		return 0, -1, err
	}
	req.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return 0, -1, ctx.Err()
		}
		return 0, 0, err // transport errors are worth a reconnect
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		// Refusals arrive as plain JSON before any stream starts, with the
		// same status taxonomy as /v1/jobs.
		b, rerr := io.ReadAll(io.LimitReader(resp.Body, maxBodyBytes))
		if rerr != nil {
			return 0, 0, rerr
		}
		var jresp paper.JobResponse
		if err := json.Unmarshal(b, &jresp); err != nil {
			return 0, -1, fmt.Errorf("serve: undecodable batch refusal (status %d): %w", resp.StatusCode, err)
		}
		switch {
		case resp.StatusCode == http.StatusTooManyRequests ||
			resp.StatusCode == http.StatusServiceUnavailable:
			return 0, retryAfterWait(resp, c.maxWait(), time.Now()),
				fmt.Errorf("serve: batch backpressure (%d): %s", resp.StatusCode, jresp.Error)
		case jresp.Retryable:
			return 0, 0, fmt.Errorf("serve: retryable batch refusal (%d): %s", resp.StatusCode, jresp.Error)
		default:
			return 0, -1, fmt.Errorf("serve: batch refused (%d): %s", resp.StatusCode, jresp.Error)
		}
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), maxBodyBytes)
	sawSummary := false
	state := "?"
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		var rec paper.BatchRecord
		if err := json.Unmarshal(line, &rec); err != nil {
			return progressed, 0, fmt.Errorf("serve: undecodable batch record: %w", err)
		}
		switch rec.Type {
		case paper.BatchTypeJob:
			j := rec.Job
			if j == nil || j.Index < 0 || j.Index >= len(idx) {
				return progressed, 0, fmt.Errorf("serve: batch job record out of range")
			}
			orig := idx[j.Index]
			switch {
			case j.Error == "":
				if !done[orig] {
					done[orig] = true
					results[orig] = j.Result
					progressed++
				}
			case !j.Retryable:
				// One terminal point (panic, job timeout) fails the whole
				// campaign — resubmitting it would fail identically.
				return progressed, -1, fmt.Errorf("serve: batch point %s failed terminally: %s", j.Key, j.Error)
			}
			// A retryable per-point failure stays incomplete; the next
			// reconnect re-submits it.
		case paper.BatchTypeSummary:
			sawSummary = true
			if rec.Summary != nil {
				state = rec.Summary.State
			}
		case paper.BatchTypeHeartbeat, paper.BatchTypeCursor:
			// Keepalive; the cursor is informational — incompleteness is
			// already tracked point-by-point through done.
		}
	}
	if err := sc.Err(); err != nil {
		if ctx.Err() != nil {
			return progressed, -1, ctx.Err()
		}
		return progressed, 0, fmt.Errorf("serve: batch stream broken: %w", err)
	}
	if !sawSummary {
		if ctx.Err() != nil {
			return progressed, -1, ctx.Err()
		}
		return progressed, 0, fmt.Errorf("serve: batch stream ended without summary")
	}
	if progressed < len(idx) {
		return progressed, 0, fmt.Errorf("serve: batch cut (server %s): %d point(s) left pending",
			state, len(idx)-progressed)
	}
	return progressed, 0, nil
}

// retryAfterWait parses the Retry-After header in both RFC 9110 forms:
// delta-seconds and HTTP-date (reverse proxies in front of the service
// routinely rewrite one into the other). The wait is floored at one
// second — the header has no sub-second form, and treating an unparsable
// or past value as zero would busy-loop the retry — and clamped to max
// so a far-future date cannot stall the client. now is the test seam for
// the date form.
func retryAfterWait(resp *http.Response, max time.Duration, now time.Time) time.Duration {
	h := strings.TrimSpace(resp.Header.Get("Retry-After"))
	wait := time.Second
	if secs, err := strconv.Atoi(h); err == nil {
		wait = time.Duration(secs) * time.Second
	} else if t, err := http.ParseTime(h); err == nil {
		wait = t.Sub(now)
	}
	if wait < time.Second {
		wait = time.Second
	}
	if max > 0 && wait > max {
		wait = max
	}
	return wait
}
