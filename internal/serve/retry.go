package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"hetsim/internal/sweep"
)

// RetryPolicy bounds the server-side re-attempts of transient failures
// with jittered exponential backoff: attempt n sleeps Base·2ⁿ scaled by
// a uniform jitter in [0.5, 1.5), capped at Cap. Jitter comes from a
// seeded stream so drills replay.
type RetryPolicy struct {
	Max  int           // re-attempts after the first try (0 = no retry)
	Base time.Duration // first backoff step
	Cap  time.Duration // backoff ceiling
}

// DefaultRetryPolicy is the server default: 3 retries, 25ms–1s backoff.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{Max: 3, Base: 25 * time.Millisecond, Cap: time.Second}
}

// Retryable classifies an error against the sweep taxonomy: a panicking
// simulation (*sweep.PanicError), a job that exceeded its time budget
// (sweep.ErrJobTimeout) and a cancelled or expired context are terminal
// — re-running them buys nothing or repeats a crash. Everything else
// (cache write failures, injected transients, I/O hiccups) is transient
// and worth a bounded retry.
func Retryable(err error) bool {
	if err == nil {
		return false
	}
	if errors.Is(err, sweep.ErrJobTimeout) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded) {
		return false
	}
	var pe *sweep.PanicError
	return !errors.As(err, &pe)
}

// retrier runs functions under a RetryPolicy with a seeded jitter
// stream; safe for concurrent use.
type retrier struct {
	policy RetryPolicy

	mu  sync.Mutex
	rng uint64
}

func newRetrier(p RetryPolicy, seed uint64) *retrier {
	return &retrier{policy: p, rng: seed}
}

// jitter draws a uniform [0.5, 1.5) factor from the seeded stream.
func (r *retrier) jitter() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.rng += 0x9e3779b97f4a7c15
	z := r.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	z ^= z >> 31
	return 0.5 + float64(z>>11)/float64(1<<53)
}

// backoff returns the jittered sleep before re-attempt n (0-based).
func (r *retrier) backoff(n int) time.Duration {
	d := r.policy.Base << uint(n)
	if d <= 0 || d > r.policy.Cap {
		d = r.policy.Cap
	}
	d = time.Duration(float64(d) * r.jitter())
	if d > r.policy.Cap {
		d = r.policy.Cap
	}
	return d
}

// do runs fn, re-attempting transient failures until the budget or the
// context runs out; onRetry (optional) observes each re-attempt.
func (r *retrier) do(ctx context.Context, fn func() error, onRetry func()) error {
	var err error
	for n := 0; ; n++ {
		err = fn()
		if err == nil || !Retryable(err) || n >= r.policy.Max {
			return err
		}
		if onRetry != nil {
			onRetry()
		}
		t := time.NewTimer(r.backoff(n))
		select {
		case <-t.C:
		case <-ctx.Done():
			t.Stop()
			return fmt.Errorf("%w (retry abandoned: %v)", err, ctx.Err())
		}
	}
}
