package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"hetsim/internal/paper"
	"hetsim/internal/sweep"
)

// testBuild keys jobs by spec.Kernel and lets tests plug per-kernel
// behavior; unknown kernels fall back to an instant echo job.
func testBuild(runs map[string]func() (json.RawMessage, error)) func(paper.JobSpec) (sweep.Job[json.RawMessage], error) {
	return func(spec paper.JobSpec) (sweep.Job[json.RawMessage], error) {
		if spec.Kernel == "reject-me" {
			return sweep.Job[json.RawMessage]{}, fmt.Errorf("unknown kernel %q", spec.Kernel)
		}
		run := runs[spec.Kernel]
		if run == nil {
			payload := json.RawMessage(fmt.Sprintf(`{"kernel":%q}`, spec.Kernel))
			run = func() (json.RawMessage, error) { return payload, nil }
		}
		return sweep.Job[json.RawMessage]{Key: "test|" + spec.Kernel, Run: run}, nil
	}
}

func body(kernel, tenant string, timeoutMS int64) string {
	b, _ := json.Marshal(paper.JobRequest{Tenant: tenant, TimeoutMS: timeoutMS,
		Spec: paper.JobSpec{Kernel: kernel, Seed: 1, Config: "plain"}})
	return string(b)
}

func postJob(t *testing.T, ts *httptest.Server, payload string) (int, http.Header, paper.JobResponse) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(payload))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var jr paper.JobResponse
	if err := json.NewDecoder(resp.Body).Decode(&jr); err != nil {
		t.Fatalf("undecodable response: %v", err)
	}
	return resp.StatusCode, resp.Header, jr
}

// waitFor polls until cond holds or the test times out.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestServeExecuteAndCache(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	var execs atomic.Int64
	build := testBuild(map[string]func() (json.RawMessage, error){
		"k1": func() (json.RawMessage, error) {
			execs.Add(1)
			return json.RawMessage(`{"cycles":7}`), nil
		},
	})
	srv := New(Config{Build: build, Cache: cache, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, jr := postJob(t, ts, body("k1", "", 0))
	if code != http.StatusOK || jr.Cached || string(jr.Result) != `{"cycles":7}` {
		t.Fatalf("first request: code=%d resp=%+v result=%s", code, jr, jr.Result)
	}
	if jr.Key != "test|k1" {
		t.Fatalf("key = %q", jr.Key)
	}
	code, _, jr = postJob(t, ts, body("k1", "", 0))
	if code != http.StatusOK || !jr.Cached || string(jr.Result) != `{"cycles":7}` {
		t.Fatalf("second request: code=%d resp=%+v", code, jr)
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("executed %d times, want 1 (cache miss)", got)
	}
	st := srv.Stats()
	if st.Executed != 1 || st.CacheHits != 1 || st.Requests != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServeDedupConcurrent(t *testing.T) {
	gate := make(chan struct{})
	leading := make(chan struct{})
	var execs atomic.Int64
	build := testBuild(map[string]func() (json.RawMessage, error){
		"slow": func() (json.RawMessage, error) {
			execs.Add(1)
			close(leading)
			<-gate
			return json.RawMessage(`{"ok":true}`), nil
		},
	})
	srv := New(Config{Build: build, Workers: 2, Queue: 32})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	const waiters = 5
	var wg sync.WaitGroup
	codes := make([]int, waiters+1)
	shared := make([]bool, waiters+1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		codes[0], _, _ = postJob(t, ts, body("slow", "", 0))
	}()
	<-leading
	for i := 1; i <= waiters; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var jr paper.JobResponse
			codes[i], _, jr = postJob(t, ts, body("slow", "", 0))
			shared[i] = jr.Shared
		}(i)
	}
	waitFor(t, "waiters to coalesce", func() bool {
		return srv.flight.Stats().Shared == waiters
	})
	close(gate)
	wg.Wait()
	for i, code := range codes {
		if code != http.StatusOK {
			t.Fatalf("request %d: code %d", i, code)
		}
	}
	for i := 1; i <= waiters; i++ {
		if !shared[i] {
			t.Fatalf("waiter %d not marked shared", i)
		}
	}
	if got := execs.Load(); got != 1 {
		t.Fatalf("deduped key executed %d times", got)
	}
	st := srv.Stats()
	if st.Deduped != waiters || st.Leads != 1 || st.Executed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServeQueueFull(t *testing.T) {
	gate := make(chan struct{})
	leading := make(chan struct{})
	build := testBuild(map[string]func() (json.RawMessage, error){
		"slow": func() (json.RawMessage, error) {
			close(leading)
			<-gate
			return json.RawMessage(`{}`), nil
		},
	})
	srv := New(Config{Build: build, Workers: 1, Queue: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		code, _, _ := postJob(t, ts, body("slow", "", 0))
		done <- code
	}()
	<-leading
	code, hdr, jr := postJob(t, ts, body("other", "", 0))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-queue request: code %d", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	if !jr.Retryable {
		t.Fatal("queue rejection must be retryable")
	}
	close(gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("admitted request: code %d", code)
	}
	if st := srv.Stats(); st.RejectedQueue != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServeRateLimit(t *testing.T) {
	srv := New(Config{Build: testBuild(nil), Workers: 2, RatePerSec: 0.001, Burst: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _, _ := postJob(t, ts, body("a", "lab", 0)); code != http.StatusOK {
		t.Fatalf("burst request: code %d", code)
	}
	code, hdr, _ := postJob(t, ts, body("b", "lab", 0))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-rate request: code %d", code)
	}
	if hdr.Get("Retry-After") == "" {
		t.Fatal("rate 429 without Retry-After")
	}
	// Another tenant's bucket is untouched.
	if code, _, _ := postJob(t, ts, body("c", "other", 0)); code != http.StatusOK {
		t.Fatalf("other tenant: code %d", code)
	}
	if st := srv.Stats(); st.RejectedRate != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServeTenantQuota(t *testing.T) {
	gate := make(chan struct{})
	leading := make(chan struct{})
	build := testBuild(map[string]func() (json.RawMessage, error){
		"slow": func() (json.RawMessage, error) {
			close(leading)
			<-gate
			return json.RawMessage(`{}`), nil
		},
	})
	srv := New(Config{Build: build, Workers: 2, Queue: 8, TenantQuota: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan int, 1)
	go func() {
		code, _, _ := postJob(t, ts, body("slow", "lab", 0))
		done <- code
	}()
	<-leading
	code, _, _ := postJob(t, ts, body("fast", "lab", 0))
	if code != http.StatusTooManyRequests {
		t.Fatalf("over-quota request: code %d", code)
	}
	if code, _, _ := postJob(t, ts, body("fast", "other", 0)); code != http.StatusOK {
		t.Fatalf("other tenant blocked by lab's quota: code %d", code)
	}
	close(gate)
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request: code %d", code)
	}
	if st := srv.Stats(); st.RejectedQuota != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServeWaiterDeadline pins deadline propagation: a waiter's budget
// bounds its wait (504, retryable), never the shared simulation, which
// completes for its leader.
func TestServeWaiterDeadline(t *testing.T) {
	gate := make(chan struct{})
	leading := make(chan struct{})
	build := testBuild(map[string]func() (json.RawMessage, error){
		"slow": func() (json.RawMessage, error) {
			close(leading)
			<-gate
			return json.RawMessage(`{"done":true}`), nil
		},
	})
	srv := New(Config{Build: build, Workers: 2, Queue: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan paper.JobResponse, 1)
	go func() {
		_, _, jr := postJob(t, ts, body("slow", "", 0))
		done <- jr
	}()
	<-leading
	code, _, jr := postJob(t, ts, body("slow", "", 30))
	if code != http.StatusGatewayTimeout {
		t.Fatalf("expired waiter: code %d (%+v)", code, jr)
	}
	if !jr.Retryable {
		t.Fatal("an expired wait must be retryable")
	}
	close(gate)
	leader := <-done
	if string(leader.Result) != `{"done":true}` {
		t.Fatalf("leader result = %s", leader.Result)
	}
	if st := srv.Stats(); st.Expired != 1 || st.Executed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServeInjectedCancel pins the fault hook's mid-request
// cancellation: a waiter whose context the hook cancels expires
// (504, retryable) while the leader — whose context is equally cancelled
// — rides the simulation to completion, and the result still lands in
// the cache.
func TestServeInjectedCancel(t *testing.T) {
	cache, err := sweep.Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	gate := make(chan struct{})
	leading := make(chan struct{})
	build := testBuild(map[string]func() (json.RawMessage, error){
		"slow": func() (json.RawMessage, error) {
			close(leading)
			<-gate
			return json.RawMessage(`{"v":1}`), nil
		},
	})
	srv := New(Config{Build: build, Cache: cache, Workers: 2, Queue: 8,
		Faults: &Faults{CancelRate: 1, CancelAfter: time.Millisecond}})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	done := make(chan paper.JobResponse, 1)
	go func() {
		_, _, jr := postJob(t, ts, body("slow", "", 0))
		done <- jr
	}()
	<-leading
	code, _, jr := postJob(t, ts, body("slow", "", 0))
	if code != http.StatusGatewayTimeout || !jr.Retryable {
		t.Fatalf("injected-cancel waiter: code=%d resp=%+v", code, jr)
	}
	close(gate)
	leader := <-done
	if string(leader.Result) != `{"v":1}` {
		t.Fatalf("leader result = %s", leader.Result)
	}
	var raw json.RawMessage
	if !cache.Get("test|slow", &raw) || string(raw) != `{"v":1}` {
		t.Fatalf("result of the cancelled-context leader not cached: %s", raw)
	}
	if st := srv.Stats(); st.Expired != 1 || st.Executed != 1 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestServeDrainLifecycle(t *testing.T) {
	gate := make(chan struct{})
	leading := make(chan struct{})
	build := testBuild(map[string]func() (json.RawMessage, error){
		"slow": func() (json.RawMessage, error) {
			close(leading)
			<-gate
			return json.RawMessage(`{}`), nil
		},
	})
	srv := New(Config{Build: build, Workers: 2, Queue: 8})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	get := func(path string) int {
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		return resp.StatusCode
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while serving: %d", code)
	}
	if code := get("/readyz"); code != http.StatusOK {
		t.Fatalf("readyz while serving: %d", code)
	}

	done := make(chan int, 1)
	go func() {
		code, _, _ := postJob(t, ts, body("slow", "", 0))
		done <- code
	}()
	<-leading

	drained := make(chan error, 1)
	go func() { drained <- srv.Drain(context.Background()) }()
	waitFor(t, "drain to start", func() bool { return srv.State() == StateDraining })

	// Readiness flips, liveness stays, new submissions bounce retryably;
	// the in-flight job is still running.
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz while draining: %d", code)
	}
	if code := get("/healthz"); code != http.StatusOK {
		t.Fatalf("healthz while draining: %d", code)
	}
	code, hdr, jr := postJob(t, ts, body("late", "", 0))
	if code != http.StatusServiceUnavailable || !jr.Retryable || hdr.Get("Retry-After") == "" {
		t.Fatalf("submission while draining: code=%d resp=%+v", code, jr)
	}
	select {
	case err := <-drained:
		t.Fatalf("drain finished with a job in flight: %v", err)
	default:
	}

	close(gate)
	if err := <-drained; err != nil {
		t.Fatalf("drain: %v", err)
	}
	if code := <-done; code != http.StatusOK {
		t.Fatalf("in-flight request during drain: code %d", code)
	}
	if srv.State() != StateStopped {
		t.Fatalf("state after drain = %v", srv.State())
	}
	if code := get("/readyz"); code != http.StatusServiceUnavailable {
		t.Fatalf("readyz after drain: %d", code)
	}
	if st := srv.Stats(); st.RejectedDrain != 1 || st.State != "stopped" {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServeDrainTimeout pins the bounded-drain contract: a wedged job
// makes Drain return its context's error, but the server still refuses
// new work.
func TestServeDrainTimeout(t *testing.T) {
	gate := make(chan struct{})
	leading := make(chan struct{})
	build := testBuild(map[string]func() (json.RawMessage, error){
		"wedged": func() (json.RawMessage, error) {
			close(leading)
			<-gate
			return json.RawMessage(`{}`), nil
		},
	})
	srv := New(Config{Build: build, Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()
	done := make(chan struct{})
	go func() {
		postJob(t, ts, body("wedged", "", 0))
		close(done)
	}()
	<-leading
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if err := srv.Drain(ctx); err == nil {
		t.Fatal("drain of a wedged job returned nil")
	}
	if srv.State() != StateStopped {
		t.Fatalf("state after abandoned drain = %v", srv.State())
	}
	close(gate)
	<-done
}

func TestServeBadRequests(t *testing.T) {
	srv := New(Config{Build: testBuild(nil), Workers: 1})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	if code, _, _ := postJob(t, ts, `not json at all`); code != http.StatusBadRequest {
		t.Fatalf("garbage body: code %d", code)
	}
	// A well-formed request whose spec the builder rejects is the client's
	// fault, not the server's.
	code, _, jr := postJob(t, ts, body("reject-me", "", 0))
	if code != http.StatusBadRequest || jr.Retryable {
		t.Fatalf("builder rejection: code=%d resp=%+v", code, jr)
	}
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /v1/jobs: code %d", resp.StatusCode)
	}
	if st := srv.Stats(); st.BadRequests != 2 {
		t.Fatalf("stats = %+v", st)
	}
}

// TestServeTransientRetry pins the bounded-retry path on both seams: an
// execution that fails transiently recovers, and injected cache-write
// failures are retried until the entry persists — without re-running the
// simulation.
func TestServeTransientRetry(t *testing.T) {
	dir := t.TempDir()
	cache, err := sweep.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var attempts atomic.Int64
	build := testBuild(map[string]func() (json.RawMessage, error){
		"flaky": func() (json.RawMessage, error) {
			if attempts.Add(1) <= 2 {
				return nil, fmt.Errorf("transient hiccup")
			}
			return json.RawMessage(`{"ok":true}`), nil
		},
	})
	srv := New(Config{
		Build: build, Cache: cache, Workers: 1,
		Retry:  RetryPolicy{Max: 3, Base: time.Millisecond, Cap: 5 * time.Millisecond},
		Faults: &Faults{CacheFailFirst: 2},
	})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, jr := postJob(t, ts, body("flaky", "", 0))
	if code != http.StatusOK || string(jr.Result) != `{"ok":true}` {
		t.Fatalf("flaky request: code=%d resp=%+v", code, jr)
	}
	st := srv.Stats()
	if st.ExecRetries != 2 || st.Executed != 1 {
		t.Fatalf("exec stats = %+v", st)
	}
	if st.PutRetries != 2 || st.PutFailures != 0 {
		t.Fatalf("put stats = %+v", st)
	}
	// The entry persisted despite the injected failures: a fresh cache
	// handle (fresh server) sees it.
	reopened, err := sweep.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	var raw json.RawMessage
	if !reopened.Get("test|flaky", &raw) || string(raw) != `{"ok":true}` {
		t.Fatalf("cache entry did not persist: %s", raw)
	}
}

// TestServeTerminalFailure pins the other side of the taxonomy: a job
// that times out under the engine's budget is terminal — no retry, 500,
// Retryable:false — for the leader and every waiter.
func TestServeTerminalFailure(t *testing.T) {
	build := testBuild(map[string]func() (json.RawMessage, error){
		"stuck": func() (json.RawMessage, error) {
			time.Sleep(200 * time.Millisecond)
			return json.RawMessage(`{}`), nil
		},
	})
	srv := New(Config{Build: build, Workers: 1, JobTimeout: 10 * time.Millisecond})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	code, _, jr := postJob(t, ts, body("stuck", "", 0))
	if code != http.StatusInternalServerError {
		t.Fatalf("timed-out job: code %d (%+v)", code, jr)
	}
	if jr.Retryable {
		t.Fatal("ErrJobTimeout must not be retryable")
	}
	st := srv.Stats()
	if st.Failed != 1 || st.ExecRetries != 0 {
		t.Fatalf("stats = %+v", st)
	}
}

func TestRetryableClassification(t *testing.T) {
	cases := []struct {
		err  error
		want bool
	}{
		{nil, false},
		{sweep.ErrJobTimeout, false},
		{fmt.Errorf("job x: %w", sweep.ErrJobTimeout), false},
		{context.Canceled, false},
		{context.DeadlineExceeded, false},
		{&sweep.PanicError{}, false},
		{fmt.Errorf("wrapped: %w", &sweep.PanicError{}), false},
		{errInjectedCacheWrite, true},
		{fmt.Errorf("disk full"), true},
	}
	for _, tc := range cases {
		if got := Retryable(tc.err); got != tc.want {
			t.Errorf("Retryable(%v) = %v, want %v", tc.err, got, tc.want)
		}
	}
}

func TestLimiter(t *testing.T) {
	l := newLimiter(1, 2, 3)
	clock := time.Unix(1000, 0)
	l.now = func() time.Time { return clock }

	// Burst of 2, then the bucket is dry (quota still has room, so the
	// refusal is rate-shaped: a positive wait until the next token).
	for i := 0; i < 2; i++ {
		if _, ok := l.admit("a"); !ok {
			t.Fatalf("burst admit %d refused", i)
		}
	}
	wait, ok := l.admit("a")
	if ok || wait <= 0 {
		t.Fatalf("dry bucket: ok=%v wait=%v", ok, wait)
	}
	// Refill, fill the quota; the next refusal is quota-shaped (wait 0:
	// retry when in-flight work completes, not after a token interval).
	clock = clock.Add(5 * time.Second)
	if _, ok := l.admit("a"); !ok {
		t.Fatal("admit after refill refused")
	}
	wait, ok = l.admit("a")
	if ok || wait != 0 {
		t.Fatalf("over quota: ok=%v wait=%v", ok, wait)
	}
	l.release("a")
	if _, ok := l.admit("a"); !ok {
		t.Fatal("admit after release refused")
	}
	// Tenants are independent.
	if _, ok := l.admit("b"); !ok {
		t.Fatal("tenant b blocked by tenant a")
	}
	// A nil limiter admits everything.
	var nilL *limiter
	if _, ok := nilL.admit("x"); !ok {
		t.Fatal("nil limiter refused")
	}
}

func TestRetrierBackoffBounds(t *testing.T) {
	r := newRetrier(RetryPolicy{Max: 5, Base: 10 * time.Millisecond, Cap: 80 * time.Millisecond}, 42)
	for n := 0; n < 8; n++ {
		d := r.backoff(n)
		if d <= 0 || d > 80*time.Millisecond {
			t.Fatalf("backoff(%d) = %v out of (0, cap]", n, d)
		}
	}
	// Terminal errors are never retried.
	calls := 0
	err := r.do(context.Background(), func() error {
		calls++
		return sweep.ErrJobTimeout
	}, nil)
	if calls != 1 || err == nil {
		t.Fatalf("terminal error retried: calls=%d err=%v", calls, err)
	}
	// The budget bounds transient retries.
	calls = 0
	r2 := newRetrier(RetryPolicy{Max: 2, Base: time.Millisecond, Cap: time.Millisecond}, 1)
	err = r2.do(context.Background(), func() error {
		calls++
		return fmt.Errorf("transient")
	}, nil)
	if calls != 3 || err == nil {
		t.Fatalf("budget: calls=%d err=%v", calls, err)
	}
}

func TestRetryAfterRendering(t *testing.T) {
	cases := []struct {
		d    time.Duration
		want string
	}{
		{0, "1"},
		{time.Millisecond, "1"},
		{time.Second, "1"},
		{1500 * time.Millisecond, "2"},
		{10 * time.Second, "10"},
	}
	for _, tc := range cases {
		if got := retryAfter(tc.d); got != tc.want {
			t.Errorf("retryAfter(%v) = %q, want %q", tc.d, got, tc.want)
		}
	}
}

func TestFaultsDeterminism(t *testing.T) {
	a := &Faults{Seed: 7, CacheFailRate: 0.5, CancelRate: 0.5}
	b := &Faults{Seed: 7, CacheFailRate: 0.5, CancelRate: 0.5}
	for i := 0; i < 64; i++ {
		if a.CacheWriteFail("k") != b.CacheWriteFail("k") {
			t.Fatal("same seed, different cache-fail stream")
		}
		_, ca := a.CancelRequest()
		_, cb := b.CancelRequest()
		if ca != cb {
			t.Fatal("same seed, different cancel stream")
		}
	}
	// CacheFailFirst is deterministic per key, independent of the stream.
	f := &Faults{CacheFailFirst: 2}
	for _, key := range []string{"x", "y"} {
		for i := 0; i < 2; i++ {
			if !f.CacheWriteFail(key) {
				t.Fatalf("key %s attempt %d: expected injected failure", key, i)
			}
		}
		if f.CacheWriteFail(key) {
			t.Fatalf("key %s attempt 3: expected success", key)
		}
	}
	// nil is a no-op everywhere.
	var nf *Faults
	if nf.SlowJob() != 0 || nf.CacheWriteFail("k") {
		t.Fatal("nil Faults injected something")
	}
	if _, ok := nf.CancelRequest(); ok {
		t.Fatal("nil Faults cancelled")
	}
}
