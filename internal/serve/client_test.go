package serve

import (
	"net/http"
	"testing"
	"time"
)

// TestRetryAfterWait pins the bugfixed Retry-After parsing: both RFC
// 9110 forms (delta-seconds and HTTP-date) are honored, unparsable or
// sub-second values floor at one second instead of busy-looping the
// retry, and every wait clamps to the client's MaxWait.
func TestRetryAfterWait(t *testing.T) {
	now := time.Date(2026, 8, 9, 12, 0, 0, 0, time.UTC)
	const max = 5 * time.Second
	cases := []struct {
		name   string
		header string
		want   time.Duration
	}{
		{"delta seconds", "3", 3 * time.Second},
		{"delta with space", " 2 ", 2 * time.Second},
		{"delta clamps to MaxWait", "600", max},
		{"delta zero floors", "0", time.Second},
		{"delta negative floors", "-7", time.Second},
		{"http date", now.Add(3 * time.Second).UTC().Format(http.TimeFormat), 3 * time.Second},
		{"http date clamps to MaxWait", now.Add(time.Hour).UTC().Format(http.TimeFormat), max},
		{"http date in the past floors", now.Add(-time.Hour).UTC().Format(http.TimeFormat), time.Second},
		{"garbage floors", "soon", time.Second},
		{"empty floors", "", time.Second},
		{"fractional seconds floors", "1.5", time.Second},
	}
	for _, tc := range cases {
		resp := &http.Response{Header: http.Header{}}
		if tc.header != "" {
			resp.Header.Set("Retry-After", tc.header)
		}
		if got := retryAfterWait(resp, max, now); got != tc.want {
			t.Errorf("%s: retryAfterWait(%q) = %v, want %v", tc.name, tc.header, got, tc.want)
		}
	}
	// Without a cap, a far-future date is honored as-is.
	resp := &http.Response{Header: http.Header{}}
	resp.Header.Set("Retry-After", now.Add(30*time.Second).UTC().Format(http.TimeFormat))
	if got := retryAfterWait(resp, 0, now); got != 30*time.Second {
		t.Errorf("uncapped date = %v, want 30s", got)
	}
}
