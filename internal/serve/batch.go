package serve

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"net/http"
	"strconv"
	"time"

	"hetsim/internal/paper"
	"hetsim/internal/sweep"
)

// This file is the batch side of the service: POST /v1/batch accepts a
// whole campaign in one submission — an explicit spec list or a named
// suite expansion — and streams per-job completions back as NDJSON the
// moment each lands, so a 60-point paper sweep costs one HTTP round trip
// instead of sixty while every point still rides the exact singleton
// path: the same single-flight dedup (a batch job and a concurrent
// /v1/jobs request for the same key coalesce onto one simulation), the
// same cache, the same retry taxonomy, the same per-tenant accounting
// (admission charges the full job count up front).
//
// The stream's failure envelope mirrors the drain design: when the batch
// is cut — server drain, request deadline, client disconnect, injected
// cancellation — workers stop claiming, in-flight simulations ride to
// completion and land in the cache, and the stream ends with a cursor
// record naming every uncompleted key. Re-submitting exactly those keys
// resumes the campaign; the completed remainder is already cached, so a
// resume costs only the missing work.

// batchVal is what a batch job publishes per point: the raw result plus
// how it was obtained (for the summary accounting).
type batchVal struct {
	raw    json.RawMessage
	cached bool
	shared bool
}

func (s *Server) handleBatch(w http.ResponseWriter, r *http.Request) {
	s.requests.Add(1)
	if r.Method != http.MethodPost {
		w.Header().Set("Allow", http.MethodPost)
		writeJSON(w, http.StatusMethodNotAllowed, paper.JobResponse{Error: "POST only"})
		return
	}
	// Track before the state check: a drain that begins after this point
	// waits for the whole stream (and every simulation it leads).
	s.wg.Add(1)
	defer s.wg.Done()
	if s.State() != StateServing {
		s.rejectedDrain.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusServiceUnavailable,
			paper.JobResponse{Error: "server is " + s.State().String(), Retryable: true})
		return
	}
	body, err := io.ReadAll(http.MaxBytesReader(w, r.Body, maxBodyBytes))
	if err != nil {
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, paper.JobResponse{Error: "reading request: " + err.Error()})
		return
	}
	req, err := paper.ParseBatchRequest(body)
	if err != nil {
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, paper.JobResponse{Error: err.Error()})
		return
	}
	specs, err := req.Expand()
	if err != nil {
		s.badRequests.Add(1)
		writeJSON(w, http.StatusBadRequest, paper.JobResponse{Error: err.Error()})
		return
	}
	// Resolve every spec before the stream starts: a batch with one
	// unresolvable point is refused whole with a diagnosable 400 rather
	// than failing mid-stream after work has been spent.
	inners := make([]sweep.Job[json.RawMessage], len(specs))
	for i, spec := range specs {
		inner, err := s.cfg.Build(spec)
		if err != nil {
			s.badRequests.Add(1)
			writeJSON(w, http.StatusBadRequest,
				paper.JobResponse{Error: "batch spec " + strconv.Itoa(i) + ": " + err.Error()})
			return
		}
		inners[i] = inner
	}

	tenant := req.Tenant
	if tenant == "" {
		tenant = "anon"
	}
	// Admission charges the whole batch: the in-flight quota must fit
	// every job at once, and the rate bucket is debited the full count
	// (overdraft semantics — see limiter.admitN), so packaging a campaign
	// into one request never sidesteps a tenant's budget.
	if wait, ok := s.limits.admitN(tenant, len(inners)); !ok {
		if wait > 0 {
			s.rejectedRate.Add(1)
		} else {
			s.rejectedQuota.Add(1)
		}
		w.Header().Set("Retry-After", retryAfter(wait))
		writeJSON(w, http.StatusTooManyRequests,
			paper.JobResponse{Error: "tenant over rate limit or quota", Retryable: true})
		return
	}
	defer s.limits.releaseN(tenant, len(inners))
	// The queue charge is the batch's true concurrent footprint: at most
	// Workers of its jobs are claimed at once, so that is what it holds
	// against the admission bound — a 4096-point batch must not evict
	// every singleton client from the queue.
	foot := int64(len(inners))
	if foot > int64(s.cfg.Workers) {
		foot = int64(s.cfg.Workers)
	}
	if n := s.queued.Add(foot); n > int64(s.cfg.Queue) {
		s.queued.Add(-foot)
		s.rejectedQueue.Add(1)
		w.Header().Set("Retry-After", "1")
		writeJSON(w, http.StatusTooManyRequests,
			paper.JobResponse{Error: "admission queue full", Retryable: true})
		return
	}
	defer s.queued.Add(-foot)

	// The batch context is every cut rolled into one cancellation: client
	// disconnect (r.Context), the request's own deadline, an injected
	// drill cancellation, and server drain. Cancellation stops claiming;
	// it never kills an in-flight simulation — other waiters may be
	// riding on it, and a finished job is a cache entry a resume skips.
	ctx, cancel := context.WithCancel(r.Context())
	defer cancel()
	if req.TimeoutMS > 0 {
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, time.Duration(req.TimeoutMS)*time.Millisecond)
		defer tcancel()
	}
	if d, ok := s.cfg.Faults.CancelRequest(); ok {
		t := time.AfterFunc(d, cancel)
		defer t.Stop()
	}
	go func() {
		select {
		case <-s.drained:
			cancel()
		case <-ctx.Done():
		}
	}()

	jobs := make([]sweep.Job[batchVal], len(inners))
	for i, inner := range inners {
		jobs[i] = s.batchJob(ctx, inner)
	}

	s.bmu.Lock()
	s.batch.requests++
	s.batch.jobs += uint64(len(jobs))
	s.bmu.Unlock()

	// records carries job, cursor and summary lines from the producer to
	// the streamer. The buffer holds the worst case (every job plus the
	// two terminal records), so the engine's notify callback — which runs
	// under the engine mutex — never blocks on a slow or dead client.
	records := make(chan paper.BatchRecord, len(jobs)+2)
	go s.runBatch(ctx, jobs, records)

	w.Header().Set("Content-Type", "application/x-ndjson")
	w.WriteHeader(http.StatusOK)
	flusher, _ := w.(http.Flusher)
	enc := json.NewEncoder(w)
	var werr error
	write := func(rec paper.BatchRecord) bool {
		if werr != nil {
			return false
		}
		if werr = enc.Encode(rec); werr != nil {
			return false
		}
		if flusher != nil {
			flusher.Flush()
		}
		return true
	}
	hb := time.NewTicker(s.cfg.Heartbeat)
	defer hb.Stop()
	for {
		select {
		case rec, ok := <-records:
			if !ok {
				// Producer done: every claimed simulation has completed, so
				// returning (and releasing the drain group) is safe.
				return
			}
			write(rec)
		case <-hb.C:
			// Keepalive: an idle stream (a long simulation, a cold cache)
			// still shows bytes on the wire, so proxies and load balancers
			// between the client and the pool keep the connection alive.
			if write(paper.BatchRecord{Type: paper.BatchTypeHeartbeat}) {
				s.bmu.Lock()
				s.batch.heartbeats++
				s.bmu.Unlock()
			}
		}
	}
}

// batchJob wraps a resolved job for the batch engine: the run is one
// pass through the single-flight layer — exactly the singleton path, so
// a batch point and a concurrent /v1/jobs request for the same key cost
// one simulation — with the same counter discipline execute() keeps.
func (s *Server) batchJob(ctx context.Context, inner sweep.Job[json.RawMessage]) sweep.Job[batchVal] {
	return sweep.Job[batchVal]{
		Key: inner.Key,
		Run: func() (batchVal, error) {
			// The batch context governs only the *wait*: a point that leads
			// its flight runs on this goroutine's stack and always rides to
			// completion (and lands in the cache) even through a cut — that
			// is what makes the cursor's "completed points are cached"
			// promise true — while a point waiting on another request's
			// flight detaches at the cut and goes to the cursor; the flight
			// itself, which has other waiters, is untouched.
			v, err, shared := s.flight.Do(ctx, inner.Key, func() (flightVal, error) {
				return s.lead(inner)
			})
			if shared {
				s.deduped.Add(1)
			}
			if err != nil {
				if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
					s.expired.Add(1)
				} else {
					s.failed.Add(1)
				}
				return batchVal{}, err
			}
			return batchVal{raw: v.raw, cached: v.cached, shared: shared}, nil
		},
	}
}

// runBatch executes the campaign on a per-batch engine and feeds the
// record channel: one job record per completion in completion order, a
// cursor record when the batch was cut before finishing, and always a
// terminal summary. Closes records when the batch is fully wound down —
// the handler (and therefore Drain) waits on that.
func (s *Server) runBatch(ctx context.Context, jobs []sweep.Job[batchVal], records chan<- paper.BatchRecord) {
	defer close(records)
	// A fresh engine per batch: its Context is the batch's cut signal,
	// and its workers mirror the server's pool width. Global simulation
	// concurrency is still bounded by s.sem inside lead — the batch
	// engine only bounds how many points wait on flights at once.
	eng := sweep.New(sweep.Config{Workers: s.cfg.Workers, Context: ctx})
	done := make([]bool, len(jobs))
	var completed, failed, cached, deduped, executed int
	_ = sweep.RunNotify(eng, jobs, func(c sweep.Completion[batchVal]) {
		rec := paper.BatchRecord{Type: paper.BatchTypeJob,
			Job: &paper.BatchJob{Index: c.Index, Key: c.Key}}
		switch {
		case c.Err == nil:
			done[c.Index] = true
			completed++
			rec.Job.Cached = c.Value.cached
			rec.Job.Shared = c.Value.shared
			rec.Job.Result = c.Value.raw
			switch {
			case c.Value.cached:
				cached++
			case c.Value.shared:
				deduped++
			default:
				executed++
			}
		case errors.Is(c.Err, context.Canceled) || errors.Is(c.Err, context.DeadlineExceeded):
			// The batch was cut while this point waited on a flight; the
			// point itself is unharmed and goes to the cursor, not the
			// stream — a resume re-submits it for free.
			return
		case Retryable(c.Err):
			// Transient failure that exhausted the server's retry budget:
			// reported, left incomplete (cursor), the client may resubmit.
			rec.Job.Error = c.Err.Error()
			rec.Job.Retryable = true
		default:
			// Terminal (panic, job timeout, bad build): reported and done —
			// resubmitting the same point would fail the same way.
			done[c.Index] = true
			failed++
			rec.Job.Error = c.Err.Error()
		}
		records <- rec
	})
	var pending []string
	for i, ok := range done {
		if !ok {
			pending = append(pending, jobs[i].Key)
		}
	}
	if len(pending) > 0 {
		records <- paper.BatchRecord{Type: paper.BatchTypeCursor, Pending: pending}
	}
	records <- paper.BatchRecord{Type: paper.BatchTypeSummary, Summary: &paper.BatchSummary{
		Jobs:      len(jobs),
		Completed: completed,
		Failed:    failed,
		Pending:   len(pending),
		Cached:    cached,
		Deduped:   deduped,
		Executed:  executed,
		State:     s.State().String(),
	}}
	s.bmu.Lock()
	s.batch.completed += uint64(completed)
	s.batch.failed += uint64(failed)
	if len(pending) > 0 {
		s.batch.cursorCuts++
	}
	s.bmu.Unlock()
}
