package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync/atomic"
	"testing"
	"time"

	"hetsim/internal/paper"
	"hetsim/internal/sweep"
)

// TestClientHedgeSlowServer: a slow first simulation trips the hedge, the
// backup coalesces onto the leader's flight (one execution), the client
// still gets the result, and both sides count the hedge.
func TestClientHedgeSlowServer(t *testing.T) {
	var execs atomic.Int64
	build := testBuild(map[string]func() (json.RawMessage, error){
		"slow": func() (json.RawMessage, error) {
			execs.Add(1)
			time.Sleep(300 * time.Millisecond)
			return json.RawMessage(`{"cycles":1}`), nil
		},
	})
	srv := New(Config{Build: build, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, HedgeAfter: 30 * time.Millisecond}
	raw, err := c.RunSpec(context.Background(), paper.JobSpec{Kernel: "slow", Seed: 1, Config: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"cycles":1}` {
		t.Fatalf("result = %s", raw)
	}
	if c.Hedges() != 1 {
		t.Fatalf("client hedges = %d, want 1", c.Hedges())
	}
	if execs.Load() != 1 {
		t.Fatalf("hedge caused %d executions, want 1 (single-flight dedup)", execs.Load())
	}
	// The backup leg may still be finishing its round trip after the
	// winner returned; wait for the server to have seen it.
	waitFor(t, "hedged request to land", func() bool {
		return srv.Stats().HedgedRequests == 1
	})
	st := srv.Stats()
	if st.Executed != 1 || st.Requests != 2 {
		t.Fatalf("server stats = %+v", st)
	}
	// Client and server reconcile: every hedge the client counts was a
	// request the server saw marked hedged.
	if c.Hedges() != st.HedgedRequests {
		t.Fatalf("hedge accounting skewed: client %d, server %d", c.Hedges(), st.HedgedRequests)
	}
}

// dropHedges fails any request carrying the hedge marker before its
// bytes reach the wire — the canceled-before-write backup leg.
type dropHedges struct{ rt http.RoundTripper }

func (d dropHedges) RoundTrip(req *http.Request) (*http.Response, error) {
	if req.Header.Get(HedgedHeader) != "" {
		return nil, fmt.Errorf("injected: connection refused before write")
	}
	return d.rt.RoundTrip(req)
}

// TestClientHedgeNeverWired pins the wire-count fix: a backup whose HTTP
// request dies before it is written must not count as a hedge — the old
// launch-time increment over-reported hedged traffic the server never
// saw, skewing the client summary against Stats.HedgedRequests.
func TestClientHedgeNeverWired(t *testing.T) {
	build := testBuild(map[string]func() (json.RawMessage, error){
		"slow": func() (json.RawMessage, error) {
			time.Sleep(150 * time.Millisecond)
			return json.RawMessage(`{"cycles":2}`), nil
		},
	})
	srv := New(Config{Build: build, Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &Client{
		BaseURL:    ts.URL,
		HedgeAfter: 20 * time.Millisecond,
		HTTP:       &http.Client{Transport: dropHedges{http.DefaultTransport}},
	}
	raw, err := c.RunSpec(context.Background(), paper.JobSpec{Kernel: "slow", Seed: 1, Config: "plain"})
	if err != nil {
		t.Fatal(err)
	}
	if string(raw) != `{"cycles":2}` {
		t.Fatalf("result = %s", raw)
	}
	st := srv.Stats()
	if st.HedgedRequests != 0 {
		t.Fatalf("server saw a hedge that never left the client: %+v", st)
	}
	if c.Hedges() != st.HedgedRequests {
		t.Fatalf("hedge accounting skewed: client %d, server %d — the backup was never wired", c.Hedges(), st.HedgedRequests)
	}
}

// TestClientHedgeNotTripped: a fast answer never launches a backup.
func TestClientHedgeNotTripped(t *testing.T) {
	srv := New(Config{Build: testBuild(nil), Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, HedgeAfter: 5 * time.Second}
	if _, err := c.RunSpec(context.Background(), paper.JobSpec{Kernel: "fast", Seed: 1, Config: "plain"}); err != nil {
		t.Fatal(err)
	}
	if c.Hedges() != 0 {
		t.Fatalf("fast request hedged %d times", c.Hedges())
	}
	if st := srv.Stats(); st.HedgedRequests != 0 || st.Requests != 1 {
		t.Fatalf("server stats = %+v", st)
	}
}

// TestClientHedgeTerminalError: when both legs fail terminally the error
// stays terminal — hedging must not turn a bad spec into a retry storm.
func TestClientHedgeTerminalError(t *testing.T) {
	srv := New(Config{Build: testBuild(nil), Workers: 2})
	ts := httptest.NewServer(srv.Handler())
	defer ts.Close()

	c := &Client{BaseURL: ts.URL, HedgeAfter: time.Millisecond, MaxAttempts: 3}
	start := time.Now()
	_, err := c.RunSpec(context.Background(), paper.JobSpec{Kernel: "reject-me", Seed: 1, Config: "plain"})
	if err == nil {
		t.Fatal("bad spec accepted")
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("terminal error took %v — retried instead of failing fast", elapsed)
	}
}

// TestServeScrubInStats: a startup scrub report configured on the server
// is republished through Stats (and so through /v1/stats).
func TestServeScrubInStats(t *testing.T) {
	rep := &sweep.ScrubReport{Scanned: 3, Healthy: 2, Corrupt: 1}
	srv := New(Config{Build: testBuild(nil), Workers: 1, Scrub: rep})
	st := srv.Stats()
	if st.Scrub == nil || *st.Scrub != *rep {
		t.Fatalf("stats scrub = %+v, want %+v", st.Scrub, rep)
	}
	b, err := json.Marshal(st)
	if err != nil {
		t.Fatal(err)
	}
	var decoded Stats
	if err := json.Unmarshal(b, &decoded); err != nil {
		t.Fatal(err)
	}
	if decoded.Scrub == nil || *decoded.Scrub != *rep {
		t.Fatalf("scrub did not survive the JSON round trip: %+v", decoded.Scrub)
	}
}
