package paper

import (
	"bytes"
	"flag"
	"os"
	"path/filepath"
	"testing"

	"hetsim/internal/kernels"
)

var updateGolden = flag.Bool("update", false, "rewrite the full-size experiment golden file")

// TestFullReproductionGolden regenerates every table and figure at the
// paper's sizes and compares the rendered output byte-for-byte against the
// recorded golden file — the same content quoted in EXPERIMENTS.md. The
// simulation is deterministic, so any diff is a real change in reproduced
// results. Run with -update to re-record after an intentional model change.
//
// Skipped under -short (it simulates the full-size suite, ~10 s).
func TestFullReproductionGolden(t *testing.T) {
	if testing.Short() {
		t.Skip("full-size suite")
	}
	m, err := Measure(kernels.PaperSuite())
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	RenderTable1(&buf, m.Table1())
	buf.WriteByte('\n')
	pts, err := m.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	RenderFigure3(&buf, pts)
	buf.WriteByte('\n')
	RenderFigure4(&buf, m.Figure4())
	buf.WriteByte('\n')
	RenderFigure5a(&buf, m.Figure5a())

	path := filepath.Join("testdata", "full_reproduction.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, buf.Bytes(), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("golden updated: %d bytes", buf.Len())
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("no golden file (run with -update to record): %v", err)
	}
	if !bytes.Equal(want, buf.Bytes()) {
		t.Errorf("full reproduction output changed; run with -update if intentional.\n--- got ---\n%s\n--- want ---\n%s",
			buf.String(), want)
	}
}
