package paper

import (
	"bytes"
	"reflect"
	"testing"

	"hetsim/internal/kernels"
	"hetsim/internal/sweep"
)

// equivSuite is a reduced suite for the equivalence tests: big enough to
// exercise every configuration, small enough to measure twice in a test.
// Figure3/Figure4 need "matmul" present.
func equivSuite() []*kernels.Instance {
	return kernels.SmallSuite()[:4]
}

// renderAll renders every pure-post-processing artifact of a measurement
// set to one buffer, for byte comparison.
func renderAll(t *testing.T, m *Measurements) []byte {
	t.Helper()
	var buf bytes.Buffer
	RenderTable1(&buf, m.Table1())
	pts, err := m.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	RenderFigure3(&buf, pts)
	RenderFigure4(&buf, m.Figure4())
	RenderFigure5a(&buf, m.Figure5a())
	return buf.Bytes()
}

// TestParallelSerialEquivalence checks the scheduler's central promise:
// measurements and rendered tables are identical at 1 worker and at 8.
func TestParallelSerialEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multiple full measurements")
	}
	suite := equivSuite()
	serial, err := MeasureWith(sweep.New(sweep.Config{Workers: 1}), suite)
	if err != nil {
		t.Fatal(err)
	}
	parallel, err := MeasureWith(sweep.New(sweep.Config{Workers: 8}), suite)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(serial.ByK, parallel.ByK) {
		t.Fatal("measurements differ between 1 and 8 workers")
	}
	if !bytes.Equal(renderAll(t, serial), renderAll(t, parallel)) {
		t.Fatal("rendered tables differ between 1 and 8 workers")
	}

	// The simulating generators must agree too, at matching granularity.
	k := suite[0]
	e1 := sweep.New(sweep.Config{Workers: 1})
	e8 := sweep.New(sweep.Config{Workers: 8})
	b1, err := BankSweepWith(e1, k)
	if err != nil {
		t.Fatal(err)
	}
	b8, err := BankSweepWith(e8, k)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(b1, b8) {
		t.Fatal("bank sweep differs between 1 and 8 workers")
	}
	f1, err := Figure5bWith(e1, k, serial)
	if err != nil {
		t.Fatal(err)
	}
	f8, err := Figure5bWith(e8, k, parallel)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(f1, f8) {
		t.Fatal("figure 5b differs between 1 and 8 workers")
	}
}

// TestMeasureCacheSkipsSimulation checks the memoization promise: a second
// measurement over the same cache performs zero simulator runs and yields
// identical results and renderings.
func TestMeasureCacheSkipsSimulation(t *testing.T) {
	if testing.Short() {
		t.Skip("full measurement")
	}
	suite := equivSuite()
	dir := t.TempDir()
	c1, err := sweep.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng1 := sweep.New(sweep.Config{Workers: 4, Cache: c1})
	cold, err := MeasureWith(eng1, suite)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng1.Stats(); st.Executed != st.Jobs || st.CacheHits != 0 {
		t.Fatalf("cold stats = %+v", st)
	}

	c2, err := sweep.Open(dir)
	if err != nil {
		t.Fatal(err)
	}
	eng2 := sweep.New(sweep.Config{Workers: 4, Cache: c2})
	warm, err := MeasureWith(eng2, suite)
	if err != nil {
		t.Fatal(err)
	}
	if st := eng2.Stats(); st.Executed != 0 {
		t.Fatalf("warm run simulated %d jobs, want 0 (stats %+v)", st.Executed, st)
	}
	if !reflect.DeepEqual(cold.ByK, warm.ByK) {
		t.Fatal("cached measurements differ from fresh ones")
	}
	if !bytes.Equal(renderAll(t, cold), renderAll(t, warm)) {
		t.Fatal("rendered tables differ between cold and warm cache")
	}
}

// TestMeasureDuplicateKernel checks the duplicate-name guard.
func TestMeasureDuplicateKernel(t *testing.T) {
	s := kernels.SmallSuite()
	if _, err := Measure([]*kernels.Instance{s[0], s[0]}); err == nil {
		t.Fatal("expected an error for a duplicate kernel name")
	}
}
