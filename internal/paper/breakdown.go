package paper

import (
	"fmt"
	"io"

	"hetsim/internal/obs"
)

// --- Stall breakdown ---------------------------------------------------------

// BreakdownRow is one kernel's cycle attribution on the pulp-4t
// configuration: every cluster cycle of every core classified into
// exactly one obs.Class, summed over the team.
type BreakdownRow struct {
	Name    string
	Cores   int
	Cycles  uint64                 // cluster cycles of the pulp-4t run
	Classes [obs.NumClasses]uint64 // per-class cycles, summed over cores
}

// Total returns the attributed cycle count (Cores x Cycles by the
// exactness invariant).
func (r BreakdownRow) Total() uint64 {
	var t uint64
	for _, c := range r.Classes {
		t += c
	}
	return t
}

// BreakdownTable builds the per-kernel stall breakdown from an observed
// measurement (MeasureObserved/MeasureObservedWith). It enforces the
// attribution exactness invariant — each row's class cycles sum to
// exactly Cores x Cycles — and fails loudly if the measurement was not
// observed or a core's accounting leaked.
func (m *Measurements) BreakdownTable() ([]BreakdownRow, error) {
	rows := make([]BreakdownRow, 0, len(m.Suite))
	for _, k := range m.Suite {
		km := m.ByK[k.Name]
		if km.Attr == nil {
			return nil, fmt.Errorf("paper: %s has no attribution; use MeasureObserved", k.Name)
		}
		row := BreakdownRow{
			Name:    k.Name,
			Cores:   len(km.Attr.Cores),
			Cycles:  km.Cycles[cfgPULP4],
			Classes: km.Attr.Sum(),
		}
		if want := uint64(row.Cores) * row.Cycles; row.Total() != want {
			return nil, fmt.Errorf("paper: %s attribution leaks cycles: classes sum to %d, want %d cores x %d cycles = %d",
				k.Name, row.Total(), row.Cores, row.Cycles, want)
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// RenderBreakdown prints the stall breakdown as per-class percentages of
// the total core cycles (Cores x Cycles), one row per kernel.
func RenderBreakdown(w io.Writer, rows []BreakdownRow) {
	fmt.Fprintf(w, "%-16s %10s", "Benchmark", "Cycles")
	for _, c := range obs.ClassNames() {
		fmt.Fprintf(w, " %9s", c)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %9.2fM", r.Name, float64(r.Cycles)/1e6)
		total := float64(r.Total())
		for _, c := range r.Classes {
			fmt.Fprintf(w, " %8.2f%%", 100*float64(c)/total)
		}
		fmt.Fprintln(w)
	}
}
