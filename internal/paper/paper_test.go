package paper

import (
	"bytes"
	"strings"
	"testing"

	"hetsim/internal/kernels"
	"hetsim/internal/sensor"
)

// smallMeasure measures the reduced suite once per test binary.
var smallCache *Measurements

func smallMeasure(t *testing.T) *Measurements {
	t.Helper()
	if smallCache != nil {
		return smallCache
	}
	// The small suite keeps simulation time low; "matmul" must be present
	// because Figure3 keys on it.
	m, err := Measure(kernels.SmallSuite())
	if err != nil {
		t.Fatal(err)
	}
	smallCache = m
	return m
}

func TestMeasurementsComplete(t *testing.T) {
	m := smallMeasure(t)
	if len(m.ByK) != len(m.Suite) {
		t.Fatalf("measured %d of %d kernels", len(m.ByK), len(m.Suite))
	}
	for name, km := range m.ByK {
		for _, key := range []configKey{cfgPlain, cfgM3, cfgM4, cfgPULP1, cfgPULP2, cfgPULP4} {
			if km.Cycles[key] == 0 {
				t.Errorf("%s: no cycles for %s", name, key)
			}
		}
		if km.RISCOps == 0 || km.BinBytes == 0 {
			t.Errorf("%s: missing ops/binary size", name)
		}
		if km.Activity.CoreRun <= 0 {
			t.Errorf("%s: empty activity", name)
		}
	}
}

func TestTable1Shape(t *testing.T) {
	m := smallMeasure(t)
	rows := m.Table1()
	if len(rows) != len(m.Suite) {
		t.Fatalf("table rows: %d", len(rows))
	}
	var buf bytes.Buffer
	RenderTable1(&buf, rows)
	for _, want := range []string{"matmul", "strassen", "svm (RBF)", "cnn (approx)", "hog", "RISC ops"} {
		if !strings.Contains(buf.String(), want) {
			t.Errorf("rendered table lacks %q:\n%s", want, buf.String())
		}
	}
}

func TestFigure3Shape(t *testing.T) {
	m := smallMeasure(t)
	pts, err := m.Figure3()
	if err != nil {
		t.Fatal(err)
	}
	var bestPULP, bestMCU, apollo float64
	for _, p := range pts {
		switch {
		case p.Kind == "pulp":
			if p.GOPSperW > bestPULP {
				bestPULP = p.GOPSperW
			}
		case p.Platform == "Ambiq Apollo":
			apollo = p.GOPSperW
		default:
			if p.GOPSperW > bestMCU {
				bestMCU = p.GOPSperW
			}
		}
	}
	// The paper's qualitative claims: PULP is at least an order of
	// magnitude above every MCU; the Apollo is the MCU outlier.
	if bestPULP < 10*bestMCU {
		t.Errorf("PULP efficiency %.1f not >> MCU efficiency %.1f", bestPULP, bestMCU)
	}
	if apollo <= bestMCU {
		t.Errorf("Apollo (%.1f) should beat the other MCUs (%.1f)", apollo, bestMCU)
	}
	var buf bytes.Buffer
	RenderFigure3(&buf, pts)
	if !strings.Contains(buf.String(), "PULP") || !strings.Contains(buf.String(), "GOPS/W") {
		t.Error("figure 3 rendering incomplete")
	}
}

func TestFigure4Shape(t *testing.T) {
	m := smallMeasure(t)
	rows := m.Figure4()
	byName := map[string]Fig4Row{}
	for _, r := range rows {
		byName[r.Name] = r
	}
	// Integer benchmarks must show a clear architectural speedup...
	if byName["matmul"].ArchVsM4 < 1.8 {
		t.Errorf("matmul arch speedup %.2f too low", byName["matmul"].ArchVsM4)
	}
	// ...the fixed-point family a smaller one...
	if f := byName["matmul (fixed)"].ArchVsM4; f < 1.0 || f >= byName["matmul"].ArchVsM4 {
		t.Errorf("fixed-point arch speedup %.2f out of band", f)
	}
	// ...and hog the characteristic slowdown.
	if h := byName["hog"].ArchVsM4; h >= 1.0 {
		t.Errorf("hog should be below 1x, got %.2f", h)
	}
	for _, r := range rows {
		if r.Par4 < 1.0 || r.Par4 > 4.05 {
			t.Errorf("%s: 4-core speedup %.2f out of range", r.Name, r.Par4)
		}
		if r.Par2 < 1.0 || r.Par2 > 2.05 {
			t.Errorf("%s: 2-core speedup %.2f out of range", r.Name, r.Par2)
		}
	}
	ov := OMPOverhead(rows)
	if ov < 0 || ov > 0.45 {
		t.Errorf("OpenMP overhead %.2f implausible", ov)
	}
}

func TestFigure5aShape(t *testing.T) {
	m := smallMeasure(t)
	rows := m.Figure5a()
	for _, r := range rows {
		if len(r.Entries) != len(MCUFreqsHz) {
			t.Fatalf("%s: %d entries", r.Name, len(r.Entries))
		}
		// At 32 MHz the MCU uses the whole envelope: speedup 1.
		if s := r.Entries[0].Speedup; s < 0.99 || s > 1.01 {
			t.Errorf("%s: speedup at 32 MHz = %.2f, want 1", r.Name, s)
		}
		// Speedup must grow monotonically as the MCU slows down and the
		// accelerator gets the freed budget.
		for i := 1; i < len(r.Entries); i++ {
			if r.Entries[i].Speedup+1e-9 < r.Entries[i-1].Speedup {
				t.Errorf("%s: speedup not monotone at %v MHz", r.Name, r.Entries[i].MCUFreqHz/1e6)
			}
		}
		// The slowest-MCU point gives the accelerator nearly the whole
		// envelope; every kernel must show a large speedup there.
		if last := r.Entries[len(r.Entries)-1]; last.Speedup < 3 {
			t.Errorf("%s: best speedup only %.1fx", r.Name, last.Speedup)
		}
		// Beyond-envelope bars: MCU-only scaling.
		if len(r.Beyond) != len(BeyondFreqsHz) || r.Beyond[0].Speedup != 1.5 {
			t.Errorf("%s: beyond-envelope bars wrong: %+v", r.Name, r.Beyond)
		}
	}
	var buf bytes.Buffer
	RenderFigure5a(&buf, rows)
	if !strings.Contains(buf.String(), "10 mW envelope") {
		t.Error("figure 5a rendering incomplete")
	}
}

func TestFigure5bShape(t *testing.T) {
	m := smallMeasure(t)
	k := m.Suite[0] // small matmul
	series, err := Figure5b(k, m)
	if err != nil {
		t.Fatal(err)
	}
	if len(series) != len(Fig5bMCUFreqsHz) {
		t.Fatalf("series: %d", len(series))
	}
	for _, s := range series {
		if len(s.Eff) != len(Fig5bIterations) || len(s.EffDB) != len(Fig5bIterations) {
			t.Fatalf("missing points in series @%v", s.MCUFreqHz)
		}
		for i := range s.Eff {
			if s.Eff[i] <= 0 || s.Eff[i] > 1 || s.EffDB[i] <= 0 || s.EffDB[i] > 1 {
				t.Errorf("efficiency out of (0,1] at %v MHz, n=%d", s.MCUFreqHz/1e6, Fig5bIterations[i])
			}
			if s.EffDB[i]+1e-9 < s.Eff[i] {
				t.Errorf("double buffering must not hurt (%v MHz, n=%d)", s.MCUFreqHz/1e6, Fig5bIterations[i])
			}
			if i > 0 && s.Eff[i]+1e-9 < s.Eff[i-1] {
				t.Errorf("efficiency must be monotone in iterations (%v MHz)", s.MCUFreqHz/1e6)
			}
		}
	}
	var buf bytes.Buffer
	RenderFigure5b(&buf, k.Name, series)
	if !strings.Contains(buf.String(), "double buffering") {
		t.Error("figure 5b rendering incomplete")
	}
}

func TestExtensionAblationShape(t *testing.T) {
	m := smallMeasure(t)
	rows, err := ExtensionAblation(m.Suite[:4]) // the linear-algebra group
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string][]float64{}
	for _, r := range rows {
		if r.FullCycles == 0 {
			t.Fatalf("%s: no cycles", r.Name)
		}
		for i, s := range r.Slowdown {
			if s < 0.999 {
				t.Errorf("%s %s: disabling a feature cannot speed things up (%.3f)",
					r.Name, ExtVariants[i].Name, s)
			}
		}
		byName[r.Name] = r.Slowdown
	}
	// matmul char leans on SIMD (index 0) and HW loops (index 1).
	if byName["matmul"][0] < 1.3 || byName["matmul"][1] < 1.2 {
		t.Errorf("matmul should rely on SIMD and HW loops: %v", byName["matmul"])
	}
	// Fixed-point matmul cannot use SIMD: ablating it is free.
	if byName["matmul (fixed)"][0] > 1.01 {
		t.Errorf("fixed matmul must not depend on SIMD: %v", byName["matmul (fixed)"])
	}
}

func TestBankSweepShape(t *testing.T) {
	m := smallMeasure(t)
	pts, err := BankSweep(m.Suite[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 {
		t.Fatalf("points: %d", len(pts))
	}
	// A single bank serializes four cores; eight banks must be faster.
	var one, eight uint64
	for _, p := range pts {
		if p.Banks == 1 {
			one = p.Cycles
		}
		if p.Banks == 8 {
			eight = p.Cycles
		}
	}
	if one <= eight {
		t.Errorf("1 bank (%d cyc) should be slower than 8 banks (%d cyc)", one, eight)
	}
}

func TestLinkAblationShape(t *testing.T) {
	m := smallMeasure(t)
	pts, err := LinkAblation(m.Suite[0], m)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts)%2 != 0 || len(pts) == 0 {
		t.Fatalf("points: %d", len(pts))
	}
	for i := 0; i < len(pts); i += 2 {
		tied, dec := pts[i], pts[i+1]
		if tied.Decoupled || !dec.Decoupled {
			t.Fatal("ordering wrong")
		}
		if dec.Efficiency <= tied.Efficiency {
			t.Errorf("decoupled link must help at %.0f MHz: %.3f vs %.3f",
				tied.MCUFreqHz/1e6, dec.Efficiency, tied.Efficiency)
		}
	}
}

func TestSensorAblationShape(t *testing.T) {
	m := smallMeasure(t)
	hogK := m.Suite[len(m.Suite)-1]
	cam := sensor.QVGACamera()
	cam.SampleBytes = 32 * 32
	pts, err := SensorAblation(hogK, m, cam, 8e6)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 2 {
		t.Fatalf("points: %d", len(pts))
	}
	host, direct := pts[0], pts[1]
	if direct.PerIterTime > host.PerIterTime {
		t.Errorf("direct path must not be slower: %.3f vs %.3f ms",
			direct.PerIterTime*1e3, host.PerIterTime*1e3)
	}
	if direct.EnergyPerIt > host.EnergyPerIt {
		t.Errorf("direct path must not cost more energy")
	}
}

func TestScalingStudyShape(t *testing.T) {
	m := smallMeasure(t)
	pts, err := ScalingStudy(m.Suite[0]) // small matmul
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || pts[0].Threads != 1 || pts[len(pts)-1].Threads != 8 {
		t.Fatalf("points: %+v", pts)
	}
	if pts[0].Speedup != 1 {
		t.Errorf("baseline speedup %v", pts[0].Speedup)
	}
	for i := 1; i < len(pts); i++ {
		if pts[i].Speedup+0.05 < pts[i-1].Speedup {
			t.Errorf("scaling regressed at %d threads: %v -> %v",
				pts[i].Threads, pts[i-1].Speedup, pts[i].Speedup)
		}
		if pts[i].Speedup > float64(pts[i].Threads)+0.05 {
			t.Errorf("superlinear scaling at %d threads: %v", pts[i].Threads, pts[i].Speedup)
		}
	}
	// 8 threads must clearly beat 4 for matmul-sized work.
	if pts[4].Speedup < pts[2].Speedup*1.2 {
		t.Errorf("8 threads (%.2fx) should beat 4 (%.2fx)", pts[4].Speedup, pts[2].Speedup)
	}
}
