// Package paper regenerates every table and figure of the DATE'16 paper's
// evaluation from the simulator: Table I (benchmark summary), Fig. 3
// (energy efficiency landscape on matmul), Fig. 4 (architectural and
// parallel speedups), Fig. 5a (speedup within a 10 mW envelope) and
// Fig. 5b (offload-cost amortization). Each generator returns structured
// rows (consumed by the benchmarks and the hetexp tool) and has a Render
// function producing the ASCII form recorded in EXPERIMENTS.md.
package paper

import (
	"fmt"
	"sync"

	"hetsim/internal/cluster"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
	"hetsim/internal/kernels"
	"hetsim/internal/loader"
	"hetsim/internal/power"
)

// configKey identifies a measurement configuration.
type configKey string

const (
	cfgPlain configKey = "plain" // single plain-RISC core (RISC-op counting)
	cfgM3    configKey = "m3"    // Cortex-M3 host profile
	cfgM4    configKey = "m4"    // Cortex-M4 host profile
	cfgPULP1 configKey = "pulp1" // OR10N cluster, team of 1
	cfgPULP2 configKey = "pulp2" // team of 2
	cfgPULP4 configKey = "pulp4" // team of 4
)

// kernelMeasurement holds everything the figures need about one kernel.
type kernelMeasurement struct {
	K        *kernels.Instance
	Cycles   map[configKey]uint64
	RISCOps  uint64 // instructions retired on the plain-RISC core
	Activity power.Activity
	BinBytes int // accelerator binary size (Table I)
	InBytes  int
	OutBytes int
}

// Measurements caches the per-kernel simulation results shared by all
// generators so each kernel/config pair is simulated exactly once.
type Measurements struct {
	Suite []*kernels.Instance
	ByK   map[string]*kernelMeasurement
	seed  uint64
}

// Measure runs the whole suite on every configuration. With the paper
// suite this simulates ~100M core cycles; the per-kernel simulations are
// independent, so they run concurrently.
func Measure(suite []*kernels.Instance) (*Measurements, error) {
	m := &Measurements{Suite: suite, ByK: make(map[string]*kernelMeasurement), seed: 1}
	var (
		mu      sync.Mutex
		wg      sync.WaitGroup
		firstEr error
	)
	for _, k := range suite {
		k := k
		wg.Add(1)
		go func() {
			defer wg.Done()
			km, err := m.measureKernel(k)
			mu.Lock()
			defer mu.Unlock()
			if err != nil && firstEr == nil {
				firstEr = err
				return
			}
			m.ByK[k.Name] = km
		}()
	}
	wg.Wait()
	if firstEr != nil {
		return nil, firstEr
	}
	return m, nil
}

func (m *Measurements) measureKernel(k *kernels.Instance) (*kernelMeasurement, error) {
	km := &kernelMeasurement{K: k, Cycles: make(map[configKey]uint64)}
	in := k.Input(m.seed)
	km.InBytes = len(in)
	km.OutBytes = int(k.OutLen())

	type runCfg struct {
		key     configKey
		tgt     isa.Target
		mode    devrt.Mode
		threads uint32
	}
	runs := []runCfg{
		{cfgPlain, isa.PULPPlain, devrt.Host, 1},
		{cfgM3, isa.CortexM3, devrt.Host, 1},
		{cfgM4, isa.CortexM4, devrt.Host, 1},
		{cfgPULP1, isa.PULPFull, devrt.Accel, 1},
		{cfgPULP2, isa.PULPFull, devrt.Accel, 2},
		{cfgPULP4, isa.PULPFull, devrt.Accel, 4},
	}
	for _, rc := range runs {
		prog, err := k.Build(rc.tgt, rc.mode)
		if err != nil {
			return nil, err
		}
		var cfg cluster.Config
		if rc.mode == devrt.Accel {
			cfg = cluster.PULPConfig()
		} else {
			cfg = cluster.MCUConfig(rc.tgt)
		}
		job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Threads: rc.threads, Args: k.Args()}
		res, err := cluster.RunJob(cfg, rc.mode, job, 4_000_000_000)
		if err != nil {
			return nil, fmt.Errorf("paper: measuring %s on %s: %w", k.Name, rc.key, err)
		}
		km.Cycles[rc.key] = res.Cycles
		switch rc.key {
		case cfgPlain:
			km.RISCOps = res.Stats.Retired()
		case cfgPULP4:
			km.Activity = power.ActivityOf(res.Stats)
			img, err := prog.Image()
			if err != nil {
				return nil, err
			}
			km.BinBytes = len(img)
		}
	}
	return km, nil
}

// OpsPerCycle returns RISC operations per cycle for a configuration (the
// annotation of Fig. 5a).
func (km *kernelMeasurement) OpsPerCycle(key configKey) float64 {
	c := km.Cycles[key]
	if c == 0 {
		return 0
	}
	return float64(km.RISCOps) / float64(c)
}
