// Package paper regenerates every table and figure of the DATE'16 paper's
// evaluation from the simulator: Table I (benchmark summary), Fig. 3
// (energy efficiency landscape on matmul), Fig. 4 (architectural and
// parallel speedups), Fig. 5a (speedup within a 10 mW envelope) and
// Fig. 5b (offload-cost amortization). Each generator returns structured
// rows (consumed by the benchmarks and the hetexp tool) and has a Render
// function producing the ASCII form recorded in EXPERIMENTS.md.
//
// Every simulation is expressed as an internal/sweep job: the generators
// are producers (they emit self-describing jobs with stable content keys)
// and consumers (they fold the in-order results into rows), so the whole
// evaluation parallelizes across a worker pool and memoizes into the run
// cache while staying byte-identical to a serial run.
package paper

import (
	"fmt"

	"hetsim/internal/cluster"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
	"hetsim/internal/kernels"
	"hetsim/internal/loader"
	"hetsim/internal/obs"
	"hetsim/internal/power"
	"hetsim/internal/sweep"
)

// configKey identifies a measurement configuration.
type configKey string

const (
	cfgPlain configKey = "plain" // single plain-RISC core (RISC-op counting)
	cfgM3    configKey = "m3"    // Cortex-M3 host profile
	cfgM4    configKey = "m4"    // Cortex-M4 host profile
	cfgPULP1 configKey = "pulp1" // OR10N cluster, team of 1
	cfgPULP2 configKey = "pulp2" // team of 2
	cfgPULP4 configKey = "pulp4" // team of 4
)

// measureMaxCycles bounds every suite simulation.
const measureMaxCycles = 4_000_000_000

// kernelMeasurement holds everything the figures need about one kernel.
type kernelMeasurement struct {
	K        *kernels.Instance
	Cycles   map[configKey]uint64
	RISCOps  uint64 // instructions retired on the plain-RISC core
	Activity power.Activity
	BinBytes int // accelerator binary size (Table I)
	InBytes  int
	OutBytes int

	// Attr is the per-core cycle attribution of the pulp-4t run; non-nil
	// only after MeasureObserved/MeasureObservedWith (the breakdown table).
	Attr *obs.Attribution
}

// Measurements caches the per-kernel simulation results shared by all
// generators so each kernel/config pair is simulated exactly once.
type Measurements struct {
	Suite []*kernels.Instance
	ByK   map[string]*kernelMeasurement
	seed  uint64
}

// defaultEngine backs the argument-free entry points: full parallelism,
// no cache.
func defaultEngine() *sweep.Engine { return sweep.New(sweep.Config{}) }

// measureRun is one (configuration, target, mode, team size) row of the
// per-kernel measurement matrix.
type measureRun struct {
	key     configKey
	tgt     isa.Target
	mode    devrt.Mode
	threads uint32
}

var measureRuns = []measureRun{
	{cfgPlain, isa.PULPPlain, devrt.Host, 1},
	{cfgM3, isa.CortexM3, devrt.Host, 1},
	{cfgM4, isa.CortexM4, devrt.Host, 1},
	{cfgPULP1, isa.PULPFull, devrt.Accel, 1},
	{cfgPULP2, isa.PULPFull, devrt.Accel, 2},
	{cfgPULP4, isa.PULPFull, devrt.Accel, 4},
}

// measureResult is the cacheable outcome of one (kernel, configuration)
// simulation. Retired is only meaningful for cfgPlain, Activity and
// BinBytes only for cfgPULP4; the other runs leave them zero.
type measureResult struct {
	Cycles   uint64
	Retired  uint64
	Activity power.Activity
	BinBytes int
	Attr     *obs.Attribution `json:",omitempty"` // cfgPULP4 under observation
}

// Measure runs the whole suite on every configuration with a default
// engine (one worker per CPU, no cache).
func Measure(suite []*kernels.Instance) (*Measurements, error) {
	return MeasureWith(defaultEngine(), suite)
}

// MeasureWith runs the whole suite on every configuration through the
// given sweep engine: every (kernel, configuration) pair is one job. With
// the paper suite this simulates ~100M core cycles across 60 mutually
// independent jobs.
func MeasureWith(eng *sweep.Engine, suite []*kernels.Instance) (*Measurements, error) {
	return measureWith(eng, suite, false)
}

// MeasureObserved is MeasureObservedWith on a default engine.
func MeasureObserved(suite []*kernels.Instance) (*Measurements, error) {
	return MeasureObservedWith(defaultEngine(), suite)
}

// MeasureObservedWith measures like MeasureWith but runs the pulp-4t
// configuration with cycle attribution attached (see internal/obs), so
// the Measurements can additionally produce the stall-breakdown table.
// Attribution is purely observational: every number shared with an
// unobserved measurement is bit-identical (the differential test pins
// this), and only the observed job's cache key carries the "|obs" marker.
func MeasureObservedWith(eng *sweep.Engine, suite []*kernels.Instance) (*Measurements, error) {
	return measureWith(eng, suite, true)
}

func measureWith(eng *sweep.Engine, suite []*kernels.Instance, observe bool) (*Measurements, error) {
	m, ins, err := newMeasurements(suite)
	if err != nil {
		return nil, err
	}
	var jobs []sweep.Job[measureResult]
	for i, k := range suite {
		for _, rc := range measureRuns {
			job, err := measureJob(k, ins[i], rc, observe)
			if err != nil {
				return nil, err
			}
			jobs = append(jobs, job)
		}
	}
	results, err := sweep.Run(eng, jobs)
	if err != nil {
		return nil, err
	}
	m.fold(results)
	return m, nil
}

// newMeasurements builds the empty measurement set for a suite (with the
// duplicate-name guard every folder depends on) and the per-kernel input
// buffers, indexed like the suite. It is shared by the local path
// (measureWith) and the remote one (MeasureRemote, wire.go) so both fold
// results identically.
func newMeasurements(suite []*kernels.Instance) (*Measurements, [][]byte, error) {
	m := &Measurements{Suite: suite, ByK: make(map[string]*kernelMeasurement), seed: 1}
	ins := make([][]byte, len(suite))
	for i, k := range suite {
		if _, dup := m.ByK[k.Name]; dup {
			return nil, nil, fmt.Errorf("paper: suite has two kernels named %q", k.Name)
		}
		ins[i] = k.Input(m.seed)
		m.ByK[k.Name] = &kernelMeasurement{
			K:        k,
			Cycles:   make(map[configKey]uint64),
			InBytes:  len(ins[i]),
			OutBytes: int(k.OutLen()),
		}
	}
	return m, ins, nil
}

// fold commits the results of the (suite × measureRuns) job matrix, in
// production order, into the measurement set.
func (m *Measurements) fold(results []measureResult) {
	i := 0
	for _, k := range m.Suite {
		km := m.ByK[k.Name]
		for _, rc := range measureRuns {
			r := results[i]
			i++
			km.Cycles[rc.key] = r.Cycles
			switch rc.key {
			case cfgPlain:
				km.RISCOps = r.Retired
			case cfgPULP4:
				km.Activity = r.Activity
				km.BinBytes = r.BinBytes
				km.Attr = r.Attr
			}
		}
	}
}

// measureJob builds the sweep job of one (kernel, configuration) pair.
// The program is emitted here, producer-side, because its bytes are part
// of the content key; the simulation itself runs worker-side.
func measureJob(k *kernels.Instance, in []byte, rc measureRun, observe bool) (sweep.Job[measureResult], error) {
	prog, err := k.Build(rc.tgt, rc.mode)
	if err != nil {
		return sweep.Job[measureResult]{}, err
	}
	var cfg cluster.Config
	if rc.mode == devrt.Accel {
		cfg = cluster.PULPConfig()
	} else {
		cfg = cluster.MCUConfig(rc.tgt)
	}
	// Only the run whose attribution is kept pays for observation; every
	// other job reuses the exact cache entries of an unobserved measure.
	cfg.Observe = observe && rc.key == cfgPULP4
	ph, err := progKey(prog)
	if err != nil {
		return sweep.Job[measureResult]{}, err
	}
	key := fmt.Sprintf("measure|%s|cfg=%s|mode=%d|threads=%d|%s|prog=%s|max=%d",
		kernelKey(k, in), rc.key, rc.mode, rc.threads, clusterKey(cfg), ph, uint64(measureMaxCycles))
	comp, err := kernels.Compiled(prog, cfg.Target)
	if err != nil {
		return sweep.Job[measureResult]{}, err
	}
	job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Threads: rc.threads, Args: k.Args(), Compiled: comp}
	return sweep.Job[measureResult]{
		Key: key,
		Run: func() (measureResult, error) {
			res, err := cluster.RunJob(cfg, rc.mode, job, measureMaxCycles)
			if err != nil {
				return measureResult{}, fmt.Errorf("paper: measuring %s on %s: %w", k.Name, rc.key, err)
			}
			r := measureResult{Cycles: res.Cycles}
			switch rc.key {
			case cfgPlain:
				r.Retired = res.Stats.Retired()
			case cfgPULP4:
				r.Activity = power.ActivityOf(res.Stats)
				img, err := prog.Image()
				if err != nil {
					return measureResult{}, err
				}
				r.BinBytes = len(img)
				r.Attr = res.Attr
			}
			return r, nil
		},
	}, nil
}

// OpsPerCycle returns RISC operations per cycle for a configuration (the
// annotation of Fig. 5a).
func (km *kernelMeasurement) OpsPerCycle(key configKey) float64 {
	c := km.Cycles[key]
	if c == 0 {
		return 0
	}
	return float64(km.RISCOps) / float64(c)
}
