package paper

import (
	"bytes"
	"strings"
	"testing"

	"hetsim/internal/kernels"
	"hetsim/internal/obs"
)

// TestObservedMeasureIsByteIdentical completes the observability
// differential at the paper layer: measuring with attribution attached
// must render every shared table and figure byte-identically to the plain
// measurement, and the breakdown it additionally produces must satisfy
// the exactness invariant (enforced inside BreakdownTable) and render one
// row per kernel.
func TestObservedMeasureIsByteIdentical(t *testing.T) {
	plain := smallMeasure(t)
	observed, err := MeasureObserved(kernels.SmallSuite())
	if err != nil {
		t.Fatal(err)
	}

	render := func(m *Measurements) string {
		var buf bytes.Buffer
		RenderTable1(&buf, m.Table1())
		RenderFigure4(&buf, m.Figure4())
		RenderFigure5a(&buf, m.Figure5a())
		return buf.String()
	}
	if p, o := render(plain), render(observed); p != o {
		t.Fatalf("observed measurement rendered differently:\n--- plain ---\n%s\n--- observed ---\n%s", p, o)
	}

	rows, err := observed.BreakdownTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != len(observed.Suite) {
		t.Fatalf("breakdown rows: %d, want %d", len(rows), len(observed.Suite))
	}
	for _, r := range rows {
		if r.Classes[obs.Issue] == 0 {
			t.Errorf("%s: no issue cycles attributed", r.Name)
		}
		// Row sums are re-checked here so the invariant is pinned by a test,
		// not only by BreakdownTable's own error path.
		if r.Total() != uint64(r.Cores)*r.Cycles {
			t.Errorf("%s: classes sum to %d, want %d", r.Name, r.Total(), uint64(r.Cores)*r.Cycles)
		}
	}

	var buf bytes.Buffer
	RenderBreakdown(&buf, rows)
	out := buf.String()
	for _, want := range []string{"Benchmark", "issue", "sync", "matmul"} {
		if !strings.Contains(out, want) {
			t.Errorf("rendered breakdown lacks %q:\n%s", want, out)
		}
	}

	// The plain measurement must refuse to build a breakdown.
	if _, err := plain.BreakdownTable(); err == nil {
		t.Fatal("plain measurement produced a breakdown without attribution")
	}
}
