package paper

import (
	"fmt"
	"io"
	"sort"

	"hetsim/internal/core"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
	"hetsim/internal/kernels"
	"hetsim/internal/loader"
	"hetsim/internal/power"
	"hetsim/internal/sweep"
)

// --- Table I -----------------------------------------------------------------

// Table1Row is one benchmark summary line.
type Table1Row struct {
	Name    string
	Desc    string
	Field   string
	In      int
	Out     int
	Binary  int
	RISCOps uint64
}

// Table1 regenerates the benchmark summary from the measurements.
func (m *Measurements) Table1() []Table1Row {
	rows := make([]Table1Row, 0, len(m.Suite))
	for _, k := range m.Suite {
		km := m.ByK[k.Name]
		rows = append(rows, Table1Row{
			Name: k.Name, Desc: k.Desc, Field: k.Field,
			In: km.InBytes, Out: km.OutBytes, Binary: km.BinBytes,
			RISCOps: km.RISCOps,
		})
	}
	return rows
}

// RenderTable1 prints the table in the paper's layout.
func RenderTable1(w io.Writer, rows []Table1Row) {
	fmt.Fprintf(w, "%-16s %-18s %8s %8s %8s %10s\n",
		"Benchmark", "Field", "Input", "Output", "Binary", "RISC ops")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %-18s %7.1fk %7.1fk %7.1fk %9.2fM\n",
			r.Name, r.Field,
			float64(r.In)/1024, float64(r.Out)/1024, float64(r.Binary)/1024,
			float64(r.RISCOps)/1e6)
	}
}

// --- Figure 3 ----------------------------------------------------------------

// Fig3Point is one platform operating point in the efficiency landscape.
type Fig3Point struct {
	Platform string
	Kind     string // "pulp" or "mcu"
	VDD      float64
	FreqHz   float64
	PowerW   float64
	GOPS     float64
	GOPSperW float64
}

// Figure3 computes the matmul GOPS-vs-power scatter: the PULP cluster at
// every characterized voltage (at f_max) against the commercial MCUs at
// their maximum datasheet frequency.
func (m *Measurements) Figure3() ([]Fig3Point, error) {
	km, ok := m.ByK["matmul"]
	if !ok {
		return nil, fmt.Errorf("paper: figure 3 needs the matmul kernel in the suite")
	}
	var pts []Fig3Point
	for _, op := range power.OpPoints {
		p := power.PULPPowerW(op.VDD, op.FMax, km.Activity)
		gops := km.OpsPerCycle(cfgPULP4) * op.FMax / 1e9
		pts = append(pts, Fig3Point{
			Platform: "PULP", Kind: "pulp", VDD: op.VDD, FreqHz: op.FMax,
			PowerW: p, GOPS: gops, GOPSperW: gops / p * 1,
		})
	}
	for _, mcu := range power.AllMCUs {
		key := cfgM4
		if mcu.Target.Name == isa.CortexM3.Name {
			key = cfgM3
		}
		cyc := mcu.Cycles(km.Cycles[key])
		opsPerCyc := float64(km.RISCOps) / cyc
		p := mcu.RunPowerW(mcu.FMax)
		gops := opsPerCyc * mcu.FMax / 1e9
		pts = append(pts, Fig3Point{
			Platform: mcu.Name, Kind: "mcu", FreqHz: mcu.FMax,
			PowerW: p, GOPS: gops, GOPSperW: gops / p,
		})
	}
	return pts, nil
}

// RenderFigure3 prints the scatter as a table sorted by efficiency.
func RenderFigure3(w io.Writer, pts []Fig3Point) {
	sorted := append([]Fig3Point(nil), pts...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].GOPSperW > sorted[j].GOPSperW })
	fmt.Fprintf(w, "%-22s %6s %9s %10s %10s %10s\n",
		"Platform", "VDD", "f [MHz]", "P [mW]", "GOPS", "GOPS/W")
	for _, p := range sorted {
		vdd := "-"
		if p.VDD > 0 {
			vdd = fmt.Sprintf("%.1f", p.VDD)
		}
		fmt.Fprintf(w, "%-22s %6s %9.1f %10.3f %10.3f %10.1f\n",
			p.Platform, vdd, p.FreqHz/1e6, p.PowerW*1e3, p.GOPS, p.GOPSperW)
	}
}

// --- Figure 4 ----------------------------------------------------------------

// Fig4Row is one benchmark's speedup decomposition.
type Fig4Row struct {
	Name string
	// Architectural speedup (Fig. 4 left): single OR10N core vs M3/M4.
	ArchVsM3 float64
	ArchVsM4 float64
	// Parallel speedup (Fig. 4 right) on top of the architectural one.
	Par2 float64
	Par4 float64
}

// Figure4 computes both halves of Fig. 4.
func (m *Measurements) Figure4() []Fig4Row {
	rows := make([]Fig4Row, 0, len(m.Suite))
	for _, k := range m.Suite {
		km := m.ByK[k.Name]
		p1 := float64(km.Cycles[cfgPULP1])
		rows = append(rows, Fig4Row{
			Name:     k.Name,
			ArchVsM3: float64(km.Cycles[cfgM3]) / p1,
			ArchVsM4: float64(km.Cycles[cfgM4]) / p1,
			Par2:     p1 / float64(km.Cycles[cfgPULP2]),
			Par4:     p1 / float64(km.Cycles[cfgPULP4]),
		})
	}
	return rows
}

// OMPOverhead estimates the average OpenMP runtime overhead across the
// suite: the gap between the measured 4-core speedup and the ideal 4x,
// attributable to dispatch, barriers and scheduling (the paper reports an
// average of ~6%).
func OMPOverhead(rows []Fig4Row) float64 {
	if len(rows) == 0 {
		return 0
	}
	var sum float64
	for _, r := range rows {
		sum += 1 - r.Par4/4
	}
	return sum / float64(len(rows))
}

// RenderFigure4 prints the decomposition.
func RenderFigure4(w io.Writer, rows []Fig4Row) {
	fmt.Fprintf(w, "%-16s %10s %10s %8s %8s\n",
		"Benchmark", "arch(M3)", "arch(M4)", "par x2", "par x4")
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %9.2fx %9.2fx %7.2fx %7.2fx\n",
			r.Name, r.ArchVsM3, r.ArchVsM4, r.Par2, r.Par4)
	}
	fmt.Fprintf(w, "average OpenMP+Amdahl overhead vs ideal 4x: %.1f%%\n", OMPOverhead(rows)*100)
}

// --- Figure 5a ----------------------------------------------------------------

// EnvelopeW is the total power envelope of the Fig. 5 study.
const EnvelopeW = 10e-3

// MCUFreqsHz are the host frequencies explored in Fig. 5 (the baseline is
// 32 MHz; lower frequencies free budget for the accelerator).
var MCUFreqsHz = []float64{32e6, 26e6, 16e6, 8e6, 4e6, 2e6, 1e6}

// BeyondFreqsHz are the beyond-envelope MCU-only points of Fig. 5a.
var BeyondFreqsHz = []float64{48e6, 64e6, 80e6}

// Fig5aEntry is one (kernel, MCU frequency) point.
type Fig5aEntry struct {
	MCUFreqHz  float64
	BudgetW    float64 // power left for the accelerator
	PULPVdd    float64
	PULPFreqHz float64
	Speedup    float64 // vs the MCU baseline at 32 MHz
	Feasible   bool
}

// Fig5aRow is one kernel's envelope sweep.
type Fig5aRow struct {
	Name        string
	OpsPerCycle float64 // RISC ops/cycle on the 4-core cluster (annotation)
	MCUOpsPerCy float64 // RISC ops/cycle on the MCU (annotation)
	Entries     []Fig5aEntry
	Beyond      []Fig5aEntry // MCU-only beyond-envelope points
}

// Figure5a computes the speedup achievable within the 10 mW envelope: for
// each host frequency the remaining budget clocks the accelerator as fast
// as the power model allows, and the speedup is measured against the
// STM32-L476 at 32 MHz. Offload costs are excluded, as in the paper's
// Fig. 5a ("we do not yet consider the cost of the offload procedure").
func (m *Measurements) Figure5a() []Fig5aRow {
	host := power.STM32L476
	var rows []Fig5aRow
	for _, k := range m.Suite {
		km := m.ByK[k.Name]
		baseSec := host.Cycles(km.Cycles[cfgM4]) / 32e6
		row := Fig5aRow{
			Name:        k.Name,
			OpsPerCycle: km.OpsPerCycle(cfgPULP4),
			MCUOpsPerCy: km.OpsPerCycle(cfgM4),
		}
		for _, f := range MCUFreqsHz {
			e := Fig5aEntry{MCUFreqHz: f}
			// The link is idle while the accelerator computes, so only the
			// host's run power is charged against the envelope.
			e.BudgetW = EnvelopeW - host.RunPowerW(f)
			if e.BudgetW > 0 {
				v, fp, ok := power.BestOp(e.BudgetW, km.Activity)
				if ok {
					accSec := float64(km.Cycles[cfgPULP4]) / fp
					e.PULPVdd, e.PULPFreqHz, e.Feasible = v, fp, true
					e.Speedup = baseSec / accSec
				}
			}
			if !e.Feasible {
				// No room for the accelerator: the MCU alone at f.
				e.Speedup = f / 32e6
			}
			row.Entries = append(row.Entries, e)
		}
		for _, f := range BeyondFreqsHz {
			row.Beyond = append(row.Beyond, Fig5aEntry{
				MCUFreqHz: f,
				Speedup:   f / 32e6, // same cycles, higher clock
			})
		}
		rows = append(rows, row)
	}
	return rows
}

// RenderFigure5a prints the envelope sweep.
func RenderFigure5a(w io.Writer, rows []Fig5aRow) {
	fmt.Fprintf(w, "speedup vs STM32-L476 @ 32 MHz within a %.0f mW envelope\n", EnvelopeW*1e3)
	fmt.Fprintf(w, "%-16s %9s |", "Benchmark", "ops/cyc")
	for _, f := range MCUFreqsHz {
		fmt.Fprintf(w, " %7s", fmt.Sprintf("MCU@%g", f/1e6))
	}
	fmt.Fprintf(w, " | beyond:")
	for _, f := range BeyondFreqsHz {
		fmt.Fprintf(w, " %5s", fmt.Sprintf("@%g", f/1e6))
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %9.2f |", r.Name, r.OpsPerCycle)
		for _, e := range r.Entries {
			fmt.Fprintf(w, " %6.1fx", e.Speedup)
		}
		fmt.Fprintf(w, " |        ")
		for _, e := range r.Beyond {
			fmt.Fprintf(w, " %4.1fx", e.Speedup)
		}
		fmt.Fprintln(w)
	}
	// Operating points chosen per MCU frequency (same for all kernels to
	// first order; print the matmul row's selections).
	if len(rows) > 0 {
		fmt.Fprintf(w, "%-16s %9s |", "(PULP op)", "")
		for _, e := range rows[0].Entries {
			if e.Feasible {
				fmt.Fprintf(w, " %7s", fmt.Sprintf("%.0fMHz", e.PULPFreqHz/1e6))
			} else {
				fmt.Fprintf(w, " %7s", "-")
			}
		}
		fmt.Fprintln(w)
	}
}

// --- Figure 5b ----------------------------------------------------------------

// Fig5bIterations is the amortization axis.
var Fig5bIterations = []int{1, 2, 4, 8, 16, 32, 64, 128, 256, 512}

// Fig5bMCUFreqsHz are the host frequencies of the Fig. 5b study.
var Fig5bMCUFreqsHz = []float64{2e6, 4e6, 8e6, 16e6, 26e6}

// Fig5bSeries is the efficiency curve of one host frequency.
type Fig5bSeries struct {
	MCUFreqHz  float64
	PULPVdd    float64
	PULPFreqHz float64
	Eff        []float64 // without double buffering, per Fig5bIterations
	EffDB      []float64 // with double buffering
}

// Figure5b runs the full offload pipeline with a default engine.
func Figure5b(k *kernels.Instance, m *Measurements) ([]Fig5bSeries, error) {
	return Figure5bWith(defaultEngine(), k, m)
}

// Figure5bWith runs the full offload pipeline (binary + per-iteration data
// over QSPI) for the given kernel at every host frequency, with the
// accelerator at its envelope operating point, and reports efficiency
// vs the ideal (compute-only) time. One job per host frequency: all
// iteration counts of one frequency share a simulated system (the warm
// binary cache matters), exactly like the serial study.
func Figure5bWith(eng *sweep.Engine, k *kernels.Instance, m *Measurements) ([]Fig5bSeries, error) {
	km, ok := m.ByK[k.Name]
	if !ok {
		return nil, fmt.Errorf("paper: kernel %q not measured", k.Name)
	}
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		return nil, err
	}
	in := k.Input(1)
	ph, err := progKey(prog)
	if err != nil {
		return nil, err
	}
	host := power.STM32L476
	var jobs []sweep.Job[Fig5bSeries]
	for _, f := range Fig5bMCUFreqsHz {
		budget := EnvelopeW - host.RunPowerW(f)
		v, fp, ok := power.BestOp(budget, km.Activity)
		if !ok {
			continue
		}
		cfg := core.Config{Host: host, HostFreqHz: f, Lanes: 4, AccVdd: v, AccFreqHz: fp}
		key := fmt.Sprintf("fig5b|%s|%s|prog=%s|iters=%v",
			kernelKey(k, in), systemKey(cfg), ph, Fig5bIterations)
		job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Threads: 4, Args: k.Args()}
		f, v, fp := f, v, fp
		jobs = append(jobs, sweep.Job[Fig5bSeries]{
			Key: key,
			Run: func() (Fig5bSeries, error) {
				sys, err := core.NewSystem(cfg)
				if err != nil {
					return Fig5bSeries{}, err
				}
				s := Fig5bSeries{MCUFreqHz: f, PULPVdd: v, PULPFreqHz: fp}
				for _, n := range Fig5bIterations {
					_, rep, err := sys.Offload(job, core.Options{Iterations: n})
					if err != nil {
						return Fig5bSeries{}, err
					}
					s.Eff = append(s.Eff, rep.Efficiency)
					_, repDB, err := sys.Offload(job, core.Options{Iterations: n, DoubleBuffer: true})
					if err != nil {
						return Fig5bSeries{}, err
					}
					s.EffDB = append(s.EffDB, repDB.Efficiency)
				}
				return s, nil
			},
		})
	}
	return sweep.Run(eng, jobs)
}

// RenderFigure5b prints both efficiency families.
func RenderFigure5b(w io.Writer, kernelName string, series []Fig5bSeries) {
	fmt.Fprintf(w, "offload efficiency vs ideal, %s, QSPI = MCU clock / 2\n", kernelName)
	for _, db := range []bool{false, true} {
		if db {
			fmt.Fprintln(w, "with double buffering:")
		} else {
			fmt.Fprintln(w, "single buffered:")
		}
		fmt.Fprintf(w, "%-22s", "iterations/offload:")
		for _, n := range Fig5bIterations {
			fmt.Fprintf(w, " %6d", n)
		}
		fmt.Fprintln(w)
		for _, s := range series {
			fmt.Fprintf(w, "MCU %4.0f MHz (P@%3.0fMHz)", s.MCUFreqHz/1e6, s.PULPFreqHz/1e6)
			vals := s.Eff
			if db {
				vals = s.EffDB
			}
			for _, v := range vals {
				fmt.Fprintf(w, " %6.3f", v)
			}
			fmt.Fprintln(w)
		}
	}
}
