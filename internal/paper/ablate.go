package paper

import (
	"fmt"
	"io"

	"hetsim/internal/cluster"
	"hetsim/internal/core"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
	"hetsim/internal/kernels"
	"hetsim/internal/loader"
	"hetsim/internal/power"
	"hetsim/internal/sensor"
	"hetsim/internal/sweep"
)

// This file holds the beyond-paper ablations: the studies Section V
// sketches (decoupled link clock, sensor-direct data path) and the
// design-choice ablations DESIGN.md calls out (per-extension speedup
// contribution, TCDM banking). Each ablation is a sweep producer/consumer:
// it emits one job per simulated point and folds the in-order results into
// its rows.

// --- Per-extension ablation -----------------------------------------------------

// ExtVariant is one feature-removed build of the accelerator core.
type ExtVariant struct {
	Name string
	Mod  func(*isa.Features)
}

// ExtVariants lists the ablated features (one at a time, relative to the
// full OR10N configuration).
var ExtVariants = []ExtVariant{
	{"-SIMD", func(f *isa.Features) { f.SIMD = false }},
	{"-HWLoop", func(f *isa.Features) { f.HWLoop = false }},
	{"-MacRR", func(f *isa.Features) { f.MacRR = false }},
	{"-PostIncr", func(f *isa.Features) { f.PostIncr = false }},
	{"-MinMax", func(f *isa.Features) { f.MinMax = false }},
}

// ExtAblationRow is one kernel's per-extension slowdown factors
// (variant cycles / full cycles on a single OR10N core).
type ExtAblationRow struct {
	Name       string
	FullCycles uint64
	Slowdown   []float64 // parallel to ExtVariants
}

// ExtensionAblation measures how much each OR10N extension contributes to
// each kernel, using a default engine.
func ExtensionAblation(suite []*kernels.Instance) ([]ExtAblationRow, error) {
	return ExtensionAblationWith(defaultEngine(), suite)
}

// ExtensionAblationWith measures how much each OR10N extension contributes
// to each kernel: the kernel is rebuilt with one feature disabled (the code
// generator adapts, exactly like recompiling with a flag off) and rerun on
// a single core. A slowdown of 1.0 means the kernel never used the
// feature. One job per (kernel, variant) pair, plus the full build.
func ExtensionAblationWith(eng *sweep.Engine, suite []*kernels.Instance) ([]ExtAblationRow, error) {
	var jobs []sweep.Job[uint64]
	for _, k := range suite {
		full, err := variantJob(k, isa.PULPFull)
		if err != nil {
			return nil, err
		}
		jobs = append(jobs, full)
		for _, v := range ExtVariants {
			tgt := isa.PULPFull
			tgt.Name = isa.PULPFull.Name + v.Name
			v.Mod(&tgt.Feat)
			job, err := variantJob(k, tgt)
			if err != nil {
				return nil, fmt.Errorf("%s %s: %w", k.Name, v.Name, err)
			}
			jobs = append(jobs, job)
		}
	}
	cycles, err := sweep.Run(eng, jobs)
	if err != nil {
		return nil, err
	}
	rows := make([]ExtAblationRow, 0, len(suite))
	perKernel := 1 + len(ExtVariants)
	for i, k := range suite {
		row := ExtAblationRow{Name: k.Name, FullCycles: cycles[i*perKernel]}
		for v := range ExtVariants {
			row.Slowdown = append(row.Slowdown,
				float64(cycles[i*perKernel+1+v])/float64(row.FullCycles))
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// variantJob builds the single-core run of one (kernel, target-variant)
// pair as a sweep job.
func variantJob(k *kernels.Instance, tgt isa.Target) (sweep.Job[uint64], error) {
	prog, err := k.Build(tgt, devrt.Accel)
	if err != nil {
		return sweep.Job[uint64]{}, err
	}
	cfg := cluster.PULPConfig()
	cfg.Target = tgt
	in := k.Input(1)
	ph, err := progKey(prog)
	if err != nil {
		return sweep.Job[uint64]{}, err
	}
	key := fmt.Sprintf("extablate|%s|%s|prog=%s|threads=1|max=%d",
		kernelKey(k, in), clusterKey(cfg), ph, uint64(measureMaxCycles))
	comp, err := kernels.Compiled(prog, cfg.Target)
	if err != nil {
		return sweep.Job[uint64]{}, err
	}
	job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Threads: 1, Args: k.Args(), Compiled: comp}
	return sweep.Job[uint64]{
		Key: key,
		Run: func() (uint64, error) {
			res, err := cluster.RunJob(cfg, devrt.Accel, job, measureMaxCycles)
			if err != nil {
				return 0, err
			}
			return res.Cycles, nil
		},
	}, nil
}

// RenderExtensionAblation prints the slowdown matrix.
func RenderExtensionAblation(w io.Writer, rows []ExtAblationRow) {
	fmt.Fprintf(w, "single-core slowdown when disabling one OR10N extension (1.00 = unused)\n")
	fmt.Fprintf(w, "%-16s %10s |", "Benchmark", "full cyc")
	for _, v := range ExtVariants {
		fmt.Fprintf(w, " %9s", v.Name)
	}
	fmt.Fprintln(w)
	for _, r := range rows {
		fmt.Fprintf(w, "%-16s %10d |", r.Name, r.FullCycles)
		for _, s := range r.Slowdown {
			fmt.Fprintf(w, " %8.2fx", s)
		}
		fmt.Fprintln(w)
	}
}

// --- TCDM bank sweep --------------------------------------------------------------

// BankSweepPoint is the 4-core cycle count at one bank count.
type BankSweepPoint struct {
	Banks        int
	Cycles       uint64
	ConflictRate float64
}

// BankSweep measures the 4-core matmul against the number of TCDM banks,
// using a default engine.
func BankSweep(k *kernels.Instance) ([]BankSweepPoint, error) {
	return BankSweepWith(defaultEngine(), k)
}

// BankSweepWith measures the 4-core kernel against the number of TCDM
// banks: with fewer banks than cores the interconnect serializes (the
// ablation behind the "2 banks per core" rule of PULP clusters). One job
// per bank count.
func BankSweepWith(eng *sweep.Engine, k *kernels.Instance) ([]BankSweepPoint, error) {
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		return nil, err
	}
	in := k.Input(1)
	ph, err := progKey(prog)
	if err != nil {
		return nil, err
	}
	bankCounts := []int{1, 2, 4, 8, 16}
	jobs := make([]sweep.Job[BankSweepPoint], 0, len(bankCounts))
	for _, banks := range bankCounts {
		banks := banks
		cfg := cluster.PULPConfig()
		cfg.TCDMBanks = banks
		key := fmt.Sprintf("banksweep|%s|%s|prog=%s|threads=4|max=%d",
			kernelKey(k, in), clusterKey(cfg), ph, uint64(measureMaxCycles))
		comp, err := kernels.Compiled(prog, cfg.Target)
		if err != nil {
			return nil, err
		}
		job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Threads: 4, Args: k.Args(), Compiled: comp}
		jobs = append(jobs, sweep.Job[BankSweepPoint]{
			Key: key,
			Run: func() (BankSweepPoint, error) {
				res, err := cluster.RunJob(cfg, devrt.Accel, job, measureMaxCycles)
				if err != nil {
					return BankSweepPoint{}, fmt.Errorf("banks=%d: %w", banks, err)
				}
				tot := res.Stats.TCDMAccess + res.Stats.TCDMConf
				rate := 0.0
				if tot > 0 {
					rate = float64(res.Stats.TCDMConf) / float64(tot)
				}
				return BankSweepPoint{Banks: banks, Cycles: res.Cycles, ConflictRate: rate}, nil
			},
		})
	}
	return sweep.Run(eng, jobs)
}

// RenderBankSweep prints the sweep.
func RenderBankSweep(w io.Writer, name string, pts []BankSweepPoint) {
	fmt.Fprintf(w, "4-core %s vs TCDM bank count\n", name)
	fmt.Fprintf(w, "%6s %12s %10s %10s\n", "banks", "cycles", "conflicts", "vs 8banks")
	var ref uint64
	for _, p := range pts {
		if p.Banks == 8 {
			ref = p.Cycles
		}
	}
	for _, p := range pts {
		fmt.Fprintf(w, "%6d %12d %9.1f%% %9.2fx\n",
			p.Banks, p.Cycles, p.ConflictRate*100, float64(p.Cycles)/float64(ref))
	}
}

// --- Decoupled link clock (Section V) ------------------------------------------------

// LinkAblationPoint compares the MCU-tied link with a decoupled one.
type LinkAblationPoint struct {
	MCUFreqHz   float64
	LinkHz      float64
	Decoupled   bool
	Efficiency  float64 // double-buffered, 64 iterations
	PerIterTime float64
}

// LinkAblation quantifies Section V's decoupled-link proposal, using a
// default engine.
func LinkAblation(k *kernels.Instance, m *Measurements) ([]LinkAblationPoint, error) {
	return LinkAblationWith(defaultEngine(), k, m)
}

// LinkAblationWith quantifies Section V's proposal: at a slow MCU clock
// the tied SPI strangles the pipeline; decoupling the link clock (here
// 32 MHz) removes the bottleneck without raising the MCU frequency. One
// job per (MCU frequency, coupling) point.
func LinkAblationWith(eng *sweep.Engine, k *kernels.Instance, m *Measurements) ([]LinkAblationPoint, error) {
	km, ok := m.ByK[k.Name]
	if !ok {
		return nil, fmt.Errorf("paper: kernel %q not measured", k.Name)
	}
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		return nil, err
	}
	in := k.Input(1)
	ph, err := progKey(prog)
	if err != nil {
		return nil, err
	}
	host := power.STM32L476
	var jobs []sweep.Job[LinkAblationPoint]
	for _, f := range []float64{2e6, 4e6, 8e6} {
		budget := EnvelopeW - host.RunPowerW(f)
		v, fp, ok := power.BestOp(budget, km.Activity)
		if !ok {
			continue
		}
		for _, decoupled := range []bool{false, true} {
			f, decoupled := f, decoupled
			cfg := core.Config{Host: host, HostFreqHz: f, Lanes: 4, AccVdd: v, AccFreqHz: fp}
			if decoupled {
				cfg.LinkClockHz = 32e6
			}
			key := fmt.Sprintf("linkablate|%s|%s|prog=%s|decoupled=%v|iters=64|db=true",
				kernelKey(k, in), systemKey(cfg), ph, decoupled)
			job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Threads: 4, Args: k.Args()}
			jobs = append(jobs, sweep.Job[LinkAblationPoint]{
				Key: key,
				Run: func() (LinkAblationPoint, error) {
					sys, err := core.NewSystem(cfg)
					if err != nil {
						return LinkAblationPoint{}, err
					}
					_, rep, err := sys.Offload(job, core.Options{Iterations: 64, DoubleBuffer: true})
					if err != nil {
						return LinkAblationPoint{}, err
					}
					return LinkAblationPoint{
						MCUFreqHz: f, LinkHz: sys.Link.Cfg.ClockHz, Decoupled: decoupled,
						Efficiency:  rep.Efficiency,
						PerIterTime: rep.TotalTime / float64(rep.Iterations),
					}, nil
				},
			})
		}
	}
	return sweep.Run(eng, jobs)
}

// RenderLinkAblation prints the comparison.
func RenderLinkAblation(w io.Writer, name string, pts []LinkAblationPoint) {
	fmt.Fprintf(w, "%s, 64 double-buffered iterations: MCU-tied vs decoupled 32 MHz link\n", name)
	fmt.Fprintf(w, "%8s %10s %10s %12s %14s\n", "MCU MHz", "link MHz", "decoupled", "efficiency", "ms/iteration")
	for _, p := range pts {
		fmt.Fprintf(w, "%8.0f %10.1f %10v %12.3f %14.3f\n",
			p.MCUFreqHz/1e6, p.LinkHz/1e6, p.Decoupled, p.Efficiency, p.PerIterTime*1e3)
	}
}

// --- Sensor data path (Section V / Figure 1) -------------------------------------------

// SensorAblationPoint compares the two sensor wirings of DESIGN.md.
type SensorAblationPoint struct {
	Path        sensor.Path
	Efficiency  float64
	PerIterTime float64
	EnergyPerIt float64
}

// SensorAblation runs the camera-fed pipeline comparison with a default
// engine.
func SensorAblation(k *kernels.Instance, m *Measurements, cam sensor.Sensor, mcuHz float64) ([]SensorAblationPoint, error) {
	return SensorAblationWith(defaultEngine(), k, m, cam, mcuHz)
}

// SensorAblationWith runs a camera-fed pipeline with the sample routed
// through the host (Figure 1) and directly into L2 (Section V variant).
// Both paths share one simulated system, exactly like the serial study,
// so they form a single job.
func SensorAblationWith(eng *sweep.Engine, k *kernels.Instance, m *Measurements, cam sensor.Sensor, mcuHz float64) ([]SensorAblationPoint, error) {
	km, ok := m.ByK[k.Name]
	if !ok {
		return nil, fmt.Errorf("paper: kernel %q not measured", k.Name)
	}
	if err := cam.Validate(); err != nil {
		return nil, err
	}
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		return nil, err
	}
	in := k.Input(1)
	ph, err := progKey(prog)
	if err != nil {
		return nil, err
	}
	budget := EnvelopeW - power.STM32L476.RunPowerW(mcuHz)
	v, fp, ok := power.BestOp(budget, km.Activity)
	if !ok {
		return nil, fmt.Errorf("paper: envelope infeasible at %.0f MHz", mcuHz/1e6)
	}
	cfg := core.Config{Host: power.STM32L476, HostFreqHz: mcuHz, Lanes: 4, AccVdd: v, AccFreqHz: fp}
	key := fmt.Sprintf("sensorablate|%s|%s|prog=%s|cam=%+v|iters=64|db=true",
		kernelKey(k, in), systemKey(cfg), ph, cam)
	job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1, Threads: 4, Args: k.Args()}
	jobs := []sweep.Job[[]SensorAblationPoint]{{
		Key: key,
		Run: func() ([]SensorAblationPoint, error) {
			sys, err := core.NewSystem(cfg)
			if err != nil {
				return nil, err
			}
			var pts []SensorAblationPoint
			for _, path := range []sensor.Path{sensor.HostPath, sensor.DirectPath} {
				at, ej, via := cam.Feed(path)
				_, rep, err := sys.Offload(job, core.Options{
					Iterations: 64, DoubleBuffer: true,
					Sensor: &core.SensorFeed{AcquireTime: at, SampleEnergyJ: ej, ViaLink: via},
				})
				if err != nil {
					return nil, err
				}
				pts = append(pts, SensorAblationPoint{
					Path:        path,
					Efficiency:  rep.Efficiency,
					PerIterTime: rep.TotalTime / float64(rep.Iterations),
					EnergyPerIt: rep.Energy.TotalJ() / float64(rep.Iterations),
				})
			}
			return pts, nil
		},
	}}
	res, err := sweep.Run(eng, jobs)
	if err != nil {
		return nil, err
	}
	return res[0], nil
}

// RenderSensorAblation prints the comparison.
func RenderSensorAblation(w io.Writer, name string, pts []SensorAblationPoint) {
	fmt.Fprintf(w, "%s fed by a camera: host-routed (Fig. 1) vs direct-to-L2 (Sec. V)\n", name)
	fmt.Fprintf(w, "%8s %12s %14s %14s\n", "path", "efficiency", "ms/frame", "uJ/frame")
	for _, p := range pts {
		fmt.Fprintf(w, "%8s %12.3f %14.3f %14.1f\n",
			p.Path, p.Efficiency, p.PerIterTime*1e3, p.EnergyPerIt*1e6)
	}
}

// --- Cluster scaling (beyond paper) ---------------------------------------------------

// ScalingPoint is the team-size scaling of one kernel on a wider cluster.
type ScalingPoint struct {
	Threads int
	Cycles  uint64
	Speedup float64 // vs 1 thread
}

// ScalingStudy extends Fig. 4's parallel panel with a default engine.
func ScalingStudy(k *kernels.Instance) ([]ScalingPoint, error) {
	return ScalingStudyWith(defaultEngine(), k)
}

// ScalingStudyWith extends Fig. 4's parallel panel beyond the paper's
// 4-core cluster: the same binaries run on an 8-core cluster (16 TCDM
// banks, doubled I$) with team sizes 1..8, showing where the kernels stop
// scaling. One job per team size.
func ScalingStudyWith(eng *sweep.Engine, k *kernels.Instance) ([]ScalingPoint, error) {
	prog, err := k.Build(isa.PULPFull, devrt.Accel)
	if err != nil {
		return nil, err
	}
	in := k.Input(1)
	ph, err := progKey(prog)
	if err != nil {
		return nil, err
	}
	teamSizes := []int{1, 2, 4, 6, 8}
	jobs := make([]sweep.Job[uint64], 0, len(teamSizes))
	for _, threads := range teamSizes {
		threads := threads
		cfg := cluster.PULPConfig()
		cfg.Cores = 8
		cfg.TCDMBanks = 16
		cfg.ICacheSize = 8 * 1024
		key := fmt.Sprintf("scaling|%s|%s|prog=%s|threads=%d|max=%d",
			kernelKey(k, in), clusterKey(cfg), ph, threads, uint64(measureMaxCycles))
		comp, err := kernels.Compiled(prog, cfg.Target)
		if err != nil {
			return nil, err
		}
		job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(), Iters: 1,
			Threads: uint32(threads), Args: k.Args(), Compiled: comp}
		jobs = append(jobs, sweep.Job[uint64]{
			Key: key,
			Run: func() (uint64, error) {
				res, err := cluster.RunJob(cfg, devrt.Accel, job, measureMaxCycles)
				if err != nil {
					return 0, fmt.Errorf("threads=%d: %w", threads, err)
				}
				return res.Cycles, nil
			},
		})
	}
	cycles, err := sweep.Run(eng, jobs)
	if err != nil {
		return nil, err
	}
	pts := make([]ScalingPoint, 0, len(teamSizes))
	base := cycles[0]
	for i, threads := range teamSizes {
		pts = append(pts, ScalingPoint{
			Threads: threads,
			Cycles:  cycles[i],
			Speedup: float64(base) / float64(cycles[i]),
		})
	}
	return pts, nil
}

// RenderScalingStudy prints the scaling curve.
func RenderScalingStudy(w io.Writer, name string, pts []ScalingPoint) {
	fmt.Fprintf(w, "%s on an 8-core cluster (beyond the paper's 4)\n", name)
	fmt.Fprintf(w, "%8s %12s %9s\n", "threads", "cycles", "speedup")
	for _, p := range pts {
		fmt.Fprintf(w, "%8d %12d %8.2fx\n", p.Threads, p.Cycles, p.Speedup)
	}
}
