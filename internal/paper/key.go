package paper

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/cluster"
	"hetsim/internal/core"
	"hetsim/internal/kernels"
)

// This file builds the stable content keys of the sweep jobs. A key must
// pin down everything a simulation's result depends on — the emitted
// program bytes, the input buffer, the full cluster or system shape, the
// run parameters — so that the content-addressed cache can never serve a
// stale result for a changed experiment. What keys deliberately do NOT
// capture is the simulator's own semantics; sweep.Version exists for that
// (see DESIGN.md §8 for the invalidation rules).

// hashBytes fingerprints a byte buffer for use inside a job key.
func hashBytes(b []byte) string {
	sum := sha256.Sum256(b)
	return hex.EncodeToString(sum[:])
}

// progKey fingerprints the program exactly as the device would see it:
// the serialized binary image (see kernels.HashProgram).
func progKey(p *asm.Program) (string, error) {
	return kernels.HashProgram(p)
}

// kernelKey identifies a kernel instance plus its concrete input.
func kernelKey(k *kernels.Instance, in []byte) string {
	return fmt.Sprintf("kernel=%s(%s)|in=%s|outlen=%d|args=%x",
		k.Name, k.ParamDesc, hashBytes(in), k.OutLen(), k.Args())
}

// clusterKey identifies the cluster shape. Target features and timing are
// spelled out (not just the name) so an ablated variant can never alias
// the full configuration.
func clusterKey(cfg cluster.Config) string {
	k := fmt.Sprintf("cores=%d|tgt=%s%+v%+v|tcdm=%d/%d|l2=%d|ic=%d/%d|l2lat=%d",
		cfg.Cores, cfg.Target.Name, cfg.Target.Feat, cfg.Target.Time,
		cfg.TCDMSize, cfg.TCDMBanks, cfg.L2Size, cfg.ICacheSize, cfg.ICacheLine,
		cfg.L2Latency)
	// Observation changes the cached payload (the attribution rides in the
	// result), not the simulation; the marker is appended only when set so
	// every pre-existing cache key stays valid.
	if cfg.Observe {
		k += "|obs"
	}
	return k
}

// systemKey identifies a host+link+accelerator system configuration.
func systemKey(cfg core.Config) string {
	acc := cluster.PULPConfig()
	if cfg.AccCluster != nil {
		acc = *cfg.AccCluster
	}
	return fmt.Sprintf("host=%s@%g|lanes=%d|linkhz=%g|crc=%v|vdd=%g|facc=%g|%s",
		cfg.Host.Name, cfg.HostFreqHz, cfg.Lanes, cfg.LinkClockHz, cfg.LinkCRC,
		cfg.AccVdd, cfg.AccFreqHz, clusterKey(acc))
}
