package paper

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"hetsim/internal/kernels"
)

func TestParseJobRequest(t *testing.T) {
	good := `{"tenant":"lab","timeout_ms":500,"spec":{"kernel":"matmul","seed":1,"config":"pulp4"}}`
	req, err := ParseJobRequest([]byte(good))
	if err != nil {
		t.Fatalf("good request rejected: %v", err)
	}
	if req.Tenant != "lab" || req.TimeoutMS != 500 || req.Spec.Kernel != "matmul" || req.Spec.Config != "pulp4" {
		t.Fatalf("good request decoded as %+v", req)
	}

	bad := []struct{ name, body string }{
		{"empty", ``},
		{"not json", `hello`},
		{"unknown field", `{"bogus":1,"spec":{"kernel":"matmul","seed":1,"config":"m3"}}`},
		{"trailing data", good + `{"again":true}`},
		{"missing kernel", `{"spec":{"seed":1,"config":"m3"}}`},
		{"unknown config", `{"spec":{"kernel":"matmul","seed":1,"config":"turbo"}}`},
		{"long kernel", `{"spec":{"kernel":"` + strings.Repeat("x", 129) + `","seed":1,"config":"m3"}}`},
		{"long tenant", `{"tenant":"` + strings.Repeat("t", 65) + `","spec":{"kernel":"matmul","seed":1,"config":"m3"}}`},
		{"control tenant", `{"tenant":"a\tb","spec":{"kernel":"matmul","seed":1,"config":"m3"}}`},
		{"negative timeout", `{"timeout_ms":-5,"spec":{"kernel":"matmul","seed":1,"config":"m3"}}`},
		{"oversized", `{"tenant":"` + strings.Repeat(" ", maxJobRequestBytes) + `"}`},
	}
	for _, tc := range bad {
		if _, err := ParseJobRequest([]byte(tc.body)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSpecConfigsMatchMatrix(t *testing.T) {
	cs := SpecConfigs()
	if len(cs) != len(measureRuns) {
		t.Fatalf("SpecConfigs has %d entries, matrix has %d", len(cs), len(measureRuns))
	}
	for i, rc := range measureRuns {
		if cs[i] != string(rc.key) {
			t.Fatalf("SpecConfigs[%d] = %q, matrix has %q", i, cs[i], rc.key)
		}
	}
}

// TestBuildSpecJobMatchesLocal pins the property the service rests on:
// the job a wire spec reconstructs has exactly the content key the local
// measurement path produces for the same point, and its result marshals
// to the same bytes.
func TestBuildSpecJobMatchesLocal(t *testing.T) {
	k := kernels.SmallSuite()[0]
	in := k.Input(1)
	for _, rc := range measureRuns {
		local, err := measureJob(k, in, rc, false)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := BuildSpecJob(JobSpec{Kernel: k.Name, Small: true, Seed: 1, Config: string(rc.key)})
		if err != nil {
			t.Fatal(err)
		}
		if remote.Key != local.Key {
			t.Fatalf("%s: spec key %q != local key %q", rc.key, remote.Key, local.Key)
		}
	}
	// Observe only marks the pulp4 key, exactly like the local path.
	for _, rc := range measureRuns {
		local, err := measureJob(k, in, rc, true)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := BuildSpecJob(JobSpec{Kernel: k.Name, Small: true, Seed: 1, Config: string(rc.key), Observe: true})
		if err != nil {
			t.Fatal(err)
		}
		if remote.Key != local.Key {
			t.Fatalf("%s observed: spec key %q != local key %q", rc.key, remote.Key, local.Key)
		}
	}
	// Result bytes: run one cheap point both ways.
	rc := measureRuns[1] // m3
	local, err := measureJob(k, in, rc, false)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := local.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(lv)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := BuildSpecJob(JobSpec{Kernel: k.Name, Small: true, Seed: 1, Config: string(rc.key)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("spec result bytes differ from local:\n got %s\nwant %s", got, want)
	}
}

func TestBuildSpecJobUnknownKernel(t *testing.T) {
	if _, err := BuildSpecJob(JobSpec{Kernel: "no-such-kernel", Seed: 1, Config: "m3"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	// A paper-suite-only kernel must not resolve in the small registry if
	// absent there, and vice versa names resolve per the Small flag.
	if _, err := BuildSpecJob(JobSpec{Kernel: kernels.SmallSuite()[0].Name, Small: true, Seed: 1, Config: "m3"}); err != nil {
		t.Fatalf("small-suite kernel rejected: %v", err)
	}
}

// TestMeasureRemoteFoldsLikeLocal routes the job matrix through an
// in-process runner that executes specs via BuildSpecJob — the shape of
// the real server without HTTP — and checks the fold is identical to the
// local path.
func TestMeasureRemoteFoldsLikeLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the small suite twice")
	}
	suite := kernels.SmallSuite()[:2]
	local, err := MeasureWith(defaultEngine(), suite)
	if err != nil {
		t.Fatal(err)
	}
	run := func(ctx context.Context, spec JobSpec) (json.RawMessage, error) {
		job, err := BuildSpecJob(spec)
		if err != nil {
			return nil, err
		}
		return job.Run()
	}
	remote, err := MeasureRemote(context.Background(), run, suite, true, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	lb, rb := renderAll(t, local), renderAll(t, remote)
	if string(lb) != string(rb) {
		t.Fatalf("remote tables differ from local:\n%s\nvs\n%s", rb, lb)
	}
}

// FuzzParseJobRequest hammers the server's first line of defense: the
// decoder must reject or accept without panicking, and anything it
// accepts must survive a re-encode/re-parse round trip.
func FuzzParseJobRequest(f *testing.F) {
	f.Add([]byte(`{"tenant":"lab","timeout_ms":500,"spec":{"kernel":"matmul","seed":1,"config":"pulp4"}}`))
	f.Add([]byte(`{"spec":{"kernel":"fir","small":true,"seed":7,"config":"plain","observe":true}}`))
	f.Add([]byte(`{"spec":{"kernel":"","seed":0,"config":""}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"tenant":""}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := ParseJobRequest(b)
		if err != nil {
			return
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		again, err := ParseJobRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded request rejected: %v\n%s", err, enc)
		}
		if *again != *req {
			t.Fatalf("round trip changed the request: %+v vs %+v", again, req)
		}
	})
}
