package paper

import (
	"context"
	"encoding/json"
	"strings"
	"testing"

	"hetsim/internal/kernels"
)

func TestParseJobRequest(t *testing.T) {
	good := `{"tenant":"lab","timeout_ms":500,"spec":{"kernel":"matmul","seed":1,"config":"pulp4"}}`
	req, err := ParseJobRequest([]byte(good))
	if err != nil {
		t.Fatalf("good request rejected: %v", err)
	}
	if req.Tenant != "lab" || req.TimeoutMS != 500 || req.Spec.Kernel != "matmul" || req.Spec.Config != "pulp4" {
		t.Fatalf("good request decoded as %+v", req)
	}

	bad := []struct{ name, body string }{
		{"empty", ``},
		{"not json", `hello`},
		{"unknown field", `{"bogus":1,"spec":{"kernel":"matmul","seed":1,"config":"m3"}}`},
		{"trailing data", good + `{"again":true}`},
		{"missing kernel", `{"spec":{"seed":1,"config":"m3"}}`},
		{"unknown config", `{"spec":{"kernel":"matmul","seed":1,"config":"turbo"}}`},
		{"long kernel", `{"spec":{"kernel":"` + strings.Repeat("x", 129) + `","seed":1,"config":"m3"}}`},
		{"long tenant", `{"tenant":"` + strings.Repeat("t", 65) + `","spec":{"kernel":"matmul","seed":1,"config":"m3"}}`},
		{"control tenant", `{"tenant":"a\tb","spec":{"kernel":"matmul","seed":1,"config":"m3"}}`},
		{"negative timeout", `{"timeout_ms":-5,"spec":{"kernel":"matmul","seed":1,"config":"m3"}}`},
		{"oversized", `{"tenant":"` + strings.Repeat(" ", maxJobRequestBytes) + `"}`},
	}
	for _, tc := range bad {
		if _, err := ParseJobRequest([]byte(tc.body)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
}

func TestSpecConfigsMatchMatrix(t *testing.T) {
	cs := SpecConfigs()
	if len(cs) != len(measureRuns) {
		t.Fatalf("SpecConfigs has %d entries, matrix has %d", len(cs), len(measureRuns))
	}
	for i, rc := range measureRuns {
		if cs[i] != string(rc.key) {
			t.Fatalf("SpecConfigs[%d] = %q, matrix has %q", i, cs[i], rc.key)
		}
	}
}

// TestBuildSpecJobMatchesLocal pins the property the service rests on:
// the job a wire spec reconstructs has exactly the content key the local
// measurement path produces for the same point, and its result marshals
// to the same bytes.
func TestBuildSpecJobMatchesLocal(t *testing.T) {
	k := kernels.SmallSuite()[0]
	in := k.Input(1)
	for _, rc := range measureRuns {
		local, err := measureJob(k, in, rc, false)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := BuildSpecJob(JobSpec{Kernel: k.Name, Small: true, Seed: 1, Config: string(rc.key)})
		if err != nil {
			t.Fatal(err)
		}
		if remote.Key != local.Key {
			t.Fatalf("%s: spec key %q != local key %q", rc.key, remote.Key, local.Key)
		}
	}
	// Observe only marks the pulp4 key, exactly like the local path.
	for _, rc := range measureRuns {
		local, err := measureJob(k, in, rc, true)
		if err != nil {
			t.Fatal(err)
		}
		remote, err := BuildSpecJob(JobSpec{Kernel: k.Name, Small: true, Seed: 1, Config: string(rc.key), Observe: true})
		if err != nil {
			t.Fatal(err)
		}
		if remote.Key != local.Key {
			t.Fatalf("%s observed: spec key %q != local key %q", rc.key, remote.Key, local.Key)
		}
	}
	// Result bytes: run one cheap point both ways.
	rc := measureRuns[1] // m3
	local, err := measureJob(k, in, rc, false)
	if err != nil {
		t.Fatal(err)
	}
	lv, err := local.Run()
	if err != nil {
		t.Fatal(err)
	}
	want, err := json.Marshal(lv)
	if err != nil {
		t.Fatal(err)
	}
	remote, err := BuildSpecJob(JobSpec{Kernel: k.Name, Small: true, Seed: 1, Config: string(rc.key)})
	if err != nil {
		t.Fatal(err)
	}
	got, err := remote.Run()
	if err != nil {
		t.Fatal(err)
	}
	if string(got) != string(want) {
		t.Fatalf("spec result bytes differ from local:\n got %s\nwant %s", got, want)
	}
}

func TestBuildSpecJobUnknownKernel(t *testing.T) {
	if _, err := BuildSpecJob(JobSpec{Kernel: "no-such-kernel", Seed: 1, Config: "m3"}); err == nil {
		t.Fatal("unknown kernel accepted")
	}
	// A paper-suite-only kernel must not resolve in the small registry if
	// absent there, and vice versa names resolve per the Small flag.
	if _, err := BuildSpecJob(JobSpec{Kernel: kernels.SmallSuite()[0].Name, Small: true, Seed: 1, Config: "m3"}); err != nil {
		t.Fatalf("small-suite kernel rejected: %v", err)
	}
}

// TestMeasureRemoteFoldsLikeLocal routes the job matrix through an
// in-process runner that executes specs via BuildSpecJob — the shape of
// the real server without HTTP — and checks the fold is identical to the
// local path.
func TestMeasureRemoteFoldsLikeLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the small suite twice")
	}
	suite := kernels.SmallSuite()[:2]
	local, err := MeasureWith(defaultEngine(), suite)
	if err != nil {
		t.Fatal(err)
	}
	run := func(ctx context.Context, spec JobSpec) (json.RawMessage, error) {
		job, err := BuildSpecJob(spec)
		if err != nil {
			return nil, err
		}
		return job.Run()
	}
	remote, err := MeasureRemote(context.Background(), run, suite, true, false, 4)
	if err != nil {
		t.Fatal(err)
	}
	lb, rb := renderAll(t, local), renderAll(t, remote)
	if string(lb) != string(rb) {
		t.Fatalf("remote tables differ from local:\n%s\nvs\n%s", rb, lb)
	}
}

func TestParseBatchRequest(t *testing.T) {
	good := `{"tenant":"lab","timeout_ms":500,"specs":[{"kernel":"matmul","seed":1,"config":"pulp4"},{"kernel":"fir","small":true,"seed":1,"config":"plain"}]}`
	req, err := ParseBatchRequest([]byte(good))
	if err != nil {
		t.Fatalf("good explicit batch rejected: %v", err)
	}
	if req.Tenant != "lab" || len(req.Specs) != 2 || req.Specs[1].Kernel != "fir" {
		t.Fatalf("good batch decoded as %+v", req)
	}
	specs, err := req.Expand()
	if err != nil || len(specs) != 2 {
		t.Fatalf("explicit Expand = %d specs, %v", len(specs), err)
	}

	suite := `{"suite":"table1","small":true}`
	sreq, err := ParseBatchRequest([]byte(suite))
	if err != nil {
		t.Fatalf("good suite batch rejected: %v", err)
	}
	sspecs, err := sreq.Expand()
	if err != nil {
		t.Fatal(err)
	}
	if want := len(kernels.SmallSuite()) * len(measureRuns); len(sspecs) != want {
		t.Fatalf("suite expanded to %d specs, want %d", len(sspecs), want)
	}

	bad := []struct{ name, body string }{
		{"empty", ``},
		{"not json", `hello`},
		{"unknown field", `{"bogus":1,"specs":[{"kernel":"matmul","seed":1,"config":"m3"}]}`},
		{"trailing data", good + `{"again":true}`},
		{"neither form", `{"tenant":"lab"}`},
		{"both forms", `{"suite":"table1","specs":[{"kernel":"matmul","seed":1,"config":"m3"}]}`},
		{"unknown suite", `{"suite":"table9"}`},
		{"specs with suite knobs", `{"small":true,"specs":[{"kernel":"matmul","seed":1,"config":"m3"}]}`},
		{"bad spec inside", `{"specs":[{"kernel":"matmul","seed":1,"config":"m3"},{"kernel":"matmul","seed":1,"config":"turbo"}]}`},
		{"negative timeout", `{"timeout_ms":-5,"suite":"measure"}`},
		{"long tenant", `{"tenant":"` + strings.Repeat("t", 65) + `","suite":"measure"}`},
		{"oversized", `{"tenant":"` + strings.Repeat(" ", maxBatchRequestBytes) + `"}`},
	}
	for _, tc := range bad {
		if _, err := ParseBatchRequest([]byte(tc.body)); err == nil {
			t.Errorf("%s: accepted", tc.name)
		}
	}
	// A bad spec names its index for diagnosability.
	_, err = ParseBatchRequest([]byte(`{"specs":[{"kernel":"matmul","seed":1,"config":"m3"},{"kernel":"","seed":1,"config":"m3"}]}`))
	if err == nil || !strings.Contains(err.Error(), "batch spec 1") {
		t.Fatalf("bad spec error does not name its index: %v", err)
	}
	// The spec-count bound holds.
	var b strings.Builder
	b.WriteString(`{"specs":[`)
	for i := 0; i <= MaxBatchSpecs; i++ {
		if i > 0 {
			b.WriteString(",")
		}
		b.WriteString(`{"kernel":"m","seed":1,"config":"m3"}`)
	}
	b.WriteString(`]}`)
	if _, err := ParseBatchRequest([]byte(b.String())); err == nil {
		t.Error("over-bound spec count accepted")
	}
}

// TestSuiteSpecsMatchLocal pins what the suite form rests on: a named
// expansion yields exactly the (kernel × configuration) matrix the local
// MeasureWith producers schedule — same order, same content keys — so a
// suite batch hits the same cache entries and dedup flights as a local
// sweep.
func TestSuiteSpecsMatchLocal(t *testing.T) {
	specs, err := SuiteSpecs("table1", true, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	suite := kernels.SmallSuite()
	if len(specs) != len(suite)*len(measureRuns) {
		t.Fatalf("%d specs for a %d-kernel suite", len(specs), len(suite))
	}
	i := 0
	for _, k := range suite {
		in := k.Input(1)
		for _, rc := range measureRuns {
			local, err := measureJob(k, in, rc, false)
			if err != nil {
				t.Fatal(err)
			}
			remote, err := BuildSpecJob(specs[i])
			if err != nil {
				t.Fatal(err)
			}
			if remote.Key != local.Key {
				t.Fatalf("spec %d (%s/%s): key %q != local %q", i, k.Name, rc.key, remote.Key, local.Key)
			}
			i++
		}
	}
	// The measurement aliases all expand identically.
	for _, alias := range []string{"measure", "fig3", "fig4", "fig5a"} {
		got, err := SuiteSpecs(alias, true, false, 0)
		if err != nil {
			t.Fatal(err)
		}
		if len(got) != len(specs) {
			t.Fatalf("%s expanded to %d specs, table1 to %d", alias, len(got), len(specs))
		}
		for j := range got {
			if got[j] != specs[j] {
				t.Fatalf("%s[%d] = %+v, table1 has %+v", alias, j, got[j], specs[j])
			}
		}
	}
	// breakdown forces attribution on, exactly like the local producer.
	bspecs, err := SuiteSpecs("breakdown", true, false, 0)
	if err != nil {
		t.Fatal(err)
	}
	for j, s := range bspecs {
		if !s.Observe {
			t.Fatalf("breakdown spec %d not observed: %+v", j, s)
		}
	}
	if _, err := SuiteSpecs("table9", true, false, 0); err == nil {
		t.Fatal("unknown suite accepted")
	}
}

// TestMeasureRemoteBatchFoldsLikeLocal routes the whole campaign through
// an in-process batch runner — one call carrying every spec, the shape
// of /v1/batch without HTTP — and checks the fold is identical to the
// local path.
func TestMeasureRemoteBatchFoldsLikeLocal(t *testing.T) {
	if testing.Short() {
		t.Skip("simulates the small suite twice")
	}
	suite := kernels.SmallSuite()[:2]
	local, err := MeasureWith(defaultEngine(), suite)
	if err != nil {
		t.Fatal(err)
	}
	calls := 0
	run := func(ctx context.Context, specs []JobSpec) ([]json.RawMessage, error) {
		calls++
		out := make([]json.RawMessage, len(specs))
		for i, spec := range specs {
			job, err := BuildSpecJob(spec)
			if err != nil {
				return nil, err
			}
			if out[i], err = job.Run(); err != nil {
				return nil, err
			}
		}
		return out, nil
	}
	remote, err := MeasureRemoteBatch(context.Background(), run, suite, true, false)
	if err != nil {
		t.Fatal(err)
	}
	if calls != 1 {
		t.Fatalf("campaign cost %d batch calls, want 1", calls)
	}
	lb, rb := renderAll(t, local), renderAll(t, remote)
	if string(lb) != string(rb) {
		t.Fatalf("batch remote tables differ from local:\n%s\nvs\n%s", rb, lb)
	}
	// A runner returning the wrong shape is a protocol error, not a panic.
	short := func(ctx context.Context, specs []JobSpec) ([]json.RawMessage, error) {
		return make([]json.RawMessage, len(specs)-1), nil
	}
	if _, err := MeasureRemoteBatch(context.Background(), short, suite, true, false); err == nil {
		t.Fatal("short batch result accepted")
	}
}

// FuzzParseJobRequest hammers the server's first line of defense: the
// decoder must reject or accept without panicking, and anything it
// accepts must survive a re-encode/re-parse round trip.
func FuzzParseJobRequest(f *testing.F) {
	f.Add([]byte(`{"tenant":"lab","timeout_ms":500,"spec":{"kernel":"matmul","seed":1,"config":"pulp4"}}`))
	f.Add([]byte(`{"spec":{"kernel":"fir","small":true,"seed":7,"config":"plain","observe":true}}`))
	f.Add([]byte(`{"spec":{"kernel":"","seed":0,"config":""}}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"tenant":""}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := ParseJobRequest(b)
		if err != nil {
			return
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted request does not re-encode: %v", err)
		}
		again, err := ParseJobRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded request rejected: %v\n%s", err, enc)
		}
		if *again != *req {
			t.Fatalf("round trip changed the request: %+v vs %+v", again, req)
		}
	})
}

// FuzzParseBatchRequest gives the batch decoder the same treatment: no
// panics, and anything accepted survives a re-encode/re-parse round trip
// and still expands.
func FuzzParseBatchRequest(f *testing.F) {
	f.Add([]byte(`{"tenant":"lab","timeout_ms":500,"specs":[{"kernel":"matmul","seed":1,"config":"pulp4"}]}`))
	f.Add([]byte(`{"suite":"table1","small":true,"observe":true,"seed":7}`))
	f.Add([]byte(`{"suite":"breakdown"}`))
	f.Add([]byte(`{"specs":[]}`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[1,2,3]`))
	f.Add([]byte(`{"suite":"table1","specs":[{"kernel":"m","seed":1,"config":"m3"}]}`))
	f.Fuzz(func(t *testing.T, b []byte) {
		req, err := ParseBatchRequest(b)
		if err != nil {
			return
		}
		if _, err := req.Expand(); err != nil {
			t.Fatalf("accepted batch does not expand: %v", err)
		}
		enc, err := json.Marshal(req)
		if err != nil {
			t.Fatalf("accepted batch does not re-encode: %v", err)
		}
		again, err := ParseBatchRequest(enc)
		if err != nil {
			t.Fatalf("re-encoded batch rejected: %v\n%s", err, enc)
		}
		if again.Tenant != req.Tenant || again.Suite != req.Suite || len(again.Specs) != len(req.Specs) {
			t.Fatalf("round trip changed the request: %+v vs %+v", again, req)
		}
	})
}
