package paper

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"hetsim/internal/kernels"
	"hetsim/internal/sweep"
)

// This file is the wire codec of the simulation service (internal/serve,
// cmd/hetsimd): a JobSpec names one measurement point of the paper sweep
// compactly — kernel, suite size, input seed, configuration — and
// BuildSpecJob deterministically reconstructs the exact sweep job (same
// program bytes, same input, same content key) on the server, so a
// request is self-describing and two clients asking for the same point
// dedupe onto one simulation. MeasureRemote is the client-side fold:
// it routes the same job matrix measureWith runs locally through a
// remote runner and commits the results through the shared fold, which
// is what makes `hetexp -remote` byte-identical to local execution.

// SpecConfigs lists the valid JobSpec.Config values — the measurement
// configurations of the paper sweep, in matrix order.
func SpecConfigs() []string {
	cs := make([]string, len(measureRuns))
	for i, rc := range measureRuns {
		cs[i] = string(rc.key)
	}
	return cs
}

// JobSpec names one (kernel, configuration) measurement point.
type JobSpec struct {
	// Kernel is the Table I kernel name within the selected suite.
	Kernel string `json:"kernel"`
	// Small selects the reduced-size suite (fast smoke points).
	Small bool `json:"small,omitempty"`
	// Seed feeds the kernel's deterministic input generator.
	Seed uint64 `json:"seed"`
	// Config is one of SpecConfigs: plain, m3, m4, pulp1, pulp2, pulp4.
	Config string `json:"config"`
	// Observe attaches cycle attribution to the pulp4 point (the
	// breakdown table); it is ignored — exactly like the local path — on
	// every other configuration.
	Observe bool `json:"observe,omitempty"`
}

// Validate checks the shape of a spec without touching the kernel
// registry (BuildSpecJob resolves names; this guards the wire format).
func (s *JobSpec) Validate() error {
	if s.Kernel == "" {
		return fmt.Errorf("paper: job spec: empty kernel name")
	}
	if len(s.Kernel) > 128 {
		return fmt.Errorf("paper: job spec: kernel name longer than 128 bytes")
	}
	for _, rc := range measureRuns {
		if string(rc.key) == s.Config {
			return nil
		}
	}
	return fmt.Errorf("paper: job spec: unknown config %q", s.Config)
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Tenant attributes the request for rate limiting and quotas
	// (empty = the anonymous tenant).
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMS propagates the client's deadline: the server gives up
	// waiting (never the simulation itself, which other waiters may
	// share) after this many milliseconds. 0 = the server's default.
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	Spec      JobSpec `json:"spec"`
}

// JobResponse is the body of every /v1/jobs reply, success or failure.
type JobResponse struct {
	// Key is the job's content key (empty until the spec resolved).
	Key string `json:"key,omitempty"`
	// Cached reports a server-side cache hit; Shared reports that this
	// request coalesced onto another request's in-flight simulation.
	Cached bool `json:"cached,omitempty"`
	Shared bool `json:"shared,omitempty"`
	// Result is the simulation result (a measureResult), exactly the
	// bytes the content-addressed cache stores for Key.
	Result json.RawMessage `json:"result,omitempty"`
	// Error and Retryable describe a failure: Retryable tells the client
	// whether the same request can be re-submitted (transient failure)
	// or is terminal (panic, timeout, invalid spec).
	Error     string `json:"error,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
}

// maxJobRequestBytes bounds a request body; the decoder enforces it
// independently of the HTTP layer's own limit.
const maxJobRequestBytes = 1 << 16

// ParseJobRequest strictly decodes and validates a job request: unknown
// fields, trailing data, oversized bodies and malformed specs are
// errors, never best-effort guesses — the server's first line of defense
// against garbage traffic (fuzzed by FuzzParseJobRequest).
func ParseJobRequest(b []byte) (*JobRequest, error) {
	if len(b) > maxJobRequestBytes {
		return nil, fmt.Errorf("paper: job request larger than %d bytes", maxJobRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("paper: bad job request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("paper: trailing data after job request")
	}
	if len(req.Tenant) > 64 {
		return nil, fmt.Errorf("paper: tenant name longer than 64 bytes")
	}
	for _, r := range req.Tenant {
		if r < 0x20 || r == 0x7f {
			return nil, fmt.Errorf("paper: tenant name contains control characters")
		}
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("paper: negative timeout_ms")
	}
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// BuildSpecJob reconstructs the sweep job a spec names. The returned
// job's key is exactly the key the local measurement path produces for
// the same point — the property the whole dedup story rests on — and its
// result marshals to exactly the bytes a local cache entry would hold.
func BuildSpecJob(spec JobSpec) (sweep.Job[json.RawMessage], error) {
	var zero sweep.Job[json.RawMessage]
	if err := spec.Validate(); err != nil {
		return zero, err
	}
	suite := kernels.PaperSuite()
	if spec.Small {
		suite = kernels.SmallSuite()
	}
	var k *kernels.Instance
	for _, c := range suite {
		if c.Name == spec.Kernel {
			k = c
			break
		}
	}
	if k == nil {
		return zero, fmt.Errorf("paper: job spec: unknown kernel %q", spec.Kernel)
	}
	var rc measureRun
	for _, r := range measureRuns {
		if string(r.key) == spec.Config {
			rc = r
			break
		}
	}
	inner, err := measureJob(k, k.Input(spec.Seed), rc, spec.Observe)
	if err != nil {
		return zero, err
	}
	return sweep.Job[json.RawMessage]{
		Key: inner.Key,
		Run: func() (json.RawMessage, error) {
			v, err := inner.Run()
			if err != nil {
				return nil, err
			}
			raw, err := json.Marshal(v)
			if err != nil {
				return nil, err
			}
			return json.RawMessage(raw), nil
		},
	}, nil
}

// SpecRunner executes one measurement point remotely and returns the raw
// result bytes (a serialized measureResult). internal/serve's Client
// provides the HTTP implementation.
type SpecRunner func(ctx context.Context, spec JobSpec) (json.RawMessage, error)

// MeasureRemote measures the suite through a remote runner: the same
// (kernel × configuration) job matrix measureWith schedules locally is
// fanned out across `workers` concurrent requests, decoded, and folded
// in production order — so the resulting Measurements (and every table
// rendered from them) are byte-identical to a local run. small must
// match the suite (it tells the server which registry to resolve kernel
// names in); observe requests cycle attribution on the pulp4 points. The
// first error cancels the remaining requests.
func MeasureRemote(ctx context.Context, run SpecRunner, suite []*kernels.Instance, small, observe bool, workers int) (*Measurements, error) {
	m, _, err := newMeasurements(suite)
	if err != nil {
		return nil, err
	}
	var specs []JobSpec
	for _, k := range suite {
		for _, rc := range measureRuns {
			specs = append(specs, JobSpec{
				Kernel: k.Name, Small: small, Seed: m.seed,
				Config: string(rc.key), Observe: observe,
			})
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers <= 0 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]measureResult, len(specs))
	errs := make([]error, len(specs))
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(specs) || ctx.Err() != nil {
					return
				}
				raw, err := run(ctx, specs[i])
				if err == nil {
					err = json.Unmarshal(raw, &results[i])
				}
				if err != nil {
					errs[i] = err
					cancel() // first failure stops the fan-out
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("paper: remote point %s/%s: %w", specs[i].Kernel, specs[i].Config, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("paper: remote sweep cancelled: %w", err)
	}
	m.fold(results)
	return m, nil
}
