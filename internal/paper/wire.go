package paper

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sync"
	"sync/atomic"

	"hetsim/internal/kernels"
	"hetsim/internal/sweep"
)

// This file is the wire codec of the simulation service (internal/serve,
// cmd/hetsimd): a JobSpec names one measurement point of the paper sweep
// compactly — kernel, suite size, input seed, configuration — and
// BuildSpecJob deterministically reconstructs the exact sweep job (same
// program bytes, same input, same content key) on the server, so a
// request is self-describing and two clients asking for the same point
// dedupe onto one simulation. MeasureRemote is the client-side fold:
// it routes the same job matrix measureWith runs locally through a
// remote runner and commits the results through the shared fold, which
// is what makes `hetexp -remote` byte-identical to local execution.

// SpecConfigs lists the valid JobSpec.Config values — the measurement
// configurations of the paper sweep, in matrix order.
func SpecConfigs() []string {
	cs := make([]string, len(measureRuns))
	for i, rc := range measureRuns {
		cs[i] = string(rc.key)
	}
	return cs
}

// JobSpec names one (kernel, configuration) measurement point.
type JobSpec struct {
	// Kernel is the Table I kernel name within the selected suite.
	Kernel string `json:"kernel"`
	// Small selects the reduced-size suite (fast smoke points).
	Small bool `json:"small,omitempty"`
	// Seed feeds the kernel's deterministic input generator.
	Seed uint64 `json:"seed"`
	// Config is one of SpecConfigs: plain, m3, m4, pulp1, pulp2, pulp4.
	Config string `json:"config"`
	// Observe attaches cycle attribution to the pulp4 point (the
	// breakdown table); it is ignored — exactly like the local path — on
	// every other configuration.
	Observe bool `json:"observe,omitempty"`
}

// Validate checks the shape of a spec without touching the kernel
// registry (BuildSpecJob resolves names; this guards the wire format).
func (s *JobSpec) Validate() error {
	if s.Kernel == "" {
		return fmt.Errorf("paper: job spec: empty kernel name")
	}
	if len(s.Kernel) > 128 {
		return fmt.Errorf("paper: job spec: kernel name longer than 128 bytes")
	}
	for _, rc := range measureRuns {
		if string(rc.key) == s.Config {
			return nil
		}
	}
	return fmt.Errorf("paper: job spec: unknown config %q", s.Config)
}

// JobRequest is the body of POST /v1/jobs.
type JobRequest struct {
	// Tenant attributes the request for rate limiting and quotas
	// (empty = the anonymous tenant).
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMS propagates the client's deadline: the server gives up
	// waiting (never the simulation itself, which other waiters may
	// share) after this many milliseconds. 0 = the server's default.
	TimeoutMS int64   `json:"timeout_ms,omitempty"`
	Spec      JobSpec `json:"spec"`
}

// JobResponse is the body of every /v1/jobs reply, success or failure.
type JobResponse struct {
	// Key is the job's content key (empty until the spec resolved).
	Key string `json:"key,omitempty"`
	// Cached reports a server-side cache hit; Shared reports that this
	// request coalesced onto another request's in-flight simulation.
	Cached bool `json:"cached,omitempty"`
	Shared bool `json:"shared,omitempty"`
	// Result is the simulation result (a measureResult), exactly the
	// bytes the content-addressed cache stores for Key.
	Result json.RawMessage `json:"result,omitempty"`
	// Error and Retryable describe a failure: Retryable tells the client
	// whether the same request can be re-submitted (transient failure)
	// or is terminal (panic, timeout, invalid spec).
	Error     string `json:"error,omitempty"`
	Retryable bool   `json:"retryable,omitempty"`
}

// maxJobRequestBytes bounds a request body; the decoder enforces it
// independently of the HTTP layer's own limit.
const maxJobRequestBytes = 1 << 16

// validateTenant guards the tenant attribution shared by the singleton
// and batch request forms.
func validateTenant(tenant string) error {
	if len(tenant) > 64 {
		return fmt.Errorf("paper: tenant name longer than 64 bytes")
	}
	for _, r := range tenant {
		if r < 0x20 || r == 0x7f {
			return fmt.Errorf("paper: tenant name contains control characters")
		}
	}
	return nil
}

// ParseJobRequest strictly decodes and validates a job request: unknown
// fields, trailing data, oversized bodies and malformed specs are
// errors, never best-effort guesses — the server's first line of defense
// against garbage traffic (fuzzed by FuzzParseJobRequest).
func ParseJobRequest(b []byte) (*JobRequest, error) {
	if len(b) > maxJobRequestBytes {
		return nil, fmt.Errorf("paper: job request larger than %d bytes", maxJobRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var req JobRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("paper: bad job request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("paper: trailing data after job request")
	}
	if err := validateTenant(req.Tenant); err != nil {
		return nil, err
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("paper: negative timeout_ms")
	}
	if err := req.Spec.Validate(); err != nil {
		return nil, err
	}
	return &req, nil
}

// BatchRequest is the body of POST /v1/batch: a whole campaign in one
// submission. Exactly one of Specs (an explicit point list) and Suite (a
// named server-side expansion, see SuiteSpecs) must be set; Small,
// Observe and Seed parameterize a Suite expansion only — explicit specs
// already carry their own.
type BatchRequest struct {
	// Tenant attributes the whole batch for rate limiting and quotas:
	// admission charges the full job count, so packaging requests into a
	// batch never sidesteps a tenant's budget.
	Tenant string `json:"tenant,omitempty"`
	// TimeoutMS bounds the whole stream: when it expires the server cuts
	// the batch exactly like a drain — in-flight jobs finish and land in
	// the cache, the stream ends with a cursor of uncompleted keys.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
	// Specs is the explicit campaign point list.
	Specs []JobSpec `json:"specs,omitempty"`
	// Suite names a server-side expansion: "table1", "fig3", "fig4",
	// "fig5a" or "measure" (aliases of the same kernel × configuration
	// measurement matrix) or "breakdown" (the matrix with attribution on
	// the pulp4 points).
	Suite   string `json:"suite,omitempty"`
	Small   bool   `json:"small,omitempty"`
	Observe bool   `json:"observe,omitempty"`
	// Seed feeds the kernels' input generators (0 selects 1, the local
	// sweep default — the expansion must hit the same cache entries).
	Seed uint64 `json:"seed,omitempty"`
}

// maxBatchRequestBytes bounds a batch body (a 4096-spec campaign of
// worst-case specs fits comfortably).
const maxBatchRequestBytes = 1 << 20

// MaxBatchSpecs bounds the points of one batch submission.
const MaxBatchSpecs = 4096

// suiteNames lists the valid BatchRequest.Suite expansions. The
// measurement aliases all name the same matrix because every one of
// those artifacts is rendered from the same Measurements.
var suiteNames = []string{"measure", "table1", "fig3", "fig4", "fig5a", "breakdown"}

// ParseBatchRequest strictly decodes and validates a batch request, the
// same zero-tolerance discipline as ParseJobRequest (fuzzed by
// FuzzParseBatchRequest). Validation is wire-shape only: kernel names
// resolve later, in BuildSpecJob.
func ParseBatchRequest(b []byte) (*BatchRequest, error) {
	if len(b) > maxBatchRequestBytes {
		return nil, fmt.Errorf("paper: batch request larger than %d bytes", maxBatchRequestBytes)
	}
	dec := json.NewDecoder(bytes.NewReader(b))
	dec.DisallowUnknownFields()
	var req BatchRequest
	if err := dec.Decode(&req); err != nil {
		return nil, fmt.Errorf("paper: bad batch request: %w", err)
	}
	if dec.More() {
		return nil, fmt.Errorf("paper: trailing data after batch request")
	}
	if err := validateTenant(req.Tenant); err != nil {
		return nil, err
	}
	if req.TimeoutMS < 0 {
		return nil, fmt.Errorf("paper: negative timeout_ms")
	}
	switch {
	case len(req.Specs) > 0 && req.Suite != "":
		return nil, fmt.Errorf("paper: batch request names both specs and a suite")
	case len(req.Specs) == 0 && req.Suite == "":
		return nil, fmt.Errorf("paper: batch request names neither specs nor a suite")
	case len(req.Specs) > MaxBatchSpecs:
		return nil, fmt.Errorf("paper: batch of %d specs exceeds the %d-spec bound", len(req.Specs), MaxBatchSpecs)
	}
	if req.Suite != "" {
		ok := false
		for _, n := range suiteNames {
			if n == req.Suite {
				ok = true
				break
			}
		}
		if !ok {
			return nil, fmt.Errorf("paper: unknown suite %q", req.Suite)
		}
	} else if req.Small || req.Observe || req.Seed != 0 {
		return nil, fmt.Errorf("paper: small/observe/seed parameterize a suite expansion; explicit specs carry their own")
	}
	for i := range req.Specs {
		if err := req.Specs[i].Validate(); err != nil {
			return nil, fmt.Errorf("paper: batch spec %d: %w", i, err)
		}
	}
	return &req, nil
}

// Expand resolves the request into its concrete spec list: explicit
// specs verbatim, a named suite through SuiteSpecs.
func (r *BatchRequest) Expand() ([]JobSpec, error) {
	if r.Suite != "" {
		return SuiteSpecs(r.Suite, r.Small, r.Observe, r.Seed)
	}
	return r.Specs, nil
}

// SuiteSpecs expands a named suite into exactly the spec list the local
// MeasureWith-family producers schedule — same (kernel × configuration)
// matrix, same order, same seed default — so a suite-form batch hits the
// same content keys (and so the same cache entries and dedup flights) as
// both a local sweep and an explicit-spec batch.
func SuiteSpecs(name string, small, observe bool, seed uint64) ([]JobSpec, error) {
	known := false
	for _, n := range suiteNames {
		if n == name {
			known = true
			break
		}
	}
	if !known {
		return nil, fmt.Errorf("paper: unknown suite %q", name)
	}
	if name == "breakdown" {
		observe = true
	}
	if seed == 0 {
		seed = 1 // newMeasurements' seed — the local default
	}
	suite := kernels.PaperSuite()
	if small {
		suite = kernels.SmallSuite()
	}
	var specs []JobSpec
	for _, k := range suite {
		for _, rc := range measureRuns {
			specs = append(specs, JobSpec{
				Kernel: k.Name, Small: small, Seed: seed,
				Config: string(rc.key), Observe: observe,
			})
		}
	}
	return specs, nil
}

// BatchRecord is one NDJSON line of a /v1/batch response stream. Type
// selects which of the optional fields is meaningful:
//
//	"job"       one per-point completion, as it lands (Job)
//	"heartbeat" keepalive on an idle stream — proxies see traffic
//	"cursor"    the uncompleted keys of a cut batch (Pending); resubmit
//	            them to resume — completed points are already cached
//	"summary"   the terminal record, always last (Summary)
type BatchRecord struct {
	Type    string        `json:"type"`
	Job     *BatchJob     `json:"job,omitempty"`
	Pending []string      `json:"pending,omitempty"`
	Summary *BatchSummary `json:"summary,omitempty"`
}

// Batch record types.
const (
	BatchTypeJob       = "job"
	BatchTypeHeartbeat = "heartbeat"
	BatchTypeCursor    = "cursor"
	BatchTypeSummary   = "summary"
)

// BatchJob is one streamed per-point completion; the fields mirror
// JobResponse (Index positions the point in the submitted batch).
type BatchJob struct {
	Index     int             `json:"index"`
	Key       string          `json:"key"`
	Cached    bool            `json:"cached,omitempty"`
	Shared    bool            `json:"shared,omitempty"`
	Result    json.RawMessage `json:"result,omitempty"`
	Error     string          `json:"error,omitempty"`
	Retryable bool            `json:"retryable,omitempty"`
}

// BatchSummary is the terminal accounting of one batch stream: how the
// submitted jobs resolved (Completed+Failed+Pending == Jobs), how many of
// the completions were served from the run cache or coalesced onto
// another request's flight, and the server's drain state when the stream
// ended — "draining" tells the client the pending remainder was a server
// decision, not its own disconnect.
type BatchSummary struct {
	Jobs      int    `json:"jobs"`
	Completed int    `json:"completed"`
	Failed    int    `json:"failed"`
	Pending   int    `json:"pending"`
	Cached    int    `json:"cached"`
	Deduped   int    `json:"deduped"`
	Executed  int    `json:"executed"`
	State     string `json:"state"`
}

// BuildSpecJob reconstructs the sweep job a spec names. The returned
// job's key is exactly the key the local measurement path produces for
// the same point — the property the whole dedup story rests on — and its
// result marshals to exactly the bytes a local cache entry would hold.
func BuildSpecJob(spec JobSpec) (sweep.Job[json.RawMessage], error) {
	var zero sweep.Job[json.RawMessage]
	if err := spec.Validate(); err != nil {
		return zero, err
	}
	suite := kernels.PaperSuite()
	if spec.Small {
		suite = kernels.SmallSuite()
	}
	var k *kernels.Instance
	for _, c := range suite {
		if c.Name == spec.Kernel {
			k = c
			break
		}
	}
	if k == nil {
		return zero, fmt.Errorf("paper: job spec: unknown kernel %q", spec.Kernel)
	}
	var rc measureRun
	for _, r := range measureRuns {
		if string(r.key) == spec.Config {
			rc = r
			break
		}
	}
	inner, err := measureJob(k, k.Input(spec.Seed), rc, spec.Observe)
	if err != nil {
		return zero, err
	}
	return sweep.Job[json.RawMessage]{
		Key: inner.Key,
		Run: func() (json.RawMessage, error) {
			v, err := inner.Run()
			if err != nil {
				return nil, err
			}
			raw, err := json.Marshal(v)
			if err != nil {
				return nil, err
			}
			return json.RawMessage(raw), nil
		},
	}, nil
}

// SpecRunner executes one measurement point remotely and returns the raw
// result bytes (a serialized measureResult). internal/serve's Client
// provides the HTTP implementation.
type SpecRunner func(ctx context.Context, spec JobSpec) (json.RawMessage, error)

// MeasureRemote measures the suite through a remote runner: the same
// (kernel × configuration) job matrix measureWith schedules locally is
// fanned out across `workers` concurrent requests, decoded, and folded
// in production order — so the resulting Measurements (and every table
// rendered from them) are byte-identical to a local run. small must
// match the suite (it tells the server which registry to resolve kernel
// names in); observe requests cycle attribution on the pulp4 points. The
// first error cancels the remaining requests.
func MeasureRemote(ctx context.Context, run SpecRunner, suite []*kernels.Instance, small, observe bool, workers int) (*Measurements, error) {
	m, _, err := newMeasurements(suite)
	if err != nil {
		return nil, err
	}
	var specs []JobSpec
	for _, k := range suite {
		for _, rc := range measureRuns {
			specs = append(specs, JobSpec{
				Kernel: k.Name, Small: small, Seed: m.seed,
				Config: string(rc.key), Observe: observe,
			})
		}
	}
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()
	if workers <= 0 {
		workers = 1
	}
	if workers > len(specs) {
		workers = len(specs)
	}
	results := make([]measureResult, len(specs))
	errs := make([]error, len(specs))
	var (
		next atomic.Int64
		wg   sync.WaitGroup
	)
	next.Store(-1)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				i := int(next.Add(1))
				if i >= len(specs) || ctx.Err() != nil {
					return
				}
				raw, err := run(ctx, specs[i])
				if err == nil {
					err = json.Unmarshal(raw, &results[i])
				}
				if err != nil {
					errs[i] = err
					cancel() // first failure stops the fan-out
				}
			}
		}()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("paper: remote point %s/%s: %w", specs[i].Kernel, specs[i].Config, err)
		}
	}
	if err := ctx.Err(); err != nil {
		return nil, fmt.Errorf("paper: remote sweep cancelled: %w", err)
	}
	m.fold(results)
	return m, nil
}

// BatchRunner executes a whole campaign remotely in one submission and
// returns the raw results indexed like specs. internal/serve's
// Client.RunBatch — one streamed /v1/batch round trip plus reconnects —
// is the HTTP implementation.
type BatchRunner func(ctx context.Context, specs []JobSpec) ([]json.RawMessage, error)

// MeasureRemoteBatch measures the suite through a batch runner: the same
// (kernel × configuration) matrix MeasureRemote fans out as one request
// per point goes out as a single batch submission, and the in-order raw
// results fold through the shared path — byte-identical Measurements,
// a fraction of the HTTP round trips. small must match the suite (it
// tells the server which registry resolves kernel names); observe
// requests cycle attribution on the pulp4 points.
func MeasureRemoteBatch(ctx context.Context, run BatchRunner, suite []*kernels.Instance, small, observe bool) (*Measurements, error) {
	m, _, err := newMeasurements(suite)
	if err != nil {
		return nil, err
	}
	var specs []JobSpec
	for _, k := range suite {
		for _, rc := range measureRuns {
			specs = append(specs, JobSpec{
				Kernel: k.Name, Small: small, Seed: m.seed,
				Config: string(rc.key), Observe: observe,
			})
		}
	}
	raws, err := run(ctx, specs)
	if err != nil {
		return nil, err
	}
	if len(raws) != len(specs) {
		return nil, fmt.Errorf("paper: batch runner returned %d results for %d specs", len(raws), len(specs))
	}
	results := make([]measureResult, len(specs))
	for i, raw := range raws {
		if err := json.Unmarshal(raw, &results[i]); err != nil {
			return nil, fmt.Errorf("paper: remote point %s/%s: undecodable result: %w", specs[i].Kernel, specs[i].Config, err)
		}
	}
	m.fold(results)
	return m, nil
}
