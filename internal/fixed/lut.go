package fixed

import "math"

// The svm(RBF) and cnn kernels need exp(-x) and tanh(x) in fixed point.
// On the device these are piecewise-linear table lookups whose tables are
// embedded in the binary's data section. The golden models use the same
// tables through EvalLUT so that device and reference results are
// bit-identical. Table construction uses math.Exp/math.Tanh once, offline —
// exactly like the constant tables a C port of libsvm/CConvNet would ship.

// LUT is a piecewise-linear fixed-point lookup table over [0, Span) in the
// input format InQ, producing values in OutQ. Inputs beyond the span clamp
// to the last entry (the asymptote of exp/tanh).
type LUT struct {
	Name    string
	Values  []int32 // N+1 knot values, OutQ format
	InQ     Q       // format of the input argument
	OutQ    Q       // format of the table values
	Span    int32   // covered input range, InQ format
	LogStep uint8   // log2 of the knot step in InQ units
}

// NewExpNegLUT builds a table for f(x) = exp(-x), x in [0, span), with 2^logN
// intervals. Used by the RBF kernel exp(-gamma*||x-z||^2).
func NewExpNegLUT(inQ, outQ Q, span float64, logN uint8) *LUT {
	return build("expneg", inQ, outQ, span, logN, func(x float64) float64 { return math.Exp(-x) })
}

// NewTanhLUT builds a table for f(x) = tanh(x), x in [0, span). Negative
// inputs use the odd symmetry tanh(-x) = -tanh(x) (see EvalOdd).
func NewTanhLUT(inQ, outQ Q, span float64, logN uint8) *LUT {
	return build("tanh", inQ, outQ, span, logN, math.Tanh)
}

func build(name string, inQ, outQ Q, span float64, logN uint8, f func(float64) float64) *LUT {
	n := 1 << logN
	spanFx := FromFloat(span, inQ)
	// Step must be a power of two in fixed-point units so the device can
	// index with a shift; round the span up to make it so.
	logStep := uint8(0)
	for (int32(1) << logStep << logN) < spanFx {
		logStep++
	}
	spanFx = int32(1) << logStep << logN
	vals := make([]int32, n+1)
	for i := 0; i <= n; i++ {
		x := Float(int32(i)<<logStep, inQ)
		vals[i] = FromFloat(f(x), outQ)
	}
	return &LUT{Name: name, Values: vals, InQ: inQ, OutQ: outQ, Span: spanFx, LogStep: logStep}
}

// Eval evaluates the table at x (InQ format) with linear interpolation,
// clamping x to [0, Span]. The arithmetic (index shift, fractional mask,
// 32-bit interpolation) is the same sequence the device kernel executes.
func (t *LUT) Eval(x int32) int32 {
	if x < 0 {
		x = 0
	}
	if x >= t.Span {
		return t.Values[len(t.Values)-1]
	}
	idx := x >> t.LogStep
	frac := x & ((1 << t.LogStep) - 1)
	v0 := t.Values[idx]
	v1 := t.Values[idx+1]
	return v0 + ((v1-v0)*frac)>>t.LogStep
}

// EvalOdd evaluates an odd function table (tanh) for any-signed x.
func (t *LUT) EvalOdd(x int32) int32 {
	if x < 0 {
		return -t.Eval(-x)
	}
	return t.Eval(x)
}

// Bytes serializes the table values as little-endian int32 words, the layout
// the assembler places in the binary's data section.
func (t *LUT) Bytes() []byte {
	out := make([]byte, 4*len(t.Values))
	for i, v := range t.Values {
		u := uint32(v)
		out[4*i] = byte(u)
		out[4*i+1] = byte(u >> 8)
		out[4*i+2] = byte(u >> 16)
		out[4*i+3] = byte(u >> 24)
	}
	return out
}
