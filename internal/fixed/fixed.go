// Package fixed implements the Q-format fixed-point arithmetic used by the
// benchmark kernels of the DATE'16 heterogeneous-accelerator paper and by
// their golden (reference) models.
//
// All values are stored in int32 containers. A Q(f) number has f fractional
// bits; e.g. Q15 stores x as round(x * 2^15). The package also provides the
// integer square root and the exp/tanh lookup tables that the device-side
// kernels embed in their data sections, so that golden models and simulated
// kernels compute bit-identical results.
package fixed

// Q is the number of fractional bits of a fixed-point value.
type Q uint8

// Common formats used by the paper's kernels.
const (
	Q15 Q = 15 // 16-bit fixed point (svm, cnn, matmul-fixed)
	Q16 Q = 16 // 32-bit fixed point (hog)
	Q8  Q = 8
)

// One returns the representation of 1.0 in format q.
func (q Q) One() int32 { return int32(1) << q }

// FromFloat converts a float64 to fixed point with round-to-nearest.
func FromFloat(x float64, q Q) int32 {
	s := x * float64(int64(1)<<q)
	if s >= 0 {
		return int32(s + 0.5)
	}
	return int32(s - 0.5)
}

// Float converts a fixed-point value back to float64 (test/debug only; the
// simulated kernels never touch floating point).
func Float(x int32, q Q) float64 {
	return float64(x) / float64(int64(1)<<q)
}

// Mul multiplies two fixed-point values of format q, truncating the result
// back to q. This is the exact sequence the device kernels perform with a
// 32x32->32 multiply followed by an arithmetic shift, so intermediate
// products must fit in 32 bits (callers pick operand magnitudes accordingly).
func Mul(a, b int32, q Q) int32 {
	return (a * b) >> q
}

// MulR is Mul with round-to-nearest (adds half an LSB before shifting).
func MulR(a, b int32, q Q) int32 {
	return (a*b + (1 << (q - 1))) >> q
}

// Mul64 multiplies in 64-bit precision and truncates to q; used by the hog
// kernel's Q16 arithmetic where 32-bit products would overflow.
func Mul64(a, b int32, q Q) int32 {
	return int32((int64(a) * int64(b)) >> q)
}

// SatAdd16 adds two values and saturates the result to the int16 range.
// Mirrors the clipping performed by the 16-bit fixed-point kernels.
func SatAdd16(a, b int32) int32 {
	s := a + b
	return Clamp16(s)
}

// Clamp16 saturates v to [-32768, 32767].
func Clamp16(v int32) int32 {
	if v > 32767 {
		return 32767
	}
	if v < -32768 {
		return -32768
	}
	return v
}

// Clamp8 saturates v to [-128, 127].
func Clamp8(v int32) int32 {
	if v > 127 {
		return 127
	}
	if v < -128 {
		return -128
	}
	return v
}

// ISqrt32 returns floor(sqrt(v)) for a non-negative 32-bit value, using the
// classic digit-by-digit method. The device library routine __sqrt32 emitted
// into kernel binaries is an instruction-level transcription of this loop,
// so results match bit-for-bit.
func ISqrt32(v uint32) uint32 {
	var res uint32
	bit := uint32(1) << 30
	for bit > v {
		bit >>= 2
	}
	for bit != 0 {
		if v >= res+bit {
			v -= res + bit
			res = res>>1 + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	return res
}

// ISqrt64 returns floor(sqrt(v)) for a non-negative 64-bit value. Mirrors
// the device routine __sqrt64 (used by hog block normalization, where the
// energy accumulator is a software-emulated 64-bit value).
func ISqrt64(v uint64) uint32 {
	var res uint64
	bit := uint64(1) << 62
	for bit > v {
		bit >>= 2
	}
	for bit != 0 {
		if v >= res+bit {
			v -= res + bit
			res = res>>1 + bit
		} else {
			res >>= 1
		}
		bit >>= 2
	}
	return uint32(res)
}

// Div divides two fixed-point values of format q (a/b), truncating toward
// zero, matching the device's 32-cycle serial divider semantics.
func Div(a, b int32, q Q) int32 {
	if b == 0 {
		if a >= 0 {
			return 0x7fffffff
		}
		return -0x80000000
	}
	return int32((int64(a) << q) / int64(b))
}
