package fixed

import (
	"math"
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"
)

func TestFromFloatRoundtrip(t *testing.T) {
	cases := []struct {
		x float64
		q Q
	}{
		{0, Q15}, {1, Q15}, {-1, Q15}, {0.5, Q15}, {-0.5, Q15},
		{0.123, Q15}, {3.75, Q8}, {-100.25, Q16},
	}
	for _, c := range cases {
		fx := FromFloat(c.x, c.q)
		back := Float(fx, c.q)
		if math.Abs(back-c.x) > 1.0/float64(int64(1)<<c.q) {
			t.Errorf("roundtrip %v Q%d: got %v", c.x, c.q, back)
		}
	}
	if Q15.One() != 32768 || Q8.One() != 256 {
		t.Error("One() wrong")
	}
}

func TestFromFloatRounds(t *testing.T) {
	// Round-to-nearest, both signs.
	if got := FromFloat(1.5/32768, Q15); got != 2 {
		t.Errorf("positive rounding: %d", got)
	}
	if got := FromFloat(-1.5/32768, Q15); got != -2 {
		t.Errorf("negative rounding: %d", got)
	}
}

func TestMulMatchesFloat(t *testing.T) {
	prop := func(a, b float64) bool {
		fa, fb := FromFloat(a, Q15), FromFloat(b, Q15)
		got := Float(Mul(fa, fb, Q15), Q15)
		return math.Abs(got-a*b) < 3.0/32768
	}
	cfg := &quick.Config{MaxCount: 3000, Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(r.Float64()*2 - 1)
		v[1] = reflect.ValueOf(r.Float64()*2 - 1)
	}}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestMulRRoundsTowardNearest(t *testing.T) {
	// MulR adds half an LSB: 0.5*0.5 in Q2 (one fractional step 0.25):
	a, b := FromFloat(0.5, Q(2)), FromFloat(0.5, Q(2)) // 2, 2
	if got := MulR(a, b, Q(2)); got != 1 {
		t.Errorf("MulR = %d, want 1 (0.25)", got)
	}
	if got := Mul(3, 3, Q(2)); got != 2 { // 0.75*0.75 = 0.5625 -> trunc 0.5
		t.Errorf("Mul = %d, want 2", got)
	}
}

func TestMul64HighDynamicRange(t *testing.T) {
	a := FromFloat(20000, Q16) // the product needs 64-bit intermediate
	b := FromFloat(1.5, Q16)
	got := Float(Mul64(a, b, Q16), Q16)
	if math.Abs(got-30000) > 1 {
		t.Errorf("Mul64 = %v", got)
	}
}

func TestClamps(t *testing.T) {
	if Clamp16(40000) != 32767 || Clamp16(-40000) != -32768 || Clamp16(5) != 5 {
		t.Error("Clamp16 wrong")
	}
	if Clamp8(200) != 127 || Clamp8(-200) != -128 || Clamp8(-3) != -3 {
		t.Error("Clamp8 wrong")
	}
	if SatAdd16(30000, 30000) != 32767 || SatAdd16(-30000, -30000) != -32768 {
		t.Error("SatAdd16 wrong")
	}
}

func TestISqrt32Property(t *testing.T) {
	for _, v := range []uint32{0, 1, 2, 3, 4, 15, 16, 17, 1 << 20, 0x7fffffff, 0xffffffff} {
		r := ISqrt32(v)
		if uint64(r)*uint64(r) > uint64(v) || uint64(r+1)*uint64(r+1) <= uint64(v) {
			t.Errorf("ISqrt32(%d) = %d", v, r)
		}
	}
	prop := func(v uint32) bool {
		r := uint64(ISqrt32(v))
		return r*r <= uint64(v) && (r+1)*(r+1) > uint64(v)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestISqrt64Property(t *testing.T) {
	for _, v := range []uint64{0, 1, 4, 1 << 40, 1<<62 - 1, math.MaxUint64} {
		r := uint64(ISqrt64(v))
		if r*r > v {
			t.Errorf("ISqrt64(%d) = %d: square exceeds", v, r)
		}
		if r < 0xffffffff && (r+1)*(r+1) <= v && (r+1)*(r+1) > r*r {
			t.Errorf("ISqrt64(%d) = %d: not tight", v, r)
		}
	}
	prop := func(x uint64) bool {
		r := uint64(ISqrt64(x))
		if r*r > x {
			return false
		}
		next := (r + 1) * (r + 1)
		// Guard the r+1 overflow case.
		return next <= r*r || next > x
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5000}); err != nil {
		t.Error(err)
	}
}

func TestDiv(t *testing.T) {
	if got := Float(Div(FromFloat(1, Q15), FromFloat(4, Q15), Q15), Q15); math.Abs(got-0.25) > 1e-4 {
		t.Errorf("1/4 = %v", got)
	}
	if Div(100, 0, Q15) != 0x7fffffff {
		t.Error("positive div0 should saturate high")
	}
	if Div(-100, 0, Q15) != -0x80000000 {
		t.Error("negative div0 should saturate low")
	}
}

func TestLUTMatchesReference(t *testing.T) {
	exp := NewExpNegLUT(Q15, 14, 8.0, 6)
	for _, x := range []float64{0, 0.1, 0.5, 1, 2, 4, 7.5} {
		got := Float(exp.Eval(FromFloat(x, Q15)), 14)
		want := math.Exp(-x)
		if math.Abs(got-want) > 0.01 {
			t.Errorf("expneg(%v) = %v, want %v", x, got, want)
		}
	}
	// Beyond the span it clamps to the asymptote.
	if v := exp.Eval(exp.Span + 1000); v != exp.Values[len(exp.Values)-1] {
		t.Error("no clamp above span")
	}
	if v := exp.Eval(-5); v != exp.Values[0] {
		t.Error("no clamp below zero")
	}

	tanh := NewTanhLUT(Q15, Q15, 4.0, 6)
	for _, x := range []float64{-3, -1, -0.2, 0, 0.2, 1, 3} {
		got := Float(tanh.EvalOdd(FromFloat(x, Q15)), Q15)
		if math.Abs(got-math.Tanh(x)) > 0.01 {
			t.Errorf("tanh(%v) = %v, want %v", x, got, math.Tanh(x))
		}
	}
}

func TestLUTMonotone(t *testing.T) {
	exp := NewExpNegLUT(Q15, 14, 8.0, 6)
	prop := func(a, b int32) bool {
		if a > b {
			a, b = b, a
		}
		return exp.Eval(a) >= exp.Eval(b) // exp(-x) decreasing
	}
	cfg := &quick.Config{MaxCount: 3000, Values: func(v []reflect.Value, r *rand.Rand) {
		v[0] = reflect.ValueOf(int32(r.Intn(1 << 19)))
		v[1] = reflect.ValueOf(int32(r.Intn(1 << 19)))
	}}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestLUTBytes(t *testing.T) {
	l := NewTanhLUT(Q15, Q15, 4.0, 4)
	b := l.Bytes()
	if len(b) != 4*len(l.Values) {
		t.Fatalf("serialized length %d", len(b))
	}
	// Little-endian word 0 must equal Values[0].
	v0 := int32(uint32(b[0]) | uint32(b[1])<<8 | uint32(b[2])<<16 | uint32(b[3])<<24)
	if v0 != l.Values[0] {
		t.Errorf("word0 = %d, want %d", v0, l.Values[0])
	}
}
