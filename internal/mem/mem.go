// Package mem models the cluster memory system of the PULP3 SoC: the
// word-interleaved multi-banked TCDM (L1 scratchpad) with single-cycle
// access and per-bank arbitration, the SoC L2 memory, and the shared
// instruction cache that refills from L2.
//
// The TCDM arbitration is what makes the parallel speedup of Fig. 4 come
// out below the ideal 4x: when two cores (or a core and the DMA) hit the
// same bank in the same cycle, one of them stalls. The interconnect's
// word-level interleaving (Rahimi et al., DATE'11) spreads sequential
// accesses across banks, which is modelled exactly: bank = word index mod
// number of banks.
package mem

import (
	"fmt"

	"hetsim/internal/hw"
)

// SRAM is a flat byte-addressable memory with little-endian word access.
type SRAM struct {
	Base uint32
	Buf  []byte
}

// NewSRAM allocates a memory of the given size at the given base address.
func NewSRAM(base, size uint32) *SRAM {
	return &SRAM{Base: base, Buf: make([]byte, size)}
}

// Contains reports whether [addr, addr+n) falls inside this memory.
func (m *SRAM) Contains(addr, n uint32) bool {
	return addr >= m.Base && addr-m.Base+n <= uint32(len(m.Buf))
}

// Read returns an n-byte little-endian value (n in 1,2,4). The caller must
// have checked Contains.
func (m *SRAM) Read(addr, n uint32) uint32 {
	off := addr - m.Base
	var v uint32
	for i := uint32(0); i < n; i++ {
		v |= uint32(m.Buf[off+i]) << (8 * i)
	}
	return v
}

// Write stores the low n bytes of v at addr, little-endian.
func (m *SRAM) Write(addr, n, v uint32) {
	off := addr - m.Base
	for i := uint32(0); i < n; i++ {
		m.Buf[off+i] = byte(v >> (8 * i))
	}
}

// ReadBytes copies out a byte range.
func (m *SRAM) ReadBytes(addr, n uint32) []byte {
	out := make([]byte, n)
	copy(out, m.Buf[addr-m.Base:addr-m.Base+n])
	return out
}

// WriteBytes copies a byte slice into memory at addr.
func (m *SRAM) WriteBytes(addr uint32, b []byte) error {
	if !m.Contains(addr, uint32(len(b))) {
		return fmt.Errorf("mem: write of %d bytes at %#x outside memory [%#x,%#x)",
			len(b), addr, m.Base, m.Base+uint32(len(m.Buf)))
	}
	copy(m.Buf[addr-m.Base:], b)
	return nil
}

// TCDM is the multi-banked tightly-coupled data memory. Storage is a single
// SRAM; the banking structure exists for arbitration: each bank can serve
// one request per cycle, and word-level interleaving maps word w to bank
// w mod NumBanks.
type TCDM struct {
	*SRAM
	NumBanks int

	// Per-cycle arbitration state: which banks have been granted this
	// cycle. Reset by BeginCycle.
	granted []bool

	// Stats.
	Accesses  uint64 // granted requests
	Conflicts uint64 // denied requests (bank busy)
}

// NewTCDM builds a TCDM with the given size and bank count.
func NewTCDM(size uint32, banks int) *TCDM {
	if banks <= 0 {
		banks = hw.DefaultTCDMBanks
	}
	return &TCDM{
		SRAM:     NewSRAM(hw.TCDMBase, size),
		NumBanks: banks,
		granted:  make([]bool, banks),
	}
}

// BeginCycle resets the per-cycle bank grants. The cluster calls it once at
// the start of every simulated cycle.
func (t *TCDM) BeginCycle() {
	for i := range t.granted {
		t.granted[i] = false
	}
}

// Bank returns the bank index serving the given address.
func (t *TCDM) Bank(addr uint32) int {
	return int((addr >> 2) % uint32(t.NumBanks))
}

// Request tries to claim the bank of addr for this cycle. It reports
// whether the access is granted; a denied requester must retry next cycle.
// Requests never span banks here: sub-word accesses always fit one bank,
// and the core splits unaligned word accesses into two requests (which is
// also where their extra cycle comes from).
func (t *TCDM) Request(addr uint32) bool {
	b := t.Bank(addr)
	if t.granted[b] {
		t.Conflicts++
		return false
	}
	t.granted[b] = true
	t.Accesses++
	return true
}

// ConflictRate returns the fraction of requests that were denied.
func (t *TCDM) ConflictRate() float64 {
	tot := t.Accesses + t.Conflicts
	if tot == 0 {
		return 0
	}
	return float64(t.Conflicts) / float64(tot)
}

// ICache models the cluster's shared instruction cache: 2-way
// set-associative (like the multi-ported shared I$ of PULP clusters),
// LineSize-byte lines, refilled from L2 by a single refill engine. A hit
// costs nothing (fetch is pipelined); a miss stalls the fetching core until
// the line lands. Concurrent misses to the same line coalesce; misses to
// different lines queue behind the single refill port.
//
// A line whose refill is still in flight cannot be evicted: the evicting
// core waits until one cycle past the refill, so the original requester is
// guaranteed to consume its line first. (Without this, two cores whose hot
// code maps to the same set can evict each other's in-flight lines forever
// — a livelock a real cache cannot exhibit.)
type ICache struct {
	LineSize  uint32 // bytes per line (power of two)
	Ways      int
	NumSets   int
	MissSetup uint64 // cycles before the refill starts (L2 + bus latency)
	PerWord   uint64 // cycles per refilled word

	tags   [][]uint32 // [set][way] line tag; 0xffffffff = invalid
	ready  [][]uint64 // [set][way] cycle at which the line becomes usable
	victim []int      // [set] round-robin victim pointer

	refillFree uint64 // next cycle the refill engine is available

	Hits   uint64
	Misses uint64
}

// NewICache builds a 2-way instruction cache of the given total size.
func NewICache(size, lineSize uint32) *ICache {
	const ways = 2
	sets := int(size / lineSize / ways)
	if sets < 1 {
		sets = 1
	}
	c := &ICache{
		LineSize:  lineSize,
		Ways:      ways,
		NumSets:   sets,
		MissSetup: 6,
		PerWord:   1,
		tags:      make([][]uint32, sets),
		ready:     make([][]uint64, sets),
		victim:    make([]int, sets),
	}
	for i := range c.tags {
		c.tags[i] = make([]uint32, ways)
		c.ready[i] = make([]uint64, ways)
		for w := range c.tags[i] {
			c.tags[i][w] = 0xffffffff
		}
	}
	return c
}

// Fetch checks whether the instruction at pc is available at cycle now.
// It returns the cycle at which the fetch can be retried or completed; if
// that is > now, the core must stall until then and fetch again.
func (c *ICache) Fetch(pc uint32, now uint64) uint64 {
	line := pc / c.LineSize
	set := int(line) % c.NumSets
	tags, ready := c.tags[set], c.ready[set]
	for w := 0; w < c.Ways; w++ {
		if tags[w] == line {
			if ready[w] <= now {
				c.Hits++
				return now
			}
			// Refill in flight (possibly from another core): coalesce.
			c.Misses++
			return ready[w]
		}
	}
	c.Misses++
	// Pick a victim way: invalid first, then any settled way (round-robin).
	way := -1
	for w := 0; w < c.Ways; w++ {
		if tags[w] == 0xffffffff {
			way = w
			break
		}
	}
	if way < 0 {
		for i := 0; i < c.Ways; i++ {
			w := (c.victim[set] + i) % c.Ways
			// Strictly settled: the owning core consumes its line at the
			// refill-completion cycle; eviction is possible only after.
			if ready[w] < now {
				way = w
				c.victim[set] = (w + 1) % c.Ways
				break
			}
		}
	}
	if way < 0 {
		// Every way is mid-refill: retry after the earliest one lands (its
		// requester consumes it at that exact cycle; we come one later).
		min := ready[0]
		for w := 1; w < c.Ways; w++ {
			if ready[w] < min {
				min = ready[w]
			}
		}
		return min + 1
	}
	start := now
	if c.refillFree > start {
		start = c.refillFree
	}
	done := start + c.MissSetup + c.PerWord*uint64(c.LineSize/4)
	c.refillFree = done
	tags[way] = line
	ready[way] = done
	return done
}

// MissRate returns the fraction of fetches that missed.
func (c *ICache) MissRate() float64 {
	tot := c.Hits + c.Misses
	if tot == 0 {
		return 0
	}
	return float64(c.Misses) / float64(tot)
}
