// Package mem models the cluster memory system of the PULP3 SoC: the
// word-interleaved multi-banked TCDM (L1 scratchpad) with single-cycle
// access and per-bank arbitration, the SoC L2 memory, and the shared
// instruction cache that refills from L2.
//
// The TCDM arbitration is what makes the parallel speedup of Fig. 4 come
// out below the ideal 4x: when two cores (or a core and the DMA) hit the
// same bank in the same cycle, one of them stalls. The interconnect's
// word-level interleaving (Rahimi et al., DATE'11) spreads sequential
// accesses across banks, which is modelled exactly: bank = word index mod
// number of banks.
package mem

import (
	"encoding/binary"
	"fmt"
	"math/bits"

	"hetsim/internal/fault"
	"hetsim/internal/hw"
	"hetsim/internal/obs"
)

// SRAM is a flat byte-addressable memory with little-endian word access.
type SRAM struct {
	Base uint32
	Buf  []byte

	// SEU injection (AttachFaults). inj nil — the only state clean runs
	// ever see — keeps the write path at a single pointer compare.
	inj      *fault.Injector
	injClass fault.Class

	// Flips counts SEU bit-flips landed in this memory.
	Flips uint64
}

// AttachFaults wires a seeded injector into this memory's write path:
// every word written rolls one SEU of the given fault class (per-word-
// write model — the upset strikes the cell as the write lands). nil
// detaches.
func (m *SRAM) AttachFaults(in *fault.Injector, class fault.Class) {
	m.inj = in
	m.injClass = class
}

// NewSRAM allocates a memory of the given size at the given base address.
func NewSRAM(base, size uint32) *SRAM {
	return &SRAM{Base: base, Buf: make([]byte, size)}
}

// Contains reports whether [addr, addr+n) falls inside this memory.
func (m *SRAM) Contains(addr, n uint32) bool {
	return addr >= m.Base && addr-m.Base+n <= uint32(len(m.Buf))
}

// Read returns an n-byte little-endian value (n in 1,2,4). The caller must
// have checked Contains. Word and half accesses go through encoding/binary
// (a single machine load on little-endian hosts) instead of a per-byte
// loop — this is the data path of every core load, DMA beat and loader
// word.
func (m *SRAM) Read(addr, n uint32) uint32 {
	off := addr - m.Base
	switch n {
	case 4:
		return binary.LittleEndian.Uint32(m.Buf[off:])
	case 2:
		return uint32(binary.LittleEndian.Uint16(m.Buf[off:]))
	default:
		return uint32(m.Buf[off])
	}
}

// Write stores the low n bytes of v at addr, little-endian.
func (m *SRAM) Write(addr, n, v uint32) {
	if m.inj != nil {
		if mask := m.inj.SEUMask(m.injClass, n*8); mask != 0 {
			v ^= mask
			m.Flips++
		}
	}
	off := addr - m.Base
	switch n {
	case 4:
		binary.LittleEndian.PutUint32(m.Buf[off:], v)
	case 2:
		binary.LittleEndian.PutUint16(m.Buf[off:], uint16(v))
	default:
		m.Buf[off] = byte(v)
	}
}

// ReadBytes copies out a byte range. Use Bytes when the caller only reads
// and does not hold the slice across further simulation.
func (m *SRAM) ReadBytes(addr, n uint32) []byte {
	out := make([]byte, n)
	copy(out, m.Buf[addr-m.Base:addr-m.Base+n])
	return out
}

// Bytes returns the byte range [addr, addr+n) aliasing the memory's
// backing store, without copying. The slice is valid only until the next
// write to this memory and must not be mutated; it is the zero-copy read
// path of the link layer (CRC computation, readback verification, output
// reads).
func (m *SRAM) Bytes(addr, n uint32) []byte {
	return m.Buf[addr-m.Base : addr-m.Base+n : addr-m.Base+n]
}

// WriteBytes copies a byte slice into memory at addr.
func (m *SRAM) WriteBytes(addr uint32, b []byte) error {
	if !m.Contains(addr, uint32(len(b))) {
		return fmt.Errorf("mem: write of %d bytes at %#x outside memory [%#x,%#x)",
			len(b), addr, m.Base, m.Base+uint32(len(m.Buf)))
	}
	copy(m.Buf[addr-m.Base:], b)
	if m.inj != nil {
		m.flipBulk(addr-m.Base, uint32(len(b)))
	}
	return nil
}

// flipBulk applies the per-word-write SEU model to a bulk write: one roll
// per full word landed, plus one per trailing byte. Bulk writes are the
// loader and link paths, so injected campaigns see binary images, staged
// inputs and descriptors as vulnerable as core stores.
func (m *SRAM) flipBulk(off, n uint32) {
	for ; n >= 4; n, off = n-4, off+4 {
		if mask := m.inj.SEUMask(m.injClass, 32); mask != 0 {
			w := binary.LittleEndian.Uint32(m.Buf[off:])
			binary.LittleEndian.PutUint32(m.Buf[off:], w^mask)
			m.Flips++
		}
	}
	for ; n > 0; n, off = n-1, off+1 {
		if mask := m.inj.SEUMask(m.injClass, 8); mask != 0 {
			m.Buf[off] ^= byte(mask)
			m.Flips++
		}
	}
}

// TCDM is the multi-banked tightly-coupled data memory. Storage is a single
// SRAM; the banking structure exists for arbitration: each bank can serve
// one request per cycle, and word-level interleaving maps word w to bank
// w mod NumBanks.
type TCDM struct {
	*SRAM
	NumBanks int

	// bankMask is NumBanks-1 when NumBanks is a power of two (every real
	// configuration), letting Bank use an AND instead of a modulo on the
	// per-access path; bankPow2 gates the fallback for odd bank counts.
	bankMask uint32
	bankPow2 bool

	// Per-cycle arbitration state: bit b set when bank b has been granted
	// this cycle. A bitmask instead of a []bool makes the per-cycle reset
	// (BeginCycle, once every simulated cycle) a single store.
	granted uint64

	// Stats.
	Accesses  uint64 // granted requests
	Conflicts uint64 // denied requests (bank busy)
}

// NewTCDM builds a TCDM with the given size and bank count (at most 64
// banks, twice the widest configuration of the scaling ablations).
func NewTCDM(size uint32, banks int) *TCDM {
	if banks <= 0 {
		banks = hw.DefaultTCDMBanks
	}
	if banks > 64 {
		panic(fmt.Sprintf("mem: TCDM supports at most 64 banks, got %d", banks))
	}
	return &TCDM{
		SRAM:     NewSRAM(hw.TCDMBase, size),
		NumBanks: banks,
		bankMask: uint32(banks - 1),
		bankPow2: banks&(banks-1) == 0,
	}
}

// BeginCycle resets the per-cycle bank grants. The cluster calls it once at
// the start of every simulated cycle.
func (t *TCDM) BeginCycle() {
	t.granted = 0
}

// Bank returns the bank index serving the given address.
func (t *TCDM) Bank(addr uint32) int {
	if t.bankPow2 {
		return int((addr >> 2) & t.bankMask)
	}
	return int((addr >> 2) % uint32(t.NumBanks))
}

// Request tries to claim the bank of addr for this cycle. It reports
// whether the access is granted; a denied requester must retry next cycle.
// Requests never span banks here: sub-word accesses always fit one bank,
// and the core splits unaligned word accesses into two requests (which is
// also where their extra cycle comes from).
func (t *TCDM) Request(addr uint32) bool {
	bit := uint64(1) << uint(t.Bank(addr))
	if t.granted&bit != 0 {
		t.Conflicts++
		return false
	}
	t.granted |= bit
	t.Accesses++
	return true
}

// ConflictRate returns the fraction of requests that were denied.
func (t *TCDM) ConflictRate() float64 {
	tot := t.Accesses + t.Conflicts
	if tot == 0 {
		return 0
	}
	return float64(t.Conflicts) / float64(tot)
}

// ICache models the cluster's shared instruction cache: 2-way
// set-associative (like the multi-ported shared I$ of PULP clusters),
// LineSize-byte lines, refilled from L2 by a single refill engine. A hit
// costs nothing (fetch is pipelined); a miss stalls the fetching core until
// the line lands. Concurrent misses to the same line coalesce; misses to
// different lines queue behind the single refill port.
//
// A line whose refill is still in flight cannot be evicted: the evicting
// core waits until one cycle past the refill, so the original requester is
// guaranteed to consume its line first. (Without this, two cores whose hot
// code maps to the same set can evict each other's in-flight lines forever
// — a livelock a real cache cannot exhibit.)
type ICache struct {
	LineSize  uint32 // bytes per line (power of two)
	Ways      int
	NumSets   int
	MissSetup uint64 // cycles before the refill starts (L2 + bus latency)
	PerWord   uint64 // cycles per refilled word

	// Flattened [set*Ways+way] arrays (one cache line of indirection less
	// on the fetch path than [][]): line tag (0xffffffff = invalid) and
	// the cycle at which the line becomes usable.
	tags   []uint32
	ready  []uint64
	victim []int // [set] round-robin victim pointer

	// Strength-reduced indexing for the per-fetch path: LineSize is a
	// power of two by construction (lineShift), and when NumSets is too
	// (every real geometry) setPow2 selects an AND over a modulo.
	lineShift uint32
	setMask   uint32
	setPow2   bool

	refillFree uint64 // next cycle the refill engine is available

	// Inject, when set, rolls a parity error on every fetch hit
	// (fault.ICacheParity): the line is dropped and refilled from L2, so a
	// parity upset is always detected and costs a refill penalty, never a
	// wrong instruction. Nil (the clean-run state) costs one compare.
	Inject *fault.Injector

	// TL, when non-nil, receives one timeline span per line refill on the
	// shared refill-engine track (internal/obs). The check sits on the
	// miss path only; hits never touch it.
	TL *obs.ClusterTL

	Hits         uint64
	Misses       uint64
	ParityErrors uint64 // detected parity errors (each also counted a miss)
}

// NewICache builds a 2-way instruction cache of the given total size.
func NewICache(size, lineSize uint32) *ICache {
	const ways = 2
	sets := int(size / lineSize / ways)
	if sets < 1 {
		sets = 1
	}
	c := &ICache{
		LineSize:  lineSize,
		Ways:      ways,
		NumSets:   sets,
		MissSetup: 6,
		PerWord:   1,
		tags:      make([]uint32, sets*ways),
		ready:     make([]uint64, sets*ways),
		victim:    make([]int, sets),
		lineShift: uint32(bits.TrailingZeros32(lineSize)),
		setMask:   uint32(sets - 1),
		setPow2:   sets&(sets-1) == 0,
	}
	for i := range c.tags {
		c.tags[i] = 0xffffffff
	}
	return c
}

// Probe is the inlinable hit-only fast path of Fetch: it reports whether
// pc's line is present, ready and parity-clean at cycle now, scoring the
// hit exactly as Fetch would. A false return leaves every counter and
// line untouched, so `Probe(pc,t) || Fetch(pc,t)` consults the cache
// exactly once — the caller falls back to Fetch, which handles misses,
// in-flight refills, odd geometries and parity rolls. It relies on the
// NewICache invariant of exactly two ways (keeping it under the inliner
// budget); non-power-of-two set counts take the slow path.
func (c *ICache) Probe(pc uint32, now uint64) bool {
	if c.Inject != nil || !c.setPow2 {
		return false
	}
	line := pc >> c.lineShift
	base := int(line&c.setMask) * 2
	if c.tags[base] == line && c.ready[base] <= now {
		c.Hits++
		return true
	}
	if c.tags[base+1] == line && c.ready[base+1] <= now {
		c.Hits++
		return true
	}
	return false
}

// Fetch checks whether the instruction at pc is available at cycle now.
// It returns the cycle at which the fetch can be retried or completed; if
// that is > now, the core must stall until then and fetch again.
func (c *ICache) Fetch(pc uint32, now uint64) uint64 {
	line := pc >> c.lineShift
	var set int
	if c.setPow2 {
		set = int(line & c.setMask)
	} else {
		set = int(line) % c.NumSets
	}
	base := set * c.Ways
	tags, ready := c.tags[base:base+c.Ways], c.ready[base:base+c.Ways]
	for w := 0; w < c.Ways; w++ {
		if tags[w] == line {
			if ready[w] <= now {
				if c.Inject != nil && c.Inject.ParityHit() {
					// Detected parity error: invalidate the line and fall
					// through to the miss path, which refills it (the
					// just-invalidated way is picked first as the victim).
					c.ParityErrors++
					tags[w] = 0xffffffff
					break
				}
				c.Hits++
				return now
			}
			// Refill in flight (possibly from another core): coalesce.
			c.Misses++
			return ready[w]
		}
	}
	c.Misses++
	// Pick a victim way: invalid first, then any settled way (round-robin).
	way := -1
	for w := 0; w < c.Ways; w++ {
		if tags[w] == 0xffffffff {
			way = w
			break
		}
	}
	if way < 0 {
		for i := 0; i < c.Ways; i++ {
			w := (c.victim[set] + i) % c.Ways
			// Strictly settled: the owning core consumes its line at the
			// refill-completion cycle; eviction is possible only after.
			if ready[w] < now {
				way = w
				c.victim[set] = (w + 1) % c.Ways
				break
			}
		}
	}
	if way < 0 {
		// Every way is mid-refill: retry after the earliest one lands (its
		// requester consumes it at that exact cycle; we come one later).
		min := ready[0]
		for w := 1; w < c.Ways; w++ {
			if ready[w] < min {
				min = ready[w]
			}
		}
		return min + 1
	}
	start := now
	if c.refillFree > start {
		start = c.refillFree
	}
	done := start + c.MissSetup + c.PerWord*uint64(c.LineSize/4)
	c.refillFree = done
	tags[way] = line
	ready[way] = done
	if c.TL != nil {
		c.TL.Span(obs.TidICache, "refill", "icache", start, done,
			map[string]any{"line": line << c.lineShift})
	}
	return done
}

// MissRate returns the fraction of fetches that missed.
func (c *ICache) MissRate() float64 {
	tot := c.Hits + c.Misses
	if tot == 0 {
		return 0
	}
	return float64(c.Misses) / float64(tot)
}
