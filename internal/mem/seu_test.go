package mem

import (
	"bytes"
	"math/bits"
	"testing"

	"hetsim/internal/fault"
)

func TestSRAMWordWriteSEU(t *testing.T) {
	m := NewSRAM(0, 64)
	m.AttachFaults(fault.New(fault.Config{Seed: 3, TCDMFlipRate: 1}), fault.TCDMFlip)
	m.Write(0, 4, 0xdeadbeef)
	got := m.Read(0, 4)
	if got == 0xdeadbeef {
		t.Fatal("rate-1 SEU did not flip the stored word")
	}
	if bits.OnesCount32(got^0xdeadbeef) != 1 {
		t.Fatalf("SEU flipped %d bits, want exactly 1 (%#x vs %#x)",
			bits.OnesCount32(got^0xdeadbeef), got, 0xdeadbeef)
	}
	if m.Flips != 1 {
		t.Fatalf("Flips = %d, want 1", m.Flips)
	}
	// A byte write strikes within the byte.
	m.Write(8, 1, 0xff)
	if got := m.Read(8, 1); got == 0xff || bits.OnesCount32(got^0xff) != 1 || got > 0xff {
		t.Fatalf("byte SEU: got %#x", got)
	}
}

func TestSRAMBulkWriteSEU(t *testing.T) {
	m := NewSRAM(0, 256)
	m.AttachFaults(fault.New(fault.Config{Seed: 5, L2FlipRate: 1}), fault.L2Flip)
	src := make([]byte, 41) // deliberately not word-aligned: 10 words + 1 tail byte
	for i := range src {
		src[i] = byte(i * 7)
	}
	if err := m.WriteBytes(0, src); err != nil {
		t.Fatal(err)
	}
	got := m.ReadBytes(0, uint32(len(src)))
	diff := 0
	for i := range src {
		diff += bits.OnesCount8(got[i] ^ src[i])
	}
	// Rate 1: exactly one flip per word plus one in the tail byte.
	if want := 11; diff != want {
		t.Fatalf("bulk SEU flipped %d bits, want %d", diff, want)
	}
	if m.Flips != 11 {
		t.Fatalf("Flips = %d, want 11", m.Flips)
	}
}

func TestSRAMDetachedInjectorIsClean(t *testing.T) {
	m := NewSRAM(0, 64)
	in := fault.New(fault.Config{Seed: 1, TCDMFlipRate: 1})
	m.AttachFaults(in, fault.TCDMFlip)
	m.AttachFaults(nil, fault.TCDMFlip)
	m.Write(0, 4, 0x12345678)
	if got := m.Read(0, 4); got != 0x12345678 {
		t.Fatalf("detached SRAM corrupted a write: %#x", got)
	}
	// Zero rate with an attached injector is equally clean.
	m2 := NewSRAM(0, 64)
	m2.AttachFaults(fault.New(fault.Config{Seed: 1}), fault.TCDMFlip)
	src := []byte{1, 2, 3, 4, 5}
	if err := m2.WriteBytes(0, src); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(m2.ReadBytes(0, 5), src) {
		t.Fatal("zero-rate SRAM corrupted a bulk write")
	}
}

// TestICacheParityDetectedAsRefill checks the parity model: a hit that
// rolls a parity error is demoted to a miss (the line is invalidated and
// refilled), counted, and never left resident — detection with a refill
// penalty, never a wrong instruction.
func TestICacheParityDetectedAsRefill(t *testing.T) {
	c := NewICache(4096, 16)
	c.Inject = fault.New(fault.Config{Seed: 2, ParityRate: 1})

	// Cold fetch: a plain miss, parity cannot fire on an absent line.
	done := c.Fetch(0x100, 0)
	if done == 0 {
		t.Fatal("cold fetch cannot hit")
	}
	if c.ParityErrors != 0 {
		t.Fatal("parity fired on a miss")
	}
	// Refetch once resident: rate-1 parity must demote the hit.
	hits, misses := c.Hits, c.Misses
	c.Fetch(0x100, done)
	if c.ParityErrors != 1 {
		t.Fatalf("ParityErrors = %d, want 1", c.ParityErrors)
	}
	if c.Hits != hits {
		t.Fatal("parity-struck fetch still counted as a hit")
	}
	if c.Misses != misses+1 {
		t.Fatal("parity-struck fetch must refill (count a miss)")
	}
}

func TestICacheNilInjectorUnchanged(t *testing.T) {
	// The same access pattern with and without a zero-rate injector must
	// produce identical timing and counters: the fault hook is free when
	// disarmed.
	run := func(inject *fault.Injector) (uint64, uint64, uint64) {
		c := NewICache(1024, 16)
		c.Inject = inject
		now := uint64(0)
		for i := 0; i < 200; i++ {
			pc := uint32((i * 52) % 4096)
			for {
				r := c.Fetch(pc, now)
				if r <= now {
					break
				}
				now = r
			}
			now++
		}
		return c.Hits, c.Misses, now
	}
	h0, m0, t0 := run(nil)
	h1, m1, t1 := run(fault.New(fault.Config{Seed: 9}))
	if h0 != h1 || m0 != m1 || t0 != t1 {
		t.Fatalf("zero-rate parity changed behaviour: (%d,%d,%d) vs (%d,%d,%d)",
			h0, m0, t0, h1, m1, t1)
	}
}
