package mem

import (
	"math/rand"
	"reflect"
	"testing"
	"testing/quick"

	"hetsim/internal/hw"
)

func TestSRAMReadWrite(t *testing.T) {
	m := NewSRAM(0x1000, 256)
	m.Write(0x1000, 4, 0xA1B2C3D4)
	if got := m.Read(0x1000, 4); got != 0xA1B2C3D4 {
		t.Errorf("word: %#x", got)
	}
	// Little-endian byte order.
	if got := m.Read(0x1000, 1); got != 0xD4 {
		t.Errorf("byte0: %#x", got)
	}
	if got := m.Read(0x1001, 2); got != 0xB2C3 {
		t.Errorf("half at 1: %#x", got)
	}
	m.Write(0x1002, 1, 0xFF)
	if got := m.Read(0x1000, 4); got != 0xA1FFC3D4 {
		t.Errorf("after byte poke: %#x", got)
	}
}

func TestSRAMContains(t *testing.T) {
	m := NewSRAM(0x1000, 256)
	if !m.Contains(0x1000, 256) || m.Contains(0x1000, 257) ||
		m.Contains(0xFFF, 1) || !m.Contains(0x10FF, 1) {
		t.Error("Contains bounds wrong")
	}
}

func TestSRAMBytesRoundtrip(t *testing.T) {
	m := NewSRAM(0x2000, 128)
	data := []byte{1, 2, 3, 4, 5}
	if err := m.WriteBytes(0x2010, data); err != nil {
		t.Fatal(err)
	}
	if got := m.ReadBytes(0x2010, 5); string(got) != string(data) {
		t.Errorf("roundtrip: %v", got)
	}
	if err := m.WriteBytes(0x2070, make([]byte, 32)); err == nil {
		t.Error("overflowing WriteBytes must fail")
	}
}

func TestTCDMInterleaving(t *testing.T) {
	tc := NewTCDM(hw.DefaultTCDMSize, 8)
	// Word-level interleaving: consecutive words hit consecutive banks.
	for i := uint32(0); i < 16; i++ {
		want := int(i % 8)
		if got := tc.Bank(hw.TCDMBase + i*4); got != want {
			t.Errorf("word %d -> bank %d, want %d", i, got, want)
		}
	}
	// Sub-word addresses stay in their word's bank.
	if tc.Bank(hw.TCDMBase+5) != tc.Bank(hw.TCDMBase+4) {
		t.Error("sub-word bank mismatch")
	}
}

func TestTCDMArbitration(t *testing.T) {
	tc := NewTCDM(hw.DefaultTCDMSize, 8)
	tc.BeginCycle()
	if !tc.Request(hw.TCDMBase) {
		t.Fatal("first request must be granted")
	}
	if tc.Request(hw.TCDMBase + 32) { // word 8 -> bank 0 again
		t.Fatal("same-bank request in the same cycle must be denied")
	}
	if !tc.Request(hw.TCDMBase + 4) { // bank 1
		t.Fatal("different bank must be granted")
	}
	tc.BeginCycle()
	if !tc.Request(hw.TCDMBase) {
		t.Fatal("new cycle must reset grants")
	}
	if tc.Accesses != 3 || tc.Conflicts != 1 {
		t.Errorf("stats: %d/%d", tc.Accesses, tc.Conflicts)
	}
	if r := tc.ConflictRate(); r != 0.25 {
		t.Errorf("conflict rate %v", r)
	}
}

// Property: within one cycle, at most one grant per bank; across cycles,
// every bank can be granted again.
func TestTCDMGrantInvariant(t *testing.T) {
	prop := func(addrs []uint32) bool {
		tc := NewTCDM(hw.DefaultTCDMSize, 8)
		tc.BeginCycle()
		granted := map[int]int{}
		for _, a := range addrs {
			addr := hw.TCDMBase + a%hw.DefaultTCDMSize
			if tc.Request(addr) {
				granted[tc.Bank(addr)]++
			}
		}
		for _, n := range granted {
			if n > 1 {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 500, Values: func(v []reflect.Value, r *rand.Rand) {
		n := 1 + r.Intn(32)
		addrs := make([]uint32, n)
		for i := range addrs {
			addrs[i] = uint32(r.Intn(1 << 14))
		}
		v[0] = reflect.ValueOf(addrs)
	}}
	if err := quick.Check(prop, cfg); err != nil {
		t.Error(err)
	}
}

func TestICacheHitAfterRefill(t *testing.T) {
	c := NewICache(4096, 32)
	pc := uint32(0x1C000100)
	done := c.Fetch(pc, 0)
	if done <= 0 {
		t.Fatal("cold fetch must miss")
	}
	// At the completion cycle the line must hit.
	if got := c.Fetch(pc, done); got != done {
		t.Fatalf("fetch at completion: %d vs %d", got, done)
	}
	// Within the same line, later words hit too.
	if got := c.Fetch(pc+28, done+1); got != done+1 {
		t.Fatal("same-line word must hit")
	}
	if c.Hits != 2 || c.Misses != 1 {
		t.Errorf("stats: %d/%d", c.Hits, c.Misses)
	}
}

func TestICacheCoalescesConcurrentMisses(t *testing.T) {
	c := NewICache(4096, 32)
	pc := uint32(0x1C000200)
	d1 := c.Fetch(pc, 10)
	d2 := c.Fetch(pc+4, 11) // other core, same line, while in flight
	if d2 != d1 {
		t.Fatalf("same-line in-flight fetch should coalesce: %d vs %d", d2, d1)
	}
}

func TestICacheRefillSerialization(t *testing.T) {
	c := NewICache(4096, 32)
	d1 := c.Fetch(0x1C000000, 0)
	d2 := c.Fetch(0x1C001000, 0) // different set, concurrent miss
	if d2 <= d1 {
		t.Fatalf("single refill engine must serialize: %d then %d", d1, d2)
	}
}

// The livelock regression: two cores whose lines collide in the same set
// must both make progress (the in-flight line cannot be evicted).
func TestICacheNoEvictionOfInflightLines(t *testing.T) {
	c := NewICache(64, 32) // 1 set x 2 ways: maximum pressure
	lineA := uint32(0x1C000000)
	lineB := lineA + 64  // same set (2 ways: both fit)
	lineC := lineA + 128 // same set: must wait for a settled way

	dA := c.Fetch(lineA, 0)
	dB := c.Fetch(lineB, 0)
	dC := c.Fetch(lineC, 1)
	// C cannot evict A or B while their refills are in flight; it retries.
	if dC <= dA && dC <= dB {
		t.Fatalf("third line must wait: A=%d B=%d C=%d", dA, dB, dC)
	}
	// A and B must be consumable at their completion cycles.
	if c.Fetch(lineA, dA) != dA {
		t.Error("line A lost before its requester consumed it")
	}
	if c.Fetch(lineB, dB) != dB {
		t.Error("line B lost before its requester consumed it")
	}
}

func TestICacheMissRate(t *testing.T) {
	c := NewICache(4096, 32)
	if c.MissRate() != 0 {
		t.Error("empty cache miss rate")
	}
	c.Fetch(0x1C000000, 0)
	done := c.Fetch(0x1C000000, 100)
	_ = done
	if r := c.MissRate(); r != 0.5 {
		t.Errorf("miss rate %v, want 0.5", r)
	}
}
