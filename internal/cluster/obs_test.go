package cluster_test

import (
	"bytes"
	"reflect"
	"regexp"
	"strconv"
	"strings"
	"testing"

	"hetsim/internal/cluster"
	"hetsim/internal/devrt"
	"hetsim/internal/hw"
	"hetsim/internal/kernels"
	"hetsim/internal/loader"
	"hetsim/internal/obs"
	"hetsim/internal/trace"
)

// TestObservabilityDifferential proves the observability layer is purely
// observational: for every kernel of the small suite on pulp-1/2/4t, in
// both the event-driven and the reference run loop, attaching attribution
// changes neither cycle counts, outputs nor stats by a single bit — and
// the attribution it produces satisfies the exactness invariant (every
// core's class sum equals the cluster cycle count) and is itself
// identical across the two loops.
func TestObservabilityDifferential(t *testing.T) {
	for _, k := range kernels.SmallSuite() {
		for _, threads := range []uint32{1, 2, 4} {
			name := k.Name + "/pulp-" + strconv.Itoa(int(threads)) + "t"
			t.Run(name, func(t *testing.T) {
				prog, err := k.Build(cluster.PULPConfig().Target, devrt.Accel)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				job := loader.Job{Prog: prog, In: k.Input(1), OutLen: k.OutLen(),
					Iters: 1, Threads: threads, Args: k.Args()}

				var runs [4]*cluster.JobResult
				i := 0
				for _, ref := range []bool{false, true} {
					for _, observe := range []bool{false, true} {
						cfg := cluster.PULPConfig()
						cfg.ReferenceRun = ref
						cfg.Observe = observe
						r, err := cluster.RunJob(cfg, devrt.Accel, job, 2_000_000_000)
						if err != nil {
							t.Fatalf("run (ref=%v observe=%v): %v", ref, observe, err)
						}
						runs[i] = r
						i++
					}
				}
				base := runs[0]
				for j, r := range runs[1:] {
					if r.Cycles != base.Cycles {
						t.Errorf("run %d cycles diverged: %d vs %d", j+1, r.Cycles, base.Cycles)
					}
					if !bytes.Equal(r.Out, base.Out) {
						t.Errorf("run %d output diverged", j+1)
					}
					if !reflect.DeepEqual(r.Stats, base.Stats) {
						t.Errorf("run %d stats diverged:\n%+v\nvs\n%+v", j+1, r.Stats, base.Stats)
					}
				}
				// Attribution exactness: each observed core's class sum is the
				// cluster cycle count, in both loops, and the attributions agree.
				for _, r := range []*cluster.JobResult{runs[1], runs[3]} {
					if r.Attr == nil {
						t.Fatal("observed run returned no attribution")
					}
					for ci := range r.Attr.Cores {
						if got := r.Attr.Cores[ci].Total(); got != r.Stats.Cycles {
							t.Errorf("core %d attribution sum %d != cycles %d\nclasses: %v",
								ci, got, r.Stats.Cycles, r.Attr.Cores[ci].C)
						}
					}
				}
				if !reflect.DeepEqual(runs[1].Attr, runs[3].Attr) {
					t.Errorf("attribution diverged between run loops:\n%+v\nvs\n%+v",
						runs[1].Attr.Sum(), runs[3].Attr.Sum())
				}
				if runs[0].Attr != nil || runs[2].Attr != nil {
					t.Error("unobserved run returned an attribution")
				}
			})
		}
	}
}

var wakeRe = regexp.MustCompile(`c(\d+)\s+wake slept=(\d+)`)

// traceSleepTotals parses the per-core credited sleep cycles out of the
// wake events ("slept=N") of a formatted trace.
func traceSleepTotals(out string, cores int) []uint64 {
	totals := make([]uint64, cores)
	for _, m := range wakeRe.FindAllStringSubmatch(out, -1) {
		core, _ := strconv.Atoi(m[1])
		n, _ := strconv.ParseUint(m[2], 10, 64)
		totals[core] += n
	}
	return totals
}

// TestTraceSleepMatchesStats is the regression test for the sleep/wake
// trace bug: cores skipped over CreditIdle fast-forward windows used to
// wake with no intervening trace events (and cores still asleep at run
// end emitted nothing at all), so trace-derived sleep totals disagreed
// with the credited Sleep counters. With sleep/wake events emitted at the
// transitions and synthesized at run exit, the per-core sum of "slept=N"
// must equal CollectStats' Sleep counter exactly — in both run loops.
func TestTraceSleepMatchesStats(t *testing.T) {
	k, err := kernels.ByName("matmul")
	if err != nil {
		t.Fatal(err)
	}
	prog, err := k.Build(cluster.PULPConfig().Target, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	for _, ref := range []bool{false, true} {
		cfg := cluster.PULPConfig()
		cfg.ReferenceRun = ref
		job := loader.Job{Prog: prog, In: k.Input(1), OutLen: k.OutLen(),
			Iters: 1, Threads: 4, Args: k.Args()}
		l, err := loader.Plan(job, cfg.TCDMSize, cfg.L2Size)
		if err != nil {
			t.Fatal(err)
		}
		cl := cluster.New(cfg)
		if err := cl.LoadProgram(job.Prog, false); err != nil {
			t.Fatal(err)
		}
		if err := cl.L2.WriteBytes(hw.DescBase, loader.Descriptor(job, l)); err != nil {
			t.Fatal(err)
		}
		if err := cl.L2.WriteBytes(l.InLMA, job.In); err != nil {
			t.Fatal(err)
		}
		var sb strings.Builder
		tr := trace.New(&sb, 0)
		tr.CoreFilter = -1
		cl.AttachTracer(tr)
		cl.Start(job.Prog.Entry)
		if _, err := cl.Run(2_000_000_000); err != nil {
			t.Fatalf("ref=%v: %v", ref, err)
		}
		stats := cl.CollectStats()
		got := traceSleepTotals(sb.String(), cfg.Cores)
		for i, st := range stats.Cores {
			if got[i] != st.Sleep {
				t.Errorf("ref=%v core %d: trace-derived sleep %d != credited sleep %d",
					ref, i, got[i], st.Sleep)
			}
			if sum := st.Active + st.Stall + st.Sleep; sum != stats.Cycles {
				t.Errorf("ref=%v core %d: Active+Stall+Sleep = %d != %d cycles (double- or under-credit)",
					ref, i, sum, stats.Cycles)
			}
		}
		if tr.Dropped() != 0 {
			t.Fatalf("trace dropped %d events; totals unreliable", tr.Dropped())
		}
	}

	// Block-mode leg (no tracer — a tracer strips block tables): fused-run
	// charge plans, solo batch charges and CreditIdle fast-forward windows
	// must partition the cycle axis exactly. Any cycle credited twice (a
	// fused completion also swept up by CreditIdle) or not at all breaks the
	// per-core identity against the cluster cycle count.
	cfg := cluster.PULPConfig()
	job := loader.Job{Prog: prog, In: k.Input(1), OutLen: k.OutLen(),
		Iters: 1, Threads: 4, Args: k.Args()}
	res, err := cluster.RunJob(cfg, devrt.Accel, job, 2_000_000_000)
	if err != nil {
		t.Fatal(err)
	}
	for i, st := range res.Stats.Cores {
		if sum := st.Active + st.Stall + st.Sleep; sum != res.Stats.Cycles {
			t.Errorf("block core %d: Active+Stall+Sleep = %d != %d cycles (double- or under-credit)",
				i, sum, res.Stats.Cycles)
		}
	}
}

// TestTimelineSpansFromCluster drives a multi-core kernel with the full
// observer attached (attribution + cycle-domain timeline) and checks the
// accelerator-side span recorder sees core run/sleep spans, DMA transfers
// and barrier spans, all within the run's cycle range.
func TestTimelineSpansFromCluster(t *testing.T) {
	k, err := kernels.ByName("matmul")
	if err != nil {
		t.Fatal(err)
	}
	cfg := cluster.PULPConfig()
	prog, err := k.Build(cfg.Target, devrt.Accel)
	if err != nil {
		t.Fatal(err)
	}
	job := loader.Job{Prog: prog, In: k.Input(1), OutLen: k.OutLen(),
		Iters: 1, Threads: 4, Args: k.Args()}
	l, err := loader.Plan(job, cfg.TCDMSize, cfg.L2Size)
	if err != nil {
		t.Fatal(err)
	}
	cl := cluster.New(cfg)
	if err := cl.LoadProgram(job.Prog, false); err != nil {
		t.Fatal(err)
	}
	if err := cl.L2.WriteBytes(hw.DescBase, loader.Descriptor(job, l)); err != nil {
		t.Fatal(err)
	}
	if err := cl.L2.WriteBytes(l.InLMA, job.In); err != nil {
		t.Fatal(err)
	}
	var tl obs.ClusterTL
	cl.AttachObs(&obs.Observer{TL: &tl})
	cl.Start(job.Prog.Entry)
	if _, err := cl.Run(2_000_000_000); err != nil {
		t.Fatal(err)
	}
	end := cl.Now()
	var haveRun, haveSleep, haveDMA, haveBarrier bool
	for _, s := range tl.Spans {
		if s.End < s.Start || s.End > end {
			t.Errorf("span %q out of range [%d,%d] (run ends at %d)", s.Name, s.Start, s.End, end)
		}
		switch {
		case s.Cat == "run":
			haveRun = true
		case s.Cat == "sleep":
			haveSleep = true
		case s.Cat == "dma":
			haveDMA = true
		case s.Cat == "sync" && s.Name == "barrier":
			haveBarrier = true
		}
	}
	if !haveRun || !haveSleep || !haveDMA || !haveBarrier {
		t.Errorf("missing span kinds: run=%v sleep=%v dma=%v barrier=%v (%d spans)",
			haveRun, haveSleep, haveDMA, haveBarrier, len(tl.Spans))
	}
}
