package cluster_test

import (
	"bytes"
	"fmt"
	"math/rand"
	"reflect"
	"testing"

	"hetsim/internal/asm"
	"hetsim/internal/cluster"
	"hetsim/internal/fault"
	"hetsim/internal/hw"
	"hetsim/internal/isa"
	"hetsim/internal/kernels"
	"hetsim/internal/obs"
)

// randomProgram generates a terminating straight-line-heavy program that
// exercises every fused-run boundary: ALU runs of mixed length, aligned
// TCDM loads and stores (load-use hazards included), compare+forward-branch
// pairs (both taken and fall-through), small hardware loops on targets that
// have them, and a TRAP epilogue. All memory traffic stays in the first
// 4 KiB of TCDM; branches only jump forward, loops only via LPSETUP, so
// every program halts.
func randomProgram(seed int64, hwloop bool) *asm.Program {
	r := rand.New(rand.NewSource(seed))
	var text []isa.Inst
	emit := func(op isa.Op, rd, ra, rb isa.Reg, imm int32) {
		text = append(text, isa.Inst{Op: op, Rd: rd, Ra: ra, Rb: rb, Imm: imm})
	}
	reg := func() isa.Reg { return isa.Reg(2 + r.Intn(8)) } // r2..r9

	// Prologue: TCDM base in r1, random constants in r2..r9.
	emit(isa.MOVHI, 1, 0, 0, int32(hw.TCDMBase>>16))
	emit(isa.ORIL, 1, 0, 0, int32(hw.TCDMBase&0xffff))
	for i := isa.Reg(2); i <= 9; i++ {
		emit(isa.MOVHI, i, 0, 0, r.Int31n(1<<16))
		emit(isa.ORIL, i, 0, 0, r.Int31n(1<<16))
	}

	alu := func() {
		switch r.Intn(4) {
		case 0:
			ops := []isa.Op{isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.MUL}
			emit(ops[r.Intn(len(ops))], reg(), reg(), reg(), 0)
		case 1:
			ops := []isa.Op{isa.ADDI, isa.ANDI, isa.ORI, isa.XORI}
			emit(ops[r.Intn(len(ops))], reg(), reg(), 0, r.Int31n(1<<12))
		case 2:
			ops := []isa.Op{isa.SLLI, isa.SRLI, isa.SRAI}
			emit(ops[r.Intn(len(ops))], reg(), reg(), 0, r.Int31n(32))
		default:
			emit(isa.SEXTH, reg(), reg(), 0, 0)
		}
	}

	for n := 40 + r.Intn(80); n > 0; n-- {
		switch pick := r.Intn(10); {
		case pick < 4:
			alu()
		case pick < 6: // load: aligned, within [TCDM, TCDM+4K)
			size := int32(1) << r.Intn(3)
			off := r.Int31n(4096/size) * size
			op := [3]isa.Op{isa.LBZ, isa.LHZ, isa.LW}[r.Intn(3)]
			switch op {
			case isa.LBZ:
				size = 1
			case isa.LHZ:
				size = 2
			default:
				size = 4
			}
			off = off / size * size
			emit(op, reg(), 1, 0, off)
		case pick < 8: // store
			op := [3]isa.Op{isa.SB, isa.SH, isa.SW}[r.Intn(3)]
			size := int32(1)
			switch op {
			case isa.SH:
				size = 2
			case isa.SW:
				size = 4
			}
			off := r.Int31n(4096/size) * size
			emit(op, 0, 1, reg(), off)
		case pick < 9: // compare + forward branch over k filler ops
			cmps := []isa.Op{isa.SFEQ, isa.SFNE, isa.SFLTS, isa.SFLTU}
			emit(cmps[r.Intn(len(cmps))], 0, reg(), reg(), 0)
			k := 1 + r.Intn(3)
			br := isa.BF
			if r.Intn(2) == 0 {
				br = isa.BNF
			}
			emit(br, 0, 0, 0, int32(k))
			for ; k > 0; k-- {
				alu()
			}
		default: // small hardware loop (PULP targets only)
			if !hwloop {
				alu()
				continue
			}
			emit(isa.MOVHI, 10, 0, 0, 0)
			emit(isa.ORIL, 10, 0, 0, int32(2+r.Intn(6)))
			body := 1 + r.Intn(4)
			emit(isa.LPSETUP, isa.Reg(r.Intn(2)), 10, 0, int32(body))
			for ; body > 0; body-- {
				alu()
			}
		}
	}
	emit(isa.TRAP, 0, 0, 0, 0)
	return &asm.Program{
		Name:     fmt.Sprintf("random-%d", seed),
		Entry:    hw.TextBase,
		TextBase: hw.TextBase,
		Text:     text,
	}
}

// blockTestConfigs are the cluster shapes the block differentials run on:
// the 4-core PULP cluster (multi-core fused runs with real bank
// arbitration), the same cluster with one core (solo fused runs), and the
// single-core MCU profile (load-use hazards, no hardware loops).
func blockTestConfigs() []struct {
	name   string
	cfg    cluster.Config
	hwloop bool
} {
	pulp1 := cluster.PULPConfig()
	pulp1.Cores = 1
	return []struct {
		name   string
		cfg    cluster.Config
		hwloop bool
	}{
		{"pulp-4c", cluster.PULPConfig(), true},
		{"pulp-1c", pulp1, true},
		{"m4", cluster.MCUConfig(isa.CortexM4), false},
	}
}

// runMode runs one program on one cluster config in a single execution
// mode (selected via cfg) and returns the observable state: cycles, error,
// aggregate stats, 9-class cycle attribution, the first 8 KiB of TCDM, and
// every core's registers and PC.
type modeResult struct {
	cycles uint64
	errStr string
	stats  cluster.Stats
	attr   *obs.Attribution
	mem    []byte
	regs   [][32]uint32
	pcs    []uint32
}

func runMode(t *testing.T, cfg cluster.Config, p *asm.Program, inj *fault.Injector) modeResult {
	t.Helper()
	cl := cluster.New(cfg)
	cl.AttachFaults(inj)
	at := obs.NewAttribution(cfg.Cores)
	cl.AttachObs(&obs.Observer{Attr: at})
	if err := cl.LoadProgram(p, true); err != nil {
		t.Fatalf("load: %v", err)
	}
	cl.Start(p.Entry)
	res, err := cl.Run(1_000_000)
	mr := modeResult{cycles: res.Cycles, stats: cl.CollectStats(), attr: at, mem: cl.TCDM.ReadBytes(hw.TCDMBase, 8192)}
	if err != nil {
		mr.errStr = err.Error()
	}
	for _, c := range cl.Cores {
		var regs [32]uint32
		copy(regs[:], c.Regs[:])
		mr.regs = append(mr.regs, regs)
		mr.pcs = append(mr.pcs, c.PC)
	}
	return mr
}

func compareModes(t *testing.T, blk, stp, ref modeResult) {
	t.Helper()
	compareLeg(t, "block", blk, ref)
	compareLeg(t, "stepped", stp, ref)
}

func compareLeg(t *testing.T, name string, got, ref modeResult) {
	t.Helper()
	if got.cycles != ref.cycles {
		t.Errorf("%s: cycles %d, reference %d", name, got.cycles, ref.cycles)
	}
	if got.errStr != ref.errStr {
		t.Errorf("%s: error %q, reference %q", name, got.errStr, ref.errStr)
	}
	if !reflect.DeepEqual(got.stats, ref.stats) {
		t.Errorf("%s: stats diverged:\n%+v\nreference:\n%+v", name, got.stats, ref.stats)
	}
	if !reflect.DeepEqual(got.attr, ref.attr) {
		t.Errorf("%s: attribution diverged:\n%+v\nreference:\n%+v", name, got.attr, ref.attr)
	}
	if !bytes.Equal(got.mem, ref.mem) {
		t.Errorf("%s: TCDM contents diverged", name)
	}
	if !reflect.DeepEqual(got.regs, ref.regs) {
		t.Errorf("%s: register files diverged", name)
	}
	if !reflect.DeepEqual(got.pcs, ref.pcs) {
		t.Errorf("%s: final PCs diverged", name)
	}
}

// TestRandomizedBlockDifferential fuzzes the block-compiled executor:
// randomized programs over the fusable instruction space run in all three
// execution modes on three cluster shapes, and every observable — cycles,
// stats, memory, registers, PCs — must be bit-identical to the naive
// reference loop.
func TestRandomizedBlockDifferential(t *testing.T) {
	for _, tc := range blockTestConfigs() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 24; seed++ {
				p := randomProgram(seed, tc.hwloop)

				cfg := tc.cfg
				cfg.ReferenceRun, cfg.NoBlocks = false, false
				blk := runMode(t, cfg, p, nil)
				cfg.NoBlocks = true
				stp := runMode(t, cfg, p, nil)
				cfg.ReferenceRun = true
				ref := runMode(t, cfg, p, nil)

				if t.Failed() {
					t.Fatalf("seed %d diverged", seed)
				}
				compareModes(t, blk, stp, ref)
				if t.Failed() {
					t.Fatalf("seed %d diverged (program: %d insts)", seed, len(p.Text))
				}
			}
		})
	}
}

// TestRandomizedBranchyDifferential fuzzes the superblock tier on its home
// turf: branch/loop-dominated programs (hot backward branches, taken-branch
// chains, nested hardware loops, barrier-separated per-core phases that
// open solo windows) run in four execution modes — superblock-chained (the
// default), block fusion without chaining, stepped, and the naive
// reference — and every observable including 9-class attribution must be
// bit-identical.
func TestRandomizedBranchyDifferential(t *testing.T) {
	for _, tc := range blockTestConfigs() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 24; seed++ {
				p := kernels.BranchyProgram(seed, kernels.BranchyOpts{
					HWLoop:   tc.hwloop,
					Barriers: tc.cfg.Cores > 1,
				})

				cfg := tc.cfg
				cfg.ReferenceRun, cfg.NoBlocks, cfg.NoSuperblocks = false, false, false
				sup := runMode(t, cfg, p, nil)
				cfg.NoSuperblocks = true
				blk := runMode(t, cfg, p, nil)
				cfg.NoBlocks = true
				stp := runMode(t, cfg, p, nil)
				cfg.ReferenceRun = true
				ref := runMode(t, cfg, p, nil)

				compareLeg(t, "super", sup, ref)
				compareLeg(t, "block", blk, ref)
				compareLeg(t, "stepped", stp, ref)
				if t.Failed() {
					t.Fatalf("seed %d diverged (program: %d insts)", seed, len(p.Text))
				}
			}
		})
	}
}

// TestBlockFaultDifferential pins the fault-injection contract of block
// mode: with a seeded SEU injector attached the cluster strips the block
// tables (fused runs cannot see mid-run bit flips at the right cycle), and
// the resulting stepped execution — including every injected flip — is
// bit-identical across all three modes. A fresh injector with the same
// seed is built per leg so the fault sequence replays exactly.
func TestBlockFaultDifferential(t *testing.T) {
	faultCfg := fault.Config{Seed: 42, TCDMFlipRate: 0.02, L2FlipRate: 0.001, ParityRate: 0.001}
	for _, tc := range blockTestConfigs() {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			for seed := int64(1); seed <= 6; seed++ {
				p := randomProgram(seed, tc.hwloop)

				cfg := tc.cfg
				cfg.ReferenceRun, cfg.NoBlocks = false, false
				blk := runMode(t, cfg, p, fault.New(faultCfg))
				cfg.NoBlocks = true
				stp := runMode(t, cfg, p, fault.New(faultCfg))
				cfg.ReferenceRun = true
				ref := runMode(t, cfg, p, fault.New(faultCfg))

				compareModes(t, blk, stp, ref)
				if t.Failed() {
					t.Fatalf("seed %d diverged under faults", seed)
				}
			}
		})
	}
}
