package cluster

import (
	"fmt"
	"strings"
	"testing"

	"hetsim/internal/asm"
	"hetsim/internal/hw"
	"hetsim/internal/isa"
)

// run assembles src, loads it with data placed directly (no crt0), runs it
// to completion and returns the cluster for inspection.
func run(t *testing.T, cfg Config, src string) (*Cluster, RunResult) {
	t.Helper()
	cl, res, err := tryRun(cfg, src)
	if err != nil {
		t.Fatal(err)
	}
	return cl, res
}

func tryRun(cfg Config, src string) (*Cluster, RunResult, error) {
	p, err := asm.Assemble("test", src, asm.Layout{TCDMSize: cfg.TCDMSize})
	if err != nil {
		return nil, RunResult{}, err
	}
	cl := New(cfg)
	if err := cl.LoadProgram(p, true); err != nil {
		return nil, RunResult{}, err
	}
	cl.Start(p.Entry)
	res, err := cl.Run(50_000_000)
	return cl, res, err
}

func onePULP() Config {
	c := PULPConfig()
	c.Cores = 1
	return c
}

func TestALUBasics(t *testing.T) {
	cl, res := run(t, onePULP(), `
    li   a0, 7
    li   a1, -3
    add  a2, a0, a1      ; 4
    sub  a3, a0, a1      ; 10
    mul  a4, a0, a1      ; -21
    and  a5, a0, a1      ; 7 & -3 = 5
    or   t0, a0, a1      ; -3|7 = -1... (0xfffffffd | 7) = 0xffffffff
    xor  t1, a0, a1
    slli t2, a0, 4       ; 112
    srai t3, a1, 1       ; -2
    srli t4, a1, 28      ; 0xf
    div  t5, a3, a0      ; 10/7 = 1
    divu t6, a3, a0      ; 1
    sexth t7, t2         ; 112
    trap 0
`)
	if !res.Halted || res.TrapCode != 0 {
		t.Fatalf("bad result: %+v", res)
	}
	c := cl.Cores[0]
	want := map[isa.Reg]uint32{
		isa.A2: 4, isa.A3: 10, isa.A4: 0xffffffeb, isa.A5: 5,
		isa.T0: 0xffffffff, isa.T1: 0xfffffffa, // 7^-3 = 0xfffffffa
		isa.T2: 112, isa.T3: 0xfffffffe, isa.T4: 0xf, isa.T5: 1, isa.T6: 1, isa.T7: 112,
	}
	want[isa.T1] = 7 ^ 0xfffffffd
	for r, v := range want {
		if c.Regs[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, c.Regs[r], v)
		}
	}
}

func TestR0Hardwired(t *testing.T) {
	cl, _ := run(t, onePULP(), `
    addi r0, r0, 5
    add  a0, r0, r0
    trap 0
`)
	if cl.Cores[0].Regs[isa.R0] != 0 || cl.Cores[0].Regs[isa.A0] != 0 {
		t.Fatal("r0 must stay zero")
	}
}

func TestLoadStoreSignExtension(t *testing.T) {
	cl, _ := run(t, onePULP(), fmt.Sprintf(`
    li   a0, %d        ; TCDM scratch
    li   a1, -1
    sb   a1, 0(a0)
    lbz  a2, 0(a0)     ; 0xff
    lbs  a3, 0(a0)     ; -1
    li   a1, 0x8000
    sh   a1, 4(a0)
    lhz  a4, 4(a0)     ; 0x8000
    lhs  a5, 4(a0)     ; -32768
    li   a1, 0x12345678
    sw   a1, 8(a0)
    lw   t0, 8(a0)
    trap 0
`, hw.TCDMBase+0x8000))
	c := cl.Cores[0]
	checks := map[isa.Reg]uint32{
		isa.A2: 0xff, isa.A3: 0xffffffff, isa.A4: 0x8000,
		isa.A5: 0xffff8000, isa.T0: 0x12345678,
	}
	for r, v := range checks {
		if c.Regs[r] != v {
			t.Errorf("r%d = %#x, want %#x", r, c.Regs[r], v)
		}
	}
}

func TestPostIncrementAddressing(t *testing.T) {
	cl, _ := run(t, onePULP(), fmt.Sprintf(`
    li   a0, %d
    li   a1, 11
    swp  a1, 4(a0)     ; mem[base]=11, a0+=4
    li   a1, 22
    swp  a1, 4(a0)
    li   a0, %d
    lwp  a2, 4(a0)     ; 11
    lwp  a3, 4(a0)     ; 22
    trap 0
`, hw.TCDMBase+0x8000, hw.TCDMBase+0x8000))
	c := cl.Cores[0]
	if c.Regs[isa.A2] != 11 || c.Regs[isa.A3] != 22 {
		t.Fatalf("post-increment loads got %d, %d", c.Regs[isa.A2], c.Regs[isa.A3])
	}
	if c.Regs[isa.A0] != hw.TCDMBase+0x8008 {
		t.Fatalf("base register not incremented: %#x", c.Regs[isa.A0])
	}
}

func TestBranchesAndCompares(t *testing.T) {
	cl, _ := run(t, onePULP(), `
    li   a0, 0
    li   a1, 10
loop:
    addi a0, a0, 1
    sfltu a0, a1
    bf  loop
    trap 0
`)
	if cl.Cores[0].Regs[isa.A0] != 10 {
		t.Fatalf("loop count = %d, want 10", cl.Cores[0].Regs[isa.A0])
	}
}

func TestHardwareLoop(t *testing.T) {
	cl, _ := run(t, onePULP(), `
    li  t0, 100
    li  a0, 0
    lp.setup 0, t0, end
    addi a0, a0, 1
    addi a1, a1, 2
end:
    trap 0
`)
	c := cl.Cores[0]
	if c.Regs[isa.A0] != 100 || c.Regs[isa.A1] != 200 {
		t.Fatalf("hwloop body ran %d/%d times, want 100", c.Regs[isa.A0], c.Regs[isa.A1]/2)
	}
}

func TestNestedHardwareLoops(t *testing.T) {
	cl, _ := run(t, onePULP(), `
    li  t0, 10
    li  a0, 0
    lp.setup 1, t0, outer_end
    li  t1, 7
    lp.setup 0, t1, inner_end
    addi a0, a0, 1
inner_end:
    addi a1, a1, 1
outer_end:
    trap 0
`)
	c := cl.Cores[0]
	if c.Regs[isa.A0] != 70 || c.Regs[isa.A1] != 10 {
		t.Fatalf("nested loops: inner=%d (want 70) outer=%d (want 10)", c.Regs[isa.A0], c.Regs[isa.A1])
	}
}

func TestHardwareLoopZeroCount(t *testing.T) {
	cl, _ := run(t, onePULP(), `
    li  t0, 0
    li  a0, 0
    lp.setup 0, t0, end
    addi a0, a0, 1
end:
    trap 0
`)
	if cl.Cores[0].Regs[isa.A0] != 0 {
		t.Fatalf("zero-trip hwloop body executed %d times", cl.Cores[0].Regs[isa.A0])
	}
}

func TestHardwareLoopTiming(t *testing.T) {
	// HW loop of N iterations with a 1-instruction body must cost ~N cycles,
	// while the branch version costs ~4N on OR10N (addi+addi+sf+bf-taken).
	hwSrc := `
    li t0, 1000
    lp.setup 0, t0, e
    addi a0, a0, 1
e:  trap 0
`
	brSrc := `
    li t0, 1000
l:  addi a0, a0, 1
    addi t0, t0, -1
    sfnei t0, 0
    bf l
    trap 0
`
	cfg := onePULP()
	cfg.ICacheSize = 0 // isolate from cold-miss noise
	_, rh := run(t, cfg, hwSrc)
	_, rb := run(t, cfg, brSrc)
	if rh.Cycles > 1100 {
		t.Errorf("hwloop cycles = %d, want ~1000", rh.Cycles)
	}
	if rb.Cycles < 3900 {
		t.Errorf("branch loop cycles = %d, want ~4000+", rb.Cycles)
	}
}

func TestSIMDDotProducts(t *testing.T) {
	cl, _ := run(t, onePULP(), `
    li  a0, 0x01020304   ; bytes 4,3,2,1
    li  a1, 0x05060708   ; bytes 8,7,6,5
    li  a2, 100
    dotp4b a2, a0, a1    ; 100 + 4*8+3*7+2*6+1*5 = 100+70 = 170
    li  a3, 0xfffe0003   ; halves 3, -2
    li  a4, 0x00050002   ; halves 2, 5
    li  a5, 0
    dotp2h a5, a3, a4    ; 3*2 + (-2)*5 = -4
    trap 0
`)
	c := cl.Cores[0]
	if c.Regs[isa.A2] != 170 {
		t.Errorf("dotp4b = %d, want 170", int32(c.Regs[isa.A2]))
	}
	if int32(c.Regs[isa.A5]) != -4 {
		t.Errorf("dotp2h = %d, want -4", int32(c.Regs[isa.A5]))
	}
}

func TestSIMDLaneArith(t *testing.T) {
	cl, _ := run(t, onePULP(), `
    li a0, 0x7f01ff80    ; bytes: 0x80,0xff,0x01,0x7f
    li a1, 0x01010101
    add4b a2, a0, a1     ; wraps per-lane: 0x81,0x00,0x02,0x80
    li a3, 0x00100020
    li a4, 0x00300004
    sub2h a5, a3, a4     ; halves: 0x001c, 0xffe0
    li t0, 2
    li s4, 0xfff00040    ; halves 0x0040, 0xfff0
    sra2h t1, s4, t0     ; halves 0x0010, 0xfffc
    trap 0
`)
	c := cl.Cores[0]
	if c.Regs[isa.A2] != 0x80020081&^0xf00000000 { // 0x80020081
		if c.Regs[isa.A2] != 0x80020081 {
			t.Errorf("add4b = %#x, want 0x80020081", c.Regs[isa.A2])
		}
	}
	if c.Regs[isa.A5] != 0xffe0001c {
		t.Errorf("sub2h = %#x, want 0xffe0001c", c.Regs[isa.A5])
	}
	if c.Regs[isa.T1+0] != 0xfffc0010 {
		t.Errorf("sra2h = %#x, want 0xfffc0010", c.Regs[isa.T1])
	}
}

func TestMACRegisterRegister(t *testing.T) {
	cl, _ := run(t, onePULP(), `
    li a0, 1000
    li a1, -7
    li a2, 9
    mac a0, a1, a2   ; 1000 - 63 = 937
    msu a0, a1, a2   ; back to 1000
    mac a0, a1, a1   ; 1000 + 49
    trap 0
`)
	if got := int32(cl.Cores[0].Regs[isa.A0]); got != 1049 {
		t.Fatalf("mac/msu = %d, want 1049", got)
	}
}

func TestMAC64Accumulator(t *testing.T) {
	cl, _ := run(t, MCUConfig(isa.CortexM4), `
    li a0, 0x40000000    ; 2^30
    li a1, 16
    macclr
    macs a0, a1          ; 2^34
    macs a0, a1          ; 2^35
    macrdl a2, r0
    macrdh a3, r0
    li a4, -3
    li a5, 5
    macclr
    macs a4, a5          ; -15
    macrdl s4, r0
    macrdh t0, r0
    trap 0
`)
	c := cl.Cores[0]
	if c.Regs[isa.A2] != 0 || c.Regs[isa.A3] != 8 {
		t.Errorf("acc = %#x:%#x, want 0x8:0x0", c.Regs[isa.A3], c.Regs[isa.A2])
	}
	if int32(c.Regs[isa.S4]) != -15 || c.Regs[isa.T0] != 0xffffffff {
		t.Errorf("signed acc = %#x:%#x, want -15", c.Regs[isa.T0], c.Regs[isa.S4])
	}
}

func TestMinMax(t *testing.T) {
	cl, _ := run(t, onePULP(), `
    li a0, -5
    li a1, 3
    min a2, a0, a1
    max a3, a0, a1
    minu a4, a0, a1   ; unsigned: 3
    maxu a5, a0, a1   ; unsigned: 0xfffffffb
    trap 0
`)
	c := cl.Cores[0]
	if int32(c.Regs[isa.A2]) != -5 || int32(c.Regs[isa.A3]) != 3 {
		t.Errorf("min/max wrong: %d %d", int32(c.Regs[isa.A2]), int32(c.Regs[isa.A3]))
	}
	if c.Regs[isa.A4] != 3 || c.Regs[isa.A5] != 0xfffffffb {
		t.Errorf("minu/maxu wrong: %#x %#x", c.Regs[isa.A4], c.Regs[isa.A5])
	}
}

func TestFeatureTrapsOnPlainRISC(t *testing.T) {
	cfg := MCUConfig(isa.PULPPlain)
	_, _, err := tryRun(cfg, `
    mac a0, a1, a2
    trap 0
`)
	if err == nil || !strings.Contains(err.Error(), "illegal instruction") {
		t.Fatalf("plain RISC must trap on MAC, got %v", err)
	}
}

func TestUnalignedTrapsWithoutFeature(t *testing.T) {
	cfg := MCUConfig(isa.PULPPlain)
	_, _, err := tryRun(cfg, fmt.Sprintf(`
    li a0, %d
    lw a1, 1(a0)
    trap 0
`, hw.TCDMBase))
	if err == nil || !strings.Contains(err.Error(), "unaligned") {
		t.Fatalf("plain RISC must trap on unaligned access, got %v", err)
	}
}

func TestUnalignedCostsExtraCycle(t *testing.T) {
	cfg := onePULP()
	cfg.ICacheSize = 0
	alignedSrc := fmt.Sprintf(`
    li a0, %d
    li t0, 1000
    lp.setup 0, t0, e
    lw a1, 0(a0)
e:  trap 0`, hw.TCDMBase)
	unalignedSrc := fmt.Sprintf(`
    li a0, %d
    li t0, 1000
    lp.setup 0, t0, e
    lw a1, 1(a0)
e:  trap 0`, hw.TCDMBase)
	_, ra := run(t, cfg, alignedSrc)
	_, ru := run(t, cfg, unalignedSrc)
	if ru.Cycles <= ra.Cycles+900 {
		t.Fatalf("unaligned loop not ~1 cycle/iter slower: %d vs %d", ru.Cycles, ra.Cycles)
	}
}

func TestMFSPRCoreIDAndNumCores(t *testing.T) {
	cfg := PULPConfig()
	cl, _ := run(t, cfg, fmt.Sprintf(`
    mfspr a0, 0          ; core id
    mfspr a1, 1          ; num cores
    slli  t0, a0, 2
    li    t1, %d
    add   t0, t0, t1
    sw    a0, 0(t0)      ; tcdm[id] = id
    trap 0
`, hw.TCDMBase+0x9000))
	for i := 0; i < 4; i++ {
		got := cl.TCDM.Read(hw.TCDMBase+0x9000+uint32(i)*4, 4)
		if got != uint32(i) {
			t.Errorf("tcdm slot %d = %d, want %d", i, got, i)
		}
	}
	if cl.Cores[2].Regs[isa.A1] != 4 {
		t.Errorf("numcores SPR = %d", cl.Cores[2].Regs[isa.A1])
	}
}

func TestBarrierSynchronizesCores(t *testing.T) {
	// Each core writes its slot, core 0 waits at the barrier then sums.
	// Cores 1..3 spin in WFE after arriving.
	src := fmt.Sprintf(`
    mfspr a0, 0
    slli  t0, a0, 2
    li    t1, %d
    add   t0, t0, t1
    addi  t2, a0, 100
    ; stagger the cores so arrival order is nontrivial
    li    t4, 50
    mul   t5, a0, t4
delay:
    sfeqi t5, 0
    bf    delayed
    addi  t5, t5, -1
    j     delay
delayed:
    sw    t2, 0(t0)
    li    t3, %d
    li    t6, 4
    sw    t6, 0(t3)      ; barrier arrive, team of 4
    mfspr a0, 0
    sfeqi a0, 0
    bnf   park
    ; core 0: sum the 4 slots
    li    t0, %d
    lw    a1, 0(t0)
    lw    a2, 4(t0)
    lw    a3, 8(t0)
    lw    a4, 12(t0)
    add   a1, a1, a2
    add   a1, a1, a3
    add   a1, a1, a4
    li    t5, %d
    sw    a1, 0(t5)
    trap 0
park:
    wfe
    j park
`, hw.TCDMBase+0xA000, hw.EvtBase+hw.EvtBarrierArrive, hw.TCDMBase+0xA000, hw.TCDMBase+0xA100)
	cl, res := run(t, PULPConfig(), src)
	if !res.Halted {
		t.Fatalf("expected halt, got %+v", res)
	}
	sum := cl.TCDM.Read(hw.TCDMBase+0xA100, 4)
	if sum != 100+101+102+103 {
		t.Fatalf("barrier sum = %d, want 406", sum)
	}
	if cl.Evt.Barriers != 1 {
		t.Errorf("barrier count = %d", cl.Evt.Barriers)
	}
}

func TestMutexMutualExclusion(t *testing.T) {
	// 4 cores each add 1 to a shared counter 200 times under the HW mutex.
	src := fmt.Sprintf(`
    li   s0, %d          ; counter addr
    li   s1, %d          ; mutex lock addr
    li   s2, %d          ; mutex unlock addr
    li   s3, 200
loop:
    lw   t0, 0(s1)       ; acquire (spins via retry)
    lw   t1, 0(s0)
    addi t1, t1, 1
    sw   t1, 0(s0)
    sw   r0, 0(s2)       ; release
    addi s3, s3, -1
    sfnei s3, 0
    bf   loop
    ; arrive at the final barrier; core0 traps after
    li   t3, %d
    li   t6, 4
    sw   t6, 0(t3)
    mfspr a0, 0
    sfeqi a0, 0
    bnf  park
    trap 0
park:
    wfe
    j park
`, hw.TCDMBase+0xB000, hw.EvtBase+hw.EvtMutexLock, hw.EvtBase+hw.EvtMutexUnlock, hw.EvtBase+hw.EvtBarrierArrive)
	cl, res := run(t, PULPConfig(), src)
	if !res.Halted {
		t.Fatalf("expected halt, got %+v", res)
	}
	if got := cl.TCDM.Read(hw.TCDMBase+0xB000, 4); got != 800 {
		t.Fatalf("mutex-protected counter = %d, want 800", got)
	}
}

func TestDeadlockDetection(t *testing.T) {
	_, _, err := tryRun(PULPConfig(), `
    wfe
    trap 0
`)
	if err != ErrDeadlock {
		t.Fatalf("want ErrDeadlock, got %v", err)
	}
}

func TestEOCStopsRun(t *testing.T) {
	src := fmt.Sprintf(`
    mfspr a0, 0
    sfeqi a0, 0
    bnf park
    li  t0, %d
    li  t1, 1
    sw  t1, 0(t0)
    wfe
park:
    wfe
    j park
`, hw.SoCCtlBase+hw.SoCEOC)
	_, res := run(t, PULPConfig(), src)
	if !res.EOC || res.EOCValue != 1 {
		t.Fatalf("EOC not detected: %+v", res)
	}
}

func TestDMATransferAndPolling(t *testing.T) {
	// Stage a pattern in L2, DMA it to TCDM, poll status, verify, DMA back.
	cfg := PULPConfig()
	p, err := asm.Assemble("dma", fmt.Sprintf(`
    mfspr t9, 0
    sfeqi t9, 0
    bnf park
    li  s0, %d          ; dma regs
    li  s1, %d          ; L2 src
    li  s2, %d          ; TCDM dst
    sw  s1, 0(s0)       ; src
    sw  s2, 4(s0)       ; dst
    li  t0, 256
    sw  t0, 8(s0)       ; len
    sw  r0, 12(s0)      ; start ch0
wait:
    lw  t1, 16(s0)      ; status
    sfnei t1, 0
    bf  wait
    lw  a0, 0(s2)       ; first word
    lw  a1, 252(s2)     ; last word
    trap 0
park:
    wfe
    j park
`, hw.DMABase, hw.L2Base+0x4000, hw.TCDMBase+0xC000), asm.Layout{})
	if err != nil {
		t.Fatal(err)
	}
	cl := New(cfg)
	if err := cl.LoadProgram(p, true); err != nil {
		t.Fatal(err)
	}
	for i := uint32(0); i < 256; i += 4 {
		cl.L2.Write(hw.L2Base+0x4000+i, 4, 0xCAFE0000+i)
	}
	cl.Start(p.Entry)
	res, err := cl.Run(1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Halted {
		t.Fatalf("no halt: %+v", res)
	}
	c := cl.Cores[0]
	if c.Regs[isa.A0] != 0xCAFE0000 || c.Regs[isa.A1] != 0xCAFE00FC {
		t.Fatalf("DMA data wrong: %#x %#x", c.Regs[isa.A0], c.Regs[isa.A1])
	}
	if cl.DMA.Beats != 64 {
		t.Errorf("DMA beats = %d, want 64", cl.DMA.Beats)
	}
	if cl.DMA.BusyCycles < 64 {
		t.Errorf("DMA busy cycles = %d, want >= 64", cl.DMA.BusyCycles)
	}
}

func TestBankConflictsSlowDownSameBankAccess(t *testing.T) {
	// 4 cores hammering the same word (same bank) vs. distinct banks.
	mk := func(stride int) string {
		return fmt.Sprintf(`
    mfspr t0, 0
    li    t1, %d
    mul   t2, t0, t1
    li    a0, %d
    add   a0, a0, t2
    li    t3, 2000
    lp.setup 0, t3, e
    lw    a1, 0(a0)
e:
    li    t4, %d
    li    t5, 4
    sw    t5, 0(t4)
    mfspr t6, 0
    sfeqi t6, 0
    bnf   park
    trap  0
park:
    wfe
    j park
`, stride, hw.TCDMBase+0xC000, hw.EvtBase+hw.EvtBarrierArrive)
	}
	_, conflicted := run(t, PULPConfig(), mk(0)) // all cores same bank
	_, spread := run(t, PULPConfig(), mk(4))     // adjacent words = different banks
	if conflicted.Cycles < spread.Cycles*2 {
		t.Fatalf("same-bank run (%d cycles) should be much slower than spread run (%d cycles)",
			conflicted.Cycles, spread.Cycles)
	}
}

func TestICacheWarmupCost(t *testing.T) {
	src := `
    li t0, 500
    lp.setup 0, t0, e
    addi a0, a0, 1
    addi a1, a1, 1
    addi a2, a2, 1
    addi a3, a3, 1
e:  trap 0
`
	warm := onePULP()
	cold := onePULP()
	cold.ICacheSize = 1024
	warm.ICacheSize = 0
	_, rw := run(t, warm, src)
	clc, rc := run(t, cold, src)
	if rc.Cycles <= rw.Cycles {
		t.Fatalf("cold I$ run (%d) must be slower than perfect fetch (%d)", rc.Cycles, rw.Cycles)
	}
	if clc.IC.Misses == 0 {
		t.Fatal("expected I$ misses")
	}
	// With the per-core line buffer only line-crossing fetches reach the
	// cache, so assert absolute misses: the loop spans a couple of lines
	// that must miss exactly once each.
	if clc.IC.Misses > 4 {
		t.Fatalf("loop should be I$-friendly, %d misses", clc.IC.Misses)
	}
}

func TestLoadUseHazardOnMProfile(t *testing.T) {
	// Dependent load->use chain: M profile pays 1 bubble per pair;
	// OR10N (TCDM single cycle, 4-stage) does not.
	src := fmt.Sprintf(`
    li a0, %d
    sw a0, 0(a0)
    li t0, 1000
l:  lw a1, 0(a0)
    add a2, a1, a1     ; immediately uses the load
    addi t0, t0, -1
    sfnei t0, 0
    bf l
    trap 0
`, hw.TCDMBase)
	cfgM := MCUConfig(isa.CortexM4)
	cfgP := onePULP()
	cfgP.ICacheSize = 0
	_, rm := run(t, cfgM, src)
	_, rp := run(t, cfgP, src)
	// Same taken-branch loop; M4 pays (branch 2 vs 1) + loaduse 1 = +2/iter.
	d := int64(rm.Cycles) - int64(rp.Cycles)
	if d < 1500 {
		t.Fatalf("M4 should pay ~2 extra cycles/iter: M4=%d PULP=%d", rm.Cycles, rp.Cycles)
	}
}

func TestTimingStraightLineIPC(t *testing.T) {
	// 1000 independent single-cycle ALU ops must take ~1000 cycles.
	var sb strings.Builder
	for i := 0; i < 1000; i++ {
		sb.WriteString("addi a0, a0, 1\n")
	}
	sb.WriteString("trap 0\n")
	cfg := onePULP()
	cfg.ICacheSize = 0
	_, res := run(t, cfg, sb.String())
	if res.Cycles < 1000 || res.Cycles > 1010 {
		t.Fatalf("straight-line cycles = %d, want ~1000", res.Cycles)
	}
}

func TestMulDivTiming(t *testing.T) {
	mulsrc := `
    li t0, 100
    lp.setup 0, t0, e
    mul a0, a1, a2
e:  trap 0`
	divsrc := `
    li t0, 100
    li a2, 3
    lp.setup 0, t0, e
    div a0, a1, a2
e:  trap 0`
	cfg := onePULP()
	cfg.ICacheSize = 0
	_, rm := run(t, cfg, mulsrc)
	_, rd := run(t, cfg, divsrc)
	if rm.Cycles > 120 {
		t.Errorf("100 single-cycle muls took %d cycles", rm.Cycles)
	}
	if rd.Cycles < 3200 {
		t.Errorf("100 32-cycle divs took %d cycles, want ~3200", rd.Cycles)
	}
}

func TestStatsCollection(t *testing.T) {
	cl, _ := run(t, PULPConfig(), fmt.Sprintf(`
    mfspr a0, 0
    sfeqi a0, 0
    bnf park
    li t0, 100
    lp.setup 0, t0, e
    addi a1, a1, 1
e:  trap 0
park:
    wfe
    j park
`))
	s := cl.CollectStats()
	if s.Cycles == 0 || len(s.Cores) != 4 {
		t.Fatalf("bad stats: %+v", s)
	}
	if s.Cores[0].Retired < 100 {
		t.Errorf("core0 retired = %d", s.Cores[0].Retired)
	}
	if s.Cores[1].Sleep == 0 {
		t.Errorf("core1 should have slept")
	}
	if s.Retired() <= s.Cores[0].Retired {
		t.Errorf("aggregate retired must include all cores")
	}
}

func TestUnmappedAccessFaults(t *testing.T) {
	_, _, err := tryRun(onePULP(), `
    li a0, 0x20000000
    lw a1, 0(a0)
    trap 0
`)
	if err == nil || !strings.Contains(err.Error(), "unmapped") {
		t.Fatalf("want unmapped fault, got %v", err)
	}
}

// TestEOCImpliesQuiescence: when a well-formed offload signals EOC, every
// non-master core must be parked in WFE and the DMA drained — the state
// the host relies on before reusing the accelerator.
func TestEOCImpliesQuiescence(t *testing.T) {
	src := fmt.Sprintf(`
    mfspr a0, 0
    sfeqi a0, 0
    bnf park
    li  t0, %d
    li  t1, 1
    sw  t1, 0(t0)
    wfe
park:
    wfe
    j park
`, hw.SoCCtlBase+hw.SoCEOC)
	cl, res := run(t, PULPConfig(), src)
	if !res.EOC {
		t.Fatal("no EOC")
	}
	if cl.DMA.Busy() {
		t.Error("DMA still busy at EOC")
	}
	for i, c := range cl.Cores {
		if i == 0 {
			continue
		}
		if !c.Sleeping() {
			t.Errorf("core %d not asleep at EOC", i)
		}
	}
}
