package cluster_test

import (
	"bytes"
	"reflect"
	"testing"

	"hetsim/internal/cluster"
	"hetsim/internal/devrt"
	"hetsim/internal/isa"
	"hetsim/internal/kernels"
	"hetsim/internal/loader"
)

// TestDifferentialCycleAccuracy proves that the event-driven run loop (with
// idle fast-forwarding, O(1) termination checks and the predecoded core
// fast paths) is cycle-exact against the naive reference loop: for every
// kernel of the small suite, on single- and multi-core accelerator
// configurations and on an MCU host, both loops must report bit-identical
// cycle counts, outputs and per-component performance counters. Any
// optimization that changes observable timing by even one cycle fails
// here.
func TestDifferentialCycleAccuracy(t *testing.T) {
	type runCfg struct {
		name    string
		tgt     isa.Target
		mode    devrt.Mode
		threads uint32
	}
	configs := []runCfg{
		{"pulp-4t", isa.PULPFull, devrt.Accel, 4},
		{"pulp-2t", isa.PULPFull, devrt.Accel, 2},
		{"pulp-1t", isa.PULPFull, devrt.Accel, 1},
		{"m4-host", isa.CortexM4, devrt.Host, 1},
	}
	for _, k := range kernels.SmallSuite() {
		for _, rc := range configs {
			t.Run(k.Name+"/"+rc.name, func(t *testing.T) {
				prog, err := k.Build(rc.tgt, rc.mode)
				if err != nil {
					t.Fatalf("build: %v", err)
				}
				var cfg cluster.Config
				if rc.mode == devrt.Accel {
					cfg = cluster.PULPConfig()
					cfg.Target = rc.tgt
				} else {
					cfg = cluster.MCUConfig(rc.tgt)
				}
				in := k.Input(1)
				job := loader.Job{Prog: prog, In: in, OutLen: k.OutLen(),
					Iters: 1, Threads: rc.threads, Args: k.Args()}

				// Four execution modes, compared pairwise against the naive
				// reference loop: superblock-chained (the default), block
				// fusion without chaining, stepped (blocks disabled), and
				// the reference itself. Attribution is recorded in all of
				// them so the 9-class obs exactness invariant covers fused
				// and chained runs too.
				cfg.Observe = true
				cfg.ReferenceRun = false
				sup, err := cluster.RunJob(cfg, rc.mode, job, 2_000_000_000)
				if err != nil {
					t.Fatalf("superblock run: %v", err)
				}
				cfg.NoSuperblocks = true
				blk, err := cluster.RunJob(cfg, rc.mode, job, 2_000_000_000)
				if err != nil {
					t.Fatalf("block run: %v", err)
				}
				cfg.NoBlocks = true
				stp, err := cluster.RunJob(cfg, rc.mode, job, 2_000_000_000)
				if err != nil {
					t.Fatalf("stepped run: %v", err)
				}
				cfg.ReferenceRun = true
				ref, err := cluster.RunJob(cfg, rc.mode, job, 2_000_000_000)
				if err != nil {
					t.Fatalf("reference run: %v", err)
				}

				for _, leg := range []struct {
					name string
					res  *cluster.JobResult
				}{{"super", sup}, {"block", blk}, {"stepped", stp}} {
					opt := leg.res
					if opt.Cycles != ref.Cycles {
						t.Errorf("%s: cycle count diverged: optimized %d, reference %d",
							leg.name, opt.Cycles, ref.Cycles)
					}
					if !bytes.Equal(opt.Out, ref.Out) {
						t.Errorf("%s: output buffers diverged", leg.name)
					}
					if !reflect.DeepEqual(opt.Stats, ref.Stats) {
						t.Errorf("%s: stats diverged:\noptimized: %+v\nreference: %+v",
							leg.name, opt.Stats, ref.Stats)
					}
					if !reflect.DeepEqual(opt.Attr, ref.Attr) {
						t.Errorf("%s: attribution diverged:\noptimized: %+v\nreference: %+v",
							leg.name, opt.Attr, ref.Attr)
					}
				}
			})
		}
	}
}
