package cluster

import (
	"fmt"

	"hetsim/internal/devrt"
	"hetsim/internal/hw"
	"hetsim/internal/loader"
	"hetsim/internal/obs"
)

// JobResult is the outcome of a standalone RunJob.
type JobResult struct {
	Out    []byte
	Cycles uint64
	Stats  Stats
	Layout loader.Layout

	// Attr is the per-core cycle attribution of the run; non-nil exactly
	// when Config.Observe was set.
	Attr *obs.Attribution
}

// RunJob executes one offload job on a fresh cluster without a host: the
// descriptor and staged input are written into L2 directly (standing in
// for the SPI writes of the integrated system), the cluster runs until EOC
// (accel mode) or trap (host mode), and the output buffer is read back.
// This is the harness used by kernel golden tests and by the performance
// experiments that need pure compute cycles.
func RunJob(cfg Config, mode devrt.Mode, job loader.Job, maxCycles uint64) (*JobResult, error) {
	if job.StackCores == 0 {
		job.StackCores = cfg.Cores
	}
	l, err := loader.Plan(job, cfg.TCDMSize, cfg.L2Size)
	if err != nil {
		return nil, err
	}
	if int(job.Threads) > cfg.Cores {
		return nil, fmt.Errorf("cluster: job wants %d threads, cluster has %d cores", job.Threads, cfg.Cores)
	}
	cl := New(cfg)
	if err := cl.LoadCompiled(job.Prog, mode == devrt.Host, job.Compiled); err != nil {
		return nil, err
	}
	if err := cl.L2.WriteBytes(hw.DescBase, loader.Descriptor(job, l)); err != nil {
		return nil, err
	}
	if len(job.In) > 0 {
		if mode == devrt.Host {
			err = cl.TCDM.WriteBytes(l.InVMA, job.In)
		} else {
			err = cl.L2.WriteBytes(l.InLMA, job.In)
		}
		if err != nil {
			return nil, err
		}
	}
	var at *obs.Attribution
	if cfg.Observe {
		at = obs.NewAttribution(cfg.Cores)
		cl.AttachObs(&obs.Observer{Attr: at})
	}
	cl.Start(job.Prog.Entry)
	res, err := cl.Run(maxCycles)
	if err != nil {
		return nil, fmt.Errorf("cluster: job %s (%s): %w", job.Prog.Name, mode, err)
	}
	switch mode {
	case devrt.Accel:
		if !res.EOC || res.EOCValue != 1 {
			return nil, fmt.Errorf("cluster: job %s did not signal EOC=1: %+v", job.Prog.Name, res)
		}
	case devrt.Host:
		if !res.Halted || res.TrapCode != 0 {
			return nil, fmt.Errorf("cluster: job %s did not trap cleanly: %+v", job.Prog.Name, res)
		}
	}
	out := &JobResult{Cycles: res.Cycles, Stats: cl.CollectStats(), Layout: l, Attr: at}
	if job.OutLen > 0 {
		if mode == devrt.Host {
			out.Out = cl.TCDM.ReadBytes(l.OutVMA, job.OutLen)
		} else {
			out.Out = cl.L2.ReadBytes(l.OutLMA, job.OutLen)
		}
	}
	return out, nil
}
