// Package cluster wires the simulated PULP cluster together: 1–4 cores
// (internal/cpu), the multi-banked TCDM and shared I-cache (internal/mem),
// the lightweight DMA (internal/dma) and the hardware synchronizer
// (internal/hwsync), stepped in lock-step one cycle at a time. It also
// stands in for the MCU when configured with a single M-profile core, a
// flat memory and a perfect fetch path.
//
// Per-component activity counters collected here are the chi ratios of the
// paper's power model (Section IV-A).
package cluster

import (
	"errors"
	"fmt"
	"math/bits"

	"hetsim/internal/asm"
	"hetsim/internal/cpu"
	"hetsim/internal/dma"
	"hetsim/internal/fault"
	"hetsim/internal/hw"
	"hetsim/internal/hwsync"
	"hetsim/internal/isa"
	"hetsim/internal/mem"
	"hetsim/internal/obs"
	"hetsim/internal/trace"
)

// Config selects the cluster's shape.
type Config struct {
	Cores     int
	Target    isa.Target
	TCDMSize  uint32
	TCDMBanks int
	L2Size    uint32

	// ICacheSize 0 selects a perfect (always-hit) fetch path, used for the
	// MCU model (zero-wait-state flash with prefetch).
	ICacheSize uint32
	ICacheLine uint32

	// L2Latency is the extra cycles of a core's direct load/store to L2
	// over the peripheral interconnect.
	L2Latency int

	// ReferenceRun selects the naive cycle-by-cycle run loop (full core
	// rescan after every Step, no idle fast-forward) instead of the
	// event-driven one. Both must produce bit-identical cycle counts,
	// EOC values and stats; the differential cycle-accuracy test steps
	// them against each other over the whole kernel suite.
	ReferenceRun bool

	// NoBlocks disables fused basic-block execution (DESIGN.md §12) while
	// keeping the event-driven run loop: every instruction takes the
	// stepped path. The block differential tests use it as the middle rung
	// between block mode and ReferenceRun; results are bit-identical
	// across all three.
	NoBlocks bool

	// NoSuperblocks disables the superblock tier (DESIGN.md §13) while
	// keeping basic-block fusion: multi-core fused runs end at every
	// control transfer instead of chaining through hot edges, and solo
	// windows still engage. The superblock differentials and benches use
	// it as the rung between plain block mode and chained execution;
	// results are bit-identical across all four modes.
	NoSuperblocks bool

	// Observe attaches per-core cycle attribution (internal/obs) to the
	// cluster built by RunJob. Attribution is purely observational: cycle
	// counts, stats and outputs are bit-identical either way (enforced by
	// the observability differential test).
	Observe bool
}

// PULPConfig returns the PULP3 cluster of the paper: 4 OR10N cores, 8-bank
// 64 kB TCDM, 4 kB shared I$, 64 kB L2.
func PULPConfig() Config {
	return Config{
		Cores:      4,
		Target:     isa.PULPFull,
		TCDMSize:   hw.DefaultTCDMSize,
		TCDMBanks:  hw.DefaultTCDMBanks,
		L2Size:     hw.DefaultL2Size,
		ICacheSize: 4 * 1024,
		ICacheLine: 32,
		L2Latency:  8,
	}
}

// MCUConfig returns a single-core host model: one M-profile (or plain)
// core, flat single-bank memory, perfect fetch, no L2 penalty (the MCU's
// SRAM is single-cycle and code runs from zero-wait flash).
func MCUConfig(target isa.Target) Config {
	return Config{
		Cores:     1,
		Target:    target,
		TCDMSize:  hw.DefaultTCDMSize,
		TCDMBanks: 1,
		L2Size:    hw.DefaultL2Size,
		L2Latency: 0,
	}
}

// Cluster is the simulated compute cluster.
type Cluster struct {
	Cfg   Config
	Cores []*cpu.Core
	TCDM  *mem.TCDM
	L2    *mem.SRAM
	IC    *mem.ICache
	DMA   *dma.Engine
	Evt   *hwsync.EventUnit

	now      uint64
	rrOffset int
	// order[r] is Cores rotated left by r: the per-cycle service order for
	// rrOffset r, precomputed so the hot loop is a plain slice range with
	// no index arithmetic.
	order [][]*cpu.Core

	// Per-cycle aggregates maintained by Step for the event-driven run
	// loop: stepStatus folds every termination condition into one byte
	// (0 = keep running) so the run loop's per-cycle check is a single
	// load and branch, and nextEvent is the earliest future cycle at
	// which any core or the DMA can make progress (cpu.NextEventNever
	// when all need an external event). The core-state counts they are
	// derived from can only over-count sleepers for a core woken later
	// in the same cycle — and then the waker itself was counted active,
	// so no termination condition or fast-forward can mis-fire.
	stepStatus uint8
	nextEvent  uint64

	// soloCore is the core currently flagged cpu.Core.Solo: the only
	// possible actor until soloEnd (every sibling halted, asleep or
	// mid-stall, DMA idle), allowed to fuse basic-block runs across
	// memory accesses and branches up to the window end. Recomputed from
	// post-rotation state at the end of every Step; soloEnd is
	// cpu.NextEventNever for the unbounded case (no sibling can ever act
	// without an external wake).
	soloCore *cpu.Core
	soloEnd  uint64

	eoc      bool
	eocValue uint32

	// SuppressEOC models a stuck end-of-computation wire (fault
	// injection, see internal/fault): the program's EOC store is accepted
	// but the latch never raises, so the host-visible signal is lost and
	// the run ends in deadlock or halt instead. The offload runtime sets
	// it per attempt.
	SuppressEOC bool

	tracer *trace.Tracer

	// faultsOn records that a fault injector is attached: fused block
	// execution is disabled so every SEU/parity injection point sits on
	// the stepped path at its exact cycle.
	faultsOn bool

	// obs is the attached observability bundle (nil = detached); sleepMark
	// tracks each core's open sleep interval and current run span for the
	// sleep/wake trace events and timeline spans.
	obs       *obs.Observer
	sleepMark []sleepMark

	err error
}

// sleepMark is the per-core sleep/run bookkeeping behind the SleepHook.
type sleepMark struct {
	start    uint64 // cycle the open sleep interval began
	lastWake uint64 // cycle the current run span began
	sleep0   uint64 // core's Stats.Sleep at the sleep transition
	kind     cpu.SleepKind
	open     bool
}

// New builds a cluster from the config.
func New(cfg Config) *Cluster {
	if cfg.Cores <= 0 || cfg.Cores > 32 {
		panic(fmt.Sprintf("cluster: invalid core count %d", cfg.Cores))
	}
	cl := &Cluster{
		Cfg:  cfg,
		TCDM: mem.NewTCDM(cfg.TCDMSize, cfg.TCDMBanks),
		L2:   mem.NewSRAM(hw.L2Base, cfg.L2Size),
		Evt:  hwsync.New(cfg.Cores),
	}
	if cfg.ICacheSize > 0 {
		line := cfg.ICacheLine
		if line == 0 {
			line = 32
		}
		cl.IC = mem.NewICache(cfg.ICacheSize, line)
	}
	cl.DMA = dma.New((*dmaMem)(cl))
	// The DMA engine and event unit stamp timeline spans with the cluster
	// cycle; hand them the clock up front (reads are gated on a non-nil
	// span recorder, so this costs nothing until AttachObs).
	cl.DMA.Now = &cl.now
	cl.Evt.Now = &cl.now
	cl.sleepMark = make([]sleepMark, cfg.Cores)
	for i := 0; i < cfg.Cores; i++ {
		c := cpu.New(i, cfg.Target, cl)
		if cl.IC != nil {
			c.IC = cl.IC
			c.FetchLineMask = cl.IC.LineSize - 1
		}
		// Single-cycle L1 accesses bypass the Env dispatch; the core runs
		// the same arbitration + data access the Access method would.
		c.TCDM = cl.TCDM
		cl.Cores = append(cl.Cores, c)
	}
	cl.order = make([][]*cpu.Core, cfg.Cores)
	for r := 0; r < cfg.Cores; r++ {
		rot := make([]*cpu.Core, 0, cfg.Cores)
		rot = append(rot, cl.Cores[r:]...)
		cl.order[r] = append(rot, cl.Cores[:r]...)
	}
	return cl
}

// AttachFaults wires a seeded fault injector into the memory system: SEU
// bit-flips on TCDM and L2 word writes, I-cache parity errors on fetch
// hits, and in-flight DMA beat corruption. Attach before LoadProgram so
// the loader's own writes are as vulnerable as runtime stores; nil
// detaches. With no injector every check on the hot paths is a single
// nil compare, so clean runs are untouched.
func (cl *Cluster) AttachFaults(in *fault.Injector) {
	cl.TCDM.AttachFaults(in, fault.TCDMFlip)
	cl.L2.AttachFaults(in, fault.L2Flip)
	if cl.IC != nil {
		cl.IC.Inject = in
	}
	cl.DMA.Inject = in
	if in != nil {
		// Fault injection needs the stepped path: every TCDM/L2 word
		// write, fetch and DMA beat is an injection point that must land
		// at its exact cycle, and a fused run batches those.
		cl.faultsOn = true
		for _, c := range cl.Cores {
			c.SetBlocks(nil)
		}
	}
}

// Now returns the current cycle.
func (cl *Cluster) Now() uint64 { return cl.now }

// EOC reports whether the program signalled end-of-computation, and the
// value it wrote (by convention 1 = success).
func (cl *Cluster) EOC() (bool, uint32) { return cl.eoc, cl.eocValue }

// ClearEOC re-arms the end-of-computation latch (between iterations of a
// multi-offload run).
func (cl *Cluster) ClearEOC() { cl.eoc = false }

// LoadProgram installs the program: pre-decoded text for the cores, the
// data image at its load address in L2. When direct is true the data image
// is additionally pre-placed at its runtime (TCDM) address, modelling a
// host whose loader places data directly (MCU baseline); otherwise the
// device crt0 is responsible for the L2->TCDM copy via DMA.
func (cl *Cluster) LoadProgram(p *asm.Program, direct bool) error {
	return cl.LoadCompiled(p, direct, nil)
}

// LoadCompiled is LoadProgram taking an optional pre-compiled image (the
// kernels-package memo shares one Compiled — predecoded text plus block
// run table — across cores, clusters and sweep jobs). comp == nil compiles
// here. The block table is only installed when fused execution is sound
// for this cluster: event-driven loop, no fault injector, no tracer.
func (cl *Cluster) LoadCompiled(p *asm.Program, direct bool, comp *cpu.Compiled) error {
	textBytes, err := isa.EncodeProgram(p.Text)
	if err != nil {
		return err
	}
	if err := cl.L2.WriteBytes(p.TextBase, textBytes); err != nil {
		return fmt.Errorf("cluster: text does not fit L2: %w", err)
	}
	if len(p.Data) > 0 {
		if err := cl.L2.WriteBytes(p.DataLMA, p.Data); err != nil {
			return fmt.Errorf("cluster: data image does not fit L2: %w", err)
		}
		if direct {
			if err := cl.TCDM.WriteBytes(p.DataVMA, p.Data); err != nil {
				return fmt.Errorf("cluster: data image does not fit TCDM: %w", err)
			}
		}
	}
	// Predecode + block-compile once and share the immutable result across
	// all cores: they run the same target.
	if comp == nil {
		comp = cpu.Compile(p.Text, cl.Cfg.Target)
	}
	useBlocks := !cl.Cfg.ReferenceRun && !cl.Cfg.NoBlocks && !cl.faultsOn && cl.tracer == nil
	for _, c := range cl.Cores {
		c.SetPredecoded(comp.Code, p.TextBase)
		if useBlocks {
			c.SetBlocks(comp.Blocks)
		} else {
			c.SetBlocks(nil)
		}
		c.EnableSuper(useBlocks && !cl.Cfg.NoSuperblocks)
	}
	return nil
}

// Start resets all cores to the entry point and releases them. It is also
// the re-trigger path of the resilient offload runtime (a second
// fetch-enable edge after a failed attempt), so it soft-resets the event
// unit and the DMA engine: a wedged attempt must not leave stale latches,
// a half-full barrier or an in-flight transfer behind.
func (cl *Cluster) Start(entry uint32) {
	cl.eoc = false
	cl.err = nil
	cl.Evt.Reset()
	cl.DMA.Reset()
	cl.soloCore = nil
	cl.soloEnd = cpu.NextEventNever
	for i, c := range cl.Cores {
		c.Solo = false
		c.Start(entry) // also resets the core's solo-window horizon
		// Stats survive Start (they accumulate across retry attempts), so
		// the sleep baseline must be re-snapshotted, not zeroed.
		cl.sleepMark[i] = sleepMark{lastWake: cl.now, start: cl.now, sleep0: c.Stats.Sleep}
	}
}

// Step advances the whole cluster by one cycle. Core service order rotates
// so bank arbitration is fair; the DMA has the lowest priority, stepping
// after all cores. While stepping, it aggregates each core's state and
// next-event hint so the run loop's termination checks are O(1) and idle
// windows can be fast-forwarded.
func (cl *Cluster) Step() {
	cl.TCDM.BeginCycle()
	n := len(cl.Cores)
	now := cl.now
	halted, sleeping := 0, 0
	anyErr := false
	next := uint64(cpu.NextEventNever)
	for _, c := range cl.order[cl.rrOffset] {
		h := c.Step(now)
		if h < next {
			next = h
		}
		// NextEventNever is returned exactly by halted or sleeping cores,
		// so the (rare) aggregate bookkeeping hides behind one compare on
		// a value already in hand.
		if h == cpu.NextEventNever {
			if c.Halted {
				halted++
				if c.Err != nil {
					anyErr = true
				}
			} else {
				sleeping++
			}
		}
	}
	dmaBusy := false
	if cl.DMA.Busy() {
		cl.DMA.Step()
		if cl.DMA.Err != nil && cl.err == nil {
			cl.err = cl.DMA.Err
		}
		dmaBusy = cl.DMA.Busy()
		if dmaBusy && now+1 < next {
			// An in-flight transfer moves a beat every cycle; no window
			// to skip.
			next = now + 1
		}
	}
	// Solo detection for fused basic-block runs (DESIGN.md §12–13): find
	// the unique earliest actor among the cores from their post-rotation
	// state. NextUp reads each core's *current* halt/sleep/stall state,
	// so a core woken later in the same cycle reports its true
	// wake-up-stall end rather than its stale step hint. With the DMA
	// idle, the earliest sibling cycle bounds a window in which the
	// candidate is the only possible agent: halted and sleeping cores
	// cannot act on their own, stalled cores do nothing until their
	// stall ends, and the solo core itself can only wake a sibling or
	// start the DMA via an env access, which always ends a fused run
	// first. Unbounded windows (every sibling needs an external wake)
	// always engage — the PR 7 condition — while finite ones belong to
	// the superblock tier (NoSuperblocks keeps the first-tier behavior)
	// and only engage when wide enough to beat chained multi-core
	// dispatch.
	var solo *cpu.Core
	soloEnd := uint64(cpu.NextEventNever)
	if !dmaBusy {
		var best *cpu.Core
		min1, min2 := uint64(cpu.NextEventNever), uint64(cpu.NextEventNever)
		for _, c := range cl.Cores {
			nu := c.NextUp(now + 1)
			if nu < min1 {
				min1, min2, best = nu, min1, c
			} else if nu < min2 {
				min2 = nu
			}
		}
		if best != nil && min1 < min2 &&
			(min2 == cpu.NextEventNever ||
				(!cl.Cfg.NoSuperblocks && min2-min1 >= soloWindowMin)) {
			solo, soloEnd = best, min2
		}
	}
	if solo != cl.soloCore || soloEnd != cl.soloEnd {
		if cl.soloCore != nil && cl.soloCore != solo {
			cl.soloCore.Solo = false
			cl.soloCore.SetSoloWindow(cpu.NextEventNever)
		}
		if solo != nil {
			solo.Solo = true
			solo.SetSoloWindow(soloEnd)
		}
		cl.soloCore, cl.soloEnd = solo, soloEnd
	}
	// Fold the termination conditions into the status byte while the
	// counts are still in registers. Bits may combine; the run loop's
	// finish decodes them in the reference loop's priority order.
	var status uint8
	if halted > 0 && halted+sleeping == n {
		// All halted, or mixed halt/sleep (the master trapped while
		// slaves sleep).
		status |= stepTrapHalt
	}
	if sleeping == n && !dmaBusy {
		status |= stepDeadlock
	}
	if anyErr {
		status |= stepCoreErr
	}
	if cl.eoc {
		status |= stepEOC
	}
	if cl.err != nil {
		status |= stepClusterErr
	}
	cl.stepStatus, cl.nextEvent = status, next
	cl.rrOffset++
	if cl.rrOffset == n {
		cl.rrOffset = 0
	}
	cl.now = now + 1
}

// soloWindowMin is the minimum width of a *finite* solo window worth
// engaging: narrower windows would churn the solo flag every cycle for a
// handful of fused issues that chained multi-core dispatch covers just
// as well. Purely a scheduling heuristic — simulated results are
// bit-identical at any value.
const soloWindowMin = 8

// stepStatus bits, in no particular order (finish imposes priority).
const (
	stepClusterErr uint8 = 1 << iota // cl.err set (DMA or interconnect)
	stepEOC                          // end-of-computation latch raised
	stepCoreErr                      // some core halted with an error
	stepTrapHalt                     // halted>0 and every core halted or asleep
	stepDeadlock                     // every core asleep, DMA idle
)

// ErrDeadlock is returned when every core sleeps with no wake source left.
var ErrDeadlock = errors.New("cluster: deadlock - all cores asleep, DMA idle, no EOC")

// RunResult summarizes a Run.
type RunResult struct {
	Cycles   uint64
	EOC      bool
	EOCValue uint32
	// Halted is true when all cores halted (TRAP) instead of signalling EOC.
	Halted   bool
	TrapCode int32
}

// Run steps the cluster until the program signals EOC, every core halts, a
// core faults, or maxCycles elapse. It returns the cycles consumed by this
// call.
//
// The loop is event-driven: per-cycle termination checks use the O(1)
// state aggregates Step maintains (instead of rescanning every core), and
// windows in which no core can act — all asleep at a barrier, or all
// stalled on multi-cycle ops, wake-up latency or refills — are
// fast-forwarded in one jump with the per-core Sleep/Stall counters
// credited in bulk. Cycle counts, stats and termination results are
// bit-identical to the naive loop (Config.ReferenceRun); the differential
// cycle-accuracy test enforces this over the whole kernel suite.
func (cl *Cluster) Run(maxCycles uint64) (RunResult, error) {
	res, err := cl.runLoop(maxCycles)
	// Fused-run windows need no unwinding here: multi-core runs defer
	// their charges to a per-cycle plan that simply stops with the run
	// loop, and solo runs — which batch-charge up front — can only be cut
	// short by the cycle budget, which they clamp against (the horizon).
	// Close open sleep intervals and run spans on every exit path, so
	// trace-derived sleep cycles always reconcile with CollectStats even
	// when the run ends inside a fast-forwarded idle window.
	cl.flushObs()
	return res, err
}

// runLoop dispatches to the event-driven or reference loop; Run wraps it
// so observability flushing happens exactly once per run on either.
func (cl *Cluster) runLoop(maxCycles uint64) (RunResult, error) {
	if cl.Cfg.ReferenceRun {
		return cl.runReference(maxCycles)
	}
	start := cl.now
	// Fused runs must not issue instructions past this call's cycle
	// budget: cap them at the same bound the loop condition enforces.
	horizon := start + maxCycles
	if horizon < start {
		horizon = cpu.NextEventNever
	}
	for _, c := range cl.Cores {
		c.SetRunHorizon(horizon)
	}
	n := len(cl.Cores)
	for cl.now-start < maxCycles {
		cl.Step()
		if cl.stepStatus != 0 {
			return cl.finish(start)
		}
		if cl.nextEvent > cl.now {
			// No core can act before cl.nextEvent and the DMA is idle:
			// skip the window, crediting each core's idle counters as
			// cycle-by-cycle stepping would have.
			skip := cl.nextEvent - cl.now
			if limit := maxCycles - (cl.now - start); skip > limit {
				skip = limit
			}
			for _, c := range cl.Cores {
				c.CreditIdle(skip)
			}
			cl.rrOffset = int((uint64(cl.rrOffset) + skip) % uint64(n))
			cl.now += skip
		}
	}
	return RunResult{Cycles: cl.now - start}, fmt.Errorf("cluster: exceeded %d cycles", maxCycles)
}

// finish translates a non-zero stepStatus into the run's result, decoding
// combined bits in the priority order of the reference loop: cluster error,
// EOC, core error, halt/trap, deadlock. It runs once per Run termination.
func (cl *Cluster) finish(start uint64) (RunResult, error) {
	cycles := cl.now - start
	st := cl.stepStatus
	switch {
	case st&stepClusterErr != 0:
		return RunResult{Cycles: cycles}, cl.err
	case st&stepEOC != 0:
		return RunResult{Cycles: cycles, EOC: true, EOCValue: cl.eocValue}, nil
	case st&stepCoreErr != 0:
		_, firstErr := cl.scanCores()
		return RunResult{Cycles: cycles}, firstErr
	case st&stepTrapHalt != 0:
		trap, _ := cl.scanCores()
		return RunResult{Cycles: cycles, Halted: true, TrapCode: trap}, nil
	default:
		return RunResult{Cycles: cycles}, ErrDeadlock
	}
}

// scanCores picks the first trap code and first error in core-index order,
// replicating the reference loop's selection exactly. It runs once per Run
// termination, not per cycle.
func (cl *Cluster) scanCores() (trap int32, firstErr error) {
	for _, c := range cl.Cores {
		if c.Err != nil && firstErr == nil {
			firstErr = c.Err
		}
		if c.Halted && c.TrapCode != 0 && trap == 0 {
			trap = c.TrapCode
		}
	}
	return trap, firstErr
}

// runReference is the naive run loop kept as the differential baseline: it
// rescans every core after every cycle and never fast-forwards. It is
// selected by Config.ReferenceRun.
func (cl *Cluster) runReference(maxCycles uint64) (RunResult, error) {
	start := cl.now
	for cl.now-start < maxCycles {
		cl.Step()
		if cl.err != nil {
			return RunResult{Cycles: cl.now - start}, cl.err
		}
		if cl.eoc {
			return RunResult{Cycles: cl.now - start, EOC: true, EOCValue: cl.eocValue}, nil
		}
		halted, sleeping := 0, 0
		var firstErr error
		var trap int32
		for _, c := range cl.Cores {
			if c.Err != nil && firstErr == nil {
				firstErr = c.Err
			}
			if c.Halted {
				halted++
				if c.TrapCode != 0 && trap == 0 {
					trap = c.TrapCode
				}
			} else if c.Sleeping() {
				sleeping++
			}
		}
		if firstErr != nil {
			return RunResult{Cycles: cl.now - start}, firstErr
		}
		if halted == len(cl.Cores) {
			return RunResult{Cycles: cl.now - start, Halted: true, TrapCode: trap}, nil
		}
		if halted+sleeping == len(cl.Cores) && sleeping > 0 && halted > 0 {
			// Mixed halt/sleep: the master trapped while slaves sleep.
			return RunResult{Cycles: cl.now - start, Halted: true, TrapCode: trap}, nil
		}
		if sleeping == len(cl.Cores) && !cl.DMA.Busy() {
			return RunResult{Cycles: cl.now - start}, ErrDeadlock
		}
	}
	return RunResult{Cycles: cl.now - start}, fmt.Errorf("cluster: exceeded %d cycles", maxCycles)
}

// AttachTracer routes every core's retirement stream, sleep/wake
// transitions and the cluster-level events into the tracer. Attach before
// Start; pass nil to detach.
func (cl *Cluster) AttachTracer(tr *trace.Tracer) {
	cl.tracer = tr
	for _, c := range cl.Cores {
		if tr != nil {
			// Per-instruction tracing forces the stepped path: a fused
			// run pre-executes instructions whose retire events could be
			// cut short by another core's termination, and trace events
			// cannot be unemitted.
			c.SetBlocks(nil)
		}
		if tr == nil {
			c.Trace = nil
			continue
		}
		id := c.ID
		c.Trace = func(cycle uint64, pc uint32, in isa.Inst) {
			tr.Emit(trace.Event{Cycle: cycle, Core: id, Kind: trace.KindRetire, PC: pc, Inst: in})
		}
	}
	cl.wireSleepHooks()
}

// AttachObs attaches the observability layer (DESIGN.md §10): per-core
// cycle attribution into o.Attr (allocated if nil) and, when o.TL is set,
// cycle-domain timeline spans from the cores, DMA engine, event unit and
// I$ refill engine. Attach before Start; pass nil to detach. Attaching
// never changes simulated timing — only counters and spans are recorded.
func (cl *Cluster) AttachObs(o *obs.Observer) {
	cl.obs = o
	var tl *obs.ClusterTL
	if o != nil {
		if o.Attr == nil {
			o.Attr = obs.NewAttribution(len(cl.Cores))
		}
		o.Attr.Ensure(len(cl.Cores))
		tl = o.TL
	}
	for i, c := range cl.Cores {
		if o == nil {
			c.Obs = nil
			continue
		}
		co := &o.Attr.Cores[i]
		co.TL = tl
		co.Tid = obs.TidCore0 + i
		c.Obs = co
	}
	cl.DMA.TL = tl
	cl.Evt.TL = tl
	if cl.IC != nil {
		cl.IC.TL = tl
	}
	cl.wireSleepHooks()
}

// obsTL returns the attached cycle-domain span recorder, or nil.
func (cl *Cluster) obsTL() *obs.ClusterTL {
	if cl.obs == nil {
		return nil
	}
	return cl.obs.TL
}

// wireSleepHooks installs (or removes) the per-core sleep-transition
// hooks. They are needed whenever a tracer wants sleep/wake events or a
// timeline wants run/sleep spans; transitions are rare, so the closures
// stay off the per-cycle path.
func (cl *Cluster) wireSleepHooks() {
	need := cl.tracer != nil || cl.obsTL() != nil
	for _, c := range cl.Cores {
		if !need {
			c.SleepHook = nil
			continue
		}
		c := c
		c.SleepHook = func(now uint64, kind cpu.SleepKind, sleeping bool) {
			cl.sleepWake(c, now, kind, sleeping)
		}
	}
}

func sleepKindName(k cpu.SleepKind) string {
	if k == cpu.SleepBarrier {
		return "barrier"
	}
	return "event"
}

// sleepWake handles one core sleep transition: trace events carry the
// credited sleep cycles on wake ("slept=N"), and the timeline gets the
// core's run span closed on sleep and its sleep span closed on wake.
func (cl *Cluster) sleepWake(c *cpu.Core, now uint64, kind cpu.SleepKind, sleeping bool) {
	mk := &cl.sleepMark[c.ID]
	tl := cl.obsTL()
	if sleeping {
		mk.start, mk.sleep0, mk.kind, mk.open = now, c.Stats.Sleep, kind, true
		if cl.tracer != nil {
			cl.tracer.Emit(trace.Event{Cycle: now, Core: c.ID, Kind: trace.KindSleep,
				Note: sleepKindName(kind)})
		}
		if tl != nil && mk.lastWake < now {
			tl.Span(obs.TidCore0+c.ID, "run", "run", mk.lastWake, now, nil)
		}
		return
	}
	slept := c.Stats.Sleep - mk.sleep0
	if cl.tracer != nil {
		cl.tracer.Emit(trace.Event{Cycle: now, Core: c.ID, Kind: trace.KindWake,
			Note: fmt.Sprintf("slept=%d (%s)", slept, sleepKindName(kind))})
	}
	if tl != nil && mk.open && mk.start < now {
		tl.Span(obs.TidCore0+c.ID, "sleep: "+sleepKindName(kind), "sleep", mk.start, now, nil)
	}
	mk.open = false
	mk.lastWake = now
}

// flushObs synthesizes the observability records a run's end would
// otherwise lose: cores still asleep get a wake event carrying the sleep
// cycles credited so far — including windows fast-forwarded by CreditIdle,
// which emit no per-cycle events — and open run/sleep spans are closed at
// the final cycle. Without this, trace-derived sleep totals disagree with
// CollectStats whenever a run ends while cores sleep (the normal case:
// slaves park in WFE before the master raises EOC).
func (cl *Cluster) flushObs() {
	if cl.tracer == nil && cl.obs == nil {
		return
	}
	tl := cl.obsTL()
	for i, c := range cl.Cores {
		mk := &cl.sleepMark[i]
		if mk.open {
			slept := c.Stats.Sleep - mk.sleep0
			if cl.tracer != nil {
				cl.tracer.Emit(trace.Event{Cycle: cl.now, Core: c.ID, Kind: trace.KindWake,
					Note: fmt.Sprintf("slept=%d (%s, end of run)", slept, sleepKindName(mk.kind))})
			}
			if tl != nil && mk.start < cl.now {
				tl.Span(obs.TidCore0+c.ID, "sleep: "+sleepKindName(mk.kind), "sleep", mk.start, cl.now, nil)
			}
			mk.open = false
			mk.sleep0 = c.Stats.Sleep
			mk.start = cl.now
		} else if tl != nil && !c.Halted && mk.lastWake < cl.now {
			tl.Span(obs.TidCore0+c.ID, "run", "run", mk.lastWake, cl.now, nil)
		}
		mk.lastWake = cl.now
	}
}

// --- cpu.Env -------------------------------------------------------------

var _ cpu.Env = (*Cluster)(nil)

// Access implements the cluster interconnect: TCDM with bank arbitration,
// event-unit and DMA register pages, SoC control, and L2 with latency.
func (cl *Cluster) Access(core int, store bool, addr, size, wdata uint32) (uint32, int, cpu.Status, error) {
	switch {
	case cl.TCDM.Contains(addr, size):
		if !cl.TCDM.Request(addr) {
			return 0, 0, cpu.AccessRetry, nil
		}
		if store {
			cl.TCDM.Write(addr, size, wdata)
			return 0, 0, cpu.AccessOK, nil
		}
		return cl.TCDM.Read(addr, size), 0, cpu.AccessOK, nil

	case addr >= hw.EvtBase && addr < hw.EvtBase+0x100:
		return cl.evtAccess(core, store, addr-hw.EvtBase, wdata)

	case addr >= hw.DMABase && addr < hw.DMABase+0x100:
		if store {
			if err := cl.DMA.WriteReg(addr-hw.DMABase, wdata); err != nil {
				return 0, 0, cpu.AccessOK, err
			}
			return 0, 0, cpu.AccessOK, nil
		}
		v, err := cl.DMA.ReadReg(addr - hw.DMABase)
		if addr-hw.DMABase == hw.DMAStatus && cl.DMA.Busy() {
			// A status poll that observed a busy engine is the dma_wait spin
			// loop: attribute the issuing cycle to DMAWait, not Issue.
			if o := cl.Cores[core].Obs; o != nil {
				o.MarkDMAPoll()
			}
		}
		return v, 0, cpu.AccessOK, err

	case addr >= hw.SoCCtlBase && addr < hw.SoCCtlBase+0x100:
		off := addr - hw.SoCCtlBase
		if store && off == hw.SoCEOC {
			if cl.SuppressEOC {
				if cl.tracer != nil {
					cl.tracer.Emit(trace.Event{Cycle: cl.now, Kind: trace.KindNote,
						Note: fmt.Sprintf("EOC store by core %d suppressed (stuck wire, fault injection)", core)})
				}
				return 0, 0, cpu.AccessOK, nil
			}
			cl.eoc = true
			cl.eocValue = wdata
			if cl.tracer != nil {
				cl.tracer.Emit(trace.Event{Cycle: cl.now, Kind: trace.KindNote,
					Note: fmt.Sprintf("EOC raised by core %d (value %d)", core, wdata)})
			}
			return 0, 0, cpu.AccessOK, nil
		}
		if !store && off == hw.SoCStatus {
			return 1, 0, cpu.AccessOK, nil
		}
		return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: unsupported SoC ctl access at +%#x", off)

	case cl.L2.Contains(addr, size):
		if store {
			cl.L2.Write(addr, size, wdata)
			return 0, cl.Cfg.L2Latency, cpu.AccessOK, nil
		}
		return cl.L2.Read(addr, size), cl.Cfg.L2Latency, cpu.AccessOK, nil
	}
	return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: access to unmapped address %#x", addr)
}

func (cl *Cluster) evtAccess(core int, store bool, off, wdata uint32) (uint32, int, cpu.Status, error) {
	switch off {
	case hw.EvtBarrierArrive:
		if !store {
			return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: read of barrier register")
		}
		wake, last := cl.Evt.Arrive(core, int(wdata))
		if last {
			cl.wake(wake)
			return 0, 0, cpu.AccessOK, nil
		}
		return 0, 0, cpu.AccessSleepBarrier, nil
	case hw.EvtSend:
		if !store {
			return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: read of event send register")
		}
		cl.wake(cl.Evt.Send(wdata))
		return 0, 0, cpu.AccessOK, nil
	case hw.EvtStatus:
		return cl.Evt.SleepMask(), 0, cpu.AccessOK, nil
	case hw.EvtMutexLock:
		if store {
			return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: store to mutex lock register")
		}
		if cl.Evt.TryLock(core) {
			return 1, 0, cpu.AccessOK, nil
		}
		// A contended mutex spins like a bank conflict but is synchronization
		// time, not memory pressure: retry under the Sync attribution class.
		return 0, 0, cpu.AccessRetrySync, nil
	case hw.EvtMutexUnlock:
		cl.Evt.Unlock()
		return 0, 0, cpu.AccessOK, nil
	}
	return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: unknown event-unit register +%#x", off)
}

// wake wakes every core in the bitmask at the current cycle.
func (cl *Cluster) wake(mask uint32) {
	for mask != 0 {
		w := bits.TrailingZeros32(mask)
		mask &= mask - 1
		cl.Cores[w].Wake(cl.now)
	}
}

// WFE implements cpu.Env.
func (cl *Cluster) WFE(core int) bool { return cl.Evt.WFE(core) }

// SPR implements cpu.Env.
func (cl *Cluster) SPR(core int, spr int32) uint32 {
	switch spr {
	case isa.SprCoreID:
		return uint32(core)
	case isa.SprNumCore:
		return uint32(len(cl.Cores))
	case isa.SprCycleLo:
		return uint32(cl.now)
	case isa.SprCycleHi:
		return uint32(cl.now >> 32)
	}
	return 0
}

// --- dma.Memory ------------------------------------------------------------

// dmaMem adapts the cluster for the DMA engine.
type dmaMem Cluster

var _ dma.Memory = (*dmaMem)(nil)

func (m *dmaMem) ClaimTCDM(addr uint32) bool { return (*Cluster)(m).TCDM.Request(addr) }
func (m *dmaMem) IsTCDM(addr uint32) bool    { return (*Cluster)(m).TCDM.Contains(addr, 4) }

func (m *dmaMem) ReadWord(addr uint32) (uint32, error) {
	cl := (*Cluster)(m)
	switch {
	case cl.TCDM.Contains(addr, 4):
		return cl.TCDM.Read(addr, 4), nil
	case cl.L2.Contains(addr, 4):
		return cl.L2.Read(addr, 4), nil
	}
	return 0, fmt.Errorf("unmapped DMA read at %#x", addr)
}

func (m *dmaMem) WriteWord(addr uint32, v uint32) error {
	cl := (*Cluster)(m)
	switch {
	case cl.TCDM.Contains(addr, 4):
		cl.TCDM.Write(addr, 4, v)
		return nil
	case cl.L2.Contains(addr, 4):
		cl.L2.Write(addr, 4, v)
		return nil
	}
	return fmt.Errorf("unmapped DMA write at %#x", addr)
}

// --- PMU ---------------------------------------------------------------------

// Stats aggregates the performance counters the power model consumes,
// plus the fault-injection ledger (all zero on clean runs).
type Stats struct {
	Cycles     uint64
	Cores      []cpu.Stats
	DMABusy    uint64
	TCDMAccess uint64
	TCDMConf   uint64
	ICHits     uint64
	ICMisses   uint64

	// Injected-fault accounting (see AttachFaults).
	ICParity     uint64 // detected I-cache parity errors (refilled)
	TCDMFlips    uint64 // SEU bit-flips landed in TCDM words
	L2Flips      uint64 // SEU bit-flips landed in L2 words
	DMACorrupted uint64 // DMA beats corrupted in flight
}

// Retired sums retired instructions over all cores.
func (s Stats) Retired() uint64 {
	var n uint64
	for _, c := range s.Cores {
		n += c.Retired
	}
	return n
}

// CollectStats snapshots the performance counters.
func (cl *Cluster) CollectStats() Stats {
	s := Stats{
		Cycles:     cl.now,
		DMABusy:    cl.DMA.BusyCycles,
		TCDMAccess: cl.TCDM.Accesses,
		TCDMConf:   cl.TCDM.Conflicts,
		Cores:      make([]cpu.Stats, 0, len(cl.Cores)),
	}
	s.TCDMFlips = cl.TCDM.Flips
	s.L2Flips = cl.L2.Flips
	s.DMACorrupted = cl.DMA.Corrupted
	if cl.IC != nil {
		s.ICHits = cl.IC.Hits
		s.ICMisses = cl.IC.Misses
		s.ICParity = cl.IC.ParityErrors
	}
	for _, c := range cl.Cores {
		s.Cores = append(s.Cores, c.Stats)
	}
	return s
}
