// Package cluster wires the simulated PULP cluster together: 1–4 cores
// (internal/cpu), the multi-banked TCDM and shared I-cache (internal/mem),
// the lightweight DMA (internal/dma) and the hardware synchronizer
// (internal/hwsync), stepped in lock-step one cycle at a time. It also
// stands in for the MCU when configured with a single M-profile core, a
// flat memory and a perfect fetch path.
//
// Per-component activity counters collected here are the chi ratios of the
// paper's power model (Section IV-A).
package cluster

import (
	"errors"
	"fmt"

	"hetsim/internal/asm"
	"hetsim/internal/cpu"
	"hetsim/internal/dma"
	"hetsim/internal/hw"
	"hetsim/internal/hwsync"
	"hetsim/internal/isa"
	"hetsim/internal/mem"
	"hetsim/internal/trace"
)

// Config selects the cluster's shape.
type Config struct {
	Cores     int
	Target    isa.Target
	TCDMSize  uint32
	TCDMBanks int
	L2Size    uint32

	// ICacheSize 0 selects a perfect (always-hit) fetch path, used for the
	// MCU model (zero-wait-state flash with prefetch).
	ICacheSize uint32
	ICacheLine uint32

	// L2Latency is the extra cycles of a core's direct load/store to L2
	// over the peripheral interconnect.
	L2Latency int
}

// PULPConfig returns the PULP3 cluster of the paper: 4 OR10N cores, 8-bank
// 64 kB TCDM, 4 kB shared I$, 64 kB L2.
func PULPConfig() Config {
	return Config{
		Cores:      4,
		Target:     isa.PULPFull,
		TCDMSize:   hw.DefaultTCDMSize,
		TCDMBanks:  hw.DefaultTCDMBanks,
		L2Size:     hw.DefaultL2Size,
		ICacheSize: 4 * 1024,
		ICacheLine: 32,
		L2Latency:  8,
	}
}

// MCUConfig returns a single-core host model: one M-profile (or plain)
// core, flat single-bank memory, perfect fetch, no L2 penalty (the MCU's
// SRAM is single-cycle and code runs from zero-wait flash).
func MCUConfig(target isa.Target) Config {
	return Config{
		Cores:     1,
		Target:    target,
		TCDMSize:  hw.DefaultTCDMSize,
		TCDMBanks: 1,
		L2Size:    hw.DefaultL2Size,
		L2Latency: 0,
	}
}

// Cluster is the simulated compute cluster.
type Cluster struct {
	Cfg   Config
	Cores []*cpu.Core
	TCDM  *mem.TCDM
	L2    *mem.SRAM
	IC    *mem.ICache
	DMA   *dma.Engine
	Evt   *hwsync.EventUnit

	now      uint64
	rrOffset int

	eoc      bool
	eocValue uint32

	// SuppressEOC models a stuck end-of-computation wire (fault
	// injection, see internal/fault): the program's EOC store is accepted
	// but the latch never raises, so the host-visible signal is lost and
	// the run ends in deadlock or halt instead. The offload runtime sets
	// it per attempt.
	SuppressEOC bool

	tracer *trace.Tracer

	err error
}

// New builds a cluster from the config.
func New(cfg Config) *Cluster {
	if cfg.Cores <= 0 || cfg.Cores > 32 {
		panic(fmt.Sprintf("cluster: invalid core count %d", cfg.Cores))
	}
	cl := &Cluster{
		Cfg:  cfg,
		TCDM: mem.NewTCDM(cfg.TCDMSize, cfg.TCDMBanks),
		L2:   mem.NewSRAM(hw.L2Base, cfg.L2Size),
		Evt:  hwsync.New(cfg.Cores),
	}
	if cfg.ICacheSize > 0 {
		line := cfg.ICacheLine
		if line == 0 {
			line = 32
		}
		cl.IC = mem.NewICache(cfg.ICacheSize, line)
	}
	cl.DMA = dma.New((*dmaMem)(cl))
	for i := 0; i < cfg.Cores; i++ {
		c := cpu.New(i, cfg.Target, cl)
		if cl.IC != nil {
			c.Fetch = cl.IC.Fetch
			c.FetchLineMask = cl.IC.LineSize - 1
		}
		cl.Cores = append(cl.Cores, c)
	}
	return cl
}

// Now returns the current cycle.
func (cl *Cluster) Now() uint64 { return cl.now }

// EOC reports whether the program signalled end-of-computation, and the
// value it wrote (by convention 1 = success).
func (cl *Cluster) EOC() (bool, uint32) { return cl.eoc, cl.eocValue }

// ClearEOC re-arms the end-of-computation latch (between iterations of a
// multi-offload run).
func (cl *Cluster) ClearEOC() { cl.eoc = false }

// LoadProgram installs the program: pre-decoded text for the cores, the
// data image at its load address in L2. When direct is true the data image
// is additionally pre-placed at its runtime (TCDM) address, modelling a
// host whose loader places data directly (MCU baseline); otherwise the
// device crt0 is responsible for the L2->TCDM copy via DMA.
func (cl *Cluster) LoadProgram(p *asm.Program, direct bool) error {
	textBytes, err := isa.EncodeProgram(p.Text)
	if err != nil {
		return err
	}
	if err := cl.L2.WriteBytes(p.TextBase, textBytes); err != nil {
		return fmt.Errorf("cluster: text does not fit L2: %w", err)
	}
	if len(p.Data) > 0 {
		if err := cl.L2.WriteBytes(p.DataLMA, p.Data); err != nil {
			return fmt.Errorf("cluster: data image does not fit L2: %w", err)
		}
		if direct {
			if err := cl.TCDM.WriteBytes(p.DataVMA, p.Data); err != nil {
				return fmt.Errorf("cluster: data image does not fit TCDM: %w", err)
			}
		}
	}
	for _, c := range cl.Cores {
		c.SetProgram(p.Text, p.TextBase)
	}
	return nil
}

// Start resets all cores to the entry point and releases them. It is also
// the re-trigger path of the resilient offload runtime (a second
// fetch-enable edge after a failed attempt), so it soft-resets the event
// unit and the DMA engine: a wedged attempt must not leave stale latches,
// a half-full barrier or an in-flight transfer behind.
func (cl *Cluster) Start(entry uint32) {
	cl.eoc = false
	cl.err = nil
	cl.Evt.Reset()
	cl.DMA.Reset()
	for _, c := range cl.Cores {
		c.Start(entry)
	}
}

// Step advances the whole cluster by one cycle. Core service order rotates
// so bank arbitration is fair; the DMA has the lowest priority, stepping
// after all cores.
func (cl *Cluster) Step() {
	cl.TCDM.BeginCycle()
	n := len(cl.Cores)
	for i := 0; i < n; i++ {
		cl.Cores[(i+cl.rrOffset)%n].Step(cl.now)
	}
	cl.DMA.Step()
	if cl.DMA.Err != nil && cl.err == nil {
		cl.err = cl.DMA.Err
	}
	cl.rrOffset = (cl.rrOffset + 1) % n
	cl.now++
}

// ErrDeadlock is returned when every core sleeps with no wake source left.
var ErrDeadlock = errors.New("cluster: deadlock - all cores asleep, DMA idle, no EOC")

// RunResult summarizes a Run.
type RunResult struct {
	Cycles   uint64
	EOC      bool
	EOCValue uint32
	// Halted is true when all cores halted (TRAP) instead of signalling EOC.
	Halted   bool
	TrapCode int32
}

// Run steps the cluster until the program signals EOC, every core halts, a
// core faults, or maxCycles elapse. It returns the cycles consumed by this
// call.
func (cl *Cluster) Run(maxCycles uint64) (RunResult, error) {
	start := cl.now
	for cl.now-start < maxCycles {
		cl.Step()
		if cl.err != nil {
			return RunResult{Cycles: cl.now - start}, cl.err
		}
		if cl.eoc {
			return RunResult{Cycles: cl.now - start, EOC: true, EOCValue: cl.eocValue}, nil
		}
		halted, sleeping := 0, 0
		var firstErr error
		var trap int32
		for _, c := range cl.Cores {
			if c.Err != nil && firstErr == nil {
				firstErr = c.Err
			}
			if c.Halted {
				halted++
				if c.TrapCode != 0 && trap == 0 {
					trap = c.TrapCode
				}
			} else if c.Sleeping() {
				sleeping++
			}
		}
		if firstErr != nil {
			return RunResult{Cycles: cl.now - start}, firstErr
		}
		if halted == len(cl.Cores) {
			return RunResult{Cycles: cl.now - start, Halted: true, TrapCode: trap}, nil
		}
		if halted+sleeping == len(cl.Cores) && sleeping > 0 && halted > 0 {
			// Mixed halt/sleep: the master trapped while slaves sleep.
			return RunResult{Cycles: cl.now - start, Halted: true, TrapCode: trap}, nil
		}
		if sleeping == len(cl.Cores) && !cl.DMA.Busy() {
			return RunResult{Cycles: cl.now - start}, ErrDeadlock
		}
	}
	return RunResult{Cycles: cl.now - start}, fmt.Errorf("cluster: exceeded %d cycles", maxCycles)
}

// AttachTracer routes every core's retirement stream and the cluster-level
// events into the tracer. Attach before Start; pass nil to detach.
func (cl *Cluster) AttachTracer(tr *trace.Tracer) {
	cl.tracer = tr
	for _, c := range cl.Cores {
		if tr == nil {
			c.Trace = nil
			continue
		}
		id := c.ID
		c.Trace = func(cycle uint64, pc uint32, in isa.Inst) {
			tr.Emit(trace.Event{Cycle: cycle, Core: id, Kind: trace.KindRetire, PC: pc, Inst: in})
		}
	}
}

// --- cpu.Env -------------------------------------------------------------

var _ cpu.Env = (*Cluster)(nil)

// Access implements the cluster interconnect: TCDM with bank arbitration,
// event-unit and DMA register pages, SoC control, and L2 with latency.
func (cl *Cluster) Access(core int, store bool, addr, size, wdata uint32) (uint32, int, cpu.Status, error) {
	switch {
	case cl.TCDM.Contains(addr, size):
		if !cl.TCDM.Request(addr) {
			return 0, 0, cpu.AccessRetry, nil
		}
		if store {
			cl.TCDM.Write(addr, size, wdata)
			return 0, 0, cpu.AccessOK, nil
		}
		return cl.TCDM.Read(addr, size), 0, cpu.AccessOK, nil

	case addr >= hw.EvtBase && addr < hw.EvtBase+0x100:
		return cl.evtAccess(core, store, addr-hw.EvtBase, wdata)

	case addr >= hw.DMABase && addr < hw.DMABase+0x100:
		if store {
			if err := cl.DMA.WriteReg(addr-hw.DMABase, wdata); err != nil {
				return 0, 0, cpu.AccessOK, err
			}
			return 0, 0, cpu.AccessOK, nil
		}
		v, err := cl.DMA.ReadReg(addr - hw.DMABase)
		return v, 0, cpu.AccessOK, err

	case addr >= hw.SoCCtlBase && addr < hw.SoCCtlBase+0x100:
		off := addr - hw.SoCCtlBase
		if store && off == hw.SoCEOC {
			if cl.SuppressEOC {
				if cl.tracer != nil {
					cl.tracer.Emit(trace.Event{Cycle: cl.now, Kind: trace.KindNote,
						Note: fmt.Sprintf("EOC store by core %d suppressed (stuck wire, fault injection)", core)})
				}
				return 0, 0, cpu.AccessOK, nil
			}
			cl.eoc = true
			cl.eocValue = wdata
			if cl.tracer != nil {
				cl.tracer.Emit(trace.Event{Cycle: cl.now, Kind: trace.KindNote,
					Note: fmt.Sprintf("EOC raised by core %d (value %d)", core, wdata)})
			}
			return 0, 0, cpu.AccessOK, nil
		}
		if !store && off == hw.SoCStatus {
			return 1, 0, cpu.AccessOK, nil
		}
		return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: unsupported SoC ctl access at +%#x", off)

	case cl.L2.Contains(addr, size):
		if store {
			cl.L2.Write(addr, size, wdata)
			return 0, cl.Cfg.L2Latency, cpu.AccessOK, nil
		}
		return cl.L2.Read(addr, size), cl.Cfg.L2Latency, cpu.AccessOK, nil
	}
	return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: access to unmapped address %#x", addr)
}

func (cl *Cluster) evtAccess(core int, store bool, off, wdata uint32) (uint32, int, cpu.Status, error) {
	switch off {
	case hw.EvtBarrierArrive:
		if !store {
			return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: read of barrier register")
		}
		wake, last := cl.Evt.Arrive(core, int(wdata))
		if last {
			for _, w := range wake {
				cl.Cores[w].Wake(cl.now)
			}
			return 0, 0, cpu.AccessOK, nil
		}
		return 0, 0, cpu.AccessSleepBarrier, nil
	case hw.EvtSend:
		if !store {
			return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: read of event send register")
		}
		for _, w := range cl.Evt.Send(wdata) {
			cl.Cores[w].Wake(cl.now)
		}
		return 0, 0, cpu.AccessOK, nil
	case hw.EvtStatus:
		return cl.Evt.SleepMask(), 0, cpu.AccessOK, nil
	case hw.EvtMutexLock:
		if store {
			return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: store to mutex lock register")
		}
		if cl.Evt.TryLock(core) {
			return 1, 0, cpu.AccessOK, nil
		}
		return 0, 0, cpu.AccessRetry, nil
	case hw.EvtMutexUnlock:
		cl.Evt.Unlock()
		return 0, 0, cpu.AccessOK, nil
	}
	return 0, 0, cpu.AccessOK, fmt.Errorf("cluster: unknown event-unit register +%#x", off)
}

// WFE implements cpu.Env.
func (cl *Cluster) WFE(core int) bool { return cl.Evt.WFE(core) }

// SPR implements cpu.Env.
func (cl *Cluster) SPR(core int, spr int32) uint32 {
	switch spr {
	case isa.SprCoreID:
		return uint32(core)
	case isa.SprNumCore:
		return uint32(len(cl.Cores))
	case isa.SprCycleLo:
		return uint32(cl.now)
	case isa.SprCycleHi:
		return uint32(cl.now >> 32)
	}
	return 0
}

// --- dma.Memory ------------------------------------------------------------

// dmaMem adapts the cluster for the DMA engine.
type dmaMem Cluster

var _ dma.Memory = (*dmaMem)(nil)

func (m *dmaMem) ClaimTCDM(addr uint32) bool { return (*Cluster)(m).TCDM.Request(addr) }
func (m *dmaMem) IsTCDM(addr uint32) bool    { return (*Cluster)(m).TCDM.Contains(addr, 4) }

func (m *dmaMem) ReadWord(addr uint32) (uint32, error) {
	cl := (*Cluster)(m)
	switch {
	case cl.TCDM.Contains(addr, 4):
		return cl.TCDM.Read(addr, 4), nil
	case cl.L2.Contains(addr, 4):
		return cl.L2.Read(addr, 4), nil
	}
	return 0, fmt.Errorf("unmapped DMA read at %#x", addr)
}

func (m *dmaMem) WriteWord(addr uint32, v uint32) error {
	cl := (*Cluster)(m)
	switch {
	case cl.TCDM.Contains(addr, 4):
		cl.TCDM.Write(addr, 4, v)
		return nil
	case cl.L2.Contains(addr, 4):
		cl.L2.Write(addr, 4, v)
		return nil
	}
	return fmt.Errorf("unmapped DMA write at %#x", addr)
}

// --- PMU ---------------------------------------------------------------------

// Stats aggregates the performance counters the power model consumes.
type Stats struct {
	Cycles     uint64
	Cores      []cpu.Stats
	DMABusy    uint64
	TCDMAccess uint64
	TCDMConf   uint64
	ICHits     uint64
	ICMisses   uint64
}

// Retired sums retired instructions over all cores.
func (s Stats) Retired() uint64 {
	var n uint64
	for _, c := range s.Cores {
		n += c.Retired
	}
	return n
}

// CollectStats snapshots the performance counters.
func (cl *Cluster) CollectStats() Stats {
	s := Stats{
		Cycles:     cl.now,
		DMABusy:    cl.DMA.BusyCycles,
		TCDMAccess: cl.TCDM.Accesses,
		TCDMConf:   cl.TCDM.Conflicts,
	}
	if cl.IC != nil {
		s.ICHits = cl.IC.Hits
		s.ICMisses = cl.IC.Misses
	}
	for _, c := range cl.Cores {
		s.Cores = append(s.Cores, c.Stats)
	}
	return s
}
