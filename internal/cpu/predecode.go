package cpu

import "hetsim/internal/isa"

// InstMeta is the per-instruction metadata the core precomputes once at
// program load instead of rederiving on every fetch: target support, the
// memory-access shape, the source-register mask consumed by the load-use
// hazard check, and the base cycle cost. One slice is shared by all cores
// of a cluster (they run the same target and the same text).
type InstMeta struct {
	// ReadMask has bit r set when the instruction sources register r.
	// Bit 0 (R0) is always clear: reads of the hardwired zero register
	// never create a hazard.
	ReadMask uint32
	// Cyc is the target's base cycle cost of the op (OpCycles).
	Cyc uint8
	// Size is the access width in bytes for loads/stores, 0 otherwise.
	Size uint8
	// Flags is a bitset of Meta* properties.
	Flags uint8
}

// InstMeta flags.
const (
	// MetaIllegal marks an op the target does not implement; executing it
	// faults (the check moved here from the per-fetch path).
	MetaIllegal uint8 = 1 << iota
	// MetaMem marks loads and stores (dispatched to the memory pipeline).
	MetaMem
	// MetaStore marks stores.
	MetaStore
	// MetaPostIncr marks post-incrementing addressing.
	MetaPostIncr
	// MetaChkAlign marks a load/store on a target without unaligned
	// support: a misaligned effective address faults. Predecoding the
	// target feature keeps the issue path branching on metadata already
	// in hand instead of loading core state.
	MetaChkAlign
	// MetaFuseBreak marks an instruction that ends a fused basic-block
	// run before it executes (see block.go): ops that can sleep, halt or
	// read cluster state outside the core (WFE, TRAP, MFSPR) must take
	// the stepped path so sleep transitions, termination and SPR reads
	// happen at their exact cycle.
	MetaFuseBreak
)

// Decoded is one predecoded instruction: the instruction word and its
// metadata side by side, so the fetch path loads both with a single bounds
// check and from the same cache line.
type Decoded struct {
	In   isa.Inst
	Meta InstMeta
}

// Predecode validates and annotates a text segment for a target. It is
// called once per LoadProgram; the resulting slice parallels text.
func Predecode(text []isa.Inst, target isa.Target) []Decoded {
	code := make([]Decoded, len(text))
	for i, in := range text {
		m := InstMeta{
			ReadMask: readMask(in),
			Cyc:      uint8(target.OpCycles(in.Op)),
		}
		if !target.Supports(in.Op) {
			m.Flags |= MetaIllegal
		}
		// Out-of-range register numbers fault at execute instead of
		// panicking; the core's register file relies on this to index
		// without bounds checks.
		if in.Rd >= isa.NumRegs || in.Ra >= isa.NumRegs || in.Rb >= isa.NumRegs {
			m.Flags |= MetaIllegal
		}
		switch in.Op {
		case isa.TRAP, isa.WFE, isa.MFSPR:
			m.Flags |= MetaFuseBreak
		}
		if in.Op.IsLoad() || in.Op.IsStore() {
			m.Flags |= MetaMem
			m.Size = in.Op.MemSize()
			if in.Op.IsStore() {
				m.Flags |= MetaStore
			}
			if in.Op.IsPostIncr() {
				m.Flags |= MetaPostIncr
			}
			if !target.Feat.Unaligned {
				m.Flags |= MetaChkAlign
			}
		}
		code[i] = Decoded{In: in, Meta: m}
	}
	return code
}

// readMask computes the source-register bitmask of an instruction. It
// mirrors the operand conventions of the execute switch: R-format ops read
// Ra and Rb (accumulating ops additionally read their destination),
// I-format ops read Ra, stores read base and data, register jumps and
// hardware-loop setups read Ra, and ORIL is read-modify-write on Rd.
func readMask(in isa.Inst) uint32 {
	var m uint32
	switch in.Op.Format() {
	case isa.FmtR:
		m = 1<<in.Ra | 1<<in.Rb
		switch in.Op {
		case isa.MAC, isa.MSU, isa.DOTP4B, isa.DOTP2H:
			m |= 1 << in.Rd
		}
	case isa.FmtI:
		if in.Op == isa.ORIL {
			m = 1 << in.Rd
		} else {
			m = 1 << in.Ra
		}
	case isa.FmtIH:
		if in.Op == isa.ORIL {
			m = 1 << in.Rd
		}
	case isa.FmtS:
		m = 1<<in.Ra | 1<<in.Rb
	case isa.FmtJR:
		m = 1 << in.Ra
	case isa.FmtLP:
		m = 1 << in.Ra
	}
	return m &^ 1 // R0 is hardwired zero; reading it is never a hazard
}
