// Basic-block compiled execution (DESIGN.md §12). At predecode time the
// program text is partitioned into straight-line runs; at execute time the
// core fuses a whole run into one runFused call instead of paying the
// Step gate/fetch/decode prologue once per instruction. Cycle counts,
// stats and the 9-class obs attribution stay bit-identical to stepped
// execution: everything that interacts with shared cluster state (TCDM
// bank arbitration, I$ refills, sleep/wake, DMA and event-unit registers,
// SPR reads, faults) either happens at its exact cycle inside the run or
// breaks the run back to the stepped path.
package cpu

import (
	"sync/atomic"

	"hetsim/internal/isa"
	"hetsim/internal/obs"
	"hetsim/internal/prof"
)

// BlockTable is the compiled run-length table of a program text: one entry
// per instruction, shared read-only across cores and jobs (the kernels
// package memoizes it next to ProgramHash).
type BlockTable struct {
	// Multi[i] is the number of instructions the core may fuse starting
	// at instruction i while other cores (or the DMA) are active: an
	// optional memory access at offset 0 — executed through real TCDM
	// bank arbitration at its true cycle — followed by a pure-ALU tail.
	// Branches end a run inclusively; WFE/TRAP/MFSPR and illegal ops end
	// it exclusively (Multi = 0). Runs of length <= 1 are not dispatched.
	Multi []uint16
	// NumBlocks counts the basic-block leaders discovered (the first
	// instruction, and every instruction after a run-ending one).
	NumBlocks int
}

// Compiled bundles everything derived from a program text for one target:
// the predecoded instruction stream and the block run table. Both are
// immutable after Compile and safe to share across cores and processes'
// worth of sweep jobs.
type Compiled struct {
	Code   []Decoded
	Blocks *BlockTable
}

// BlockCompiles counts CompileBlocks invocations process-wide; the
// kernels-package memo test pins that one image compiles exactly once
// under a parallel sweep.
var BlockCompiles atomic.Uint64

// maxRunLen caps a table entry; longer straight-line stretches simply
// re-dispatch (uint16 keeps the table at 2 bytes/instruction).
const maxRunLen = 0xffff

// maxRunSpan bounds the worst-case cycle window of a multi-core fused run
// so the deferred-charge plan's per-offset bitmasks (64 bits) always cover
// it. Enforced at compile time (clampSpans), not per executed op.
const maxRunSpan = 62

// isBranch reports ops whose next PC is (potentially) nonsequential; they
// may end a fused run inclusively, never start a tail through it.
func isBranch(op isa.Op) bool {
	switch op {
	case isa.J, isa.JAL, isa.JR, isa.JALR, isa.BF, isa.BNF:
		return true
	}
	return false
}

// CompileBlocks builds the run-length table for a predecoded text in one
// backward pass: aluTail is the fusable pure-ALU (plus trailing branch)
// run length starting at the instruction after the current one. A forward
// pass then clamps each run's worst-case cycle span to the charge plan's
// capacity using the target's timing.
func CompileBlocks(code []Decoded, target isa.Target) *BlockTable {
	BlockCompiles.Add(1)
	bt := &BlockTable{Multi: make([]uint16, len(code))}
	aluTail := 0
	for i := len(code) - 1; i >= 0; i-- {
		m := &code[i].Meta
		switch {
		case m.Flags&(MetaIllegal|MetaFuseBreak) != 0:
			bt.Multi[i] = 0
			aluTail = 0
		case m.Flags&MetaMem != 0:
			n := 1 + aluTail
			if n > maxRunLen {
				n = maxRunLen
			}
			bt.Multi[i] = uint16(n)
			aluTail = 0
		case isBranch(code[i].In.Op):
			bt.Multi[i] = 1
			aluTail = 1
		default:
			n := 1 + aluTail
			if n > maxRunLen {
				n = maxRunLen
			}
			bt.Multi[i] = uint16(n)
			aluTail = n
		}
	}
	clampSpans(bt, code, target)
	// Count leaders: instruction 0 plus every successor of a run-ender
	// (mem op, branch, or stepped-only boundary).
	if len(code) > 0 {
		bt.NumBlocks = 1
		for i := 0; i < len(code)-1; i++ {
			m := &code[i].Meta
			if m.Flags&(MetaIllegal|MetaFuseBreak|MetaMem) != 0 || isBranch(code[i].In.Op) {
				bt.NumBlocks++
			}
		}
	}
	return bt
}

// clampSpans shortens each Multi run so its worst-case cycle window —
// hazard bubble + issue + multi-cycle tail + branch penalty + unaligned
// extra per op — fits maxRunSpan. Moving the bound here keeps the fused
// executor's per-op path free of cap arithmetic; a truncated run simply
// re-dispatches from its cut point.
func clampSpans(bt *BlockTable, code []Decoded, target isa.Target) {
	loadUse := uint64(target.Time.LoadUse)
	braMax := uint64(target.Time.Jump)
	if b := uint64(target.Time.BranchTaken); b > braMax {
		braMax = b
	}
	for i := range code {
		n := int(bt.Multi[i])
		if n <= 1 {
			continue
		}
		span := uint64(0)
		for k := 0; k < n; k++ {
			d := &code[i+k]
			w := 1 + loadUse
			if cyc := uint64(d.Meta.Cyc); cyc > 1 {
				w += cyc - 1
			}
			if isBranch(d.In.Op) {
				w += braMax
			}
			if d.Meta.Flags&MetaMem != 0 {
				w++ // possible unaligned second bank cycle
			}
			span += w
			if span > maxRunSpan {
				bt.Multi[i] = uint16(k)
				break
			}
		}
	}
}

// Compile predecodes a text segment and builds its block table. The work
// runs under the "block-compile" pprof label so compile time is separable
// from simulation time in -cpuprofile output.
func Compile(text []isa.Inst, target isa.Target) *Compiled {
	var comp *Compiled
	prof.Label("block-compile", func() {
		code := Predecode(text, target)
		comp = &Compiled{Code: code, Blocks: CompileBlocks(code, target)}
	})
	return comp
}

// SetBlocks installs (or, with nil, removes) the block run table. The
// cluster only installs it for the event-driven loop with faults and
// tracing detached; ReferenceRun and fault-injected clusters always step.
func (c *Core) SetBlocks(bt *BlockTable) { c.blocks = bt }

// SetRunHorizon bounds solo fused execution: no instruction issues at or
// past cycle h (the cluster sets it to start+maxCycles each Run, so a
// fused run can never execute work the run-loop budget would have cut
// off).
func (c *Core) SetRunHorizon(h uint64) { c.horizon = h }

// runFusedMulti executes a straight-line run of n instructions starting at
// the current PC in one call, beginning at cycle now, while other cores
// (or the DMA) may be active. The run shape comes from the Multi table: an
// optional memory access at offset 0 — issued through real TCDM bank
// arbitration at the true current cycle, in the core's true rotation
// slot — followed by a pure-ALU tail. Only the dispatch cycle is charged
// here; the rest of the window becomes a deferred charge plan (per-offset
// class bitmasks) that Step's stall gate and CreditIdle consume
// cycle-exactly as the window actually elapses. Charges simply stop if
// the cluster run ends mid-window, so Stats and attribution always cover
// exactly the simulated cycles.
//
// The per-instruction loop carries no mode flags, counters or horizon
// checks: the span is bounded at compile time (clampSpans), the fetch-line
// budget is folded into the op bound up front, and the load-use hazard —
// only ever possible between the offset-0 load and the first tail op,
// since pure-ALU instructions never arm one — is resolved before the loop.
//
// ok=false means nothing executed (the first instruction needs the stepped
// path) and the caller must fall through; no state was modified.
func (c *Core) runFusedMulti(now uint64, n uint32) (uint64, bool) {
	if c.Trace != nil {
		// Tracing needs one event per instruction at its exact cycle; the
		// stepped path provides that (the cluster strips block tables when
		// a tracer is attached, so this only guards direct Core users).
		return 0, false
	}
	code := c.code
	pc := c.PC
	idx := (pc - c.base) / 4
	first := idx
	end := idx + n
	// Fold the fetch-line budget into the op bound: stepped execution
	// consults the I$ once per line, so a fused run must end where the
	// line does. (A zero line mask re-fetches every instruction; the
	// budget degenerates to zero ops and the stepped path runs.)
	if c.IC != nil {
		if avail := (c.FetchLineMask + 1 - (pc & c.FetchLineMask)) / 4; avail < n {
			end = idx + avail
		}
	}
	var o uint64 // cycle offset from now of the next issue
	var planIssue, planLU, planEM uint64

	if d := &code[idx]; d.Meta.Flags&MetaMem != 0 {
		if idx == end {
			return 0, false
		}
		m := d.Meta
		in := d.In
		size := uint32(m.Size)
		var addr uint32
		if m.Flags&MetaPostIncr != 0 {
			addr = c.reg(in.Ra)
		} else {
			addr = c.reg(in.Ra) + uint32(in.Imm)
		}
		if m.Flags&MetaChkAlign != 0 && addr&(size-1) != 0 {
			return 0, false // fault via the stepped path at the exact cycle
		}
		tm := c.TCDM
		if tm == nil || !tm.Contains(addr, size) {
			return 0, false // env dispatch (event unit, DMA, SoC, L2) steps
		}
		store := m.Flags&MetaStore != 0
		var wdata uint32
		if store {
			wdata = c.reg(in.Rb)
		}
		if !tm.Request(addr) {
			// Denied at offset 0: identical to the stepped path — park the
			// op and retry next cycle.
			c.park(in, m, addr, wdata, obs.Conflict)
			return now + 1, true
		}
		if store {
			tm.Write(addr, size, wdata)
		} else {
			rdata := tm.Read(addr, size)
			var v uint32
			switch in.Op {
			case isa.LBZ, isa.LBZP:
				v = rdata & 0xff
			case isa.LBS, isa.LBSP:
				v = uint32(int32(int8(rdata)))
			case isa.LHZ, isa.LHZP:
				v = rdata & 0xffff
			case isa.LHS, isa.LHSP:
				v = uint32(int32(int16(rdata)))
			default:
				v = rdata
			}
			c.setReg(in.Rd, v)
			c.lastLoadReg = in.Rd
			c.lastLoadArmed = true
		}
		if m.Flags&MetaPostIncr != 0 {
			// Re-read Ra: a post-incrementing load with Rd == Ra must
			// increment the loaded value, exactly as the stepped path.
			c.setReg(in.Ra, c.reg(in.Ra)+uint32(in.Imm))
		}
		planIssue = 1
		o = 1
		if addr&(size-1) != 0 {
			// Unaligned access: second bank cycle, attributed ExtMem.
			planEM = 2
			o = 2
		}
		next := pc + 4
		if next == c.lpEnd[0] || next == c.lpEnd[1] {
			next = c.lpWrap(next)
		}
		idx++
		if next != pc+4 {
			// Hardware-loop wraparound right after the access: the Multi
			// table is straight-line, so the run ends here. The armed
			// load-use state carries to the stepped path at window end.
			pc = next
			goto done
		}
		pc = next
		// Load-use hazard of the first tail op, the only place one can
		// occur in this run: pure-ALU instructions never arm it. When the
		// line budget cut the run to the access alone, the armed state
		// carries to the stepped path instead.
		if c.lastLoadArmed && idx < end {
			c.lastLoadArmed = false
			if c.loadUse > 0 && code[idx].Meta.ReadMask&(1<<c.lastLoadReg) != 0 {
				lu := c.loadUse
				planLU = ((uint64(1) << lu) - 1) << o
				o += lu
			}
		}
	}

	// Pure-ALU tail (and a run-ending branch, which CompileBlocks only
	// admits as the final op). The switch mirrors the stepped one in
	// core.go exactly, on run-local pc; arms that cannot appear inside a
	// compiled run (memory ops, TRAP, WFE, MFSPR) are absent, and unknown
	// opcodes end the run so the stepped path faults at the exact cycle.
loop:
	for idx < end {
		d := &code[idx]
		in := d.In
		a := c.reg(in.Ra)
		b := c.reg(in.Rb)
		next := pc + 4
		extra := int(d.Meta.Cyc) - 1

		switch in.Op {
		case isa.NOP:

		case isa.J:
			next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
			extra += c.timeJump
		case isa.JAL:
			c.setReg(isa.LR, pc+4)
			next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
			extra += c.timeJump
		case isa.JR:
			next = a
			extra += c.timeJump
		case isa.JALR:
			c.setReg(in.Rd, pc+4)
			next = a
			extra += c.timeJump
		case isa.BF, isa.BNF:
			taken := c.Flag == (in.Op == isa.BF)
			if taken {
				next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
				extra += c.timeBranch
			}

		case isa.SFEQ:
			c.Flag = a == b
		case isa.SFNE:
			c.Flag = a != b
		case isa.SFLTS:
			c.Flag = int32(a) < int32(b)
		case isa.SFLES:
			c.Flag = int32(a) <= int32(b)
		case isa.SFGTS:
			c.Flag = int32(a) > int32(b)
		case isa.SFGES:
			c.Flag = int32(a) >= int32(b)
		case isa.SFLTU:
			c.Flag = a < b
		case isa.SFLEU:
			c.Flag = a <= b
		case isa.SFGTU:
			c.Flag = a > b
		case isa.SFGEU:
			c.Flag = a >= b
		case isa.SFEQI:
			c.Flag = a == uint32(in.Imm)
		case isa.SFNEI:
			c.Flag = a != uint32(in.Imm)
		case isa.SFLTSI:
			c.Flag = int32(a) < in.Imm
		case isa.SFLESI:
			c.Flag = int32(a) <= in.Imm
		case isa.SFGTSI:
			c.Flag = int32(a) > in.Imm
		case isa.SFGESI:
			c.Flag = int32(a) >= in.Imm
		case isa.SFLTUI:
			c.Flag = a < uint32(in.Imm)
		case isa.SFGEUI:
			c.Flag = a >= uint32(in.Imm)

		case isa.ADD:
			c.setReg(in.Rd, a+b)
		case isa.SUB:
			c.setReg(in.Rd, a-b)
		case isa.AND:
			c.setReg(in.Rd, a&b)
		case isa.OR:
			c.setReg(in.Rd, a|b)
		case isa.XOR:
			c.setReg(in.Rd, a^b)
		case isa.SLL:
			c.setReg(in.Rd, a<<(b&31))
		case isa.SRL:
			c.setReg(in.Rd, a>>(b&31))
		case isa.SRA:
			c.setReg(in.Rd, uint32(int32(a)>>(b&31)))
		case isa.MUL:
			c.setReg(in.Rd, uint32(int32(a)*int32(b)))
		case isa.DIV:
			c.setReg(in.Rd, divS(a, b))
		case isa.DIVU:
			c.setReg(in.Rd, divU(a, b))
		case isa.MIN:
			if int32(a) < int32(b) {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAX:
			if int32(a) > int32(b) {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MINU:
			if a < b {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAXU:
			if a > b {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAC:
			c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))+int32(a)*int32(b)))
		case isa.MSU:
			c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))-int32(a)*int32(b)))
		case isa.SEXTB:
			c.setReg(in.Rd, uint32(int32(int8(a))))
		case isa.SEXTH:
			c.setReg(in.Rd, uint32(int32(int16(a))))

		case isa.ADDI:
			c.setReg(in.Rd, a+uint32(in.Imm))
		case isa.ANDI:
			c.setReg(in.Rd, a&uint32(in.Imm))
		case isa.ORI:
			c.setReg(in.Rd, a|uint32(in.Imm))
		case isa.XORI:
			c.setReg(in.Rd, a^uint32(in.Imm))
		case isa.SLLI:
			c.setReg(in.Rd, a<<(uint32(in.Imm)&31))
		case isa.SRLI:
			c.setReg(in.Rd, a>>(uint32(in.Imm)&31))
		case isa.SRAI:
			c.setReg(in.Rd, uint32(int32(a)>>(uint32(in.Imm)&31)))
		case isa.MOVHI:
			c.setReg(in.Rd, uint32(in.Imm)<<16)
		case isa.ORIL:
			c.setReg(in.Rd, c.reg(in.Rd)|uint32(in.Imm)&0xffff)

		case isa.MACS:
			c.Acc += int64(int32(a)) * int64(int32(b))
		case isa.MACU:
			c.Acc += int64(uint64(a) * uint64(b))
		case isa.MACCLR:
			c.Acc = 0
		case isa.MACRDL:
			c.setReg(in.Rd, uint32(c.Acc))
		case isa.MACRDH:
			c.setReg(in.Rd, uint32(uint64(c.Acc)>>32))

		case isa.DOTP4B:
			s := int32(c.reg(in.Rd))
			s += int32(int8(a)) * int32(int8(b))
			s += int32(int8(a>>8)) * int32(int8(b>>8))
			s += int32(int8(a>>16)) * int32(int8(b>>16))
			s += int32(int8(a>>24)) * int32(int8(b>>24))
			c.setReg(in.Rd, uint32(s))
		case isa.DOTP2H:
			s := int32(c.reg(in.Rd))
			s += int32(int16(a)) * int32(int16(b))
			s += int32(int16(a>>16)) * int32(int16(b>>16))
			c.setReg(in.Rd, uint32(s))
		case isa.ADD4B:
			out := uint32(uint8(a + b))
			out |= uint32(uint8(a>>8+b>>8)) << 8
			out |= uint32(uint8(a>>16+b>>16)) << 16
			out |= uint32(uint8(a>>24+b>>24)) << 24
			c.setReg(in.Rd, out)
		case isa.SUB4B:
			out := uint32(uint8(a - b))
			out |= uint32(uint8(a>>8-b>>8)) << 8
			out |= uint32(uint8(a>>16-b>>16)) << 16
			out |= uint32(uint8(a>>24-b>>24)) << 24
			c.setReg(in.Rd, out)
		case isa.ADD2H:
			out := uint32(uint16(a + b))
			out |= uint32(uint16(a>>16+b>>16)) << 16
			c.setReg(in.Rd, out)
		case isa.SUB2H:
			out := uint32(uint16(a - b))
			out |= uint32(uint16(a>>16-b>>16)) << 16
			c.setReg(in.Rd, out)
		case isa.SRA2H:
			sh := b & 15
			out := uint32(uint16(int16(a) >> sh))
			out |= uint32(uint16(int16(a>>16)>>sh)) << 16
			c.setReg(in.Rd, out)

		case isa.LPSETUP:
			i := int(in.Rd)
			c.lp[i] = hwLoop{
				start: pc + 4,
				end:   pc + 4 + uint32(in.Imm)*4,
				count: a,
			}
			if a == 0 {
				next = pc + 4 + uint32(in.Imm)*4
				c.lpEnd[i] = lpInactive
			} else {
				c.lpEnd[i] = c.lp[i].end
			}

		default:
			break loop
		}

		planIssue |= uint64(1) << o
		o++
		if extra > 0 {
			// Trailing cycles of a multi-cycle op or taken-branch penalty:
			// Issue-class stalls, the clear bits of the plan window.
			o += uint64(extra)
		}
		if next == c.lpEnd[0] || next == c.lpEnd[1] {
			next = c.lpWrap(next)
		}
		idx++
		if next != pc+4 {
			// Taken branch or hardware-loop wraparound: the run ends (the
			// Multi table is straight-line beyond this point).
			pc = next
			break
		}
		pc = next
	}

done:
	if idx == first {
		return 0, false
	}
	c.PC = pc
	// Charge the dispatch cycle now (always an issue: the first op's
	// hazard was resolved by Step before dispatch); defer the rest of the
	// window to the charge plan.
	c.Stats.Active++
	c.Stats.Retired++
	if ob := c.Obs; ob != nil {
		ob.Tick(obs.Issue)
	}
	if o > 1 {
		c.stallUntil = now + o
		c.stallClass = obs.Issue
		c.planOn = true
		c.planStart = now
		c.planCursor = now + 1
		c.planIssue, c.planLU, c.planEM = planIssue, planLU, planEM
		return now + o, true
	}
	return now + 1, true
}

// runFusedSolo executes straight-line code from the current PC without
// bound while the core is the cluster's sole actor (everyone else halted
// or asleep, DMA idle — maintained by the cluster in c.Solo): bank
// arbitration cannot deny the only requester, so memory accesses complete
// anywhere in the run, and taken branches and hardware-loop wraparounds
// are chased instead of ending it. The whole window is batch-charged at
// exit (per-class counters, horizon-clamped so a maxCycles budget cuts
// the charges exactly where it would have cut stepped execution) and
// stallAccounted tells Step's gate and CreditIdle the window is already
// paid for.
//
// The run ends at the cycle horizon, at a fetch-line boundary (the
// stepped path re-consults the I$ and pays any refill), at a fuse-break
// or illegal or unknown instruction, and at any non-TCDM or faulting
// access — all handed back to the stepped path at their exact cycle.
func (c *Core) runFusedSolo(now uint64) (uint64, bool) {
	if c.Trace != nil {
		return 0, false
	}
	code := c.code
	pc := c.PC
	t := now
	horizon := c.horizon
	idx := (pc - c.base) / 4
	var nIssue, nStall, cLU, cEM uint64

loop:
	for t < horizon {
		if idx >= uint32(len(code)) {
			break
		}
		if nIssue > 0 && c.IC != nil && pc&^c.FetchLineMask != c.fetchedLine {
			break
		}
		d := &code[idx]
		m := d.Meta
		if m.Flags&(MetaIllegal|MetaFuseBreak) != 0 {
			break
		}
		in := d.In

		// Load-use hazard against the previous in-run load (the first op
		// cannot hazard: Step resolved its gate before dispatching).
		if c.lastLoadArmed {
			c.lastLoadArmed = false
			if c.loadUse > 0 && m.ReadMask&(1<<c.lastLoadReg) != 0 {
				ch := c.loadUse
				if t+ch > horizon {
					ch = horizon - t
				}
				nStall += ch
				cLU += ch
				t += c.loadUse
				if t >= horizon {
					break
				}
			}
		}

		if m.Flags&MetaMem != 0 {
			size := uint32(m.Size)
			var addr uint32
			if m.Flags&MetaPostIncr != 0 {
				addr = c.reg(in.Ra)
			} else {
				addr = c.reg(in.Ra) + uint32(in.Imm)
			}
			if m.Flags&MetaChkAlign != 0 && addr&(size-1) != 0 {
				break // fault via the stepped path at the exact cycle
			}
			tm := c.TCDM
			if tm == nil || !tm.Contains(addr, size) {
				break // env dispatch (event unit, DMA, SoC, L2) steps
			}
			// The sole requester always wins arbitration: count the access
			// without the bank Request (whose per-cycle conflict state only
			// the cluster loop resets).
			tm.Accesses++
			if m.Flags&MetaStore != 0 {
				tm.Write(addr, size, c.reg(in.Rb))
			} else {
				rdata := tm.Read(addr, size)
				var v uint32
				switch in.Op {
				case isa.LBZ, isa.LBZP:
					v = rdata & 0xff
				case isa.LBS, isa.LBSP:
					v = uint32(int32(int8(rdata)))
				case isa.LHZ, isa.LHZP:
					v = rdata & 0xffff
				case isa.LHS, isa.LHSP:
					v = uint32(int32(int16(rdata)))
				default:
					v = rdata
				}
				c.setReg(in.Rd, v)
				c.lastLoadReg = in.Rd
				c.lastLoadArmed = true
			}
			if m.Flags&MetaPostIncr != 0 {
				c.setReg(in.Ra, c.reg(in.Ra)+uint32(in.Imm))
			}
			nIssue++
			t++
			if addr&(size-1) != 0 {
				// Unaligned access: second bank cycle, attributed ExtMem.
				if t < horizon {
					nStall++
					cEM++
				}
				t++
			}
			next := pc + 4
			if next == c.lpEnd[0] || next == c.lpEnd[1] {
				next = c.lpWrap(next)
			}
			if next == pc+4 {
				idx++
			} else {
				idx = (next - c.base) / 4
			}
			pc = next
			continue
		}

		// Non-memory execute: the switch mirrors the stepped one in core.go
		// exactly; TRAP, WFE and MFSPR carry MetaFuseBreak and never reach
		// it, unknown opcodes end the run so the stepped path faults at the
		// exact cycle.
		a := c.reg(in.Ra)
		b := c.reg(in.Rb)
		next := pc + 4
		extra := int(m.Cyc) - 1

		switch in.Op {
		case isa.NOP:

		case isa.J:
			next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
			extra += c.timeJump
		case isa.JAL:
			c.setReg(isa.LR, pc+4)
			next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
			extra += c.timeJump
		case isa.JR:
			next = a
			extra += c.timeJump
		case isa.JALR:
			c.setReg(in.Rd, pc+4)
			next = a
			extra += c.timeJump
		case isa.BF, isa.BNF:
			taken := c.Flag == (in.Op == isa.BF)
			if taken {
				next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
				extra += c.timeBranch
			}

		case isa.SFEQ:
			c.Flag = a == b
		case isa.SFNE:
			c.Flag = a != b
		case isa.SFLTS:
			c.Flag = int32(a) < int32(b)
		case isa.SFLES:
			c.Flag = int32(a) <= int32(b)
		case isa.SFGTS:
			c.Flag = int32(a) > int32(b)
		case isa.SFGES:
			c.Flag = int32(a) >= int32(b)
		case isa.SFLTU:
			c.Flag = a < b
		case isa.SFLEU:
			c.Flag = a <= b
		case isa.SFGTU:
			c.Flag = a > b
		case isa.SFGEU:
			c.Flag = a >= b
		case isa.SFEQI:
			c.Flag = a == uint32(in.Imm)
		case isa.SFNEI:
			c.Flag = a != uint32(in.Imm)
		case isa.SFLTSI:
			c.Flag = int32(a) < in.Imm
		case isa.SFLESI:
			c.Flag = int32(a) <= in.Imm
		case isa.SFGTSI:
			c.Flag = int32(a) > in.Imm
		case isa.SFGESI:
			c.Flag = int32(a) >= in.Imm
		case isa.SFLTUI:
			c.Flag = a < uint32(in.Imm)
		case isa.SFGEUI:
			c.Flag = a >= uint32(in.Imm)

		case isa.ADD:
			c.setReg(in.Rd, a+b)
		case isa.SUB:
			c.setReg(in.Rd, a-b)
		case isa.AND:
			c.setReg(in.Rd, a&b)
		case isa.OR:
			c.setReg(in.Rd, a|b)
		case isa.XOR:
			c.setReg(in.Rd, a^b)
		case isa.SLL:
			c.setReg(in.Rd, a<<(b&31))
		case isa.SRL:
			c.setReg(in.Rd, a>>(b&31))
		case isa.SRA:
			c.setReg(in.Rd, uint32(int32(a)>>(b&31)))
		case isa.MUL:
			c.setReg(in.Rd, uint32(int32(a)*int32(b)))
		case isa.DIV:
			c.setReg(in.Rd, divS(a, b))
		case isa.DIVU:
			c.setReg(in.Rd, divU(a, b))
		case isa.MIN:
			if int32(a) < int32(b) {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAX:
			if int32(a) > int32(b) {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MINU:
			if a < b {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAXU:
			if a > b {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAC:
			c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))+int32(a)*int32(b)))
		case isa.MSU:
			c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))-int32(a)*int32(b)))
		case isa.SEXTB:
			c.setReg(in.Rd, uint32(int32(int8(a))))
		case isa.SEXTH:
			c.setReg(in.Rd, uint32(int32(int16(a))))

		case isa.ADDI:
			c.setReg(in.Rd, a+uint32(in.Imm))
		case isa.ANDI:
			c.setReg(in.Rd, a&uint32(in.Imm))
		case isa.ORI:
			c.setReg(in.Rd, a|uint32(in.Imm))
		case isa.XORI:
			c.setReg(in.Rd, a^uint32(in.Imm))
		case isa.SLLI:
			c.setReg(in.Rd, a<<(uint32(in.Imm)&31))
		case isa.SRLI:
			c.setReg(in.Rd, a>>(uint32(in.Imm)&31))
		case isa.SRAI:
			c.setReg(in.Rd, uint32(int32(a)>>(uint32(in.Imm)&31)))
		case isa.MOVHI:
			c.setReg(in.Rd, uint32(in.Imm)<<16)
		case isa.ORIL:
			c.setReg(in.Rd, c.reg(in.Rd)|uint32(in.Imm)&0xffff)

		case isa.MACS:
			c.Acc += int64(int32(a)) * int64(int32(b))
		case isa.MACU:
			c.Acc += int64(uint64(a) * uint64(b))
		case isa.MACCLR:
			c.Acc = 0
		case isa.MACRDL:
			c.setReg(in.Rd, uint32(c.Acc))
		case isa.MACRDH:
			c.setReg(in.Rd, uint32(uint64(c.Acc)>>32))

		case isa.DOTP4B:
			s := int32(c.reg(in.Rd))
			s += int32(int8(a)) * int32(int8(b))
			s += int32(int8(a>>8)) * int32(int8(b>>8))
			s += int32(int8(a>>16)) * int32(int8(b>>16))
			s += int32(int8(a>>24)) * int32(int8(b>>24))
			c.setReg(in.Rd, uint32(s))
		case isa.DOTP2H:
			s := int32(c.reg(in.Rd))
			s += int32(int16(a)) * int32(int16(b))
			s += int32(int16(a>>16)) * int32(int16(b>>16))
			c.setReg(in.Rd, uint32(s))
		case isa.ADD4B:
			out := uint32(uint8(a + b))
			out |= uint32(uint8(a>>8+b>>8)) << 8
			out |= uint32(uint8(a>>16+b>>16)) << 16
			out |= uint32(uint8(a>>24+b>>24)) << 24
			c.setReg(in.Rd, out)
		case isa.SUB4B:
			out := uint32(uint8(a - b))
			out |= uint32(uint8(a>>8-b>>8)) << 8
			out |= uint32(uint8(a>>16-b>>16)) << 16
			out |= uint32(uint8(a>>24-b>>24)) << 24
			c.setReg(in.Rd, out)
		case isa.ADD2H:
			out := uint32(uint16(a + b))
			out |= uint32(uint16(a>>16+b>>16)) << 16
			c.setReg(in.Rd, out)
		case isa.SUB2H:
			out := uint32(uint16(a - b))
			out |= uint32(uint16(a>>16-b>>16)) << 16
			c.setReg(in.Rd, out)
		case isa.SRA2H:
			sh := b & 15
			out := uint32(uint16(int16(a) >> sh))
			out |= uint32(uint16(int16(a>>16)>>sh)) << 16
			c.setReg(in.Rd, out)

		case isa.LPSETUP:
			i := int(in.Rd)
			c.lp[i] = hwLoop{
				start: pc + 4,
				end:   pc + 4 + uint32(in.Imm)*4,
				count: a,
			}
			if a == 0 {
				next = pc + 4 + uint32(in.Imm)*4
				c.lpEnd[i] = lpInactive
			} else {
				c.lpEnd[i] = c.lp[i].end
			}

		default:
			break loop
		}

		nIssue++
		t++
		if extra > 0 {
			// Trailing cycles of a multi-cycle op or branch penalty: they
			// stall the next issue; charge only what fits the horizon.
			ch := uint64(extra)
			if t+ch > horizon {
				ch = horizon - t
			}
			nStall += ch
			t += uint64(extra)
		}
		if next == c.lpEnd[0] || next == c.lpEnd[1] {
			next = c.lpWrap(next)
		}
		if next == pc+4 {
			idx++
		} else {
			idx = (next - c.base) / 4
		}
		pc = next
	}

	if nIssue == 0 {
		return 0, false
	}
	c.PC = pc
	c.Stats.Active += nIssue
	c.Stats.Retired += nIssue
	c.Stats.Stall += nStall
	if ob := c.Obs; ob != nil {
		ob.Credit(obs.Issue, nIssue+nStall-cLU-cEM)
		if cLU > 0 {
			ob.Credit(obs.LoadUse, cLU)
		}
		if cEM > 0 {
			ob.Credit(obs.ExtMem, cEM)
		}
	}
	if t > now+1 {
		c.stallUntil = t
		c.stallClass = obs.Issue
		c.stallAccounted = true
		return t, true
	}
	return now + 1, true
}
