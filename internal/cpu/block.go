// Basic-block compiled execution (DESIGN.md §12). At predecode time the
// program text is partitioned into straight-line runs; at execute time the
// core fuses a whole run into one runFused call instead of paying the
// Step gate/fetch/decode prologue once per instruction. Cycle counts,
// stats and the 9-class obs attribution stay bit-identical to stepped
// execution: everything that interacts with shared cluster state (TCDM
// bank arbitration, I$ refills, sleep/wake, DMA and event-unit registers,
// SPR reads, faults) either happens at its exact cycle inside the run or
// breaks the run back to the stepped path.
package cpu

import (
	"sync/atomic"

	"hetsim/internal/isa"
	"hetsim/internal/obs"
	"hetsim/internal/prof"
)

// BlockTable is the compiled run-length table of a program text: one entry
// per instruction, shared read-only across cores and jobs (the kernels
// package memoizes it next to ProgramHash).
type BlockTable struct {
	// Multi[i] is the number of instructions the core may fuse starting
	// at instruction i while other cores (or the DMA) are active: an
	// optional memory access at offset 0 — executed through real TCDM
	// bank arbitration at its true cycle — followed by a pure-ALU tail.
	// Branches end a run inclusively; WFE/TRAP/MFSPR and illegal ops end
	// it exclusively (Multi = 0). Runs of length <= 1 are not dispatched.
	Multi []uint16
	// Span[i] is the superblock tier's per-exit side-table: the
	// worst-case cycle span of the (clamped) run starting at i, or
	// spanNoChain when a chained run must not continue there (mem-led
	// runs — a mid-window access cannot arbitrate at a future cycle —
	// and fuse-break/illegal/empty entries). A chain is admitted only
	// while the accumulated offset plus Span of the target still fits
	// the charge plan (maxRunSpan).
	Span []uint16
	// NumBlocks counts the basic-block leaders discovered (the first
	// instruction, and every instruction after a run-ending one).
	NumBlocks int
}

// Compiled bundles everything derived from a program text for one target:
// the predecoded instruction stream and the block run table. Both are
// immutable after Compile and safe to share across cores and processes'
// worth of sweep jobs.
type Compiled struct {
	Code   []Decoded
	Blocks *BlockTable
}

// BlockCompiles counts CompileBlocks invocations process-wide; the
// kernels-package memo test pins that one image compiles exactly once
// under a parallel sweep.
var BlockCompiles atomic.Uint64

// SuperCompiles counts superblock formations process-wide: conditional
// branch edges whose hot counter crossed the threshold, promoting the
// edge into the chainable set (the tier's analogue of a trace-compile
// event in a tracing JIT). Unconditional edges — jumps and hardware-loop
// back-edges — chain statically and never record a formation.
var SuperCompiles atomic.Uint64

// CompileVersion names the compiled-table format. The kernels package
// folds it into the compile-memo key so a process upgrade that changes
// table semantics (PR 8 added the Span side-table) can never serve a
// stale entry shape to a newer executor.
const CompileVersion = 2

// maxRunLen caps a table entry; longer straight-line stretches simply
// re-dispatch (uint16 keeps the table at 2 bytes/instruction).
const maxRunLen = 0xffff

// maxRunSpan bounds the worst-case cycle window of a multi-core fused
// run — including every chained superblock segment — so the deferred
// charge plan's planWords-word per-offset bitmasks always cover it.
// Enforced at compile time for the first segment (clampSpans) and at
// each chain admission (Span side-table), never per executed op.
const maxRunSpan = planWords*64 - 2

// planWords sizes the deferred charge plan's bitmasks (core.go).
const planWords = 4

// planFetchCap bounds the fetch points of one charge plan: the line
// crossings a chained run may defer to live I$ consultation (core.go).
// A run that would cross more lines simply ends at the crossing and the
// stepped path re-dispatches there.
const planFetchCap = 16

// spanNoChain marks a Span entry a chained run must not continue into.
const spanNoChain = 0xffff

// hotEdgeThreshold is how many times a conditional-branch edge must be
// taken (or fallen through) before chained execution follows it. Cold
// and flip-flopping branches keep ending runs at the branch — the
// stepped path re-dispatches from the target — while steady loop exits
// and guard branches promote quickly.
const hotEdgeThreshold = 8

// isBranch reports ops whose next PC is (potentially) nonsequential; they
// may end a fused run inclusively, never start a tail through it.
func isBranch(op isa.Op) bool {
	switch op {
	case isa.J, isa.JAL, isa.JR, isa.JALR, isa.BF, isa.BNF:
		return true
	}
	return false
}

// CompileBlocks builds the run-length table for a predecoded text in one
// backward pass: aluTail is the fusable pure-ALU (plus trailing branch)
// run length starting at the instruction after the current one. A forward
// pass then clamps each run's worst-case cycle span to the charge plan's
// capacity using the target's timing.
func CompileBlocks(code []Decoded, target isa.Target) *BlockTable {
	BlockCompiles.Add(1)
	bt := &BlockTable{
		Multi: make([]uint16, len(code)),
		Span:  make([]uint16, len(code)),
	}
	aluTail := 0
	for i := len(code) - 1; i >= 0; i-- {
		m := &code[i].Meta
		switch {
		case m.Flags&(MetaIllegal|MetaFuseBreak) != 0:
			bt.Multi[i] = 0
			aluTail = 0
		case m.Flags&MetaMem != 0:
			n := 1 + aluTail
			if n > maxRunLen {
				n = maxRunLen
			}
			bt.Multi[i] = uint16(n)
			aluTail = 0
		case isBranch(code[i].In.Op):
			bt.Multi[i] = 1
			aluTail = 1
		default:
			n := 1 + aluTail
			if n > maxRunLen {
				n = maxRunLen
			}
			bt.Multi[i] = uint16(n)
			aluTail = n
		}
	}
	clampSpans(bt, code, target)
	// Count leaders: instruction 0 plus every successor of a run-ender
	// (mem op, branch, or stepped-only boundary).
	if len(code) > 0 {
		bt.NumBlocks = 1
		for i := 0; i < len(code)-1; i++ {
			m := &code[i].Meta
			if m.Flags&(MetaIllegal|MetaFuseBreak|MetaMem) != 0 || isBranch(code[i].In.Op) {
				bt.NumBlocks++
			}
		}
	}
	return bt
}

// clampSpans shortens each Multi run so its worst-case cycle window —
// hazard bubble + issue + multi-cycle tail + branch penalty + unaligned
// extra per op — fits maxRunSpan, and records the resulting span in the
// Span side-table (the superblock tier's chain-admission bound). Moving
// the bound here keeps the fused executor's per-op path free of cap
// arithmetic; a truncated run simply re-dispatches — or chains — from
// its cut point. Mem-led runs get spanNoChain: a chained run cannot
// admit a memory access mid-window, because bank arbitration at a
// future cycle is unknowable at dispatch time.
func clampSpans(bt *BlockTable, code []Decoded, target isa.Target) {
	loadUse := uint64(target.Time.LoadUse)
	braMax := uint64(target.Time.Jump)
	if b := uint64(target.Time.BranchTaken); b > braMax {
		braMax = b
	}
	for i := range code {
		n := int(bt.Multi[i])
		if n == 0 || code[i].Meta.Flags&MetaMem != 0 {
			bt.Span[i] = spanNoChain
			if n <= 1 {
				continue
			}
		}
		span := uint64(0)
		for k := 0; k < n; k++ {
			d := &code[i+k]
			w := 1 + loadUse
			if cyc := uint64(d.Meta.Cyc); cyc > 1 {
				w += cyc - 1
			}
			if isBranch(d.In.Op) {
				w += braMax
			}
			if d.Meta.Flags&MetaMem != 0 {
				w++ // possible unaligned second bank cycle
			}
			if span+w > maxRunSpan {
				bt.Multi[i] = uint16(k)
				break
			}
			span += w
		}
		if bt.Span[i] != spanNoChain {
			bt.Span[i] = uint16(span)
		}
	}
}

// Compile predecodes a text segment and builds its block table. The work
// runs under the "block-compile" pprof label so compile time is separable
// from simulation time in -cpuprofile output.
func Compile(text []isa.Inst, target isa.Target) *Compiled {
	var comp *Compiled
	prof.Label("block-compile", func() {
		code := Predecode(text, target)
		comp = &Compiled{Code: code, Blocks: CompileBlocks(code, target)}
	})
	return comp
}

// SetBlocks installs (or, with nil, removes) the block run table. The
// cluster only installs it for the event-driven loop with faults and
// tracing detached; ReferenceRun and fault-injected clusters always step.
// Removing the table also disables the superblock tier: chained runs
// cannot exist without the Span side-table under them.
func (c *Core) SetBlocks(bt *BlockTable) {
	c.blocks = bt
	if bt == nil {
		c.superOn = false
	}
}

// EnableSuper switches the superblock tier on or off: chained fused runs
// in runFusedMulti, gated per conditional edge by the hot counters, and
// cross-line trace chasing in runFusedSolo. The counter array is per-core
// warm-up state of the loaded image (not shared through the compile memo):
// it is allocated or cleared here, off the hot path, and deliberately NOT
// reset by Start — restarting the same program keeps its hot traces.
func (c *Core) EnableSuper(on bool) {
	c.superOn = on && c.blocks != nil && c.blocks.Span != nil
	if !c.superOn {
		return
	}
	if len(c.edges) < len(c.code) {
		c.edges = make([]uint8, len(c.code))
		return
	}
	for i := range c.edges {
		c.edges[i] = 0
	}
}

// SetRunHorizon bounds solo fused execution: no instruction issues at or
// past cycle h (the cluster sets it to start+maxCycles each Run, so a
// fused run can never execute work the run-loop budget would have cut
// off).
func (c *Core) SetRunHorizon(h uint64) { c.horizon = h }

// SetSoloWindow bounds solo fused execution inside a solo window: no
// instruction issues at or past cycle h, where the cluster determined
// the earliest sibling actor resumes. Unlike the run-loop horizon the
// cycles past h are still simulated, so charge tails may spill across
// it (core.go winHorizon). NextEventNever clears the bound.
func (c *Core) SetSoloWindow(h uint64) { c.winHorizon = h }

// hotEdge warms the saturating counter of the conditional-branch edge at
// instruction index i and reports whether it is hot enough to chain
// through. Crossing the threshold is a superblock formation; from then
// on every dispatch chains through this edge. Taken and fall-through
// directions share the counter: what it measures is whether the branch
// is steady, not which way it goes — a flip-flopping branch still warms
// up, but each dispatch then follows the actual executed direction, so
// chained execution never speculates.
func (c *Core) hotEdge(i uint32) bool {
	e := c.edges[i]
	if e >= hotEdgeThreshold {
		return true
	}
	e++
	c.edges[i] = e
	if e == hotEdgeThreshold {
		SuperCompiles.Add(1)
		return true
	}
	return false
}

// chainTo admits (or refuses) chaining a fused run into the run headed
// at pc, with o plan offsets already consumed. On ok it returns the
// target's instruction index and its segment end. Refusals —
// out-of-text targets, mem-led or fuse-break/illegal/empty targets,
// span overflow — leave the caller to end the run before any side
// effect of the target, exactly at the boundary the stepped path would
// re-dispatch from. Fetch-line crossings do not refuse a chain: the
// segment loop records a fetch point at the crossing offset and the
// plan gate consults the I$ live at that exact cycle.
func (c *Core) chainTo(pc uint32, o uint64) (idx, end uint32, ok bool) {
	bt := c.blocks
	idx = (pc - c.base) / 4
	if idx >= uint32(len(c.code)) {
		return 0, 0, false // stepped path faults at the exact cycle
	}
	span := bt.Span[idx]
	if span == spanNoChain || o+uint64(span) > maxRunSpan {
		return 0, 0, false
	}
	n := uint32(bt.Multi[idx])
	end = idx + n
	if end == idx {
		return 0, 0, false // empty run: nothing to fuse
	}
	return idx, end, true
}

// runFusedMulti executes a run of instructions starting at the current PC
// in one call, beginning at cycle now, while other cores (or the DMA) may
// be active. The first segment's shape comes from the Multi table: an
// optional memory access at offset 0 — issued through real TCDM bank
// arbitration at the true current cycle, in the core's true rotation
// slot — followed by a pure-ALU tail. With the superblock tier enabled
// (EnableSuper), a run-ending control transfer chains into the next run
// when the Span side-table admits it: unconditional jumps and
// hardware-loop back-edges chain statically, conditional branches chain
// once their edge counter is hot, and every chain is bounded so the
// whole trace still fits the charge plan. A chain that is refused —
// cold edge, mem-led target, span overflow, fetch-line crossing,
// indirect jump — simply ends the run before any side effect of the
// target, and the stepped path re-dispatches there.
//
// Only the dispatch cycle is charged here; the rest of the window becomes
// a deferred charge plan (per-offset class bitmasks) that Step's stall
// gate and CreditIdle consume cycle-exactly as the window actually
// elapses. Charges simply stop if the cluster run ends mid-window, so
// Stats and attribution always cover exactly the simulated cycles.
//
// The per-instruction loop carries no mode flags, counters or horizon
// checks: the span is bounded at compile time for the first segment
// (clampSpans) and at admission for each chained one, the fetch-line
// budget is folded into the segment bound up front, and the load-use
// hazard — only ever possible between the offset-0 load and the first
// continuation op, since pure-ALU instructions never arm one — is
// resolved before the segment loop.
//
// ok=false means nothing executed (the first instruction needs the stepped
// path) and the caller must fall through; no state was modified.
func (c *Core) runFusedMulti(now uint64, n uint32) (uint64, bool) {
	if c.Trace != nil {
		// Tracing needs one event per instruction at its exact cycle; the
		// stepped path provides that (the cluster strips block tables when
		// a tracer is attached, so this only guards direct Core users).
		return 0, false
	}
	code := c.code
	pc := c.PC
	idx := (pc - c.base) / 4
	end := idx + n
	lineCut := false
	// Fetch-line handling splits by tier. First tier: fold the line
	// budget into the op bound — stepped execution consults the I$ once
	// per line, so a fused segment must end where the line does. (A zero
	// line mask re-fetches every instruction; the budget degenerates to
	// zero ops and the stepped path runs.) Superblock tier: no cap —
	// each crossing records a fetch point at its issue offset, and the
	// plan gate consults the I$ live at exactly that cycle.
	checkLine := false
	var lineMask, buildLine uint32
	var fpN uint8 // fetch points are written straight into c.planFetch*
	if c.IC != nil {
		if c.superOn {
			checkLine = true
			lineMask = c.FetchLineMask
			buildLine = pc &^ lineMask
		} else if avail := (c.FetchLineMask + 1 - (pc & c.FetchLineMask)) / 4; avail < n {
			end = idx + avail
			lineCut = true
		}
	}
	var o uint64 // cycle offset from now of the next issue
	var planIssue, planLU, planEM [planWords]uint64

	if d := &code[idx]; d.Meta.Flags&MetaMem != 0 {
		if idx == end {
			return 0, false
		}
		m := d.Meta
		in := d.In
		size := uint32(m.Size)
		var addr uint32
		if m.Flags&MetaPostIncr != 0 {
			addr = c.reg(in.Ra)
		} else {
			addr = c.reg(in.Ra) + uint32(in.Imm)
		}
		if m.Flags&MetaChkAlign != 0 && addr&(size-1) != 0 {
			return 0, false // fault via the stepped path at the exact cycle
		}
		tm := c.TCDM
		if tm == nil || !tm.Contains(addr, size) {
			return 0, false // env dispatch (event unit, DMA, SoC, L2) steps
		}
		store := m.Flags&MetaStore != 0
		var wdata uint32
		if store {
			wdata = c.reg(in.Rb)
		}
		if !tm.Request(addr) {
			// Denied at offset 0: identical to the stepped path — park the
			// op and retry next cycle.
			c.park(in, m, addr, wdata, obs.Conflict)
			return now + 1, true
		}
		if store {
			tm.Write(addr, size, wdata)
		} else {
			rdata := tm.Read(addr, size)
			var v uint32
			switch in.Op {
			case isa.LBZ, isa.LBZP:
				v = rdata & 0xff
			case isa.LBS, isa.LBSP:
				v = uint32(int32(int8(rdata)))
			case isa.LHZ, isa.LHZP:
				v = rdata & 0xffff
			case isa.LHS, isa.LHSP:
				v = uint32(int32(int16(rdata)))
			default:
				v = rdata
			}
			c.setReg(in.Rd, v)
			c.lastLoadReg = in.Rd
			c.lastLoadArmed = true
		}
		if m.Flags&MetaPostIncr != 0 {
			// Re-read Ra: a post-incrementing load with Rd == Ra must
			// increment the loaded value, exactly as the stepped path.
			c.setReg(in.Ra, c.reg(in.Ra)+uint32(in.Imm))
		}
		planIssue[0] = 1
		o = 1
		if addr&(size-1) != 0 {
			// Unaligned access: second bank cycle, attributed ExtMem.
			planEM[0] = 2
			o = 2
		}
		next := pc + 4
		if next == c.lpEnd[0] || next == c.lpEnd[1] {
			next = c.lpWrap(next)
		}
		idx++
		if next != pc+4 {
			// Hardware-loop wraparound right after the access: the Multi
			// table is straight-line, so the run ends here unless the
			// superblock tier chains the back-edge into the loop head's
			// run. When the run ends, the armed load-use state carries to
			// the stepped path at window end.
			pc = next
			if !c.superOn {
				goto done
			}
			nidx, nend, ok := c.chainTo(pc, o)
			if !ok {
				goto done
			}
			idx, end = nidx, nend
		} else {
			pc = next
		}
		// Line crossing of the first continuation op: stepped execution
		// fetches before it checks the hazard, so the fetch point comes
		// first — at the pre-hazard offset.
		if checkLine && idx < end && pc&^lineMask != buildLine {
			if fpN == planFetchCap {
				goto done // run ends at the crossing, before the op
			}
			c.planFetch[fpN], c.planFetchPC[fpN] = uint16(o), pc
			fpN++
			buildLine = pc &^ lineMask
		}
		// Load-use hazard of the first continuation op — whether the
		// straight-line successor or a chained loop head — the only place
		// one can occur in this run: pure-ALU instructions never arm it.
		// When the line budget cut the run to the access alone, the armed
		// state carries to the stepped path instead.
		if c.lastLoadArmed && idx < end {
			c.lastLoadArmed = false
			if c.loadUse > 0 && code[idx].Meta.ReadMask&(1<<c.lastLoadReg) != 0 {
				for lu := c.loadUse; lu > 0; lu-- {
					planLU[o>>6] |= uint64(1) << (o & 63)
					o++
				}
			}
		}
	}

	// Pure-ALU segments (each with a run-ending branch, which
	// CompileBlocks only admits as the final op), chained across control
	// transfers while chainTo admits the next segment. The switch mirrors
	// the stepped one in core.go exactly, on run-local pc; arms that
	// cannot appear inside a compiled run (memory ops, TRAP, WFE, MFSPR)
	// are absent, and unknown opcodes end the run so the stepped path
	// faults at the exact cycle.
seg:
	for {
		for idx < end {
			if checkLine && pc&^lineMask != buildLine {
				// The op issues from a line the run has not fetched yet:
				// record a fetch point at its issue offset for the plan
				// gate to consult the I$ live, or end the run at the
				// crossing when the plan's fetch budget is full.
				if fpN == planFetchCap {
					break seg
				}
				c.planFetch[fpN], c.planFetchPC[fpN] = uint16(o), pc
				fpN++
				buildLine = pc &^ lineMask
			}
			d := &code[idx]
			in := d.In
			a := c.reg(in.Ra)
			b := c.reg(in.Rb)
			next := pc + 4
			extra := int(d.Meta.Cyc) - 1
			cond, ind := false, false

			switch in.Op {
			case isa.NOP:

			case isa.J:
				next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
				extra += c.timeJump
			case isa.JAL:
				c.setReg(isa.LR, pc+4)
				next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
				extra += c.timeJump
			case isa.JR:
				next = a
				extra += c.timeJump
				ind = true
			case isa.JALR:
				c.setReg(in.Rd, pc+4)
				next = a
				extra += c.timeJump
				ind = true
			case isa.BF, isa.BNF:
				taken := c.Flag == (in.Op == isa.BF)
				if taken {
					next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
					extra += c.timeBranch
				}
				cond = true

			case isa.SFEQ:
				c.Flag = a == b
			case isa.SFNE:
				c.Flag = a != b
			case isa.SFLTS:
				c.Flag = int32(a) < int32(b)
			case isa.SFLES:
				c.Flag = int32(a) <= int32(b)
			case isa.SFGTS:
				c.Flag = int32(a) > int32(b)
			case isa.SFGES:
				c.Flag = int32(a) >= int32(b)
			case isa.SFLTU:
				c.Flag = a < b
			case isa.SFLEU:
				c.Flag = a <= b
			case isa.SFGTU:
				c.Flag = a > b
			case isa.SFGEU:
				c.Flag = a >= b
			case isa.SFEQI:
				c.Flag = a == uint32(in.Imm)
			case isa.SFNEI:
				c.Flag = a != uint32(in.Imm)
			case isa.SFLTSI:
				c.Flag = int32(a) < in.Imm
			case isa.SFLESI:
				c.Flag = int32(a) <= in.Imm
			case isa.SFGTSI:
				c.Flag = int32(a) > in.Imm
			case isa.SFGESI:
				c.Flag = int32(a) >= in.Imm
			case isa.SFLTUI:
				c.Flag = a < uint32(in.Imm)
			case isa.SFGEUI:
				c.Flag = a >= uint32(in.Imm)

			case isa.ADD:
				c.setReg(in.Rd, a+b)
			case isa.SUB:
				c.setReg(in.Rd, a-b)
			case isa.AND:
				c.setReg(in.Rd, a&b)
			case isa.OR:
				c.setReg(in.Rd, a|b)
			case isa.XOR:
				c.setReg(in.Rd, a^b)
			case isa.SLL:
				c.setReg(in.Rd, a<<(b&31))
			case isa.SRL:
				c.setReg(in.Rd, a>>(b&31))
			case isa.SRA:
				c.setReg(in.Rd, uint32(int32(a)>>(b&31)))
			case isa.MUL:
				c.setReg(in.Rd, uint32(int32(a)*int32(b)))
			case isa.DIV:
				c.setReg(in.Rd, divS(a, b))
			case isa.DIVU:
				c.setReg(in.Rd, divU(a, b))
			case isa.MIN:
				if int32(a) < int32(b) {
					c.setReg(in.Rd, a)
				} else {
					c.setReg(in.Rd, b)
				}
			case isa.MAX:
				if int32(a) > int32(b) {
					c.setReg(in.Rd, a)
				} else {
					c.setReg(in.Rd, b)
				}
			case isa.MINU:
				if a < b {
					c.setReg(in.Rd, a)
				} else {
					c.setReg(in.Rd, b)
				}
			case isa.MAXU:
				if a > b {
					c.setReg(in.Rd, a)
				} else {
					c.setReg(in.Rd, b)
				}
			case isa.MAC:
				c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))+int32(a)*int32(b)))
			case isa.MSU:
				c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))-int32(a)*int32(b)))
			case isa.SEXTB:
				c.setReg(in.Rd, uint32(int32(int8(a))))
			case isa.SEXTH:
				c.setReg(in.Rd, uint32(int32(int16(a))))

			case isa.ADDI:
				c.setReg(in.Rd, a+uint32(in.Imm))
			case isa.ANDI:
				c.setReg(in.Rd, a&uint32(in.Imm))
			case isa.ORI:
				c.setReg(in.Rd, a|uint32(in.Imm))
			case isa.XORI:
				c.setReg(in.Rd, a^uint32(in.Imm))
			case isa.SLLI:
				c.setReg(in.Rd, a<<(uint32(in.Imm)&31))
			case isa.SRLI:
				c.setReg(in.Rd, a>>(uint32(in.Imm)&31))
			case isa.SRAI:
				c.setReg(in.Rd, uint32(int32(a)>>(uint32(in.Imm)&31)))
			case isa.MOVHI:
				c.setReg(in.Rd, uint32(in.Imm)<<16)
			case isa.ORIL:
				c.setReg(in.Rd, c.reg(in.Rd)|uint32(in.Imm)&0xffff)

			case isa.MACS:
				c.Acc += int64(int32(a)) * int64(int32(b))
			case isa.MACU:
				c.Acc += int64(uint64(a) * uint64(b))
			case isa.MACCLR:
				c.Acc = 0
			case isa.MACRDL:
				c.setReg(in.Rd, uint32(c.Acc))
			case isa.MACRDH:
				c.setReg(in.Rd, uint32(uint64(c.Acc)>>32))

			case isa.DOTP4B:
				s := int32(c.reg(in.Rd))
				s += int32(int8(a)) * int32(int8(b))
				s += int32(int8(a>>8)) * int32(int8(b>>8))
				s += int32(int8(a>>16)) * int32(int8(b>>16))
				s += int32(int8(a>>24)) * int32(int8(b>>24))
				c.setReg(in.Rd, uint32(s))
			case isa.DOTP2H:
				s := int32(c.reg(in.Rd))
				s += int32(int16(a)) * int32(int16(b))
				s += int32(int16(a>>16)) * int32(int16(b>>16))
				c.setReg(in.Rd, uint32(s))
			case isa.ADD4B:
				out := uint32(uint8(a + b))
				out |= uint32(uint8(a>>8+b>>8)) << 8
				out |= uint32(uint8(a>>16+b>>16)) << 16
				out |= uint32(uint8(a>>24+b>>24)) << 24
				c.setReg(in.Rd, out)
			case isa.SUB4B:
				out := uint32(uint8(a - b))
				out |= uint32(uint8(a>>8-b>>8)) << 8
				out |= uint32(uint8(a>>16-b>>16)) << 16
				out |= uint32(uint8(a>>24-b>>24)) << 24
				c.setReg(in.Rd, out)
			case isa.ADD2H:
				out := uint32(uint16(a + b))
				out |= uint32(uint16(a>>16+b>>16)) << 16
				c.setReg(in.Rd, out)
			case isa.SUB2H:
				out := uint32(uint16(a - b))
				out |= uint32(uint16(a>>16-b>>16)) << 16
				c.setReg(in.Rd, out)
			case isa.SRA2H:
				sh := b & 15
				out := uint32(uint16(int16(a) >> sh))
				out |= uint32(uint16(int16(a>>16)>>sh)) << 16
				c.setReg(in.Rd, out)

			case isa.LPSETUP:
				i := int(in.Rd)
				c.lp[i] = hwLoop{
					start: pc + 4,
					end:   pc + 4 + uint32(in.Imm)*4,
					count: a,
				}
				if a == 0 {
					next = pc + 4 + uint32(in.Imm)*4
					c.lpEnd[i] = lpInactive
				} else {
					c.lpEnd[i] = c.lp[i].end
				}

			default:
				break seg
			}

			planIssue[o>>6] |= uint64(1) << (o & 63)
			o++
			if extra > 0 {
				// Trailing cycles of a multi-cycle op or taken-branch
				// penalty: Issue-class stalls, the clear bits of the plan
				// window.
				o += uint64(extra)
			}
			if next == c.lpEnd[0] || next == c.lpEnd[1] {
				next = c.lpWrap(next)
			}
			idx++
			if next != pc+4 {
				// Taken branch, jump or hardware-loop wraparound: the
				// segment ends; chain when the superblock tier admits the
				// target — unconditional edges statically, conditional
				// ones once hot, indirect jumps never (their targets are
				// not statically predictable control flow).
				pc = next
				if !c.superOn || ind || (cond && !c.hotEdge(idx-1)) {
					break seg
				}
				nidx, nend, ok := c.chainTo(pc, o)
				if !ok {
					break seg
				}
				idx, end = nidx, nend
				continue seg
			}
			pc = next
			if cond {
				// Fall-through conditional: the run still ends at the
				// branch inclusively; the fall-through edge chains under
				// the same hot counter as the taken one.
				if !c.superOn || !c.hotEdge(idx-1) {
					break seg
				}
				nidx, nend, ok := c.chainTo(pc, o)
				if !ok {
					break seg
				}
				idx, end = nidx, nend
				continue seg
			}
		}
		// Natural segment end: the Multi run was exhausted without a
		// control transfer — the successor heads its own run (a clamp
		// cut, or a mem-led / fuse-break / illegal leader) or, first
		// tier, the fetch line ended. Chain through clamp cuts;
		// everything else falls back to the stepped path.
		if lineCut || !c.superOn {
			break
		}
		nidx, nend, ok := c.chainTo(pc, o)
		if !ok {
			break
		}
		idx, end = nidx, nend
	}

done:
	if o == 0 {
		return 0, false
	}
	c.PC = pc
	// Charge the dispatch cycle now (always an issue: the first op's
	// hazard was resolved by Step before dispatch); defer the rest of the
	// window to the charge plan.
	c.Stats.Active++
	c.Stats.Retired++
	if ob := c.Obs; ob != nil {
		ob.Tick(obs.Issue)
	}
	if o > 1 {
		c.stallUntil = now + o
		c.stallClass = obs.Issue
		c.planOn = true
		c.planStart = now
		c.planCursor = now + 1
		c.planIssue, c.planLU, c.planEM = planIssue, planLU, planEM
		c.planFetchN, c.planFetchI, c.planICStall = fpN, 0, 0
		c.planFetchAt = NextEventNever
		if fpN > 0 {
			// The hint caps at the first fetch point: the core touches
			// the shared I$ there and must be stepped live at that cycle.
			c.planFetchAt = now + uint64(c.planFetch[0])
			return c.planFetchAt, true
		}
		return now + o, true
	}
	return now + 1, true
}

// runFusedSolo executes straight-line code from the current PC while the
// core is the cluster's sole actor until winHorizon (everyone else
// halted, asleep or mid-stall, DMA idle — maintained by the cluster in
// c.Solo/SetSoloWindow): bank arbitration cannot deny the only
// requester, so memory accesses complete anywhere in the run, and taken
// branches and hardware-loop wraparounds are chased instead of ending
// it. The whole window is batch-charged at exit (per-class counters,
// clamped against the run-loop horizon so a maxCycles budget cuts the
// charges exactly where it would have cut stepped execution — but NOT
// against the solo window end: the cycles past it are still simulated,
// so a multi-cycle tail spilling across the window end is charged in
// full) and stallAccounted tells Step's gate and CreditIdle the window
// is already paid for.
//
// Fetch-line boundaries do not end a solo run: the core is the cluster's
// only agent, so consulting the shared I$ at the exact issue cycle is
// indistinguishable from the stepped fetch — a hit is free (Hits counts),
// a miss charges its refill window here (class ICache) and the chase
// resumes at the refill-complete cycle, exactly as the stepped stall gate
// would have. Only a miss whose refill lands past the issue limit hands
// back to the stepped path mid-refill (with fetchedLine unset, so the
// stepped retry re-fetches and scores the same hit).
//
// The run ends at the issue limit (run-loop horizon or solo window end,
// whichever is earlier), at a fuse-break or illegal or unknown
// instruction, and at any non-TCDM or faulting access — all handed back
// to the stepped path at their exact cycle.
func (c *Core) runFusedSolo(now uint64) (uint64, bool) {
	if c.Trace != nil {
		return 0, false
	}
	code := c.code
	pc := c.PC
	t := now
	horizon := c.horizon
	lim := horizon
	if c.winHorizon < lim {
		lim = c.winHorizon
	}
	idx := (pc - c.base) / 4
	var nIssue, nStall, cLU, cEM, cIC uint64

loop:
	for t < lim {
		if idx >= uint32(len(code)) {
			break
		}
		if ic := c.IC; nIssue > 0 && ic != nil &&
			(c.FetchLineMask == 0 || pc&^c.FetchLineMask != c.fetchedLine) {
			if !c.superOn {
				break // first tier: solo runs stay within one fetch line
			}
			// Crossed into a new fetch line: mirror the stepped fetch,
			// including its retry-on-refill shape (miss, stall to the
			// refill-complete cycle, re-fetch scoring a hit). Probe is
			// the inlined ready-hit fast path, as in the stepped fetch.
			for !ic.Probe(pc, t) {
				done := ic.Fetch(pc, t)
				if done <= t {
					break
				}
				ch := done - t
				if t+ch > horizon {
					ch = horizon - t
				}
				nStall += ch
				cIC += ch
				if ob := c.Obs; ob != nil && ob.TL != nil {
					ob.TL.Span(ob.Tid, "I$ refill", "stall", t, done, nil)
				}
				t = done
				if t >= lim {
					break loop
				}
			}
			c.fetchedLine = pc &^ c.FetchLineMask
		}
		d := &code[idx]
		m := d.Meta
		if m.Flags&(MetaIllegal|MetaFuseBreak) != 0 {
			break
		}
		in := d.In

		// Load-use hazard against the previous in-run load (the first op
		// cannot hazard: Step resolved its gate before dispatching).
		if c.lastLoadArmed {
			c.lastLoadArmed = false
			if c.loadUse > 0 && m.ReadMask&(1<<c.lastLoadReg) != 0 {
				ch := c.loadUse
				if t+ch > horizon {
					ch = horizon - t
				}
				nStall += ch
				cLU += ch
				t += c.loadUse
				if t >= lim {
					break
				}
			}
		}

		if m.Flags&MetaMem != 0 {
			size := uint32(m.Size)
			var addr uint32
			if m.Flags&MetaPostIncr != 0 {
				addr = c.reg(in.Ra)
			} else {
				addr = c.reg(in.Ra) + uint32(in.Imm)
			}
			if m.Flags&MetaChkAlign != 0 && addr&(size-1) != 0 {
				break // fault via the stepped path at the exact cycle
			}
			tm := c.TCDM
			if tm == nil || !tm.Contains(addr, size) {
				break // env dispatch (event unit, DMA, SoC, L2) steps
			}
			// The sole requester always wins arbitration: count the access
			// without the bank Request (whose per-cycle conflict state only
			// the cluster loop resets).
			tm.Accesses++
			if m.Flags&MetaStore != 0 {
				tm.Write(addr, size, c.reg(in.Rb))
			} else {
				rdata := tm.Read(addr, size)
				var v uint32
				switch in.Op {
				case isa.LBZ, isa.LBZP:
					v = rdata & 0xff
				case isa.LBS, isa.LBSP:
					v = uint32(int32(int8(rdata)))
				case isa.LHZ, isa.LHZP:
					v = rdata & 0xffff
				case isa.LHS, isa.LHSP:
					v = uint32(int32(int16(rdata)))
				default:
					v = rdata
				}
				c.setReg(in.Rd, v)
				c.lastLoadReg = in.Rd
				c.lastLoadArmed = true
			}
			if m.Flags&MetaPostIncr != 0 {
				c.setReg(in.Ra, c.reg(in.Ra)+uint32(in.Imm))
			}
			nIssue++
			t++
			if addr&(size-1) != 0 {
				// Unaligned access: second bank cycle, attributed ExtMem.
				if t < horizon {
					nStall++
					cEM++
				}
				t++
			}
			next := pc + 4
			if next == c.lpEnd[0] || next == c.lpEnd[1] {
				next = c.lpWrap(next)
			}
			if next == pc+4 {
				idx++
			} else {
				idx = (next - c.base) / 4
			}
			pc = next
			continue
		}

		// Non-memory execute: the switch mirrors the stepped one in core.go
		// exactly; TRAP, WFE and MFSPR carry MetaFuseBreak and never reach
		// it, unknown opcodes end the run so the stepped path faults at the
		// exact cycle.
		a := c.reg(in.Ra)
		b := c.reg(in.Rb)
		next := pc + 4
		extra := int(m.Cyc) - 1

		switch in.Op {
		case isa.NOP:

		case isa.J:
			next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
			extra += c.timeJump
		case isa.JAL:
			c.setReg(isa.LR, pc+4)
			next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
			extra += c.timeJump
		case isa.JR:
			next = a
			extra += c.timeJump
		case isa.JALR:
			c.setReg(in.Rd, pc+4)
			next = a
			extra += c.timeJump
		case isa.BF, isa.BNF:
			taken := c.Flag == (in.Op == isa.BF)
			if taken {
				next = uint32(int64(pc) + 4 + int64(in.Imm)*4)
				extra += c.timeBranch
			}

		case isa.SFEQ:
			c.Flag = a == b
		case isa.SFNE:
			c.Flag = a != b
		case isa.SFLTS:
			c.Flag = int32(a) < int32(b)
		case isa.SFLES:
			c.Flag = int32(a) <= int32(b)
		case isa.SFGTS:
			c.Flag = int32(a) > int32(b)
		case isa.SFGES:
			c.Flag = int32(a) >= int32(b)
		case isa.SFLTU:
			c.Flag = a < b
		case isa.SFLEU:
			c.Flag = a <= b
		case isa.SFGTU:
			c.Flag = a > b
		case isa.SFGEU:
			c.Flag = a >= b
		case isa.SFEQI:
			c.Flag = a == uint32(in.Imm)
		case isa.SFNEI:
			c.Flag = a != uint32(in.Imm)
		case isa.SFLTSI:
			c.Flag = int32(a) < in.Imm
		case isa.SFLESI:
			c.Flag = int32(a) <= in.Imm
		case isa.SFGTSI:
			c.Flag = int32(a) > in.Imm
		case isa.SFGESI:
			c.Flag = int32(a) >= in.Imm
		case isa.SFLTUI:
			c.Flag = a < uint32(in.Imm)
		case isa.SFGEUI:
			c.Flag = a >= uint32(in.Imm)

		case isa.ADD:
			c.setReg(in.Rd, a+b)
		case isa.SUB:
			c.setReg(in.Rd, a-b)
		case isa.AND:
			c.setReg(in.Rd, a&b)
		case isa.OR:
			c.setReg(in.Rd, a|b)
		case isa.XOR:
			c.setReg(in.Rd, a^b)
		case isa.SLL:
			c.setReg(in.Rd, a<<(b&31))
		case isa.SRL:
			c.setReg(in.Rd, a>>(b&31))
		case isa.SRA:
			c.setReg(in.Rd, uint32(int32(a)>>(b&31)))
		case isa.MUL:
			c.setReg(in.Rd, uint32(int32(a)*int32(b)))
		case isa.DIV:
			c.setReg(in.Rd, divS(a, b))
		case isa.DIVU:
			c.setReg(in.Rd, divU(a, b))
		case isa.MIN:
			if int32(a) < int32(b) {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAX:
			if int32(a) > int32(b) {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MINU:
			if a < b {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAXU:
			if a > b {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAC:
			c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))+int32(a)*int32(b)))
		case isa.MSU:
			c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))-int32(a)*int32(b)))
		case isa.SEXTB:
			c.setReg(in.Rd, uint32(int32(int8(a))))
		case isa.SEXTH:
			c.setReg(in.Rd, uint32(int32(int16(a))))

		case isa.ADDI:
			c.setReg(in.Rd, a+uint32(in.Imm))
		case isa.ANDI:
			c.setReg(in.Rd, a&uint32(in.Imm))
		case isa.ORI:
			c.setReg(in.Rd, a|uint32(in.Imm))
		case isa.XORI:
			c.setReg(in.Rd, a^uint32(in.Imm))
		case isa.SLLI:
			c.setReg(in.Rd, a<<(uint32(in.Imm)&31))
		case isa.SRLI:
			c.setReg(in.Rd, a>>(uint32(in.Imm)&31))
		case isa.SRAI:
			c.setReg(in.Rd, uint32(int32(a)>>(uint32(in.Imm)&31)))
		case isa.MOVHI:
			c.setReg(in.Rd, uint32(in.Imm)<<16)
		case isa.ORIL:
			c.setReg(in.Rd, c.reg(in.Rd)|uint32(in.Imm)&0xffff)

		case isa.MACS:
			c.Acc += int64(int32(a)) * int64(int32(b))
		case isa.MACU:
			c.Acc += int64(uint64(a) * uint64(b))
		case isa.MACCLR:
			c.Acc = 0
		case isa.MACRDL:
			c.setReg(in.Rd, uint32(c.Acc))
		case isa.MACRDH:
			c.setReg(in.Rd, uint32(uint64(c.Acc)>>32))

		case isa.DOTP4B:
			s := int32(c.reg(in.Rd))
			s += int32(int8(a)) * int32(int8(b))
			s += int32(int8(a>>8)) * int32(int8(b>>8))
			s += int32(int8(a>>16)) * int32(int8(b>>16))
			s += int32(int8(a>>24)) * int32(int8(b>>24))
			c.setReg(in.Rd, uint32(s))
		case isa.DOTP2H:
			s := int32(c.reg(in.Rd))
			s += int32(int16(a)) * int32(int16(b))
			s += int32(int16(a>>16)) * int32(int16(b>>16))
			c.setReg(in.Rd, uint32(s))
		case isa.ADD4B:
			out := uint32(uint8(a + b))
			out |= uint32(uint8(a>>8+b>>8)) << 8
			out |= uint32(uint8(a>>16+b>>16)) << 16
			out |= uint32(uint8(a>>24+b>>24)) << 24
			c.setReg(in.Rd, out)
		case isa.SUB4B:
			out := uint32(uint8(a - b))
			out |= uint32(uint8(a>>8-b>>8)) << 8
			out |= uint32(uint8(a>>16-b>>16)) << 16
			out |= uint32(uint8(a>>24-b>>24)) << 24
			c.setReg(in.Rd, out)
		case isa.ADD2H:
			out := uint32(uint16(a + b))
			out |= uint32(uint16(a>>16+b>>16)) << 16
			c.setReg(in.Rd, out)
		case isa.SUB2H:
			out := uint32(uint16(a - b))
			out |= uint32(uint16(a>>16-b>>16)) << 16
			c.setReg(in.Rd, out)
		case isa.SRA2H:
			sh := b & 15
			out := uint32(uint16(int16(a) >> sh))
			out |= uint32(uint16(int16(a>>16)>>sh)) << 16
			c.setReg(in.Rd, out)

		case isa.LPSETUP:
			i := int(in.Rd)
			c.lp[i] = hwLoop{
				start: pc + 4,
				end:   pc + 4 + uint32(in.Imm)*4,
				count: a,
			}
			if a == 0 {
				next = pc + 4 + uint32(in.Imm)*4
				c.lpEnd[i] = lpInactive
			} else {
				c.lpEnd[i] = c.lp[i].end
			}

		default:
			break loop
		}

		nIssue++
		t++
		if extra > 0 {
			// Trailing cycles of a multi-cycle op or branch penalty: they
			// stall the next issue; charge only what fits the horizon.
			ch := uint64(extra)
			if t+ch > horizon {
				ch = horizon - t
			}
			nStall += ch
			t += uint64(extra)
		}
		if next == c.lpEnd[0] || next == c.lpEnd[1] {
			next = c.lpWrap(next)
		}
		if next == pc+4 {
			idx++
		} else {
			idx = (next - c.base) / 4
		}
		pc = next
	}

	if nIssue == 0 {
		return 0, false
	}
	c.PC = pc
	c.Stats.Active += nIssue
	c.Stats.Retired += nIssue
	c.Stats.Stall += nStall
	if ob := c.Obs; ob != nil {
		ob.Credit(obs.Issue, nIssue+nStall-cLU-cEM-cIC)
		if cLU > 0 {
			ob.Credit(obs.LoadUse, cLU)
		}
		if cEM > 0 {
			ob.Credit(obs.ExtMem, cEM)
		}
		if cIC > 0 {
			ob.Credit(obs.ICache, cIC)
		}
	}
	if t > now+1 {
		c.stallUntil = t
		c.stallClass = obs.Issue
		c.stallAccounted = true
		return t, true
	}
	return now + 1, true
}
