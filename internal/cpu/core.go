// Package cpu implements the in-order core model that executes the ISA of
// internal/isa. The same interpreter, parameterized by an isa.Target,
// models the OR10N cores of the PULP cluster (with MAC, SIMD, hardware
// loops and post-increment addressing), the plain-RISC configuration used
// to count Table I's RISC operations, and the Cortex-M3/M4 hosts.
//
// The core is cycle-stepped: the surrounding cluster calls Step once per
// cycle, and memory accesses go through an environment interface that
// performs TCDM bank arbitration, I/O dispatch and sleep control.
package cpu

import (
	"fmt"

	"hetsim/internal/isa"
)

// Status is the outcome of a data-memory access attempt.
type Status uint8

const (
	// AccessOK: the access completed this cycle (extra pipeline cycles may
	// still be reported separately).
	AccessOK Status = iota
	// AccessRetry: structural stall (bank conflict, mutex spin); the core
	// retries the same access next cycle.
	AccessRetry
	// AccessSleepBarrier: the store was a barrier arrival that did not
	// complete the barrier; the core must sleep until woken.
	AccessSleepBarrier
)

// Env is the cluster-side environment a core executes in.
type Env interface {
	// Access performs a data access for the given core at the current
	// cycle. extra is the number of additional stall cycles the access
	// costs beyond the issuing cycle (e.g. L2 latency).
	Access(core int, store bool, addr, size, wdata uint32) (rdata uint32, extra int, st Status, err error)
	// WFE reports whether the core must sleep (no pending event latch).
	WFE(core int) (sleep bool)
	// SPR reads a special-purpose register.
	SPR(core int, spr int32) uint32
}

// SleepKind distinguishes why a core is asleep.
type SleepKind uint8

const (
	Awake SleepKind = iota
	SleepEvent
	SleepBarrier
)

type hwLoop struct {
	start, end uint32
	count      uint32
}

type memOp struct {
	in    isa.Inst
	addr  uint32
	size  uint32
	store bool
	wdata uint32
}

// Stats are the core's performance counters (the per-component activity
// ratios chi of the paper's power model are derived from these).
type Stats struct {
	Retired uint64 // instructions retired
	Active  uint64 // cycles doing work (issue or multi-cycle execute)
	Stall   uint64 // cycles stalled (conflicts, hazards, I$ misses)
	Sleep   uint64 // cycles asleep in WFE/barrier
}

// Core is one simulated core.
type Core struct {
	ID     int
	Target isa.Target

	Regs [isa.NumRegs]uint32
	PC   uint32
	Flag bool
	Acc  int64 // 64-bit MAC accumulator (M-profile)

	lp [2]hwLoop

	env  Env
	text []isa.Inst
	base uint32

	// Pre-resolved per-opcode tables (the Target struct is too large to
	// copy on every instruction).
	supported [isa.NumOps]bool
	opCycles  [isa.NumOps]uint8

	// Fetch timing: cluster-provided callback; returns the cycle at which
	// the fetch of pc completes (== now on a hit). Nil = perfect fetch.
	Fetch func(pc uint32, now uint64) uint64
	// FetchLineMask models the core's line prefetch buffer: while the PC
	// stays within the last fetched line (pc &^ mask unchanged), the cache
	// is not consulted again. 0 disables the buffer.
	FetchLineMask uint32
	fetchedLine   uint32

	sleep      SleepKind
	stallUntil uint64
	pending    memOp
	hasPending bool

	lastLoadReg   isa.Reg
	lastLoadArmed bool

	Halted   bool
	TrapCode int32
	Err      error

	// Trace, when non-nil, is called once per retired instruction (before
	// the PC advances). Nil costs nothing on the hot path.
	Trace func(cycle uint64, pc uint32, in isa.Inst)

	Stats Stats
}

// New builds a core with the given id and target, attached to env.
func New(id int, target isa.Target, env Env) *Core {
	c := &Core{ID: id, Target: target, env: env}
	for op := isa.Op(0); op < isa.Op(isa.NumOps); op++ {
		c.supported[op] = target.Supports(op)
		c.opCycles[op] = uint8(target.OpCycles(op))
	}
	return c
}

// SetProgram installs the pre-decoded text segment.
func (c *Core) SetProgram(text []isa.Inst, base uint32) {
	c.text = text
	c.base = base
}

// Start resets architectural state and begins execution at entry.
func (c *Core) Start(entry uint32) {
	c.Regs = [isa.NumRegs]uint32{}
	c.PC = entry
	c.Flag = false
	c.Acc = 0
	c.lp = [2]hwLoop{}
	c.sleep = Awake
	c.stallUntil = 0
	c.hasPending = false
	c.fetchedLine = ^uint32(0)
	c.lastLoadArmed = false
	c.Halted = false
	c.TrapCode = 0
	c.Err = nil
}

// Asleep returns the core's sleep state.
func (c *Core) Asleep() SleepKind { return c.sleep }

// Sleeping reports whether the core is asleep.
func (c *Core) Sleeping() bool { return c.sleep != Awake }

// Wake wakes a sleeping core; it resumes after the target's wake-up
// latency counted from cycle now.
func (c *Core) Wake(now uint64) {
	if c.sleep == Awake {
		return
	}
	c.sleep = Awake
	c.stallUntil = now + uint64(c.Target.Time.WakeUp)
}

// SleepNow forces the core to sleep (used for cores outside the team).
func (c *Core) SleepNow(kind SleepKind) { c.sleep = kind }

func (c *Core) fail(err error) {
	c.Halted = true
	if c.Err == nil {
		c.Err = fmt.Errorf("core %d at pc=%#x: %w", c.ID, c.PC, err)
	}
}

func (c *Core) reg(r isa.Reg) uint32 { return c.Regs[r] }

func (c *Core) setReg(r isa.Reg, v uint32) {
	if r != isa.R0 {
		c.Regs[r] = v
	}
}

// Step advances the core by one cycle.
func (c *Core) Step(now uint64) {
	if c.Halted {
		return
	}
	if c.sleep != Awake {
		c.Stats.Sleep++
		return
	}
	if c.stallUntil > now {
		c.Stats.Stall++
		return
	}
	if c.hasPending {
		c.retryMem(now)
		return
	}

	// Fetch: the line prefetch buffer short-circuits the shared cache
	// while execution stays within the current line.
	if c.Fetch != nil {
		line := c.PC &^ c.FetchLineMask
		if c.FetchLineMask == 0 || line != c.fetchedLine {
			if done := c.Fetch(c.PC, now); done > now {
				c.stallUntil = done
				c.Stats.Stall++
				return
			}
			c.fetchedLine = line
		}
	}
	idx := (c.PC - c.base) / 4
	if c.PC < c.base || idx >= uint32(len(c.text)) {
		c.fail(fmt.Errorf("fetch outside text segment"))
		return
	}
	in := c.text[idx]

	if !c.supported[in.Op] {
		c.fail(fmt.Errorf("illegal instruction for target %s: %v", c.Target.Name, in))
		return
	}

	// Load-use hazard: one bubble if the previous instruction was a load
	// and this one consumes its result.
	if c.lastLoadArmed {
		c.lastLoadArmed = false
		if c.Target.Time.LoadUse > 0 && readsReg(in, c.lastLoadReg) {
			c.stallUntil = now + uint64(c.Target.Time.LoadUse)
			c.Stats.Stall++
			return
		}
	}

	c.execute(in, now)
}

// readsReg reports whether the instruction sources register r (r != R0).
func readsReg(in isa.Inst, r isa.Reg) bool {
	if r == isa.R0 {
		return false
	}
	switch in.Op.Format() {
	case isa.FmtR:
		if in.Ra == r || in.Rb == r {
			return true
		}
		// Accumulating ops also read their destination.
		switch in.Op {
		case isa.MAC, isa.MSU, isa.DOTP4B, isa.DOTP2H:
			return in.Rd == r
		}
		return false
	case isa.FmtI:
		if in.Op == isa.ORIL { // rd is read-modify-write
			return in.Rd == r
		}
		return in.Ra == r
	case isa.FmtIH:
		return in.Op == isa.ORIL && in.Rd == r
	case isa.FmtS:
		return in.Ra == r || in.Rb == r
	case isa.FmtJR:
		return in.Ra == r
	case isa.FmtLP:
		return in.Ra == r
	}
	return false
}

// advancePC computes the next PC, applying hardware-loop wraparound.
func (c *Core) advancePC(next uint32) {
	for i := 0; i < 2; i++ {
		l := &c.lp[i]
		if l.count > 0 && next == l.end {
			if l.count > 1 {
				l.count--
				next = l.start
			} else {
				l.count = 0
			}
			break
		}
	}
	c.PC = next
}

func (c *Core) execute(in isa.Inst, now uint64) {
	if in.Op.IsLoad() || in.Op.IsStore() {
		c.issueMem(in, now) // stats counted on completion
		return
	}
	c.Stats.Active++
	c.Stats.Retired++
	if c.Trace != nil {
		c.Trace(now, c.PC, in)
	}

	a := c.reg(in.Ra)
	b := c.reg(in.Rb)
	next := c.PC + 4
	extra := int(c.opCycles[in.Op]) - 1

	switch in.Op {
	case isa.NOP:

	case isa.J:
		next = uint32(int64(c.PC) + 4 + int64(in.Imm)*4)
		extra += c.Target.Time.Jump
	case isa.JAL:
		c.setReg(isa.LR, c.PC+4)
		next = uint32(int64(c.PC) + 4 + int64(in.Imm)*4)
		extra += c.Target.Time.Jump
	case isa.JR:
		next = a
		extra += c.Target.Time.Jump
	case isa.JALR:
		c.setReg(in.Rd, c.PC+4)
		next = a
		extra += c.Target.Time.Jump
	case isa.BF, isa.BNF:
		taken := c.Flag == (in.Op == isa.BF)
		if taken {
			next = uint32(int64(c.PC) + 4 + int64(in.Imm)*4)
			extra += c.Target.Time.BranchTaken
		}
	case isa.TRAP:
		c.Halted = true
		c.TrapCode = in.Imm
		return
	case isa.WFE:
		if c.env.WFE(c.ID) {
			c.sleep = SleepEvent
		}
		c.advancePC(next)
		return

	case isa.SFEQ:
		c.Flag = a == b
	case isa.SFNE:
		c.Flag = a != b
	case isa.SFLTS:
		c.Flag = int32(a) < int32(b)
	case isa.SFLES:
		c.Flag = int32(a) <= int32(b)
	case isa.SFGTS:
		c.Flag = int32(a) > int32(b)
	case isa.SFGES:
		c.Flag = int32(a) >= int32(b)
	case isa.SFLTU:
		c.Flag = a < b
	case isa.SFLEU:
		c.Flag = a <= b
	case isa.SFGTU:
		c.Flag = a > b
	case isa.SFGEU:
		c.Flag = a >= b
	case isa.SFEQI:
		c.Flag = a == uint32(in.Imm)
	case isa.SFNEI:
		c.Flag = a != uint32(in.Imm)
	case isa.SFLTSI:
		c.Flag = int32(a) < in.Imm
	case isa.SFLESI:
		c.Flag = int32(a) <= in.Imm
	case isa.SFGTSI:
		c.Flag = int32(a) > in.Imm
	case isa.SFGESI:
		c.Flag = int32(a) >= in.Imm
	case isa.SFLTUI:
		c.Flag = a < uint32(in.Imm)
	case isa.SFGEUI:
		c.Flag = a >= uint32(in.Imm)

	case isa.ADD:
		c.setReg(in.Rd, a+b)
	case isa.SUB:
		c.setReg(in.Rd, a-b)
	case isa.AND:
		c.setReg(in.Rd, a&b)
	case isa.OR:
		c.setReg(in.Rd, a|b)
	case isa.XOR:
		c.setReg(in.Rd, a^b)
	case isa.SLL:
		c.setReg(in.Rd, a<<(b&31))
	case isa.SRL:
		c.setReg(in.Rd, a>>(b&31))
	case isa.SRA:
		c.setReg(in.Rd, uint32(int32(a)>>(b&31)))
	case isa.MUL:
		c.setReg(in.Rd, uint32(int32(a)*int32(b)))
	case isa.DIV:
		c.setReg(in.Rd, divS(a, b))
	case isa.DIVU:
		c.setReg(in.Rd, divU(a, b))
	case isa.MIN:
		if int32(a) < int32(b) {
			c.setReg(in.Rd, a)
		} else {
			c.setReg(in.Rd, b)
		}
	case isa.MAX:
		if int32(a) > int32(b) {
			c.setReg(in.Rd, a)
		} else {
			c.setReg(in.Rd, b)
		}
	case isa.MINU:
		if a < b {
			c.setReg(in.Rd, a)
		} else {
			c.setReg(in.Rd, b)
		}
	case isa.MAXU:
		if a > b {
			c.setReg(in.Rd, a)
		} else {
			c.setReg(in.Rd, b)
		}
	case isa.MAC:
		c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))+int32(a)*int32(b)))
	case isa.MSU:
		c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))-int32(a)*int32(b)))
	case isa.SEXTB:
		c.setReg(in.Rd, uint32(int32(int8(a))))
	case isa.SEXTH:
		c.setReg(in.Rd, uint32(int32(int16(a))))

	case isa.ADDI:
		c.setReg(in.Rd, a+uint32(in.Imm))
	case isa.ANDI:
		c.setReg(in.Rd, a&uint32(in.Imm))
	case isa.ORI:
		c.setReg(in.Rd, a|uint32(in.Imm))
	case isa.XORI:
		c.setReg(in.Rd, a^uint32(in.Imm))
	case isa.SLLI:
		c.setReg(in.Rd, a<<(uint32(in.Imm)&31))
	case isa.SRLI:
		c.setReg(in.Rd, a>>(uint32(in.Imm)&31))
	case isa.SRAI:
		c.setReg(in.Rd, uint32(int32(a)>>(uint32(in.Imm)&31)))
	case isa.MOVHI:
		c.setReg(in.Rd, uint32(in.Imm)<<16)
	case isa.ORIL:
		c.setReg(in.Rd, c.reg(in.Rd)|uint32(in.Imm)&0xffff)

	case isa.MACS:
		c.Acc += int64(int32(a)) * int64(int32(b))
	case isa.MACU:
		c.Acc += int64(uint64(a) * uint64(b))
	case isa.MACCLR:
		c.Acc = 0
	case isa.MACRDL:
		c.setReg(in.Rd, uint32(c.Acc))
	case isa.MACRDH:
		c.setReg(in.Rd, uint32(uint64(c.Acc)>>32))

	case isa.DOTP4B:
		s := int32(c.reg(in.Rd))
		for i := 0; i < 4; i++ {
			s += int32(int8(a>>(8*i))) * int32(int8(b>>(8*i)))
		}
		c.setReg(in.Rd, uint32(s))
	case isa.DOTP2H:
		s := int32(c.reg(in.Rd))
		for i := 0; i < 2; i++ {
			s += int32(int16(a>>(16*i))) * int32(int16(b>>(16*i)))
		}
		c.setReg(in.Rd, uint32(s))
	case isa.ADD4B:
		c.setReg(in.Rd, lanes4(a, b, func(x, y int32) int32 { return x + y }))
	case isa.SUB4B:
		c.setReg(in.Rd, lanes4(a, b, func(x, y int32) int32 { return x - y }))
	case isa.ADD2H:
		c.setReg(in.Rd, lanes2(a, b, func(x, y int32) int32 { return x + y }))
	case isa.SUB2H:
		c.setReg(in.Rd, lanes2(a, b, func(x, y int32) int32 { return x - y }))
	case isa.SRA2H:
		sh := b & 15
		c.setReg(in.Rd, lanes2(a, 0, func(x, _ int32) int32 { return x >> sh }))

	case isa.LPSETUP:
		i := int(in.Rd)
		c.lp[i] = hwLoop{
			start: c.PC + 4,
			end:   c.PC + 4 + uint32(in.Imm)*4,
			count: a,
		}
		if a == 0 {
			// Zero-trip loop: skip the body entirely.
			next = c.PC + 4 + uint32(in.Imm)*4
			c.lp[i].count = 0
		}

	case isa.MFSPR:
		c.setReg(in.Rd, c.env.SPR(c.ID, in.Imm))

	default:
		c.fail(fmt.Errorf("unimplemented opcode %v", in.Op))
		return
	}

	if extra > 0 {
		// The instruction issued this cycle; extra cycles stall the next one.
		c.stallUntil = now + uint64(extra) + 1
	}
	c.advancePC(next)
}

func lanes4(a, b uint32, f func(x, y int32) int32) uint32 {
	var out uint32
	for i := 0; i < 4; i++ {
		v := f(int32(int8(a>>(8*i))), int32(int8(b>>(8*i))))
		out |= uint32(uint8(v)) << (8 * i)
	}
	return out
}

func lanes2(a, b uint32, f func(x, y int32) int32) uint32 {
	var out uint32
	for i := 0; i < 2; i++ {
		v := f(int32(int16(a>>(16*i))), int32(int16(b>>(16*i))))
		out |= uint32(uint16(v)) << (16 * i)
	}
	return out
}

func divS(a, b uint32) uint32 {
	if b == 0 {
		if int32(a) >= 0 {
			return 0x7fffffff
		}
		return 0x80000000
	}
	if int32(a) == -0x80000000 && int32(b) == -1 {
		return 0x80000000
	}
	return uint32(int32(a) / int32(b))
}

func divU(a, b uint32) uint32 {
	if b == 0 {
		return 0xffffffff
	}
	return a / b
}

// issueMem starts a load/store. On a grant the access completes this cycle;
// on a structural conflict the op parks in pending and retries.
func (c *Core) issueMem(in isa.Inst, now uint64) {
	size := uint32(in.Op.MemSize())
	var addr uint32
	if in.Op.IsPostIncr() {
		addr = c.reg(in.Ra)
	} else {
		addr = c.reg(in.Ra) + uint32(in.Imm)
	}
	if addr%size != 0 && !c.Target.Feat.Unaligned {
		c.fail(fmt.Errorf("unaligned %d-byte access at %#x without unaligned support", size, addr))
		return
	}
	op := memOp{in: in, addr: addr, size: size, store: in.Op.IsStore()}
	if op.store {
		op.wdata = c.reg(in.Rb)
	}
	c.tryMem(op, now)
}

func (c *Core) retryMem(now uint64) {
	op := c.pending
	c.hasPending = false
	c.tryMem(op, now)
}

func (c *Core) tryMem(op memOp, now uint64) {
	rdata, extra, st, err := c.env.Access(c.ID, op.store, op.addr, op.size, op.wdata)
	if err != nil {
		c.fail(err)
		return
	}
	switch st {
	case AccessRetry:
		c.pending = op
		c.hasPending = true
		c.Stats.Stall++
		return
	case AccessSleepBarrier:
		c.sleep = SleepBarrier
		c.Stats.Active++
		c.Stats.Retired++
		c.advancePC(c.PC + 4)
		return
	}

	c.Stats.Active++
	c.Stats.Retired++
	if c.Trace != nil {
		c.Trace(now, c.PC, op.in)
	}
	in := op.in

	if !op.store {
		var v uint32
		switch in.Op {
		case isa.LBZ, isa.LBZP:
			v = rdata & 0xff
		case isa.LBS, isa.LBSP:
			v = uint32(int32(int8(rdata)))
		case isa.LHZ, isa.LHZP:
			v = rdata & 0xffff
		case isa.LHS, isa.LHSP:
			v = uint32(int32(int16(rdata)))
		default:
			v = rdata
		}
		c.setReg(in.Rd, v)
		c.lastLoadReg = in.Rd
		c.lastLoadArmed = true
	}
	if in.Op.IsPostIncr() {
		c.setReg(in.Ra, c.reg(in.Ra)+uint32(in.Imm))
	}
	if op.addr%op.size != 0 {
		extra++ // unaligned access: second bank cycle
	}
	if extra > 0 {
		c.stallUntil = now + uint64(extra) + 1
	}
	c.advancePC(c.PC + 4)
}
