// Package cpu implements the in-order core model that executes the ISA of
// internal/isa. The same interpreter, parameterized by an isa.Target,
// models the OR10N cores of the PULP cluster (with MAC, SIMD, hardware
// loops and post-increment addressing), the plain-RISC configuration used
// to count Table I's RISC operations, and the Cortex-M3/M4 hosts.
//
// The core is cycle-stepped: the surrounding cluster calls Step once per
// cycle, and memory accesses go through an environment interface that
// performs TCDM bank arbitration, I/O dispatch and sleep control.
package cpu

import (
	"fmt"
	"math/bits"

	"hetsim/internal/isa"
	"hetsim/internal/mem"
	"hetsim/internal/obs"
)

// Status is the outcome of a data-memory access attempt.
type Status uint8

const (
	// AccessOK: the access completed this cycle (extra pipeline cycles may
	// still be reported separately).
	AccessOK Status = iota
	// AccessRetry: structural stall (bank conflict, mutex spin); the core
	// retries the same access next cycle.
	AccessRetry
	// AccessSleepBarrier: the store was a barrier arrival that did not
	// complete the barrier; the core must sleep until woken.
	AccessSleepBarrier
	// AccessRetrySync: like AccessRetry, but the denial is a
	// synchronization spin (contended hardware mutex) rather than a bank
	// conflict — the retry cycles attribute to obs.Sync, not obs.Conflict.
	AccessRetrySync
)

// Env is the cluster-side environment a core executes in.
type Env interface {
	// Access performs a data access for the given core at the current
	// cycle. extra is the number of additional stall cycles the access
	// costs beyond the issuing cycle (e.g. L2 latency).
	Access(core int, store bool, addr, size, wdata uint32) (rdata uint32, extra int, st Status, err error)
	// WFE reports whether the core must sleep (no pending event latch).
	WFE(core int) (sleep bool)
	// SPR reads a special-purpose register.
	SPR(core int, spr int32) uint32
}

// SleepKind distinguishes why a core is asleep.
type SleepKind uint8

const (
	Awake SleepKind = iota
	SleepEvent
	SleepBarrier
)

type hwLoop struct {
	start, end uint32
	count      uint32
}

// memOp is a parked (bank-conflicted) access awaiting retry. The hot
// grant path never materializes one: the access travels as scalar
// arguments and only lands here when denied.
type memOp struct {
	in    isa.Inst
	m     InstMeta
	addr  uint32
	wdata uint32
}

// NextEventNever is the step hint of a core that cannot make progress on
// its own (halted, or asleep until an external wake).
const NextEventNever = ^uint64(0)

// Stats are the core's performance counters (the per-component activity
// ratios chi of the paper's power model are derived from these).
type Stats struct {
	Retired uint64 // instructions retired
	Active  uint64 // cycles doing work (issue or multi-cycle execute)
	Stall   uint64 // cycles stalled (conflicts, hazards, I$ misses)
	Sleep   uint64 // cycles asleep in WFE/barrier
}

// Core is one simulated core. Field order is deliberate: the scalars the
// per-cycle Step gate and fetch path touch sit first so they share cache
// lines, followed by the register file and per-instruction state; the
// large, cold Target descriptor and error/trace plumbing go last.
type Core struct {
	PC   uint32
	base uint32

	sleep         SleepKind
	Halted        bool
	hasPending    bool
	lastLoadArmed bool
	lastLoadReg   isa.Reg
	Flag          bool

	// stallAccounted marks the current stallUntil window as pre-charged by
	// a solo fused run (block.go): Step's stall gate and CreditIdle must
	// not charge those cycles again.
	stallAccounted bool
	// planOn marks the plan* fields below as valid: the current stallUntil
	// window came from a multi-core fused run whose charges are deferred —
	// Step's stall gate and CreditIdle charge them cycle-exactly from the
	// plan bitmasks as the window actually elapses (and simply stop if the
	// cluster run ends mid-window, so Stats always cover exactly the
	// simulated cycles).
	planOn bool

	// stallClass is the attribution class of the current stallUntil window
	// (obs.Class). Written whenever stallUntil is set; read by the stall
	// branch of Step and by CreditIdle. Maintained unconditionally (a byte
	// store) so bulk idle credits classify correctly whenever Obs is on.
	stallClass obs.Class

	// FetchLineMask models the core's line prefetch buffer: while the PC
	// stays within the last fetched line (pc &^ mask unchanged), the cache
	// is not consulted again. 0 disables the buffer.
	FetchLineMask uint32
	fetchedLine   uint32

	stallUntil uint64
	code       []Decoded // predecoded text, see Predecode

	// blocks, when non-nil, is the fused-run table over code (block.go):
	// Step dispatches straight-line runs through runFused instead of
	// executing one instruction. The cluster only installs it when faults
	// and tracing are detached and the run loop is event-driven.
	blocks *BlockTable
	// edges, when non-nil, enables the superblock tier (block.go): one
	// saturating counter per instruction, indexed by conditional-branch
	// position, gating when a taken or fall-through edge is hot enough to
	// chain through. Per-core (not shared through the memo): the counters
	// are mutable warm-up state, not compiled output.
	edges []uint8
	// horizon bounds fused execution (SetRunHorizon): no solo-fused
	// instruction issues at or past this cycle. It is the run-loop budget
	// bound — charges for a window the budget cuts off must also be cut.
	horizon uint64
	// winHorizon bounds solo fused execution inside a solo *window*
	// (SetSoloWindow): no instruction issues at or past this cycle because
	// a sibling core resumes there. Unlike horizon it only limits issue —
	// the cycles past it are still simulated, so a multi-cycle tail that
	// spills across the window end is charged in full.
	winHorizon uint64
	// Solo, maintained by the cluster at the end of every cycle, reports
	// that this core is the only possible actor until winHorizon (all
	// sibling cores halted, asleep or mid-stall, DMA idle) — the condition
	// under which a fused run may cross memory accesses, taken branches
	// and loop wraparounds freely. The condition is stable until the
	// window ends or this core itself performs an env access (waking a
	// sibling or starting the DMA), which always ends a fused run first.
	Solo bool

	// IC, when set by the cluster, is the shared instruction cache timing
	// the fetch path consults (a direct pointer rather than a func value:
	// the call is on the per-instruction path). Nil = perfect fetch.
	IC *mem.ICache
	// TCDM, when set by the cluster, short-circuits single-cycle L1
	// accesses past the Env interface dispatch: the core performs bank
	// arbitration and the data access directly, exactly as the cluster's
	// Access would. Accesses outside the TCDM still go through env.
	TCDM *mem.TCDM

	// Obs, when non-nil, receives the per-cycle attribution of this core
	// (DESIGN.md §10). Nil follows the fault-injector idiom: one pointer
	// compare per site, zero cost when observability is detached.
	Obs *obs.CoreObs

	// Pre-resolved target timing (the Target struct is too large to walk
	// on every instruction).
	loadUse    uint64
	timeJump   int
	timeBranch int

	// Deferred charge plan of the current fused multi-core run: bitmasks
	// over cycle offsets from planStart classifying each window cycle
	// (issue / load-use stall / ext-mem stall; clear bits in none of the
	// three are Issue-class stalls). planCursor is the next uncharged
	// cycle: Step's stall gate and CreditIdle consume the window in order,
	// one path or the other charging every simulated cycle exactly once.
	// planWords words give chained superblock runs a 256-cycle window
	// (maxRunSpan spills past the first word); the arrays are embedded in
	// the Core so a fused dispatch never allocates. superOn (EnableSuper)
	// lets runFusedMulti chain segments across control transfers.
	superOn    bool
	planStart  uint64
	planCursor uint64
	planIssue  [planWords]uint64
	planLU     [planWords]uint64
	planEM     [planWords]uint64

	// Fetch points of the current plan: the offsets (relative to
	// planStart) at which chained execution crosses into a new I$ fetch
	// line, with the pc whose line is due. The plan gate consults the
	// shared I$ live at exactly those cycles, in the core's own rotation
	// slot — a hit is free and mutates no I$ state, a miss inserts its
	// refill window into the plan as ICache stall cycles (planICStall
	// counts the remaining ones, the cursor frozen meanwhile) and extends
	// stallUntil — so a chained run's I$ traffic interleaves with the
	// other cores bit-identically to stepped execution. planFetchI is
	// the next pending point and planFetchAt its absolute cycle (the
	// refill-retry cycle mid-refill, NextEventNever when none remain);
	// the step hint (planHint) never reaches past it, so the cluster can
	// neither fast-forward across a fetch point nor grant a sibling a
	// solo window covering one.
	planFetch   [planFetchCap]uint16
	planFetchPC [planFetchCap]uint32
	planFetchN  uint8
	planFetchI  uint8
	planFetchAt uint64
	planICStall uint64

	Regs [isa.NumRegs]uint32
	Acc  int64 // 64-bit MAC accumulator (M-profile)

	lp [2]hwLoop
	// lpEnd[i] mirrors lp[i].end while loop i is active and holds the
	// unreachable lpInactive sentinel otherwise, so the per-instruction
	// wraparound check in advancePC is two compares, no state test.
	lpEnd [2]uint32

	Stats Stats

	env     Env
	pending memOp

	ID       int
	Target   isa.Target
	TrapCode int32
	Err      error

	// Trace, when non-nil, is called once per retired instruction (before
	// the PC advances). Nil costs nothing on the hot path.
	Trace func(cycle uint64, pc uint32, in isa.Inst)

	// SleepHook, when non-nil, is called on every sleep transition: once
	// when the core goes to sleep (sleeping=true, at the transition cycle)
	// and once when it wakes (sleeping=false). Sleep transitions are rare
	// (WFE park, barrier arrival, wake), so the hook is off the hot path;
	// the cluster uses it for sleep/wake trace events and timeline spans.
	SleepHook func(now uint64, kind SleepKind, sleeping bool)
}

// New builds a core with the given id and target, attached to env.
func New(id int, target isa.Target, env Env) *Core {
	return &Core{
		ID:         id,
		Target:     target,
		env:        env,
		loadUse:    uint64(target.Time.LoadUse),
		timeJump:   target.Time.Jump,
		timeBranch: target.Time.BranchTaken,
		horizon:    NextEventNever,
		winHorizon: NextEventNever,
	}
}

// SetProgram installs the text segment, predecoding the per-instruction
// metadata for this core's target.
func (c *Core) SetProgram(text []isa.Inst, base uint32) {
	c.SetPredecoded(Predecode(text, c.Target), base)
}

// SetPredecoded installs an already-predecoded text segment (the cluster
// predecodes once and shares the slice across its cores, which all run the
// same target).
func (c *Core) SetPredecoded(code []Decoded, base uint32) {
	c.code = code
	c.base = base
}

// Start resets architectural state and begins execution at entry.
func (c *Core) Start(entry uint32) {
	c.Regs = [isa.NumRegs]uint32{}
	c.PC = entry
	c.Flag = false
	c.Acc = 0
	c.lp = [2]hwLoop{}
	c.lpEnd = [2]uint32{lpInactive, lpInactive}
	c.sleep = Awake
	c.stallUntil = 0
	c.stallClass = obs.Issue
	c.hasPending = false
	c.fetchedLine = ^uint32(0)
	c.lastLoadArmed = false
	c.stallAccounted = false
	c.planOn = false
	c.winHorizon = NextEventNever
	// c.edges is NOT reset: the hot-edge counters are compile-tier state
	// of the loaded image (like the memoized BlockTable), not architectural
	// state — a restart of the same program keeps its hot traces. They are
	// rebuilt by EnableSuper when a different image is loaded.
	c.Halted = false
	c.TrapCode = 0
	c.Err = nil
}

// Asleep returns the core's sleep state.
func (c *Core) Asleep() SleepKind { return c.sleep }

// Sleeping reports whether the core is asleep.
func (c *Core) Sleeping() bool { return c.sleep != Awake }

// Wake wakes a sleeping core; it resumes after the target's wake-up
// latency counted from cycle now.
func (c *Core) Wake(now uint64) {
	if c.sleep == Awake {
		return
	}
	kind := c.sleep
	c.sleep = Awake
	c.stallUntil = now + uint64(c.Target.Time.WakeUp)
	// Wake-up latency attributes to the synchronization primitive the core
	// was sleeping on: barrier wake-up is Sync, event wake-up is Sleep.
	if kind == SleepBarrier {
		c.stallClass = obs.Sync
	} else {
		c.stallClass = obs.Sleep
	}
	if c.SleepHook != nil {
		c.SleepHook(now, kind, false)
	}
}

// SleepNow forces the core to sleep (used for cores outside the team).
func (c *Core) SleepNow(kind SleepKind) { c.sleep = kind }

func (c *Core) fail(err error) {
	c.Halted = true
	if c.Err == nil {
		c.Err = fmt.Errorf("core %d at pc=%#x: %w", c.ID, c.PC, err)
	}
}

// The fail* helpers build their error values out of line: fmt.Errorf
// argument slices constructed inline would live on the frames of Step and
// execute, growing the prologue every instruction pays for.
func (c *Core) failFetch() uint64 {
	if o := c.Obs; o != nil {
		o.Tick(obs.Issue) // the faulting cycle still counts once
	}
	c.fail(fmt.Errorf("fetch outside text segment"))
	return NextEventNever
}

func (c *Core) failIllegal(in isa.Inst) uint64 {
	if o := c.Obs; o != nil {
		o.Tick(obs.Issue)
	}
	c.fail(fmt.Errorf("illegal instruction for target %s: %v", c.Target.Name, in))
	return NextEventNever
}

func (c *Core) failUnaligned(size, addr uint32) uint64 {
	if o := c.Obs; o != nil {
		o.Tick(obs.Issue)
	}
	c.fail(fmt.Errorf("unaligned %d-byte access at %#x without unaligned support", size, addr))
	return NextEventNever
}

func (c *Core) failOpcode(in isa.Inst) uint64 {
	c.fail(fmt.Errorf("unimplemented opcode %v", in.Op))
	return NextEventNever
}

// reg and setReg mask the register index: Predecode rejects any
// instruction with a register number >= NumRegs as illegal, so the mask
// never wraps on the execute path — it only lets the compiler drop the
// bounds check on every register-file access.
func (c *Core) reg(r isa.Reg) uint32 { return c.Regs[r&(isa.NumRegs-1)] }

func (c *Core) setReg(r isa.Reg, v uint32) {
	if r != isa.R0 {
		c.Regs[r&(isa.NumRegs-1)] = v
	}
}

// Step advances the core by one cycle. It returns the earliest future
// cycle at which the core can make progress on its own: stallUntil for a
// stalled core, now+1 for a core that executed or must retry an access,
// and NextEventNever for a halted or sleeping core (which needs an
// external wake). The cluster aggregates these hints to fast-forward
// windows in which no core can act; the hint may be stale only if another
// core wakes this one later in the same cycle, and that waker's own hint
// is then now+1, which keeps the aggregate conservative.
func (c *Core) Step(now uint64) uint64 {
	if c.Halted {
		if o := c.Obs; o != nil {
			// Keeps the per-core class sum equal to the cluster cycle count
			// while other cores keep running (Stats stay untouched).
			o.Tick(obs.Halted)
		}
		return NextEventNever
	}
	if c.sleep != Awake {
		c.Stats.Sleep++
		if o := c.Obs; o != nil {
			if c.sleep == SleepBarrier {
				o.Tick(obs.Sync)
			} else {
				o.Tick(obs.Sleep)
			}
		}
		return NextEventNever
	}
	if c.stallUntil > now {
		if c.planOn {
			if c.planICStall > 0 {
				// Mid-refill of a fetch-point miss: inserted ICache stall
				// cycles, the plan cursor frozen until the retry (which
				// planFetchAt points at).
				c.planICStall--
				c.Stats.Stall++
				if o := c.Obs; o != nil {
					o.Tick(obs.ICache)
				}
				return c.planFetchAt
			}
			if now == c.planFetchAt {
				// Chained execution crosses into a new fetch line this
				// cycle: consult the shared I$ live, exactly as the
				// stepped fetch path would have at this cycle (a retry
				// after a miss re-fetches here too and scores the hit,
				// matching the stepped resume).
				i := c.planFetchI
				fpc := c.planFetchPC[i]
				if !c.IC.Probe(fpc, now) {
					if done := c.IC.Fetch(fpc, now); done > now {
						c.planICStall = done - now - 1
						c.planFetchAt = done
						c.stallUntil += done - now
						c.Stats.Stall++
						if o := c.Obs; o != nil {
							o.Tick(obs.ICache)
							if o.TL != nil {
								o.TL.Span(o.Tid, "I$ refill", "stall", now, done, nil)
							}
						}
						return done
					}
				}
				c.fetchedLine = fpc &^ c.FetchLineMask
				c.planFetchI = i + 1
				if i+1 < c.planFetchN {
					c.planFetchAt = now + uint64(c.planFetch[i+1]-c.planFetch[i])
				} else {
					c.planFetchAt = NextEventNever
				}
			}
			// Charge this cycle from the fused run's deferred plan: the
			// bit at the cursor offset classifies it as an instruction
			// issue or a stall of a specific class, exactly as stepped
			// execution would have charged it at this cycle.
			off := c.planCursor - c.planStart
			w, bit := off>>6, uint64(1)<<(off&63)
			c.planCursor++
			if c.planIssue[w]&bit != 0 {
				c.Stats.Active++
				c.Stats.Retired++
				if o := c.Obs; o != nil {
					o.Tick(obs.Issue)
				}
			} else {
				c.Stats.Stall++
				if o := c.Obs; o != nil {
					switch {
					case c.planLU[w]&bit != 0:
						o.Tick(obs.LoadUse)
					case c.planEM[w]&bit != 0:
						o.Tick(obs.ExtMem)
					default:
						o.Tick(obs.Issue)
					}
				}
			}
			return c.planHint()
		}
		if c.stallAccounted {
			// A solo fused run pre-charged this whole window (Stats and
			// attribution batched at issue time); just repeat the hint.
			return c.stallUntil
		}
		c.Stats.Stall++
		if o := c.Obs; o != nil {
			o.Tick(c.stallClass)
		}
		return c.stallUntil
	}
	// The core is resuming: any fused-run window is over.
	c.stallAccounted = false
	c.planOn = false
	var in isa.Inst
	var m InstMeta
	var addr, wdata uint32
	var idx uint32
	if c.hasPending {
		// Retry the parked access: re-enter the shared access path below.
		// Hazards and alignment were already checked when it first issued.
		c.hasPending = false
		in, m, addr, wdata = c.pending.in, c.pending.m, c.pending.addr, c.pending.wdata
		goto access
	}

	// Fetch: the line prefetch buffer short-circuits the shared cache
	// while execution stays within the current line. Probe is the
	// inlined ready-hit fast path; everything else (miss, in-flight
	// refill, parity) goes through the full Fetch.
	if ic := c.IC; ic != nil {
		line := c.PC &^ c.FetchLineMask
		if c.FetchLineMask == 0 || line != c.fetchedLine {
			if !ic.Probe(c.PC, now) {
				if done := ic.Fetch(c.PC, now); done > now {
					c.stallUntil = done
					c.stallClass = obs.ICache
					c.Stats.Stall++
					if o := c.Obs; o != nil {
						o.Tick(obs.ICache)
						if o.TL != nil {
							o.TL.Span(o.Tid, "I$ refill", "stall", now, done, nil)
						}
					}
					return done
				}
			}
			c.fetchedLine = line
		}
	}
	// A PC below base wraps the uint32 subtraction to at least 2^32-base,
	// and idx lands far above len(code) for any text segment that fits the
	// address space — the single bound check catches both directions.
	{
		idx = (c.PC - c.base) / 4
		if idx >= uint32(len(c.code)) {
			return c.failFetch()
		}
		d := &c.code[idx]
		in = d.In
		m = d.Meta
	}

	if m.Flags&MetaIllegal != 0 {
		return c.failIllegal(in)
	}

	// Load-use hazard: one bubble if the previous instruction was a load
	// and this one consumes its result.
	if c.lastLoadArmed {
		c.lastLoadArmed = false
		if c.loadUse > 0 && m.ReadMask&(1<<c.lastLoadReg) != 0 {
			c.stallUntil = now + c.loadUse
			c.stallClass = obs.LoadUse
			c.Stats.Stall++
			if o := c.Obs; o != nil {
				o.Tick(obs.LoadUse)
			}
			return c.stallUntil
		}
	}

	// Fused basic-block dispatch (block.go): with this instruction's gate,
	// fetch and hazard checks already done, the rest of its straight-line
	// run can execute in one call. Solo runs (every other actor halted or
	// asleep, DMA idle) fuse without bound; multi-core runs fuse the
	// Multi-table run — an optional memory access at offset 0, issued
	// through real bank arbitration right here at cycle now, plus a
	// pure-ALU tail. ok=false means the first instruction needs the
	// stepped path below and nothing was executed.
	if bt := c.blocks; bt != nil {
		if n := uint32(bt.Multi[idx]); c.Solo {
			if n != 0 {
				if hint, ok := c.runFusedSolo(now); ok {
					return hint
				}
			}
		} else if n > 1 {
			if hint, ok := c.runFusedMulti(now, n); ok {
				return hint
			}
		}
	}

	if m.Flags&MetaMem != 0 {
		// Issue the load/store directly (one call layer less than a helper:
		// ~36% of retired instructions take this path). On a grant the
		// access completes this cycle; on a structural conflict it parks in
		// pending and retries. The access shape is predecoded in m.
		size := uint32(m.Size)
		if m.Flags&MetaPostIncr != 0 {
			addr = c.reg(in.Ra)
		} else {
			addr = c.reg(in.Ra) + uint32(in.Imm)
		}
		if m.Flags&MetaChkAlign != 0 && addr&(size-1) != 0 {
			return c.failUnaligned(size, addr)
		}
		if m.Flags&MetaStore != 0 {
			wdata = c.reg(in.Rb)
		}
		goto access
	}
	// Execute the non-memory instruction in line: the switch below is the
	// single-caller body of the interpreter proper, merged into Step so
	// the per-instruction path pays no call/prologue overhead. extra is
	// the op's base cycle cost minus the issue cycle (predecoded).
	{
		extra := int(m.Cyc) - 1
		c.Stats.Active++
		c.Stats.Retired++
		if o := c.Obs; o != nil {
			o.Tick(obs.Issue)
		}
		if c.Trace != nil {
			c.Trace(now, c.PC, in)
		}

		a := c.reg(in.Ra)
		b := c.reg(in.Rb)
		next := c.PC + 4

		switch in.Op {
		case isa.NOP:

		case isa.J:
			next = uint32(int64(c.PC) + 4 + int64(in.Imm)*4)
			extra += c.timeJump
		case isa.JAL:
			c.setReg(isa.LR, c.PC+4)
			next = uint32(int64(c.PC) + 4 + int64(in.Imm)*4)
			extra += c.timeJump
		case isa.JR:
			next = a
			extra += c.timeJump
		case isa.JALR:
			c.setReg(in.Rd, c.PC+4)
			next = a
			extra += c.timeJump
		case isa.BF, isa.BNF:
			taken := c.Flag == (in.Op == isa.BF)
			if taken {
				next = uint32(int64(c.PC) + 4 + int64(in.Imm)*4)
				extra += c.timeBranch
			}
		case isa.TRAP:
			c.Halted = true
			c.TrapCode = in.Imm
			return NextEventNever
		case isa.WFE:
			c.advancePC(next)
			if c.env.WFE(c.ID) {
				c.sleep = SleepEvent
				if c.SleepHook != nil {
					c.SleepHook(now, SleepEvent, true)
				}
				return NextEventNever
			}
			return now + 1

		case isa.SFEQ:
			c.Flag = a == b
		case isa.SFNE:
			c.Flag = a != b
		case isa.SFLTS:
			c.Flag = int32(a) < int32(b)
		case isa.SFLES:
			c.Flag = int32(a) <= int32(b)
		case isa.SFGTS:
			c.Flag = int32(a) > int32(b)
		case isa.SFGES:
			c.Flag = int32(a) >= int32(b)
		case isa.SFLTU:
			c.Flag = a < b
		case isa.SFLEU:
			c.Flag = a <= b
		case isa.SFGTU:
			c.Flag = a > b
		case isa.SFGEU:
			c.Flag = a >= b
		case isa.SFEQI:
			c.Flag = a == uint32(in.Imm)
		case isa.SFNEI:
			c.Flag = a != uint32(in.Imm)
		case isa.SFLTSI:
			c.Flag = int32(a) < in.Imm
		case isa.SFLESI:
			c.Flag = int32(a) <= in.Imm
		case isa.SFGTSI:
			c.Flag = int32(a) > in.Imm
		case isa.SFGESI:
			c.Flag = int32(a) >= in.Imm
		case isa.SFLTUI:
			c.Flag = a < uint32(in.Imm)
		case isa.SFGEUI:
			c.Flag = a >= uint32(in.Imm)

		case isa.ADD:
			c.setReg(in.Rd, a+b)
		case isa.SUB:
			c.setReg(in.Rd, a-b)
		case isa.AND:
			c.setReg(in.Rd, a&b)
		case isa.OR:
			c.setReg(in.Rd, a|b)
		case isa.XOR:
			c.setReg(in.Rd, a^b)
		case isa.SLL:
			c.setReg(in.Rd, a<<(b&31))
		case isa.SRL:
			c.setReg(in.Rd, a>>(b&31))
		case isa.SRA:
			c.setReg(in.Rd, uint32(int32(a)>>(b&31)))
		case isa.MUL:
			c.setReg(in.Rd, uint32(int32(a)*int32(b)))
		case isa.DIV:
			c.setReg(in.Rd, divS(a, b))
		case isa.DIVU:
			c.setReg(in.Rd, divU(a, b))
		case isa.MIN:
			if int32(a) < int32(b) {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAX:
			if int32(a) > int32(b) {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MINU:
			if a < b {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAXU:
			if a > b {
				c.setReg(in.Rd, a)
			} else {
				c.setReg(in.Rd, b)
			}
		case isa.MAC:
			c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))+int32(a)*int32(b)))
		case isa.MSU:
			c.setReg(in.Rd, uint32(int32(c.reg(in.Rd))-int32(a)*int32(b)))
		case isa.SEXTB:
			c.setReg(in.Rd, uint32(int32(int8(a))))
		case isa.SEXTH:
			c.setReg(in.Rd, uint32(int32(int16(a))))

		case isa.ADDI:
			c.setReg(in.Rd, a+uint32(in.Imm))
		case isa.ANDI:
			c.setReg(in.Rd, a&uint32(in.Imm))
		case isa.ORI:
			c.setReg(in.Rd, a|uint32(in.Imm))
		case isa.XORI:
			c.setReg(in.Rd, a^uint32(in.Imm))
		case isa.SLLI:
			c.setReg(in.Rd, a<<(uint32(in.Imm)&31))
		case isa.SRLI:
			c.setReg(in.Rd, a>>(uint32(in.Imm)&31))
		case isa.SRAI:
			c.setReg(in.Rd, uint32(int32(a)>>(uint32(in.Imm)&31)))
		case isa.MOVHI:
			c.setReg(in.Rd, uint32(in.Imm)<<16)
		case isa.ORIL:
			c.setReg(in.Rd, c.reg(in.Rd)|uint32(in.Imm)&0xffff)

		case isa.MACS:
			c.Acc += int64(int32(a)) * int64(int32(b))
		case isa.MACU:
			c.Acc += int64(uint64(a) * uint64(b))
		case isa.MACCLR:
			c.Acc = 0
		case isa.MACRDL:
			c.setReg(in.Rd, uint32(c.Acc))
		case isa.MACRDH:
			c.setReg(in.Rd, uint32(uint64(c.Acc)>>32))

		// The per-lane SIMD ops are direct switch arms with hand-unrolled
		// lanes (the compiler neither devirtualizes a lane-combinator closure
		// nor unrolls the lane loop, and constant shift counts are free).
		// Per-lane wraparound comes from truncating each lane's sum back to
		// its width, so the cross-lane carries of the word-wide adds cannot
		// leak: out = trunc(a.lane + b.lane) per lane.
		case isa.DOTP4B:
			s := int32(c.reg(in.Rd))
			s += int32(int8(a)) * int32(int8(b))
			s += int32(int8(a>>8)) * int32(int8(b>>8))
			s += int32(int8(a>>16)) * int32(int8(b>>16))
			s += int32(int8(a>>24)) * int32(int8(b>>24))
			c.setReg(in.Rd, uint32(s))
		case isa.DOTP2H:
			s := int32(c.reg(in.Rd))
			s += int32(int16(a)) * int32(int16(b))
			s += int32(int16(a>>16)) * int32(int16(b>>16))
			c.setReg(in.Rd, uint32(s))
		case isa.ADD4B:
			out := uint32(uint8(a + b))
			out |= uint32(uint8(a>>8+b>>8)) << 8
			out |= uint32(uint8(a>>16+b>>16)) << 16
			out |= uint32(uint8(a>>24+b>>24)) << 24
			c.setReg(in.Rd, out)
		case isa.SUB4B:
			out := uint32(uint8(a - b))
			out |= uint32(uint8(a>>8-b>>8)) << 8
			out |= uint32(uint8(a>>16-b>>16)) << 16
			out |= uint32(uint8(a>>24-b>>24)) << 24
			c.setReg(in.Rd, out)
		case isa.ADD2H:
			out := uint32(uint16(a + b))
			out |= uint32(uint16(a>>16+b>>16)) << 16
			c.setReg(in.Rd, out)
		case isa.SUB2H:
			out := uint32(uint16(a - b))
			out |= uint32(uint16(a>>16-b>>16)) << 16
			c.setReg(in.Rd, out)
		case isa.SRA2H:
			sh := b & 15
			out := uint32(uint16(int16(a) >> sh))
			out |= uint32(uint16(int16(a>>16)>>sh)) << 16
			c.setReg(in.Rd, out)

		case isa.LPSETUP:
			i := int(in.Rd)
			c.lp[i] = hwLoop{
				start: c.PC + 4,
				end:   c.PC + 4 + uint32(in.Imm)*4,
				count: a,
			}
			if a == 0 {
				// Zero-trip loop: skip the body entirely.
				next = c.PC + 4 + uint32(in.Imm)*4
				c.lpEnd[i] = lpInactive
			} else {
				c.lpEnd[i] = c.lp[i].end
			}

		case isa.MFSPR:
			c.setReg(in.Rd, c.env.SPR(c.ID, in.Imm))

		default:
			return c.failOpcode(in)
		}

		c.advancePC(next)
		if extra > 0 {
			// The instruction issued this cycle; extra cycles stall the next
			// one. The trailing cycles of a multi-cycle op attribute to Issue
			// (they are the op's own latency, not a structural stall).
			c.stallUntil = now + uint64(extra) + 1
			c.stallClass = obs.Issue
			return c.stallUntil
		}
		return now + 1
	}

access:
	// Perform the data access. TCDM accesses take the direct fast path —
	// bank arbitration plus the data access, exactly what the cluster's
	// Access would do for the TCDM range — and only the uncommon ranges
	// (peripherals, L2) pay the Env dispatch. The op travels in registers
	// and is only materialized into c.pending when it parks for a retry;
	// both the issue path above and the retry gate land here, so the
	// access logic exists once with no call layer on the per-access path.
	{
		size := uint32(m.Size)
		store := m.Flags&MetaStore != 0
		var rdata uint32
		var extra int
		if t := c.TCDM; t != nil && t.Contains(addr, size) {
			if !t.Request(addr) {
				c.park(in, m, addr, wdata, obs.Conflict)
				return now + 1
			}
			if store {
				t.Write(addr, size, wdata)
			} else {
				rdata = t.Read(addr, size)
			}
		} else {
			var st Status
			var err error
			rdata, extra, st, err = c.env.Access(c.ID, store, addr, size, wdata)
			if err != nil {
				if o := c.Obs; o != nil {
					o.Tick(obs.Issue)
				}
				c.fail(err)
				return NextEventNever
			}
			switch st {
			case AccessRetry:
				c.park(in, m, addr, wdata, obs.Conflict)
				return now + 1
			case AccessRetrySync:
				c.park(in, m, addr, wdata, obs.Sync)
				return now + 1
			case AccessSleepBarrier:
				c.sleep = SleepBarrier
				c.Stats.Active++
				c.Stats.Retired++
				if o := c.Obs; o != nil {
					o.Tick(obs.Issue) // the arrival store issued this cycle
				}
				c.advancePC(c.PC + 4)
				if c.SleepHook != nil {
					c.SleepHook(now, SleepBarrier, true)
				}
				return NextEventNever
			}
		}

		c.Stats.Active++
		c.Stats.Retired++
		if o := c.Obs; o != nil {
			// DMAWait if this access was a status poll that saw a busy DMA
			// engine (the cluster marked it during dispatch), Issue otherwise.
			o.TickIssueMem()
		}
		if c.Trace != nil {
			c.Trace(now, c.PC, in)
		}

		if !store {
			var v uint32
			switch in.Op {
			case isa.LBZ, isa.LBZP:
				v = rdata & 0xff
			case isa.LBS, isa.LBSP:
				v = uint32(int32(int8(rdata)))
			case isa.LHZ, isa.LHZP:
				v = rdata & 0xffff
			case isa.LHS, isa.LHSP:
				v = uint32(int32(int16(rdata)))
			default:
				v = rdata
			}
			c.setReg(in.Rd, v)
			c.lastLoadReg = in.Rd
			c.lastLoadArmed = true
		}
		if m.Flags&MetaPostIncr != 0 {
			c.setReg(in.Ra, c.reg(in.Ra)+uint32(in.Imm))
		}
		if addr&(size-1) != 0 {
			extra++ // unaligned access: second bank cycle
		}
		c.advancePC(c.PC + 4)
		if extra > 0 {
			// Extra memory latency (L2/peripheral wait states, unaligned
			// second bank cycle) attributes to ExtMem.
			c.stallUntil = now + uint64(extra) + 1
			c.stallClass = obs.ExtMem
			return c.stallUntil
		}
		return now + 1
	}
}

// CreditIdle accounts a fast-forwarded idle window: the cluster verified
// that for the next `cycles` cycles this core would only have burned one
// Sleep (asleep) or Stall (stalled) count per cycle, and credits them in
// bulk. Halted cores accrue no Stats, exactly as in cycle-by-cycle
// stepping (but still attribute Halted cycles when observability is on,
// matching Step's halted branch so the attribution sum stays exact).
// The window never crosses a state change — the cluster's fast-forward
// bound is the earliest event of any core — so the bulk credit lands in
// the same class cycle-by-cycle stepping would have charged.
func (c *Core) CreditIdle(cycles uint64) {
	switch {
	case c.Halted:
		if o := c.Obs; o != nil {
			o.Credit(obs.Halted, cycles)
		}
	case c.sleep != Awake:
		c.Stats.Sleep += cycles
		if o := c.Obs; o != nil {
			if c.sleep == SleepBarrier {
				o.Credit(obs.Sync, cycles)
			} else {
				o.Credit(obs.Sleep, cycles)
			}
		}
	default:
		if c.planOn {
			if c.planICStall > 0 {
				// Refill cycles of a fetch-point miss drain first, the
				// cursor frozen: the fast-forward bound never crosses the
				// retry cycle (the step hint caps there), so the window
				// is refill stall up to it.
				k := c.planICStall
				if k > cycles {
					k = cycles
				}
				c.planICStall -= k
				c.Stats.Stall += k
				if o := c.Obs; o != nil {
					o.Credit(obs.ICache, k)
				}
				cycles -= k
				if cycles == 0 {
					return
				}
			}
			// Bulk-consume the fused run's deferred plan: the skipped
			// window is the next `cycles` offsets at the cursor, so the
			// class split is a ranged popcount per bitmask. The
			// fast-forward bound (the earliest event of any core) never
			// crosses stallUntil, so the range stays within the plan.
			off := c.planCursor - c.planStart
			c.planCursor += cycles
			iss := planRange(&c.planIssue, off, cycles)
			c.Stats.Active += iss
			c.Stats.Retired += iss
			c.Stats.Stall += cycles - iss
			if o := c.Obs; o != nil {
				lu := planRange(&c.planLU, off, cycles)
				em := planRange(&c.planEM, off, cycles)
				// Issue-class charge = issues + stalls in no other class.
				o.Credit(obs.Issue, cycles-lu-em)
				if lu > 0 {
					o.Credit(obs.LoadUse, lu)
				}
				if em > 0 {
					o.Credit(obs.ExtMem, em)
				}
			}
			return
		}
		if c.stallAccounted {
			// The window was pre-charged by a solo fused run; the
			// fast-forward bound never crosses stallUntil, so the whole
			// window is already accounted.
			return
		}
		c.Stats.Stall += cycles
		if o := c.Obs; o != nil {
			o.Credit(c.stallClass, cycles)
		}
	}
}

// planHint returns the step hint of a core mid-plan: the end of the plan
// window, capped at the next fetch point (planFetchAt — the cycle at
// which the core touches the shared I$ and must be stepped live, never
// fast-forwarded past; mid-refill it holds the retry cycle instead, and
// NextEventNever when no points remain).
func (c *Core) planHint() uint64 {
	if c.planFetchAt < c.stallUntil {
		return c.planFetchAt
	}
	return c.stallUntil
}

// planRange counts the set bits of a charge-plan bitmask over the cycle
// offsets [off, off+n). The loop runs at most planWords iterations and
// usually one: idle windows rarely straddle a 64-offset word boundary.
func planRange(p *[planWords]uint64, off, n uint64) uint64 {
	var count uint64
	for w := off >> 6; n > 0 && w < planWords; w++ {
		lo := off & 63
		take := 64 - lo
		if take > n {
			take = n
		}
		mask := ^uint64(0)
		if take < 64 {
			mask = (uint64(1)<<take - 1) << lo
		}
		count += uint64(bits.OnesCount64(p[w] & mask))
		off += take
		n -= take
	}
	return count
}

// NextUp returns the earliest future cycle, at or after `from`, at which
// this core can act on its own: NextEventNever for a halted or sleeping
// core (it needs an external wake), the end of the current stall window
// for a stalled one, `from` otherwise. Unlike the Step return hint it
// reads the core's *current* state, so a core woken later in the same
// cycle reports its true wake-up-stall end rather than a stale never —
// the cluster's solo-window scan relies on that to bound how long a lone
// runnable core may fuse ahead. A core mid-plan reports its next fetch
// point rather than the window end: it touches the shared I$ at that
// cycle, so a sibling's solo window must never cover it.
func (c *Core) NextUp(from uint64) uint64 {
	if c.Halted || c.sleep != Awake {
		return NextEventNever
	}
	if c.stallUntil > from {
		if c.planOn {
			return c.planHint()
		}
		return c.stallUntil
	}
	return from
}

// lpInactive is the lpEnd sentinel of an inactive hardware loop: PCs are
// word-aligned, so no instruction address can ever compare equal to it.
const lpInactive uint32 = 1

// advancePC computes the next PC, applying hardware-loop wraparound. The
// lpEnd sentinels make the common case (no active loop ends here) two
// always-false compares that inline into the callers; the once-per-
// iteration wraparound bookkeeping lives in lpWrap.
func (c *Core) advancePC(next uint32) {
	if next == c.lpEnd[0] || next == c.lpEnd[1] {
		next = c.lpWrap(next)
	}
	c.PC = next
}

// lpWrap handles a PC that reached an active hardware-loop end: another
// trip branches back to the loop start, the final trip falls through and
// deactivates the loop. Loop 0 takes priority when both end here,
// matching the reference scan order.
func (c *Core) lpWrap(next uint32) uint32 {
	i := 1
	if next == c.lpEnd[0] {
		i = 0
	}
	l := &c.lp[i]
	if l.count > 1 {
		l.count--
		return l.start
	}
	l.count = 0
	c.lpEnd[i] = lpInactive
	return next
}

func divS(a, b uint32) uint32 {
	if b == 0 {
		if int32(a) >= 0 {
			return 0x7fffffff
		}
		return 0x80000000
	}
	if int32(a) == -0x80000000 && int32(b) == -1 {
		return 0x80000000
	}
	return uint32(int32(a) / int32(b))
}

func divU(a, b uint32) uint32 {
	if b == 0 {
		return 0xffffffff
	}
	return a / b
}

// park stages a denied access for retry next cycle. cl is the attribution
// class of the denied cycle (bank conflict or mutex spin).
func (c *Core) park(in isa.Inst, m InstMeta, addr, wdata uint32, cl obs.Class) {
	c.pending = memOp{in: in, m: m, addr: addr, wdata: wdata}
	c.hasPending = true
	c.Stats.Stall++
	if o := c.Obs; o != nil {
		o.Tick(cl)
	}
}
