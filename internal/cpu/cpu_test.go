package cpu

import (
	"math/rand"
	"testing"

	"hetsim/internal/isa"
)

// flatEnv is a minimal environment: a flat memory with no arbitration, no
// event unit, fixed SPR values.
type flatEnv struct {
	mem        map[uint32]byte
	extra      int
	retryFirst int // deny the first N accesses (structural stall injection)
	wfeSleeps  bool
}

func newFlatEnv() *flatEnv { return &flatEnv{mem: make(map[uint32]byte)} }

func (e *flatEnv) Access(core int, store bool, addr, size, wdata uint32) (uint32, int, Status, error) {
	if e.retryFirst > 0 {
		e.retryFirst--
		return 0, 0, AccessRetry, nil
	}
	if store {
		for i := uint32(0); i < size; i++ {
			e.mem[addr+i] = byte(wdata >> (8 * i))
		}
		return 0, e.extra, AccessOK, nil
	}
	var v uint32
	for i := uint32(0); i < size; i++ {
		v |= uint32(e.mem[addr+i]) << (8 * i)
	}
	return v, e.extra, AccessOK, nil
}

func (e *flatEnv) WFE(core int) bool { return e.wfeSleeps }

func (e *flatEnv) SPR(core int, spr int32) uint32 {
	switch spr {
	case isa.SprCoreID:
		return uint32(core)
	case isa.SprNumCore:
		return 4
	}
	return 0
}

// runCore executes the program until halt or maxCycles, returning cycles.
func runCore(t *testing.T, c *Core, maxCycles uint64) uint64 {
	t.Helper()
	var cyc uint64
	for ; cyc < maxCycles; cyc++ {
		if c.Halted {
			if c.Err != nil {
				t.Fatal(c.Err)
			}
			return cyc
		}
		c.Step(cyc)
	}
	t.Fatalf("core did not halt in %d cycles (pc=%#x)", maxCycles, c.PC)
	return cyc
}

func newCore(env Env, tgt isa.Target, prog []isa.Inst) *Core {
	c := New(0, tgt, env)
	c.SetProgram(prog, 0x1000)
	c.Start(0x1000)
	return c
}

// --- Differential property test -----------------------------------------------

// refState mirrors the architectural state for ALU-only programs.
type refState struct {
	regs [32]int32
	flag bool
}

func (s *refState) set(r isa.Reg, v int32) {
	if r != 0 {
		s.regs[r] = v
	}
}

// step interprets one ALU/compare instruction the straightforward way.
func (s *refState) step(in isa.Inst) {
	a, b := s.regs[in.Ra], s.regs[in.Rb]
	switch in.Op {
	case isa.ADD:
		s.set(in.Rd, a+b)
	case isa.SUB:
		s.set(in.Rd, a-b)
	case isa.AND:
		s.set(in.Rd, a&b)
	case isa.OR:
		s.set(in.Rd, a|b)
	case isa.XOR:
		s.set(in.Rd, a^b)
	case isa.SLL:
		s.set(in.Rd, a<<(uint32(b)&31))
	case isa.SRL:
		s.set(in.Rd, int32(uint32(a)>>(uint32(b)&31)))
	case isa.SRA:
		s.set(in.Rd, a>>(uint32(b)&31))
	case isa.MUL:
		s.set(in.Rd, a*b)
	case isa.MAC:
		s.set(in.Rd, s.regs[in.Rd]+a*b)
	case isa.MSU:
		s.set(in.Rd, s.regs[in.Rd]-a*b)
	case isa.MIN:
		s.set(in.Rd, min32(a, b))
	case isa.MAX:
		s.set(in.Rd, max32(a, b))
	case isa.SEXTB:
		s.set(in.Rd, int32(int8(a)))
	case isa.SEXTH:
		s.set(in.Rd, int32(int16(a)))
	case isa.ADDI:
		s.set(in.Rd, a+in.Imm)
	case isa.ANDI:
		s.set(in.Rd, int32(uint32(a)&uint32(in.Imm)))
	case isa.ORI:
		s.set(in.Rd, int32(uint32(a)|uint32(in.Imm)))
	case isa.XORI:
		s.set(in.Rd, int32(uint32(a)^uint32(in.Imm)))
	case isa.SLLI:
		s.set(in.Rd, a<<(uint32(in.Imm)&31))
	case isa.SRLI:
		s.set(in.Rd, int32(uint32(a)>>(uint32(in.Imm)&31)))
	case isa.SRAI:
		s.set(in.Rd, a>>(uint32(in.Imm)&31))
	case isa.MOVHI:
		s.set(in.Rd, in.Imm<<16)
	case isa.ORIL:
		s.set(in.Rd, int32(uint32(s.regs[in.Rd])|uint32(in.Imm)&0xffff))
	case isa.SFEQ:
		s.flag = a == b
	case isa.SFLTS:
		s.flag = a < b
	case isa.SFGEU:
		s.flag = uint32(a) >= uint32(b)
	case isa.DOTP4B:
		sum := s.regs[in.Rd]
		for i := 0; i < 4; i++ {
			sum += int32(int8(uint32(a)>>(8*i))) * int32(int8(uint32(b)>>(8*i)))
		}
		s.set(in.Rd, sum)
	case isa.DOTP2H:
		sum := s.regs[in.Rd]
		for i := 0; i < 2; i++ {
			sum += int32(int16(uint32(a)>>(16*i))) * int32(int16(uint32(b)>>(16*i)))
		}
		s.set(in.Rd, sum)
	}
}

func min32(a, b int32) int32 {
	if a < b {
		return a
	}
	return b
}

func max32(a, b int32) int32 {
	if a > b {
		return a
	}
	return b
}

// TestALUDifferential runs random straight-line ALU programs on the core
// and on the reference interpreter and compares every register.
func TestALUDifferential(t *testing.T) {
	aluOps := []isa.Op{
		isa.ADD, isa.SUB, isa.AND, isa.OR, isa.XOR, isa.SLL, isa.SRL, isa.SRA,
		isa.MUL, isa.MAC, isa.MSU, isa.MIN, isa.MAX, isa.SEXTB, isa.SEXTH,
		isa.ADDI, isa.ANDI, isa.ORI, isa.XORI, isa.SLLI, isa.SRLI, isa.SRAI,
		isa.MOVHI, isa.ORIL, isa.SFEQ, isa.SFLTS, isa.SFGEU, isa.DOTP4B, isa.DOTP2H,
	}
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		n := 5 + rng.Intn(60)
		prog := make([]isa.Inst, 0, n+1)
		ref := &refState{}
		for i := 0; i < n; i++ {
			op := aluOps[rng.Intn(len(aluOps))]
			in := isa.Inst{Op: op,
				Rd: isa.Reg(rng.Intn(32)), Ra: isa.Reg(rng.Intn(32)), Rb: isa.Reg(rng.Intn(32))}
			switch op.Format() {
			case isa.FmtI:
				switch op {
				case isa.ANDI, isa.ORI, isa.XORI:
					in.Imm = int32(rng.Intn(1 << 14))
				case isa.SLLI, isa.SRLI, isa.SRAI:
					in.Imm = int32(rng.Intn(32))
				default:
					in.Imm = int32(rng.Intn(1<<14)) - 1<<13
				}
				in.Rb = 0
			case isa.FmtIH:
				in.Imm = int32(rng.Intn(1 << 16))
				in.Ra, in.Rb = 0, 0
			}
			prog = append(prog, in)
			ref.step(in)
		}
		prog = append(prog, isa.Inst{Op: isa.TRAP})

		c := newCore(newFlatEnv(), isa.PULPFull, prog)
		runCore(t, c, 10_000)
		for r := 0; r < 32; r++ {
			if int32(c.Regs[r]) != ref.regs[r] {
				t.Fatalf("trial %d: r%d = %d, ref %d", trial, r, int32(c.Regs[r]), ref.regs[r])
			}
		}
		if c.Flag != ref.flag {
			t.Fatalf("trial %d: flag mismatch", trial)
		}
	}
}

// --- Timing unit tests ------------------------------------------------------------

func TestStraightLineTiming(t *testing.T) {
	prog := []isa.Inst{
		{Op: isa.ADDI, Rd: isa.A0, Imm: 1},
		{Op: isa.ADDI, Rd: isa.A1, Imm: 2},
		{Op: isa.ADDI, Rd: isa.A2, Imm: 3},
		{Op: isa.TRAP},
	}
	c := newCore(newFlatEnv(), isa.PULPFull, prog)
	if cyc := runCore(t, c, 100); cyc != 4 { // 3 ALU + trap
		t.Errorf("3 ALU ops took %d cycles", cyc)
	}
	if c.Stats.Retired != 4 || c.Stats.Active != 4 {
		t.Errorf("stats %+v", c.Stats)
	}
}

func TestMultiCycleOpTiming(t *testing.T) {
	prog := []isa.Inst{
		{Op: isa.DIV, Rd: isa.A0, Ra: isa.A1, Rb: isa.A2},
		{Op: isa.TRAP},
	}
	c := newCore(newFlatEnv(), isa.PULPFull, prog)
	c.Regs[isa.A1], c.Regs[isa.A2] = 100, 7
	if cyc := runCore(t, c, 100); cyc != 33 { // 32 DIV + trap
		t.Errorf("DIV took %d cycles, want 33", cyc)
	}
}

func TestBranchTakenPenalty(t *testing.T) {
	// taken BF on M4: 1 (sf) + 1 (bf) + 2 (penalty) + 1 (trap reached after)
	prog := []isa.Inst{
		{Op: isa.SFEQI, Ra: isa.R0, Imm: 0}, // flag = true
		{Op: isa.BF, Imm: 0},                // branch to next (taken)
		{Op: isa.TRAP},
	}
	m4 := newCore(newFlatEnv(), isa.CortexM4, prog)
	cycM4 := runCore(t, m4, 100)
	pulp := newCore(newFlatEnv(), isa.PULPFull, prog)
	cycPULP := runCore(t, pulp, 100)
	if cycM4-cycPULP != 1 {
		t.Errorf("M4 taken-branch penalty delta = %d (m4=%d pulp=%d), want 1",
			cycM4-cycPULP, cycM4, cycPULP)
	}
	// Not-taken branch costs no penalty on either.
	prog[0].Imm = 1 // flag = false
	m4n := newCore(newFlatEnv(), isa.CortexM4, prog)
	if cyc := runCore(t, m4n, 100); cyc != 3 { // sf + bf + trap
		t.Errorf("not-taken branch run took %d cycles", cyc)
	}
}

func TestLoadUseBubble(t *testing.T) {
	env := newFlatEnv()
	env.mem[0x100] = 7
	dep := []isa.Inst{
		{Op: isa.LW, Rd: isa.A0, Ra: isa.R0, Imm: 0x100},
		{Op: isa.ADD, Rd: isa.A1, Ra: isa.A0, Rb: isa.A0}, // immediate use
		{Op: isa.TRAP},
	}
	indep := []isa.Inst{
		{Op: isa.LW, Rd: isa.A0, Ra: isa.R0, Imm: 0x100},
		{Op: isa.ADD, Rd: isa.A1, Ra: isa.A2, Rb: isa.A2}, // no dependence
		{Op: isa.TRAP},
	}
	cDep := newCore(env, isa.CortexM4, dep)
	cycDep := runCore(t, cDep, 100)
	cInd := newCore(env, isa.CortexM4, indep)
	cycInd := runCore(t, cInd, 100)
	if cycDep != cycInd+1 {
		t.Errorf("load-use bubble: dep=%d indep=%d", cycDep, cycInd)
	}
	// OR10N (single-cycle TCDM) has no bubble.
	pDep := newCore(env, isa.PULPFull, dep)
	pInd := newCore(env, isa.PULPFull, indep)
	if runCore(t, pDep, 100) != runCore(t, pInd, 100) {
		t.Error("OR10N should not pay a load-use bubble")
	}
}

func TestAccessRetryStalls(t *testing.T) {
	env := newFlatEnv()
	env.retryFirst = 3
	prog := []isa.Inst{
		{Op: isa.LW, Rd: isa.A0, Ra: isa.R0, Imm: 0x40},
		{Op: isa.TRAP},
	}
	c := newCore(env, isa.PULPFull, prog)
	cyc := runCore(t, c, 100)
	if cyc != 5 { // 3 denied + 1 granted + trap
		t.Errorf("retried load took %d cycles, want 5", cyc)
	}
	if c.Stats.Stall != 3 {
		t.Errorf("stall cycles = %d, want 3", c.Stats.Stall)
	}
}

func TestWFESleepAndWake(t *testing.T) {
	env := newFlatEnv()
	env.wfeSleeps = true
	prog := []isa.Inst{
		{Op: isa.WFE},
		{Op: isa.ADDI, Rd: isa.A0, Imm: 5},
		{Op: isa.TRAP},
	}
	c := newCore(env, isa.PULPFull, prog)
	for cyc := uint64(0); cyc < 10; cyc++ {
		c.Step(cyc)
	}
	if !c.Sleeping() || c.Asleep() != SleepEvent {
		t.Fatal("core should be asleep in WFE")
	}
	c.Wake(10)
	for cyc := uint64(10); cyc < 40 && !c.Halted; cyc++ {
		c.Step(cyc)
	}
	if !c.Halted || c.Regs[isa.A0] != 5 {
		t.Fatal("core did not resume after wake")
	}
	if c.Stats.Sleep == 0 {
		t.Error("sleep cycles not accounted")
	}
}

func TestIllegalInstructionFaults(t *testing.T) {
	prog := []isa.Inst{{Op: isa.DOTP4B, Rd: isa.A0, Ra: isa.A1, Rb: isa.A2}}
	c := newCore(newFlatEnv(), isa.CortexM4, prog)
	for cyc := uint64(0); cyc < 5 && !c.Halted; cyc++ {
		c.Step(cyc)
	}
	if c.Err == nil {
		t.Fatal("SIMD on M4 must fault")
	}
}

func TestFetchOutsideTextFaults(t *testing.T) {
	prog := []isa.Inst{{Op: isa.JR, Ra: isa.A0}} // A0 = 0 -> far away
	c := newCore(newFlatEnv(), isa.PULPFull, prog)
	for cyc := uint64(0); cyc < 10 && !c.Halted; cyc++ {
		c.Step(cyc)
	}
	if c.Err == nil {
		t.Fatal("jump outside text must fault")
	}
}

func TestHWLoopSemantics(t *testing.T) {
	// lp.setup 0, count in A0, body of 2 instructions.
	prog := []isa.Inst{
		{Op: isa.LPSETUP, Rd: 0, Ra: isa.A0, Imm: 2},
		{Op: isa.ADDI, Rd: isa.A1, Ra: isa.A1, Imm: 1},
		{Op: isa.ADDI, Rd: isa.A2, Ra: isa.A2, Imm: 10},
		{Op: isa.TRAP},
	}
	c := newCore(newFlatEnv(), isa.PULPFull, prog)
	c.Regs[isa.A0] = 5
	cyc := runCore(t, c, 100)
	if c.Regs[isa.A1] != 5 || c.Regs[isa.A2] != 50 {
		t.Fatalf("hwloop executed %d/%d times", c.Regs[isa.A1], c.Regs[isa.A2]/10)
	}
	// Zero-overhead: setup + 2*count + trap.
	if cyc != 12 {
		t.Errorf("hwloop of 5x2 took %d cycles, want 12", cyc)
	}
}

func TestReadsRegCoverage(t *testing.T) {
	cases := []struct {
		in   isa.Inst
		r    isa.Reg
		want bool
	}{
		{isa.Inst{Op: isa.ADD, Rd: 3, Ra: 4, Rb: 5}, 4, true},
		{isa.Inst{Op: isa.ADD, Rd: 3, Ra: 4, Rb: 5}, 3, false},
		{isa.Inst{Op: isa.MAC, Rd: 3, Ra: 4, Rb: 5}, 3, true}, // accumulator reads rd
		{isa.Inst{Op: isa.DOTP2H, Rd: 3, Ra: 4, Rb: 5}, 3, true},
		{isa.Inst{Op: isa.ORIL, Rd: 3, Imm: 1}, 3, true},
		{isa.Inst{Op: isa.MOVHI, Rd: 3, Imm: 1}, 3, false},
		{isa.Inst{Op: isa.SW, Ra: 6, Rb: 7}, 7, true},
		{isa.Inst{Op: isa.SW, Ra: 6, Rb: 7}, 6, true},
		{isa.Inst{Op: isa.JR, Ra: 9}, 9, true},
		{isa.Inst{Op: isa.LPSETUP, Rd: 0, Ra: 8}, 8, true},
		{isa.Inst{Op: isa.ADD, Rd: 3, Ra: 0, Rb: 5}, 0, false}, // r0 never hazards
	}
	for _, c := range cases {
		if got := readMask(c.in)&(1<<c.r) != 0; got != c.want {
			t.Errorf("readMask(%v) bit r%d = %v", c.in, c.r, got)
		}
	}
}

func TestDivisionEdgeCases(t *testing.T) {
	if divS(100, 0) != 0x7fffffff || divS(uint32(0x80000000), 0) != 0x80000000 {
		t.Error("signed div by zero")
	}
	if divS(0x80000000, 0xffffffff) != 0x80000000 {
		t.Error("INT_MIN / -1 must wrap to INT_MIN")
	}
	if divU(7, 0) != 0xffffffff {
		t.Error("unsigned div by zero")
	}
	if divS(uint32(0xfffffff9), 2) != uint32(0xfffffffd) { // -7/2 = -3 trunc
		t.Error("signed division truncation")
	}
}

// TestMemDifferential extends the differential fuzz to loads and stores in
// a pinned window: a byte-accurate reference memory checks every width and
// sign-extension combination under random interleaving with ALU traffic.
func TestMemDifferential(t *testing.T) {
	const base = 0x400
	memOps := []isa.Op{isa.LBZ, isa.LBS, isa.LHZ, isa.LHS, isa.LW, isa.SB, isa.SH, isa.SW}
	aluOps := []isa.Op{isa.ADD, isa.SUB, isa.XOR, isa.MUL, isa.ADDI, isa.MOVHI, isa.SLLI}
	rng := rand.New(rand.NewSource(2024))

	for trial := 0; trial < 100; trial++ {
		env := newFlatEnv()
		refMem := map[uint32]byte{}
		ref := &refState{}
		// r5 is the pinned window base; never a destination below.
		ref.regs[5] = base
		var prog []isa.Inst
		prog = append(prog, isa.Inst{Op: isa.ADDI, Rd: 5, Ra: 0, Imm: base})

		n := 10 + rng.Intn(80)
		for i := 0; i < n; i++ {
			if rng.Intn(2) == 0 {
				op := memOps[rng.Intn(len(memOps))]
				size := uint32(op.MemSize())
				off := int32(uint32(rng.Intn(64)) * 4) // word-aligned, always legal
				if size == 2 && rng.Intn(2) == 0 {
					off += 2
				}
				if size == 1 {
					off += int32(rng.Intn(4))
				}
				rr := isa.Reg(6 + rng.Intn(8))
				in := isa.Inst{Op: op, Ra: 5, Imm: off}
				addr := uint32(base) + uint32(off)
				if op.IsStore() {
					in.Rb = rr
					v := uint32(ref.regs[rr])
					for b := uint32(0); b < size; b++ {
						refMem[addr+b] = byte(v >> (8 * b))
					}
				} else {
					in.Rd = rr
					var v uint32
					for b := uint32(0); b < size; b++ {
						v |= uint32(refMem[addr+b]) << (8 * b)
					}
					switch op {
					case isa.LBS:
						v = uint32(int32(int8(v)))
					case isa.LHS:
						v = uint32(int32(int16(v)))
					}
					ref.set(rr, int32(v))
				}
				prog = append(prog, in)
				continue
			}
			op := aluOps[rng.Intn(len(aluOps))]
			in := isa.Inst{Op: op, Rd: isa.Reg(6 + rng.Intn(8)),
				Ra: isa.Reg(5 + rng.Intn(9)), Rb: isa.Reg(5 + rng.Intn(9))}
			switch op {
			case isa.ADDI:
				in.Imm = int32(rng.Intn(1<<14)) - 1<<13
			case isa.MOVHI:
				in.Imm = int32(rng.Intn(1 << 16))
			case isa.SLLI:
				in.Imm = int32(rng.Intn(32))
			}
			prog = append(prog, in)
			ref.step(in)
		}
		prog = append(prog, isa.Inst{Op: isa.TRAP})

		c := newCore(env, isa.PULPFull, prog)
		runCore(t, c, 100_000)
		for r := 5; r < 14; r++ {
			if int32(c.Regs[r]) != ref.regs[r] {
				t.Fatalf("trial %d: r%d = %d, ref %d", trial, r, int32(c.Regs[r]), ref.regs[r])
			}
		}
		for addr, want := range refMem {
			if got := env.mem[addr]; got != want {
				t.Fatalf("trial %d: mem[%#x] = %#x, ref %#x", trial, addr, got, want)
			}
		}
	}
}
