package cpu

import (
	"testing"

	"hetsim/internal/isa"
)

func compileText(t *testing.T, tgt isa.Target, text []isa.Inst) *BlockTable {
	t.Helper()
	return CompileBlocks(Predecode(text, tgt), tgt)
}

func alu(rd isa.Reg) isa.Inst  { return isa.Inst{Op: isa.ADD, Rd: rd, Ra: rd, Rb: rd} }
func load(rd isa.Reg) isa.Inst { return isa.Inst{Op: isa.LW, Rd: rd, Ra: 1} }

// TestCompileBlocksRunShapes pins the Multi-table discovery rules: ALU runs
// accumulate, a memory op only leads a run, branches end one inclusively,
// and TRAP/WFE/illegal ops end it exclusively.
func TestCompileBlocksRunShapes(t *testing.T) {
	tgt := isa.PULPFull
	cases := []struct {
		name string
		text []isa.Inst
		want []uint16
	}{
		{
			"alu-run",
			[]isa.Inst{alu(2), alu(3), alu(4), {Op: isa.TRAP}},
			[]uint16{3, 2, 1, 0},
		},
		{
			"mem-leads-only",
			// load, alu, load, alu: a mem op fuses its ALU tail but an ALU
			// run must stop before a following mem op (which needs the
			// stepped gate or run-leading arbitration at its exact cycle).
			[]isa.Inst{load(2), alu(3), load(4), alu(5), {Op: isa.TRAP}},
			[]uint16{2, 1, 2, 1, 0},
		},
		{
			"branch-ends-inclusively",
			[]isa.Inst{alu(2), alu(3), {Op: isa.BF, Imm: 1}, alu(4), {Op: isa.TRAP}},
			[]uint16{3, 2, 1, 1, 0},
		},
		{
			"trap-breaks",
			[]isa.Inst{alu(2), {Op: isa.TRAP}, alu(3), {Op: isa.TRAP}},
			[]uint16{1, 0, 1, 0},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			bt := compileText(t, tgt, tc.text)
			for i, want := range tc.want {
				if bt.Multi[i] != want {
					t.Errorf("Multi[%d] = %d, want %d (table %v)", i, bt.Multi[i], want, bt.Multi)
				}
			}
		})
	}
}

// TestCompileBlocksNumBlocks counts basic-block leaders: the entry plus
// every successor of a run-ending instruction.
func TestCompileBlocksNumBlocks(t *testing.T) {
	text := []isa.Inst{
		alu(2), alu(3), load(4), // leader 0: the run-ending load closes it
		alu(5), {Op: isa.BF, Imm: 1}, // leader 3: branch closes inclusively
		alu(6), {Op: isa.TRAP}, // leader 5: TRAP closes exclusively
		{Op: isa.J, Imm: -42}, // leader 7
	}
	bt := compileText(t, isa.PULPFull, text)
	if bt.NumBlocks != 4 {
		t.Errorf("NumBlocks = %d, want 4 (table %v)", bt.NumBlocks, bt.Multi)
	}
}

// TestCompileBlocksSpanClamp proves every compiled run's worst-case cycle
// window fits the charge plan's planWords bitmask words: a long run of
// multi-cycle ops (DIV is 32 cycles on PULPFull) must be cut so the
// per-op weights sum to at most maxRunSpan, while a plain ALU run of the
// same length survives up to the span bound.
func TestCompileBlocksSpanClamp(t *testing.T) {
	tgt := isa.PULPFull
	var text []isa.Inst
	for i := 0; i < 16; i++ {
		text = append(text, isa.Inst{Op: isa.DIV, Rd: 2, Ra: 3, Rb: 4})
	}
	text = append(text, isa.Inst{Op: isa.TRAP})
	bt := compileText(t, tgt, text)
	// Each DIV weighs 1 issue + 31 extra (loadUse 0 on PULPFull): exactly
	// maxRunSpan/32 of them fit the plan window.
	if want := uint16(maxRunSpan / 32); bt.Multi[0] != want {
		t.Errorf("DIV run length = %d, want %d (span must fit %d)", bt.Multi[0], want, maxRunSpan)
	}

	long := make([]isa.Inst, 0, 2*maxRunSpan)
	for i := 0; i < 2*maxRunSpan; i++ {
		long = append(long, alu(2))
	}
	long = append(long, isa.Inst{Op: isa.TRAP})
	bt = compileText(t, tgt, long)
	if got := int(bt.Multi[0]); got != maxRunSpan {
		t.Errorf("ALU run length = %d, want clamp at %d", got, maxRunSpan)
	}

	// Verify the invariant directly over every compiled run: worst-case
	// span <= maxRunSpan (the executor relies on this, not on re-checking),
	// and every chainable Span entry records exactly that worst case.
	code := Predecode(long, tgt)
	bt = CompileBlocks(code, tgt)
	for i := range code {
		span := 0
		for k := 0; k < int(bt.Multi[i]); k++ {
			span += 1 + int(code[i+k].Meta.Cyc-1)
		}
		if span > maxRunSpan {
			t.Fatalf("run at %d spans %d cycles > %d", i, span, maxRunSpan)
		}
		if s := bt.Span[i]; s != spanNoChain && int(s) != span {
			t.Fatalf("Span[%d] = %d, want %d", i, s, span)
		}
	}
}

// TestCompileBlocksSpanTable pins the chain-admission side-table rules:
// mem-led runs and fuse-break/illegal entries are spanNoChain, ALU-led
// runs (including lone branches) record their worst-case span.
func TestCompileBlocksSpanTable(t *testing.T) {
	tgt := isa.PULPFull
	text := []isa.Inst{
		alu(2), alu(3), // ALU run: chainable
		load(4),              // mem-led: never a chain target
		{Op: isa.BF, Imm: 1}, // lone branch: chainable
		alu(5),
		{Op: isa.TRAP}, // fuse break: never a chain target
	}
	bt := compileText(t, tgt, text)
	if bt.Span[0] == spanNoChain || bt.Span[1] == spanNoChain {
		t.Errorf("ALU-led entries must be chainable: Span %v", bt.Span)
	}
	if bt.Span[2] != spanNoChain {
		t.Errorf("mem-led entry must be spanNoChain, got %d", bt.Span[2])
	}
	if bt.Span[3] == spanNoChain {
		t.Errorf("branch-led entry must be chainable: Span %v", bt.Span)
	}
	if bt.Span[5] != spanNoChain {
		t.Errorf("fuse-break entry must be spanNoChain, got %d", bt.Span[5])
	}
	// The branch entry's span must cover its worst-case penalty so a
	// chain admission can never overflow the plan.
	braMax := tgt.Time.Jump
	if b := tgt.Time.BranchTaken; b > braMax {
		braMax = b
	}
	if int(bt.Span[3]) < 1+braMax {
		t.Errorf("branch Span = %d, want >= %d (issue + max penalty)", bt.Span[3], 1+braMax)
	}
}

// TestCompileCounts pins the BlockCompiles counter Compile feeds (the
// kernels memo test asserts per-image single-flight on top of it).
func TestCompileCounts(t *testing.T) {
	before := BlockCompiles.Load()
	comp := Compile([]isa.Inst{alu(2), {Op: isa.TRAP}}, isa.PULPFull)
	if got := BlockCompiles.Load() - before; got != 1 {
		t.Errorf("Compile bumped BlockCompiles by %d, want 1", got)
	}
	if len(comp.Code) != 2 || comp.Blocks == nil || len(comp.Blocks.Multi) != 2 {
		t.Errorf("Compile returned inconsistent image: %+v", comp)
	}
}
