// Package cli holds command-line plumbing shared by the hetsim tools:
// the two-stage interrupt contract. The first SIGINT/SIGTERM starts an
// orderly shutdown (cancel contexts, drain in-flight work, flush
// partial state); a second signal force-exits immediately with a
// distinct status code — so a wedged drain (a hung job, a blocked
// flush) is killable without reaching for SIGKILL.
package cli

import (
	"context"
	"fmt"
	"os"
	"os/signal"
	"syscall"
)

// ForceExitCode is the exit status of a second-signal force exit,
// distinct from both success (0) and an orderly failure (1) so wrappers
// and CI can tell "gave up on the drain" from "drained and failed".
const ForceExitCode = 3

// NotifyDrain returns a context cancelled by the first SIGINT/SIGTERM.
// A second signal bypasses whatever the drain is stuck on and exits the
// process with ForceExitCode. The returned stop function releases the
// signal registration (call it on the orderly exit path).
func NotifyDrain(name string) (context.Context, context.CancelFunc) {
	ctx, cancel := context.WithCancel(context.Background())
	ch := make(chan os.Signal, 2)
	signal.Notify(ch, os.Interrupt, syscall.SIGTERM)
	go func() {
		select {
		case <-ch:
			cancel() // first signal: begin the orderly drain
			<-ch     // second signal: the drain is taking too long — force out
			fmt.Fprintf(os.Stderr, "%s: second interrupt, forcing exit\n", name)
			os.Exit(ForceExitCode)
		case <-ctx.Done(): // orderly exit released us
			signal.Stop(ch)
		}
	}()
	return ctx, func() { signal.Stop(ch); cancel() }
}
