package sweep

import (
	"errors"
	"sync"
)

// WriteStage names one crash window inside Cache.write, in commit order.
// Each is a point where a killed or failing writer leaves the store in a
// different state, and each must degrade to a countable miss or WriteFail
// — never a corrupt hit (cachefault_test.go proves it per stage; the
// process-level crash drill proves it under real SIGKILL).
type WriteStage int

const (
	FaultTempWrite WriteStage = iota // writing the temp file (partial bytes on disk)
	FaultSync                        // fsyncing the temp file (bytes may not be durable)
	FaultRename                      // renaming into place (entry never appears)
	FaultDirSync                     // fsyncing the parent dir (entry valid, durability unknown)
	writeStages
)

func (s WriteStage) String() string {
	switch s {
	case FaultTempWrite:
		return "temp-write"
	case FaultSync:
		return "fsync"
	case FaultRename:
		return "rename"
	case FaultDirSync:
		return "dir-fsync"
	}
	return "?"
}

// ErrInjectedWriteFault marks a WriteFaults-injected failure, so tests
// and drills can tell an injected miss from a real I/O error.
var ErrInjectedWriteFault = errors.New("sweep: injected cache write fault")

// WriteFaults injects failures into the crash windows of Cache.write —
// the serve.Faults pattern (seeded splitmix64 stream, per-decision rates,
// optional deterministic first-N) pointed at the cache's own commit
// protocol. A nil *WriteFaults decides nothing and costs one nil compare
// per stage.
type WriteFaults struct {
	// Seed feeds the splitmix64 stream behind the rate-based decisions.
	Seed uint64
	// Rates holds the per-stage failure probability (zero = never).
	Rates [4]float64
	// FailFirst deterministically fails the first N write attempts that
	// reach the given stage (0 disables) — the knob that lets a retry
	// budget > N provably exercise the retry path and still persist.
	FailFirst [4]int

	mu       sync.Mutex
	rng      uint64
	seeded   bool
	injected [4]uint64
	firsts   [4]int
}

// next advances the splitmix64 stream (the internal/fault generator).
func (f *WriteFaults) next() uint64 {
	if !f.seeded {
		f.rng = f.Seed
		f.seeded = true
	}
	f.rng += 0x9e3779b97f4a7c15
	z := f.rng
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// fail decides whether the write attempt currently at stage should fail,
// returning ErrInjectedWriteFault when it should.
func (f *WriteFaults) fail(stage WriteStage) error {
	if f == nil {
		return nil
	}
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.FailFirst[stage] > 0 && f.firsts[stage] < f.FailFirst[stage] {
		f.firsts[stage]++
		f.injected[stage]++
		return ErrInjectedWriteFault
	}
	if f.Rates[stage] > 0 && float64(f.next()>>11)/float64(1<<53) < f.Rates[stage] {
		f.injected[stage]++
		return ErrInjectedWriteFault
	}
	return nil
}

// Injected reports how many failures each stage has injected.
func (f *WriteFaults) Injected() [4]uint64 {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}
