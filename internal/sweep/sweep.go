// Package sweep is the deterministic parallel job scheduler behind the
// paper reproduction: every simulation the evaluation needs (a kernel on
// a configuration, an ablation variant, an offload study point) becomes a
// self-describing Job with a stable content key, a worker pool fans the
// jobs out across goroutines, and results are committed in submission
// order — so every table and figure rendered from the results is
// byte-identical to a serial run, at any worker count.
//
// On top of the pool sits a content-addressed run cache (cache.go):
// completed jobs are memoized on disk under a hash of their key, which
// includes the emitted program bytes and the input buffer, so a repeat
// invocation — or a single re-rendered figure after a full run — skips
// already-simulated points entirely.
//
// The scheduler itself never inspects results: values only need to
// round-trip through encoding/json (Go's float64 encoding is exact, so
// cached results are bit-identical to fresh ones).
package sweep

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
)

// Version tags every cache entry. The job keys capture program bytes,
// inputs and configuration, but not the simulator's own semantics: bump
// this whenever a change to the timing or power models alters results for
// an unchanged key, invalidating every prior cache entry at once.
const Version = 1

// Job is one unit of work: a stable content key plus the function that
// computes the result. T must round-trip through encoding/json; Run is
// only called on a cache miss.
type Job[T any] struct {
	Key string
	Run func() (T, error)
}

// Event reports one completed job to the Progress callback.
type Event struct {
	Done   int    // jobs finished in the current batch (including this one)
	Total  int    // jobs in the current batch
	Cached int    // batch jobs served from the cache so far
	Key    string // key of the job that just finished
	Hit    bool   // whether this job was a cache hit
}

// Config shapes an Engine.
type Config struct {
	// Workers is the pool size; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Cache memoizes completed jobs on disk (nil disables caching).
	Cache *Cache
	// Progress, when set, is called after every completed job. Callbacks
	// may arrive from any worker goroutine, but never concurrently.
	Progress func(Event)
}

// Stats counts what an engine has done across all Run batches.
type Stats struct {
	Jobs      int // jobs scheduled
	Executed  int // jobs actually simulated (cache miss or no cache)
	CacheHits int // jobs served from the cache
}

// Engine is a reusable scheduler: one engine typically serves every sweep
// of a tool invocation, so its Stats aggregate the whole run.
type Engine struct {
	workers  int
	cache    *Cache
	progress func(Event)

	mu    sync.Mutex
	stats Stats
}

// New builds an engine from the config.
func New(cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	return &Engine{workers: w, cache: cfg.Cache, progress: cfg.Progress}
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's cache (nil when caching is disabled).
func (e *Engine) Cache() *Cache { return e.cache }

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// Run executes the batch on the engine's worker pool and returns the
// results indexed exactly like jobs — the ordering guarantee every
// renderer depends on. Workers claim jobs in submission order; on a
// failure the pool stops claiming new jobs, finishes what is in flight,
// and returns the failed job's error (the lowest-indexed one when several
// fail). Successful results of a failed batch are discarded.
func Run[T any](e *Engine, jobs []Job[T]) ([]T, error) {
	n := len(jobs)
	results := make([]T, n)
	errs := make([]error, n)
	workers := e.workers
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64 // next job index to claim
		failed atomic.Bool
		wg     sync.WaitGroup
		done   int // guarded by e.mu, batch-local
		cached int // guarded by e.mu, batch-local
	)
	next.Store(-1)
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1))
			if i >= n || failed.Load() {
				return
			}
			j := jobs[i]
			hit := false
			if e.cache != nil {
				hit = e.cache.get(j.Key, &results[i])
			}
			if !hit {
				v, err := j.Run()
				if err != nil {
					errs[i] = err
					failed.Store(true)
				} else {
					results[i] = v
					if e.cache != nil {
						e.cache.put(j.Key, v) // best effort: a failed write is only a future miss
					}
				}
			}
			e.mu.Lock()
			done++
			if hit {
				cached++
				e.stats.CacheHits++
			} else {
				e.stats.Executed++
			}
			e.stats.Jobs++
			if e.progress != nil {
				// Called under the engine lock so events arrive serialized
				// and in Done order; callbacks must not call back into the
				// engine.
				e.progress(Event{Done: done, Total: n, Cached: cached, Key: j.Key, Hit: hit})
			}
			e.mu.Unlock()
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: job %q: %w", jobs[i].Key, err)
		}
	}
	return results, nil
}
