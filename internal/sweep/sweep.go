// Package sweep is the deterministic parallel job scheduler behind the
// paper reproduction: every simulation the evaluation needs (a kernel on
// a configuration, an ablation variant, an offload study point) becomes a
// self-describing Job with a stable content key, a worker pool fans the
// jobs out across goroutines, and results are committed in submission
// order — so every table and figure rendered from the results is
// byte-identical to a serial run, at any worker count.
//
// On top of the pool sits a content-addressed run cache (cache.go):
// completed jobs are memoized on disk under a hash of their key, which
// includes the emitted program bytes and the input buffer, so a repeat
// invocation — or a single re-rendered figure after a full run — skips
// already-simulated points entirely.
//
// The scheduler itself never inspects results: values only need to
// round-trip through encoding/json (Go's float64 encoding is exact, so
// cached results are bit-identical to fresh ones).
//
// The runtime is hardened for long campaigns: a panicking job is
// recovered into a typed *PanicError that fails its batch without killing
// the process, Config.JobTimeout bounds each job, and Config.Context
// threads cancellation through every batch so SIGINT drains in-flight
// work and flushes partial state instead of corrupting it.
package sweep

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"
)

// Version tags every cache entry. The job keys capture program bytes,
// inputs and configuration, but not the simulator's own semantics: bump
// this whenever a change to the timing or power models alters results for
// an unchanged key, invalidating every prior cache entry at once.
// History: 2 — fault-injection knobs entered the content keys (chaos
// campaigns) and the memory system gained SEU hooks.
const Version = 2

// Job is one unit of work: a stable content key plus the function that
// computes the result. T must round-trip through encoding/json; Run is
// only called on a cache miss.
type Job[T any] struct {
	Key string
	Run func() (T, error)
}

// Event reports one completed job to the Progress callback.
type Event struct {
	Done   int    // jobs finished in the current batch (including this one)
	Total  int    // jobs in the current batch
	Cached int    // batch jobs served from the cache so far
	Key    string // key of the job that just finished
	Hit    bool   // whether this job was a cache hit
}

// Config shapes an Engine.
type Config struct {
	// Workers is the pool size; <= 0 selects runtime.GOMAXPROCS(0).
	Workers int
	// Cache memoizes completed jobs on disk (nil disables caching).
	Cache *Cache
	// Journal, when set, makes the campaign resumable across crashes:
	// every completed job is appended (fsync'd) before it counts as done,
	// jobs the journal already holds are served from it without touching
	// the cache or the simulator, and a torn tail left by SIGKILL costs
	// only the jobs from the torn record on (see Journal). Consulted
	// before the cache — the journal is the authority a resume trusts.
	Journal *Journal
	// Progress, when set, is called after every completed job. Callbacks
	// may arrive from any worker goroutine, but never concurrently.
	Progress func(Event)
	// Context, when set, threads cancellation through every Run: once it
	// is done, workers stop claiming new jobs, in-flight jobs finish (and
	// still land in the cache), and Run returns the context's error. This
	// is how SIGINT on cmd/hetexp drains a campaign cleanly instead of
	// killing it mid-write. Nil means never cancelled.
	Context context.Context
	// JobTimeout bounds each job's Run call (0 = unbounded). A job that
	// exceeds it fails with ErrJobTimeout; its goroutine is abandoned (the
	// simulator's own MaxCycles bound eventually ends it) and its late
	// result is discarded, never cached.
	JobTimeout time.Duration
}

// Stats counts what an engine has done across all Run batches.
type Stats struct {
	Jobs        int // jobs scheduled
	Executed    int // jobs actually simulated (cache miss or no cache)
	CacheHits   int // jobs served from the cache
	JournalHits int // jobs served from a resumed journal
}

// Engine is a reusable scheduler: one engine typically serves every sweep
// of a tool invocation, so its Stats aggregate the whole run.
type Engine struct {
	workers  int
	cache    *Cache
	journal  *Journal
	progress func(Event)
	ctx      context.Context
	timeout  time.Duration

	mu    sync.Mutex
	stats Stats
}

// New builds an engine from the config.
func New(cfg Config) *Engine {
	w := cfg.Workers
	if w <= 0 {
		w = runtime.GOMAXPROCS(0)
	}
	ctx := cfg.Context
	if ctx == nil {
		ctx = context.Background()
	}
	return &Engine{workers: w, cache: cfg.Cache, journal: cfg.Journal,
		progress: cfg.Progress, ctx: ctx, timeout: cfg.JobTimeout}
}

// Workers returns the pool size.
func (e *Engine) Workers() int { return e.workers }

// Cache returns the engine's cache (nil when caching is disabled).
func (e *Engine) Cache() *Cache { return e.cache }

// Journal returns the engine's journal (nil when the campaign is not
// resumable).
func (e *Engine) Journal() *Journal { return e.journal }

// Context returns the engine's cancellation context (never nil), so
// multi-batch drivers like the chaos campaign can stop scheduling new
// batches as soon as the engine is cancelled.
func (e *Engine) Context() context.Context { return e.ctx }

// Stats snapshots the engine's counters.
func (e *Engine) Stats() Stats {
	e.mu.Lock()
	defer e.mu.Unlock()
	return e.stats
}

// PanicError is the typed per-job error a worker produces when a job's
// Run function panics: the panic is recovered inside the worker, so one
// crashing job fails its batch with a diagnosable error instead of
// killing the whole process (and every sibling sweep) mid-campaign.
type PanicError struct {
	Value any    // the recovered panic value
	Stack []byte // the panicking goroutine's stack
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("job panicked: %v", e.Value)
}

// ErrJobTimeout marks a job that exceeded Config.JobTimeout.
var ErrJobTimeout = errors.New("sweep: job exceeded its time budget")

// exec runs one job with the worker-side guards: a recover() that turns a
// panic into a *PanicError, and — when the engine has a JobTimeout — a
// watchdog that abandons the job's goroutine and fails it with
// ErrJobTimeout. A timed-out job's late result is discarded (the buffered
// channel keeps its goroutine from leaking on send) and never cached.
func exec[T any](e *Engine, j Job[T]) (T, error) {
	if e.timeout <= 0 {
		return runRecover(j)
	}
	type outcome struct {
		v   T
		err error
	}
	ch := make(chan outcome, 1)
	go func() {
		v, err := runRecover(j)
		ch <- outcome{v, err}
	}()
	timer := time.NewTimer(e.timeout)
	defer timer.Stop()
	select {
	case o := <-ch:
		return o.v, o.err
	case <-timer.C:
		var zero T
		return zero, ErrJobTimeout
	}
}

// runRecover invokes the job, converting a panic into a *PanicError.
func runRecover[T any](j Job[T]) (v T, err error) {
	defer func() {
		if p := recover(); p != nil {
			err = &PanicError{Value: p, Stack: debug.Stack()}
		}
	}()
	return j.Run()
}

// Completion reports one finished job to a RunNotify consumer.
type Completion[T any] struct {
	Index int    // position in the submitted job slice
	Key   string // the job's content key
	Value T      // the result; zero when Err != nil
	Err   error  // the job's typed error, nil on success
	Hit   bool   // served from the journal or the cache, not simulated
}

// RunNotify executes jobs on the engine's worker pool like Run, but
// delivers every outcome to notify the moment it lands — in completion
// order, serialized (never concurrently), from worker goroutines — and
// keeps claiming after individual failures: the consumer owns the per-job
// failure policy, which is what a streaming batch endpoint needs (one bad
// point must not abandon the rest of a campaign whose results all land in
// the cache). Cancellation is the only early stop: when the engine's
// Context ends, workers stop claiming, in-flight jobs finish — still
// notified, still cached — and RunNotify returns the context error; jobs
// never claimed are never notified, so the caller can enumerate them as
// the resumable remainder. Journal/cache consultation, ordering of
// journal-append before cache-put, and engine Stats accrue exactly as
// under Run. notify must not call back into the engine.
func RunNotify[T any](e *Engine, jobs []Job[T], notify func(Completion[T])) error {
	n := len(jobs)
	workers := e.workers
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64
		wg     sync.WaitGroup
		done   int // guarded by e.mu, batch-local
		cached int // guarded by e.mu, batch-local
	)
	next.Store(-1)
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1))
			if i >= n || e.ctx.Err() != nil {
				return
			}
			j := jobs[i]
			var v T
			var err error
			hit, journaled := false, false
			if e.journal != nil {
				hit = e.journal.Lookup(j.Key, &v)
				journaled = hit
			}
			if !hit && e.cache != nil {
				hit = e.cache.Get(j.Key, &v)
				if hit && e.journal != nil {
					_ = e.journal.Append(j.Key, v)
				}
			}
			if !hit {
				v, err = exec(e, j)
				if err == nil {
					// Journal first: once Append returns the job is durably
					// complete, whatever happens to the cache write after.
					if e.journal != nil {
						_ = e.journal.Append(j.Key, v)
					}
					if e.cache != nil {
						_ = e.cache.Put(j.Key, v)
					}
				}
			}
			e.mu.Lock()
			done++
			switch {
			case journaled:
				cached++
				e.stats.JournalHits++
			case hit:
				cached++
				e.stats.CacheHits++
			default:
				e.stats.Executed++
			}
			e.stats.Jobs++
			if notify != nil {
				notify(Completion[T]{Index: i, Key: j.Key, Value: v, Err: err, Hit: hit})
			}
			if e.progress != nil {
				e.progress(Event{Done: done, Total: n, Cached: cached, Key: j.Key, Hit: hit})
			}
			e.mu.Unlock()
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()
	if err := e.ctx.Err(); err != nil {
		return fmt.Errorf("sweep: batch cancelled: %w", err)
	}
	return nil
}

// Run executes the batch on the engine's worker pool and returns the
// results indexed exactly like jobs — the ordering guarantee every
// renderer depends on. Workers claim jobs in submission order; on a
// failure the pool stops claiming new jobs, finishes what is in flight,
// and returns the failed job's error (the lowest-indexed one when several
// fail). A panicking job is recovered into a *PanicError and fails the
// batch the same way — its siblings complete, the process survives. When
// the engine's Context is cancelled, workers stop claiming, in-flight
// jobs finish (and still land in the cache), and Run returns the context
// error. Successful results of a failed or cancelled batch are discarded.
func Run[T any](e *Engine, jobs []Job[T]) ([]T, error) {
	n := len(jobs)
	results := make([]T, n)
	errs := make([]error, n)
	workers := e.workers
	if workers > n {
		workers = n
	}
	var (
		next   atomic.Int64 // next job index to claim
		failed atomic.Bool
		wg     sync.WaitGroup
		done   int // guarded by e.mu, batch-local
		cached int // guarded by e.mu, batch-local
	)
	next.Store(-1)
	worker := func() {
		defer wg.Done()
		for {
			i := int(next.Add(1))
			if i >= n || failed.Load() || e.ctx.Err() != nil {
				return
			}
			j := jobs[i]
			hit, journaled := false, false
			if e.journal != nil {
				hit = e.journal.Lookup(j.Key, &results[i])
				journaled = hit
			}
			if !hit && e.cache != nil {
				hit = e.cache.Get(j.Key, &results[i])
				if hit && e.journal != nil {
					// A cache hit is a completed job: journal it so the
					// resume guarantee never depends on the (best-effort)
					// cache still holding the entry.
					_ = e.journal.Append(j.Key, results[i])
				}
			}
			if !hit {
				v, err := exec(e, j)
				if err != nil {
					errs[i] = err
					failed.Store(true)
				} else {
					results[i] = v
					// Journal first: once Append returns the job is durably
					// complete, whatever happens to the cache write after.
					if e.journal != nil {
						_ = e.journal.Append(j.Key, v) // counted in JournalStats.AppendFails
					}
					if e.cache != nil {
						_ = e.cache.Put(j.Key, v) // best effort: a failed write is only a future miss
					}
				}
			}
			e.mu.Lock()
			done++
			switch {
			case journaled:
				cached++
				e.stats.JournalHits++
			case hit:
				cached++
				e.stats.CacheHits++
			default:
				e.stats.Executed++
			}
			e.stats.Jobs++
			if e.progress != nil {
				// Called under the engine lock so events arrive serialized
				// and in Done order; callbacks must not call back into the
				// engine.
				e.progress(Event{Done: done, Total: n, Cached: cached, Key: j.Key, Hit: hit})
			}
			e.mu.Unlock()
		}
	}
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go worker()
	}
	wg.Wait()
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("sweep: job %q: %w", jobs[i].Key, err)
		}
	}
	if err := e.ctx.Err(); err != nil {
		return nil, fmt.Errorf("sweep: batch cancelled: %w", err)
	}
	return results, nil
}
