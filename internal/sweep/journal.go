package sweep

import (
	"bytes"
	"encoding/json"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"strconv"
	"sync"
)

// Journal is the crash-safety layer under a campaign: an append-only,
// per-record-checksummed, fsync'd log of completed jobs. The run cache
// makes repeated campaigns cheap, but its durability is best-effort (a
// write failure is only a future miss); the journal is the authoritative
// record a resumed campaign replays. The contract:
//
//   - Append returns only after the record is fsync'd: a job the engine
//     reported complete survives SIGKILL, OOM-kill and power loss.
//   - OpenJournal replays the longest valid prefix and truncates the rest:
//     a record torn by a crash mid-write (or corrupted on disk) costs
//     exactly the jobs from that record on — never a wrong or duplicated
//     result, because every record carries a CRC-32C over its payload and
//     an undecodable or checksum-failing record ends the replay.
//   - The header pins sweep.Version: a journal written by a simulator
//     whose timing or power models have since changed is discarded whole
//     (the resumed campaign re-simulates; it never serves stale results).
//
// A journal is owned by one process at a time; the engine serializes
// appends internally. Replayed values live in memory (campaign results
// are small JSON documents), so Lookup is a map probe.
//
// On-disk format, line-oriented (JSON escapes every raw newline, so a
// record is exactly one line):
//
//	hetsim-journal v1 sweep=<Version>\n
//	<crc32c %08x> {"k":<key>,"v":<value>}\n
//	...
type Journal struct {
	path string
	f    *os.File

	mu       sync.Mutex
	vals     map[string]json.RawMessage
	size     int64 // committed file length; write failures truncate back to it
	replayed int
	torn     int
	appended int
	failures int
}

// JournalStats describes what a journal recovered and recorded.
type JournalStats struct {
	Replayed    int `json:"replayed"`     // records recovered at open
	TornBytes   int `json:"torn_bytes"`   // unusable tail bytes truncated at open
	Appended    int `json:"appended"`     // records fsync'd this session
	AppendFails int `json:"append_fails"` // records that could not be made durable
}

// castagnoli is the CRC-32C table every record checksum uses.
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// journalHeader is the first line of every journal file; it pins the
// format version and the sweep.Version the recorded results were computed
// under.
func journalHeader() []byte {
	return []byte(fmt.Sprintf("hetsim-journal v1 sweep=%d\n", Version))
}

// journalPayload is the JSON body of one record.
type journalPayload struct {
	Key   string          `json:"k"`
	Value json.RawMessage `json:"v"`
}

// journalRecord is one decoded record.
type journalRecord struct {
	Key   string
	Value json.RawMessage
}

// appendRecordLine encodes one record: CRC-32C of the payload in fixed-
// width hex, a space, the payload, a newline.
func appendRecordLine(dst, payload []byte) []byte {
	dst = append(dst, fmt.Sprintf("%08x ", crc32.Checksum(payload, castagnoli))...)
	dst = append(dst, payload...)
	return append(dst, '\n')
}

// parseRecordLine decodes one line (without its newline). ok reports a
// well-formed, checksum-verified, decodable record.
func parseRecordLine(line []byte) (journalRecord, bool) {
	if len(line) < 10 || line[8] != ' ' {
		return journalRecord{}, false
	}
	want, err := strconv.ParseUint(string(line[:8]), 16, 32)
	if err != nil {
		return journalRecord{}, false
	}
	payload := line[9:]
	if crc32.Checksum(payload, castagnoli) != uint32(want) {
		return journalRecord{}, false
	}
	var p journalPayload
	if json.Unmarshal(payload, &p) != nil || p.Key == "" || len(p.Value) == 0 {
		return journalRecord{}, false
	}
	return journalRecord{Key: p.Key, Value: p.Value}, true
}

// parseJournal scans data and returns the records of the longest valid
// prefix plus that prefix's length in bytes. good == 0 means the header is
// absent, malformed, or names a different sweep.Version — the whole file
// is unusable (the caller starts over; stale results are never replayed).
// The first torn or corrupted record ends the scan: everything after it is
// untrusted, so recovery resumes from the last good record.
func parseJournal(data []byte) (recs []journalRecord, good int) {
	hdr := journalHeader()
	if len(data) < len(hdr) || !bytes.Equal(data[:len(hdr)], hdr) {
		return nil, 0
	}
	good = len(hdr)
	for off := good; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			break // torn tail: the record never finished writing
		}
		rec, ok := parseRecordLine(data[off : off+nl])
		if !ok {
			break
		}
		recs = append(recs, rec)
		off += nl + 1
		good = off
	}
	return recs, good
}

// OpenJournal opens (creating if needed) the journal at path, replays its
// valid prefix, truncates any torn or corrupt tail, and leaves the file
// positioned for appends. The repair itself is made durable (file and
// parent directory fsync'd) before OpenJournal returns.
func OpenJournal(path string) (*Journal, error) {
	f, err := os.OpenFile(path, os.O_RDWR|os.O_CREATE, 0o644)
	if err != nil {
		return nil, fmt.Errorf("sweep: opening journal: %w", err)
	}
	data, err := io.ReadAll(f)
	if err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: reading journal: %w", err)
	}
	recs, good := parseJournal(data)
	j := &Journal{
		path:     path,
		f:        f,
		vals:     make(map[string]json.RawMessage, len(recs)),
		replayed: len(recs),
		torn:     len(data) - good,
	}
	if good == 0 {
		// Fresh file, or one whose header is unusable or from another
		// sweep.Version: start over with a clean header.
		hdr := journalHeader()
		if err := f.Truncate(0); err == nil {
			_, err = f.WriteAt(hdr, 0)
		}
		if err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: resetting journal: %w", err)
		}
		good = len(hdr)
	} else if good < len(data) {
		if err := f.Truncate(int64(good)); err != nil {
			f.Close()
			return nil, fmt.Errorf("sweep: truncating torn journal tail: %w", err)
		}
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: journal fsync: %w", err)
	}
	if err := syncDir(filepath.Dir(path)); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: journal directory fsync: %w", err)
	}
	if _, err := f.Seek(int64(good), io.SeekStart); err != nil {
		f.Close()
		return nil, fmt.Errorf("sweep: seeking journal: %w", err)
	}
	j.size = int64(good)
	for _, r := range recs {
		j.vals[r.Key] = r.Value
	}
	return j, nil
}

// Path returns the journal file's path.
func (j *Journal) Path() string { return j.path }

// Len returns the number of distinct completed jobs the journal holds
// (replayed plus appended).
func (j *Journal) Len() int {
	j.mu.Lock()
	defer j.mu.Unlock()
	return len(j.vals)
}

// Stats snapshots the journal's counters.
func (j *Journal) Stats() JournalStats {
	j.mu.Lock()
	defer j.mu.Unlock()
	return JournalStats{Replayed: j.replayed, TornBytes: j.torn,
		Appended: j.appended, AppendFails: j.failures}
}

// Lookup decodes the journaled value for key into out (a pointer) and
// reports whether the journal holds the key. Like the cache, a value that
// fails to decode is a miss, never an error.
func (j *Journal) Lookup(key string, out any) bool {
	j.mu.Lock()
	raw, ok := j.vals[key]
	j.mu.Unlock()
	if !ok {
		return false
	}
	return json.Unmarshal(raw, out) == nil
}

// Append records a completed job and returns once the record is durable
// (written and fsync'd). A key the journal already holds is a no-op: a
// record is never duplicated, so replay can never double-count. On a
// write or fsync failure the file is truncated back to its last committed
// length so a later append cannot hide behind a garbage tail.
func (j *Journal) Append(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: encoding journal value: %w", err)
	}
	payload, err := json.Marshal(journalPayload{Key: key, Value: raw})
	if err != nil {
		return fmt.Errorf("sweep: encoding journal record: %w", err)
	}
	line := appendRecordLine(nil, payload)
	j.mu.Lock()
	defer j.mu.Unlock()
	if _, ok := j.vals[key]; ok {
		return nil
	}
	if _, err := j.f.WriteAt(line, j.size); err != nil {
		j.failures++
		j.f.Truncate(j.size) // best effort: keep the tail clean for the next append
		return fmt.Errorf("sweep: journal append: %w", err)
	}
	if err := j.f.Sync(); err != nil {
		j.failures++
		j.f.Truncate(j.size)
		return fmt.Errorf("sweep: journal fsync: %w", err)
	}
	j.size += int64(len(line))
	j.vals[key] = raw
	j.appended++
	return nil
}

// Close releases the journal file. Records are durable at Append time, so
// Close adds nothing beyond the file handle.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.f.Close()
}

// InspectJournal parses the journal at path without repairing it: the
// number of valid records and the length of the unusable tail. This is
// the read-only view the crash drill uses to predict exactly which jobs a
// resumed run may skip.
func InspectJournal(path string) (records, tornBytes int, err error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return 0, 0, err
	}
	recs, good := parseJournal(data)
	return len(recs), len(data) - good, nil
}
