package sweep

import (
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"sync/atomic"
)

// Cache is the content-addressed run cache: one JSON file per completed
// job, addressed by the SHA-256 of the versioned job key. Entries store
// the full key alongside the value, so a (vanishingly unlikely) hash
// collision or a truncated file degrades to a miss, never to a wrong
// result. Writes go through a temp file plus rename, so concurrent
// workers — or concurrent processes sharing a cache directory — can race
// on the same key without corrupting it.
type Cache struct {
	dir string

	// Faults, when set, injects failures into write's crash windows —
	// the serve.Faults discipline turned on the cache itself (tests and
	// drills only; nil costs nothing).
	Faults *WriteFaults

	hits    atomic.Uint64
	misses  atomic.Uint64
	corrupt atomic.Uint64
	writes  atomic.Uint64
	flushEr atomic.Uint64
}

// CacheStats counts cache traffic.
type CacheStats struct {
	Hits       uint64 // get served from disk
	Misses     uint64 // get found nothing usable
	Corrupt    uint64 // of the misses: entry existed but was unusable (truncated, mismatched)
	Writes     uint64 // entries written
	WriteFails uint64 // entries that could not be written (non-fatal)
}

// Open creates (if needed) and opens a cache rooted at dir.
func Open(dir string) (*Cache, error) {
	if dir == "" {
		return nil, fmt.Errorf("sweep: empty cache directory")
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("sweep: opening cache: %w", err)
	}
	return &Cache{dir: dir}, nil
}

// Dir returns the cache root.
func (c *Cache) Dir() string { return c.dir }

// Stats snapshots the traffic counters.
func (c *Cache) Stats() CacheStats {
	return CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Corrupt:    c.corrupt.Load(),
		Writes:     c.writes.Load(),
		WriteFails: c.flushEr.Load(),
	}
}

// entry is the on-disk format.
type entry struct {
	Version int             `json:"version"`
	Key     string          `json:"key"`
	Value   json.RawMessage `json:"value"`
}

// path maps a job key to its cache file, fanned out over 256 two-hex-digit
// subdirectories so huge sweeps don't pile every entry into one directory.
func (c *Cache) path(key string) string {
	sum := sha256.Sum256([]byte(fmt.Sprintf("v%d|%s", Version, key)))
	h := hex.EncodeToString(sum[:])
	return filepath.Join(c.dir, h[:2], h[2:]+".json")
}

// Get decodes the cached value for key into out (a pointer). Any problem
// — absent file, unreadable JSON, version or key mismatch — is a miss,
// never an error: a zero-length or truncated entry (an interrupted writer
// on a non-atomic filesystem, a torn copy) must only cost a
// re-simulation. Unusable-but-present entries are additionally counted in
// CacheStats.Corrupt so an ailing cache directory is visible in the sweep
// stats instead of silently re-simulating forever.
func (c *Cache) Get(key string, out any) bool {
	b, err := os.ReadFile(c.path(key))
	if err != nil {
		c.misses.Add(1)
		return false
	}
	var e entry
	if json.Unmarshal(b, &e) != nil || e.Version != Version || e.Key != key {
		c.misses.Add(1)
		c.corrupt.Add(1)
		return false
	}
	if json.Unmarshal(e.Value, out) != nil {
		c.misses.Add(1)
		c.corrupt.Add(1)
		return false
	}
	c.hits.Add(1)
	return true
}

// Put stores the value for key and reports what went wrong. For the
// sweep engine a failed write is best-effort (counted, never fatal: a
// cache that cannot persist only costs a future re-simulation); the
// service layer treats the returned error as retryable and re-attempts
// the write without re-running the simulation. The durability contract
// (every window crash-drilled, see DESIGN.md §14): the temp file is
// fsynced before the rename and the parent directory is fsynced after
// it, so once Put returns the entry survives a host crash — and a crash
// at any earlier point leaves a stale entry or none, never a torn one
// that could serve as a hit.
func (c *Cache) Put(key string, v any) error {
	err := c.write(key, v)
	if err != nil {
		c.flushEr.Add(1)
	} else {
		c.writes.Add(1)
	}
	return err
}

func (c *Cache) write(key string, v any) error {
	raw, err := json.Marshal(v)
	if err != nil {
		return fmt.Errorf("sweep: encoding cache value: %w", err)
	}
	b, err := json.Marshal(entry{Version: Version, Key: key, Value: raw})
	if err != nil {
		return fmt.Errorf("sweep: encoding cache entry: %w", err)
	}
	path := c.path(key)
	dir := filepath.Dir(path)
	_, statErr := os.Stat(dir)
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if os.IsNotExist(statErr) {
		// First entry in this fanout directory: make its creation durable
		// too, or a crash could lose the whole subtree's entries at once.
		if err := syncDir(c.dir); err != nil {
			return fmt.Errorf("sweep: cache root fsync: %w", err)
		}
	}
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp")
	if err != nil {
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err = c.Faults.fail(FaultTempWrite); err == nil {
		_, err = tmp.Write(b)
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err = c.Faults.fail(FaultSync); err == nil {
		err = tmp.Sync()
	}
	if err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache fsync: %w", err)
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	if err = c.Faults.fail(FaultRename); err == nil {
		err = os.Rename(tmp.Name(), path)
	}
	if err != nil {
		os.Remove(tmp.Name())
		return fmt.Errorf("sweep: cache write: %w", err)
	}
	// The rename is not durable until the directory that holds the new
	// name is — the gap the Put comment used to admit to: a crash right
	// after Put could lose a committed entry. A dir-fsync failure leaves
	// the entry present and valid (only its durability is unknown), so
	// the error is honest but a subsequent Get is still a correct hit.
	if err = c.Faults.fail(FaultDirSync); err == nil {
		err = syncDir(dir)
	}
	if err != nil {
		return fmt.Errorf("sweep: cache directory fsync: %w", err)
	}
	return nil
}

// syncDir fsyncs a directory, making renames and creations inside it
// durable. Every crash-safety path (cache commit, journal repair) funnels
// through here.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	return err
}
