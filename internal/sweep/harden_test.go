package sweep

import (
	"context"
	"errors"
	"os"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// TestPanicFailsOneJobNotTheProcess checks worker hardening: a panicking
// job becomes a typed *PanicError carrying the panic value and stack, its
// siblings still execute, and the process survives.
func TestPanicFailsOneJobNotTheProcess(t *testing.T) {
	e := New(Config{Workers: 2})
	var ran atomic.Int64
	sibling := make(chan struct{})
	jobs := make([]Job[int], 6)
	for i := range jobs {
		i := i
		jobs[i] = Job[int]{Key: "ok", Run: func() (int, error) {
			if ran.Add(1) == 1 {
				close(sibling)
			}
			return i, nil
		}}
	}
	// The panicking job waits until one sibling has completed, so the
	// isolation claim — siblings finish, the panicker fails alone — is
	// deterministic rather than a scheduling race.
	jobs[0] = Job[int]{Key: "boom", Run: func() (int, error) {
		<-sibling
		panic("seu in the scheduler")
	}}
	_, err := Run(e, jobs)
	if err == nil {
		t.Fatal("batch with a panicking job must fail")
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("error %v is not a *PanicError", err)
	}
	if pe.Value != "seu in the scheduler" {
		t.Fatalf("panic value = %v", pe.Value)
	}
	if !strings.Contains(string(pe.Stack), "harden_test") {
		t.Fatal("panic stack does not point at the panicking job")
	}
	// Workers stop claiming after a failure, but the jobs already in
	// flight on the second worker completed; at least one sibling ran.
	if ran.Load() == 0 {
		t.Fatal("no sibling job completed alongside the panic")
	}
}

func TestJobTimeout(t *testing.T) {
	release := make(chan struct{})
	defer close(release)
	e := New(Config{Workers: 1, JobTimeout: 5 * time.Millisecond})
	_, err := Run(e, []Job[int]{
		{Key: "stuck", Run: func() (int, error) {
			<-release // hung simulation
			return 0, nil
		}},
	})
	if !errors.Is(err, ErrJobTimeout) {
		t.Fatalf("err = %v, want ErrJobTimeout", err)
	}
}

func TestJobTimeoutNotTriggeredByFastJobs(t *testing.T) {
	e := New(Config{Workers: 2, JobTimeout: time.Minute})
	res, err := Run(e, []Job[int]{
		{Key: "a", Run: func() (int, error) { return 1, nil }},
		{Key: "b", Run: func() (int, error) { return 2, nil }},
	})
	if err != nil || res[0] != 1 || res[1] != 2 {
		t.Fatalf("res=%v err=%v", res, err)
	}
}

// TestCancellationStopsClaiming checks SIGINT semantics: once the context
// is cancelled, workers stop claiming jobs, Run reports the context error,
// and the remaining jobs never execute.
func TestCancellationStopsClaiming(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e := New(Config{Workers: 1, Context: ctx})
	var ran atomic.Int64
	jobs := make([]Job[int], 8)
	for i := range jobs {
		jobs[i] = Job[int]{Key: "j", Run: func() (int, error) {
			if ran.Add(1) == 2 {
				cancel() // "SIGINT" lands while job 2 is in flight
			}
			return 0, nil
		}}
	}
	_, err := Run(e, jobs)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	// Job 2 saw the cancel mid-run and still finished; nothing after the
	// next claim check may start.
	if got := ran.Load(); got != 2 {
		t.Fatalf("%d jobs ran after cancellation, want 2", got)
	}
	if e.Context().Err() == nil {
		t.Fatal("engine context must report cancellation")
	}
}

func TestPreCancelledContextRunsNothing(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(Config{Workers: 4, Context: ctx})
	var ran atomic.Int64
	jobs := []Job[int]{{Key: "j", Run: func() (int, error) { ran.Add(1); return 0, nil }}}
	if _, err := Run(e, jobs); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if ran.Load() != 0 {
		t.Fatal("job ran under a pre-cancelled context")
	}
}

// TestTruncatedCacheFileIsCountedMiss is the regression for interrupted
// writers on non-atomic filesystems: a zero-length or truncated entry
// must cost exactly one re-simulation — a counted miss, never an error or
// a wrong result.
func TestTruncatedCacheFileIsCountedMiss(t *testing.T) {
	c, err := Open(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	c.Put("k", payload{Cycles: 9})
	path := c.path("k")
	for name, b := range map[string][]byte{
		"zero-length": {},
		"truncated":   []byte(`{"version":2,"key":"k","val`),
	} {
		if err := os.WriteFile(path, b, 0o644); err != nil {
			t.Fatal(err)
		}
		before := c.Stats()
		var got payload
		if c.Get("k", &got) {
			t.Fatalf("%s: expected a miss", name)
		}
		after := c.Stats()
		if after.Misses != before.Misses+1 {
			t.Fatalf("%s: miss not counted", name)
		}
		if after.Corrupt != before.Corrupt+1 {
			t.Fatalf("%s: corrupt entry not counted (stats %+v)", name, after)
		}
		// The slot still works: a rewrite serves hits again.
		c.Put("k", payload{Cycles: 9})
		if !c.Get("k", &got) || got.Cycles != 9 {
			t.Fatalf("%s: cache slot did not recover after rewrite", name)
		}
	}
	// An absent entry is a plain miss, not a corrupt one.
	before := c.Stats()
	var got payload
	if c.Get("absent", &got) {
		t.Fatal("unexpected hit")
	}
	after := c.Stats()
	if after.Corrupt != before.Corrupt || after.Misses != before.Misses+1 {
		t.Fatalf("absent entry miscounted: %+v -> %+v", before, after)
	}
}
